lib/trace/synth.mli: Record
