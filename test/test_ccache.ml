(* Tests for Sprite-style client caching (the paper's §3 future work):
   local hits, network savings, sequential and concurrent write sharing,
   recalls and cache bounds. *)

module Sched = Capfs_sched.Sched
module Data = Capfs_disk.Data
module Driver = Capfs_disk.Driver
module Cache = Capfs_cache.Cache
module Lfs = Capfs_layout.Lfs
module Netlink = Capfs_ccache.Netlink
module Cc_server = Capfs_ccache.Cc_server
module Cc_client = Capfs_ccache.Cc_client

let run_fs f =
  let s = Sched.create ~clock:`Virtual () in
  ignore (Sched.spawn s (fun () -> f s));
  Sched.run s

let make_server s =
  let drv =
    Driver.create s
      (Driver.mem_transport ~sector_bytes:512 ~total_sectors:32768 s ())
  in
  let layout =
    Lfs.format_and_mount
      ~config:{ Lfs.default_config with Lfs.seg_blocks = 32;
                checkpoint_blocks = 16 }
      s drv ~block_bytes:4096
  in
  let fs =
    Capfs.Fsys.create
      ~cache_config:
        { (Cache.default_config ~capacity_blocks:256) with
          Cache.trigger = Cache.Demand }
      ~layout s
  in
  let client = Capfs.Client.create fs in
  let net = Netlink.ethernet_10 s in
  (Cc_server.create client net, net, client)

let prime server path contents =
  (* create the file server-side *)
  let c = ref (Cc_client.attach server ~client_id:99 ~cache_blocks:64) in
  Cc_client.open_ !c path Cc_server.Write;
  Cc_client.write !c path ~offset:0 (Data.of_string contents);
  Cc_client.close_ !c path

let test_local_cache_hits () =
  run_fs (fun s ->
      let server, _, _ = make_server s in
      prime server "/shared" (String.make 8192 's');
      let a = Cc_client.attach server ~client_id:1 ~cache_blocks:64 in
      Cc_client.open_ a "/shared" Cc_server.Read;
      ignore (Cc_client.read a "/shared" ~offset:0 ~bytes:8192);
      let remote_first = Cc_client.remote_reads a in
      ignore (Cc_client.read a "/shared" ~offset:0 ~bytes:8192);
      ignore (Cc_client.read a "/shared" ~offset:0 ~bytes:8192);
      Alcotest.(check int) "no more remote reads" remote_first
        (Cc_client.remote_reads a);
      Alcotest.(check int) "four local hits" 4 (Cc_client.local_hits a);
      Cc_client.close_ a "/shared")

let test_caching_reduces_network_traffic () =
  run_fs (fun s ->
      let server, net, _ = make_server s in
      prime server "/bigfile" (String.make 65536 'n');
      let a = Cc_client.attach server ~client_id:1 ~cache_blocks:64 in
      Cc_client.open_ a "/bigfile" Cc_server.Read;
      ignore (Cc_client.read a "/bigfile" ~offset:0 ~bytes:65536);
      let after_first = Netlink.bytes_carried net in
      for _ = 1 to 5 do
        ignore (Cc_client.read a "/bigfile" ~offset:0 ~bytes:65536)
      done;
      let after_rereads = Netlink.bytes_carried net in
      Alcotest.(check int) "re-reads move no bytes" after_first after_rereads;
      Cc_client.close_ a "/bigfile")

let test_sequential_write_sharing () =
  run_fs (fun s ->
      let server, _, _ = make_server s in
      prime server "/doc" "version one ";
      let a = Cc_client.attach server ~client_id:1 ~cache_blocks:64 in
      let b = Cc_client.attach server ~client_id:2 ~cache_blocks:64 in
      (* B reads and caches v1 *)
      Cc_client.open_ b "/doc" Cc_server.Read;
      let v1 = Cc_client.read b "/doc" ~offset:0 ~bytes:12 in
      Alcotest.(check string) "v1" "version one " (Data.to_string v1);
      Cc_client.close_ b "/doc";
      (* A rewrites the file (bumps the version) *)
      Cc_client.open_ a "/doc" Cc_server.Write;
      Cc_client.write a "/doc" ~offset:0 (Data.of_string "version two!");
      Cc_client.close_ a "/doc";
      (* B re-opens: its stale copy must be invalidated *)
      Cc_client.open_ b "/doc" Cc_server.Read;
      let v2 = Cc_client.read b "/doc" ~offset:0 ~bytes:12 in
      Alcotest.(check string) "fresh contents" "version two!"
        (Data.to_string v2);
      Cc_client.close_ b "/doc")

let test_concurrent_write_sharing_disables_caching () =
  run_fs (fun s ->
      let server, _, _ = make_server s in
      prime server "/log" (String.make 4096 '0');
      let writer = Cc_client.attach server ~client_id:1 ~cache_blocks:64 in
      let reader = Cc_client.attach server ~client_id:2 ~cache_blocks:64 in
      Cc_client.open_ writer "/log" Cc_server.Write;
      (* second open while a writer holds it: caching off *)
      Cc_client.open_ reader "/log" Cc_server.Read;
      Alcotest.(check int) "file marked uncacheable" 1
        (Cc_server.uncacheable_files server);
      (* the writer's writes go through; the reader sees them at once *)
      Cc_client.write writer "/log" ~offset:0 (Data.of_string "LIVE");
      let seen = Cc_client.read reader "/log" ~offset:0 ~bytes:4 in
      Alcotest.(check string) "read-through sees the write" "LIVE"
        (Data.to_string seen);
      (* and again: no stale cache in between *)
      Cc_client.write writer "/log" ~offset:0 (Data.of_string "MORE");
      let seen2 = Cc_client.read reader "/log" ~offset:0 ~bytes:4 in
      Alcotest.(check string) "still read-through" "MORE"
        (Data.to_string seen2);
      Cc_client.close_ writer "/log";
      Cc_client.close_ reader "/log")

let test_caching_resumes_after_sharing_ends () =
  run_fs (fun s ->
      let server, _, _ = make_server s in
      prime server "/f" (String.make 4096 'x');
      let a = Cc_client.attach server ~client_id:1 ~cache_blocks:64 in
      let b = Cc_client.attach server ~client_id:2 ~cache_blocks:64 in
      Cc_client.open_ a "/f" Cc_server.Write;
      Cc_client.open_ b "/f" Cc_server.Read;
      Cc_client.close_ a "/f";
      Cc_client.close_ b "/f";
      Alcotest.(check int) "sharing over" 0
        (Cc_server.uncacheable_files server);
      (* new open caches again *)
      Cc_client.open_ b "/f" Cc_server.Read;
      ignore (Cc_client.read b "/f" ~offset:0 ~bytes:4096);
      ignore (Cc_client.read b "/f" ~offset:0 ~bytes:4096);
      Alcotest.(check bool) "hits again" true (Cc_client.local_hits b > 0);
      Cc_client.close_ b "/f")

let test_delayed_writes_flush_on_close () =
  run_fs (fun s ->
      let server, _, fs_client = make_server s in
      let a = Cc_client.attach server ~client_id:1 ~cache_blocks:64 in
      Cc_client.open_ a "/delayed" Cc_server.Write;
      Cc_client.write a "/delayed" ~offset:0 (Data.of_string "buffered!");
      Alcotest.(check bool) "dirty locally" true (Cc_client.dirty_blocks a > 0);
      Cc_client.close_ a "/delayed";
      Alcotest.(check int) "clean after close" 0 (Cc_client.dirty_blocks a);
      (* visible server-side *)
      let d =
        Capfs.Client.read_exn fs_client ~client:50 "/delayed" ~offset:0 ~bytes:9
      in
      Alcotest.(check string) "at the server" "buffered!" (Data.to_string d))

let test_client_cache_bounded () =
  run_fs (fun s ->
      let server, _, _ = make_server s in
      prime server "/big" (String.make (64 * 4096) 'b');
      let a = Cc_client.attach server ~client_id:1 ~cache_blocks:8 in
      Cc_client.open_ a "/big" Cc_server.Read;
      ignore (Cc_client.read a "/big" ~offset:0 ~bytes:(64 * 4096));
      if Cc_client.cached_blocks a > 8 then
        Alcotest.failf "cache exceeded bound: %d" (Cc_client.cached_blocks a);
      Cc_client.close_ a "/big")

let test_network_time_is_charged () =
  run_fs (fun s ->
      let server, _, _ = make_server s in
      prime server "/timed" (String.make 8192 't');
      let a = Cc_client.attach server ~client_id:1 ~cache_blocks:64 in
      Cc_client.open_ a "/timed" Cc_server.Read;
      let t0 = Sched.now s in
      ignore (Cc_client.read a "/timed" ~offset:0 ~bytes:8192);
      let cold = Sched.now s -. t0 in
      let t1 = Sched.now s in
      ignore (Cc_client.read a "/timed" ~offset:0 ~bytes:8192);
      let warm = Sched.now s -. t1 in
      (* 8 KB at ~1.2 MB/s plus two RPC latencies: the cold read costs
         simulated milliseconds; the warm one is free *)
      if cold < 0.005 then Alcotest.failf "cold read too cheap: %.6f" cold;
      Alcotest.(check (float 1e-9)) "warm read free" 0. warm;
      Cc_client.close_ a "/timed")

let suite =
  [
    Alcotest.test_case "local cache hits" `Quick test_local_cache_hits;
    Alcotest.test_case "network traffic saved" `Quick
      test_caching_reduces_network_traffic;
    Alcotest.test_case "sequential write sharing" `Quick
      test_sequential_write_sharing;
    Alcotest.test_case "concurrent write sharing" `Quick
      test_concurrent_write_sharing_disables_caching;
    Alcotest.test_case "caching resumes" `Quick
      test_caching_resumes_after_sharing_ends;
    Alcotest.test_case "delayed writes flush on close" `Quick
      test_delayed_writes_flush_on_close;
    Alcotest.test_case "client cache bounded" `Quick test_client_cache_bounded;
    Alcotest.test_case "network time charged" `Quick
      test_network_time_is_charged;
  ]
