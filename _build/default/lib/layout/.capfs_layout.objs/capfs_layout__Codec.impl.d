lib/layout/codec.ml: Buffer Bytes Char Int64 Printf String
