lib/layout/layout.mli: Capfs_disk Inode
