lib/disk/disk_model.ml: Geometry Seek
