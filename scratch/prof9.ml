module Stats = Capfs_stats

let bench name f =
  let n = 200000 in
  let w0 = Gc.minor_words () in
  for i = 1 to n do f (float_of_int i *. 1e-6) done;
  Printf.printf "%-24s %.1f words/call\n" name ((Gc.minor_words () -. w0) /. float_of_int n)

let () =
  let latency = Stats.Sample_set.create ~cap:200_000 () in
  let windows = Stats.Interval.create ~width:900. () in
  let w = Stats.Welford.create () in
  bench "Sample_set.add" (fun x -> Stats.Sample_set.add latency x);
  bench "Interval.add" (fun x -> Stats.Interval.add windows ~time:x x);
  bench "Welford.add" (fun x -> Stats.Welford.add w x);
  bench "float id (box cost)" (fun x -> ignore (Sys.opaque_identity x))
