(** Host/disk connections (SCSI-2 bus model).

    "Connections are the links between the host and the disk sub-system…
    They also arbitrate if there is more than one controller that wants to
    send data over the same connection, to simulate connection contention
    (e.g. SCSI bus contention)." Devices acquire the bus for each phase
    (command, data, status) and release it in between, modelling SCSI
    disconnect/reconnect: a disk does its seek with the bus free for
    other disks on the same string.

    Transfer time = arbitration + per-phase overhead + bytes / rate. The
    current fibre is delayed by exactly that long while holding the bus. *)

type t

(** [scsi2 sched] is the paper's bus: 10 MB/s synchronous transfer,
    with small arbitration and per-phase overheads. *)
val scsi2 : ?registry:Capfs_stats.Registry.t -> ?name:string ->
  Capfs_sched.Sched.t -> t

(** [create ~rate_bytes_per_sec sched] is a bus with the given raw
    transfer rate; [arbitration] and [phase_overhead] are the fixed
    per-acquisition costs in seconds (both default to 0 — an idealised
    link). Registers its utilisation statistics under
    ["<name>."] when a [registry] is given. *)
val create :
  ?registry:Capfs_stats.Registry.t ->
  ?name:string ->
  rate_bytes_per_sec:float ->
  ?arbitration:float ->
  ?phase_overhead:float ->
  Capfs_sched.Sched.t ->
  t

(** The name given at creation (default ["bus"]); prefixes the bus's
    statistics. *)
val name : t -> string

(** [transfer t ~bytes] waits for bus ownership, holds the bus for the
    arbitration + overhead + transfer time, then releases it. [bytes = 0]
    models a command or status phase (overhead only). *)
val transfer : t -> bytes:int -> unit

(** Seconds the bus has spent busy since creation. *)
val busy_seconds : t -> float

(** Fraction of [elapsed] spent busy; for utilisation reports. *)
val utilization : t -> elapsed:float -> float
