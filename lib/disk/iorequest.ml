module Sched = Capfs_sched.Sched

type op = Read | Write

type t = {
  id : int;
  op : op;
  lba : int;
  sectors : int;
  mutable data : Data.t option;
  deadline : float option;
  submitted_at : float;
  mutable started_at : float;
  mutable completed_at : float;
  done_ev : Sched.event;
  mutable completed : bool;
  mutable error : Capfs_core.Errno.t option;
}

(* atomic: requests are minted from concurrently running experiment
   domains, and queue removal matches on id *)
let next_id = Atomic.make 1

let make sched op ~lba ~sectors ?deadline ?data () =
  if sectors < 1 then invalid_arg "Iorequest.make: sectors < 1";
  if lba < 0 then invalid_arg "Iorequest.make: negative lba";
  let now = Sched.now sched in
  {
    id = Atomic.fetch_and_add next_id 1;
    op;
    lba;
    sectors;
    data;
    deadline;
    submitted_at = now;
    started_at = now;
    completed_at = now;
    done_ev = Sched.new_event ~name:"iorequest.done" sched;
    completed = false;
    error = None;
  }

let complete sched t =
  if not t.completed then begin
    t.completed <- true;
    t.completed_at <- Sched.now sched;
    Sched.broadcast sched t.done_ev
  end

let fail sched t err =
  if not t.completed then begin
    t.error <- Some err;
    complete sched t
  end

let await sched t = if not t.completed then Sched.await sched t.done_ev

let await_timeout sched t dt =
  if t.completed then true else Sched.await_timeout sched t.done_ev dt

let wait_time t = t.started_at -. t.submitted_at
let service_time t = t.completed_at -. t.started_at
let response_time t = t.completed_at -. t.submitted_at
let last_lba t = t.lba + t.sectors

let pp ppf t =
  Format.fprintf ppf "#%d %s lba=%d n=%d" t.id
    (match t.op with Read -> "R" | Write -> "W")
    t.lba t.sectors
