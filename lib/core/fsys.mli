(** The assembled file-system instance.

    An [Fsys.t] wires the cut-and-paste components together: the
    scheduler, the block cache and a storage layout — with the cache's
    write-back path routed into the layout. Everything above (files,
    namespace, client interface) and everything below (disks, drivers)
    is identical between PFS and Patsy; only the scheduler's clock and
    the driver's transport differ. *)

type config = {
  block_bytes : int;
  track_atime : bool;
      (** update (and dirty) inode atimes on reads; off by default, as
          almost every trace study configures *)
  root_ino : int;  (** inode number of the root directory (1) *)
}

val default_config : config

type t = {
  sched : Capfs_sched.Sched.t;
  registry : Capfs_stats.Registry.t;
  cache : Capfs_cache.Cache.t;
  layout : Capfs_layout.Layout.t;
  config : config;
}

(** [create sched ~layout ~cache_config ()] builds the instance:
    allocates the cache with its write-back wired to
    [layout.write_blocks], and creates the root directory if the layout
    does not know it yet (fresh file system). [replacement] picks the
    cache replacement policy (default LRU). [arena] enables the
    zero-copy data plane: block payloads live in the slab arena and
    travel by reference down to the device boundary (see
    {!Capfs_cache.Cache.create}). *)
val create :
  ?registry:Capfs_stats.Registry.t ->
  ?config:config ->
  ?replacement:Capfs_cache.Replacement.t ->
  ?arena:Capfs_disk.Arena.t ->
  cache_config:Capfs_cache.Cache.config ->
  layout:Capfs_layout.Layout.t ->
  Capfs_sched.Sched.t ->
  t

val now : t -> float

(** Root directory inode. Raises {!Capfs_core.Errno.Error} if loading
    it fails. *)
val root : t -> Capfs_layout.Inode.t

(** Flush every dirty block and checkpoint the layout. *)
val sync : t -> (unit, Capfs_core.Errno.t) result
