(** NFS-flavoured front end.

    "We use NFS as the external PFS interface… The NFS class spawns a
    number of threads that wait for incoming mount and NFS requests.
    Whenever a request is received, the call is dispatched to one (or
    more) calls in the abstract client interface. Each thread in the NFS
    component acts as a representative of a client while the request is
    in progress."

    This is an in-process rendition of NFSv2's procedures: requests
    name files by opaque handles (inode numbers) plus names, workers
    pull them from a mailbox and reply through a per-call event — the
    RPC marshalling layer is the only thing left out (see DESIGN.md §3).
    It runs under either clock, so client/server interaction can also be
    simulated, as the paper plans for its client-caching work. *)

type fh = int

type error =
  | Noent
  | Exist
  | Notdir
  | Isdir
  | Notempty
  | Stale
  | Loop
  | Io  (** disk-level failure surfaced through the typed-error API *)

type attr = {
  a_kind : Capfs_layout.Inode.kind;
  a_size : int;
  a_nlink : int;
  a_mtime : float;
}

type request =
  | Getattr of fh
  | Setattr of { file : fh; size : int }
  | Lookup of { dir : fh; name : string }
  | Readlink of fh
  | Read of { file : fh; offset : int; count : int }
  | Write of { file : fh; offset : int; data : Capfs_disk.Data.t }
  | Create of { dir : fh; name : string }
  | Remove of { dir : fh; name : string }
  | Rename of { sdir : fh; sname : string; ddir : fh; dname : string }
  | Symlink of { dir : fh; name : string; target : string }
  | Mkdir of { dir : fh; name : string }
  | Rmdir of { dir : fh; name : string }
  | Readdir of fh
  | Commit of fh  (** NFSv3-style: force the file to stable storage *)
  | Statfs

type response =
  | Attr of attr
  | Handle of fh * attr
  | Payload of Capfs_disk.Data.t
  | Link of string
  | Entries of (string * fh) list
  | Fsinfo of { total_blocks : int; free_blocks : int }
  | Done
  | Error of error

type t

(** [serve client ~workers] spawns the worker fibres (daemons) and
    returns the server. *)
val serve : ?workers:int -> Capfs.Client.t -> t

(** Handle of the root directory (the MOUNT protocol's job). *)
val mount_root : t -> fh

(** [call t request] enqueues the request and blocks until a worker
    replies. *)
val call : t -> request -> response

(** Requests served so far. *)
val served : t -> int

val pp_error : Format.formatter -> error -> unit

(** Status code for a typed error ([ESTALE]/[EBADF] → [Stale],
    media/space failures → [Io], …). *)
val error_of_errno : Capfs_core.Errno.t -> error
