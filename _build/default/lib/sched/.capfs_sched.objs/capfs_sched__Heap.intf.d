lib/sched/heap.mli:
