module Prng = Capfs_stats.Prng

type decision = Pass | Transient_error | Hard_error | Stall of float

type t = {
  on : bool;
  plan : Plan.t;
  seed : int;
  rng : Prng.t;
  (* disk name -> set of latent bad lbas *)
  latent : (string, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable n_transient : int;
  mutable n_hard : int;
  mutable n_stall : int;
}

let make ~on ~seed plan =
  {
    on;
    plan;
    seed;
    rng = Prng.create ~seed;
    latent = Hashtbl.create 4;
    n_transient = 0;
    n_hard = 0;
    n_stall = 0;
  }

let null = make ~on:false ~seed:0 Plan.empty

let create ~seed plan =
  let seed = match plan.Plan.seed with Some s -> s | None -> seed in
  make ~on:(not (Plan.is_empty plan)) ~seed plan

let enabled t = t.on
let plan t = t.plan
let crash_at t = t.plan.Plan.crash_at

let register_disk t ~name ~total_sectors =
  if t.on && t.plan.Plan.latent > 0 && not (Hashtbl.mem t.latent name) then begin
    (* independent per-disk stream: placement does not depend on how
       many decide() draws other disks made before this one attached *)
    let rng = Prng.create ~seed:(t.seed lxor Hashtbl.hash name) in
    let bad = Hashtbl.create t.plan.Plan.latent in
    let n = Stdlib.min t.plan.Plan.latent total_sectors in
    let placed = ref 0 in
    while !placed < n do
      let lba = Prng.int rng total_sectors in
      if not (Hashtbl.mem bad lba) then begin
        Hashtbl.replace bad lba ();
        incr placed
      end
    done;
    Hashtbl.replace t.latent name bad
  end

let overlap_latent t ~disk ~lba ~sectors =
  match Hashtbl.find_opt t.latent disk with
  | None -> false
  | Some bad ->
    Hashtbl.length bad > 0
    &&
    let hit = ref false in
    for s = lba to lba + sectors - 1 do
      if Hashtbl.mem bad s then hit := true
    done;
    !hit

let repair_latent t ~disk ~lba ~sectors =
  match Hashtbl.find_opt t.latent disk with
  | None -> ()
  | Some bad ->
    if Hashtbl.length bad > 0 then
      for s = lba to lba + sectors - 1 do
        Hashtbl.remove bad s
      done

let decide t ~disk ~write ~lba ~sectors =
  if not t.on then Pass
  else begin
    (* one draw per request, whatever the outcome: the fault schedule
       stays aligned with the request sequence *)
    let u = Prng.float t.rng in
    if (not write) && overlap_latent t ~disk ~lba ~sectors then begin
      t.n_hard <- t.n_hard + 1;
      Hard_error
    end
    else begin
      if write then repair_latent t ~disk ~lba ~sectors;
      let p_err =
        if write then t.plan.Plan.write_error else t.plan.Plan.read_error
      in
      if u < p_err then begin
        t.n_transient <- t.n_transient + 1;
        Transient_error
      end
      else if u < p_err +. t.plan.Plan.stall_p then begin
        t.n_stall <- t.n_stall + 1;
        Stall t.plan.Plan.stall_s
      end
      else Pass
    end
  end

let transients t = t.n_transient
let hards t = t.n_hard
let stalls t = t.n_stall
