lib/layout/sim_layout.mli: Capfs_disk Capfs_sched Capfs_stats Layout
