lib/cache/dlist.mli:
