type ops = {
  o_name : string;
  o_insert : Block.t -> unit;
  o_access : Block.t -> unit;
  o_forget : Block.t -> unit;
  o_victim : unit -> Block.t option;
  o_count : unit -> int;
}

type t = ops

let name t = t.o_name
let insert t b = t.o_insert b
let access t b = t.o_access b
let forget t b = t.o_forget b
let victim t = t.o_victim ()
let count t = t.o_count ()

module Ktbl = Hashtbl.Make (Block.Key)

(* LRU on a doubly-linked list: front = most recent, victims from the
   back. Pinned blocks at the back are temporarily skipped by relinking
   them to the front (they are hot by definition: an I/O holds them). *)
let lru_ops list_name =
  let list : Block.t Dlist.t = Dlist.create () in
  let nodes : Block.t Dlist.node Ktbl.t = Ktbl.create 256 in
  let insert b =
    if not (Ktbl.mem nodes b.Block.key) then
      Ktbl.replace nodes b.Block.key (Dlist.push_front list b)
  in
  let access b =
    match Ktbl.find_opt nodes b.Block.key with
    | Some n -> Dlist.move_front list n
    | None -> ()
  in
  let forget b =
    match Ktbl.find_opt nodes b.Block.key with
    | Some n ->
      Dlist.remove list n;
      Ktbl.remove nodes b.Block.key
    | None -> ()
  in
  let victim () =
    let rec go attempts =
      if attempts = 0 then None
      else
        match Dlist.back list with
        | None -> None
        | Some b ->
          if Block.evictable b then begin
            forget b;
            Some b
          end
          else begin
            (match Ktbl.find_opt nodes b.Block.key with
            | Some n -> Dlist.move_front list n
            | None -> ());
            go (attempts - 1)
          end
    in
    go (Dlist.length list)
  in
  {
    o_name = list_name;
    o_insert = insert;
    o_access = access;
    o_forget = forget;
    o_victim = victim;
    o_count = (fun () -> Dlist.length list);
  }

let lru () = lru_ops "lru"

(* Array-backed set with O(1) swap-remove through Block.policy_slot. *)
module Pool = struct
  type pool = { mutable blocks : Block.t array; mutable len : int }

  let create () = { blocks = [||]; len = 0 }

  let add p b =
    if b.Block.policy_slot >= 0 then ()
    else begin
      if p.len = Array.length p.blocks then begin
        let grown = Array.make (Stdlib.max 16 (2 * p.len)) b in
        Array.blit p.blocks 0 grown 0 p.len;
        p.blocks <- grown
      end;
      p.blocks.(p.len) <- b;
      b.Block.policy_slot <- p.len;
      p.len <- p.len + 1
    end

  let remove p b =
    let i = b.Block.policy_slot in
    if i >= 0 && i < p.len && p.blocks.(i) == b then begin
      let last = p.blocks.(p.len - 1) in
      p.blocks.(i) <- last;
      last.Block.policy_slot <- i;
      b.Block.policy_slot <- -1;
      p.len <- p.len - 1
    end

  let min_by p key =
    let best = ref None in
    for i = 0 to p.len - 1 do
      let b = p.blocks.(i) in
      if Block.evictable b then
        match !best with
        | Some best_b when key best_b <= key b -> ()
        | Some _ | None -> best := Some b
    done;
    !best
  end

let random ~seed =
  let pool = Pool.create () in
  let rng = Capfs_stats.Prng.create ~seed in
  let victim () =
    if pool.Pool.len = 0 then None
    else begin
      (* a few random probes, then give up and scan *)
      let rec probe n =
        if n = 0 then Pool.min_by pool (fun b -> b.Block.last_access)
        else begin
          let b = pool.Pool.blocks.(Capfs_stats.Prng.int rng pool.Pool.len) in
          if Block.evictable b then Some b else probe (n - 1)
        end
      in
      match probe 8 with
      | Some b ->
        Pool.remove pool b;
        Some b
      | None -> None
    end
  in
  {
    o_name = "random";
    o_insert = Pool.add pool;
    o_access = (fun _ -> ());
    o_forget = Pool.remove pool;
    o_victim = victim;
    o_count = (fun () -> pool.Pool.len);
  }

let lfu () =
  let pool = Pool.create () in
  let victim () =
    match Pool.min_by pool (fun b -> b.Block.access_count) with
    | Some b ->
      Pool.remove pool b;
      Some b
    | None -> None
  in
  {
    o_name = "lfu";
    o_insert = Pool.add pool;
    o_access = (fun _ -> ());
    (* access_count lives on the block *)
    o_forget = Pool.remove pool;
    o_victim = victim;
    o_count = (fun () -> pool.Pool.len);
  }

let slru ~protected_capacity =
  if protected_capacity < 1 then invalid_arg "Replacement.slru: capacity < 1";
  let probation = lru_ops "slru.probation" in
  let protected_ = lru_ops "slru.protected" in
  let where : [ `Probation | `Protected ] Ktbl.t = Ktbl.create 256 in
  let insert b =
    if not (Ktbl.mem where b.Block.key) then begin
      probation.o_insert b;
      Ktbl.replace where b.Block.key `Probation
    end
  in
  let access b =
    match Ktbl.find_opt where b.Block.key with
    | Some `Probation ->
      (* promote; demote the protected tail if over capacity *)
      probation.o_forget b;
      protected_.o_insert b;
      Ktbl.replace where b.Block.key `Protected;
      if protected_.o_count () > protected_capacity then begin
        match protected_.o_victim () with
        | Some demoted ->
          probation.o_insert demoted;
          Ktbl.replace where demoted.Block.key `Probation
        | None -> ()
      end
    | Some `Protected -> protected_.o_access b
    | None -> ()
  in
  let forget b =
    match Ktbl.find_opt where b.Block.key with
    | Some `Probation ->
      probation.o_forget b;
      Ktbl.remove where b.Block.key
    | Some `Protected ->
      protected_.o_forget b;
      Ktbl.remove where b.Block.key
    | None -> ()
  in
  let victim () =
    let take seg =
      match seg.o_victim () with
      | Some b ->
        Ktbl.remove where b.Block.key;
        Some b
      | None -> None
    in
    match take probation with Some b -> Some b | None -> take protected_
  in
  {
    o_name = "slru";
    o_insert = insert;
    o_access = access;
    o_forget = forget;
    o_victim = victim;
    o_count = (fun () -> probation.o_count () + protected_.o_count ());
  }

(* Per-key access history as a fixed-size ring of the k most recent
   times — O(1) note and k-th-age lookup, no list rebuilt per access. *)
type lru_k_hist = { times : float array; mutable h_n : int; mutable head : int }

let lru_k ~k =
  if k < 1 then invalid_arg "Replacement.lru_k: k < 1";
  let pool = Pool.create () in
  let history : lru_k_hist Ktbl.t = Ktbl.create 256 in
  let note b =
    let h =
      match Ktbl.find_opt history b.Block.key with
      | Some h -> h
      | None ->
        let h = { times = Array.make k neg_infinity; h_n = 0; head = k - 1 } in
        Ktbl.replace history b.Block.key h;
        h
    in
    h.head <- (h.head + 1) mod k;
    h.times.(h.head) <- b.Block.last_access;
    if h.h_n < k then h.h_n <- h.h_n + 1
  in
  let kth_age b =
    match Ktbl.find_opt history b.Block.key with
    | Some h when h.h_n >= k ->
      (* k-th most recent = the oldest retained entry *)
      h.times.((h.head + 1) mod k)
    | Some _ | None -> neg_infinity (* young history: preferred victim *)
  in
  let victim () =
    match Pool.min_by pool kth_age with
    | Some b ->
      Pool.remove pool b;
      Ktbl.remove history b.Block.key;
      Some b
    | None -> None
  in
  {
    o_name = Printf.sprintf "lru-%d" k;
    o_insert =
      (fun b ->
        Pool.add pool b;
        note b);
    o_access = note;
    o_forget =
      (fun b ->
        Pool.remove pool b;
        Ktbl.remove history b.Block.key);
    o_victim = victim;
    o_count = (fun () -> pool.Pool.len);
  }

let known_policies = [ "lru"; "random"; "lfu"; "slru"; "lru-2" ]

let by_name ?(seed = 17) ?(capacity = 1024) = function
  | "lru" -> lru ()
  | "random" -> random ~seed
  | "lfu" -> lfu ()
  | "slru" -> slru ~protected_capacity:(Stdlib.max 1 (capacity / 2))
  | "lru-2" -> lru_k ~k:2
  | s -> invalid_arg ("Replacement.by_name: unknown policy " ^ s)
