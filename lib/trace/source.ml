type cursor = unit -> Record.t option

type inner =
  | Arr of Record.t array Lazy.t
  | Gen of (unit -> cursor)

type t = { src_name : string; inner : inner }

let name t = t.src_name

let of_array ?(name = "array") arr =
  { src_name = name; inner = Arr (Lazy.from_val arr) }

let of_lazy ?(name = "lazy") l = { src_name = name; inner = Arr l }
let of_fn ?(name = "cursor") f = { src_name = name; inner = Gen f }

(* Line-by-line file cursor: one open channel, one line and one record
   in memory at a time. The channel closes at EOF; abandoning a cursor
   mid-pass leaks the descriptor until GC finalizes it, which replay
   never does (it always drains). *)
let file_cursor parse_line path () =
  let ic = open_in path in
  let lineno = ref 0 in
  let closed = ref false in
  let rec next () =
    if !closed then None
    else
      match input_line ic with
      | exception End_of_file ->
        close_in ic;
        closed := true;
        None
      | line -> (
        incr lineno;
        match parse_line ~line:!lineno line with
        | Some r -> Some r
        | None -> next () (* comment / blank *))
  in
  next

let sprite_file path =
  { src_name = path; inner = Gen (file_cursor Sprite_format.parse_line path) }

let coda_file path =
  { src_name = path; inner = Gen (file_cursor Coda_format.parse_line path) }

let as_array t =
  match t.inner with Arr l -> Some (Lazy.force l) | Gen _ -> None

let array_cursor arr () =
  let i = ref 0 in
  fun () ->
    if !i >= Array.length arr then None
    else begin
      let r = arr.(!i) in
      incr i;
      Some r
    end

let cursor t =
  match t.inner with
  | Arr l -> array_cursor (Lazy.force l) ()
  | Gen f -> f ()

let to_array t =
  match t.inner with
  | Arr l -> Lazy.force l
  | Gen f ->
    let next = f () in
    let rec drain acc =
      match next () with None -> acc | Some r -> drain (r :: acc)
    in
    Array.of_list (List.rev (drain []))

let length t =
  match t.inner with
  | Arr l -> Array.length (Lazy.force l)
  | Gen f ->
    let next = f () in
    let rec count n = match next () with None -> n | Some _ -> count (n + 1) in
    count 0
