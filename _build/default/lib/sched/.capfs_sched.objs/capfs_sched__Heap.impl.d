lib/sched/heap.ml: Array Stdlib
