lib/patsy/experiment.mli: Capfs Capfs_disk Capfs_layout Capfs_sched Capfs_stats Capfs_trace Replay
