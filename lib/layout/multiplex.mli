(** Multi-volume layout router.

    The traced Sprite server held "a total of 14 file-systems on the set
    of [10] disks" behind one 128 MB cache. This module presents several
    volume layouts (each typically an LFS on its own disk — simulated in
    Patsy, a backing file per shard in the PFS server) as one
    {!Layout.t}, so a single server-wide cache and namespace sit on top,
    while I/O spreads over the disks.

    The volumes must have been created with disjoint inode spaces
    ([Lfs.config.first_ino = v + 1], [ino_stride = nvolumes]); requests
    route by [ino mod nvolumes]. New inodes go to volumes round-robin —
    except directories, which follow their caller's choice of layout
    only through this allocator, so a file's blocks always live on one
    disk, like a real multi-volume server. *)

(** [layout volumes] is the routing layout over [volumes]; raises
    [Invalid_argument] on an empty array. *)
val layout : Layout.t array -> Layout.t
