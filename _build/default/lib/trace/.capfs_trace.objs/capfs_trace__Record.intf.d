lib/trace/record.mli: Format
