(** Clean-block replacement policies.

    "Different cache administration policies are easily implemented by
    re-implementing the replacement methods of the base-class … (e.g. RR,
    LFU, SLRU, LRU-K or adaptive)". A policy tracks the cache's {e clean}
    blocks only — dirty blocks are never replaced, they must be flushed
    first — and elects eviction victims. Pinned blocks are skipped.

    All policies are deterministic given their inputs ([random] draws
    from an explicit seed), so simulation runs replay exactly. *)

type t

val name : t -> string

(** The block just joined the clean set. *)
val insert : t -> Block.t -> unit

(** A clean block was accessed (hit). *)
val access : t -> Block.t -> unit

(** The block left the clean set (dirtied, invalidated or evicted by the
    cache itself). No-op if the policy does not know it. *)
val forget : t -> Block.t -> unit

(** Remove and return the policy's eviction victim: an evictable
    (clean, unpinned) block, or [None] if every tracked block is pinned. *)
val victim : t -> Block.t option

(** Tracked block count (diagnostics). *)
val count : t -> int

(** Least-recently-used, the paper's base policy. *)
val lru : unit -> t

(** Uniform random replacement ("RR"). *)
val random : seed:int -> t

(** Least-frequently-used (whole-lifetime access counts). *)
val lfu : unit -> t

(** Segmented LRU: a probationary and a protected segment; a hit in
    probation promotes, the protected segment is bounded by
    [protected_capacity] blocks and overflows back into probation. *)
val slru : protected_capacity:int -> t

(** LRU-K (O'Neil et al.): evict the block whose [k]-th most recent
    reference is oldest; blocks with fewer than [k] references are
    preferred victims, oldest-first. *)
val lru_k : k:int -> t

(** Constructor by name: "lru", "random", "lfu", "slru", "lru-2". *)
val by_name : ?seed:int -> ?capacity:int -> string -> t

val known_policies : string list
