lib/stats/interval.ml: Format List Welford
