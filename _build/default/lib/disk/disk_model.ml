type cache_config = {
  cache_bytes : int;
  read_ahead_bytes : int;
  immediate_report : bool;
}

type t = {
  model_name : string;
  geometry : Geometry.t;
  seek : Seek.t;
  rpm : float;
  head_switch : float;
  controller_overhead : float;
  cache : cache_config;
}

let rotation_time t = 60. /. t.rpm
let sector_time t = rotation_time t /. float_of_int t.geometry.Geometry.sectors_per_track

let media_rate t =
  float_of_int
    (t.geometry.Geometry.sectors_per_track * t.geometry.Geometry.sector_bytes)
  /. rotation_time t

let hp97560_geometry =
  Geometry.v ~cylinders:1962 ~heads:19 ~sectors_per_track:72 ~sector_bytes:512
    ~track_skew:8 ~cylinder_skew:18 ()

let hp97560 =
  {
    model_name = "HP97560";
    geometry = hp97560_geometry;
    seek = Seek.hp97560;
    rpm = 4002.;
    head_switch = 2.5e-3;
    controller_overhead = 2.0e-3;
    cache =
      {
        cache_bytes = 128 * 1024;
        read_ahead_bytes = 4 * 1024;
        immediate_report = true;
      };
  }

let naive =
  {
    model_name = "naive";
    geometry = hp97560_geometry;
    seek = Seek.constant 10.0e-3;
    rpm = 4002.;
    head_switch = 0.;
    controller_overhead = 0.;
    cache = { cache_bytes = 0; read_ahead_bytes = 0; immediate_report = false };
  }

let tiny_test =
  {
    model_name = "tiny-test";
    geometry =
      Geometry.v ~cylinders:16 ~heads:2 ~sectors_per_track:32
        ~sector_bytes:512 ~track_skew:2 ~cylinder_skew:4 ();
    seek = Seek.linear ~single:0.5e-3 ~max:4.0e-3 ~cylinders:16;
    rpm = 6000.;
    head_switch = 0.5e-3;
    controller_overhead = 0.2e-3;
    cache =
      { cache_bytes = 16 * 1024; read_ahead_bytes = 4096; immediate_report = false };
  }
