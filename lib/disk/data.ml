type t = Real of bytes | Sim of int

let real n =
  if n < 0 then invalid_arg "Data.real: negative length";
  Real (Bytes.make n '\000')

let sim n =
  if n < 0 then invalid_arg "Data.sim: negative length";
  Sim n

let of_string s = Real (Bytes.of_string s)
let length = function Real b -> Bytes.length b | Sim n -> n

let check_range what t pos len =
  if pos < 0 || len < 0 || pos + len > length t then
    invalid_arg (Printf.sprintf "Data.%s: range [%d, %d) of %d" what pos
                   (pos + len) (length t))

let sub t ~pos ~len =
  check_range "sub" t pos len;
  match t with
  | Real b -> Real (Bytes.sub b pos len)
  (* a full-range sub of simulated data is the value itself — [Sim] is
     immutable, so sharing is safe, and replay's block-aligned I/O hits
     this on nearly every operation *)
  | Sim n -> if len = n then t else Sim len

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  check_range "blit(src)" src src_pos len;
  check_range "blit(dst)" dst dst_pos len;
  match (src, dst) with
  | Real s, Real d -> Bytes.blit s src_pos d dst_pos len
  | Sim _, Real d -> Bytes.fill d dst_pos len '\000'
  | (Real _ | Sim _), Sim _ -> ()

let concat ts =
  let total = List.fold_left (fun n t -> n + length t) 0 ts in
  if List.for_all (function Real _ -> true | Sim _ -> false) ts then begin
    let out = Bytes.create total in
    let pos = ref 0 in
    List.iter
      (function
        | Real b ->
          Bytes.blit b 0 out !pos (Bytes.length b);
          pos := !pos + Bytes.length b
        | Sim _ -> assert false)
      ts;
    Real out
  end
  else Sim total

let to_string = function
  | Real b -> Bytes.to_string b
  | Sim n -> String.make n '\000'

let is_real = function Real _ -> true | Sim _ -> false

let copy_seconds ~rate_bytes_per_sec len =
  if rate_bytes_per_sec <= 0. then 0.
  else float_of_int len /. rate_bytes_per_sec
