module Sched = Capfs_sched.Sched
module Sync = Capfs_sched.Sync

let header_bytes = 160

type t = {
  sched : Sched.t;
  bandwidth : float;
  latency : float;
  medium : Sync.Mutex.t;
  mutable carried : int;
  c_transfer : Capfs_stats.Counter.t;
  nname : string;
}

let create ?registry ?(name = "net") ~bandwidth_bytes_per_sec ~latency sched =
  if bandwidth_bytes_per_sec <= 0. then invalid_arg "Netlink.create: bandwidth";
  let c_transfer =
    match registry with
    | Some r ->
      Capfs_stats.Registry.register r
        (Capfs_stats.Stat.scalar (name ^ ".transfer"));
      Capfs_stats.Registry.counter r (name ^ ".transfer")
    | None -> Capfs_stats.Counter.null
  in
  {
    sched;
    bandwidth = bandwidth_bytes_per_sec;
    latency;
    medium = Sync.Mutex.create ~name sched;
    carried = 0;
    c_transfer;
    nname = name;
  }

let ethernet_10 ?registry sched =
  create ?registry ~name:"ether10"
    ~bandwidth_bytes_per_sec:(10.0e6 /. 8.)
    ~latency:0.5e-3 sched

module Frame = struct
  module Errno = Capfs_core.Errno

  let header_bytes = 16
  let magic = 0xCAF5
  let default_max_payload = 1 lsl 20

  type t = { req_id : int; opcode : int; payload : string }

  (* header layout, little-endian: magic u16 | opcode u16 | req_id u32 |
     payload_len u32 | reserved u32 (zero) *)
  let encode_header b f =
    Bytes.set_uint16_le b 0 magic;
    Bytes.set_uint16_le b 2 (f.opcode land 0xffff);
    Bytes.set_int32_le b 4 (Int32.of_int f.req_id);
    Bytes.set_int32_le b 8 (Int32.of_int (String.length f.payload));
    Bytes.set_int32_le b 12 0l

  let to_bytes f =
    let b = Bytes.create (header_bytes + String.length f.payload) in
    encode_header b f;
    Bytes.blit_string f.payload 0 b header_bytes (String.length f.payload);
    b

  (* Retry-on-EINTR write loop; short writes restart at the cut. With
     [sched], EAGAIN on a non-blocking fd backs off through the
     scheduler so the writing fibre never spins a whole domain. *)
  let write_all ?sched fd b =
    let n = Bytes.length b in
    let rec go off =
      if off >= n then Ok ()
      else
        match Unix.write fd b off (n - off) with
        | 0 -> Error Errno.EIO
        | k -> go (off + k)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          -> (
          match sched with
          | Some s ->
            Capfs_sched.Sched.sleep s 0.0002;
            go off
          | None -> Error Errno.EAGAIN)
        | exception Unix.Unix_error (e, _, _) -> Error (Errno.of_unix e)
    in
    go 0

  let write ?sched fd f = write_all ?sched fd (to_bytes f)

  (* Reassembly loop shared by the blocking and fibre readers: [wait]
     is what to do when the fd has no bytes yet (block, or park the
     fibre on the scheduler's readiness list). Returns [Ok None] on a
     clean EOF at a frame boundary; EOF mid-header or mid-payload is a
     torn frame — [Error EIO]. *)
  let read_into ~wait fd =
    let read_exact b off len ~started =
      let rec go off len started =
        if len = 0 then Ok true
        else
          match Unix.read fd b off len with
          | 0 -> if started then Error Errno.EIO else Ok false
          | k -> go (off + k) (len - k) true
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len started
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            wait ();
            go off len started
          | exception Unix.Unix_error (e, _, _) -> Error (Errno.of_unix e)
      in
      go off len started
    in
    fun ~max_payload ->
      let hdr = Bytes.create header_bytes in
      match read_exact hdr 0 header_bytes ~started:false with
      | Error _ as e -> e
      | Ok false -> Ok None
      | Ok true ->
        if Bytes.get_uint16_le hdr 0 <> magic then Error Errno.EINVAL
        else begin
          let opcode = Bytes.get_uint16_le hdr 2 in
          let req_id = Int32.to_int (Bytes.get_int32_le hdr 4) in
          let len = Int32.to_int (Bytes.get_int32_le hdr 8) in
          if len < 0 || len > max_payload then Error Errno.EINVAL
          else
            let pb = Bytes.create len in
            match read_exact pb 0 len ~started:true with
            | Error _ as e -> e
            | Ok _ ->
              Ok
                (Some
                   { req_id; opcode; payload = Bytes.unsafe_to_string pb })
        end

  let read ?(max_payload = default_max_payload) fd =
    (* blocking fd: an EAGAIN here means someone marked it non-blocking
       without a scheduler to park on — yielding the CPU briefly is the
       least-wrong answer *)
    read_into ~wait:(fun () -> ignore (Unix.select [ fd ] [] [] 0.05)) fd
      ~max_payload

  let read_sched ?(max_payload = default_max_payload) sched fd =
    read_into
      ~wait:(fun () -> Capfs_sched.Sched.wait_readable sched fd)
      fd ~max_payload
end

let transfer t ~bytes =
  if bytes < 0 then invalid_arg "Netlink.transfer: negative size";
  let wire = bytes + header_bytes in
  Sync.Mutex.with_lock t.medium (fun () ->
      let dt = t.latency +. (float_of_int wire /. t.bandwidth) in
      Sched.sleep t.sched dt;
      t.carried <- t.carried + bytes;
      Capfs_stats.Counter.record t.c_transfer dt)

let bytes_carried t = t.carried
