lib/pfs/file_blockdev.mli: Capfs_disk Capfs_sched
