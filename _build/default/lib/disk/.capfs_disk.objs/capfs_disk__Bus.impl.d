lib/disk/bus.ml: Capfs_sched Capfs_stats Stdlib
