(** Doubly-linked list with O(1) removal through node handles.

    The cache's LRU/dirty orderings live on these lists; a block keeps the
    handle of its node so moving it to the hot end or unlinking it on
    eviction costs O(1) — the exact "short-cut in list maintenance" the
    paper found it needed after profiling the simulator (§5.2). *)

type 'a t
type 'a node

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push_front t v] / [push_back t v] insert and return the handle. *)
val push_front : 'a t -> 'a -> 'a node

val push_back : 'a t -> 'a -> 'a node

(** [remove t node] unlinks the node. Raises [Invalid_argument] when the
    node is not currently linked on [t]. *)
val remove : 'a t -> 'a node -> unit

(** [move_front t node] / [move_back t node] relink an existing node. *)
val move_front : 'a t -> 'a node -> unit

val move_back : 'a t -> 'a node -> unit

val front : 'a t -> 'a option
val back : 'a t -> 'a option
val pop_front : 'a t -> 'a option
val pop_back : 'a t -> 'a option
val value : 'a node -> 'a

(** Front-to-back fold. *)
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val iter : ('a -> unit) -> 'a t -> unit

(** [find t p] is the first (front-most) element satisfying [p]. *)
val find : 'a t -> ('a -> bool) -> 'a option

val to_list : 'a t -> 'a list

(** Front-to-back snapshot as a fresh array (no intermediate list). *)
val to_array : 'a t -> 'a array
