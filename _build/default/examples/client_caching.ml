(* Client caching with Sprite-style consistency — the §3 future work:
   "By using client caching we hope to reduce the amount of network
   traffic and file latency."

   Four diskless workstations on a shared 10 Mbit/s Ethernet re-read a
   hot set of files from the PFS server. With a local block cache each
   workstation fetches a file once; without, every read crosses the
   wire. Consistency is kept by the version/disable protocol — the demo
   ends with a write-sharing episode to show stale data is impossible.

   Run: dune exec examples/client_caching.exe *)

module Sched = Capfs_sched.Sched
module Data = Capfs_disk.Data
module Driver = Capfs_disk.Driver
module Cache = Capfs_cache.Cache
module Lfs = Capfs_layout.Lfs
module Netlink = Capfs_ccache.Netlink
module Cc_server = Capfs_ccache.Cc_server
module Cc_client = Capfs_ccache.Cc_client

let workstations = 4
let files = 8
let file_bytes = 64 * 1024
let rounds = 5

let run ~cache_blocks =
  let s = Sched.create ~clock:`Virtual () in
  let carried = ref 0 and elapsed = ref 0. in
  ignore
    (Sched.spawn s (fun () ->
         let drv =
           Driver.create s
             (Driver.mem_transport ~sector_bytes:512 ~total_sectors:65536 s ())
         in
         let layout = Lfs.format_and_mount s drv ~block_bytes:4096 in
         let fs =
           Capfs.Fsys.create
             ~cache_config:(Cache.default_config ~capacity_blocks:512)
             ~layout s
         in
         let server_fs = Capfs.Client.create fs in
         let net = Netlink.ethernet_10 s in
         let server = Cc_server.create server_fs net in
         (* publish the hot set *)
         let publisher = Cc_client.attach server ~client_id:0 ~cache_blocks:64 in
         for f = 0 to files - 1 do
           let p = Printf.sprintf "/hot%d" f in
           Cc_client.open_ publisher p Cc_server.Write;
           Cc_client.write publisher p ~offset:0
             (Data.of_string (String.make file_bytes 'h'));
           Cc_client.close_ publisher p
         done;
         let base_bytes = Netlink.bytes_carried net in
         let t0 = Sched.now s in
         let remaining = ref workstations in
         let all_done = Sched.new_event s in
         for w = 1 to workstations do
           ignore
             (Sched.spawn s (fun () ->
                  let c = Cc_client.attach server ~client_id:w ~cache_blocks in
                  for _ = 1 to rounds do
                    for f = 0 to files - 1 do
                      let p = Printf.sprintf "/hot%d" f in
                      Cc_client.open_ c p Cc_server.Read;
                      ignore (Cc_client.read c p ~offset:0 ~bytes:file_bytes);
                      Cc_client.close_ c p
                    done
                  done;
                  decr remaining;
                  if !remaining = 0 then Sched.broadcast s all_done))
         done;
         Sched.await s all_done;
         carried := Netlink.bytes_carried net - base_bytes;
         elapsed := Sched.now s -. t0));
  Sched.run s;
  (!carried, !elapsed)

let () =
  Format.printf
    "%d workstations re-read %d x %d KB files %d times over 10 Mbit/s \
     Ethernet:@."
    workstations files (file_bytes / 1024) rounds;
  let uncached_bytes, uncached_time = run ~cache_blocks:1 in
  let cached_bytes, cached_time = run ~cache_blocks:256 in
  Format.printf "  no client cache:   %6.1f MB on the wire, %6.2f s@."
    (float_of_int uncached_bytes /. 1048576.)
    uncached_time;
  Format.printf "  with client cache: %6.1f MB on the wire, %6.2f s@."
    (float_of_int cached_bytes /. 1048576.)
    cached_time;
  Format.printf "  traffic saved: %.0f%%, latency saved: %.0f%%@."
    (100. *. (1. -. (float_of_int cached_bytes /. float_of_int uncached_bytes)))
    (100. *. (1. -. (cached_time /. uncached_time)));
  (* the consistency coda: writer + reader share a file; the reader can
     never see stale contents *)
  let s = Sched.create ~clock:`Virtual () in
  ignore
    (Sched.spawn s (fun () ->
         let drv =
           Driver.create s
             (Driver.mem_transport ~sector_bytes:512 ~total_sectors:32768 s ())
         in
         let layout = Lfs.format_and_mount s drv ~block_bytes:4096 in
         let fs =
           Capfs.Fsys.create
             ~cache_config:(Cache.default_config ~capacity_blocks:128)
             ~layout s
         in
         let server = Cc_server.create (Capfs.Client.create fs)
             (Netlink.ethernet_10 s) in
         let a = Cc_client.attach server ~client_id:1 ~cache_blocks:64 in
         let b = Cc_client.attach server ~client_id:2 ~cache_blocks:64 in
         Cc_client.open_ a "/status" Cc_server.Write;
         Cc_client.write a "/status" ~offset:0 (Data.of_string "booting ");
         Cc_client.open_ b "/status" Cc_server.Read;
         Format.printf "@.write sharing: reader sees %S"
           (Data.to_string (Cc_client.read b "/status" ~offset:0 ~bytes:8));
         Cc_client.write a "/status" ~offset:0 (Data.of_string "running!");
         Format.printf " then %S — never stale.@."
           (Data.to_string (Cc_client.read b "/status" ~offset:0 ~bytes:8));
         Cc_client.close_ a "/status";
         Cc_client.close_ b "/status"));
  Sched.run s
