lib/disk/geometry.ml: Printf
