test/test_core.ml: Alcotest Capfs Capfs_cache Capfs_disk Capfs_layout Capfs_sched Capfs_stats Char Client Dir File Fsys Gen Hashtbl List Namespace Option Printf QCheck QCheck_alcotest Stdlib String
