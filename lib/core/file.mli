(** Instantiated files.

    "Abstract client requests are dispatched to so-called instantiated
    files. An instantiated file is used to control a file that has been
    loaded into the file-system cache" — it holds the in-core inode,
    routes reads and writes through the block cache (read-modify-write
    for partial blocks), and implements per-type behaviour: regular
    files, directories, symbolic links and {e active} multimedia files
    whose own fibre pre-loads data ahead of the reader. *)

type t

(** [instantiate fsys inode] wraps an in-core inode. Multimedia inodes
    get their active prefetch fibre when first opened. *)
val instantiate : Fsys.t -> Capfs_layout.Inode.t -> t

val inode : t -> Capfs_layout.Inode.t
val ino : t -> int
val kind : t -> Capfs_layout.Inode.kind
val size : t -> int

(** The file system's block size; writes aligned to it replace blocks
    wholesale with no read-modify-write. *)
val block_bytes : t -> int

(** [read t ~offset ~bytes] returns the data actually read (short at
    EOF; empty beyond it). Holes read as zeroes. *)
val read : t -> offset:int -> bytes:int -> Capfs_disk.Data.t

(** [write t ~offset data] buffers the write in the cache (write-back)
    and grows the file as needed. *)
val write : t -> offset:int -> Capfs_disk.Data.t -> unit

(** Shrink or grow (sparsely) to [size] bytes. Shrinking drops cached
    blocks beyond the new end — in-memory dirty data dies without disk
    traffic. *)
val truncate : t -> size:int -> unit

(** Drop the file's cached blocks without touching the layout: unlike
    {!truncate}, the on-disk block mapping survives. An unflushed dirty
    version dies in memory (the write-saving effect), and the next
    write starts a fresh delayed-write aging clock. *)
val drop_cached : t -> unit

(** Write the file's dirty blocks to stable storage (fsync). *)
val flush : t -> unit

(** {2 Open-count plumbing (used by the file table)} *)

val opened : t -> unit
val closed : t -> unit
val open_count : t -> int

(** {2 Multimedia}

    A multimedia file is {e active}: while open, a dedicated fibre reads
    ahead of the highest offset any client has read, keeping
    [mm_window_blocks] blocks resident so real-time readers never stall
    on the disk. It stops when the file is closed. *)

val mm_window_blocks : int
