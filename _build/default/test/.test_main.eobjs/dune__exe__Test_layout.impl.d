test/test_layout.ml: Alcotest Array Capfs_disk Capfs_layout Capfs_sched Capfs_stats Char Codec Ffs Fun Gen Hashtbl Inode Jfs Layout Lfs List Printf QCheck QCheck_alcotest Sim_layout String
