lib/trace/sprite_format.ml: Buffer Format List Printf Record String
