examples/disk_model.ml: Capfs_disk Capfs_sched Capfs_stats Format List
