(** Cache block descriptors.

    A block is identified by (file, index) — the cache is a file-block
    cache, as in the paper, not a device-block cache: the flush policies
    reason about "the file associated with the oldest dirty block", and
    truncate/delete drop a file's dirty blocks before they ever reach the
    disk (the write-saving effect the experiments measure). *)

module Key : sig
  (** (inode number, block index within the file), packed into one
      immediate [int]: ino in the high bits, index in the low
      {!index_bits}. Keys built on the read/write hot path therefore
      allocate nothing, and hashing them is pure integer arithmetic
      instead of a polymorphic traversal of a boxed pair. *)
  type t = private int

  val index_bits : int

  (** Largest representable block index, [2^index_bits - 1] (a 32 TB
      file at 4 KB blocks). *)
  val max_index : int

  (** Largest representable inode number ([2^37 - 1] on 64-bit). *)
  val max_ino : int

  (** [v ino index] packs a key; raises [Invalid_argument] if either
      component is negative or exceeds its field width. *)
  val v : int -> int -> t

  val ino : t -> int
  val index : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int

  (** Multiplicative mixing hash — spreads ino and index bits across
      the low bits that [Hashtbl]'s power-of-two mask keeps. *)
  val hash : t -> int

  val pp : Format.formatter -> t -> unit
end

type state =
  | Clean    (** matches the on-disk contents *)
  | Dirty    (** newer than disk; scheduled to be written eventually *)
  | Flushing (** a write-back holds a snapshot; re-writes re-dirty it *)

type t = {
  key : Key.t;
  mutable data : Capfs_disk.Data.t;
  mutable state : state;
  mutable dirtied_at : float;   (** when it last became dirty *)
  mutable last_access : float;
  mutable access_count : int;   (** for frequency-based replacement *)
  mutable version : int;        (** bumped by every write *)
  mutable in_nvram : bool;
  mutable pinned : int;         (** >0 while an I/O or fill references it *)
  mutable policy_slot : int;    (** private to the replacement policy *)
  mutable zombie : bool;
      (** invalidated while a flush snapshot was in flight; the flusher
          discards it on completion *)
}

val make : key:Key.t -> data:Capfs_disk.Data.t -> now:float -> t
val ino : t -> int
val index : t -> int
val is_dirty : t -> bool
val evictable : t -> bool
val pin : t -> unit
val unpin : t -> unit
val pp : Format.formatter -> t -> unit
