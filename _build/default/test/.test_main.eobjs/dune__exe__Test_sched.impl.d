test/test_sched.ml: Alcotest Buffer Bytes Capfs_sched Char Heap List Mailbox QCheck QCheck_alcotest Sched String Sync Unix
