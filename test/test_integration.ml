(* Cross-cutting integration tests: the same framework code over
   different substrates (FFS layout, pure-simulation layout, Coda
   traces, NVRAM stacks), plus whole-stack invariant properties. *)

open Capfs
module Sched = Capfs_sched.Sched
module Data = Capfs_disk.Data
module Driver = Capfs_disk.Driver
module Cache = Capfs_cache.Cache
module Ffs = Capfs_layout.Ffs
module Lfs = Capfs_layout.Lfs
module Sim_layout = Capfs_layout.Sim_layout
module Inode = Capfs_layout.Inode
module Record = Capfs_trace.Record
module Experiment = Capfs_patsy.Experiment
module Replay = Capfs_patsy.Replay

let run_fs f =
  let s = Sched.create ~clock:`Virtual () in
  ignore (Sched.spawn s (fun () -> f s));
  Sched.run s

let cache_config capacity =
  {
    Cache.block_bytes = 4096;
    capacity_blocks = capacity;
    nvram_blocks = 0;
    trigger = Cache.Demand;
    scope = `Whole_file;
    async_flush = true;
    mem_copy_rate = 0.;
    coalesce = false;
    flush_window = 4;
    max_extent_blocks = 64;
  }

(* The client stack over the FFS baseline layout: cut-and-paste means
   the whole upper half works unchanged. *)
let test_client_over_ffs () =
  run_fs (fun s ->
      let drv =
        Driver.create s
          (Driver.mem_transport ~sector_bytes:512 ~total_sectors:16384 s ())
      in
      let layout =
        Ffs.format_and_mount
          ~config:{ Ffs.group_blocks = 256; inodes_per_group = 32 }
          s drv ~block_bytes:4096
      in
      let fs = Fsys.create ~cache_config:(cache_config 64) ~layout s in
      let c = Client.create fs in
      Client.mkdir_exn c "/ffs";
      Client.open_exn c ~client:1 "/ffs/file" Client.WO;
      Client.write_exn c ~client:1 "/ffs/file" ~offset:0
        (Data.of_string (String.make 10000 'F'));
      Client.fsync_exn c "/ffs/file";
      let d = Client.read_exn c ~client:1 "/ffs/file" ~offset:0 ~bytes:10000 in
      Alcotest.(check string) "ffs roundtrip" (String.make 10000 'F')
        (Data.to_string d);
      Client.sync_exn c;
      (* remount from the image *)
      let layout2 = Ffs.mount s drv in
      let fs2 = Fsys.create ~cache_config:(cache_config 64) ~layout:layout2 s in
      let c2 = Client.create fs2 in
      let d2 = Client.read_exn c2 ~client:1 "/ffs/file" ~offset:0 ~bytes:10000 in
      Alcotest.(check string) "ffs remount" (String.make 10000 'F')
        (Data.to_string d2))

(* The client stack over the pure-simulation layout and a simulated
   HP97560 with no backing bytes: exactly Patsy's original mode, where
   only timing matters. *)
let test_client_over_sim_layout () =
  run_fs (fun s ->
      let bus = Capfs_disk.Bus.scsi2 s in
      let disk = Capfs_disk.Sim_disk.create s Capfs_disk.Disk_model.hp97560 bus in
      let drv = Driver.create s (Driver.sim_transport disk) in
      let layout = Sim_layout.create ~seed:3 s drv ~block_bytes:4096 in
      let fs = Fsys.create ~cache_config:(cache_config 32) ~layout s in
      let c = Client.create fs in
      Client.mkdir_exn c "/sim";
      Client.open_exn c ~client:1 "/sim/f" Client.WO;
      let t0 = Sched.now s in
      Client.write_exn c ~client:1 "/sim/f" ~offset:0 (Data.sim 65536);
      Client.fsync_exn c "/sim/f";
      let flush_time = Sched.now s -. t0 in
      if flush_time <= 0. then
        Alcotest.fail "simulated flush must cost simulated time";
      (* read back: contents are simulated, length is what matters *)
      let d = Client.read_exn c ~client:1 "/sim/f" ~offset:0 ~bytes:65536 in
      Alcotest.(check int) "length" 65536 (Data.length d);
      Alcotest.(check int) "size" 65536 (Client.stat_exn c "/sim/f").Client.st_size)

(* NVRAM-equipped full stack: dirty data bounded while ordinary I/O
   proceeds. *)
let test_client_with_nvram_stack () =
  run_fs (fun s ->
      let drv =
        Driver.create s
          (Driver.mem_transport ~latency:0.001 ~sector_bytes:512
             ~total_sectors:32768 s ())
      in
      let layout =
        Lfs.format_and_mount
          ~config:{ Lfs.default_config with Lfs.seg_blocks = 32;
                    checkpoint_blocks = 16 }
          s drv ~block_bytes:4096
      in
      let cfg = { (cache_config 64) with Cache.nvram_blocks = 16 } in
      let fs = Fsys.create ~cache_config:cfg ~layout s in
      let c = Client.create fs in
      for i = 0 to 9 do
        let p = Printf.sprintf "/f%d" i in
        Client.open_exn c ~client:1 p Client.WO;
        Client.write_exn c ~client:1 p ~offset:0
          (Data.of_string (String.make 16384 (Char.chr (97 + i))))
      done;
      Alcotest.(check bool) "nvram bounded" true
        (Cache.nvram_used fs.Fsys.cache <= 16);
      for i = 0 to 9 do
        let p = Printf.sprintf "/f%d" i in
        let d = Client.read_exn c ~client:1 p ~offset:0 ~bytes:16384 in
        Alcotest.(check string) p (String.make 16384 (Char.chr (97 + i)))
          (Data.to_string d)
      done)

(* A Coda-format trace drives the same replay machinery. *)
let test_coda_trace_replay () =
  let text =
    String.concat "\n"
      [
        "# coda-style session";
        "0.100000 1 OPEN 7f01:10 w";
        "? 1 STORE 7f01:10 0 8192";
        "0.400000 1 CLOSE 7f01:10";
        "0.600000 2 OPEN 7f01:10 r";
        "? 2 FETCH 7f01:10 0 8192";
        "0.900000 2 CLOSE 7f01:10";
        "1.000000 1 GETATTR 7f01:10";
        "1.200000 1 REMOVE 7f01:10";
      ]
  in
  let trace = Capfs_trace.Coda_format.of_string text in
  Alcotest.(check int) "parsed" 8 (Array.length trace);
  let config =
    {
      (Experiment.default Experiment.Ups) with
      Experiment.ndisks = 1;
      nbuses = 1;
      cache_mb = 2;
      nvram_mb = 1;
    }
  in
  let o = Experiment.run config ~trace:(Capfs_trace.Source.of_array trace) in
  Alcotest.(check int) "all ops" 8 o.Experiment.replay.Replay.operations;
  Alcotest.(check int) "no errors" 0 o.Experiment.replay.Replay.errors

(* Run PFS (real image) and Patsy (simulated disks) over the *same*
   operations and compare observable state — the cut-and-paste promise. *)
let test_pfs_and_patsy_agree_on_state () =
  let ops c =
    Client.mkdir_exn c "/proj";
    Client.open_exn c ~client:1 "/proj/report" Client.WO;
    Client.write_exn c ~client:1 "/proj/report" ~offset:0
      (Data.of_string (String.make 5000 'r'));
    Client.close_exn c ~client:1 "/proj/report";
    Client.truncate_exn c "/proj/report" ~size:3000;
    Client.create_file_exn c "/proj/temp";
    Client.delete_exn c "/proj/temp";
    ( (Client.stat_exn c "/proj/report").Client.st_size,
      List.map (fun e -> e.Dir.name) (Client.readdir_exn c "/proj") )
  in
  (* Patsy-style: simulated disk, sim payloads *)
  let patsy_result = ref None in
  run_fs (fun s ->
      let bus = Capfs_disk.Bus.scsi2 s in
      let disk = Capfs_disk.Sim_disk.create s Capfs_disk.Disk_model.hp97560 bus in
      let drv = Driver.create s (Driver.sim_transport disk) in
      let layout =
        Lfs.format_and_mount s drv ~block_bytes:4096
      in
      let fs = Fsys.create ~cache_config:(cache_config 64) ~layout s in
      patsy_result := Some (ops (Client.create fs)));
  (* PFS-style: real bytes in a temp image *)
  let pfs_result = ref None in
  let path = Filename.temp_file "capfs_agree" ".img" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let t =
        match
          Capfs_pfs.Pfs.create
            (Capfs_pfs.Pfs.Config.make ~image:path ~size_mb:8 ~clock:`Virtual ())
        with
        | Ok t -> t
        | Error e ->
          Alcotest.failf "Pfs.create: %s" (Capfs_core.Errno.to_string e)
      in
      ignore
        (Sched.spawn t.Capfs_pfs.Pfs.sched (fun () ->
             pfs_result := Some (ops t.Capfs_pfs.Pfs.client)));
      Sched.run t.Capfs_pfs.Pfs.sched);
  match (!patsy_result, !pfs_result) with
  | Some a, Some b ->
    Alcotest.(check (pair int (list string))) "identical observable state" a b
  | _ -> Alcotest.fail "one of the stacks did not finish"

(* Whole-stack property: any random operation sequence leaves the cache
   counters consistent and sync leaves everything clean, under every
   flush policy. *)
let prop_stack_invariants =
  QCheck.Test.make ~name:"stack invariants under random ops and policies"
    ~count:20
    QCheck.(
      pair (int_range 0 3)
        (list_of_size Gen.(int_range 1 50)
           (pair (int_range 0 4) (int_range 0 5))))
    (fun (policy_idx, ops) ->
      let ok = ref true in
      run_fs (fun s ->
          let drv =
            Driver.create s
              (Driver.mem_transport ~sector_bytes:512 ~total_sectors:32768 s ())
          in
          let layout =
            Lfs.format_and_mount
              ~config:{ Lfs.default_config with Lfs.seg_blocks = 16;
                        checkpoint_blocks = 8 }
              s drv ~block_bytes:4096
          in
          let trigger, nvram =
            match policy_idx with
            | 0 -> (Cache.Periodic { max_age = 30.; scan_interval = 5. }, 0)
            | 1 -> (Cache.Demand, 0)
            | 2 -> (Cache.Demand, 8)
            | _ -> (Cache.Demand, 4)
          in
          let cfg =
            { (cache_config 16) with Cache.trigger; nvram_blocks = nvram }
          in
          let fs = Fsys.create ~cache_config:cfg ~layout s in
          let c = Client.create fs in
          List.iter
            (fun (f, action) ->
              let p = Printf.sprintf "/f%d" f in
              try
                match action with
                | 0 | 1 ->
                  Client.write_exn c ~client:1 p ~offset:(action * 4096)
                    (Data.sim 4096)
                | 2 ->
                  if Client.exists c p then
                    ignore (Client.read_exn c ~client:1 p ~offset:0 ~bytes:4096)
                | 3 -> if Client.exists c p then Client.delete_exn c p
                | 4 -> if Client.exists c p then Client.truncate_exn c p ~size:100
                | _ -> if Client.exists c p then Client.fsync_exn c p
              with
              | Namespace.Not_found_path _ | Namespace.Already_exists _ -> ())
            ops;
          Client.sync_exn c;
          if Cache.dirty_count fs.Fsys.cache <> 0 then ok := false;
          if Cache.nvram_used fs.Fsys.cache <> 0 then ok := false);
      !ok)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_stack_invariants ]

let suite =
  [
    Alcotest.test_case "client over ffs" `Quick test_client_over_ffs;
    Alcotest.test_case "client over sim layout" `Quick
      test_client_over_sim_layout;
    Alcotest.test_case "client with nvram stack" `Quick
      test_client_with_nvram_stack;
    Alcotest.test_case "coda trace replay" `Quick test_coda_trace_replay;
    Alcotest.test_case "pfs and patsy agree" `Quick
      test_pfs_and_patsy_agree_on_state;
  ]
  @ qsuite
