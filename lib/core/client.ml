module Inode = Capfs_layout.Inode
module Data = Capfs_disk.Data

exception Bad_handle of string

type stat = {
  st_ino : int;
  st_kind : Inode.kind;
  st_size : int;
  st_nlink : int;
  st_mtime : float;
  st_atime : float;
}

type open_mode = RO | WO | RW

type t = {
  fs : Fsys.t;
  ftable : File_table.t;
  ns : Namespace.t;
  (* client -> (path -> ino of the open descriptor). Two levels rather
     than a [(int * string)]-keyed table: handle lookups run once per
     replayed I/O, and a tuple key costs a fresh allocation (plus a
     polymorphic hash of the pair) on every probe. *)
  handles : (int, (string, int) Hashtbl.t) Hashtbl.t;
}

let create fs =
  let ftable = File_table.create fs in
  let ns = Namespace.create fs ftable in
  { fs; ftable; ns; handles = Hashtbl.create 16 }

let client_handles t client =
  match Hashtbl.find t.handles client with
  | h -> h
  | exception Not_found ->
    let h = Hashtbl.create 16 in
    Hashtbl.replace t.handles client h;
    h

let fsys t = t.fs
let file_table t = t.ftable
let namespace t = t.ns

let file_of_ino t ino =
  match File_table.get t.ftable ino with
  | Some f -> f
  | None -> raise (Namespace.Not_found_path (Printf.sprintf "ino %d" ino))

let file_of_path t path = file_of_ino t (Namespace.resolve t.ns path)

(* {2 Namespace operations} *)

let mkdir t path =
  let path = Namespace.normalize path in
  let parent, name = Namespace.split_parent t.ns path in
  let dir = File_table.create_file t.ftable ~kind:Inode.Directory in
  let inode = File.inode dir in
  inode.Inode.nlink <- 2;
  t.fs.Fsys.layout.Capfs_layout.Layout.update_inode inode;
  Namespace.add_entry t.ns ~parent ~name ~ino:(File.ino dir)
    ~kind:Inode.Directory

let create_file t ?(kind = Inode.Regular) path =
  let path = Namespace.normalize path in
  let parent, name = Namespace.split_parent t.ns path in
  let file = File_table.create_file t.ftable ~kind in
  Namespace.add_entry t.ns ~parent ~name ~ino:(File.ino file) ~kind

let symlink t ~target path =
  let path = Namespace.normalize path in
  let parent, name = Namespace.split_parent t.ns path in
  let link = File_table.create_file t.ftable ~kind:Inode.Symlink in
  Namespace.add_entry t.ns ~parent ~name ~ino:(File.ino link)
    ~kind:Inode.Symlink;
  Namespace.set_symlink_target t.ns (File.ino link) target

let readlink t path =
  let path = Namespace.normalize path in
  let parent, name = Namespace.split_parent t.ns path in
  match Namespace.lookup t.ns ~dir:parent ~name with
  | Some { Dir.kind = Inode.Symlink; entry_ino; _ } -> (
    match Namespace.symlink_target t.ns entry_ino with
    | Some target -> target
    | None -> raise (Namespace.Not_found_path path))
  | Some _ -> invalid_arg ("readlink: not a symlink: " ^ path)
  | None -> raise (Namespace.Not_found_path path)

let rmdir t path =
  let path = Namespace.normalize path in
  let parent, name = Namespace.split_parent t.ns path in
  (match Namespace.lookup t.ns ~dir:parent ~name with
  | Some { Dir.kind = Inode.Directory; entry_ino; _ } ->
    if Namespace.entries t.ns entry_ino <> [] then
      raise (Namespace.Not_empty path);
    ignore (Namespace.remove_entry t.ns ~parent ~name);
    File_table.unlink t.ftable entry_ino
  | Some _ -> raise (Namespace.Not_a_directory path)
  | None -> raise (Namespace.Not_found_path path))

let delete t path =
  let path = Namespace.normalize path in
  let parent, name = Namespace.split_parent t.ns path in
  match Namespace.lookup t.ns ~dir:parent ~name with
  | Some { Dir.kind = Inode.Directory; _ } ->
    raise (Namespace.Is_a_directory path)
  | Some { Dir.entry_ino; _ } ->
    ignore (Namespace.remove_entry t.ns ~parent ~name);
    let inode_alive =
      match File_table.get t.ftable entry_ino with
      | Some f ->
        let inode = File.inode f in
        inode.Inode.nlink <- inode.Inode.nlink - 1;
        inode.Inode.nlink > 0
      | None -> false
    in
    if not inode_alive then File_table.unlink t.ftable entry_ino
  | None -> raise (Namespace.Not_found_path path)

let rename t ~src ~dst =
  let src = Namespace.normalize src and dst = Namespace.normalize dst in
  let sparent, sname = Namespace.split_parent t.ns src in
  let dparent, dname = Namespace.split_parent t.ns dst in
  let entry = Namespace.remove_entry t.ns ~parent:sparent ~name:sname in
  (* replace an existing destination, as rename(2) does *)
  (match Namespace.lookup t.ns ~dir:dparent ~name:dname with
  | Some { Dir.entry_ino; kind; _ } ->
    ignore (Namespace.remove_entry t.ns ~parent:dparent ~name:dname);
    if kind <> Inode.Directory then File_table.unlink t.ftable entry_ino
  | None -> ());
  Namespace.add_entry t.ns ~parent:dparent ~name:dname
    ~ino:entry.Dir.entry_ino ~kind:entry.Dir.kind

let readdir t path =
  let path = Namespace.normalize path in
  let ino = Namespace.resolve t.ns path in
  Namespace.entries t.ns ino

let stat t path =
  let path = Namespace.normalize path in
  let file = file_of_path t path in
  let inode = File.inode file in
  {
    st_ino = inode.Inode.ino;
    st_kind = inode.Inode.kind;
    st_size = inode.Inode.size;
    st_nlink = inode.Inode.nlink;
    st_mtime = inode.Inode.mtime;
    st_atime = inode.Inode.atime;
  }

let exists t path = Namespace.resolve_opt t.ns (Namespace.normalize path) <> None

let ensure_dirs t path =
  let path = Namespace.normalize path in
  let comps = String.split_on_char '/' path |> List.filter (fun c -> c <> "") in
  match List.rev comps with
  | [] -> ()
  | _leaf :: rev_dirs ->
    let dirs = List.rev rev_dirs in
    ignore
      (List.fold_left
         (fun prefix d ->
           let dir_path = prefix ^ "/" ^ d in
           if not (exists t dir_path) then mkdir t dir_path;
           dir_path)
         "" dirs)

let synthesize_file t ?(kind = Inode.Regular) path ~size =
  let path = Namespace.normalize path in
  ensure_dirs t path;
  if not (exists t path) then create_file t ~kind path;
  let file = file_of_path t path in
  let inode = File.inode file in
  if inode.Inode.size < size then begin
    let bb = t.fs.Fsys.config.Fsys.block_bytes in
    let blocks = (size + bb - 1) / bb in
    t.fs.Fsys.layout.Capfs_layout.Layout.adopt inode ~blocks;
    inode.Inode.size <- size;
    t.fs.Fsys.layout.Capfs_layout.Layout.update_inode inode
  end

(* {2 File I/O} *)

let open_ t ~client path mode =
  let path = Namespace.normalize path in
  let ino =
    match Namespace.resolve_opt t.ns path with
    | Some ino -> ino
    | None -> (
      match mode with
      | RO -> raise (Namespace.Not_found_path path)
      | WO | RW ->
        create_file t path;
        Namespace.resolve t.ns path)
  in
  let file = file_of_ino t ino in
  if File.kind file = Inode.Directory then
    raise (Namespace.Is_a_directory path);
  let h = client_handles t client in
  if Hashtbl.mem h path then
    (* idempotent re-open: traces occasionally re-open without a close *)
    ()
  else begin
    Hashtbl.replace h path ino;
    File.opened file
  end

let close_ t ~client path =
  let path = Namespace.normalize path in
  let h = client_handles t client in
  match Hashtbl.find h path with
  | exception Not_found -> raise (Bad_handle path)
  | ino ->
    Hashtbl.remove h path;
    (match File_table.get t.ftable ino with
    | Some file ->
      File.closed file;
      File_table.maybe_reap t.ftable ino
    | None -> ())

(* An I/O against a path the client never opened falls back to a
   transient open (real traces miss open records now and then).
   Direct style rather than a [with_file f] combinator: [read] and
   [write] sit on the replay hot path, and a callback would allocate a
   closure capturing the I/O parameters on every call. *)
let lookup_file t ~client path ~create_if_missing =
  let h = client_handles t client in
  match Hashtbl.find h path with
  | ino -> file_of_ino t ino
  | exception Not_found -> (
    match Namespace.resolve_opt t.ns path with
    | Some ino -> file_of_ino t ino
    | None ->
      if create_if_missing then begin
        create_file t path;
        file_of_path t path
      end
      else raise (Namespace.Not_found_path path))

let read t ~client path ~offset ~bytes =
  let path = Namespace.normalize path in
  let file = lookup_file t ~client path ~create_if_missing:false in
  File.read file ~offset ~bytes

let write t ~client path ~offset data =
  let path = Namespace.normalize path in
  let file = lookup_file t ~client path ~create_if_missing:true in
  File.write file ~offset data

let truncate t path ~size =
  let path = Namespace.normalize path in
  File.truncate (file_of_path t path) ~size

let fsync t path =
  let path = Namespace.normalize path in
  File.flush (file_of_path t path)

let sync t = Fsys.sync t.fs

let close_all t ~client =
  match Hashtbl.find_opt t.handles client with
  | None -> ()
  | Some h ->
    let paths = Hashtbl.fold (fun path _ acc -> path :: acc) h [] in
    List.iter (fun path -> close_ t ~client path) paths

let open_handles t =
  Hashtbl.fold (fun _ h acc -> acc + Hashtbl.length h) t.handles 0
