(** The PFS request/reply vocabulary and its wire codecs.

    One request type serves three transports: in-process calls
    ({!Server.call}), the socket protocol (a {!Capfs_ccache.Netlink.Frame}
    whose opcode and payload these codecs fill), and the load
    generator. Requests name files by {e path} — the abstract client
    interface's own vocabulary — so routing can hash the first path
    component to a shard before any file-system state is touched.

    Integers are little-endian u32, strings are u16-length-prefixed; a
    write's data rides as the payload tail (the frame header already
    carries its length). A reply's first byte is a status: [0] for
    success, [1 + Errno.to_index e] for failure — the same closed errno
    vocabulary on the wire as in the API. *)

type stat = { size : int; is_dir : bool }

type request =
  | Open of { client : int; path : string; mode : Capfs.Client.open_mode }
  | Close of { client : int; path : string }
  | Read of { client : int; path : string; offset : int; count : int }
  | Write of { client : int; path : string; offset : int; data : string }
  | Mkdir of string
  | Delete of string
  | Stat of string
  | Sync  (** flush every shard; replies when the slowest one is stable *)
  | Stats  (** merged per-shard statistics report (JSON payload) *)
  | Shutdown
      (** stop the server. No reply is sent: the client closes after
          writing it, and a clean server exit is the acknowledgement. *)

type reply =
  | Ok_unit
  | Ok_data of string  (** read payload, possibly short at EOF *)
  | Ok_stat of stat
  | Ok_stats of string  (** the merged JSON report *)
  | Err of Capfs_core.Errno.t

(** Frame opcode of a request; replies echo it. *)
val opcode : request -> int

(** The path a request is routed by; [None] for the server-level
    operations ([Sync] fans out to every shard, [Stats]/[Shutdown] are
    answered by the listener itself). *)
val route_path : request -> string option

val encode_request : request -> int * string
(** [(opcode, payload)]. *)

(** [decode_request ~opcode payload] — [Error EINVAL] on an unknown
    opcode or a payload that doesn't parse (truncated field, bad open
    mode). *)
val decode_request :
  opcode:int -> string -> (request, Capfs_core.Errno.t) result

val encode_reply : reply -> string

(** Replies are decoded under the request's echoed [opcode] — the
    status byte says whether it's an error, the opcode says which
    success shape follows. *)
val decode_reply :
  opcode:int -> string -> (reply, Capfs_core.Errno.t) result

val pp_reply : Format.formatter -> reply -> unit
