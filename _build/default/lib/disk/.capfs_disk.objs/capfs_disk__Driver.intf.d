lib/disk/driver.mli: Capfs_sched Capfs_stats Data Iorequest Iosched Sim_disk
