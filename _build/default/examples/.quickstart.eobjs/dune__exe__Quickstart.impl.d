examples/quickstart.ml: Capfs Capfs_cache Capfs_disk Capfs_layout Capfs_sched Format List
