lib/cache/replacement.ml: Array Block Capfs_stats Dlist Hashtbl List Printf Stdlib
