module Sched = Capfs_sched.Sched
module Cache = Capfs_cache.Cache
module Replacement = Capfs_cache.Replacement
module Driver = Capfs_disk.Driver
module Iosched = Capfs_disk.Iosched
module Geometry = Capfs_disk.Geometry
module Lfs = Capfs_layout.Lfs
module Codec = Capfs_layout.Codec
module Multiplex = Capfs_layout.Multiplex
module Errno = Capfs_core.Errno

let src = Logs.Src.create "capfs.pfs" ~doc:"on-line PFS instantiation"

module Log = (val Logs.src_log src : Logs.LOG)

let block_bytes = 4096

module Config = struct
  type t = {
    image : string;
    size_mb : int;
    cache_mb : int;
    nvram_mb : int;
    trigger : Cache.flush_trigger;
    scope : Cache.flush_scope;
    iosched : string;
    replacement : string;
    seg_blocks : int;
    cleaner : Lfs.cleaner_policy;
    async_flush : bool;
    mem_copy_rate : float;
    coalesce : bool;
    flush_window : int;
    max_extent : int;
    workers : int;
    shards : int;
    admission : int;
    lease_s : float;
    clock : Sched.clock;
    seed : int;
  }

  let make ?(size_mb = 64) ?(cache_mb = 16) ?(nvram_mb = 0)
      ?(trigger = Cache.Periodic { max_age = 30.; scan_interval = 5. })
      ?(scope = `Whole_file) ?(iosched = "clook") ?(replacement = "lru")
      ?(seg_blocks = Lfs.default_config.Lfs.seg_blocks)
      ?(cleaner = Lfs.default_config.Lfs.cleaner) ?(async_flush = true)
      ?(mem_copy_rate = 0.) ?(coalesce = true) ?(flush_window = 4)
      ?(max_extent = 64) ?(workers = 4) ?(shards = 1) ?(admission = 64)
      ?(lease_s = 5.0) ?(clock = `Real) ?(seed = 1996) ~image () =
    {
      image;
      size_mb;
      cache_mb;
      nvram_mb;
      trigger;
      scope;
      iosched;
      replacement;
      seg_blocks;
      cleaner;
      async_flush;
      mem_copy_rate;
      coalesce;
      flush_window;
      max_extent;
      workers;
      shards;
      admission;
      lease_s;
      clock;
      seed;
    }

  let default = make ~image:"" ()

  let validate t =
    let bad = ref [] in
    let check ok what = if not ok then bad := what :: !bad in
    check (t.image <> "") "image: empty path";
    check (t.size_mb >= 1) "size-mb < 1";
    check (t.cache_mb >= 1) "cache-mb < 1";
    check (t.nvram_mb >= 0) "nvram-mb < 0";
    check
      (match t.trigger with
      | Cache.Demand -> true
      | Cache.Periodic { max_age; scan_interval } ->
        max_age > 0. && scan_interval > 0.)
      "trigger: periodic ages must be positive";
    check
      (List.mem t.replacement Replacement.known_policies)
      ("replacement: unknown policy " ^ t.replacement);
    check
      (List.mem t.iosched Iosched.known_policies)
      ("iosched: unknown policy " ^ t.iosched);
    check (t.seg_blocks >= 8) "seg-blocks < 8";
    check (t.mem_copy_rate >= 0.) "mem-copy-rate < 0";
    check (t.flush_window >= 1) "flush-window < 1";
    check (t.max_extent >= 1) "max-extent < 1";
    check (t.workers >= 0) "workers < 0";
    check (t.shards >= 1) "shards < 1";
    check (t.admission >= 0) "admission < 0";
    check (t.lease_s > 0.) "lease-s <= 0";
    match !bad with
    | [] -> Ok t
    | problems ->
      Log.err (fun m ->
          m "invalid configuration: %s" (String.concat "; " problems));
      Error Errno.EINVAL

  (* {2 Shared argument parsing}

     One [key=value] vocabulary for every front end: the pfs CLI's
     repeatable [--set], test fixtures, and the load generator all call
     [of_args], so a knob is parsed in exactly one place. *)

  let keys =
    [
      "size-mb";
      "cache-mb";
      "nvram-mb";
      "trigger";
      "scope";
      "iosched";
      "replacement";
      "seg-blocks";
      "cleaner";
      "async-flush";
      "mem-copy-rate";
      "coalesce";
      "flush-window";
      "max-extent";
      "workers";
      "shards";
      "admission";
      "lease-s";
      "clock";
      "seed";
    ]

  let arg_doc =
    "KEY=VALUE with KEY one of: size-mb, cache-mb, nvram-mb, trigger \
     (demand | periodic:MAX_AGE:SCAN_INTERVAL), scope (whole-file | \
     single-block), iosched, replacement, seg-blocks, cleaner (greedy | \
     cost-benefit), async-flush, mem-copy-rate, coalesce, flush-window, \
     max-extent, workers, shards, admission, lease-s (client-cache lease \
     seconds), clock (real | virtual), seed"

  exception Bad of string

  let of_args ?base args =
    let base = match base with Some b -> b | None -> default in
    let int v = match int_of_string_opt v with
      | Some n -> n
      | None -> raise (Bad ("not an integer: " ^ v))
    in
    let float v = match float_of_string_opt v with
      | Some f -> f
      | None -> raise (Bad ("not a number: " ^ v))
    in
    let bool v = match v with
      | "true" | "on" | "1" -> true
      | "false" | "off" | "0" -> false
      | _ -> raise (Bad ("not a boolean: " ^ v))
    in
    let apply t kv =
      let k, v =
        match String.index_opt kv '=' with
        | Some i ->
          ( String.sub kv 0 i,
            String.sub kv (i + 1) (String.length kv - i - 1) )
        | None -> raise (Bad ("expected KEY=VALUE, got " ^ kv))
      in
      match k with
      | "size-mb" -> { t with size_mb = int v }
      | "cache-mb" -> { t with cache_mb = int v }
      | "nvram-mb" -> { t with nvram_mb = int v }
      | "trigger" -> (
        match String.split_on_char ':' v with
        | [ "demand" ] -> { t with trigger = Cache.Demand }
        | [ "periodic"; a; s ] ->
          {
            t with
            trigger =
              Cache.Periodic { max_age = float a; scan_interval = float s };
          }
        | _ -> raise (Bad ("trigger: " ^ v)))
      | "scope" -> (
        match v with
        | "whole-file" -> { t with scope = `Whole_file }
        | "single-block" -> { t with scope = `Single_block }
        | _ -> raise (Bad ("scope: " ^ v)))
      | "iosched" -> { t with iosched = v }
      | "replacement" -> { t with replacement = v }
      | "seg-blocks" -> { t with seg_blocks = int v }
      | "cleaner" -> (
        match v with
        | "greedy" -> { t with cleaner = Lfs.Greedy }
        | "cost-benefit" -> { t with cleaner = Lfs.Cost_benefit }
        | _ -> raise (Bad ("cleaner: " ^ v)))
      | "async-flush" -> { t with async_flush = bool v }
      | "mem-copy-rate" -> { t with mem_copy_rate = float v }
      | "coalesce" -> { t with coalesce = bool v }
      | "flush-window" -> { t with flush_window = int v }
      | "max-extent" -> { t with max_extent = int v }
      | "workers" -> { t with workers = int v }
      | "shards" -> { t with shards = int v }
      | "admission" -> { t with admission = int v }
      | "lease-s" -> { t with lease_s = float v }
      | "clock" -> (
        match v with
        | "real" -> { t with clock = `Real }
        | "virtual" -> { t with clock = `Virtual }
        | _ -> raise (Bad ("clock: " ^ v)))
      | "seed" -> { t with seed = int v }
      | k -> raise (Bad ("unknown key " ^ k))
    in
    match List.fold_left apply base args with
    | t -> validate t
    | exception Bad what ->
      Log.err (fun m -> m "of_args: %s" what);
      Error Errno.EINVAL
end

type t = {
  sched : Sched.t;
  client : Capfs.Client.t;
  nfs : Nfs.t;
  image_path : string;
  registry : Capfs_stats.Registry.t option;
  config : Config.t;
  transport : Driver.transport;
}

let lfs_config_of (cfg : Config.t) =
  {
    Lfs.default_config with
    Lfs.seg_blocks = cfg.Config.seg_blocks;
    cleaner = cfg.Config.cleaner;
  }

let create ?registry ?injector (cfg : Config.t) =
  match Config.validate cfg with
  | Error _ as e -> e
  | Ok cfg -> (
    let sched =
      Sched.create ~seed:cfg.Config.seed ?injector ~clock:cfg.Config.clock ()
    in
    let transport =
      File_blockdev.transport sched ~path:cfg.Config.image
        ~size_bytes:(cfg.Config.size_mb * 1024 * 1024)
        ()
    in
    let flat_geometry =
      Geometry.v ~cylinders:transport.Driver.total_sectors ~heads:1
        ~sectors_per_track:1 ~sector_bytes:transport.Driver.sector_bytes ()
    in
    (* instance names and coalescing knobs deliberately match Patsy's
       single-disk farm, so the two halves register identical counter
       keys and batch I/O identically (the diffval contract;
       VALIDATION.md) *)
    let spb = block_bytes / transport.Driver.sector_bytes in
    let driver =
      Driver.create ?registry ~name:(Capfs_stats.Names.driver 0)
        ~policy:(Iosched.by_name flat_geometry cfg.Config.iosched)
        ~coalesce:cfg.Config.coalesce
        ~max_merge_sectors:(cfg.Config.max_extent * spb)
        sched transport
    in
    (* [create] runs outside the scheduler, but mounting needs fibre
       context (driver I/O blocks): do the assembly in a bootstrap
       fibre. *)
    let assembled = ref None in
    ignore
      (Sched.spawn sched ~name:"pfs.boot" (fun () ->
           let lfs_name = Capfs_stats.Names.lfs 0 in
           let lfs_config = lfs_config_of cfg in
           let volume =
             try
               Lfs.mount ?registry ~name:lfs_name ~config:lfs_config sched
                 driver
             with Codec.Corrupt reason ->
               Log.info (fun m ->
                   m "image %s not mountable (%s): formatting"
                     cfg.Config.image reason);
               Lfs.format_and_mount ?registry ~name:lfs_name
                 ~config:lfs_config sched driver ~block_bytes
           in
           (* one volume behind the same multiplexer the simulator and
              the sharded server use: identical ino routing everywhere *)
           let layout = Multiplex.layout [| volume |] in
           let cache_config =
             {
               Cache.block_bytes;
               capacity_blocks =
                 cfg.Config.cache_mb * 1024 * 1024 / block_bytes;
               nvram_blocks = cfg.Config.nvram_mb * 1024 * 1024 / block_bytes;
               trigger = cfg.Config.trigger;
               scope = cfg.Config.scope;
               async_flush = cfg.Config.async_flush;
               mem_copy_rate = cfg.Config.mem_copy_rate;
               coalesce = cfg.Config.coalesce;
               flush_window = cfg.Config.flush_window;
               max_extent_blocks = cfg.Config.max_extent;
             }
           in
           (* PFS payloads are always real bytes: give the cache a slab
              arena sized for every frame plus the flush pipeline's
              in-flight extents (overflow falls back to heap buffers) *)
           let arena =
             Capfs_disk.Arena.create ~cell_bytes:block_bytes
               ~cells:
                 (cache_config.Cache.capacity_blocks
                 + cache_config.Cache.nvram_blocks
                 + (cache_config.Cache.flush_window * cfg.Config.max_extent))
               ()
           in
           let replacement =
             Replacement.by_name ~seed:cfg.Config.seed
               ~capacity:cache_config.Cache.capacity_blocks
               cfg.Config.replacement
           in
           let fs =
             Capfs.Fsys.create ?registry ~replacement ~arena ~cache_config
               ~layout sched
           in
           let client = Capfs.Client.create fs in
           let nfs = Nfs.serve ~workers:cfg.Config.workers client in
           assembled := Some (client, nfs)));
    match Sched.run sched with
    | () -> (
      match !assembled with
      | Some (client, nfs) ->
        Ok
          {
            sched;
            client;
            nfs;
            image_path = cfg.Config.image;
            registry;
            config = cfg;
            transport;
          }
      | None ->
        File_blockdev.close transport;
        Error Errno.EIO)
    | exception Errno.Error e ->
      File_blockdev.close transport;
      Error e)

let snapshot t =
  Option.map
    (Capfs_stats.Snapshot.capture
       ~filter:Capfs_stats.Snapshot.policy_visible)
    t.registry

let shutdown t =
  ignore
    (Sched.spawn t.sched ~name:"pfs.shutdown" (fun () ->
         Capfs.Client.sync_exn t.client));
  Sched.run t.sched;
  File_blockdev.close t.transport

(* {2 Deprecated shim — delete after one release} *)

type config = {
  cache_mb : int;
  nvram_mb : int;
  trigger : Cache.flush_trigger;
  scope : Cache.flush_scope;
  iosched : string;
  workers : int;
}

let default_config =
  {
    cache_mb = 16;
    nvram_mb = 0;
    trigger = Cache.Periodic { max_age = 30.; scan_interval = 5. };
    scope = `Whole_file;
    iosched = "clook";
    workers = 4;
  }

let start ?(clock = `Real) ?(config = default_config) ?registry ~image
    ~size_mb () =
  let cfg =
    Config.make ~image ~size_mb ~cache_mb:config.cache_mb
      ~nvram_mb:config.nvram_mb ~trigger:config.trigger ~scope:config.scope
      ~iosched:config.iosched ~workers:config.workers ~clock ()
  in
  match create ?registry cfg with
  | Ok t -> t
  | Error e -> raise (Errno.Error e)
