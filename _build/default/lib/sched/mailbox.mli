(** Typed FIFO mailbox with blocking receive.

    Devices in the framework are "modeled by a separate thread of control
    that waits for work to arrive" — a mailbox is that arrival queue: disk
    drivers post I/O requests into the disk thread's mailbox; NFS worker
    threads take requests from the server mailbox. Unbounded by default;
    with [capacity], senders block while full (back-pressure). *)

type 'a t

val create : ?name:string -> ?capacity:int -> Sched.t -> 'a t

(** Enqueue, blocking while at capacity. *)
val send : 'a t -> 'a -> unit

(** [try_send t v] is [false] instead of blocking when full. *)
val try_send : 'a t -> 'a -> bool

(** Dequeue, blocking while empty. *)
val recv : 'a t -> 'a

(** [recv_timeout t dt] is [None] if nothing arrived within [dt]. *)
val recv_timeout : 'a t -> float -> 'a option

(** [try_recv t] never blocks. *)
val try_recv : 'a t -> 'a option

val length : 'a t -> int
val is_empty : 'a t -> bool
