(** NFS-flavoured front end.

    "We use NFS as the external PFS interface… The NFS class spawns a
    number of threads that wait for incoming mount and NFS requests.
    Whenever a request is received, the call is dispatched to one (or
    more) calls in the abstract client interface. Each thread in the NFS
    component acts as a representative of a client while the request is
    in progress."

    This is an in-process rendition of NFSv2's procedures: requests
    name files by opaque handles (inode numbers) plus names, workers
    pull them from a mailbox and reply through a per-call event — the
    RPC marshalling layer is the only thing left out (see DESIGN.md §3).
    It runs under either clock, so client/server interaction can also be
    simulated, as the paper plans for its client-caching work. *)

(** An opaque file handle. Here it is the inode number, which — like a
    real NFS handle — stays valid across server restarts as long as the
    file exists; a handle whose inode has been deleted or recycled
    answers {!Stale}. *)
type fh = int

(** NFS-style status codes, the errno subset NFSv2 can express. *)
type error =
  | Noent     (** no such file or directory ([NFSERR_NOENT]) *)
  | Exist     (** target name already exists ([NFSERR_EXIST]) *)
  | Notdir    (** a directory operation on a non-directory *)
  | Isdir     (** a file operation on a directory *)
  | Notempty  (** [Rmdir] of a non-empty directory *)
  | Stale     (** the handle's inode no longer exists ([NFSERR_STALE]) *)
  | Loop      (** symlink expansion exceeded the traversal limit *)
  | Again
      (** server overloaded, retry later ([NFSERR_JUKEBOX]) — what the
          sharded server's [EAGAIN] admission pushback maps to *)
  | Io  (** disk-level failure surfaced through the typed-error API *)

(** Post-operation attributes, the [fattr]-subset every reply that
    touches a file reports. *)
type attr = {
  a_kind : Capfs_layout.Inode.kind;
      (** regular / directory / symlink / multimedia — drives the
          client-side [NFDIR]/[NFREG] dispatch *)
  a_size : int;
      (** file length in bytes. For a directory: the byte size of its
          entry blocks, not the entry count; for a symlink: the length
          of the target path. *)
  a_nlink : int;
      (** hard-link count: 1 for regular files and symlinks (the
          namespace has no hard links), 2 for directories — [.] and the
          parent entry; subdirectories are not back-counted *)
  a_mtime : float;
      (** last content-modification time, in the {e server's} clock
          (virtual seconds under [`Virtual], Unix epoch under [`Real])
          — the cache-validation timestamp of NFSv2 *)
}

(** One NFS procedure call. Constructors mirror the NFSv2 procedure
    set (plus the NFSv3 [Commit]); [fh] arguments are handles
    previously returned in a {!Handle} reply or {!mount_root}. *)
type request =
  | Getattr of fh  (** attributes of an open or known handle *)
  | Setattr of { file : fh; size : int }
      (** truncate/extend to [size] bytes (the only settable attribute
          here: no ownership or mode bits in the framework) *)
  | Lookup of { dir : fh; name : string }
      (** one component, no slashes: the NFS lookup contract *)
  | Readlink of fh  (** target of a symlink, unexpanded *)
  | Read of { file : fh; offset : int; count : int }
      (** up to [count] bytes from [offset]; short reads at EOF *)
  | Write of { file : fh; offset : int; data : Capfs_disk.Data.t }
      (** write-behind through the shared block cache; durability only
          on {!Commit} (or the cache policy's own flush) *)
  | Create of { dir : fh; name : string }  (** regular file, exclusive *)
  | Remove of { dir : fh; name : string }  (** unlink a non-directory *)
  | Rename of { sdir : fh; sname : string; ddir : fh; dname : string }
      (** atomic within the server; replaces [dname] if it exists *)
  | Symlink of { dir : fh; name : string; target : string }
  | Mkdir of { dir : fh; name : string }
  | Rmdir of { dir : fh; name : string }  (** must be empty *)
  | Readdir of fh  (** full listing, no cookies — in-process, no XDR cap *)
  | Commit of fh  (** NFSv3-style: force the file to stable storage *)
  | Statfs  (** file-system totals, for [df] *)

(** A worker's reply; which constructor answers which {!request} follows
    NFSv2 ([Lookup]/[Create]/[Mkdir]/[Symlink] → {!Handle}, [Read] →
    {!Payload}, [Getattr]/[Setattr]/[Write] → {!Attr}, destructive ops
    → {!Done}, …). *)
type response =
  | Attr of attr                (** post-op attributes *)
  | Handle of fh * attr         (** new or looked-up handle + attributes *)
  | Payload of Capfs_disk.Data.t  (** read data, possibly short *)
  | Link of string              (** symlink target *)
  | Entries of (string * fh) list  (** directory listing, unsorted *)
  | Fsinfo of { total_blocks : int; free_blocks : int }
      (** {!Statfs} reply, in file-system blocks *)
  | Done                        (** success with nothing to return *)
  | Error of error              (** the call failed; nothing changed *)

(** A running front end: a request mailbox plus its worker fibres. *)
type t

(** [serve client ~workers] spawns the worker fibres (daemons) and
    returns the server. [workers] (default 4) bounds the number of
    requests in service concurrently — each worker "acts as a
    representative of a client while the request is in progress". *)
val serve : ?workers:int -> Capfs.Client.t -> t

(** Handle of the root directory (the MOUNT protocol's job). *)
val mount_root : t -> fh

(** [call t request] enqueues the request and blocks until a worker
    replies. Safe from any fibre on the server's scheduler; calls are
    served FIFO but complete out of order when workers block on I/O. *)
val call : t -> request -> response

(** Requests served so far. *)
val served : t -> int

(** Prints the wire mnemonic ([NFSERR_NOENT], [NFSERR_STALE], …). *)
val pp_error : Format.formatter -> error -> unit

(** Status code for a typed error ([ESTALE]/[EBADF] → [Stale],
    media/space failures → [Io], …). *)
val error_of_errno : Capfs_core.Errno.t -> error
