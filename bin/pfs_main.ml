(* pfs: the on-line cut-and-paste file system.

   Three subcommands:
     pfs shell IMAGE    — serve an image in-process and drive it with a
                          small shell (the default when no subcommand is
                          given);
     pfs serve IMAGE    — the scale-out multi-client server: shards
                          behind a Unix/TCP listening socket;
     pfs loadgen IMAGE  — fork a server plus N client processes, hammer
                          open/read/write/close, report ops/s and
                          p50/p99/p999 latency into a JSON report.

   Shell commands (one per line on stdin, or via --command):
     mkdir PATH | ls PATH | write PATH TEXT | cat PATH | rm PATH |
     rmdir PATH | mv SRC DST | ln TARGET LINK | stat PATH | statfs |
     sync | help | quit *)

module Sched = Capfs_sched.Sched
module Data = Capfs_disk.Data
module Client = Capfs.Client
module Errno = Capfs_core.Errno
module Pfs = Capfs_pfs.Pfs
module Wire = Capfs_pfs.Wire
module Server = Capfs_pfs.Server
module Frame = Capfs_ccache.Netlink.Frame
module CC = Capfs_pfs.Cached_client

let config_of image args =
  Pfs.Config.of_args ~base:(Pfs.Config.make ~image ()) args

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

(* {1 Shell} *)

let help_text =
  "commands: mkdir P | ls P | write P TEXT | cat P | rm P | rmdir P | \
   mv A B | ln TARGET LINK | stat P | statfs | sync | help | quit"

let exec_command t line =
  let client = t.Pfs.client in
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> ()
  | [ "help" ] -> print_endline help_text
  | [ "mkdir"; p ] -> Client.mkdir_exn client p
  | [ "ls"; p ] ->
    List.iter
      (fun e ->
        Printf.printf "%c %s\n"
          (match e.Capfs.Dir.kind with
          | Capfs_layout.Inode.Directory -> 'd'
          | Capfs_layout.Inode.Symlink -> 'l'
          | Capfs_layout.Inode.Multimedia -> 'm'
          | Capfs_layout.Inode.Regular -> '-')
          e.Capfs.Dir.name)
      (Client.readdir_exn client p)
  | "write" :: p :: rest ->
    let text = String.concat " " rest in
    Client.write_exn client ~client:0 p ~offset:0 (Data.of_string text);
    Client.truncate_exn client p ~size:(String.length text)
  | [ "cat"; p ] ->
    let st = Client.stat_exn client p in
    let d =
      Client.read_exn client ~client:0 p ~offset:0 ~bytes:st.Client.st_size
    in
    print_endline (Data.to_string d)
  | [ "rm"; p ] -> Client.delete_exn client p
  | [ "rmdir"; p ] -> Client.rmdir_exn client p
  | [ "mv"; a; b ] -> Client.rename_exn client ~src:a ~dst:b
  | [ "ln"; target; link ] -> Client.symlink_exn client ~target link
  | [ "stat"; p ] ->
    let st = Client.stat_exn client p in
    Printf.printf "ino=%d size=%d nlink=%d mtime=%.3f\n" st.Client.st_ino
      st.Client.st_size st.Client.st_nlink st.Client.st_mtime
  | [ "statfs" ] ->
    let fs = Client.fsys client in
    let layout = fs.Capfs.Fsys.layout in
    Printf.printf "%s: %d blocks, %d free\n"
      layout.Capfs_layout.Layout.l_name
      layout.Capfs_layout.Layout.total_blocks
      (layout.Capfs_layout.Layout.free_blocks ())
  | [ "sync" ] -> Client.sync_exn client
  | cmd :: _ -> Printf.printf "unknown command %S (try help)\n" cmd

let run_line t line =
  ignore
    (Sched.spawn t.Pfs.sched (fun () ->
         (* every failure mode is one typed errno now *)
         try exec_command t line
         with Errno.Error e ->
           Printf.printf "error: %s\n" (Errno.to_string e)));
  Sched.run t.Pfs.sched

let shell_main image size_mb sets commands =
  let cfg =
    match config_of image (Printf.sprintf "size-mb=%d" size_mb :: sets) with
    | Ok cfg -> cfg
    | Error e -> die "pfs: bad configuration (%s)" (Errno.to_string e)
  in
  let t =
    match Pfs.create cfg with
    | Ok t -> t
    | Error e -> die "pfs: cannot start (%s)" (Errno.to_string e)
  in
  Printf.printf "pfs: serving %s (%d MB)\n%!" image cfg.Pfs.Config.size_mb;
  (match commands with
  | [] ->
    (try
       let quit = ref false in
       while not !quit do
         print_string "pfs> ";
         flush stdout;
         let line = input_line stdin in
         if String.trim line = "quit" then quit := true else run_line t line
       done
     with End_of_file -> ())
  | cmds -> List.iter (fun c -> run_line t c) cmds);
  Pfs.shutdown t;
  Printf.printf "pfs: image synced\n";
  0

(* {1 Sockets} *)

let unlink_quiet p = try Unix.unlink p with Unix.Unix_error _ -> ()

let listen_socket ?(backlog = 64) addr =
  let dom = Unix.domain_of_sockaddr addr in
  let fd = Unix.socket ~cloexec:true dom Unix.SOCK_STREAM 0 in
  (match addr with
  | Unix.ADDR_UNIX p -> unlink_quiet p
  | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
  Unix.bind fd addr;
  Unix.listen fd backlog;
  fd

let addr_of ~image ~port =
  match port with
  | Some p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p)
  | None -> Unix.ADDR_UNIX (image ^ ".sock")

(* {1 Serve} *)

let serve_main image sets port stats_out =
  let cfg =
    match config_of image sets with
    | Ok cfg -> cfg
    | Error e -> die "pfs serve: bad configuration (%s)" (Errno.to_string e)
  in
  if cfg.Pfs.Config.clock <> `Real then
    die "pfs serve: the socket server needs clock=real";
  let addr = addr_of ~image ~port in
  let lfd = listen_socket addr in
  let server =
    match Server.create cfg with
    | Ok s -> s
    | Error e -> die "pfs serve: cannot start (%s)" (Errno.to_string e)
  in
  Printf.printf "pfs: serving %s over %d shard(s)\n%!" image
    cfg.Pfs.Config.shards;
  Server.serve server lfd;
  Unix.close lfd;
  (match addr with Unix.ADDR_UNIX p -> unlink_quiet p | _ -> ());
  let stats_path =
    match stats_out with Some p -> p | None -> image ^ ".stats.json"
  in
  let oc = open_out stats_path in
  output_string oc (Server.report_json server);
  output_char oc '\n';
  close_out oc;
  Printf.printf "pfs: server stopped, stats in %s\n" stats_path;
  0

(* {1 Load generator}

   Process layout: everything forks off this (single-threaded,
   domain-free) parent {e before} any OCaml domain exists anywhere —
   the server child spawns its shard domains after the fork. Clients
   are real processes, so client-side CPU never shares a runtime with
   the server. *)

(* Log-bucketed latency histogram: bucket i covers latencies up to
   [1.2^i] microseconds; 160 buckets reach ~5 minutes. Merging across
   clients is element-wise addition; quantiles read the cumulative
   distribution and report the bucket's upper edge. *)
module Hist = struct
  let buckets = 160
  let base = 1.2

  let create () = Array.make buckets 0

  let add h lat_s =
    let us = lat_s *. 1e6 in
    let i =
      if us <= 1. then 0
      else min (buckets - 1) (1 + int_of_float (log us /. log base))
    in
    h.(i) <- h.(i) + 1

  let merge into h = Array.iteri (fun i v -> into.(i) <- into.(i) + v) h

  let quantile_us h q =
    let total = Array.fold_left ( + ) 0 h in
    if total = 0 then 0.
    else begin
      let want = int_of_float (ceil (q *. float_of_int total)) in
      let seen = ref 0 and result = ref 0. in
      (try
         Array.iteri
           (fun i v ->
             seen := !seen + v;
             if !seen >= want then begin
               result := base ** float_of_int i;
               raise Exit
             end)
           h
       with Exit -> ());
      !result
    end
end

(* {2 Workload families}

   [seq] is the original pipelined open/write/close/open/read/close
   cycle over private per-client directories. The shared families model
   a hot set: every client holds the same [files] files under /shared
   open and reads them — Zipf-skewed ([zipf:<theta>], pure reads) or
   uniform with a write mix ([readmostly:<ratio>], [1-ratio] of the ops
   cycle a handle RO->WO->write->RO so the grant machinery sees real
   sharing). The shared families are where client-side caching shows:
   with [--cache] the same loop runs over {!Cached_client}. *)

type workload = Seq | Zipf of float | Readmostly of float

let parse_workload s =
  match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
  | [ "seq" ] -> Seq
  | [ "zipf"; t ] -> (
    match float_of_string_opt t with
    | Some t when t >= 0. -> Zipf t
    | _ -> die "pfs loadgen: bad zipf theta %S" t)
  | [ "readmostly"; r ] -> (
    match float_of_string_opt r with
    | Some r when r >= 0. && r <= 1. -> Readmostly r
    | _ -> die "pfs loadgen: bad readmostly ratio %S" r)
  | _ ->
    die "pfs loadgen: unknown workload %S (seq | zipf:<theta> | \
         readmostly:<ratio>)" s

let workload_name = function
  | Seq -> "seq"
  | Zipf t -> Printf.sprintf "zipf:%g" t
  | Readmostly r -> Printf.sprintf "readmostly:%g" r

(* Zipf(theta) over ranks 1..n, as an inverse-CDF table. *)
let zipf_cdf ~n ~theta =
  let w = Array.init n (fun i -> float_of_int (i + 1) ** -.theta) in
  let total = Array.fold_left ( +. ) 0. w in
  let acc = ref 0. in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let sample_cdf cdf rng =
  let r = Random.State.float rng 1.0 in
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < r then lo := mid + 1 else hi := mid
  done;
  !lo

let shared_dir = "/shared"
let shared_file k = Printf.sprintf "%s/f%d" shared_dir k

let connect_to addr =
  let fd =
    Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0
  in
  let rec go tries =
    match Unix.connect fd addr with
    | () -> ()
    | exception Unix.Unix_error _ when tries > 0 ->
      Unix.sleepf 0.05;
      go (tries - 1)
  in
  go 100;
  fd

(* One synchronous call over a blocking connection (setup and the
   old-vocabulary client; no pipelining, no batching — exactly what a
   pre-grant client speaks). *)
let sync_call fd next_id req =
  let opcode, body = Wire.encode_request req in
  incr next_id;
  let req_id = !next_id in
  (match Frame.write fd { Frame.req_id; opcode; payload = body } with
  | Ok () -> ()
  | Error e -> die "pfs loadgen: send failed (%s)" (Errno.to_string e));
  let rec wait () =
    match Frame.read fd with
    | Ok (Some { Frame.req_id = rid; opcode = op; payload }) ->
      if rid <> req_id then wait ()
      else (
        match Wire.decode_reply ~opcode:op payload with
        | Ok r -> r
        | Error e -> die "pfs loadgen: bad reply (%s)" (Errno.to_string e))
    | Ok None -> die "pfs loadgen: server closed the connection"
    | Error e -> die "pfs loadgen: recv failed (%s)" (Errno.to_string e)
  in
  wait ()

(* Build the shared hot set before any client starts. *)
let setup_shared addr ~files ~bytes =
  let fd = connect_to addr in
  let next_id = ref 0 in
  let call = sync_call fd next_id in
  (match call (Wire.Mkdir shared_dir) with
  | Wire.Ok_unit | Wire.Err Errno.EEXIST -> ()
  | r -> die "pfs loadgen: mkdir %s: %s" shared_dir
           (Format.asprintf "%a" Wire.pp_reply r));
  let payload = String.make bytes 'i' in
  for k = 0 to files - 1 do
    let path = shared_file k in
    let expect what = function
      | Wire.Ok_unit -> ()
      | r -> die "pfs loadgen: %s %s: %s" what path
               (Format.asprintf "%a" Wire.pp_reply r)
    in
    expect "open"
      (call (Wire.Open { client = 999999; path; mode = Client.WO }));
    expect "write"
      (call (Wire.Write { client = 999999; path; offset = 0; data = payload }));
    expect "close" (call (Wire.Close { client = 999999; path }))
  done;
  Unix.close fd

type client_result = {
  ops : int;
  eagain : int;
  errors : int;
  secs : float;
  hits : int;
  misses : int;
  hist : int array;
}

let report_client ~ops ~eagain ~errors ~secs ~hits ~misses ~hist out_fd =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%d %d %d %.6f %d %d" ops eagain errors secs hits misses);
  Array.iter (fun v -> Buffer.add_string b (" " ^ string_of_int v)) hist;
  Buffer.add_char b '\n';
  let line = Buffer.contents b in
  let _ = Unix.write_substring out_fd line 0 (String.length line) in
  Unix.close out_fd

(* One pipelined client: [depth] requests in flight on one blocking
   socket, replies correlated by request id (they return out of
   order). Each slot cycles open→write→close→open→read→close over the
   client's private files — private directory, so the first path
   component routes all of one client's traffic to one shard. *)
let run_client ~addr ~id ~depth ~files ~bytes ~seconds out_fd =
  let fd = Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr)
      Unix.SOCK_STREAM 0
  in
  let rec connect tries =
    match Unix.connect fd addr with
    | () -> ()
    | exception Unix.Unix_error _ when tries > 0 ->
      Unix.sleepf 0.05;
      connect (tries - 1)
  in
  connect 100;
  let dir = Printf.sprintf "/c%d" id in
  let payload = String.make bytes 'x' in
  let next_id = ref 0 in
  let fresh_id () = incr next_id; !next_id in
  let send req =
    let opcode, body = Wire.encode_request req in
    let req_id = fresh_id () in
    (match Frame.write fd { Frame.req_id; opcode; payload = body } with
    | Ok () -> ()
    | Error e -> die "client %d: send failed (%s)" id (Errno.to_string e));
    req_id
  in
  let recv () =
    match Frame.read fd with
    | Ok (Some { Frame.req_id; opcode; payload }) -> (
      match Wire.decode_reply ~opcode payload with
      | Ok r -> (req_id, r)
      | Error e -> die "client %d: bad reply (%s)" id (Errno.to_string e))
    | Ok None -> die "client %d: server closed the connection" id
    | Error e -> die "client %d: recv failed (%s)" id (Errno.to_string e)
  in
  let call req =
    let rid = send req in
    let rec wait () =
      let rid', r = recv () in
      if rid' = rid then r else wait ()
    in
    wait ()
  in
  (* setup (untimed): the client's private directory *)
  let rec mkdir tries =
    match call (Wire.Mkdir dir) with
    | Wire.Ok_unit -> ()
    | Wire.Err Errno.EEXIST -> ()
    | Wire.Err Errno.EAGAIN when tries > 0 ->
      Unix.sleepf 0.01;
      mkdir (tries - 1)
    | r -> die "client %d: mkdir: %s" id (Format.asprintf "%a" Wire.pp_reply r)
  in
  mkdir 200;
  (* phase sequence per slot; [k] is the slot's file cursor *)
  let phase_req slot phase =
    let path = Printf.sprintf "%s/f%d" dir slot.(0) in
    match phase with
    | 0 -> Wire.Open { client = id; path; mode = Client.WO }
    | 1 -> Wire.Write { client = id; path; offset = 0; data = payload }
    | 2 -> Wire.Close { client = id; path }
    | 3 -> Wire.Open { client = id; path; mode = Client.RO }
    | 4 -> Wire.Read { client = id; path; offset = 0; count = bytes }
    | _ -> Wire.Close { client = id; path }
  in
  let hist = Hist.create () in
  let ops = ref 0 and eagain = ref 0 and errors = ref 0 in
  let in_flight = Hashtbl.create 16 in (* req_id -> (slot, phase, t_sent) *)
  let issue slot phase =
    let rid = send (phase_req slot phase) in
    Hashtbl.replace in_flight rid (slot, phase, Unix.gettimeofday ())
  in
  let slots =
    Array.init depth (fun i -> [| i mod files |]) (* file cursor per slot *)
  in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. seconds in
  Array.iteri (fun i slot -> ignore i; issue slot 0) slots;
  let live = ref depth in
  while !live > 0 do
    let rid, reply = recv () in
    match Hashtbl.find_opt in_flight rid with
    | None -> die "client %d: reply to unknown request %d" id rid
    | Some (slot, phase, t_sent) ->
      Hashtbl.remove in_flight rid;
      let now = Unix.gettimeofday () in
      let retry =
        match reply with
        | Wire.Err Errno.EAGAIN ->
          incr eagain;
          true
        | Wire.Err _ ->
          incr errors;
          false
        | _ ->
          Hist.add hist (now -. t_sent);
          incr ops;
          false
      in
      if now >= deadline then decr live
      else if retry then issue slot phase
      else begin
        let phase' = (phase + 1) mod 6 in
        if phase' = 0 then slot.(0) <- (slot.(0) + depth) mod files;
        issue slot phase'
      end
  done;
  (* drain what is still in flight so close pairs with open *)
  while Hashtbl.length in_flight > 0 do
    let rid, _ = recv () in
    Hashtbl.remove in_flight rid
  done;
  let secs = Unix.gettimeofday () -. t0 in
  Unix.close fd;
  report_client ~ops:!ops ~eagain:!eagain ~errors:!errors ~secs ~hits:0
    ~misses:0 ~hist out_fd

(* The shared-hot-set client (zipf / readmostly), synchronous: one op
   at a time over handles held open for the whole run. With [cache] the
   loop runs over {!Cached_client} — repeated reads of a granted file
   touch no wire; without, the same loop is one plain RPC per step, the
   old-client vocabulary. *)
let run_client_shared ~addr ~id ~files ~bytes ~seconds ~workload ~cache out_fd
    =
  let fd = connect_to addr in
  let rng = Random.State.make [| 0xC0FFEE; id |] in
  let pick, write_frac =
    match workload with
    | Zipf theta ->
      let cdf = zipf_cdf ~n:files ~theta in
      ((fun () -> sample_cdf cdf rng), 0.0)
    | Readmostly ratio -> ((fun () -> Random.State.int rng files), 1.0 -. ratio)
    | Seq -> die "pfs loadgen: seq is not a shared workload"
  in
  let payload = String.make bytes 'y' in
  let hist = Hist.create () in
  let ops = ref 0 and eagain = ref 0 and errors = ref 0 in
  let note r t1 =
    match r with
    | Ok () ->
      Hist.add hist (Unix.gettimeofday () -. t1);
      incr ops
    | Error Errno.EAGAIN -> incr eagain
    | Error _ -> incr errors
  in
  let ( let* ) = Result.bind in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. seconds in
  let hits, misses =
    if cache then begin
      let cc = CC.create ~client:(id + 1) (CC.socket_transport fd) in
      for k = 0 to files - 1 do
        match CC.open_ cc (shared_file k) Client.RO with
        | Ok () -> ()
        | Error e ->
          die "client %d: open %s: %s" id (shared_file k) (Errno.to_string e)
      done;
      while Unix.gettimeofday () < deadline do
        let p = shared_file (pick ()) in
        let t1 = Unix.gettimeofday () in
        let r =
          if write_frac > 0. && Random.State.float rng 1.0 < write_frac then begin
            let r =
              let* () = CC.close_ cc p in
              let* () = CC.open_ cc p Client.WO in
              let* () = CC.write cc p ~offset:0 ~data:payload in
              let* () = CC.close_ cc p in
              CC.open_ cc p Client.RO
            in
            (* whatever failed mid-cycle, leave the handle readable *)
            (match r with Error _ -> ignore (CC.open_ cc p Client.RO) | Ok () -> ());
            r
          end
          else
            match CC.read cc p ~offset:0 ~count:bytes with
            | Ok _ -> Ok ()
            | Error e -> Error e
        in
        note r t1
      done;
      let h = CC.local_hits cc and m = CC.remote_misses cc in
      CC.disconnect cc;
      (h, m)
    end
    else begin
      let next_id = ref 0 in
      let call = sync_call fd next_id in
      let rpc req =
        match call req with Wire.Err e -> Error e | _ -> Ok ()
      in
      for k = 0 to files - 1 do
        match
          rpc (Wire.Open { client = id; path = shared_file k; mode = Client.RO })
        with
        | Ok () -> ()
        | Error e ->
          die "client %d: open %s: %s" id (shared_file k) (Errno.to_string e)
      done;
      while Unix.gettimeofday () < deadline do
        let p = shared_file (pick ()) in
        let t1 = Unix.gettimeofday () in
        let r =
          if write_frac > 0. && Random.State.float rng 1.0 < write_frac then begin
            let r =
              let* () = rpc (Wire.Close { client = id; path = p }) in
              let* () = rpc (Wire.Open { client = id; path = p; mode = Client.WO }) in
              let* () =
                rpc (Wire.Write { client = id; path = p; offset = 0; data = payload })
              in
              let* () = rpc (Wire.Close { client = id; path = p }) in
              rpc (Wire.Open { client = id; path = p; mode = Client.RO })
            in
            (match r with
            | Error _ ->
              ignore (rpc (Wire.Open { client = id; path = p; mode = Client.RO }))
            | Ok () -> ());
            r
          end
          else rpc (Wire.Read { client = id; path = p; offset = 0; count = bytes })
        in
        note r t1
      done;
      for k = 0 to files - 1 do
        ignore (rpc (Wire.Close { client = id; path = shared_file k }))
      done;
      Unix.close fd;
      (0, 0)
    end
  in
  let secs = Unix.gettimeofday () -. t0 in
  report_client ~ops:!ops ~eagain:!eagain ~errors:!errors ~secs ~hits ~misses
    ~hist out_fd

let parse_client_line line =
  match String.split_on_char ' ' (String.trim line) with
  | ops :: eagain :: errors :: secs :: hits :: misses :: hist ->
    {
      ops = int_of_string ops;
      eagain = int_of_string eagain;
      errors = int_of_string errors;
      secs = float_of_string secs;
      hits = int_of_string hits;
      misses = int_of_string misses;
      hist = Array.of_list (List.map int_of_string hist);
    }
  | _ -> die "loadgen: malformed client report: %s" line

let read_all fd =
  let b = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> Buffer.contents b
    | n ->
      Buffer.add_subbytes b chunk 0 n;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* Read-your-writes across two cached clients, through the push
   channel: A rewrites a file B holds cached; B's next read must see
   the new bytes and must have acted on at least one Invalidate. Runs
   against the live loadgen server, after the measured phase. *)
let consistency_probe addr ~bytes =
  let path = shared_dir ^ "/f0" in
  let pat c = String.make bytes c in
  let a = CC.create ~client:100001 (CC.socket_transport (connect_to addr)) in
  let b = CC.create ~client:100002 (CC.socket_transport (connect_to addr)) in
  let step name r =
    match r with
    | Ok v -> Ok v
    | Error e ->
      Printf.eprintf "pfs loadgen: consistency probe: %s failed (%s)\n%!"
        name (Errno.to_string e);
      Error e
  in
  let check name cond = step name (if cond then Ok () else Error Errno.EIO) in
  let ( let* ) = Result.bind in
  let run () =
    let* () = step "A open WO" (CC.open_ a path Client.WO) in
    let* () = step "A write P" (CC.write a path ~offset:0 ~data:(pat 'P')) in
    let* () = step "A close" (CC.close_ a path) in
    let* () = step "B open RO" (CC.open_ b path Client.RO) in
    let* d1 = step "B read 1" (CC.read b path ~offset:0 ~count:bytes) in
    let* () = check "B sees P" (d1 = pat 'P') in
    (* warm B's cache, then rewrite behind its back *)
    let* _ = step "B read 2" (CC.read b path ~offset:0 ~count:bytes) in
    let* () = step "A reopen WO" (CC.open_ a path Client.WO) in
    let* () = step "A write Q" (CC.write a path ~offset:0 ~data:(pat 'Q')) in
    let* () = step "A reclose" (CC.close_ a path) in
    (* the Invalidate rides B's connection; give its writer a beat *)
    Unix.sleepf 0.1;
    let* d2 = step "B read 3" (CC.read b path ~offset:0 ~count:bytes) in
    let* () = check "B sees Q" (d2 = pat 'Q') in
    let* () = check "B was invalidated" (CC.invalidations b >= 1) in
    step "B close" (CC.close_ b path)
  in
  let ok = match run () with Ok () -> true | Error _ -> false in
  CC.disconnect a;
  CC.disconnect b;
  ok

(* One full benchmark run at a given shard count: fork the server,
   fork the clients, gather, shut the server down over the wire. *)
let loadgen_run ~image ~sets ~shards ~clients ~depth ~files ~bytes ~seconds
    ~workload ~cache =
  let image = Printf.sprintf "%s.s%d" image shards in
  let cfg =
    match config_of image (Printf.sprintf "shards=%d" shards :: sets) with
    | Ok cfg -> cfg
    | Error e -> die "pfs loadgen: bad configuration (%s)" (Errno.to_string e)
  in
  if cfg.Pfs.Config.clock <> `Real then
    die "pfs loadgen: needs clock=real";
  let sock_path = image ^ ".sock" in
  let addr = Unix.ADDR_UNIX sock_path in
  unlink_quiet sock_path;
  (* server child: bind, shard out, serve until a Shutdown frame *)
  let server_pid =
    match Unix.fork () with
    | 0 ->
      let lfd = listen_socket addr in
      (match Server.create cfg with
      | Error e ->
        prerr_endline ("pfs loadgen server: " ^ Errno.to_string e);
        exit 1
      | Ok server ->
        Server.serve server lfd;
        Unix.close lfd;
        let oc = open_out (image ^ ".stats.json") in
        output_string oc (Server.report_json server);
        output_char oc '\n';
        close_out oc;
        exit 0)
    | pid -> pid
  in
  (* wait for the socket to accept *)
  let rec wait_ready tries =
    if tries = 0 then die "pfs loadgen: server never came up";
    let fd =
      Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
    in
    match Unix.connect fd addr with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ ->
      Unix.close fd;
      Unix.sleepf 0.05;
      wait_ready (tries - 1)
  in
  wait_ready 200;
  if workload <> Seq then setup_shared addr ~files ~bytes;
  (* client children, one pipe each *)
  let kids =
    List.init clients (fun id ->
        let r, w = Unix.pipe ~cloexec:false () in
        match Unix.fork () with
        | 0 ->
          Unix.close r;
          (match workload with
          | Seq -> run_client ~addr ~id ~depth ~files ~bytes ~seconds w
          | Zipf _ | Readmostly _ ->
            run_client_shared ~addr ~id ~files ~bytes ~seconds ~workload
              ~cache w);
          exit 0
        | pid ->
          Unix.close w;
          (pid, r))
  in
  let results =
    List.map
      (fun (pid, r) ->
        let text = read_all r in
        Unix.close r;
        let _, status = Unix.waitpid [] pid in
        if status <> Unix.WEXITED 0 then
          die "pfs loadgen: a client failed";
        parse_client_line text)
      kids
  in
  let consistency =
    if cache then Some (consistency_probe addr ~bytes) else None
  in
  (* stop the server over the wire: Shutdown gets no reply *)
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd addr;
  let opcode, body = Wire.encode_request Wire.Shutdown in
  (match Frame.write fd { Frame.req_id = 0; opcode; payload = body } with
  | Ok () -> ()
  | Error e -> die "pfs loadgen: shutdown send failed (%s)"
                 (Errno.to_string e));
  Unix.close fd;
  let _, status = Unix.waitpid [] server_pid in
  if status <> Unix.WEXITED 0 then die "pfs loadgen: unclean server exit";
  unlink_quiet sock_path;
  let hist = Hist.create () in
  List.iter (fun r -> Hist.merge hist r.hist) results;
  let ops = List.fold_left (fun a r -> a + r.ops) 0 results in
  let eagain = List.fold_left (fun a r -> a + r.eagain) 0 results in
  let errors =
    List.fold_left (fun a r -> a + r.errors) 0 results
    + (match consistency with Some false -> 1 | _ -> 0)
  in
  let hits = List.fold_left (fun a r -> a + r.hits) 0 results in
  let misses = List.fold_left (fun a r -> a + r.misses) 0 results in
  let secs = List.fold_left (fun a r -> Float.max a r.secs) 0.001 results in
  let ops_per_sec = float_of_int ops /. secs in
  let hit_rate =
    if hits + misses = 0 then 0.
    else float_of_int hits /. float_of_int (hits + misses)
  in
  let b = Buffer.create 512 in
  Printf.bprintf b
    "{\"shards\": %d, \"clients\": %d, \"depth\": %d, \"workload\": \"%s\", \
     \"cache\": %b, \"seconds\": %.3f, \
     \"ops\": %d, \"eagain\": %d, \"errors\": %d, \"ops_per_sec\": %.1f, \
     \"client_hits\": %d, \"client_misses\": %d, \"hit_rate\": %.3f, \
     \"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f"
    shards clients depth (workload_name workload) cache secs ops eagain
    errors ops_per_sec hits misses hit_rate
    (Hist.quantile_us hist 0.50)
    (Hist.quantile_us hist 0.99)
    (Hist.quantile_us hist 0.999);
  (match consistency with
  | Some c -> Printf.bprintf b ", \"consistency\": %b" c
  | None -> ());
  Buffer.add_char b '}';
  Printf.printf
    "pfs loadgen: %d shard(s), %d clients, %s%s: %d ops in %.2fs — %.0f \
     ops/s, p50 %.0fµs p99 %.0fµs p999 %.0fµs (%d eagain, %d errors%s)\n%!"
    shards clients (workload_name workload)
    (if cache then " +cache" else "")
    ops secs ops_per_sec
    (Hist.quantile_us hist 0.50)
    (Hist.quantile_us hist 0.99)
    (Hist.quantile_us hist 0.999)
    eagain errors
    (match consistency with
    | Some true -> ", consistency ok"
    | Some false -> ", CONSISTENCY FAILED"
    | None -> "");
  (Buffer.contents b, ops_per_sec, errors)

(* Splice a "loadgen" member into BENCH_results.json, preserving
   whatever else is there (the bench baseline gate reads its own keys
   from the same file). *)
let splice_bench path loadgen_json =
  let existing =
    if Sys.file_exists path then (
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s)
    else "{}"
  in
  let marker = ",\n  \"loadgen\":" in
  let base =
    match
      (* replace an existing loadgen member *)
      let rec find i =
        if i + String.length marker > String.length existing then None
        else if String.sub existing i (String.length marker) = marker then
          Some i
        else find (i + 1)
      in
      find 0
    with
    | Some i -> String.sub existing 0 i
    | None -> (
      match String.rindex_opt existing '}' with
      | Some i ->
        let rec trim i =
          if i > 0
             && (existing.[i - 1] = ' '
                || existing.[i - 1] = '\n'
                || existing.[i - 1] = '\t')
          then trim (i - 1)
          else i
        in
        String.sub existing 0 (trim i)
      | None -> "{")
  in
  let sep = if String.length base > 0 && base.[String.length base - 1] = '{'
    then "\n  " else ",\n  " in
  let oc = open_out_bin path in
  output_string oc (base ^ sep ^ "\"loadgen\": " ^ loadgen_json ^ "\n}\n");
  close_out oc

let loadgen_main image sets shard_list clients depth files bytes seconds
    workload cache out =
  let workload = parse_workload workload in
  if cache && workload = Seq then
    die "pfs loadgen: --cache needs a shared workload (zipf:* or \
         readmostly:*)";
  let shard_list =
    match
      String.split_on_char ',' shard_list
      |> List.filter (fun s -> String.trim s <> "")
      |> List.map (fun s -> int_of_string_opt (String.trim s))
    with
    | [] -> die "pfs loadgen: --shards needs at least one count"
    | l when List.mem None l -> die "pfs loadgen: bad --shards list"
    | l -> List.map Option.get l
  in
  let runs =
    List.map
      (fun shards ->
        let json, ops_per_sec, errors =
          loadgen_run ~image ~sets ~shards ~clients ~depth ~files ~bytes
            ~seconds ~workload ~cache
        in
        (shards, json, ops_per_sec, errors))
      shard_list
  in
  let total_errors =
    List.fold_left (fun a (_, _, _, e) -> a + e) 0 runs
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"runs\": [";
  List.iteri
    (fun i (_, json, _, _) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b json)
    runs;
  Buffer.add_char b ']';
  (match runs with
  | (s1, _, r1, _) :: (_ :: _ as rest) when r1 > 0. ->
    let sn, _, rn, _ = List.nth rest (List.length rest - 1) in
    Printf.bprintf b ", \"speedup\": %.2f" (rn /. r1);
    Printf.printf "pfs loadgen: %d-shard vs %d-shard speedup: %.2fx\n%!" sn
      s1 (rn /. r1)
  | _ -> ());
  Buffer.add_char b '}';
  splice_bench out (Buffer.contents b);
  Printf.printf "pfs loadgen: results spliced into %s\n" out;
  if total_errors > 0 then 1 else 0

(* {1 Command line} *)

open Cmdliner

let image = Arg.(required & pos 0 (some string) None & info [] ~docv:"IMAGE")

let sets =
  Arg.(
    value & opt_all string []
    & info [ "s"; "set" ] ~docv:"KEY=VALUE" ~doc:Pfs.Config.arg_doc)

let shell_cmd =
  let size_mb = Arg.(value & opt int 64 & info [ "size-mb" ]) in
  let commands =
    Arg.(
      value & opt_all string []
      & info [ "c"; "command" ]
          ~doc:"Run a command and exit (repeatable).")
  in
  Cmd.v
    (Cmd.info "shell" ~doc:"serve an image in-process, drive it by hand")
    Term.(const shell_main $ image $ size_mb $ sets $ commands)

let serve_cmd =
  let port =
    Arg.(
      value & opt (some int) None
      & info [ "port" ] ~doc:"Listen on loopback TCP $(docv) instead of \
                              the Unix socket IMAGE.sock."
          ~docv:"PORT")
  in
  let stats_out =
    Arg.(
      value & opt (some string) None
      & info [ "stats-out" ]
          ~doc:"Where to write the merged statistics report (default \
                IMAGE.stats.json).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"the scale-out multi-client server (shards behind a socket)")
    Term.(const serve_main $ image $ sets $ port $ stats_out)

let loadgen_cmd =
  let shards =
    Arg.(
      value & opt string "1"
      & info [ "shards" ]
          ~doc:"Comma-separated shard counts; each is one full run (e.g. \
                $(b,1,4) to compare scale-out)."
          ~docv:"N[,N...]")
  in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~doc:"Client processes.")
  in
  let depth =
    Arg.(
      value & opt int 4
      & info [ "depth" ] ~doc:"Pipelined requests per client.")
  in
  let files =
    Arg.(
      value & opt int 8 & info [ "files" ] ~doc:"Files per client directory.")
  in
  let bytes =
    Arg.(value & opt int 4096 & info [ "bytes" ] ~doc:"Bytes per write/read.")
  in
  let seconds =
    Arg.(
      value & opt float 3.0 & info [ "seconds" ] ~doc:"Measured duration.")
  in
  let workload =
    Arg.(
      value & opt string "seq"
      & info [ "workload" ]
          ~doc:"$(b,seq) (private files, pipelined), \
                $(b,zipf:<theta>) (shared hot-set reads, Zipf-skewed), or \
                $(b,readmostly:<ratio>) (shared files, $(i,ratio) of ops \
                are reads)."
          ~docv:"KIND")
  in
  let cache =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:"Run clients through the leased client cache \
                (Open_grant/Invalidate/Writeback vocabulary) instead of \
                plain per-op RPC. Needs a shared workload.")
  in
  let out =
    Arg.(
      value & opt string "BENCH_results.json"
      & info [ "out" ] ~doc:"JSON report to splice results into.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"fork a server and N clients, report ops/s and tail latency")
    Term.(
      const loadgen_main $ image $ sets $ shards $ clients $ depth $ files
      $ bytes $ seconds $ workload $ cache $ out)

let cmd =
  let default =
    Term.(ret (const (fun _ -> `Help (`Pager, None)) $ const ()))
  in
  Cmd.group ~default
    (Cmd.info "pfs" ~doc:"the on-line cut-and-paste file system")
    [ shell_cmd; serve_cmd; loadgen_cmd ]

let () = exit (Cmd.eval' cmd)
