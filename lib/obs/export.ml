let of_events evs = List.map (fun e -> (0, e)) evs

let pp_text ppf stream =
  List.iter
    (fun (sid, e) -> Format.fprintf ppf "%3d %a@." sid Event.pp e)
    stream

(* {2 Chrome trace_event JSON}

   Hand-rolled: the toolchain has no JSON library, and the format is a
   flat array of small objects. Everything numeric is finite by
   construction (scheduler times and durations). *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_str buf s =
  Buffer.add_char buf '"';
  add_escaped buf s;
  Buffer.add_char buf '"'

let add_field buf ~first name value =
  if not first then Buffer.add_char buf ',';
  add_str buf name;
  Buffer.add_char buf ':';
  value ()

let usec s = Printf.sprintf "%.3f" (1e6 *. s)

let add_args buf (kind : Event.kind) =
  let str name v =
    add_str buf name;
    Buffer.add_char buf ':';
    add_str buf v
  in
  let int name v =
    add_str buf name;
    Buffer.add_string buf (Printf.sprintf ":%d" v)
  in
  let sep () = Buffer.add_char buf ',' in
  Buffer.add_char buf '{';
  (match kind with
  | Event.Dispatch { thread; _ } | Event.Wake { thread; _ } ->
    str "thread" thread
  | Event.Block { thread; on; _ } ->
    str "thread" thread;
    sep ();
    str "on" on
  | Event.Cache_hit { cache; ino; index }
  | Event.Cache_miss { cache; ino; index }
  | Event.Cache_evict { cache; ino; index } ->
    str "cache" cache;
    sep ();
    int "ino" ino;
    sep ();
    int "index" index
  | Event.Cache_flush { cache; blocks } ->
    str "cache" cache;
    sep ();
    int "blocks" blocks
  | Event.Disk_enqueue { disk; lba; sectors; write } ->
    str "disk" disk;
    sep ();
    int "lba" lba;
    sep ();
    int "sectors" sectors;
    sep ();
    str "op" (if write then "write" else "read")
  | Event.Disk_seek { disk; cylinder; _ } ->
    str "disk" disk;
    sep ();
    int "cylinder" cylinder
  | Event.Disk_service { disk; lba; sectors; write; _ } ->
    str "disk" disk;
    sep ();
    int "lba" lba;
    sep ();
    int "sectors" sectors;
    sep ();
    str "op" (if write then "write" else "read")
  | Event.Seg_write { volume; seg; blocks } ->
    str "volume" volume;
    sep ();
    int "segment" seg;
    sep ();
    int "blocks" blocks
  | Event.Disk_fault { disk; lba; sectors; write; fault } ->
    str "disk" disk;
    sep ();
    int "lba" lba;
    sep ();
    int "sectors" sectors;
    sep ();
    str "op" (if write then "write" else "read");
    sep ();
    str "fault" fault
  | Event.Disk_retry { disk; attempt; _ } ->
    str "disk" disk;
    sep ();
    int "attempt" attempt
  | Event.Disk_merge { disk; lba; sectors; write; count } ->
    str "disk" disk;
    sep ();
    int "lba" lba;
    sep ();
    int "sectors" sectors;
    sep ();
    str "op" (if write then "write" else "read");
    sep ();
    int "count" count
  | Event.Recovery { volume; segments; inodes } ->
    str "volume" volume;
    sep ();
    int "segments" segments;
    sep ();
    int "inodes" inodes);
  Buffer.add_char buf '}'

(* Non-scheduler events render under a per-component synthetic thread
   id so each cache/disk/volume gets its own viewer track; scheduler
   events use the real fibre id. *)
let tid_of (kind : Event.kind) =
  match kind with
  | Event.Dispatch { tid; _ } | Event.Block { tid; _ } | Event.Wake { tid; _ }
    ->
    tid
  | _ ->
    (* stable small id from the component name, offset past fibre ids *)
    let h = Hashtbl.hash (Event.source kind) in
    100_000 + (h mod 10_000)

let add_event buf sid (e : Event.t) =
  let dur = Event.duration e.Event.kind in
  Buffer.add_char buf '{';
  add_field buf ~first:true "name" (fun () ->
      add_str buf (Event.kind_name e.Event.kind));
  add_field buf ~first:false "cat" (fun () ->
      add_str buf (Event.layer_name (Event.layer_of e.Event.kind)));
  if dur > 0. then begin
    add_field buf ~first:false "ph" (fun () -> add_str buf "X");
    add_field buf ~first:false "ts" (fun () ->
        Buffer.add_string buf (usec (e.Event.time -. dur)));
    add_field buf ~first:false "dur" (fun () ->
        Buffer.add_string buf (usec dur))
  end
  else begin
    add_field buf ~first:false "ph" (fun () -> add_str buf "i");
    add_field buf ~first:false "s" (fun () -> add_str buf "t");
    add_field buf ~first:false "ts" (fun () ->
        Buffer.add_string buf (usec e.Event.time))
  end;
  add_field buf ~first:false "pid" (fun () ->
      Buffer.add_string buf (string_of_int sid));
  add_field buf ~first:false "tid" (fun () ->
      Buffer.add_string buf (string_of_int (tid_of e.Event.kind)));
  add_field buf ~first:false "args" (fun () -> add_args buf e.Event.kind);
  Buffer.add_char buf '}'

(* Metadata records (ph "M") name each track: scheduler tids get their
   fibre's thread name, component tids the component name. *)
let add_thread_names buf stream =
  let seen = Hashtbl.create 32 in
  List.iter
    (fun (sid, (e : Event.t)) ->
      let tid = tid_of e.Event.kind in
      if not (Hashtbl.mem seen (sid, tid)) then begin
        let label =
          match e.Event.kind with
          | Event.Dispatch { thread; _ }
          | Event.Block { thread; _ }
          | Event.Wake { thread; _ } ->
            thread
          | kind -> Event.source kind
        in
        Hashtbl.replace seen (sid, tid) ();
        Buffer.add_string buf
          (Printf.sprintf "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":"
             sid tid);
        add_str buf label;
        Buffer.add_string buf "}},\n"
      end)
    stream

let chrome_json buf stream =
  Buffer.add_string buf "{\"traceEvents\":[\n";
  add_thread_names buf stream;
  List.iteri
    (fun i (sid, e) ->
      if i > 0 then Buffer.add_string buf ",\n";
      add_event buf sid e)
    stream;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n"

let to_file path stream =
  let buf = Buffer.create 65536 in
  chrome_json buf stream;
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc
