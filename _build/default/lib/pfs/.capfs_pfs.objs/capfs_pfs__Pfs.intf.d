lib/pfs/pfs.mli: Capfs Capfs_cache Capfs_sched Capfs_stats Nfs
