module Key = struct
  type t = int

  let index_bits = 25
  let max_index = (1 lsl index_bits) - 1
  let max_ino = (1 lsl (Sys.int_size - 1 - index_bits)) - 1

  let v ino index =
    if ino < 0 || ino > max_ino then
      invalid_arg "Block.Key.v: inode number out of range"
    else if index < 0 || index > max_index then
      invalid_arg "Block.Key.v: block index out of range"
    else (ino lsl index_bits) lor index

  let ino k = k lsr index_bits
  let index k = k land max_index
  let equal (a : int) (b : int) = a = b
  let compare (a : int) (b : int) = compare a b

  (* Fibonacci-style multiplicative mix. OCaml's [Hashtbl] masks the
     hash with a power-of-two table size, so an identity hash would
     collide every key sharing low index bits; folding the high product
     bits back down spreads both ino and index over the low bits. *)
  let hash k =
    let h = k * 0x9E3779B97F4A7C1 in
    (h lxor (h lsr 29)) land max_int

  let pp ppf k = Format.fprintf ppf "%d:%d" (ino k) (index k)
end

type state = Clean | Dirty | Flushing

type t = {
  key : Key.t;
  mutable data : Capfs_disk.Data.t;
  mutable state : state;
  mutable dirtied_at : float;
  mutable last_access : float;
  mutable access_count : int;
  mutable version : int;
  mutable in_nvram : bool;
  mutable pinned : int;
  mutable policy_slot : int;
  mutable zombie : bool;
}

let make ~key ~data ~now =
  {
    key;
    data;
    state = Clean;
    dirtied_at = now;
    last_access = now;
    access_count = 0;
    version = 0;
    in_nvram = false;
    pinned = 0;
    policy_slot = -1;
    zombie = false;
  }

let ino t = Key.ino t.key
let index t = Key.index t.key
let is_dirty t = match t.state with Dirty | Flushing -> true | Clean -> false
let evictable t = t.state = Clean && t.pinned = 0
let pin t = t.pinned <- t.pinned + 1

let unpin t =
  if t.pinned <= 0 then invalid_arg "Block.unpin: not pinned";
  t.pinned <- t.pinned - 1

let pp ppf t =
  Format.fprintf ppf "%a[%s%s%s]" Key.pp t.key
    (match t.state with Clean -> "C" | Dirty -> "D" | Flushing -> "F")
    (if t.in_nvram then "N" else "")
    (if t.pinned > 0 then "P" else "")
