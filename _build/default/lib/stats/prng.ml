type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state 0x9e3779b97f4a7c15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  (* Keep 62 bits so the value fits OCaml's 63-bit immediate int range. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let float t =
  (* 53 high-quality bits, as in Random.float. *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits /. 9007199254740992. (* 2^53 *)

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let exponential t ~mean =
  let u = 1. -. float t in
  -.mean *. Stdlib.log u

let pareto t ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Prng.pareto";
  let u = 1. -. float t in
  scale /. (u ** (1. /. shape))

let lognormal t ~mu ~sigma =
  let u1 = 1. -. float t and u2 = float t in
  let z = sqrt (-2. *. Stdlib.log u1) *. cos (2. *. Float.pi *. u2) in
  exp (mu +. (sigma *. z))

let bool t p = float t < p

let choose t weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if Array.length weights = 0 || total <= 0. then
    invalid_arg "Prng.choose: empty or all-zero weights";
  let target = float t *. total in
  let rec scan i acc =
    if i = Array.length weights - 1 then i
    else begin
      let acc' = acc +. weights.(i) in
      if target < acc' then i else scan (i + 1) acc'
    end
  in
  scan 0 0.
