(** Plug-in statistics objects.

    Patsy's detailed internal measurements are "plug-in statistics
    objects … activated when the simulator is started", each providing
    "standard statistics output with or without histograms". A [Stat.t]
    is such an object: a named sink for float observations that can render
    a report. Components expose the stats they maintain; the {!Registry}
    activates and prints them. *)

type t

(** [scalar name] records mean/min/max/stddev only. *)
val scalar : string -> t

(** [with_histogram name hist] additionally buckets observations into
    [hist] and prints it in reports. *)
val with_histogram : string -> Histogram.t -> t

(** [with_samples name samples] additionally retains samples for exact
    quantiles/CDFs. *)
val with_samples : string -> Sample_set.t -> t

val name : t -> string
val record : t -> float -> unit
val count : t -> int
val mean : t -> float
val welford : t -> Welford.t

(** The attached histogram, if any. *)
val histogram : t -> Histogram.t option

(** The attached sample set, if any. *)
val samples : t -> Sample_set.t option

val reset : t -> unit

(** [report ?histograms ppf t] prints the one-line summary and, when
    [histograms] is true (default) and a histogram is attached, the
    histogram body. *)
val report : ?histograms:bool -> Format.formatter -> t -> unit
