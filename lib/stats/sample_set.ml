type t = {
  cap : int option;
  mutable samples : float array;
  mutable len : int;
  mutable seen : int;
  (* a [float ref] is an all-float record, so accumulating into it never
     boxes; a [mutable float] field in this mixed record would allocate
     on every [add] *)
  sum : float ref;
  rng : Prng.t;
  mutable sorted : bool;
}

let create ?cap ?(seed = 0x9e3779b9) () =
  (match cap with
  | Some c when c < 1 -> invalid_arg "Sample_set.create: cap < 1"
  | _ -> ());
  {
    cap;
    samples = Array.make 64 0.;
    len = 0;
    seen = 0;
    sum = ref 0.;
    rng = Prng.create ~seed;
    sorted = true;
  }

let push t x =
  if t.len = Array.length t.samples then begin
    let bigger = Array.make (2 * t.len) 0. in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end;
  t.samples.(t.len) <- x;
  t.len <- t.len + 1

let add t x =
  t.seen <- t.seen + 1;
  t.sum := !(t.sum) +. x;
  t.sorted <- false;
  match t.cap with
  | None -> push t x
  | Some cap ->
    if t.len < cap then push t x
    else begin
      (* Vitter's algorithm R: replace a random slot with probability
         cap/seen. *)
      let j = Prng.int t.rng t.seen in
      if j < cap then t.samples.(j) <- x
    end

let count t = t.seen
let mean t = if t.seen = 0 then 0. else !(t.sum) /. float_of_int t.seen

let ensure_sorted t =
  if not t.sorted then begin
    let view = Array.sub t.samples 0 t.len in
    Array.sort compare view;
    Array.blit view 0 t.samples 0 t.len;
    t.sorted <- true
  end

let quantile t q =
  if t.len = 0 then invalid_arg "Sample_set.quantile: empty";
  if q < 0. || q > 1. then invalid_arg "Sample_set.quantile: q out of range";
  ensure_sorted t;
  let pos = q *. float_of_int (t.len - 1) in
  let i = int_of_float (floor pos) in
  let frac = pos -. float_of_int i in
  if i + 1 >= t.len then t.samples.(t.len - 1)
  else t.samples.(i) +. (frac *. (t.samples.(i + 1) -. t.samples.(i)))

let fraction_le t x =
  if t.len = 0 then 0.
  else begin
    ensure_sorted t;
    (* binary search for the rightmost index with samples.(i) <= x *)
    let rec go lo hi =
      if lo >= hi then lo
      else begin
        let mid = (lo + hi) / 2 in
        if t.samples.(mid) <= x then go (mid + 1) hi else go lo mid
      end
    in
    float_of_int (go 0 t.len) /. float_of_int t.len
  end

let cdf_points t ~points =
  if t.len = 0 || points < 2 then []
  else begin
    ensure_sorted t;
    List.init points (fun i ->
        let q = float_of_int i /. float_of_int (points - 1) in
        (quantile t q, q))
  end

let reset t =
  t.len <- 0;
  t.seen <- 0;
  t.sum := 0.;
  t.sorted <- true
