lib/sched/sched.ml: Array Capfs_stats Effect Hashtbl Heap List Logs Printexc Printf Queue Stdlib String Unix
