lib/ccache/netlink.mli: Capfs_sched Capfs_stats
