(** Polymorphic binary min-heap.

    Used for the scheduler's timer queue and by disk-queue scheduling
    policies that service requests in key order. *)

type 'a t

(** [create ~cmp] is an empty heap ordered by [cmp] (minimum first). *)
val create : cmp:('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

(** Smallest element without removing it. *)
val peek : 'a t -> 'a option

exception Empty

(** Like {!peek} but raising {!Empty} instead of allocating an option —
    for callers probing the heap on a per-operation hot path. *)
val top_exn : 'a t -> 'a

(** Remove and return the smallest element. *)
val pop : 'a t -> 'a option

(** [remove t p] removes the first element satisfying [p], if any;
    O(n). Returns whether an element was removed. *)
val remove : 'a t -> ('a -> bool) -> bool

(** Elements in arbitrary order. *)
val to_list : 'a t -> 'a list

val clear : 'a t -> unit
