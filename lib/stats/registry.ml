type t = {
  table : (string, Counter.t) Hashtbl.t;
  (* Sorted-by-name view of every registered counter, computed lazily
     and invalidated by [register]. [set_enabled]/[report]/[all]/[iter]
     share it instead of re-folding and re-sorting the table per call. *)
  mutable sorted : Counter.t array option;
}

let create () = { table = Hashtbl.create 64; sorted = None }

let register t stat =
  let name = Stat.name stat in
  if Hashtbl.mem t.table name then
    invalid_arg ("Registry.register: duplicate stat " ^ name);
  Hashtbl.add t.table name (Counter.make stat);
  t.sorted <- None

let counter t name =
  match Hashtbl.find_opt t.table name with
  | Some c -> c
  | None -> invalid_arg ("Registry.counter: unknown stat " ^ name)

let find t name =
  match Hashtbl.find_opt t.table name with
  | Some c -> Some (Counter.stat c)
  | None -> None

let record t name x =
  match Hashtbl.find_opt t.table name with
  | Some c -> Counter.record c x
  | None -> ()

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
      let a =
        Array.of_list (Hashtbl.fold (fun _ c acc -> c :: acc) t.table [])
      in
      Array.sort (fun a b -> compare (Counter.name a) (Counter.name b)) a;
      t.sorted <- Some a;
      a

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let set_enabled t ~prefix on =
  Array.iter
    (fun c -> if starts_with ~prefix (Counter.name c) then Counter.set_enabled c on)
    (sorted t)

let enabled t name =
  match Hashtbl.find_opt t.table name with
  | Some c -> Counter.is_enabled c
  | None -> false

let iter t f = Array.iter (fun c -> f (Counter.stat c)) (sorted t)

let all t =
  Array.fold_right (fun c acc -> Counter.stat c :: acc) (sorted t) []

let reset t = Hashtbl.iter (fun _ c -> Stat.reset (Counter.stat c)) t.table

let report ?histograms ?(all = false) ppf t =
  Array.iter
    (fun c ->
      let stat = Counter.stat c in
      if Counter.is_enabled c && (all || Stat.count stat > 0) then
        if Stat.count stat = 0 then
          Format.fprintf ppf "%s: (no observations)@." (Stat.name stat)
        else Format.fprintf ppf "%a@." (Stat.report ?histograms) stat)
    (sorted t)
