module Sched = Capfs_sched.Sched
module Experiment = Capfs_patsy.Experiment
module Replay = Capfs_patsy.Replay
module Synth = Capfs_trace.Synth
module Source = Capfs_trace.Source

let () =
  let profile = Synth.profile_by_name "sprite-1a" in
  let records = Synth.generate ~seed:1996 ~duration:900. profile in
  let n = Array.length records in
  (* full experiment, like the bench cell *)
  let cfg = Experiment.default Experiment.Ups in
  let w0 = Gc.minor_words () in
  let o = Experiment.run cfg ~trace:(Source.of_array records) in
  let w1 = Gc.minor_words () in
  Printf.printf "full Experiment.run: %d ops, %.1f words/op\n"
    o.Experiment.replay.Replay.operations
    ((w1 -. w0) /. float_of_int n);
  (* replay with pacing+measure but a pre-warmed... instead: serial run *)
  let sched = Sched.create ~seed:42 ~clock:`Virtual () in
  let out = ref None in
  let w2 = Gc.minor_words () in
  ignore
    (Sched.spawn sched (fun () ->
         let client, _ = Experiment.build_instance sched cfg in
         out := Some (Replay.run ~serial:true client (Capfs_trace.Source.of_array records))));
  Sched.run sched;
  let w3 = Gc.minor_words () in
  Printf.printf "serial Replay.run (whole sched): %.1f words/op\n"
    ((w3 -. w2) /. float_of_int n)
