(* Active multimedia files: a file type that brings its own policy.

   A multimedia file spawns a thread of control inside the file system
   that pre-loads data ahead of the reader (the paper's "active files",
   §2). This example streams the same media file twice — once as an
   ordinary regular file, once as a multimedia file — over a simulated
   HP97560, pacing the reader at a playback rate, and reports how often
   each reader had to wait for the disk longer than its real-time budget.

   A competing client hammers the same disk with random reads
   throughout, so a reader that misses the file-system cache queues
   behind it — the situation the active file's standing prefetch window
   is there to survive.

   Run: dune exec examples/multimedia.exe *)

module Sched = Capfs_sched.Sched
module Driver = Capfs_disk.Driver
module Data = Capfs_disk.Data
module Bus = Capfs_disk.Bus
module Sim_disk = Capfs_disk.Sim_disk
module Cache = Capfs_cache.Cache
module Lfs = Capfs_layout.Lfs
module Inode = Capfs_layout.Inode
module Client = Capfs.Client

let media_bytes = 2 * 1024 * 1024
let chunk = 16 * 1024
let frame_budget = 0.100 (* a chunk every 100 ms: a ~1.3 Mbit/s MPEG-1 stream *)

let stream sched client path =
  let stalls = ref 0 and worst = ref 0. and total = ref 0. in
  let chunks = media_bytes / chunk in
  Client.open_exn client ~client:1 path Client.RO;
  for i = 0 to chunks - 1 do
    let t0 = Sched.now sched in
    ignore (Client.read_exn client ~client:1 path ~offset:(i * chunk) ~bytes:chunk);
    let dt = Sched.now sched -. t0 in
    total := !total +. dt;
    if dt > frame_budget then incr stalls;
    if dt > !worst then worst := dt;
    (* consume the frame in real time *)
    let left = frame_budget -. dt in
    if left > 0. then Sched.sleep sched left
  done;
  Client.close_exn client ~client:1 path;
  (!stalls, !worst, !total /. float_of_int chunks)

let () =
  let sched = Sched.create ~clock:`Virtual () in
  ignore
    (Sched.spawn sched (fun () ->
         let bus = Bus.scsi2 sched in
         let disk =
           Sim_disk.create ~backing:true sched Capfs_disk.Disk_model.hp97560 bus
         in
         let driver = Driver.create sched (Driver.sim_transport disk) in
         let layout =
           Lfs.format_and_mount sched driver ~block_bytes:4096
         in
         let fs =
           Capfs.Fsys.create
             ~cache_config:
               { (Cache.default_config ~capacity_blocks:128) with
                 Cache.trigger = Cache.Demand }
             ~layout sched
         in
         let client = Client.create fs in
         (* write both media files, flush, and push them out of cache *)
         List.iter
           (fun (kind, path) ->
             Client.create_file_exn client ~kind path;
             Client.open_exn client ~client:1 path Client.WO;
             let step = 64 * 1024 in
             for i = 0 to (media_bytes / step) - 1 do
               Client.write_exn client ~client:1 path ~offset:(i * step)
                 (Data.sim step)
             done;
             Client.close_exn client ~client:1 path;
             Client.fsync_exn client path)
           [ (Inode.Regular, "/plain.dat"); (Inode.Multimedia, "/movie.dat") ];
         (* evict: the cache only holds 512 KB; a scan of junk clears it *)
         Client.open_exn client ~client:1 "/junk" Client.WO;
         Client.write_exn client ~client:1 "/junk" ~offset:0
           (Data.sim (1024 * 1024));
         Client.fsync_exn client "/junk";
         (* an antagonist keeps the disk queue busy with random reads *)
         let noise_bytes = 64 * 1024 * 1024 in
         Client.synthesize_file_exn client "/noise.db" ~size:noise_bytes;
         let antagonist_on = ref true in
         let prng = Capfs_stats.Prng.create ~seed:11 in
         ignore
           (Sched.spawn sched ~name:"antagonist" ~daemon:true (fun () ->
                while !antagonist_on do
                  let block = Capfs_stats.Prng.int prng (noise_bytes / 4096) in
                  ignore
                    (Client.read_exn client ~client:2 "/noise.db"
                       ~offset:(block * 4096) ~bytes:4096);
                  Sched.sleep sched 0.025
                done));
         let plain_stalls, plain_worst, plain_mean =
           stream sched client "/plain.dat"
         in
         let mm_stalls, mm_worst, mm_mean =
           stream sched client "/movie.dat"
         in
         antagonist_on := false;
         Format.printf
           "streaming %d KB in %d KB chunks, %.0f ms budget per chunk, \
            against competing random I/O:@."
           (media_bytes / 1024) (chunk / 1024) (1000. *. frame_budget);
         Format.printf
           "  regular file:    %3d missed deadlines, mean %6.1f ms, worst %6.1f ms@."
           plain_stalls (1000. *. plain_mean) (1000. *. plain_worst);
         Format.printf
           "  multimedia file: %3d missed deadlines, mean %6.1f ms, worst %6.1f ms@."
           mm_stalls (1000. *. mm_mean) (1000. *. mm_worst)));
  Sched.run sched
