module Codec = Capfs_layout.Codec
module Inode = Capfs_layout.Inode
module Data = Capfs_disk.Data

type entry = { name : string; entry_ino : int; kind : Inode.kind }

let serialize entries =
  let w = Codec.Writer.create () in
  Codec.Writer.string w "DIR1";
  Codec.Writer.u32 w (List.length entries);
  List.iter
    (fun e ->
      Codec.Writer.string w e.name;
      Codec.Writer.u64 w e.entry_ino;
      Codec.Writer.u8 w (Inode.kind_to_int e.kind))
    entries;
  Codec.Writer.contents w

let deserialize s =
  let r = Codec.Reader.of_string s in
  let m = Codec.Reader.string r in
  if m <> "DIR1" then raise (Codec.Corrupt "directory magic");
  let n = Codec.Reader.u32 r in
  List.init n (fun _ ->
      let name = Codec.Reader.string r in
      let entry_ino = Codec.Reader.u64 r in
      let kind = Inode.kind_of_int (Codec.Reader.u8 r) in
      { name; entry_ino; kind })

let load file =
  let size = File.size file in
  if size = 0 then Some []
  else begin
    let data = File.read file ~offset:0 ~bytes:size in
    if not (Data.is_real data) then None
    else
      match deserialize (Data.to_string data) with
      | entries -> Some entries
      | exception Codec.Corrupt _ -> None
  end

let store file entries =
  (* Write first, shrink second: a crash-time checkpoint captured
     between the two steps then parses as either the old or the new
     contents — never as a hole, which is what truncating first
     produces (it unmaps the old block while the rewrite is still
     delayed-allocated in the cache). [drop_cached] keeps the
     truncate-first cache lifecycle — the unflushed previous version
     dies in memory and the rewrite starts a fresh aging clock —
     without unmapping anything; the block-padded payload then replaces
     blocks wholesale, with no read-modify-write. The codec never reads
     the dead tail. *)
  let s = serialize entries in
  let bb = File.block_bytes file in
  let padded = ((String.length s + bb - 1) / bb) * bb in
  let b = Bytes.make padded '\000' in
  Bytes.blit_string s 0 b 0 (String.length s);
  File.drop_cached file;
  File.write file ~offset:0 (Data.of_string (Bytes.unsafe_to_string b));
  File.truncate file ~size:(String.length s)
