(* The benchmark harness: regenerates every figure of the paper's
   evaluation (§5.1, Figures 2-5), the §5.2 lesson ablations, the design-
   choice ablations called out in DESIGN.md, and a set of Bechamel
   micro-benchmarks of the framework's hot paths.

   Usage: dune exec bench/main.exe [-- quick|full|figures|ablations|micro]

   The default preset replays 900 simulated seconds per (trace, policy)
   pair; `quick` cuts that to 300 s, `full` raises it to 3600 s. Figure
   CDFs and the Figure-5 table come from one shared set of runs. *)

module Experiment = Capfs_patsy.Experiment
module Replay = Capfs_patsy.Replay
module Report = Capfs_patsy.Report
module Synth = Capfs_trace.Synth
module Stats = Capfs_stats
module Lfs = Capfs_layout.Lfs

let section title = Format.printf "@.=== %s@.@." title

(* {1 Experiment configuration} *)

(* Scaled-down Sprite server (see DESIGN.md §3 and EXPERIMENTS.md): the
   synthetic traces carry roughly 1/5 the client population of the
   original, so the server shrinks with them — 2 of the hot disks on one
   SCSI string and a cache sized to keep the miss rate in the regime the
   paper reports. *)
let experiment_config ?(policy = Experiment.Ups) () =
  {
    (Experiment.default policy) with
    Experiment.ndisks = 2;
    nbuses = 1;
    cache_mb = 24;
    nvram_mb = 4;
  }

let trace_names = [ "sprite-1a"; "sprite-1b"; "sprite-2a"; "sprite-2b"; "sprite-5" ]

let trace_cache : (string, Capfs_trace.Record.t list) Hashtbl.t =
  Hashtbl.create 8

let trace_of ~duration name =
  let key = Printf.sprintf "%s@%.0f" name duration in
  match Hashtbl.find_opt trace_cache key with
  | Some t -> t
  | None ->
    let t =
      Synth.generate ~seed:1996 ~duration (Synth.profile_by_name name)
    in
    Hashtbl.replace trace_cache key t;
    t

(* One run per (trace, policy), shared by Figures 2-5. *)
let outcome_cache : (string * Experiment.policy, Experiment.outcome) Hashtbl.t =
  Hashtbl.create 32

let outcome ~duration trace_name policy =
  match Hashtbl.find_opt outcome_cache (trace_name, policy) with
  | Some o -> o
  | None ->
    let config = experiment_config ~policy () in
    let o = Experiment.run config ~trace:(trace_of ~duration trace_name) in
    Hashtbl.replace outcome_cache (trace_name, policy) o;
    o

(* {1 Figures} *)

let figure_cdf ~duration ~figure trace_name =
  section
    (Printf.sprintf
       "Figure %d: cumulative latency distribution, trace %s (paper: fig. %d)"
       figure trace_name figure);
  List.iter
    (fun policy ->
      let o = outcome ~duration trace_name policy in
      Report.print_cdf ~points:40
        ~title:(Printf.sprintf "%s / %s" trace_name (Experiment.policy_name policy))
        Format.std_formatter o.Experiment.replay;
      Format.printf "@.")
    Experiment.all_policies

let figure5 ~duration =
  section "Figure 5: mean file-system latency, all traces x all policies";
  let rows =
    List.map
      (fun trace_name ->
        ( trace_name,
          List.map
            (fun policy ->
              let o = outcome ~duration trace_name policy in
              ( Experiment.policy_name policy,
                Stats.Sample_set.mean o.Experiment.replay.Replay.latency ))
            Experiment.all_policies ))
      trace_names
  in
  Report.print_mean_table Format.std_formatter ~rows;
  Format.printf "@.@.write traffic (cache blocks flushed to the log):@.";
  let rows =
    List.map
      (fun trace_name ->
        ( trace_name,
          List.map
            (fun policy ->
              let o = outcome ~duration trace_name policy in
              ( Experiment.policy_name policy,
                float_of_int o.Experiment.blocks_flushed ))
            Experiment.all_policies ))
      trace_names
  in
  Report.print_mean_table ~scale:1e-3 ~unit:"k" Format.std_formatter ~rows;
  Format.printf "@.@.cache hit rates and absorbed writes:@.";
  List.iter
    (fun trace_name ->
      Format.printf "%-12s" trace_name;
      List.iter
        (fun policy ->
          let o = outcome ~duration trace_name policy in
          Format.printf " %s=%.1f%%/%dk"
            (Experiment.policy_name policy)
            (100. *. o.Experiment.cache_hit_rate)
            (o.Experiment.writes_absorbed / 1000))
        Experiment.all_policies;
      Format.printf "@.")
    trace_names

(* {1 Ablations} *)

let run_with config ~duration trace_name =
  Experiment.run config ~trace:(trace_of ~duration trace_name)

let mean_of o = Stats.Sample_set.mean o.Experiment.replay.Replay.latency

let ablation_sync_flush ~duration =
  ignore duration;
  section
    "Ablation (5.2 lesson): synchronous vs asynchronous cache flushing";
  (* The paper: "the thread that needed a cache block was also the one
     that initiated a cache flush and waited for the flush to complete.
     As more esoteric flush policies were used, the delay for this
     thread increased" — here the policy is whole-file flushing of
     64-block files (2 ms of disk time per block). The synchronous
     allocator sits through the entire file's write-back; the
     asynchronous flusher releases frames chunk by chunk and the
     allocator continues as soon as one is free. *)
  List.iter
    (fun async ->
      let sched = Capfs_sched.Sched.create ~clock:`Virtual () in
      let lat = Stats.Welford.create () in
      let worst = ref 0. in
      ignore
        (Capfs_sched.Sched.spawn sched (fun () ->
             let writeback batch =
               Capfs_sched.Sched.sleep sched
                 (0.002 *. float_of_int (List.length batch))
             in
             let cache =
               Capfs_cache.Cache.create ~writeback sched
                 { Capfs_cache.Cache.block_bytes = 4096;
                   capacity_blocks = 80; nvram_blocks = 0;
                   trigger = Capfs_cache.Cache.Demand; scope = `Whole_file;
                   async_flush = async; mem_copy_rate = 0. }
             in
             for round = 0 to 19 do
               (* a 64-block file fills most of the cache with dirty data *)
               for blk = 0 to 63 do
                 Capfs_cache.Cache.write cache (round, blk)
                   (Capfs_disk.Data.sim 16)
               done;
               (* now a small client needs frames *)
               for i = 0 to 19 do
                 let t0 = Capfs_sched.Sched.now sched in
                 Capfs_cache.Cache.write cache
                   (1000 + round, i)
                   (Capfs_disk.Data.sim 16);
                 let dt = Capfs_sched.Sched.now sched -. t0 in
                 Stats.Welford.add lat dt;
                 if dt > !worst then worst := dt
               done
             done));
      Capfs_sched.Sched.run sched;
      Format.printf "  %-12s small-client mean=%8.3fms worst=%8.3fms@."
        (if async then "async" else "sync")
        (1000. *. Stats.Welford.mean lat)
        (1000. *. !worst))
    [ false; true ]

let ablation_cleaner ~duration =
  section "Ablation: LFS cleaner policy (greedy vs cost-benefit)";
  (* shrink the disks (~160 MB each) so the log wraps and cleaning runs *)
  let small_disk =
    { Capfs_disk.Disk_model.hp97560 with
      Capfs_disk.Disk_model.model_name = "hp97560/8";
      geometry =
        Capfs_disk.Geometry.v ~cylinders:245 ~heads:19 ~sectors_per_track:72
          ~sector_bytes:512 ~track_skew:8 ~cylinder_skew:18 () }
  in
  List.iter
    (fun (name, cleaner) ->
      let config =
        { (experiment_config ()) with
          Experiment.cleaner; cache_mb = 8; disk_model = small_disk }
      in
      let o = run_with config ~duration "sprite-1b" in
      let cleanings =
        List.filter (fun (k, _) -> Filename.check_suffix k "cleanings")
          o.Experiment.layout_stats
        |> List.fold_left (fun acc (_, v) -> acc +. v) 0.
      in
      Format.printf "  %-14s mean=%8.3fms cleanings=%.0f@." name
        (1000. *. mean_of o) cleanings)
    [ ("greedy", Lfs.Greedy); ("cost-benefit", Lfs.Cost_benefit) ]

let ablation_iosched ~duration =
  section "Ablation: disk-queue scheduling policy";
  List.iter
    (fun iosched ->
      let config = { (experiment_config ()) with Experiment.iosched } in
      let o = run_with config ~duration "sprite-5" in
      Format.printf "  %-10s mean=%8.3fms p99=%8.3fms@." iosched
        (1000. *. mean_of o)
        (1000.
         *. Stats.Sample_set.quantile o.Experiment.replay.Replay.latency 0.99))
    [ "fcfs"; "sstf"; "clook"; "scan-edf" ]

let ablation_replacement ~duration =
  section "Ablation: cache replacement policy";
  List.iter
    (fun replacement ->
      let config =
        { (experiment_config ()) with Experiment.replacement; cache_mb = 8 }
      in
      let o = run_with config ~duration "sprite-1a" in
      Format.printf "  %-8s mean=%8.3fms hit=%5.1f%%@." replacement
        (1000. *. mean_of o)
        (100. *. o.Experiment.cache_hit_rate))
    [ "lru"; "random"; "lfu"; "slru"; "lru-2" ]

let ablation_disk_features ~duration =
  section "Ablation: disk model features (read-ahead, immediate report)";
  let base = Capfs_disk.Disk_model.hp97560 in
  List.iter
    (fun (name, cache) ->
      let config =
        { (experiment_config ()) with
          Experiment.disk_model = { base with Capfs_disk.Disk_model.cache } }
      in
      let o = run_with config ~duration "sprite-1a" in
      Format.printf "  %-28s mean=%8.3fms@." name (1000. *. mean_of o))
    [
      ("full HP97560 cache", base.Capfs_disk.Disk_model.cache);
      ( "no read-ahead",
        { base.Capfs_disk.Disk_model.cache with
          Capfs_disk.Disk_model.read_ahead_bytes = 0 } );
      ( "no immediate report",
        { base.Capfs_disk.Disk_model.cache with
          Capfs_disk.Disk_model.immediate_report = false } );
      ( "no disk cache at all",
        { Capfs_disk.Disk_model.cache_bytes = 0; read_ahead_bytes = 0;
          immediate_report = false } );
    ]

let ablation_cache_size ~duration =
  section "Ablation: server cache size sweep (UPS policy)";
  List.iter
    (fun cache_mb ->
      let config = { (experiment_config ()) with Experiment.cache_mb } in
      let o = run_with config ~duration "sprite-1a" in
      Format.printf "  %3d MB  mean=%8.3fms hit=%5.1f%%@." cache_mb
        (1000. *. mean_of o)
        (100. *. o.Experiment.cache_hit_rate))
    [ 4; 8; 16; 32; 64 ]

let ablation_nvram_size ~duration =
  section "Ablation: NVRAM size sweep (whole-file drains, sprite-1b)";
  List.iter
    (fun nvram_mb ->
      let config =
        { (experiment_config ~policy:Experiment.Nvram_whole ()) with
          Experiment.nvram_mb }
      in
      let o = run_with config ~duration "sprite-1b" in
      Format.printf "  %3d MB  mean=%8.3fms flushed=%dk@." nvram_mb
        (1000. *. mean_of o)
        (o.Experiment.blocks_flushed / 1000))
    [ 1; 2; 4; 8; 16 ]

let ablation_client_caching () =
  section
    "Extension (3): client caching with Sprite consistency — network \
     traffic and latency";
  let run ~cache_blocks =
    let s = Capfs_sched.Sched.create ~clock:`Virtual () in
    let out = ref (0, 0.) in
    ignore
      (Capfs_sched.Sched.spawn s (fun () ->
           let drv =
             Capfs_disk.Driver.create s
               (Capfs_disk.Driver.mem_transport ~sector_bytes:512
                  ~total_sectors:65536 s ())
           in
           let layout =
             Capfs_layout.Lfs.format_and_mount s drv ~block_bytes:4096
           in
           let fs =
             Capfs.Fsys.create
               ~cache_config:
                 (Capfs_cache.Cache.default_config ~capacity_blocks:512)
               ~layout s
           in
           let net = Capfs_ccache.Netlink.ethernet_10 s in
           let server =
             Capfs_ccache.Cc_server.create (Capfs.Client.create fs) net
           in
           let pub =
             Capfs_ccache.Cc_client.attach server ~client_id:0
               ~cache_blocks:64
           in
           for f = 0 to 7 do
             let p = Printf.sprintf "/hot%d" f in
             Capfs_ccache.Cc_client.open_ pub p Capfs_ccache.Cc_server.Write;
             Capfs_ccache.Cc_client.write pub p ~offset:0
               (Capfs_disk.Data.sim 65536);
             Capfs_ccache.Cc_client.close_ pub p
           done;
           let base = Capfs_ccache.Netlink.bytes_carried net in
           let t0 = Capfs_sched.Sched.now s in
           let remaining = ref 4 in
           let all_done = Capfs_sched.Sched.new_event s in
           for w = 1 to 4 do
             ignore
               (Capfs_sched.Sched.spawn s (fun () ->
                    let c =
                      Capfs_ccache.Cc_client.attach server ~client_id:w
                        ~cache_blocks
                    in
                    for _ = 1 to 5 do
                      for f = 0 to 7 do
                        let p = Printf.sprintf "/hot%d" f in
                        Capfs_ccache.Cc_client.open_ c p
                          Capfs_ccache.Cc_server.Read;
                        ignore
                          (Capfs_ccache.Cc_client.read c p ~offset:0
                             ~bytes:65536);
                        Capfs_ccache.Cc_client.close_ c p
                      done
                    done;
                    decr remaining;
                    if !remaining = 0 then
                      Capfs_sched.Sched.broadcast s all_done))
           done;
           Capfs_sched.Sched.await s all_done;
           out :=
             ( Capfs_ccache.Netlink.bytes_carried net - base,
               Capfs_sched.Sched.now s -. t0 )));
    Capfs_sched.Sched.run s;
    !out
  in
  List.iter
    (fun (name, cache_blocks) ->
      let bytes, time = run ~cache_blocks in
      Format.printf "  %-18s %7.1f MB on the wire, %6.2f s@." name
        (float_of_int bytes /. 1048576.)
        time)
    [ ("no client cache", 1); ("with client cache", 256) ]

(* {1 Bechamel micro-benchmarks}

   The paper found its simulator bottleneck in cache-list maintenance
   (§5.2); these keep the framework's hot paths honest. *)

let micro () =
  section "Microbenchmarks (Bechamel; monotonic clock)";
  let open Bechamel in
  let sched_bench =
    Test.make ~name:"sched: spawn+dispatch fibre"
      (Staged.stage (fun () ->
           let s = Capfs_sched.Sched.create ~clock:`Virtual () in
           ignore (Capfs_sched.Sched.spawn s (fun () -> ()));
           Capfs_sched.Sched.run s))
  in
  let cache_hit_bench =
    let s = Capfs_sched.Sched.create ~clock:`Virtual () in
    let cache = ref None in
    ignore
      (Capfs_sched.Sched.spawn s (fun () ->
           let c =
             Capfs_cache.Cache.create
               ~writeback:(fun _ -> ())
               s
               { (Capfs_cache.Cache.default_config ~capacity_blocks:1024) with
                 Capfs_cache.Cache.trigger = Capfs_cache.Cache.Demand }
           in
           for i = 0 to 511 do
             Capfs_cache.Cache.write c (1, i) (Capfs_disk.Data.sim 16)
           done;
           cache := Some c));
    Capfs_sched.Sched.run s;
    let c = Option.get !cache in
    let i = ref 0 in
    Test.make ~name:"cache: hit lookup + LRU touch"
      (Staged.stage (fun () ->
           let s2 = Capfs_sched.Sched.create ~clock:`Virtual () in
           ignore
             (Capfs_sched.Sched.spawn s2 (fun () ->
                  incr i;
                  ignore
                    (Capfs_cache.Cache.read c (1, !i mod 512)
                       ~fill:(fun () -> Capfs_disk.Data.sim 16))));
           Capfs_sched.Sched.run s2))
  in
  let lru_bench =
    let p = Capfs_cache.Replacement.lru () in
    let blocks =
      Array.init 1024 (fun i ->
          Capfs_cache.Block.make ~key:(1, i) ~data:(Capfs_disk.Data.sim 16)
            ~now:0.)
    in
    Array.iter (Capfs_cache.Replacement.insert p) blocks;
    let i = ref 0 in
    Test.make ~name:"replacement: lru access (move-to-front)"
      (Staged.stage (fun () ->
           incr i;
           Capfs_cache.Replacement.access p blocks.(!i mod 1024)))
  in
  let heap_bench =
    Test.make ~name:"heap: push+pop 64 timers"
      (Staged.stage (fun () ->
           let h = Capfs_sched.Heap.create ~cmp:compare in
           for i = 0 to 63 do
             Capfs_sched.Heap.push h ((i * 37) mod 64)
           done;
           while Capfs_sched.Heap.pop h <> None do
             ()
           done))
  in
  let geometry_bench =
    let g = Capfs_disk.Disk_model.hp97560.Capfs_disk.Disk_model.geometry in
    let i = ref 0 in
    Test.make ~name:"geometry: lba->chs with skew"
      (Staged.stage (fun () ->
           incr i;
           ignore (Capfs_disk.Geometry.pos_of_lba g (!i * 7919 mod 2000000))))
  in
  let seek_bench =
    let i = ref 0 in
    Test.make ~name:"seek: hp97560 curve"
      (Staged.stage (fun () ->
           incr i;
           ignore (Capfs_disk.Seek.time Capfs_disk.Seek.hp97560
                     ~distance:(!i mod 1961 + 1))))
  in
  let inode_bench =
    let inode =
      Capfs_layout.Inode.make ~ino:42 ~kind:Capfs_layout.Inode.Regular ~now:0.
    in
    for i = 0 to 31 do
      Capfs_layout.Inode.set_addr inode i (i * 100)
    done;
    Test.make ~name:"codec: inode serialize+parse"
      (Staged.stage (fun () ->
           ignore
             (Capfs_layout.Inode.deserialize
                (Capfs_layout.Inode.serialize inode ~indirect:[]))))
  in
  let prng_bench =
    let p = Stats.Prng.create ~seed:1 in
    Test.make ~name:"prng: splitmix64 draw"
      (Staged.stage (fun () -> ignore (Stats.Prng.float p)))
  in
  let tests =
    [ sched_bench; cache_hit_bench; lru_bench; heap_bench; geometry_bench;
      seek_bench; inode_bench; prng_bench ]
  in
  let clock = Toolkit.Instance.monotonic_clock in
  let benchmark test =
    let quota = Time.second 0.25 in
    Benchmark.all (Benchmark.cfg ~quota ~kde:None ()) [ clock ] test
  in
  let ols results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      clock results
  in
  List.iter
    (fun test ->
      let results = ols (benchmark test) in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Format.printf "  %-40s %12.1f ns/run@." name est
          | Some _ | None -> Format.printf "  %-40s (no estimate)@." name)
        results)
    tests

(* {1 Main} *)

let () =
  let arg = if Array.length Sys.argv > 1 then Sys.argv.(1) else "default" in
  let duration, do_figures, do_ablations, do_micro =
    match arg with
    | "quick" -> (300., true, true, true)
    | "full" -> (3600., true, true, true)
    | "figures" -> (900., true, false, false)
    | "ablations" -> (900., false, true, false)
    | "micro" -> (0., false, false, true)
    | _ -> (900., true, true, true)
  in
  Format.printf
    "cut-and-paste file-systems benchmark harness (preset: %s, %.0f \
     simulated seconds per run)@."
    arg duration;
  if do_figures then begin
    figure_cdf ~duration ~figure:2 "sprite-1a";
    figure_cdf ~duration ~figure:3 "sprite-1b";
    figure_cdf ~duration ~figure:4 "sprite-5";
    figure5 ~duration
  end;
  if do_ablations then begin
    ablation_sync_flush ~duration;
    ablation_cleaner ~duration;
    ablation_iosched ~duration;
    ablation_replacement ~duration;
    ablation_disk_features ~duration;
    ablation_cache_size ~duration;
    ablation_nvram_size ~duration;
    ablation_client_caching ()
  end;
  if do_micro then micro ();
  Format.printf "@.done.@."
