(* The leased client cache over the wire: local hits with zero wire
   traffic, push-driven invalidation (including one racing an in-flight
   read), lease expiry forcing a write-back + renewal, read-your-writes
   across two clients, incremental frame reassembly, and virtual-vs-real
   parity — the same client state machine over Server.drive and over an
   actual Unix socket served by Server.serve. *)

module Pfs = Capfs_pfs.Pfs
module Server = Capfs_pfs.Server
module Wire = Capfs_pfs.Wire
module CC = Capfs_pfs.Cached_client
module Errno = Capfs_core.Errno
module Frame = Capfs_ccache.Netlink.Frame

let bb = Pfs.block_bytes

let ok msg = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" msg (Errno.to_string e)

let with_temp_base shards f =
  let path = Filename.temp_file "capfs_cc" ".img" in
  let extra =
    List.init shards (fun i -> Printf.sprintf "%s.shard%d" path i)
    @ [ path ^ ".sock" ]
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) (path :: extra))
    (fun () -> f path)

let with_virtual_server ?(shards = 2) ?lease_s path f =
  let cfg =
    Pfs.Config.make ~image:path ~size_mb:8 ~clock:`Virtual ~shards ~workers:0
      ?lease_s ()
  in
  match Server.create cfg with
  | Error e -> Alcotest.failf "Server.create: %s" (Errno.to_string e)
  | Ok t -> Fun.protect ~finally:(fun () -> Server.shutdown t) (fun () -> f t)

let block c = String.make bb c

(* Local hits are free: the second read of a granted file moves no
   frames at all. *)
let test_hits_zero_wire () =
  with_temp_base 2 (fun path ->
      with_virtual_server path (fun srv ->
          let a = CC.create ~client:1 (CC.virtual_transport srv ~client:1) in
          ok "mkdir" (CC.mkdir a "/d");
          ok "open wo" (CC.open_ a "/d/f" Capfs.Client.WO);
          let body = block 'a' ^ block 'b' ^ block 'c' in
          ok "write" (CC.write a "/d/f" ~offset:0 ~data:body);
          ok "close" (CC.close_ a "/d/f");
          ok "open ro" (CC.open_ a "/d/f" Capfs.Client.RO);
          let r1 = ok "read 1" (CC.read a "/d/f" ~offset:0 ~count:(3 * bb)) in
          Alcotest.(check string) "first read" body r1;
          let msgs_before = CC.msgs_sent a in
          let r2 = ok "read 2" (CC.read a "/d/f" ~offset:0 ~count:(3 * bb)) in
          Alcotest.(check string) "second read" body r2;
          Alcotest.(check int)
            "zero wire traffic on the hit path" msgs_before (CC.msgs_sent a);
          Alcotest.(check bool) "hits counted" true (CC.local_hits a >= 3);
          (* an unaligned read across a block boundary, still local *)
          let r3 =
            ok "read 3" (CC.read a "/d/f" ~offset:(bb - 10) ~count:20)
          in
          Alcotest.(check string)
            "boundary read" (String.make 10 'a' ^ String.make 10 'b') r3;
          Alcotest.(check int)
            "still zero wire traffic" msgs_before (CC.msgs_sent a);
          CC.disconnect a))

(* The three Read frames of a cold multi-block read leave in one
   transport send (one Batch container on a socket). *)
let test_batched_fetch () =
  with_temp_base 2 (fun path ->
      with_virtual_server path (fun srv ->
          let a = CC.create ~client:1 (CC.virtual_transport srv ~client:1) in
          ok "mkdir" (CC.mkdir a "/d");
          ok "open wo" (CC.open_ a "/d/f" Capfs.Client.WO);
          let body = block 'x' ^ block 'y' ^ block 'z' in
          ok "write" (CC.write a "/d/f" ~offset:0 ~data:body);
          ok "close" (CC.close_ a "/d/f");
          CC.disconnect a;
          let b = CC.create ~client:2 (CC.virtual_transport srv ~client:2) in
          ok "open ro" (CC.open_ b "/d/f" Capfs.Client.RO);
          let sends = CC.wire_sends b in
          let msgs = CC.msgs_sent b in
          let r = ok "read" (CC.read b "/d/f" ~offset:0 ~count:(3 * bb)) in
          Alcotest.(check string) "data" body r;
          Alcotest.(check int) "one send" (sends + 1) (CC.wire_sends b);
          Alcotest.(check int) "three messages" (msgs + 3) (CC.msgs_sent b);
          CC.disconnect b))

(* Write-open by one client invalidates the other's cache; the next
   read goes back to the server and sees the new bytes. *)
let test_read_your_writes_virtual () =
  with_temp_base 2 (fun path ->
      with_virtual_server path (fun srv ->
          let a = CC.create ~client:1 (CC.virtual_transport srv ~client:1) in
          let b = CC.create ~client:2 (CC.virtual_transport srv ~client:2) in
          ok "mkdir" (CC.mkdir a "/d");
          ok "a open wo" (CC.open_ a "/d/f" Capfs.Client.WO);
          ok "a write v1" (CC.write a "/d/f" ~offset:0 ~data:(block 'a'));
          ok "a close" (CC.close_ a "/d/f");
          ok "b open ro" (CC.open_ b "/d/f" Capfs.Client.RO);
          let r1 = ok "b read v1" (CC.read b "/d/f" ~offset:0 ~count:bb) in
          Alcotest.(check string) "b sees v1" (block 'a') r1;
          (* warm: b now serves this locally *)
          ignore (ok "b reread" (CC.read b "/d/f" ~offset:0 ~count:bb));
          Alcotest.(check bool) "b cached" true (CC.cached_blocks b > 0);
          (* a writes again while b holds the file: the write-open pushes
             an Invalidate at b *)
          ok "a reopen wo" (CC.open_ a "/d/f" Capfs.Client.WO);
          ok "a write v2" (CC.write a "/d/f" ~offset:0 ~data:(block 'b'));
          ok "a close 2" (CC.close_ a "/d/f");
          let r2 = ok "b read v2" (CC.read b "/d/f" ~offset:0 ~count:bb) in
          Alcotest.(check string) "b sees v2" (block 'b') r2;
          Alcotest.(check bool) "b invalidated" true (CC.invalidations b >= 1);
          CC.disconnect a;
          CC.disconnect b))

(* An invalidation that lands between a fetch's send and its reply: the
   caller is served (the read was issued first), the cache keeps
   nothing, and the handle goes write-through. *)
let test_invalidation_races_inflight_read () =
  with_temp_base 2 (fun path ->
      with_virtual_server path (fun srv ->
          let a = CC.create ~client:1 (CC.virtual_transport srv ~client:1) in
          ok "mkdir" (CC.mkdir a "/d");
          ok "a open wo" (CC.open_ a "/d/f" Capfs.Client.WO);
          ok "a write" (CC.write a "/d/f" ~offset:0 ~data:(block 'x'));
          ok "a close" (CC.close_ a "/d/f");
          CC.disconnect a;
          (* wrap the transport: after the next send, slip an Invalidate
             into the receive stream ahead of the replies *)
          let base = CC.virtual_transport srv ~client:2 in
          let armed = ref false in
          let inject : Frame.t Queue.t = Queue.create () in
          let inv_opcode, inv_payload =
            Wire.encode_push (Wire.Invalidate { path = "/d/f"; version = 99 })
          in
          let tr =
            {
              base with
              CC.t_send =
                (fun fs ->
                  let r = base.CC.t_send fs in
                  if !armed then begin
                    armed := false;
                    Queue.push
                      {
                        Frame.req_id = Wire.push_req_id;
                        opcode = inv_opcode;
                        payload = inv_payload;
                      }
                      inject
                  end;
                  r);
              t_recv =
                (fun ~block ->
                  match Queue.take_opt inject with
                  | Some f -> Ok (Some f)
                  | None -> base.CC.t_recv ~block);
            }
          in
          let b = CC.create ~client:2 tr in
          ok "b open ro" (CC.open_ b "/d/f" Capfs.Client.RO);
          armed := true;
          let r = ok "b read" (CC.read b "/d/f" ~offset:0 ~count:bb) in
          Alcotest.(check string) "served despite the race" (block 'x') r;
          Alcotest.(check int) "nothing cached" 0 (CC.cached_blocks b);
          Alcotest.(check int) "invalidation seen" 1 (CC.invalidations b);
          (* the handle is write-through now: another read goes remote *)
          let misses = CC.remote_misses b in
          ignore (ok "b read 2" (CC.read b "/d/f" ~offset:0 ~count:bb));
          Alcotest.(check bool)
            "second read went remote" true
            (CC.remote_misses b > misses);
          CC.disconnect b))

(* A lapsed lease stops local service: the next operation flushes the
   dirty blocks home (Writeback, close=false) and renews the grant. *)
let test_lease_expiry_flushes () =
  with_temp_base 2 (fun path ->
      with_virtual_server ~lease_s:5.0 path (fun srv ->
          let now = ref 0.0 in
          let a =
            CC.create ~client:1
              (CC.virtual_transport ~now:(fun () -> !now) srv ~client:1)
          in
          ok "mkdir" (CC.mkdir a "/d");
          ok "open wo" (CC.open_ a "/d/f" Capfs.Client.WO);
          ok "write 1" (CC.write a "/d/f" ~offset:0 ~data:(block 'd'));
          Alcotest.(check int) "delayed write held" 1 (CC.dirty_blocks a);
          (* the lease lapses while the block is dirty *)
          now := 10.0;
          ok "write 2" (CC.write a "/d/f" ~offset:bb ~data:(block 'e'));
          (* block 1 went home in the renewal's write-back; block 2 is
             the only delayed write left *)
          Alcotest.(check int) "flushed at expiry" 1 (CC.dirty_blocks a);
          (* a second client (plain vocabulary) sees block 1 on the
             volume even though a never closed *)
          (match
             Server.call srv
               (Wire.Open { client = 9; path = "/d/f"; mode = Capfs.Client.RO })
           with
          | Wire.Ok_unit -> ()
          | r -> Alcotest.failf "probe open: %a" Wire.pp_reply r);
          (match
             Server.call srv
               (Wire.Read { client = 9; path = "/d/f"; offset = 0; count = bb })
           with
          | Wire.Ok_data d ->
            Alcotest.(check string)
              "flush visible" (block 'd')
              (Capfs_disk.Data.to_string d)
          | r -> Alcotest.failf "probe read: %a" Wire.pp_reply r);
          ignore
            (Server.call srv (Wire.Close { client = 9; path = "/d/f" }));
          ok "close" (CC.close_ a "/d/f");
          CC.disconnect a))

(* Once the sharing writer departs, a write-through reader recovers
   cacheability at its next lease renewal. *)
let test_caching_resumes () =
  with_temp_base 2 (fun path ->
      with_virtual_server ~lease_s:5.0 path (fun srv ->
          let now = ref 0.0 in
          let a = CC.create ~client:1 (CC.virtual_transport srv ~client:1) in
          let b =
            CC.create ~client:2
              (CC.virtual_transport ~now:(fun () -> !now) srv ~client:2)
          in
          ok "mkdir" (CC.mkdir a "/d");
          ok "a open wo" (CC.open_ a "/d/f" Capfs.Client.WO);
          ok "a write" (CC.write a "/d/f" ~offset:0 ~data:(block 'a'));
          ok "a close" (CC.close_ a "/d/f");
          ok "b open ro" (CC.open_ b "/d/f" Capfs.Client.RO);
          ignore (ok "b warm" (CC.read b "/d/f" ~offset:0 ~count:bb));
          (* a writes while b holds: b is pushed write-through *)
          ok "a reopen wo" (CC.open_ a "/d/f" Capfs.Client.WO);
          ok "a write 2" (CC.write a "/d/f" ~offset:0 ~data:(block 'b'));
          ok "a close 2" (CC.close_ a "/d/f");
          ignore (ok "b read through" (CC.read b "/d/f" ~offset:0 ~count:bb));
          Alcotest.(check int) "b write-through" 0 (CC.cached_blocks b);
          (* the writer is gone; b's lease lapses; renewal re-grants *)
          now := 10.0;
          let r = ok "b read renew" (CC.read b "/d/f" ~offset:0 ~count:bb) in
          Alcotest.(check string) "current data" (block 'b') r;
          Alcotest.(check bool) "b caches again" true (CC.cached_blocks b > 0);
          let msgs = CC.msgs_sent b in
          ignore (ok "b read local" (CC.read b "/d/f" ~offset:0 ~count:bb));
          Alcotest.(check int) "local again" msgs (CC.msgs_sent b);
          CC.disconnect a;
          CC.disconnect b))

(* Frame.Splitter: frames reassemble whatever the chunking, and a
   desynchronized stream fails sticky. *)
let test_splitter () =
  let open Capfs_ccache.Netlink in
  let f1 = { Frame.req_id = 7; opcode = 3; payload = "hello" } in
  (* the push channel's reserved id sits in the u32 high range: it must
     survive the round trip without sign extension *)
  let f2 =
    { Frame.req_id = Wire.push_req_id; opcode = 4;
      payload = String.make 300 'q' }
  in
  let encode (f : Frame.t) =
    let plen = String.length f.payload in
    let b = Bytes.create (Frame.header_bytes + plen) in
    Frame.blit_header b 0 ~req_id:f.req_id ~opcode:f.opcode ~payload_len:plen;
    Bytes.blit_string f.payload 0 b Frame.header_bytes plen;
    b
  in
  let stream = Bytes.concat Bytes.empty [ encode f1; encode f2 ] in
  (* byte-by-byte *)
  let sp = Frame.Splitter.create () in
  let got = ref [] in
  Bytes.iteri
    (fun i _ ->
      Frame.Splitter.feed sp stream i 1;
      match Frame.Splitter.pop sp with
      | Ok (Some f) -> got := f :: !got
      | Ok None -> ()
      | Error e -> Alcotest.failf "pop: %s" (Errno.to_string e))
    stream;
  (match List.rev !got with
  | [ g1; g2 ] ->
    Alcotest.(check bool) "frame 1" true (g1 = f1);
    Alcotest.(check bool) "frame 2" true (g2 = f2)
  | l -> Alcotest.failf "expected 2 frames, got %d" (List.length l));
  (* both frames in one feed *)
  let sp = Frame.Splitter.create () in
  Frame.Splitter.feed sp stream 0 (Bytes.length stream);
  (match Frame.Splitter.pop sp with
  | Ok (Some g) -> Alcotest.(check bool) "bulk frame 1" true (g = f1)
  | _ -> Alcotest.fail "bulk: first frame missing");
  (match Frame.Splitter.pop sp with
  | Ok (Some g) -> Alcotest.(check bool) "bulk frame 2" true (g = f2)
  | _ -> Alcotest.fail "bulk: second frame missing");
  (match Frame.Splitter.pop sp with
  | Ok None -> ()
  | _ -> Alcotest.fail "bulk: stream should be drained");
  (* bad magic is sticky *)
  let sp = Frame.Splitter.create () in
  Frame.Splitter.feed sp (Bytes.make 16 '\xff') 0 16;
  (match Frame.Splitter.pop sp with
  | Error Errno.EINVAL -> ()
  | _ -> Alcotest.fail "bad magic must be EINVAL");
  Frame.Splitter.feed sp (encode f1) 0 Frame.header_bytes;
  match Frame.Splitter.pop sp with
  | Error Errno.EINVAL -> ()
  | _ -> Alcotest.fail "a desynchronized splitter must stay failed"

(* The same client code over a real socket: Server.serve in a second
   domain, Cached_client on a Unix-domain socket. Parity check: the
   hit/miss counters match the virtual-clock run of the same workload. *)
let test_real_socket_parity () =
  with_temp_base 1 (fun path ->
      (* the reference run, virtual clock *)
      let workload cc =
        ok "mkdir" (CC.mkdir cc "/d");
        ok "open wo" (CC.open_ cc "/d/f" Capfs.Client.WO);
        let body = block '1' ^ block '2' in
        ok "write" (CC.write cc "/d/f" ~offset:0 ~data:body);
        ok "close" (CC.close_ cc "/d/f");
        ok "open ro" (CC.open_ cc "/d/f" Capfs.Client.RO);
        let r1 = ok "read 1" (CC.read cc "/d/f" ~offset:0 ~count:(2 * bb)) in
        let r2 = ok "read 2" (CC.read cc "/d/f" ~offset:0 ~count:(2 * bb)) in
        Alcotest.(check string) "read 1" body r1;
        Alcotest.(check string) "read 2" body r2;
        ok "close ro" (CC.close_ cc "/d/f");
        (CC.local_hits cc, CC.remote_misses cc, CC.msgs_sent cc)
      in
      let virtual_counts =
        with_virtual_server ~shards:1 path (fun srv ->
            let cc = CC.create ~client:1 (CC.virtual_transport srv ~client:1) in
            let r = workload cc in
            CC.disconnect cc;
            r)
      in
      List.iter (fun i -> Sys.remove (Printf.sprintf "%s.shard%d" path i))
        [ 0 ] |> ignore;
      (* the real run: serve on a Unix socket from another domain *)
      let cfg =
        Pfs.Config.make ~image:path ~size_mb:8 ~clock:`Real ~shards:1
          ~workers:0 ()
      in
      let srv =
        match Server.create cfg with
        | Ok s -> s
        | Error e -> Alcotest.failf "Server.create: %s" (Errno.to_string e)
      in
      let sock = path ^ ".sock" in
      (try Unix.unlink sock with Unix.Unix_error _ -> ());
      let lfd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind lfd (Unix.ADDR_UNIX sock);
      Unix.listen lfd 8;
      let server_domain = Domain.spawn (fun () -> Server.serve srv lfd) in
      let connect () =
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX sock);
        fd
      in
      let fd = connect () in
      let cc = CC.create ~client:1 (CC.socket_transport fd) in
      let real_counts = workload cc in
      CC.disconnect cc;
      Alcotest.(check (triple int int int))
        "virtual and real runs count identically" virtual_counts real_counts;
      (* stop the server over the wire; its clean exit is the ack *)
      let sfd = connect () in
      let opcode, body = Wire.encode_request Wire.Shutdown in
      (match Frame.write sfd { Frame.req_id = 0; opcode; payload = body } with
      | Ok () -> ()
      | Error e -> Alcotest.failf "shutdown send: %s" (Errno.to_string e));
      Unix.close sfd;
      Domain.join server_domain;
      Unix.close lfd)

let suite =
  [
    Alcotest.test_case "local hits move no frames" `Quick test_hits_zero_wire;
    Alcotest.test_case "cold multi-block read batches" `Quick
      test_batched_fetch;
    Alcotest.test_case "read-your-writes through invalidation" `Quick
      test_read_your_writes_virtual;
    Alcotest.test_case "invalidation races in-flight read" `Quick
      test_invalidation_races_inflight_read;
    Alcotest.test_case "lease expiry flushes and renews" `Quick
      test_lease_expiry_flushes;
    Alcotest.test_case "caching resumes after writer departs" `Quick
      test_caching_resumes;
    Alcotest.test_case "frame splitter" `Quick test_splitter;
    Alcotest.test_case "virtual vs real socket parity" `Quick
      test_real_socket_parity;
  ]
