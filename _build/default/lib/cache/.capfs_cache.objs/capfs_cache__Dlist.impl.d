lib/cache/dlist.ml: List Option
