(** A metadata-journaling, update-in-place storage layout — the third
    concrete layout the paper names ("FFS, EFS, or journalling
    file-systems") behind the same abstract interface.

    Data blocks live in an update-in-place region allocated first-fit;
    metadata (inodes with their full block maps, deletions, the
    allocation frontier) is made durable by appending {e commit records}
    to a dedicated journal region on every [sync]. When the journal
    fills, it is compacted: a checkpoint record holding the complete
    metadata state restarts it. [mount] replays the journal — the last
    checkpoint plus every later commit — and rebuilds the allocation
    bitmap by walking the live inodes, so a crash between commits loses
    at most the uncommitted metadata, never the journal's.

    Commit records are crc-guarded; a torn tail record is ignored, as in
    real journaling file systems. *)

type config = {
  journal_blocks : int;  (** size of the journal region *)
}

val default_config : config

(** [format sched driver ~block_bytes] writes a fresh image: superblock
    and an empty journal with an initial checkpoint record. *)
val format :
  ?config:config ->
  Capfs_sched.Sched.t ->
  Capfs_disk.Driver.t ->
  block_bytes:int ->
  unit

(** [mount sched driver] replays the journal of a {!format}ted image —
    last checkpoint plus every later intact commit — and returns the
    layout interface. Requires a transport with a backing store. *)
val mount :
  ?registry:Capfs_stats.Registry.t ->
  ?name:string ->
  Capfs_sched.Sched.t ->
  Capfs_disk.Driver.t ->
  Layout.t

(** Format + use without re-reading metadata (works on simulated disks
    with no backing bytes). *)
val format_and_mount :
  ?registry:Capfs_stats.Registry.t ->
  ?name:string ->
  ?config:config ->
  Capfs_sched.Sched.t ->
  Capfs_disk.Driver.t ->
  block_bytes:int ->
  Layout.t
