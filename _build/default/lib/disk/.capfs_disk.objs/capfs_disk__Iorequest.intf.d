lib/disk/iorequest.mli: Capfs_sched Data Format
