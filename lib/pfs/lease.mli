(** Per-path grant state for the leased client cache.

    {!Capfs_ccache.Cc_server}'s version/holder machine re-cut for the
    socket protocol: a write-open bumps the file version and names the
    other holders to push {!Wire.push.Invalidate} frames to; concurrent
    write sharing (a writer plus any other holder) turns the file
    uncacheable until every holder closes, exactly Sprite's rule. The
    server never blocks on a client — there is no synchronous recall;
    a reader arriving on a delayed-write file instead invalidates the
    writer, which flushes and goes write-through.

    Lease durations are enforced by the {e client} (the grant carries
    the duration; local hits stop when it lapses), so holder state here
    is bounded only by connection lifetime: {!drop_client} runs when a
    connection dies. Thread-safe — shard fibres on different domains
    consult one table. *)

type t

(** What one open-grant decided. *)
type grant_info = {
  gi_version : int;
  gi_cacheable : bool;
  gi_renewal : bool;
      (** the client already held the path — the volume-level open must
          not run again *)
  gi_invalidate : int list;
      (** client ids owed an [Invalidate {path; version}] push *)
}

(** Raises [Invalid_argument] unless [lease_s > 0]. *)
val create : lease_s:float -> unit -> t

val lease_s : t -> float

(** [held t ~client ~path] is [Some write] when the client currently
    holds the path (write-ness of the grant), [None] otherwise. *)
val held : t -> client:int -> path:string -> bool option

(** Record an open (or renewal) and decide the grant. *)
val open_grant :
  t -> client:int -> path:string -> write:bool -> grant_info

(** Release one client's hold. The last {e writer}'s close re-enables
    caching (its dirty blocks arrived in the same Writeback frame, so
    the server copy is current); surviving readers learn at their next
    lease renewal. *)
val close_ : t -> client:int -> path:string -> unit

(** Current version of a path (1 if never granted). *)
val version : t -> path:string -> int

(** [note_write t ~client ~path] — a mutation arrived outside the grant
    vocabulary (an old-style [Write], a [Delete]): bump the version and
    name every holder except the mutator for invalidation. [None] when
    the path was never granted (no cache can hold stale data). *)
val note_write :
  t -> client:int -> path:string -> (int * int list) option

(** Drop every hold of a disconnected client; returns the paths it
    held. *)
val drop_client : t -> client:int -> string list
