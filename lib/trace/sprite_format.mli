(** Sprite-style trace text format.

    One record per line:
    {v <time|?> c<client> <op> <path> [args...] v}
    e.g. {v 12.000731 c3 write /usr/alice/paper.tex 8192 4096 v}
    ["?"] as the time field marks an unrecorded timestamp. Lines starting
    with [#] and blank lines are ignored, so trace files can carry
    headers describing their provenance.

    This module parses/prints the format the {!Record} pretty-printer
    emits; drop-in readers for the original binary Sprite traces would
    slot in beside it. *)

exception Parse_error of int * string
(** line number, message *)

val parse_line : line:int -> string -> Record.t option
(** [None] for comments/blank lines. Raises {!Parse_error}. *)

val print_record : Buffer.t -> Record.t -> unit

(** Parse a whole trace body. The returned array is fresh and, like
    every record array in the tree, immutable by convention: consumers
    (replay, diffval, the fleet) share it without copying — including
    across domains — and never write to it. *)
val of_string : string -> Record.t array

val to_string : Record.t array -> string

(** File I/O convenience wrappers. [load] materializes the whole trace;
    for O(1)-memory replay of large traces use
    {!Source.sprite_file}, which streams the same format line by
    line. *)
val load : string -> Record.t array

val save : string -> Record.t array -> unit
