lib/disk/geometry.mli:
