(** Trace replay: drive the abstract client interface from a trace.

    "Clients are modeled by separate threads of control… The threads read
    a part of the trace file, group operations that obviously belong
    together (such as an open, read, read, write, …, close sequence), and
    call the abstract-client interface… Since all of the trace records
    have timing information in them, the threads know how long they have
    to delay themselves before they can dispatch the next operation.
    When simulation information is missing (such as the actual time a
    read or write operation took place), the client thread makes a guess
    … the operations are positioned equidistant between the open and
    close operation."

    Latency of every dispatched operation is measured from its scheduled
    dispatch time to completion, recorded per operation class and
    overall, in 15-minute simulation windows and in a retained sample
    set for cumulative-distribution plots. *)

type result = {
  operations : int;
  errors : int;         (** operations refused (ENOENT etc.) *)
  skipped_ops : int;
      (** trace artifacts, counted apart from errors: a close, delete or
          rmdir of a path the trace never created (the target predates
          the trace window, and an operation that only destroys state
          has nothing sensible to synthesize). Only counted when
          [synthesize_missing] is on. *)
  errors_by_kind : (string * int) list;
      (** nonzero error classes only, keyed by
          {!Capfs_core.Errno.to_string} mnemonics, e.g. [("enoent", 33)]
          — the typed error each refused operation returned *)
  elapsed : float;      (** simulated seconds from first to last op *)
  latency : Capfs_stats.Sample_set.t;   (** per-operation latency *)
  latency_by_op : (string * Capfs_stats.Welford.t) list;
  windows : Capfs_stats.Interval.t;     (** 15-minute interval summaries *)
}

(** [synthesize_times records] fills in missing read/write times
    equidistantly between the enclosing open and close of the same
    (client, path) session; other untimed records inherit the previous
    record's time. Input order is preserved. The synthesized times are
    patched directly into a copy of the array (no list round-trips);
    the input — possibly shared across experiment domains — is never
    mutated. *)
val synthesize_times : Capfs_trace.Record.t array -> Capfs_trace.Record.t array

(** [run client source] spawns one fibre per trace client, replays to
    completion (all fibres joined), then closes leftover descriptors.
    [speedup] divides every inter-operation delay (default 1.0 = trace
    time); [window] is the report interval (default 900 s). When
    [synthesize_missing] is true (default), a reference to a file the
    trace assumes pre-exists creates it on the fly with adopted
    ("already on disk") blocks — the paper's synthesis of the initial
    file-system layout.

    The one entry point takes a {!Capfs_trace.Source.t}; wrap a record
    array with {!Capfs_trace.Source.of_array}. Array-backed sources take
    the exact in-memory replay path (bit-for-bit identical results, no
    cursor machinery on the hot loop). Cursor-backed sources {e stream}:
    replay memory is O(active window) — the longest open-session span
    (untimed I/O cannot be timed until its close arrives) plus the
    inter-client dispatch skew — instead of O(trace length). Streamed
    results are equal to array results on the same records: the
    time-synthesis cursor computes the same synthesized times in the
    same order, and the per-client fibre spawn order is replicated
    exactly. A cursor-backed source is traversed twice (a counting pass,
    then the replay pass).

    [real_data] (default false) makes writes carry {!Capfs_disk.Data}
    [real] payloads instead of byte-count-only [sim] ones — required by
    crash experiments, where file contents must survive on the backing
    store.

    [serial] (default false) dispatches every record from a single
    fibre in strict trace order instead of one fibre per trace client.
    Cross-client interleaving is engine-timing-dependent (a simulated
    disk and a real file complete I/O at different speeds), so two
    engines replaying the same trace concurrently can make {e
    different} logical state transitions — serial mode removes that,
    which is what differential validation needs. Keep the concurrent
    default for performance experiments: queue depth and overlap are
    part of what Patsy measures.

    [observe] is called with each trace record {e after} it has
    been applied successfully (shadow-model hook for consistency
    checking); refused operations are not observed. *)
val run :
  ?speedup:float ->
  ?window:float ->
  ?synthesize_missing:bool ->
  ?real_data:bool ->
  ?serial:bool ->
  ?observe:(Capfs_trace.Record.t -> unit) ->
  Capfs.Client.t ->
  Capfs_trace.Source.t ->
  result
