lib/stats/prng.ml: Array Float Int64 Stdlib
