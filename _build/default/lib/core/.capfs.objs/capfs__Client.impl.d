lib/core/client.ml: Capfs_disk Capfs_layout Dir File File_table Fsys Hashtbl List Namespace Printf String
