(* Tests for trace records, the Sprite/Coda text formats and the
   synthetic workload generator. *)

open Capfs_trace

(* The text formats store microsecond precision ("usually down to the
   microsecond"), so compare times within 1 µs. *)
let rec_eq (a : Record.t) (b : Record.t) =
  a.Record.client = b.Record.client
  && a.Record.op = b.Record.op
  && (abs_float (a.Record.time -. b.Record.time) <= 1e-6
      || ((not (Record.has_time a)) && not (Record.has_time b)))

let check_record_arrays name expected actual =
  Alcotest.(check int) (name ^ " count") (Array.length expected)
    (Array.length actual);
  Array.iteri
    (fun i a ->
      let b = actual.(i) in
      if not (rec_eq a b) then
        Alcotest.failf "%s mismatch at %d: %a vs %a" name i Record.pp a
          Record.pp b)
    expected

let sample_records =
  [|
    { Record.time = 0.; client = 0; op = Record.Mkdir { path = "/d0" } };
    {
      Record.time = 1.25;
      client = 3;
      op = Record.Open { path = "/d0/f1"; mode = Record.Write_only };
    };
    {
      Record.time = Record.no_time;
      client = 3;
      op = Record.Write { path = "/d0/f1"; offset = 0; bytes = 4096 };
    };
    {
      Record.time = Record.no_time;
      client = 3;
      op = Record.Truncate { path = "/d0/f1"; size = 0 };
    };
    { Record.time = 2.5; client = 3; op = Record.Close { path = "/d0/f1" } };
    {
      Record.time = 3.0;
      client = 4;
      op = Record.Open { path = "/d0/f1"; mode = Record.Read_only };
    };
    {
      Record.time = 3.1;
      client = 4;
      op = Record.Read { path = "/d0/f1"; offset = 0; bytes = 1024 };
    };
    { Record.time = 3.2; client = 4; op = Record.Close { path = "/d0/f1" } };
    { Record.time = 4.0; client = 5; op = Record.Stat { path = "/d0/f1" } };
    { Record.time = 5.0; client = 3; op = Record.Delete { path = "/d0/f1" } };
    { Record.time = 6.0; client = 0; op = Record.Rmdir { path = "/d0" } };
  |]

let test_record_accessors () =
  let r = sample_records.(2) in
  Alcotest.(check string) "path" "/d0/f1" (Record.path r);
  Alcotest.(check string) "op name" "write" (Record.op_name r);
  Alcotest.(check int) "bytes" 4096 (Record.bytes_moved r);
  Alcotest.(check bool) "no time" false (Record.has_time r)

let test_sprite_roundtrip () =
  let text = Sprite_format.to_string sample_records in
  let parsed = Sprite_format.of_string text in
  check_record_arrays "sprite" sample_records parsed

let test_sprite_comments_skipped () =
  let text = "# a header\n\n12.5 c1 stat /x\n# trailing\n" in
  match Sprite_format.of_string text with
  | [| r |] ->
    Alcotest.(check string) "op" "stat" (Record.op_name r);
    Alcotest.(check (float 1e-9)) "time" 12.5 r.Record.time
  | a -> Alcotest.failf "expected 1 record, got %d" (Array.length a)

let test_sprite_bad_input_raises () =
  List.iter
    (fun text ->
      try
        ignore (Sprite_format.of_string text);
        Alcotest.failf "should reject %S" text
      with Sprite_format.Parse_error _ -> ())
    [
      "notanumber c1 stat /x";
      "1.0 x1 stat /x";
      "1.0 c1 frobnicate /x";
      "1.0 c1 read /x abc 4096";
      "1.0 c1";
    ]

let test_coda_roundtrip () =
  let coda_records =
    Array.map
      (fun (r : Record.t) ->
        (* coda fids live under /coda/<vol>/<vnode> *)
        let fix p = "/coda/v7/" ^ string_of_int (Hashtbl.hash p land 0xffff) in
        let op =
          match r.Record.op with
          | Record.Open { path; mode } -> Record.Open { path = fix path; mode }
          | Record.Close { path } -> Record.Close { path = fix path }
          | Record.Read { path; offset; bytes } ->
            Record.Read { path = fix path; offset; bytes }
          | Record.Write { path; offset; bytes } ->
            Record.Write { path = fix path; offset; bytes }
          | Record.Stat { path } -> Record.Stat { path = fix path }
          | Record.Delete { path } -> Record.Delete { path = fix path }
          | Record.Truncate { path; size } ->
            Record.Truncate { path = fix path; size }
          | Record.Mkdir { path } -> Record.Mkdir { path = fix path }
          | Record.Rmdir { path } -> Record.Rmdir { path = fix path }
        in
        { r with Record.op })
      sample_records
  in
  let text = Coda_format.to_string coda_records in
  let parsed = Coda_format.of_string text in
  check_record_arrays "coda" coda_records parsed

let test_coda_rejects_garbage () =
  try
    ignore (Coda_format.of_string "1.0 3 OPEN nofid r\n");
    Alcotest.fail "bad fid must raise"
  with Coda_format.Parse_error _ -> ()

(* Synth *)

let small = { Synth.sprite_1a with Synth.clients = 4; files = 100; dirs = 5 }

let test_synth_deterministic () =
  let a = Synth.generate ~seed:11 ~duration:300. small in
  let b = Synth.generate ~seed:11 ~duration:300. small in
  check_record_arrays "same seed" a b;
  let c = Synth.generate ~seed:12 ~duration:300. small in
  if Array.length a = Array.length c
     && Array.for_all2 rec_eq a c then
    Alcotest.fail "different seeds should differ"

let test_synth_times_sorted () =
  let recs = Synth.generate ~seed:3 ~duration:600. small in
  let last = ref 0. in
  Array.iter
    (fun r ->
      if Record.has_time r then begin
        if r.Record.time < !last -. 1e-9 then
          Alcotest.failf "time goes backwards at %a" Record.pp r;
        last := r.Record.time
      end)
    recs

let test_synth_sessions_well_formed () =
  (* every read/write/close is preceded by an open from the same client *)
  let recs = Synth.generate ~seed:5 ~duration:600. small in
  let open_files : (int * string, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (r : Record.t) ->
      let key = (r.Record.client, Record.path r) in
      match r.Record.op with
      | Record.Open _ -> Hashtbl.replace open_files key ()
      | Record.Read _ | Record.Write _ ->
        if not (Hashtbl.mem open_files key) then
          Alcotest.failf "I/O without open: %a" Record.pp r
      | Record.Close _ ->
        if not (Hashtbl.mem open_files key) then
          Alcotest.failf "close without open: %a" Record.pp r;
        Hashtbl.remove open_files key
      | Record.Stat _ | Record.Delete _ | Record.Truncate _ | Record.Mkdir _
      | Record.Rmdir _ -> ())
    recs

let test_synth_io_times_unrecorded_by_default () =
  let recs = Synth.generate ~seed:7 ~duration:300. small in
  let io_with_time =
    Array.exists
      (fun (r : Record.t) ->
        match r.Record.op with
        | Record.Read _ | Record.Write _ -> Record.has_time r
        | _ -> false)
      recs
  in
  Alcotest.(check bool) "io times missing, like real Sprite traces" false
    io_with_time;
  let recs2 =
    Synth.generate ~seed:7 ~duration:300.
      { small with Synth.record_io_times = true }
  in
  let all_io_timed =
    Array.for_all
      (fun (r : Record.t) ->
        match r.Record.op with
        | Record.Read _ | Record.Write _ -> Record.has_time r
        | _ -> true)
      recs2
  in
  Alcotest.(check bool) "opt-in io times" true all_io_timed

let test_synth_profiles_have_character () =
  (* sprite-5 must move far more write bytes than sprite-1a at equal
     duration; sprite-1a must have more reads than writes. *)
  let bytes_of recs p =
    Array.fold_left
      (fun (r, w) (x : Record.t) ->
        match x.Record.op with
        | Record.Read { bytes; _ } -> (r + bytes, w)
        | Record.Write { bytes; _ } -> (r, w + bytes)
        | _ -> (r, w))
      (0, 0) recs
    |> fun (r, w) ->
    ignore p;
    (r, w)
  in
  let r1a = Synth.generate ~seed:42 ~duration:900. Synth.sprite_1a in
  let r5 = Synth.generate ~seed:42 ~duration:900. Synth.sprite_5 in
  let _, w1a = bytes_of r1a Synth.sprite_1a in
  let reads_1a, _ = bytes_of r1a Synth.sprite_1a in
  let _, w5 = bytes_of r5 Synth.sprite_5 in
  if w5 <= 2 * w1a then
    Alcotest.failf "sprite-5 writes (%d) should dwarf 1a writes (%d)" w5 w1a;
  if reads_1a = 0 then Alcotest.fail "sprite-1a must read"

let test_synth_deletes_happen () =
  let recs = Synth.generate ~seed:9 ~duration:1200. small in
  let deletes =
    Array.fold_left
      (fun n (r : Record.t) ->
        match r.Record.op with Record.Delete _ -> n + 1 | _ -> n)
      0 recs
  in
  if deletes = 0 then Alcotest.fail "workload must delete files"

let test_profile_by_name () =
  List.iter
    (fun (p : Synth.profile) ->
      let q = Synth.profile_by_name p.Synth.profile_name in
      Alcotest.(check string) "roundtrip" p.Synth.profile_name
        q.Synth.profile_name)
    Synth.all_profiles;
  try
    ignore (Synth.profile_by_name "sprite-9z");
    Alcotest.fail "unknown profile must raise"
  with Invalid_argument _ -> ()

let prop_sprite_roundtrip =
  let record_gen =
    QCheck.Gen.(
      let path = map (Printf.sprintf "/d%d/f%d") (int_range 0 9) >>= fun f ->
        map f (int_range 0 99)
      in
      let* time = frequency [ (4, map (fun t -> abs_float t)
                                  (float_bound_exclusive 10000.));
                              (1, return Record.no_time) ] in
      let* client = int_range 0 50 in
      let* op =
        frequency
          [
            (2, map (fun p -> Record.Open { path = p; mode = Record.Read_only }) path);
            (2, map (fun p -> Record.Close { path = p }) path);
            (3, map3 (fun p o b -> Record.Read { path = p; offset = o; bytes = b })
               path (int_range 0 100000) (int_range 1 65536));
            (3, map3 (fun p o b -> Record.Write { path = p; offset = o; bytes = b })
               path (int_range 0 100000) (int_range 1 65536));
            (1, map (fun p -> Record.Stat { path = p }) path);
            (1, map (fun p -> Record.Delete { path = p }) path);
            (1, map2 (fun p n -> Record.Truncate { path = p; size = n }) path
               (int_range 0 100000));
          ]
      in
      return { Record.time; client; op })
  in
  QCheck.Test.make ~name:"sprite format round-trips arbitrary records"
    ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 20) record_gen))
    (fun records ->
      let records = Array.of_list records in
      let parsed = Sprite_format.of_string (Sprite_format.to_string records) in
      Array.length parsed = Array.length records
      && Array.for_all2 rec_eq records parsed)

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_sprite_roundtrip ]

let suite =
  [
    Alcotest.test_case "record accessors" `Quick test_record_accessors;
    Alcotest.test_case "sprite roundtrip" `Quick test_sprite_roundtrip;
    Alcotest.test_case "sprite comments" `Quick test_sprite_comments_skipped;
    Alcotest.test_case "sprite rejects garbage" `Quick
      test_sprite_bad_input_raises;
    Alcotest.test_case "coda roundtrip" `Quick test_coda_roundtrip;
    Alcotest.test_case "coda rejects garbage" `Quick test_coda_rejects_garbage;
    Alcotest.test_case "synth deterministic" `Quick test_synth_deterministic;
    Alcotest.test_case "synth times sorted" `Quick test_synth_times_sorted;
    Alcotest.test_case "synth sessions well-formed" `Quick
      test_synth_sessions_well_formed;
    Alcotest.test_case "synth io times unrecorded" `Quick
      test_synth_io_times_unrecorded_by_default;
    Alcotest.test_case "synth profiles differ" `Quick
      test_synth_profiles_have_character;
    Alcotest.test_case "synth deletes happen" `Quick test_synth_deletes_happen;
    Alcotest.test_case "profile by name" `Quick test_profile_by_name;
  ]
  @ qsuite
