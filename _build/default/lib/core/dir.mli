(** Directory contents.

    Directories are files whose data blocks hold a serialized entry
    list, so directory reads and updates move through the block cache
    and cost I/O like any other file. The namespace layer keeps an
    authoritative in-core mirror (the simulator cannot re-parse entries
    from a disk that stores no bytes; see {!Namespace}), but every
    mutation is written through this module so a real image remounts. *)

type entry = {
  name : string;
  entry_ino : int;
  kind : Capfs_layout.Inode.kind;
}

val serialize : entry list -> string

(** Raises [Capfs_layout.Codec.Corrupt] on malformed input. *)
val deserialize : string -> entry list

(** [load file] reads and parses the whole directory; an unreadable
    (simulated) payload yields [None] — the caller falls back to its
    in-core mirror. *)
val load : File.t -> entry list option

(** [store file entries] rewrites the directory's contents. *)
val store : File.t -> entry list -> unit
