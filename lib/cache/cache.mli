(** The file-system block cache.

    This is the component the paper's evaluation revolves around. It
    administers clean and dirty blocks on LRU lists, allocates "first from
    the non-dirty list, and when there are no non-dirty blocks available …
    initiates a cache flush through the oldest dirty block", and lets both
    the replacement policy and the flush policy be swapped out.

    {2 Flush policies}

    The four write policies of the paper's experiments are configurations
    of this one module:

    - {b write-delay} (Unix 30-second-update): [trigger = Periodic
      {max_age = 30.; scan_interval}] — a daemon scans the cache and
      flushes the file owning any dirty block older than [max_age];
    - {b UPS write-saving}: [trigger = Demand] — dirty data stays in
      (battery-backed) RAM until block allocation runs out of clean
      blocks;
    - {b NVRAM}: [nvram_blocks > 0] — dirty data may only occupy the
      NVRAM pool; writers stall while it is full, draining the oldest
      dirty blocks;
    - whole-file vs. partial flush: [scope] selects whether a flush takes
      the single oldest block or every dirty block of its file.

    Flushes are asynchronous by default (a dedicated flusher fibre), the
    §5.2 lesson; [async_flush = false] restores the original synchronous
    behaviour for the ablation benchmark.

    With [coalesce = true] the flusher also {e clusters}: queued flush
    jobs are merged, the flush set is sorted by (ino, index) and cut
    into contiguous extents of at most [max_extent_blocks], and each
    extent goes down as one vectored [writeback] call, with up to
    [flush_window] extents in flight at once. A single-block demand
    flush additionally drags along the oldest block's file-contiguous
    dirty neighbours. [coalesce = false] (the default) keeps the
    pre-clustering flush path bit-identical.

    {2 Write-back plumbing}

    The cache does not know what a disk is: [writeback] (usually the
    storage layout's [write_blocks], whose [(ino, index, data)] batch
    signature it matches exactly so no adapter list is rebuilt per
    flush chunk) persists a batch of blocks and blocks the flusher
    fibre until they are on stable storage.

    Dirty blocks dropped by [truncate]/[remove_file] before any flush are
    counted as {e absorbed} writes — the disk traffic the write-saving
    policies exist to save. *)

type flush_trigger =
  | Demand
  | Periodic of { max_age : float; scan_interval : float }

type flush_scope = [ `Whole_file | `Single_block ]

type config = {
  block_bytes : int;
  capacity_blocks : int;  (** volatile block frames *)
  nvram_blocks : int;     (** 0 disables the NVRAM pool *)
  trigger : flush_trigger;
  scope : flush_scope;
  async_flush : bool;
  mem_copy_rate : float;  (** bytes/s charged per block copy; 0 = free *)
  coalesce : bool;
      (** cluster flush sets into contiguous extents and pipeline them;
          [false] reproduces the pre-clustering flush behaviour exactly *)
  flush_window : int;
      (** max extent write-backs in flight at once (coalesce only) *)
  max_extent_blocks : int;
      (** cap on one extent's length in blocks (coalesce only) *)
}

(** 30-second-update defaults: 4 KB blocks, periodic flush, whole-file
    scope, asynchronous flusher, no NVRAM, free copies, no coalescing
    (window 4 / extent cap 64 take effect when [coalesce] is turned on). *)
val default_config : capacity_blocks:int -> config

type t

(** [create sched ~writeback config] spawns the flusher (and the periodic
    scan daemon if configured). [replacement] defaults to LRU.
    Statistics are registered under [name] (default "cache"):
    hits, misses, evictions, flushed_blocks, absorbed_writes, overwrites,
    read_stall, write_stall, dirty_blocks, nvram_used, blit_count,
    copied_bytes.

    With [arena] set, the cache owns its payloads zero-copy: real heap
    payloads arriving at {!write} (or a miss {!read}'s fill) are copied
    once into a slab cell — counted as one [blit_count] event recording
    [copied_bytes] — and from then on the payload travels by reference
    (flush snapshot, vectored write-back, scatter-gather request) until
    the device boundary. The cell is released when the block leaves the
    table and recycled once the last holder (e.g. an in-flight flush or
    the LFS append buffer) drops its reference. Without [arena] every
    payload is a heap value and behaviour is unchanged. *)
val create :
  ?registry:Capfs_stats.Registry.t ->
  ?name:string ->
  ?replacement:Replacement.t ->
  ?arena:Capfs_disk.Arena.t ->
  writeback:((int * int * Capfs_disk.Data.t) list -> unit) ->
  Capfs_sched.Sched.t ->
  config ->
  t

val config : t -> config

(** [read t key ~fill] returns the block's data, calling [fill key] (a
    blocking read from the layout) on a miss. Concurrent misses on the
    same key share one fill. [fill] receives the key so callers can
    reuse one long-lived fill function instead of allocating a closure
    capturing the index on every read. *)
val read :
  t ->
  Block.Key.t ->
  fill:(Block.Key.t -> Capfs_disk.Data.t) ->
  Capfs_disk.Data.t

(** [write t key data] buffers [data] as the block's new contents. May
    stall for NVRAM space or a clean frame; returns once buffered
    (write-back). *)
val write : t -> Block.Key.t -> Capfs_disk.Data.t -> unit

(** [peek t key] is the cached data without side effects (no policy
    update, no fill). The result is borrowed from the cache: with an
    arena it must not be stashed across operations that could evict the
    block (use {!Capfs_disk.Data.detach} to keep a copy). *)
val peek : t -> Block.Key.t -> Capfs_disk.Data.t option

(** Drop one block. Dirty contents are discarded (and counted absorbed). *)
val invalidate : t -> Block.Key.t -> unit

(** [truncate t ino ~from] drops every cached block of [ino] with index
    >= [from]. *)
val truncate : t -> int -> from:int -> unit

(** Drop every block of the file — the delete path. *)
val remove_file : t -> int -> unit

(** Write every dirty block of [ino] and wait for stable storage. *)
val flush_file : t -> int -> unit

(** Write back everything; returns when the cache is wholly clean. *)
val sync : t -> unit

(** {2 Introspection} *)

val block_count : t -> int
val dirty_count : t -> int

(** Dirty blocks currently occupying NVRAM slots. *)
val nvram_used : t -> int

val contains : t -> Block.Key.t -> bool

(** Keys of the file's cached blocks (unordered). *)
val keys_of_file : t -> int -> Block.Key.t list
