lib/core/dir.mli: Capfs_layout File
