lib/patsy/replay.mli: Capfs Capfs_stats Capfs_trace
