exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

let split_ws s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let path_of_fid fid line =
  match String.index_opt fid ':' with
  | Some i ->
    let vol = String.sub fid 0 i in
    let vnode = String.sub fid (i + 1) (String.length fid - i - 1) in
    if vol = "" || vnode = "" then fail line "bad fid %S" fid
    else Printf.sprintf "/coda/%s/%s" vol vnode
  | None -> fail line "bad fid %S" fid

let parse_int line w =
  match int_of_string_opt w with
  | Some v -> v
  | None -> fail line "bad integer %S" w

let parse_line ~line s =
  let s = String.trim s in
  if s = "" || s.[0] = '#' then None
  else begin
    match split_ws s with
    | tw :: cw :: op :: fid :: args ->
      let time =
        if tw = "?" then Record.no_time
        else
          match float_of_string_opt tw with
          | Some v -> v
          | None -> fail line "bad time %S" tw
      in
      let client = parse_int line cw in
      let path = path_of_fid fid line in
      let op =
        match (op, args) with
        | "OPEN", [ "r" ] -> Record.Open { path; mode = Record.Read_only }
        | "OPEN", [ "w" ] -> Record.Open { path; mode = Record.Write_only }
        | "OPEN", [ "rw" ] -> Record.Open { path; mode = Record.Read_write }
        | "CLOSE", [] -> Record.Close { path }
        | "FETCH", [ off; len ] ->
          Record.Read
            { path; offset = parse_int line off; bytes = parse_int line len }
        | "STORE", [ off; len ] ->
          Record.Write
            { path; offset = parse_int line off; bytes = parse_int line len }
        | "GETATTR", [] -> Record.Stat { path }
        | "REMOVE", [] -> Record.Delete { path }
        | "TRUNCATE", [ size ] ->
          Record.Truncate { path; size = parse_int line size }
        | "MKDIR", [] -> Record.Mkdir { path }
        | "RMDIR", [] -> Record.Rmdir { path }
        | _ -> fail line "unknown or malformed op %S" op
      in
      Some { Record.time; client; op }
    | _ -> fail line "short record"
  end

let of_string s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, l))
  |> List.filter_map (fun (i, l) -> parse_line ~line:i l)
  |> Array.of_list

(* Turn a path back into a fid: /coda/<vol>/<vnode> round-trips; other
   paths hash deterministically into a synthetic volume. *)
let fid_of_path path =
  match String.split_on_char '/' path with
  | [ ""; "coda"; vol; vnode ] -> Printf.sprintf "%s:%s" vol vnode
  | _ -> Printf.sprintf "synth:%d" (Hashtbl.hash path land 0xffffff)

let emit buf (r : Record.t) =
  let time_str =
    if Record.has_time r then Printf.sprintf "%.6f" r.Record.time else "?"
  in
  let fid = fid_of_path (Record.path r) in
  let line =
    match r.Record.op with
    | Record.Open { mode; _ } ->
      Printf.sprintf "%s %d OPEN %s %s" time_str r.Record.client fid
        (match mode with
        | Record.Read_only -> "r"
        | Record.Write_only -> "w"
        | Record.Read_write -> "rw")
    | Record.Close _ -> Printf.sprintf "%s %d CLOSE %s" time_str r.Record.client fid
    | Record.Read { offset; bytes; _ } ->
      Printf.sprintf "%s %d FETCH %s %d %d" time_str r.Record.client fid offset
        bytes
    | Record.Write { offset; bytes; _ } ->
      Printf.sprintf "%s %d STORE %s %d %d" time_str r.Record.client fid offset
        bytes
    | Record.Stat _ -> Printf.sprintf "%s %d GETATTR %s" time_str r.Record.client fid
    | Record.Delete _ -> Printf.sprintf "%s %d REMOVE %s" time_str r.Record.client fid
    | Record.Truncate { size; _ } ->
      Printf.sprintf "%s %d TRUNCATE %s %d" time_str r.Record.client fid size
    | Record.Mkdir _ -> Printf.sprintf "%s %d MKDIR %s" time_str r.Record.client fid
    | Record.Rmdir _ -> Printf.sprintf "%s %d RMDIR %s" time_str r.Record.client fid
  in
  Buffer.add_string buf line;
  Buffer.add_char buf '\n'

let to_string records =
  let buf = Buffer.create 4096 in
  Array.iter (emit buf) records;
  Buffer.contents buf

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s

let save path records =
  let oc = open_out path in
  output_string oc (to_string records);
  close_out oc
