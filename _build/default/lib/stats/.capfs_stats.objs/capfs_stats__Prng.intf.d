lib/stats/prng.mli:
