(* Tests for the fault-injection subsystem: plan parsing, injector
   determinism, driver retry/backoff behaviour, crash recovery against
   the shadow model, and the typed-error (Errno) round-trips. *)

module Sched = Capfs_sched.Sched
module Driver = Capfs_disk.Driver
module Data = Capfs_disk.Data
module Plan = Capfs_fault.Plan
module Injector = Capfs_fault.Injector
module Errno = Capfs_core.Errno
module Synth = Capfs_trace.Synth
module Experiment = Capfs_patsy.Experiment
module Fleet = Capfs_patsy.Fleet
module Crash = Capfs_patsy.Crash
module Replay = Capfs_patsy.Replay
module Lfs = Capfs_layout.Lfs

(* the same fast shape test_patsy uses: tiny cache, 2 disks, 1 bus *)
let test_config policy =
  {
    (Experiment.default policy) with
    Experiment.ndisks = 2;
    nbuses = 1;
    cache_mb = 4;
    nvram_mb = 1;
    seed = 7;
  }

let small_trace ?(seed = 3) ?(duration = 120.) () =
  Synth.generate ~seed ~duration
    { Synth.sprite_1a with Synth.clients = 4; files = 60; dirs = 4 }

(* Plans *)

let test_plan_roundtrip () =
  let text =
    "read_error=0.01,write_error=0.005,latent=16,stall_p=0.001,stall_s=0.25,\
     crash_at=30,seed=7"
  in
  let plan =
    match Plan.of_string text with
    | Ok p -> p
    | Error m -> Alcotest.failf "of_string rejected a valid plan: %s" m
  in
  Alcotest.(check (float 0.)) "read_error" 0.01 plan.Plan.read_error;
  Alcotest.(check (float 0.)) "write_error" 0.005 plan.Plan.write_error;
  Alcotest.(check int) "latent" 16 plan.Plan.latent;
  Alcotest.(check (float 0.)) "stall_p" 0.001 plan.Plan.stall_p;
  Alcotest.(check (float 0.)) "stall_s" 0.25 plan.Plan.stall_s;
  Alcotest.(check (option (float 0.))) "crash_at" (Some 30.) plan.Plan.crash_at;
  Alcotest.(check (option int)) "seed" (Some 7) plan.Plan.seed;
  (match Plan.of_string (Plan.to_string plan) with
  | Ok p -> Alcotest.(check bool) "to_string round-trips" true (p = plan)
  | Error m -> Alcotest.failf "to_string emitted an unparseable plan: %s" m);
  (match Plan.of_string "" with
  | Ok p -> Alcotest.(check bool) "empty string is empty plan" true (Plan.is_empty p)
  | Error m -> Alcotest.failf "of_string \"\" failed: %s" m);
  (match Plan.of_string "latent=4" with
  | Ok p ->
    Alcotest.(check int) "single key" 4 p.Plan.latent;
    Alcotest.(check bool) "single key is not empty" false (Plan.is_empty p)
  | Error m -> Alcotest.failf "of_string \"latent=4\" failed: %s" m);
  (match Plan.of_string "bogus_key=1" with
  | Ok _ -> Alcotest.fail "unknown key accepted"
  | Error _ -> ());
  (match Plan.of_string "latent=not_a_number" with
  | Ok _ -> Alcotest.fail "unparseable value accepted"
  | Error _ -> ());
  Alcotest.(check bool) "empty is empty" true (Plan.is_empty Plan.empty);
  Alcotest.(check string) "empty prints empty" "" (Plan.to_string Plan.empty)

(* Errno *)

let test_errno_roundtrip () =
  Array.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "of_unix (to_unix %s)" (Errno.to_string e))
        true
        (Errno.of_unix (Errno.to_unix e) = e))
    Errno.all;
  Array.iteri
    (fun i e -> Alcotest.(check int) "to_index is positional" i (Errno.to_index e))
    Errno.all;
  let names = Array.to_list (Array.map Errno.to_string Errno.all) in
  Alcotest.(check int)
    "mnemonics are distinct"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  (* unmapped host errors collapse to EIO rather than raising *)
  Alcotest.(check bool) "unmapped -> EIO" true (Errno.of_unix Unix.EACCES = Errno.EIO)

(* Injector determinism *)

let fault_plan =
  {
    Plan.empty with
    Plan.read_error = 0.05;
    write_error = 0.02;
    latent = 8;
    stall_p = 0.01;
    stall_s = 0.1;
  }

let decisions inj =
  Injector.register_disk inj ~name:"d0" ~total_sectors:1024;
  Injector.register_disk inj ~name:"d1" ~total_sectors:1024;
  List.init 400 (fun i ->
      let disk = if i mod 3 = 0 then "d1" else "d0" in
      Injector.decide inj ~disk ~write:(i mod 2 = 0) ~lba:(i * 7 mod 1024)
        ~sectors:8)

let test_injector_determinism () =
  (* fresh injector per schedule: decide advances the PRNG stream, so a
     schedule is only comparable from a pristine injector *)
  let a = Injector.create ~seed:42 fault_plan in
  let b = Injector.create ~seed:42 fault_plan in
  Alcotest.(check bool) "same seed, same schedule" true (decisions a = decisions b);
  Alcotest.(check int) "transients agree" (Injector.transients a)
    (Injector.transients b);
  Alcotest.(check int) "hards agree" (Injector.hards a) (Injector.hards b);
  Alcotest.(check int) "stalls agree" (Injector.stalls a) (Injector.stalls b);
  let schedule ~seed plan = decisions (Injector.create ~seed plan) in
  Alcotest.(check bool) "different seed, different schedule" false
    (schedule ~seed:42 fault_plan = schedule ~seed:43 fault_plan);
  (* the plan's own seed overrides the experiment's *)
  Alcotest.(check bool) "plan seed wins" true
    (schedule ~seed:42 fault_plan
    = schedule ~seed:1 { fault_plan with Plan.seed = Some 42 })

let test_injector_null () =
  Alcotest.(check bool) "null is disabled" false (Injector.enabled Injector.null);
  Alcotest.(check bool) "empty plan is disabled" false
    (Injector.enabled (Injector.create ~seed:1 Plan.empty));
  Alcotest.(check bool) "a crash trigger alone enables" true
    (Injector.enabled
       (Injector.create ~seed:1 { Plan.empty with Plan.crash_at = Some 30. }));
  let inj = Injector.create ~seed:1 fault_plan in
  Alcotest.(check bool) "faulty plan is enabled" true (Injector.enabled inj);
  Alcotest.(check (option (float 0.))) "no crash trigger" None
    (Injector.crash_at inj)

let test_latent_sectors () =
  (* latent faults only: reads over a bad sector fail hard, a write
     repairs it (sector remap), and the bad set is a pure function of
     (seed, disk name) *)
  let latent_only = { Plan.empty with Plan.latent = 8 } in
  let bad_lbas inj =
    Injector.register_disk inj ~name:"d0" ~total_sectors:512;
    List.filter
      (fun lba ->
        Injector.decide inj ~disk:"d0" ~write:false ~lba ~sectors:1
        = Injector.Hard_error)
      (List.init 512 Fun.id)
  in
  let a = Injector.create ~seed:11 latent_only in
  let bad = bad_lbas a in
  Alcotest.(check bool) "some latent sectors materialized" true (bad <> []);
  Alcotest.(check bool) "at most [latent] of them" true (List.length bad <= 8);
  let b = Injector.create ~seed:11 latent_only in
  Alcotest.(check bool) "bad set is deterministic" true (bad = bad_lbas b);
  let lba = List.hd bad in
  (match Injector.decide a ~disk:"d0" ~write:true ~lba ~sectors:1 with
  | Injector.Hard_error -> Alcotest.fail "write to a latent sector failed hard"
  | _ -> ());
  Alcotest.(check bool) "write repaired the sector" true
    (Injector.decide a ~disk:"d0" ~write:false ~lba ~sectors:1 = Injector.Pass);
  Alcotest.(check bool) "hard errors were counted" true (Injector.hards a > 0)

(* Driver retry and backoff *)

let test_driver_retries_and_escalation () =
  (* every read attempt draws a transient: the driver retries
     [max_retries] times with exponential backoff, then escalates EIO *)
  let plan = { Plan.empty with Plan.read_error = 1.0 } in
  let sched =
    Sched.create ~seed:5 ~clock:`Virtual
      ~injector:(Injector.create ~seed:5 plan) ()
  in
  let drv =
    Driver.create ~max_retries:2 ~retry_backoff:0.002 sched
      (Driver.mem_transport ~sector_bytes:512 ~total_sectors:128 sched ())
  in
  ignore
    (Sched.spawn sched ~name:"test" (fun () ->
         (match Driver.write drv ~lba:0 (Data.of_string (String.make 512 'x')) with
         | Ok () -> ()
         | Error e ->
           Alcotest.failf "write failed (%s) under a read-only plan"
             (Errno.to_string e));
         let t0 = Sched.now sched in
         (match Driver.read drv ~lba:0 ~sectors:1 with
         | Ok _ -> Alcotest.fail "read succeeded under read_error=1.0"
         | Error e ->
           Alcotest.(check string) "escalates as EIO" "eio" (Errno.to_string e));
         let elapsed = Sched.now sched -. t0 in
         (* two retries: backoff 2 ms then 4 ms of virtual time *)
         Alcotest.(check bool)
           (Printf.sprintf "backoff elapsed (%.4f)" elapsed)
           true
           (elapsed >= 0.006)));
  Sched.run sched;
  Alcotest.(check int) "retries counted" 2 (Driver.retries drv);
  Alcotest.(check int) "one escalated error" 1 (Driver.io_errors drv);
  Alcotest.(check int) "three transient draws" 3
    (Injector.transients (Sched.injector sched));
  Alcotest.(check int) "no timeouts" 0 (Driver.timeouts drv)

let test_driver_clean_under_null_injector () =
  let sched = Sched.create ~seed:5 ~clock:`Virtual () in
  let drv =
    Driver.create sched
      (Driver.mem_transport ~sector_bytes:512 ~total_sectors:128 sched ())
  in
  ignore
    (Sched.spawn sched ~name:"test" (fun () ->
         (match Driver.write drv ~lba:3 (Data.of_string (String.make 1024 'y')) with
         | Ok () -> ()
         | Error e -> Alcotest.failf "write: %s" (Errno.to_string e));
         match Driver.read drv ~lba:3 ~sectors:2 with
         | Ok data ->
           Alcotest.(check int) "payload length" 1024 (Data.length data)
         | Error e -> Alcotest.failf "read: %s" (Errno.to_string e)));
  Sched.run sched;
  Alcotest.(check int) "no retries" 0 (Driver.retries drv);
  Alcotest.(check int) "no io errors" 0 (Driver.io_errors drv)

(* Fault on a merged request: one injector draw decides the whole
   scatter-gather request, and every constituent waiter receives the
   same typed error. *)
let test_merged_request_fault_propagates_to_all_waiters () =
  let plan = { Plan.empty with Plan.write_error = 1.0 } in
  let sched =
    Sched.create ~seed:5 ~clock:`Virtual
      ~injector:(Injector.create ~seed:5 plan) ()
  in
  let drv =
    Driver.create ~coalesce:true ~max_retries:0 sched
      (Driver.mem_transport ~latency:0.01 ~sector_bytes:512 ~total_sectors:1024
         sched ())
  in
  let errs = Array.make 2 None in
  (* occupy the device so the two adjacent writes queue and merge *)
  ignore
    (Sched.spawn sched ~name:"far" (fun () ->
         ignore (Driver.write drv ~lba:100 (Data.of_string (String.make 512 'a')))));
  ignore
    (Sched.spawn sched ~name:"w0" (fun () ->
         Sched.sleep sched 0.001;
         match Driver.write drv ~lba:10 (Data.of_string (String.make 512 'b')) with
         | Ok () -> ()
         | Error e -> errs.(0) <- Some e));
  ignore
    (Sched.spawn sched ~name:"w1" (fun () ->
         Sched.sleep sched 0.002;
         match Driver.write drv ~lba:11 (Data.of_string (String.make 512 'c')) with
         | Ok () -> ()
         | Error e -> errs.(1) <- Some e));
  Sched.run sched;
  Alcotest.(check int) "the two adjacent writes merged" 1 (Driver.merges drv);
  Alcotest.(check (option string))
    "first waiter failed with EIO" (Some "eio")
    (Option.map Errno.to_string errs.(0));
  Alcotest.(check (option string))
    "second waiter failed with EIO" (Some "eio")
    (Option.map Errno.to_string errs.(1));
  (* one draw for the far write + ONE for the merged pair — not three *)
  Alcotest.(check int) "one draw per physical request" 2
    (Injector.transients (Sched.injector sched))

(* Replay under faults: the fleet must stay deterministic *)

let summary (r : Fleet.job_result) =
  match r.Fleet.result with
  | Ok o ->
    let rp = o.Experiment.replay in
    Printf.sprintf "ops=%d errs=%d kinds=%s flushed=%d" rp.Replay.operations
      rp.Replay.errors
      (String.concat ","
         (List.map (fun (k, n) -> Printf.sprintf "%s:%d" k n)
            rp.Replay.errors_by_kind))
      o.Experiment.blocks_flushed
  | Error f -> Format.asprintf "%a" Fleet.pp_failure f

let test_fleet_fault_determinism () =
  (* same jobs, same fault plan: a 1-domain and a 4-domain fleet must
     report identical outcomes, faults included (j1 ≡ j4) *)
  let plan =
    { Plan.empty with Plan.read_error = 0.002; write_error = 0.001; latent = 4 }
  in
  let base = test_config Experiment.Ups in
  (* flush clustering and driver merging must be on: determinism has to
     hold for the batched pipeline, not just the legacy path *)
  Alcotest.(check bool) "coalescing on" true base.Experiment.coalesce;
  let jobs =
    List.map
      (fun seed ->
        {
          Fleet.label = Printf.sprintf "faulty-%d" seed;
          trace = "sprite";
          config = { base with Experiment.seed; fault_plan = Some plan };
        })
      [ 1; 2; 3 ]
  in
  let gen _ = Capfs_trace.Source.of_array (small_trace ()) in
  let j1 = Fleet.run_jobs ~jobs:1 ~gen jobs in
  let j4 = Fleet.run_jobs ~jobs:4 ~gen jobs in
  List.iter2
    (fun a b ->
      Alcotest.(check string)
        (Printf.sprintf "outcome of %s" a.Fleet.job.Fleet.label)
        (summary a) (summary b))
    j1 j4

(* Crash and recovery against the shadow model *)

let crash_plan = { Plan.empty with Plan.crash_at = Some 60. }

let test_crash_recovery_consistent () =
  let config = test_config Experiment.Write_delay in
  let report = Crash.run ~config ~trace:(small_trace ()) crash_plan in
  Alcotest.(check (float 0.)) "crash time" 60. report.Crash.crash_time;
  Alcotest.(check bool) "ops applied before the cut" true
    (report.Crash.applied_ops > 0);
  Alcotest.(check bool) "floor synced" true report.Crash.floor_synced;
  Alcotest.(check int) "every volume recovered" config.Experiment.ndisks
    (List.length report.Crash.recoveries);
  Alcotest.(check int) "no failed volumes" 0
    (List.length report.Crash.failed_volumes);
  List.iter
    (fun (name, r) ->
      Alcotest.(check (list string))
        (Printf.sprintf "%s fsck clean" name)
        [] r.Lfs.r_fsck_errors)
    report.Crash.recoveries;
  List.iter
    (fun v -> Format.eprintf "violation: %a@." Crash.pp_violation v)
    report.Crash.violations;
  Alcotest.(check int) "no shadow-model violations" 0
    (List.length report.Crash.violations);
  Alcotest.(check bool) "verdict consistent" true report.Crash.ok

let test_crash_recovery_with_faults () =
  (* same experiment with transient faults in the mix: retries absorb
     them and recovery must still satisfy the shadow model *)
  let config = test_config Experiment.Write_delay in
  let plan =
    {
      crash_plan with
      Plan.read_error = 0.001;
      write_error = 0.0005;
      stall_p = 0.001;
      stall_s = 0.02;
    }
  in
  let report = Crash.run ~config ~trace:(small_trace ()) plan in
  Alcotest.(check bool) "verdict consistent under faults" true report.Crash.ok

let test_crash_recovery_with_clustered_flushes () =
  (* single-block scope + coalescing: demand flushes drag contiguous
     dirty neighbours along as one extent; a power cut mid-replay must
     still leave every volume recoverable and shadow-consistent *)
  let config = test_config Experiment.Nvram_partial in
  Alcotest.(check bool) "coalescing is on" true config.Experiment.coalesce;
  let report = Crash.run ~config ~trace:(small_trace ()) crash_plan in
  Alcotest.(check int) "every volume recovered" config.Experiment.ndisks
    (List.length report.Crash.recoveries);
  Alcotest.(check int) "no shadow-model violations" 0
    (List.length report.Crash.violations);
  Alcotest.(check bool) "verdict consistent" true report.Crash.ok

let test_crash_requires_trigger () =
  Alcotest.check_raises "crash_at is mandatory"
    (Invalid_argument "Crash.run: the fault plan must set crash_at > 0")
    (fun () ->
      ignore
        (Crash.run
           ~config:(test_config Experiment.Write_delay)
           ~trace:(small_trace ()) Plan.empty))

let suite =
  [
    Alcotest.test_case "plan round-trip" `Quick test_plan_roundtrip;
    Alcotest.test_case "errno round-trip" `Quick test_errno_roundtrip;
    Alcotest.test_case "injector determinism" `Quick test_injector_determinism;
    Alcotest.test_case "null injector" `Quick test_injector_null;
    Alcotest.test_case "latent sectors" `Quick test_latent_sectors;
    Alcotest.test_case "driver retries and escalation" `Quick
      test_driver_retries_and_escalation;
    Alcotest.test_case "driver clean without faults" `Quick
      test_driver_clean_under_null_injector;
    Alcotest.test_case "fleet fault determinism (j1 = j4)" `Slow
      test_fleet_fault_determinism;
    Alcotest.test_case "crash, recover, shadow model" `Slow
      test_crash_recovery_consistent;
    Alcotest.test_case "merged fault reaches all waiters" `Quick
      test_merged_request_fault_propagates_to_all_waiters;
    Alcotest.test_case "crash recovery under faults" `Slow
      test_crash_recovery_with_faults;
    Alcotest.test_case "crash recovery with clustered flushes" `Slow
      test_crash_recovery_with_clustered_flushes;
    Alcotest.test_case "crash trigger required" `Quick test_crash_requires_trigger;
  ]
