(* tracegen: emit synthetic Sprite- or Coda-style trace files. *)

open Cmdliner

let generate profile seed duration out format list_profiles =
  if list_profiles then begin
    List.iter
      (fun p -> print_endline p.Capfs_trace.Synth.profile_name)
      Capfs_trace.Synth.all_profiles;
    0
  end
  else begin
    let p = Capfs_trace.Synth.profile_by_name profile in
    let records = Capfs_trace.Synth.generate ~seed ?duration p in
    let render =
      match format with
      | "sprite" -> Capfs_trace.Sprite_format.to_string
      | "coda" -> Capfs_trace.Coda_format.to_string
      | f -> invalid_arg ("unknown format: " ^ f)
    in
    let body = render records in
    let header =
      Printf.sprintf
        "# synthetic %s trace: profile=%s seed=%d records=%d\n" format
        profile seed (Array.length records)
    in
    (match out with
    | Some path ->
      let oc = open_out path in
      output_string oc header;
      output_string oc body;
      close_out oc
    | None ->
      print_string header;
      print_string body);
    0
  end

let profile =
  Arg.(value & opt string "sprite-1a" & info [ "p"; "profile" ] ~docv:"NAME")

let seed = Arg.(value & opt int 1996 & info [ "seed" ])
let duration = Arg.(value & opt (some float) None & info [ "d"; "duration" ])
let out = Arg.(value & opt (some string) None & info [ "o"; "output" ])

let format =
  Arg.(value & opt string "sprite"
       & info [ "f"; "format" ] ~doc:"Output format: sprite or coda.")

let list_profiles =
  Arg.(value & flag & info [ "list" ] ~doc:"List known profiles.")

let cmd =
  Cmd.v
    (Cmd.info "tracegen" ~doc:"synthetic file-system workload generator")
    Term.(const generate $ profile $ seed $ duration $ out $ format
          $ list_profiles)

let () = exit (Cmd.eval' cmd)
