(** Streaming mean/variance accumulator (Welford's algorithm).

    Used by every plug-in statistic in Patsy to report means and standard
    deviations of latencies, queue lengths, etc. without retaining samples. *)

type t

(** [create ()] is an empty accumulator. *)
val create : unit -> t

(** [add t x] folds the observation [x] into [t]. *)
val add : t -> float -> unit

(** Number of observations folded so far. *)
val count : t -> int

(** Arithmetic mean; [0.] when empty. *)
val mean : t -> float

(** Unbiased sample variance; [0.] with fewer than two observations. *)
val variance : t -> float

(** Standard deviation, [sqrt (variance t)]. *)
val stddev : t -> float

(** Smallest observation; [infinity] when empty. *)
val min : t -> float

(** Largest observation; [neg_infinity] when empty. *)
val max : t -> float

(** Sum of all observations. *)
val total : t -> float

(** [merge a b] is a fresh accumulator equivalent to having folded all
    observations of [a] and [b]. *)
val merge : t -> t -> t

(** Forget all observations. *)
val reset : t -> unit

(** [pp ppf t] prints ["n=… mean=… sd=… min=… max=…"]. *)
val pp : Format.formatter -> t -> unit
