lib/disk/disk_model.mli: Geometry Seek
