lib/stats/registry.mli: Format Stat
