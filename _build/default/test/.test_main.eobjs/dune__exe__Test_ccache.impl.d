test/test_ccache.ml: Alcotest Capfs Capfs_cache Capfs_ccache Capfs_disk Capfs_layout Capfs_sched String
