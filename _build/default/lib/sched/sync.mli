(** Synchronization primitives built on scheduler events.

    Mutexes serialize access to shared structures (the cache lists, the
    LFS log tail); semaphores model capacity-limited resources (the
    host/disk connection's single ownership, NVRAM drain slots);
    conditions express "wait until the predicate may have changed". All
    of them work identically under virtual and real clocks. *)

module Mutex : sig
  type t

  val create : ?name:string -> Sched.t -> t

  (** Block until the mutex is free, then take it. Not recursive: a fibre
      locking a mutex it already holds deadlocks. *)
  val lock : t -> unit

  (** [try_lock t] takes the mutex iff it is free; never blocks. *)
  val try_lock : t -> bool

  (** Release; raises [Invalid_argument] if not locked. *)
  val unlock : t -> unit

  val locked : t -> bool

  (** [with_lock t f] runs [f ()] with the mutex held, releasing on any
      exit. *)
  val with_lock : t -> (unit -> 'a) -> 'a
end

module Semaphore : sig
  type t

  (** [create sched ~capacity] has [capacity] initial permits. *)
  val create : ?name:string -> Sched.t -> capacity:int -> t

  val acquire : t -> unit
  val try_acquire : t -> bool
  val release : t -> unit

  (** Currently available permits. *)
  val available : t -> int

  val with_permit : t -> (unit -> 'a) -> 'a
end

module Condition : sig
  type t

  val create : ?name:string -> Sched.t -> t

  (** [wait t m] atomically releases [m], blocks until signalled, then
      re-acquires [m]. *)
  val wait : t -> Mutex.t -> unit

  val signal : t -> unit
  val broadcast : t -> unit
end
