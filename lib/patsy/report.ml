module Stats = Capfs_stats

let cdf_series ?(points = 60) (r : Replay.result) =
  Stats.Sample_set.cdf_points r.Replay.latency ~points

let boundary_fractions (r : Replay.result) =
  ( Stats.Sample_set.fraction_le r.Replay.latency 0.002,
    Stats.Sample_set.fraction_le r.Replay.latency 0.017 )

let print_cdf ?points ~title ppf (r : Replay.result) =
  let cache_frac, rotation_frac = boundary_fractions r in
  Format.fprintf ppf "@[<v># %s@," title;
  Format.fprintf ppf "# ops=%d errors=%d mean=%.3fms@," r.Replay.operations
    r.Replay.errors
    (1000. *. Stats.Sample_set.mean r.Replay.latency);
  Format.fprintf ppf
    "# <=2ms (fs cache service): %.1f%%   <=17ms (one rotation): %.1f%%@,"
    (100. *. cache_frac) (100. *. rotation_frac);
  Format.fprintf ppf "# latency_ms cumulative_fraction@,";
  List.iter
    (fun (v, q) -> Format.fprintf ppf "%10.4f %8.5f@," (1000. *. v) q)
    (cdf_series ?points r);
  Format.fprintf ppf "@]"

let print_mean_table ?(scale = 1000.) ?(unit = "ms") ppf ~rows =
  match rows with
  | [] -> ()
  | (_, first_cols) :: _ ->
    let policies = List.map fst first_cols in
    Format.fprintf ppf "@[<v>%-12s" "trace";
    List.iter (fun p -> Format.fprintf ppf " %18s" p) policies;
    Format.fprintf ppf "@,";
    List.iter
      (fun (trace, cols) ->
        Format.fprintf ppf "%-12s" trace;
        List.iter
          (fun (_, mean) ->
            Format.fprintf ppf " %15.3f%s" (scale *. mean) unit)
          cols;
        Format.fprintf ppf "@,")
      rows;
    Format.fprintf ppf "@]"

let print_error_breakdown ppf (r : Replay.result) =
  if r.Replay.errors > 0 then begin
    Format.fprintf ppf "@[<v>errors: %d refused operations@," r.Replay.errors;
    List.iter
      (fun (kind, n) -> Format.fprintf ppf "  %-16s %6d@," kind n)
      r.Replay.errors_by_kind;
    Format.fprintf ppf "@]"
  end
  else Format.fprintf ppf "errors: none"

let print_outcome_summary ppf (o : Experiment.outcome) =
  Format.fprintf ppf
    "%-18s mean=%8.3fms p95=%8.3fms ops=%7d hit=%5.1f%% flushed=%7d absorbed=%7d"
    o.Experiment.name
    (1000. *. Stats.Sample_set.mean o.Experiment.replay.Replay.latency)
    (1000.
     *. (try Stats.Sample_set.quantile o.Experiment.replay.Replay.latency 0.95
         with Invalid_argument _ -> 0.))
    o.Experiment.replay.Replay.operations
    (100. *. o.Experiment.cache_hit_rate)
    o.Experiment.blocks_flushed o.Experiment.writes_absorbed;
  if o.Experiment.replay.Replay.errors > 0 then
    Format.fprintf ppf " errors=%d(%s)"
      o.Experiment.replay.Replay.errors
      (String.concat ","
         (List.map
            (fun (kind, n) -> Printf.sprintf "%s:%d" kind n)
            o.Experiment.replay.Replay.errors_by_kind));
  if o.Experiment.replay.Replay.skipped_ops > 0 then
    Format.fprintf ppf " skipped=%d" o.Experiment.replay.Replay.skipped_ops

let print_windows ppf (r : Replay.result) =
  Format.fprintf ppf "@[<v># window_start_s  ops  mean_ms@,";
  List.iter
    (fun w ->
      Format.fprintf ppf "%14.0f %6d %8.3f@," w.Stats.Interval.start
        (Stats.Welford.count w.Stats.Interval.summary)
        (1000. *. Stats.Welford.mean w.Stats.Interval.summary))
    (Stats.Interval.windows r.Replay.windows);
  Format.fprintf ppf "@]"
