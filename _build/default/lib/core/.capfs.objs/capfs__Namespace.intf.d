lib/core/namespace.mli: Capfs_layout Dir File_table Fsys
