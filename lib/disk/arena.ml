(* A slab arena for block payloads. One off-heap bigarray slab is cut
   into fixed-size cells; [alloc] hands out refcounted [Data.Slice]
   views and a cell returns to the free list when its count reaches
   zero (for cache-owned blocks: on eviction). The slab never moves and
   the GC never scans it, so payload bytes cost no minor-heap traffic
   and no copying until a real device boundary.

   The arena never blocks: with the free list empty (or an oversized
   request) [alloc] falls back to a plain GC-heap [Data.real] buffer,
   on which retain/release are no-ops. *)

type t = {
  buf : Data.buf;
  cell_bytes : int;
  ncells : int;
  cells : Data.cell array;
  mutable free : int list;
  lock : Mutex.t option; (* [shared] arenas: guards the free list *)
  poison : bool;
  mutable live : int;       (* cells currently allocated *)
  mutable fallbacks : int;  (* allocs served from the GC heap *)
  mutable recycled : int;   (* cells returned and reusable *)
}

let locked t f =
  match t.lock with
  | None -> f ()
  | Some m ->
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let poison_byte = '\xde'

let create ?(poison = false) ?(shared = false) ~cell_bytes ~cells:ncells () =
  if cell_bytes < 1 then invalid_arg "Arena.create: cell_bytes < 1";
  if ncells < 1 then invalid_arg "Arena.create: cells < 1";
  let buf =
    Bigarray.Array1.create Bigarray.char Bigarray.c_layout
      (cell_bytes * ncells)
  in
  Bigarray.Array1.fill buf '\000';
  (* cells are built before [t] exists; the free hook reaches the arena
     through a forward reference patched right below *)
  let free_hook = ref (fun (_ : Data.cell) -> ()) in
  let cells =
    Array.init ncells (fun i ->
        { Data.c_slot = i; c_rc = 0; c_free = (fun c -> !free_hook c) })
  in
  let free = List.init ncells (fun i -> i) in
  let t =
    {
      buf; cell_bytes; ncells; cells; free;
      lock = (if shared then Some (Mutex.create ()) else None);
      poison;
      live = 0; fallbacks = 0; recycled = 0;
    }
  in
  (free_hook :=
     fun c ->
       let slot = c.Data.c_slot in
       if t.poison then
         Bigarray.Array1.(fill (sub t.buf (slot * t.cell_bytes) t.cell_bytes))
           poison_byte;
       locked t (fun () ->
           t.free <- slot :: t.free;
           t.live <- t.live - 1;
           t.recycled <- t.recycled + 1));
  t

let cell_bytes t = t.cell_bytes
let capacity t = t.ncells
let live t = t.live
let fallbacks t = t.fallbacks
let recycled t = t.recycled

let alloc ?len t =
  let len = match len with Some l -> l | None -> t.cell_bytes in
  if len < 0 then invalid_arg "Arena.alloc: negative length";
  let slot =
    if len > t.cell_bytes then None
    else
      locked t (fun () ->
          match t.free with
          | slot :: rest ->
            t.free <- rest;
            t.live <- t.live + 1;
            Some slot
          | [] -> None)
  in
  match slot with
  | Some slot ->
    let c = t.cells.(slot) in
    c.Data.c_rc <- 1;
    Data.Slice
      {
        Data.s_buf = t.buf;
        s_off = slot * t.cell_bytes;
        s_len = len;
        s_cell = Some c;
      }
  | None ->
    t.fallbacks <- t.fallbacks + 1;
    Data.real len

let copy_in t data =
  let len = Data.length data in
  let out = alloc ~len t in
  Data.blit ~src:data ~src_pos:0 ~dst:out ~dst_pos:0 ~len;
  out
