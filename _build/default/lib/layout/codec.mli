(** Little-endian binary encoding helpers for on-disk structures.

    Every persistent structure (superblock, checkpoint, inode, segment
    summary) round-trips through these, so a PFS image written by one
    process mounts in another. A writer appends into a growing buffer; a
    reader walks a string with bounds checking and raises {!Corrupt} on
    malformed input rather than crashing. *)

exception Corrupt of string

module Writer : sig
  type t

  val create : unit -> t
  val u8 : t -> int -> unit
  val u32 : t -> int -> unit

  (** 63-bit OCaml ints, stored as 8 bytes. *)
  val u64 : t -> int -> unit

  val f64 : t -> float -> unit

  (** Length-prefixed string. *)
  val string : t -> string -> unit

  val bytes_raw : t -> bytes -> unit
  val contents : t -> string
  val length : t -> int
end

module Reader : sig
  type t

  (** [of_string s] starts reading at offset 0. *)
  val of_string : string -> t

  val u8 : t -> int
  val u32 : t -> int
  val u64 : t -> int
  val f64 : t -> float
  val string : t -> string
  val bytes_raw : t -> int -> bytes
  val remaining : t -> int
end

(** [crc s] — a simple 32-bit checksum (Adler-32 flavour) used to verify
    checkpoints and the superblock. *)
val crc : string -> int
