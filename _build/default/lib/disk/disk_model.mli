(** Parameter sets for simulated disk drives. *)

type cache_config = {
  cache_bytes : int;          (** on-disk cache size; 0 disables it *)
  read_ahead_bytes : int;     (** prefetch window grown after idle reads *)
  immediate_report : bool;    (** writes complete once in the disk cache *)
}

type t = {
  model_name : string;
  geometry : Geometry.t;
  seek : Seek.t;
  rpm : float;
  head_switch : float;        (** seconds to select another head *)
  controller_overhead : float;(** command decode etc., per request *)
  cache : cache_config;
}

(** One full revolution, seconds. *)
val rotation_time : t -> float

(** Time for one sector to pass under the head. *)
val sector_time : t -> float

(** Media transfer rate, bytes/second. *)
val media_rate : t -> float

(** The HP 97560: 1.3 GB, 1962 cylinders × 19 heads × 72 sectors of
    512 bytes, 4002 rpm, 128 KB cache with 4 KB read-ahead and
    immediate-reported writes — the drive Patsy simulates, with the
    Ruemmler & Wilkes / Kotz parameters. *)
val hp97560 : t

(** A deliberately crude model: same capacity as {!hp97560} but constant
    seek and no cache — the kind of "simple disk model" whose results the
    paper calls "completely useless". Used by the validation benches. *)
val naive : t

(** A small fast drive for quick unit tests (few cylinders, tiny cache). *)
val tiny_test : t
