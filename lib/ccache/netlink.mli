(** Simulated client/server network links.

    PFS speaks NFS over a network; to "simulate client/server interaction
    and client cache performance" (§3) the framework needs the wire too.
    A link charges each message a fixed per-RPC latency plus payload
    serialization time, and models half-duplex contention: concurrent
    senders share the medium (10 Mbit/s Ethernet of the era by
    default). *)

(** One shared medium. The link is a mutex around a time charge: a
    message holds the medium for [latency + wire_bytes / bandwidth]
    scheduler seconds, so concurrent senders queue — half-duplex
    Ethernet without collisions (the retry behaviour of CSMA/CD is
    folded into the fixed latency). *)
type t

(** [ethernet_10 sched] — 10 Mbit/s, 0.5 ms per-message latency: a
    1990s departmental LAN. *)
val ethernet_10 : ?registry:Capfs_stats.Registry.t -> Capfs_sched.Sched.t -> t

(** [create ~bandwidth_bytes_per_sec ~latency sched] builds a link with
    the given serialization rate and fixed per-message setup cost
    (propagation + protocol processing, charged once per
    {!transfer}). With [registry], per-message medium time is recorded
    under [<name>.transfer] ([name] defaults to ["netlink"]). *)
val create :
  ?registry:Capfs_stats.Registry.t ->
  ?name:string ->
  bandwidth_bytes_per_sec:float ->
  latency:float ->
  Capfs_sched.Sched.t ->
  t

(** [transfer t ~bytes] blocks the calling fibre for the message's time
    on the (contended) medium. Framing: [bytes] is payload only; a
    fixed 160-byte header — Ethernet + IP + UDP + RPC overhead of an
    NFS-era packet — is added per message, so zero-payload RPCs (open,
    close, callbacks) still pay for a real packet. One [transfer] is
    one message: callers model a request/reply exchange as two
    transfers, and large reads/writes as one transfer per block. *)
val transfer : t -> bytes:int -> unit

(** Total payload bytes carried so far (both directions, headers
    excluded). *)
val bytes_carried : t -> int

(** Real wire framing — the same module, cut-and-pasted onto an actual
    socket. Where {!transfer} charges simulated seconds for a notional
    packet, [Frame] moves request/reply messages over a Unix file
    descriptor for the multi-client PFS server: a fixed 16-byte header
    (magic, opcode, request id, payload length) followed by the
    payload.

    Concurrency contract: frames from concurrent writers must be
    serialized per connection (the server holds a per-connection mutex
    around {!Frame.write}), but {e replies may come back in any order}
    — the request id is the correlation key, so one socket can carry
    many interleaved in-flight requests (the load generator pipelines
    on exactly this). *)
module Frame : sig
  type t = { req_id : int; opcode : int; payload : string }

  (** Bytes of the fixed header preceding every payload (16). *)
  val header_bytes : int

  (** Default payload-size cap, 1 MiB: a reader refuses anything larger
      with [EINVAL] before allocating, so a corrupt or hostile length
      field cannot balloon memory. *)
  val default_max_payload : int

  (** [write fd f] sends the frame, looping over short writes ([EINTR]
      restarts; partial writes resume at the cut). On a non-blocking fd,
      [sched] makes [EAGAIN] back off through the scheduler (the fibre
      sleeps, the domain keeps serving); without [sched] it surfaces as
      [Error EAGAIN]. *)
  val write :
    ?sched:Capfs_sched.Sched.t ->
    Unix.file_descr ->
    t ->
    (unit, Capfs_core.Errno.t) result

  (** [read fd] reassembles one frame from a (normally blocking) fd.
      [Ok None] is a clean EOF at a frame boundary; EOF mid-header or
      mid-payload is a torn frame, [Error EIO]. A bad magic number or a
      length outside [0..max_payload] is [Error EINVAL]. *)
  val read :
    ?max_payload:int ->
    Unix.file_descr ->
    (t option, Capfs_core.Errno.t) result

  (** {!read} for a non-blocking fd inside a fibre: short reads park the
      fibre on {!Capfs_sched.Sched.wait_readable} (real clock only)
      instead of spinning, so one listener domain multiplexes many
      connections. *)
  val read_sched :
    ?max_payload:int ->
    Capfs_sched.Sched.t ->
    Unix.file_descr ->
    (t option, Capfs_core.Errno.t) result

  (** [blit_header b off ~req_id ~opcode ~payload_len] writes the
      16-byte frame header at [b.(off)] — the gather writer lays many
      headers and payloads into one buffer and hands it to
      {!write_bytes} in a single call. *)
  val blit_header :
    Bytes.t -> int -> req_id:int -> opcode:int -> payload_len:int -> unit

  (** [write_bytes fd b ~len] writes [b.(0..len)] with the same
      EINTR/EAGAIN discipline as {!write} and returns the number of
      [write(2)] calls that moved bytes — normally 1, more only when the
      kernel cut the write short. *)
  val write_bytes :
    ?sched:Capfs_sched.Sched.t ->
    Unix.file_descr ->
    Bytes.t ->
    len:int ->
    (int, Capfs_core.Errno.t) result

  (** Incremental frame reassembly over caller-supplied byte chunks, for
      readers that drain an fd opportunistically (a cached client
      polling for pushed invalidations before serving a local hit)
      rather than parking on it. Feed whatever [read(2)] returned, then
      {!Splitter.pop} complete frames until [Ok None]. Protocol errors
      (bad magic, oversized length) are sticky — a desynchronized byte
      stream has no resync point. *)
  module Splitter : sig
    type frame := t
    type t

    val create : ?max_payload:int -> unit -> t

    (** [feed t b off len] appends [b.(off..off+len)] to the pending
        stream. Raises [Invalid_argument] on an out-of-bounds slice. *)
    val feed : t -> Bytes.t -> int -> int -> unit

    (** Next complete frame, [Ok None] when more bytes are needed. *)
    val pop : t -> (frame option, Capfs_core.Errno.t) result
  end
end
