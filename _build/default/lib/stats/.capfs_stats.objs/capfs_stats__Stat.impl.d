lib/stats/stat.ml: Format Histogram Option Sample_set Welford
