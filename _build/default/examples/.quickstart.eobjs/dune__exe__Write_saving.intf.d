examples/write_saving.mli:
