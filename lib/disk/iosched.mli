(** Disk-queue scheduling policies.

    "Disk-drivers … can implement disk queue scheduling policies to
    optimize disk I/O queue time (e.g. SCAN, C-SCAN, LOOK, C-LOOK) or
    guarantee real-time delivery of data through algorithms such as
    scan-EDF." A policy owns the pending-request set; the driver asks it
    for the next request to service given the head's current cylinder.

    All policies break ties by submission order, so two requests for the
    same cylinder are served FIFO. *)

type t

(** Policy name as printed in reports. *)
val name : t -> string

(** Enqueue a pending request. *)
val add : t -> Iorequest.t -> unit

(** [next t ~current_cyl] removes and returns the request the policy
    elects to service next, or [None] when idle. *)
val next : t -> current_cyl:int -> Iorequest.t option

(** [take_adjacent t r ~max_sectors] removes and returns (in submission
    order) every queued request of the same operation that abuts or
    overlaps [r]'s sector span — transitively, so a chain of adjacent
    requests is drained in one call — as long as the merged span stays
    within [max_sectors]. Requests with deadlines are never taken (and a
    deadlined [r] takes nothing), keeping scan-EDF semantics intact. The
    driver uses this to build scatter-gather requests. *)
val take_adjacent : t -> Iorequest.t -> max_sectors:int -> Iorequest.t list

(** Pending-request count. *)
val length : t -> int

(** Pending requests, unordered (for statistics and debugging). *)
val pending : t -> Iorequest.t list

(** {2 Constructors} — each takes the geometry used to map sector
    numbers to cylinders. *)

(** First-come first-served. *)
val fcfs : Geometry.t -> t

(** Shortest seek time first (nearest cylinder). Can starve edge
    requests under load — that is the point of comparing it. *)
val sstf : Geometry.t -> t

(** Elevator: keep moving in the current direction, reverse at the last
    pending request. (Classical SCAN sweeps to the physical edge; for
    service-order purposes the two are identical, so SCAN here shares the
    LOOK implementation.) *)
val look : Geometry.t -> t

(** Alias of {!look} — see the note there. *)
val scan : Geometry.t -> t

(** Circular LOOK: service upward only; wrap to the lowest pending
    request when none lie ahead. The default policy of the paper's only
    disk driver. *)
val clook : Geometry.t -> t

(** Circular SCAN (same service order as {!clook}). *)
val cscan : Geometry.t -> t

(** Earliest deadline first, ties broken in C-LOOK order; requests
    without a deadline sort after all deadlined ones. Reddy & Wyllie's
    scan-EDF for continuous-media traffic. *)
val scan_edf : Geometry.t -> t

(** [by_name geometry s] looks up a policy constructor by (lowercase)
    name: "fcfs", "sstf", "scan", "look", "cscan", "clook", "scan-edf".
    Raises [Invalid_argument] on unknown names. *)
val by_name : Geometry.t -> string -> t

(** Every name {!by_name} accepts, for CLI help and error messages. *)
val known_policies : string list
