let cache = "cache"
let driver d = "driver" ^ string_of_int d
let lfs d = "lfs" ^ string_of_int d
let disk d = "disk" ^ string_of_int d
let bus b = "bus" ^ string_of_int b
let wire c = "wire." ^ c
