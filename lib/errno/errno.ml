type t =
  | ENOENT
  | EEXIST
  | ENOTDIR
  | EISDIR
  | ENOTEMPTY
  | ELOOP
  | EBADF
  | ESTALE
  | ENOSPC
  | EIO
  | ETIMEDOUT
  | EINVAL
  | EAGAIN

let all =
  [|
    ENOENT; EEXIST; ENOTDIR; EISDIR; ENOTEMPTY; ELOOP; EBADF; ESTALE; ENOSPC;
    EIO; ETIMEDOUT; EINVAL; EAGAIN;
  |]

let to_index = function
  | ENOENT -> 0
  | EEXIST -> 1
  | ENOTDIR -> 2
  | EISDIR -> 3
  | ENOTEMPTY -> 4
  | ELOOP -> 5
  | EBADF -> 6
  | ESTALE -> 7
  | ENOSPC -> 8
  | EIO -> 9
  | ETIMEDOUT -> 10
  | EINVAL -> 11
  | EAGAIN -> 12

let to_string = function
  | ENOENT -> "enoent"
  | EEXIST -> "eexist"
  | ENOTDIR -> "enotdir"
  | EISDIR -> "eisdir"
  | ENOTEMPTY -> "enotempty"
  | ELOOP -> "eloop"
  | EBADF -> "ebadf"
  | ESTALE -> "estale"
  | ENOSPC -> "enospc"
  | EIO -> "eio"
  | ETIMEDOUT -> "etimedout"
  | EINVAL -> "einval"
  | EAGAIN -> "eagain"

(* Linux's ESTALE; Unix.error has no portable constructor for it *)
let estale_code = 116

let to_unix = function
  | ENOENT -> Unix.ENOENT
  | EEXIST -> Unix.EEXIST
  | ENOTDIR -> Unix.ENOTDIR
  | EISDIR -> Unix.EISDIR
  | ENOTEMPTY -> Unix.ENOTEMPTY
  | ELOOP -> Unix.ELOOP
  | EBADF -> Unix.EBADF
  | ESTALE -> Unix.EUNKNOWNERR estale_code
  | ENOSPC -> Unix.ENOSPC
  | EIO -> Unix.EIO
  | ETIMEDOUT -> Unix.ETIMEDOUT
  | EINVAL -> Unix.EINVAL
  | EAGAIN -> Unix.EAGAIN

let of_unix = function
  | Unix.ENOENT -> ENOENT
  | Unix.EEXIST -> EEXIST
  | Unix.ENOTDIR -> ENOTDIR
  | Unix.EISDIR -> EISDIR
  | Unix.ENOTEMPTY -> ENOTEMPTY
  | Unix.ELOOP -> ELOOP
  | Unix.EBADF -> EBADF
  | Unix.EUNKNOWNERR n when n = estale_code -> ESTALE
  | Unix.ENOSPC -> ENOSPC
  | Unix.EIO -> EIO
  | Unix.ETIMEDOUT -> ETIMEDOUT
  | Unix.EINVAL -> EINVAL
  | Unix.EAGAIN | Unix.EWOULDBLOCK -> EAGAIN
  | _ -> EIO

exception Error of t

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Capfs_core.Errno.Error " ^ to_string e)
    | _ -> None)

let catch f = try Ok (f ()) with Error e -> Result.Error e
let ok_exn = function Ok v -> v | Result.Error e -> raise (Error e)
let pp ppf t = Format.pp_print_string ppf (to_string t)
