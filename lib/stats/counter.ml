type t = { stat : Stat.t; mutable enabled : bool }

let make stat = { stat; enabled = true }
let null = { stat = Stat.scalar "null"; enabled = false }
let record t x = if t.enabled then Stat.record t.stat x
let incr t = record t 1.0
let stat t = t.stat
let is_enabled t = t.enabled
let set_enabled t on = t.enabled <- on
let name t = Stat.name t.stat
