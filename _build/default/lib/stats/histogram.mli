(** Bucketed histograms.

    Patsy's plug-in statistics print histograms of disk-queue sizes,
    rotational delays and operation latencies. Two bucketing schemes are
    provided: fixed-width linear buckets and logarithmic buckets (each
    bucket boundary a constant factor apart), the latter suited to latency
    distributions spanning microseconds to seconds. *)

type t

(** [linear ~lo ~hi ~buckets] divides [[lo, hi)] into [buckets] equal
    buckets. Observations outside the range land in underflow/overflow
    buckets. Raises [Invalid_argument] if [hi <= lo] or [buckets < 1]. *)
val linear : lo:float -> hi:float -> buckets:int -> t

(** [log ~lo ~hi ~per_decade] covers [[lo, hi)] with logarithmic buckets,
    [per_decade] buckets per factor of ten. [lo] must be positive.
    Observations below [lo] (including non-positive ones) land in the
    underflow bucket. *)
val log : lo:float -> hi:float -> per_decade:int -> t

(** Fold one observation (with optional weight, default 1). *)
val add : ?weight:int -> t -> float -> unit

(** Number of buckets, excluding underflow/overflow. *)
val buckets : t -> int

(** [bounds t i] is the [lo, hi) range of bucket [i]. *)
val bounds : t -> int -> float * float

(** [count t i] is the weight accumulated in bucket [i]. *)
val count : t -> int -> int

val underflow : t -> int
val overflow : t -> int

(** Total weight over all buckets including under/overflow. *)
val total : t -> int

(** [cdf t] lists [(upper_bound, cumulative_fraction)] per bucket; the
    underflow weight is included in every entry and the overflow weight
    makes the final implicit point reach 1. Empty histogram gives []. *)
val cdf : t -> (float * float) list

(** [quantile t q] approximates the [q]-quantile (0 ≤ q ≤ 1) by linear
    interpolation within the containing bucket. Raises [Invalid_argument]
    on an empty histogram or out-of-range [q]. *)
val quantile : t -> float -> float

(** Forget all observations, keeping the bucket structure. *)
val reset : t -> unit

(** [pp ppf t] prints non-empty buckets, one per line, with an ASCII bar. *)
val pp : Format.formatter -> t -> unit
