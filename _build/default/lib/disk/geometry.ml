type t = {
  cylinders : int;
  heads : int;
  sectors_per_track : int;
  sector_bytes : int;
  track_skew : int;
  cylinder_skew : int;
}

type pos = { cylinder : int; head : int; angle : int }

let v ~cylinders ~heads ~sectors_per_track ~sector_bytes ?(track_skew = 0)
    ?(cylinder_skew = 0) () =
  if cylinders < 1 || heads < 1 || sectors_per_track < 1 || sector_bytes < 1
  then invalid_arg "Geometry.v: non-positive dimension";
  {
    cylinders;
    heads;
    sectors_per_track;
    sector_bytes;
    track_skew = track_skew mod sectors_per_track;
    cylinder_skew = cylinder_skew mod sectors_per_track;
  }

let capacity_sectors t = t.cylinders * t.heads * t.sectors_per_track
let capacity_bytes t = capacity_sectors t * t.sector_bytes

(* Total skew of a given track: every track boundary adds track_skew and
   every cylinder boundary adds cylinder_skew on top. *)
let skew_of t ~cylinder ~head =
  let tracks = (cylinder * t.heads) + head in
  ((tracks * t.track_skew) + (cylinder * t.cylinder_skew))
  mod t.sectors_per_track

let pos_of_lba t lba =
  if lba < 0 || lba >= capacity_sectors t then
    invalid_arg (Printf.sprintf "Geometry.pos_of_lba: %d out of range" lba);
  let spt = t.sectors_per_track in
  let track = lba / spt in
  let offset = lba mod spt in
  let cylinder = track / t.heads in
  let head = track mod t.heads in
  let angle = (offset + skew_of t ~cylinder ~head) mod spt in
  { cylinder; head; angle }

let lba_of_pos t { cylinder; head; angle } =
  if
    cylinder < 0 || cylinder >= t.cylinders || head < 0 || head >= t.heads
    || angle < 0
    || angle >= t.sectors_per_track
  then invalid_arg "Geometry.lba_of_pos: position out of range";
  let spt = t.sectors_per_track in
  let offset = (angle - skew_of t ~cylinder ~head + spt) mod spt in
  (((cylinder * t.heads) + head) * spt) + offset

let cylinder_of_lba t lba =
  if lba < 0 || lba >= capacity_sectors t then
    invalid_arg "Geometry.cylinder_of_lba: out of range";
  lba / (t.sectors_per_track * t.heads)
