lib/layout/sim_layout.ml: Capfs_disk Capfs_sched Capfs_stats Hashtbl Inode Layout List
