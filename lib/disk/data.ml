type buf =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = Real of bytes | Sim of int | Gather of gather | Slice of slice
and gather = { g_total : int; g_segs : (int * t) list }
and slice = { s_buf : buf; s_off : int; s_len : int; s_cell : cell option }
and cell = { c_slot : int; mutable c_rc : int; c_free : cell -> unit }

let real n =
  if n < 0 then invalid_arg "Data.real: negative length";
  Real (Bytes.make n '\000')

let sim n =
  if n < 0 then invalid_arg "Data.sim: negative length";
  Sim n

let of_string s = Real (Bytes.of_string s)

let length = function
  | Real b -> Bytes.length b
  | Sim n -> n
  | Gather g -> g.g_total
  | Slice s -> s.s_len

let rec is_real = function
  | Real _ | Slice _ -> true
  | Sim _ -> false
  | Gather g -> List.for_all (fun (_, s) -> is_real s) g.g_segs

(* {2 Reference counting}

   Only arena-backed slices carry a cell; everything else is managed by
   the GC and these are no-ops. A component that buffers a payload past
   the call that handed it over (the LFS open segment, a flush snapshot
   in flight) must [retain] it and [release] it when done; the owner of
   record (the cache) releases when the block leaves the cache. [sub]
   returns a {e borrowed} view sharing the cell without a count. *)

let rec retain = function
  | Slice { s_cell = Some c; _ } -> c.c_rc <- c.c_rc + 1
  | Gather g -> List.iter (fun (_, s) -> retain s) g.g_segs
  | Real _ | Sim _ | Slice { s_cell = None; _ } -> ()

let rec release = function
  | Slice { s_cell = Some c; _ } ->
    if c.c_rc > 0 then begin
      c.c_rc <- c.c_rc - 1;
      if c.c_rc = 0 then c.c_free c
    end
  | Gather g -> List.iter (fun (_, s) -> release s) g.g_segs
  | Real _ | Sim _ | Slice { s_cell = None; _ } -> ()

(* byte <-> bigarray copies: the stdlib has no blit between [bytes] and
   a char bigarray, so these loop; [ba_blit] between two slabs uses the
   Bigarray primitive (memmove under the hood) *)

let ba_to_bytes src soff dst doff len =
  for i = 0 to len - 1 do
    Bytes.unsafe_set dst (doff + i) (Bigarray.Array1.unsafe_get src (soff + i))
  done

let ba_of_bytes src soff dst doff len =
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set dst (doff + i) (Bytes.unsafe_get src (soff + i))
  done

let ba_blit src soff dst doff len =
  if len > 0 then
    Bigarray.Array1.(blit (sub src soff len) (sub dst doff len))

let ba_fill_zero dst doff len =
  if len > 0 then Bigarray.Array1.(fill (sub dst doff len) '\000')

(* Build a scatter-gather list from payloads laid end to end. Nested
   gathers are flattened, zero-length segments dropped, and degenerate
   results normalised (no segments -> [Sim 0], one segment -> that
   segment, all-simulated -> [Sim total]), so a [Gather] value always
   holds >= 2 segments and at least one real buffer. *)
let gather ts =
  let rec flatten off acc = function
    | [] -> (off, acc)
    | t :: rest -> (
      match t with
      | Gather g ->
        let acc =
          List.fold_left (fun acc (o, s) -> (off + o, s) :: acc) acc g.g_segs
        in
        flatten (off + g.g_total) acc rest
      | (Real _ | Sim _ | Slice _) as s ->
        flatten (off + length s) ((off, s) :: acc) rest)
  in
  let total, rev = flatten 0 [] ts in
  let segs = List.filter (fun (_, s) -> length s > 0) (List.rev rev) in
  match segs with
  | [] -> Sim total
  | [ (_, s) ] when length s = total -> s
  | segs ->
    if List.for_all (fun (_, s) -> not (is_real s)) segs then Sim total
    else Gather { g_total = total; g_segs = segs }

let check_range what t pos len =
  if pos < 0 || len < 0 || pos + len > length t then
    invalid_arg (Printf.sprintf "Data.%s: range [%d, %d) of %d" what pos
                   (pos + len) (length t))

let rec sub t ~pos ~len =
  check_range "sub" t pos len;
  match t with
  | Real b -> Real (Bytes.sub b pos len)
  (* a full-range sub of simulated data is the value itself — [Sim] is
     immutable, so sharing is safe, and replay's block-aligned I/O hits
     this on nearly every operation *)
  | Sim n -> if len = n then t else Sim len
  (* a sub of a slice is a narrower view of the same slab cell: no copy,
     no refcount — a borrow, valid while the parent is live *)
  | Slice s -> Slice { s with s_off = s.s_off + pos; s_len = len }
  | Gather g ->
    let lo = pos and hi = pos + len in
    gather
      (List.filter_map
         (fun (o, s) ->
           let s_lo = Stdlib.max lo o and s_hi = Stdlib.min hi (o + length s) in
           if s_hi <= s_lo then None
           else Some (sub s ~pos:(s_lo - o) ~len:(s_hi - s_lo)))
         g.g_segs)

let rec blit ~src ~src_pos ~dst ~dst_pos ~len =
  check_range "blit(src)" src src_pos len;
  check_range "blit(dst)" dst dst_pos len;
  match (src, dst) with
  | Real s, Real d -> Bytes.blit s src_pos d dst_pos len
  | Real s, Slice d -> ba_of_bytes s src_pos d.s_buf (d.s_off + dst_pos) len
  | Slice s, Real d -> ba_to_bytes s.s_buf (s.s_off + src_pos) d dst_pos len
  | Slice s, Slice d ->
    ba_blit s.s_buf (s.s_off + src_pos) d.s_buf (d.s_off + dst_pos) len
  | Sim _, Real d -> Bytes.fill d dst_pos len '\000'
  | Sim _, Slice d -> ba_fill_zero d.s_buf (d.s_off + dst_pos) len
  | Gather g, _ ->
    List.iter
      (fun (o, s) ->
        let lo = Stdlib.max src_pos o
        and hi = Stdlib.min (src_pos + len) (o + length s) in
        if hi > lo then
          blit ~src:s ~src_pos:(lo - o) ~dst ~dst_pos:(dst_pos + lo - src_pos)
            ~len:(hi - lo))
      g.g_segs
  | (Real _ | Sim _ | Slice _), Gather g ->
    List.iter
      (fun (o, s) ->
        let lo = Stdlib.max dst_pos o
        and hi = Stdlib.min (dst_pos + len) (o + length s) in
        if hi > lo then
          blit ~src ~src_pos:(src_pos + lo - dst_pos) ~dst:s ~dst_pos:(lo - o)
            ~len:(hi - lo))
      g.g_segs
  | (Real _ | Sim _ | Slice _), Sim _ -> ()

let concat ts =
  let total = List.fold_left (fun n t -> n + length t) 0 ts in
  if List.for_all is_real ts then begin
    let out = Real (Bytes.create total) in
    let pos = ref 0 in
    List.iter
      (fun t ->
        let len = length t in
        blit ~src:t ~src_pos:0 ~dst:out ~dst_pos:!pos ~len;
        pos := !pos + len)
      ts;
    out
  end
  else Sim total

let to_string t =
  match t with
  | Real b -> Bytes.to_string b
  | Sim n -> String.make n '\000'
  | Gather _ | Slice _ ->
    let n = length t in
    let out = Bytes.make n '\000' in
    blit ~src:t ~src_pos:0 ~dst:(Real out) ~dst_pos:0 ~len:n;
    Bytes.unsafe_to_string out

(* Deep-copy any slab-backed payload onto the GC heap: device stores
   keep sector contents past the request, and must not alias arena
   cells that will be recycled. [Real]/[Sim] pass through untouched. *)
let rec detach t =
  match t with
  | Real _ | Sim _ -> t
  | Slice _ -> Real (Bytes.unsafe_of_string (to_string t))
  | Gather g ->
    if List.exists (fun (_, s) -> match s with Slice _ -> true | _ -> false)
         g.g_segs
    then Gather { g with g_segs = List.map (fun (o, s) -> (o, detach s)) g.g_segs }
    else t

let copy_seconds ~rate_bytes_per_sec len =
  if rate_bytes_per_sec <= 0. then 0.
  else float_of_int len /. rate_bytes_per_sec
