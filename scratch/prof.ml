module Sched = Capfs_sched.Sched
module Experiment = Capfs_patsy.Experiment
module Replay = Capfs_patsy.Replay
module Synth = Capfs_trace.Synth
module Record = Capfs_trace.Record
module Client = Capfs.Client
module Data = Capfs_disk.Data
module Errno = Capfs_core.Errno

let op_index (r : Record.t) =
  match r.Record.op with
  | Record.Open _ -> 0 | Record.Close _ -> 1 | Record.Read _ -> 2
  | Record.Write _ -> 3 | Record.Stat _ -> 4 | Record.Delete _ -> 5
  | Record.Truncate _ -> 6 | Record.Mkdir _ -> 7 | Record.Rmdir _ -> 8

let names = [|"open";"close";"read";"write";"stat";"delete";"truncate";"mkdir";"rmdir"|]

let () =
  let profile = Synth.profile_by_name "sprite-1a" in
  let records = Synth.generate ~seed:1996 ~duration:900. profile in
  let cfg = Experiment.default Experiment.Ups in
  let sched = Sched.create ~seed:42 ~clock:`Virtual () in
  let words = Array.make 9 0. and counts = Array.make 9 0 in
  let overhead = ref 0. in
  ignore
    (Sched.spawn sched (fun () ->
         let client, _ = Experiment.build_instance sched cfg in
         (* measurement overhead: empty bracket *)
         let o0 = Gc.minor_words () in
         for _ = 1 to 10000 do
           let w0 = Gc.minor_words () in
           ignore (Sys.opaque_identity w0)
         done;
         overhead := (Gc.minor_words () -. o0) /. 10000.;
         Array.iter
           (fun (r : Record.t) ->
             let i = op_index r in
             let w0 = Gc.minor_words () in
             (match r.Record.op with
             | Record.Open { path; mode } ->
               let m = match mode with
                 | Record.Read_only -> Client.RO
                 | Record.Write_only -> Client.WO
                 | Record.Read_write -> Client.RW in
               ignore (Client.open_ client ~client:r.Record.client path m)
             | Record.Close { path } ->
               ignore (Client.close_ client ~client:r.Record.client path)
             | Record.Read { path; offset; bytes } ->
               ignore (Client.read client ~client:r.Record.client path ~offset ~bytes)
             | Record.Write { path; offset; bytes } ->
               ignore (Client.write client ~client:r.Record.client path ~offset (Data.sim bytes))
             | Record.Stat { path } -> ignore (Client.stat client path)
             | Record.Delete { path } -> ignore (Client.delete client path)
             | Record.Truncate { path; size } -> ignore (Client.truncate client path ~size)
             | Record.Mkdir { path } -> ignore (Client.mkdir client path)
             | Record.Rmdir { path } -> ignore (Client.rmdir client path));
             words.(i) <- words.(i) +. (Gc.minor_words () -. w0);
             counts.(i) <- counts.(i) + 1)
           records));
  Sched.run sched;
  let total_w = Array.fold_left (+.) 0. words in
  let total_n = Array.fold_left (+) 0 counts in
  Printf.printf "overhead per bracket: %.1f words\n" !overhead;
  Printf.printf "%d records, %.1f words/op overall (uncorrected)\n\n" total_n (total_w /. float_of_int total_n);
  Array.iteri
    (fun i n ->
      if n > 0 then
        Printf.printf "%-9s n=%7d  words/op=%8.1f  share=%5.1f%%\n" names.(i) n
          (words.(i) /. float_of_int n)
          (100. *. words.(i) /. total_w))
    counts
