(* The paper's §5.1 experiment in miniature: replay the same synthetic
   Sprite-like trace under the four write policies and compare mean
   latency, disk traffic and absorbed writes.

   Run: dune exec examples/write_saving.exe *)

module Experiment = Capfs_patsy.Experiment
module Report = Capfs_patsy.Report
module Synth = Capfs_trace.Synth

let () =
  let trace =
    Synth.generate ~seed:1996 ~duration:600.
      { Synth.sprite_1a with Synth.clients = 10; files = 400; dirs = 10 }
  in
  Format.printf "trace: %d records over 600 simulated seconds@.@."
    (List.length trace);
  let outcomes =
    List.map
      (fun policy ->
        let config =
          {
            (Experiment.default policy) with
            Experiment.ndisks = 2;
            nbuses = 1;
            cache_mb = 8;
            nvram_mb = 2;
          }
        in
        Experiment.run config ~trace)
      Experiment.all_policies
  in
  List.iter
    (fun o -> Format.printf "%a@." Report.print_outcome_summary o)
    outcomes;
  Format.printf
    "@.write-saving in action: the UPS policy wrote %d blocks where the \
     30-second-update policy wrote %d.@."
    (List.nth outcomes 1).Experiment.blocks_flushed
    (List.nth outcomes 0).Experiment.blocks_flushed
