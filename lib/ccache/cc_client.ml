module Data = Capfs_disk.Data
module Sched = Capfs_sched.Sched
module Key = Capfs_cache.Block.Key
module Ktbl = Hashtbl.Make (Key)
module Tracer = Capfs_obs.Tracer
module Ev = Capfs_obs.Event

type centry = {
  mutable data : Data.t;
  mutable dirty : bool;
  version : int;
}

type handle = {
  ino : int;
  mutable cacheable : bool;
  mutable size : int;
  version : int;
}

type t = {
  server : Cc_server.t;
  client_id : int;
  cache_blocks : int;
  blocks : centry Ktbl.t; (* packed (ino, idx) -> entry *)
  lru : Key.t Queue.t; (* rough FIFO eviction order, clean only *)
  handles : (string, handle) Hashtbl.t;
  versions : (int, int) Hashtbl.t; (* newest version seen per ino *)
  mutable hits : int;
  mutable remote : int;
}

let block_bytes t = Cc_server.block_bytes t.server

(* {2 Local cache plumbing} *)

let drop_block t key =
  if Ktbl.mem t.blocks key then Ktbl.remove t.blocks key

let drop_file t ino =
  let doomed =
    Ktbl.fold
      (fun key _ acc -> if Key.ino key = ino then key :: acc else acc)
      t.blocks []
  in
  List.iter (drop_block t) doomed

let flush_file_dirty t ino =
  Ktbl.iter
    (fun key e ->
      if Key.ino key = ino && e.dirty then begin
        Cc_server.rpc_write_block t.server ~client_id:t.client_id ~ino
          (Key.index key) e.data;
        e.dirty <- false
      end)
    (Ktbl.copy t.blocks)

let evict_one_clean t =
  let rec go attempts =
    if attempts = 0 then ()
    else
      match Queue.take_opt t.lru with
      | None -> ()
      | Some key -> (
        match Ktbl.find_opt t.blocks key with
        | Some e when not e.dirty -> Ktbl.remove t.blocks key
        | Some _ ->
          Queue.push key t.lru;
          go (attempts - 1)
        | None -> go attempts)
  in
  go (Queue.length t.lru)

let insert t key entry =
  while Ktbl.length t.blocks >= t.cache_blocks do
    let before = Ktbl.length t.blocks in
    evict_one_clean t;
    if Ktbl.length t.blocks = before then
      (* everything dirty: push one file home to make room *)
      match Ktbl.fold (fun key e acc ->
          if e.dirty then Some (Key.ino key) else acc) t.blocks None with
      | Some ino -> flush_file_dirty t ino
      | None -> Ktbl.reset t.blocks
  done;
  Ktbl.replace t.blocks key entry;
  Queue.push key t.lru

(* {2 Server-driven callbacks} *)

let recall t ~ino = flush_file_dirty t ino

let disable t ~ino =
  flush_file_dirty t ino;
  drop_file t ino;
  Hashtbl.iter
    (fun _ h -> if h.ino = ino then h.cacheable <- false)
    t.handles

let attach server ~client_id ~cache_blocks =
  let t =
    {
      server;
      client_id;
      cache_blocks;
      blocks = Ktbl.create 256;
      lru = Queue.create ();
      handles = Hashtbl.create 16;
      versions = Hashtbl.create 64;
      hits = 0;
      remote = 0;
    }
  in
  Cc_server.attach server ~client_id ~recall:(recall t) ~disable:(disable t);
  t

(* {2 The file interface} *)

let open_ t path mode =
  let grant = Cc_server.rpc_open t.server ~client_id:t.client_id path mode in
  (* sequential write sharing: our cached copy may be stale *)
  (match Hashtbl.find_opt t.versions grant.Cc_server.g_ino with
  | Some v when v < grant.Cc_server.g_version -> drop_file t grant.Cc_server.g_ino
  | Some _ | None -> ());
  Hashtbl.replace t.versions grant.Cc_server.g_ino grant.Cc_server.g_version;
  Hashtbl.replace t.handles path
    {
      ino = grant.Cc_server.g_ino;
      cacheable = grant.Cc_server.g_cacheable;
      size = grant.Cc_server.g_size;
      version = grant.Cc_server.g_version;
    }

let handle t path =
  match Hashtbl.find_opt t.handles path with
  | Some h -> h
  | None -> invalid_arg ("Cc_client: not open: " ^ path)

let fetch_block t h idx =
  t.remote <- t.remote + 1;
  Cc_server.rpc_read_block t.server ~client_id:t.client_id ~ino:h.ino idx

let trace_lookup t ~hit ~ino ~index =
  let sched = Cc_server.sched t.server in
  let tr = Sched.tracer sched in
  if Tracer.enabled tr then begin
    let cache = "cc" ^ string_of_int t.client_id in
    Tracer.emit tr ~time:(Sched.now sched)
      (if hit then Ev.Cache_hit { cache; ino; index }
       else Ev.Cache_miss { cache; ino; index })
  end

let read_block t h idx =
  let key = Key.v h.ino idx in
  if not h.cacheable then fetch_block t h idx
  else
    match Ktbl.find_opt t.blocks key with
    | Some e ->
      t.hits <- t.hits + 1;
      trace_lookup t ~hit:true ~ino:h.ino ~index:idx;
      e.data
    | None ->
      trace_lookup t ~hit:false ~ino:h.ino ~index:idx;
      let data = fetch_block t h idx in
      insert t key { data; dirty = false; version = h.version };
      data

let read t path ~offset ~bytes =
  let h = handle t path in
  let bb = block_bytes t in
  let avail = Stdlib.max 0 (h.size - offset) in
  let len = Stdlib.min bytes avail in
  if len = 0 then Data.sim 0
  else begin
    let first = offset / bb and last = (offset + len - 1) / bb in
    let parts =
      List.init (last - first + 1) (fun k ->
          let idx = first + k in
          let block = read_block t h idx in
          let lo = Stdlib.max offset (idx * bb) in
          let hi = Stdlib.min (offset + len) ((idx + 1) * bb) in
          Data.sub block ~pos:(lo - (idx * bb)) ~len:(hi - lo))
    in
    Data.concat parts
  end

let write_block_local t h idx data =
  let key = Key.v h.ino idx in
  match Ktbl.find_opt t.blocks key with
  | Some e ->
    e.data <- data;
    e.dirty <- true
  | None -> insert t key { data; dirty = true; version = h.version }

let write t path ~offset data =
  let h = handle t path in
  let bb = block_bytes t in
  let len = Data.length data in
  if len > 0 then begin
    let first = offset / bb and last = (offset + len - 1) / bb in
    for idx = first to last do
      let lo = Stdlib.max offset (idx * bb) in
      let hi = Stdlib.min (offset + len) ((idx + 1) * bb) in
      let slice = Data.sub data ~pos:(lo - offset) ~len:(hi - lo) in
      if not h.cacheable then
        (* write-through: concurrent write sharing *)
        Cc_server.rpc_write_block t.server ~client_id:t.client_id ~ino:h.ino
          idx slice
      else begin
        (* delayed write: merge into the local block *)
        let at = lo - (idx * bb) in
        let base =
          match Ktbl.find_opt t.blocks (Key.v h.ino idx) with
          | Some e -> e.data
          | None ->
            if at = 0 && hi - lo = bb then Data.sim bb
            else if idx * bb < h.size then read_block t h idx
            else Data.sim bb
        in
        let merged =
          if Data.is_real base || Data.is_real slice then begin
            let out = Data.real bb in
            Data.blit ~src:base ~src_pos:0 ~dst:out ~dst_pos:0
              ~len:(Stdlib.min bb (Data.length base));
            Data.blit ~src:slice ~src_pos:0 ~dst:out ~dst_pos:at
              ~len:(Data.length slice);
            out
          end
          else Data.sim bb
        in
        write_block_local t h idx merged
      end
    done;
    if offset + len > h.size then begin
      h.size <- offset + len;
      Cc_server.rpc_set_size t.server ~client_id:t.client_id ~ino:h.ino
        (offset + len)
    end
  end

let close_ t path =
  let h = handle t path in
  flush_file_dirty t h.ino;
  Cc_server.rpc_close t.server ~client_id:t.client_id ~ino:h.ino;
  Hashtbl.remove t.handles path

let local_hits t = t.hits
let remote_reads t = t.remote
let cached_blocks t = Ktbl.length t.blocks

let dirty_blocks t =
  Ktbl.fold (fun _ e n -> if e.dirty then n + 1 else n) t.blocks 0
