test/test_trace.ml: Alcotest Capfs_trace Coda_format Hashtbl List Printf QCheck QCheck_alcotest Record Sprite_format Synth
