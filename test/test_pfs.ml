(* Tests for the PFS on-line instantiation: real file-backed images and
   the NFS front end. The same framework code runs here over real bytes;
   most tests run PFS under the virtual clock — which is itself the
   paper's central claim in action. *)

module Sched = Capfs_sched.Sched
module Data = Capfs_disk.Data
module Pfs = Capfs_pfs.Pfs
module Nfs = Capfs_pfs.Nfs
module File_blockdev = Capfs_pfs.File_blockdev
module Driver = Capfs_disk.Driver
module Inode = Capfs_layout.Inode

let with_temp_image f =
  let path = Filename.temp_file "capfs_test" ".img" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let in_fibre t f =
  ignore (Sched.spawn t.Pfs.sched ~name:"test" (fun () -> f ()));
  Sched.run t.Pfs.sched

let start_pfs ?(clock = `Virtual) ?(size_mb = 8) path =
  match Pfs.create (Pfs.Config.make ~image:path ~size_mb ~clock ()) with
  | Ok t -> t
  | Error e -> Alcotest.failf "Pfs.create: %s" (Capfs_core.Errno.to_string e)

(* File_blockdev *)

let test_blockdev_roundtrip () =
  with_temp_image (fun path ->
      let s = Sched.create ~clock:`Virtual () in
      let transport =
        File_blockdev.transport s ~path ~size_bytes:(1024 * 1024) ()
      in
      let drv = Driver.create s transport in
      ignore
        (Sched.spawn s (fun () ->
             Driver.write_exn drv ~lba:10 (Data.of_string (String.make 1024 'k'));
             let d = Driver.read_exn drv ~lba:10 ~sectors:2 in
             Alcotest.(check string) "roundtrip" (String.make 1024 'k')
               (Data.to_string d)));
      Sched.run s;
      File_blockdev.close transport;
      (* bytes really are in the file *)
      let ic = open_in_bin path in
      seek_in ic (10 * 512);
      let b = really_input_string ic 1024 in
      close_in ic;
      Alcotest.(check string) "on disk" (String.make 1024 'k') b)

let test_blockdev_persists_across_reopen () =
  with_temp_image (fun path ->
      let () =
        let s = Sched.create ~clock:`Virtual () in
        let tr = File_blockdev.transport s ~path ~size_bytes:(512 * 1024) () in
        let drv = Driver.create s tr in
        ignore
          (Sched.spawn s (fun () ->
               Driver.write_exn drv ~lba:5 (Data.of_string (String.make 512 'p'))));
        Sched.run s;
        File_blockdev.close tr
      in
      let s = Sched.create ~clock:`Virtual () in
      let tr = File_blockdev.transport s ~path ~size_bytes:(512 * 1024) () in
      let drv = Driver.create s tr in
      ignore
        (Sched.spawn s (fun () ->
             let d = Driver.read_exn drv ~lba:5 ~sectors:1 in
             Alcotest.(check string) "persisted" (String.make 512 'p')
               (Data.to_string d)));
      Sched.run s;
      File_blockdev.close tr)

(* Full PFS over a real image *)

let test_pfs_format_and_basic_io () =
  with_temp_image (fun path ->
      let t = start_pfs path in
      in_fibre t (fun () ->
          Capfs.Client.mkdir_exn t.Pfs.client "/docs";
          Capfs.Client.open_exn t.Pfs.client ~client:1 "/docs/a" Capfs.Client.WO;
          Capfs.Client.write_exn t.Pfs.client ~client:1 "/docs/a" ~offset:0
            (Data.of_string "pfs data");
          Capfs.Client.close_exn t.Pfs.client ~client:1 "/docs/a";
          let d =
            Capfs.Client.read_exn t.Pfs.client ~client:1 "/docs/a" ~offset:0
              ~bytes:8
          in
          Alcotest.(check string) "read back" "pfs data" (Data.to_string d));
      Pfs.shutdown t)

let test_pfs_survives_restart () =
  with_temp_image (fun path ->
      let () =
        let t = start_pfs path in
        in_fibre t (fun () ->
            Capfs.Client.mkdir_exn t.Pfs.client "/keep";
            Capfs.Client.open_exn t.Pfs.client ~client:1 "/keep/f"
              Capfs.Client.WO;
            Capfs.Client.write_exn t.Pfs.client ~client:1 "/keep/f" ~offset:0
              (Data.of_string "across restarts");
            Capfs.Client.close_exn t.Pfs.client ~client:1 "/keep/f");
        Pfs.shutdown t
      in
      (* second server process: must mount, not format *)
      let t2 = start_pfs path in
      in_fibre t2 (fun () ->
          let d =
            Capfs.Client.read_exn t2.Pfs.client ~client:1 "/keep/f" ~offset:0
              ~bytes:50
          in
          Alcotest.(check string) "mounted, not formatted" "across restarts"
            (Data.to_string d)))

let test_pfs_real_clock_smoke () =
  (* the same stack under the real clock: a small write/read finishes
     promptly in wall-clock time *)
  with_temp_image (fun path ->
      let t = start_pfs ~clock:`Real path in
      let t0 = Unix.gettimeofday () in
      in_fibre t (fun () ->
          Capfs.Client.open_exn t.Pfs.client ~client:1 "/rt" Capfs.Client.WO;
          Capfs.Client.write_exn t.Pfs.client ~client:1 "/rt" ~offset:0
            (Data.of_string "realtime");
          let d =
            Capfs.Client.read_exn t.Pfs.client ~client:1 "/rt" ~offset:0 ~bytes:8
          in
          Alcotest.(check string) "io" "realtime" (Data.to_string d));
      let elapsed = Unix.gettimeofday () -. t0 in
      if elapsed > 5. then Alcotest.failf "PFS took %.1fs wall-clock" elapsed)

(* NFS front end *)

let nfs_setup path = start_pfs path

let test_nfs_lookup_create_write_read () =
  with_temp_image (fun path ->
      let t = nfs_setup path in
      in_fibre t (fun () ->
          let nfs = t.Pfs.nfs in
          let root = Nfs.mount_root nfs in
          let dir =
            match Nfs.call nfs (Nfs.Mkdir { dir = root; name = "exports" }) with
            | Nfs.Handle (fh, attr) ->
              Alcotest.(check bool) "dir kind" true
                (attr.Nfs.a_kind = Inode.Directory);
              fh
            | _ -> Alcotest.fail "mkdir failed"
          in
          let file =
            match Nfs.call nfs (Nfs.Create { dir; name = "hello" }) with
            | Nfs.Handle (fh, _) -> fh
            | _ -> Alcotest.fail "create failed"
          in
          (match
             Nfs.call nfs
               (Nfs.Write
                  { file; offset = 0; data = Data.of_string "over nfs" })
           with
          | Nfs.Attr a -> Alcotest.(check int) "size" 8 a.Nfs.a_size
          | _ -> Alcotest.fail "write failed");
          (match Nfs.call nfs (Nfs.Read { file; offset = 5; count = 10 }) with
          | Nfs.Payload d ->
            Alcotest.(check string) "read" "nfs" (Data.to_string d)
          | _ -> Alcotest.fail "read failed");
          (match Nfs.call nfs (Nfs.Lookup { dir; name = "hello" }) with
          | Nfs.Handle (fh, _) -> Alcotest.(check int) "lookup" file fh
          | _ -> Alcotest.fail "lookup failed");
          match Nfs.call nfs (Nfs.Lookup { dir; name = "absent" }) with
          | Nfs.Error Nfs.Noent -> ()
          | _ -> Alcotest.fail "expected NOENT"))

let test_nfs_namespace_errors () =
  with_temp_image (fun path ->
      let t = nfs_setup path in
      in_fibre t (fun () ->
          let nfs = t.Pfs.nfs in
          let root = Nfs.mount_root nfs in
          ignore (Nfs.call nfs (Nfs.Mkdir { dir = root; name = "d" }));
          (match Nfs.call nfs (Nfs.Mkdir { dir = root; name = "d" }) with
          | Nfs.Error Nfs.Exist -> ()
          | _ -> Alcotest.fail "expected EXIST");
          let d =
            match Nfs.call nfs (Nfs.Lookup { dir = root; name = "d" }) with
            | Nfs.Handle (fh, _) -> fh
            | _ -> Alcotest.fail "lookup d"
          in
          ignore (Nfs.call nfs (Nfs.Create { dir = d; name = "f" }));
          (match Nfs.call nfs (Nfs.Rmdir { dir = root; name = "d" }) with
          | Nfs.Error Nfs.Notempty -> ()
          | _ -> Alcotest.fail "expected NOTEMPTY");
          (match Nfs.call nfs (Nfs.Remove { dir = root; name = "d" }) with
          | Nfs.Error Nfs.Isdir -> ()
          | _ -> Alcotest.fail "expected ISDIR");
          ignore (Nfs.call nfs (Nfs.Remove { dir = d; name = "f" }));
          match Nfs.call nfs (Nfs.Rmdir { dir = root; name = "d" }) with
          | Nfs.Done -> ()
          | _ -> Alcotest.fail "rmdir should succeed now"))

let test_nfs_rename_readdir_symlink () =
  with_temp_image (fun path ->
      let t = nfs_setup path in
      in_fibre t (fun () ->
          let nfs = t.Pfs.nfs in
          let root = Nfs.mount_root nfs in
          ignore (Nfs.call nfs (Nfs.Create { dir = root; name = "a" }));
          (match
             Nfs.call nfs
               (Nfs.Rename
                  { sdir = root; sname = "a"; ddir = root; dname = "b" })
           with
          | Nfs.Done -> ()
          | _ -> Alcotest.fail "rename failed");
          (match
             Nfs.call nfs
               (Nfs.Symlink { dir = root; name = "l"; target = "/b" })
           with
          | Nfs.Handle (link_fh, _) -> (
            match Nfs.call nfs (Nfs.Readlink link_fh) with
            | Nfs.Link target -> Alcotest.(check string) "target" "/b" target
            | _ -> Alcotest.fail "readlink failed")
          | _ -> Alcotest.fail "symlink failed");
          match Nfs.call nfs (Nfs.Readdir root) with
          | Nfs.Entries entries ->
            Alcotest.(check (list string)) "names" [ "b"; "l" ]
              (List.map fst entries |> List.sort compare)
          | _ -> Alcotest.fail "readdir failed"))

let test_nfs_setattr_truncates_and_commit () =
  with_temp_image (fun path ->
      let t = nfs_setup path in
      in_fibre t (fun () ->
          let nfs = t.Pfs.nfs in
          let root = Nfs.mount_root nfs in
          let file =
            match Nfs.call nfs (Nfs.Create { dir = root; name = "f" }) with
            | Nfs.Handle (fh, _) -> fh
            | _ -> Alcotest.fail "create"
          in
          ignore
            (Nfs.call nfs
               (Nfs.Write
                  { file; offset = 0; data = Data.of_string (String.make 9000 'z') }));
          (match Nfs.call nfs (Nfs.Setattr { file; size = 100 }) with
          | Nfs.Attr a -> Alcotest.(check int) "truncated" 100 a.Nfs.a_size
          | _ -> Alcotest.fail "setattr");
          (match Nfs.call nfs (Nfs.Commit file) with
          | Nfs.Done -> ()
          | _ -> Alcotest.fail "commit");
          match Nfs.call nfs Nfs.Statfs with
          | Nfs.Fsinfo { total_blocks; free_blocks } ->
            if free_blocks <= 0 || free_blocks > total_blocks then
              Alcotest.fail "statfs bounds"
          | _ -> Alcotest.fail "statfs"))

let test_nfs_concurrent_clients () =
  with_temp_image (fun path ->
      let t = nfs_setup path in
      let nfs = t.Pfs.nfs in
      let root = Nfs.mount_root nfs in
      let finished = ref 0 in
      for i = 1 to 8 do
        ignore
          (Sched.spawn t.Pfs.sched (fun () ->
               let name = Printf.sprintf "c%d" i in
               (match Nfs.call nfs (Nfs.Create { dir = root; name }) with
               | Nfs.Handle (fh, _) ->
                 ignore
                   (Nfs.call nfs
                      (Nfs.Write
                         {
                           file = fh;
                           offset = 0;
                           data = Data.of_string (String.make 2048 'w');
                         }))
               | _ -> Alcotest.fail "create");
               incr finished))
      done;
      Sched.run t.Pfs.sched;
      Alcotest.(check int) "all clients served" 8 !finished;
      if Nfs.served nfs < 16 then Alcotest.fail "nfsd served too few calls")

(* Replay a short synthesized trace against PFS over a real backing
   file: the workload generator built for the simulator drives the
   on-line server unchanged, and the volume survives a cold restart. *)
let test_pfs_trace_replay_over_file () =
  with_temp_image (fun path ->
      let records =
        Capfs_trace.Synth.generate ~seed:5 ~duration:30.
          Capfs_trace.Synth.sprite_1a
      in
      let result =
        let t = start_pfs ~size_mb:24 path in
        let r = ref None in
        in_fibre t (fun () ->
            r :=
              Some
                (Capfs_patsy.Replay.run ~speedup:1000. ~real_data:true t.Pfs.client
                   (Capfs_trace.Source.of_array records));
            Capfs_core.Errno.ok_exn (Capfs.Client.sync t.Pfs.client));
        Pfs.shutdown t;
        Option.get !r
      in
      Alcotest.(check bool)
        "replayed some operations" true
        (result.Capfs_patsy.Replay.operations > 0);
      Alcotest.(check int) "no refused operations" 0
        result.Capfs_patsy.Replay.errors;
      (* crash-free close: a cold remount of the image must succeed and
         serve I/O without recovery complaints *)
      let t = start_pfs ~size_mb:24 path in
      in_fibre t (fun () ->
          Capfs.Client.mkdir_exn t.Pfs.client "/after-restart";
          Capfs.Client.open_exn t.Pfs.client ~client:1 "/after-restart/ok"
            Capfs.Client.WO;
          Capfs.Client.write_exn t.Pfs.client ~client:1 "/after-restart/ok"
            ~offset:0 (Data.of_string "alive");
          Capfs.Client.close_exn t.Pfs.client ~client:1 "/after-restart/ok");
      Pfs.shutdown t)

let suite =
  [
    Alcotest.test_case "blockdev roundtrip" `Quick test_blockdev_roundtrip;
    Alcotest.test_case "trace replay over file" `Quick
      test_pfs_trace_replay_over_file;
    Alcotest.test_case "blockdev persists" `Quick
      test_blockdev_persists_across_reopen;
    Alcotest.test_case "pfs format + io" `Quick test_pfs_format_and_basic_io;
    Alcotest.test_case "pfs survives restart" `Quick test_pfs_survives_restart;
    Alcotest.test_case "pfs real clock" `Quick test_pfs_real_clock_smoke;
    Alcotest.test_case "nfs lookup/create/write/read" `Quick
      test_nfs_lookup_create_write_read;
    Alcotest.test_case "nfs namespace errors" `Quick test_nfs_namespace_errors;
    Alcotest.test_case "nfs rename/readdir/symlink" `Quick
      test_nfs_rename_readdir_symlink;
    Alcotest.test_case "nfs setattr/commit/statfs" `Quick
      test_nfs_setattr_truncates_and_commit;
    Alcotest.test_case "nfs concurrent clients" `Quick
      test_nfs_concurrent_clients;
  ]
