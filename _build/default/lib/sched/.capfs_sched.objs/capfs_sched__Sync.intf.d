lib/sched/sync.mli: Sched
