(** The abstract client interface.

    "The abstract client interface provides the basic file-system
    interface. There are functions to open, close, read, write or delete
    a file and there are functions to manipulate an hierarchical
    name-space." Both front ends dispatch onto this module: the NFS
    class in PFS and the trace-replay classes in Patsy.

    Operations identify files by path; [open_]/[close_] maintain a
    per-(client, path) descriptor so traces replay naturally. Reads and
    writes against a path that is not open perform an implicit transient
    open — real traces occasionally miss the open record.

    Errors surface as the {!Namespace} exceptions plus {!Bad_handle}. *)

exception Bad_handle of string

type t

type stat = {
  st_ino : int;
  st_kind : Capfs_layout.Inode.kind;
  st_size : int;
  st_nlink : int;
  st_mtime : float;
  st_atime : float;
}

type open_mode = RO | WO | RW

val create : Fsys.t -> t
val fsys : t -> Fsys.t

(** Underlying components, for front ends that need them. *)
val file_table : t -> File_table.t

val namespace : t -> Namespace.t

(** {2 Namespace operations} *)

val mkdir : t -> string -> unit
val rmdir : t -> string -> unit

(** [create_file t ?kind path] creates an empty file (exclusive). *)
val create_file : t -> ?kind:Capfs_layout.Inode.kind -> string -> unit

val symlink : t -> target:string -> string -> unit
val readlink : t -> string -> string
val rename : t -> src:string -> dst:string -> unit

(** Unlink. Open files live on until their last close. *)
val delete : t -> string -> unit

val readdir : t -> string -> Dir.entry list
val stat : t -> string -> stat
val exists : t -> string -> bool

(** [ensure_dirs t path] creates every missing directory on the way to
    [path]'s parent (mkdir -p for the dirname). *)
val ensure_dirs : t -> string -> unit

(** Simulator aid ("we synthesize those parameters that are missing,
    e.g. … the initial layout of the file-system"): make sure [path]
    exists with at least [size] bytes whose blocks are already "on
    disk" — adopted by the layout at no simulated cost, so subsequent
    reads pay real disk time. Creates missing parents. *)
val synthesize_file :
  t -> ?kind:Capfs_layout.Inode.kind -> string -> size:int -> unit

(** {2 File I/O} *)

(** [open_ t ~client path mode] opens (creating on [WO]/[RW] if
    absent). *)
val open_ : t -> client:int -> string -> open_mode -> unit

val close_ : t -> client:int -> string -> unit

(** [read t ~client path ~offset ~bytes] returns the data read (short
    at EOF). *)
val read :
  t -> client:int -> string -> offset:int -> bytes:int -> Capfs_disk.Data.t

val write :
  t -> client:int -> string -> offset:int -> Capfs_disk.Data.t -> unit

val truncate : t -> string -> size:int -> unit

(** fsync: the file's dirty blocks reach stable storage. *)
val fsync : t -> string -> unit

(** Whole-system sync: cache write-back plus layout checkpoint. *)
val sync : t -> unit

(** Close every descriptor a client still holds (end-of-trace tidy-up). *)
val close_all : t -> client:int -> unit

(** Open-descriptor count (diagnostics). *)
val open_handles : t -> int
