(* The paper's §5.1 experiment in miniature: replay the same synthetic
   Sprite-like trace under the four write policies and compare mean
   latency, disk traffic and absorbed writes. The four experiments are
   independent, so they fan out over a Fleet of domains.

   Run: dune exec examples/write_saving.exe *)

module Experiment = Capfs_patsy.Experiment
module Fleet = Capfs_patsy.Fleet
module Report = Capfs_patsy.Report
module Synth = Capfs_trace.Synth

let gen_records _name =
  Synth.generate ~seed:1996 ~duration:600.
    { Synth.sprite_1a with Synth.clients = 10; files = 400; dirs = 10 }

let gen name = Capfs_trace.Source.of_array ~name (gen_records name)

let () =
  Format.printf "trace: %d records over 600 simulated seconds@.@."
    (Array.length (gen_records "sprite-1a"));
  let config policy =
    {
      (Experiment.default policy) with
      Experiment.ndisks = 2;
      nbuses = 1;
      cache_mb = 8;
      nvram_mb = 2;
    }
  in
  let results =
    Fleet.run_matrix ~config ~gen
      (List.map (fun p -> ("sprite-1a", p)) Experiment.all_policies)
  in
  let outcomes = List.map Fleet.outcome_exn results in
  List.iter
    (fun o -> Format.printf "%a@." Report.print_outcome_summary o)
    outcomes;
  Format.printf
    "@.write-saving in action: the UPS policy wrote %d blocks where the \
     30-second-update policy wrote %d.@."
    (List.nth outcomes 1).Experiment.blocks_flushed
    (List.nth outcomes 0).Experiment.blocks_flushed
