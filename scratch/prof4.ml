module Sched = Capfs_sched.Sched
module Experiment = Capfs_patsy.Experiment
module Synth = Capfs_trace.Synth
module Record = Capfs_trace.Record
module Client = Capfs.Client
module Data = Capfs_disk.Data
module Stats = Capfs_stats

let dispatch client (r : Record.t) =
  match r.Record.op with
  | Record.Open { path; mode } ->
    let m = match mode with
      | Record.Read_only -> Client.RO
      | Record.Write_only -> Client.WO
      | Record.Read_write -> Client.RW in
    ignore (Client.open_ client ~client:r.Record.client path m)
  | Record.Close { path } -> ignore (Client.close_ client ~client:r.Record.client path)
  | Record.Read { path; offset; bytes } ->
    ignore (Client.read client ~client:r.Record.client path ~offset ~bytes)
  | Record.Write { path; offset; bytes } ->
    ignore (Client.write client ~client:r.Record.client path ~offset (Data.sim bytes))
  | Record.Stat { path } -> ignore (Client.stat client path)
  | Record.Delete { path } -> ignore (Client.delete client path)
  | Record.Truncate { path; size } -> ignore (Client.truncate client path ~size)
  | Record.Mkdir { path } -> ignore (Client.mkdir client path)
  | Record.Rmdir { path } -> ignore (Client.rmdir client path)

let variant name f =
  let profile = Synth.profile_by_name "sprite-1a" in
  let records = Synth.generate ~seed:1996 ~duration:900. profile in
  let n = float_of_int (Array.length records) in
  let cfg = Experiment.default Experiment.Ups in
  let sched = Sched.create ~seed:42 ~clock:`Virtual () in
  let w0 = Gc.minor_words () in
  ignore
    (Sched.spawn sched (fun () ->
         let client, _ = Experiment.build_instance sched cfg in
         f sched client records));
  Sched.run sched;
  let w1 = Gc.minor_words () in
  Printf.printf "%-28s %.1f words/op\n" name ((w1 -. w0) /. n)

let () =
  variant "dispatch only" (fun _ client records ->
      Array.iter (fun r -> dispatch client r) records);
  variant "dispatch + pace" (fun sched client records ->
      Array.iter
        (fun (r : Record.t) ->
          let target = r.Record.time in
          let now = Sched.now sched in
          if target > now then Sched.sleep sched (target -. now);
          dispatch client r)
        records);
  variant "dispatch + pace + stats" (fun sched client records ->
      let latency = Stats.Sample_set.create ~cap:200_000 () in
      let windows = Stats.Interval.create ~width:900. () in
      let w = Stats.Welford.create () in
      let t_first = ref infinity and t_last = ref 0. in
      Array.iter
        (fun (r : Record.t) ->
          let target = r.Record.time in
          let now = Sched.now sched in
          if target > now then Sched.sleep sched (target -. now);
          let t0 = Sched.now sched in
          dispatch client r;
          let t1 = Sched.now sched in
          let dt = t1 -. t0 in
          Stats.Sample_set.add latency dt;
          Stats.Interval.add windows ~time:t1 dt;
          t_first := Stdlib.min !t_first t0;
          t_last := Stdlib.max !t_last t1;
          Stats.Welford.add w dt)
        records)
