(** Canonical component instance names.

    Both halves of the framework — Patsy (off-line simulator) and PFS
    (on-line server) — register plug-in statistics under
    [<instance>.<counter>] keys. Differential validation diffs the two
    registries key by key, so the {e instance} part must not drift
    between the halves: a counter the simulator calls ["driver0.wait"]
    must not surface as ["pfsdisk.wait"] on line. Every call site that
    names a cache, disk driver or layout volume goes through this module;
    ad-hoc instance strings are the bug this module exists to prevent
    (see VALIDATION.md). *)

(** The (single) server block cache: ["cache"]. *)
val cache : string

(** [driver d] is disk driver [d]: ["driver0"], ["driver1"], … PFS has
    exactly one, [driver 0]. *)
val driver : int -> string

(** [lfs d] is LFS volume [d]: ["lfs0"], … PFS mounts [lfs 0]. *)
val lfs : int -> string

(** [disk d] is simulated drive [d] (device model; Patsy only). *)
val disk : int -> string

(** [bus b] is simulated SCSI bus [b] (device model; Patsy only). *)
val bus : int -> string

(** [wire c] is a socket data-plane counter: ["wire.frames_sent"],
    ["wire.syscalls"], ["wire.batched"], ["wire.blit_count"],
    ["wire.copied_bytes"] (server listener; never part of the diffval
    contract — wall-clock wire traffic has no simulated twin). *)
val wire : string -> string
