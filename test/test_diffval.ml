(* Tests for the differential sim-vs-real validation harness: the pure
   snapshot-diff core, the tolerance table, and a short end-to-end run
   of the same synthesized trace through Patsy and PFS. *)

module Snapshot = Capfs_stats.Snapshot
module Names = Capfs_stats.Names
module Registry = Capfs_stats.Registry
module Stat = Capfs_stats.Stat
module Synth = Capfs_trace.Synth
module Experiment = Capfs_patsy.Experiment
module Diffval = Capfs_diffval.Diffval

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let snap entries =
  Array.of_list
    (List.map
       (fun (k, c) ->
         {
           Snapshot.e_key = k;
           e_count = c;
           e_total = float_of_int c;
           e_mean = (if c = 0 then 0. else 1.);
         })
       entries)

(* Canonical instance names are what keeps the two halves' registries
   key-compatible. *)
let test_names () =
  Alcotest.(check string) "cache" "cache" Names.cache;
  Alcotest.(check string) "driver" "driver0" (Names.driver 0);
  Alcotest.(check string) "lfs" "lfs3" (Names.lfs 3);
  Alcotest.(check string) "disk" "disk1" (Names.disk 1);
  Alcotest.(check string) "bus" "bus0" (Names.bus 0)

let test_policy_visible () =
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " visible") true (Snapshot.policy_visible k))
    [ "cache.hits"; "driver0.merged"; "lfs0.checkpoint"; "ffs.alloc" ];
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " hidden") false (Snapshot.policy_visible k))
    [ "disk0.seek"; "bus0.transfer"; "replay.latency" ]

let test_snapshot_capture_and_json () =
  let r = Registry.create () in
  let s = Stat.scalar "cache.hits" in
  Registry.register r s;
  Stat.record s 1.;
  Stat.record s 2.;
  let d = Stat.scalar "disk0.seek" in
  Registry.register r d;
  Stat.record d 5.;
  let all = Snapshot.capture r in
  Alcotest.(check (list string))
    "all keys" [ "cache.hits"; "disk0.seek" ] (Snapshot.keys all);
  let vis = Snapshot.capture ~filter:Snapshot.policy_visible r in
  Alcotest.(check (list string)) "filtered" [ "cache.hits" ] (Snapshot.keys vis);
  (match Snapshot.find vis "cache.hits" with
  | None -> Alcotest.fail "cache.hits missing"
  | Some e ->
      Alcotest.(check int) "count" 2 e.Snapshot.e_count;
      Alcotest.(check (float 1e-9)) "total" 3. e.Snapshot.e_total;
      Alcotest.(check (float 1e-9)) "mean" 1.5 e.Snapshot.e_mean);
  let json = Snapshot.to_json vis in
  Alcotest.(check bool)
    "json has key" true
    (contains ~sub:{|"key":"cache.hits"|} json);
  Alcotest.(check bool)
    "json has count" true
    (contains ~sub:{|"count":2|} json)

let test_tolerance_resolution () =
  (match Diffval.tolerance_for [] "cache.hits" with
  | Diffval.Within _ -> ()
  | _ -> Alcotest.fail "hits should be gated Within");
  (match Diffval.tolerance_for [] "driver0.wait" with
  | Diffval.Informational -> ()
  | _ -> Alcotest.fail "wait should be informational");
  match Diffval.tolerance_for [ ("hits", Diffval.Exact) ] "cache.hits" with
  | Diffval.Exact -> ()
  | _ -> Alcotest.fail "override should win"

let test_diff_equal_within_tolerance () =
  let patsy = snap [ ("cache.hits", 100); ("cache.flushed_blocks", 50) ] in
  let pfs = snap [ ("cache.hits", 104); ("cache.flushed_blocks", 52) ] in
  let verdicts, only_p, only_f = Diffval.diff_snapshots ~patsy ~pfs () in
  Alcotest.(check (list string)) "no drift p" [] only_p;
  Alcotest.(check (list string)) "no drift f" [] only_f;
  Alcotest.(check bool) "within tolerance" true (Diffval.verdicts_ok verdicts)

(* A perturbed snapshot must fail the diff: this is the harness's
   self-test — if it passed everything, it would prove nothing. *)
let test_diff_perturbed_fails () =
  let patsy = snap [ ("cache.hits", 100); ("cache.flushed_blocks", 50) ] in
  let pfs = snap [ ("cache.hits", 100); ("cache.flushed_blocks", 200) ] in
  let verdicts, _, _ = Diffval.diff_snapshots ~patsy ~pfs () in
  Alcotest.(check bool) "perturbed fails" false (Diffval.verdicts_ok verdicts);
  let bad =
    List.filter (fun v -> not v.Diffval.v_ok) verdicts |> List.map (fun v -> v.Diffval.v_key)
  in
  Alcotest.(check (list string)) "the right counter" [ "cache.flushed_blocks" ] bad

let test_diff_key_drift_reported () =
  let patsy = snap [ ("cache.hits", 10); ("lfs0.checkpoint", 2) ] in
  let pfs = snap [ ("cache.hits", 10); ("jfs.commits", 4) ] in
  let _, only_p, only_f = Diffval.diff_snapshots ~patsy ~pfs () in
  Alcotest.(check (list string)) "patsy-only" [ "lfs0.checkpoint" ] only_p;
  Alcotest.(check (list string)) "pfs-only" [ "jfs.commits" ] only_f

let test_config ?(policy = Experiment.Nvram_partial) () =
  let d = Diffval.default ~policy () in
  {
    d with
    Diffval.image_mb = 24;
    pfs_clock = `Virtual;
  }

let short_trace () = Synth.generate ~seed:11 ~duration:90. Synth.sprite_1a

(* The tentpole, end to end: same trace, two engines, equal key sets,
   every gated counter within tolerance, both halves fsck-clean. *)
let test_end_to_end_equivalent () =
  let records = short_trace () in
  match
    Diffval.run ~config:(test_config ()) ~trace_name:"unit"
      (Capfs_trace.Source.of_array records)
  with
  | Error e -> Alcotest.failf "harness failure: %s" (Capfs_core.Errno.to_string e)
  | Ok r ->
      Alcotest.(check (list string)) "no patsy-only keys" [] r.Diffval.r_only_patsy;
      Alcotest.(check (list string)) "no pfs-only keys" [] r.Diffval.r_only_pfs;
      Alcotest.(check (list string))
        "identical key sets"
        (Snapshot.keys r.Diffval.r_patsy.Diffval.s_snapshot)
        (Snapshot.keys r.Diffval.r_pfs.Diffval.s_snapshot);
      Alcotest.(check (list string))
        "patsy fsck clean" [] r.Diffval.r_patsy.Diffval.s_fsck_errors;
      Alcotest.(check (list string))
        "pfs fsck clean" [] r.Diffval.r_pfs.Diffval.s_fsck_errors;
      Alcotest.(check bool) "equivalent" true r.Diffval.r_ok;
      (* the JSON report round-trips the verdict *)
      let json = Diffval.to_json r in
      Alcotest.(check bool)
        "json ok flag" true
        (contains ~sub:{|"ok":true|} json);
      Alcotest.(check bool)
        "json has verdicts" true
        (contains ~sub:{|"verdicts":|} json)

(* Deliberately skew one policy parameter in the PFS half only: the
   harness must notice, or it is not validating anything. *)
let test_end_to_end_skew_detected () =
  let records = Synth.generate ~seed:11 ~duration:60. Synth.sprite_1a in
  let skew c = { c with Experiment.seg_blocks = 32 } in
  match
    Diffval.run ~config:(test_config ()) ~skew ~trace_name:"unit-skew"
      (Capfs_trace.Source.of_array records)
  with
  | Error e -> Alcotest.failf "harness failure: %s" (Capfs_core.Errno.to_string e)
  | Ok r ->
      Alcotest.(check bool) "marked skewed" true r.Diffval.r_skewed;
      Alcotest.(check bool) "drift detected" false r.Diffval.r_ok

let test_empty_trace_is_einval () =
  match Diffval.run ~trace_name:"empty" (Capfs_trace.Source.of_array [||]) with
  | Error Capfs_core.Errno.EINVAL -> ()
  | Error e ->
      Alcotest.failf "expected EINVAL, got %s" (Capfs_core.Errno.to_string e)
  | Ok _ -> Alcotest.fail "empty trace must be refused"

let suite =
  [
    Alcotest.test_case "canonical instance names" `Quick test_names;
    Alcotest.test_case "policy-visible filter" `Quick test_policy_visible;
    Alcotest.test_case "snapshot capture and json" `Quick
      test_snapshot_capture_and_json;
    Alcotest.test_case "tolerance resolution" `Quick test_tolerance_resolution;
    Alcotest.test_case "diff within tolerance" `Quick
      test_diff_equal_within_tolerance;
    Alcotest.test_case "perturbed snapshot fails" `Quick
      test_diff_perturbed_fails;
    Alcotest.test_case "key drift reported" `Quick test_diff_key_drift_reported;
    Alcotest.test_case "end-to-end equivalent" `Slow test_end_to_end_equivalent;
    Alcotest.test_case "end-to-end skew detected" `Slow
      test_end_to_end_skew_detected;
    Alcotest.test_case "empty trace refused" `Quick test_empty_trace_is_einval;
  ]
