#!/usr/bin/env python3
"""Lint VALIDATION.md's counter table against the source registries.

The table between the `counter-table:begin`/`end` markers documents every
policy-visible statistic the differential harness compares. This script
re-derives that key list from the component sources (the same
`stat_names` lists the registries are populated from) and fails when the
two drift: a counter added in code must be triaged into the table (and
into `Diffval.default_tolerances`), a counter removed must leave it.

Run from the repository root:  python3 tools/check_validation_md.py
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def ocaml_string_list(text, anchor):
    """Extract the string-literal list assigned right after `anchor`."""
    at = text.index(anchor)
    block = text[at : text.index("]", at)]
    return re.findall(r'"([a-z_]+)"', block)


def source_keys():
    keys = []

    cache = (ROOT / "lib/cache/cache.ml").read_text()
    for name in ocaml_string_list(cache, "let stat_names"):
        keys.append(("cache." + name, "lib/cache/cache.ml"))

    driver = (ROOT / "lib/disk/driver.ml").read_text()
    # driver registers the six listed names plus queue_len (histogram)
    names = ocaml_string_list(
        driver, '"wait"; "response"; "retries"; "io_errors"'
    )
    for name in names + ["queue_len"]:
        keys.append(("driverN." + name, "lib/disk/driver.ml"))

    lfs = (ROOT / "lib/layout/lfs.ml").read_text()
    for name in ocaml_string_list(lfs, "let stat_names"):
        keys.append(("lfsN." + name, "lib/layout/lfs.ml"))

    # single-counter components register `<instance>.<counter>` directly
    for path, key in [
        ("lib/layout/ffs.ml", "ffs.alloc"),
        ("lib/layout/jfs.ml", "jfs.commits"),
        ("lib/layout/sim_layout.ml", "simlayout.guesses"),
    ]:
        suffix = key.split(".", 1)[1]
        if f'".{suffix}"' not in (ROOT / path).read_text():
            sys.exit(f"{path}: expected a registration of .{suffix}")
        keys.append((key, path))

    return keys


def table_rows():
    md = (ROOT / "VALIDATION.md").read_text()
    m = re.search(
        r"<!-- counter-table:begin -->\n(.*?)<!-- counter-table:end -->",
        md,
        re.S,
    )
    if not m:
        sys.exit("VALIDATION.md: counter-table markers not found")
    rows = {}
    for line in m.group(1).splitlines():
        cells = [c.strip() for c in line.strip().strip("|").split("|")]
        if len(cells) >= 2 and cells[0].startswith("`") and cells[0] != "`key`":
            key = cells[0].strip("`")
            rows[key] = cells[1].strip("`")
    return rows


def main():
    src = source_keys()
    doc = table_rows()
    src_keys = {k for k, _ in src}
    failures = []

    for key, path in src:
        if key not in doc:
            failures.append(f"{path} registers {key}: missing from VALIDATION.md")
        elif doc[key] != path:
            failures.append(
                f"{key}: VALIDATION.md credits {doc[key]}, source says {path}"
            )
    for key in doc:
        if key not in src_keys:
            failures.append(f"VALIDATION.md documents {key}: not found in source")

    if failures:
        print("\n".join(failures))
        sys.exit(1)
    print(f"ok: {len(src)} counters, table and registries agree")


if __name__ == "__main__":
    main()
