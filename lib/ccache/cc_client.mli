(** The caching client (workstation) half of Sprite-style consistency.

    Keeps a bounded block cache of file data fetched from the server,
    tagged with the file version granted at open. Reads hit the local
    cache when the server said the file is cacheable; writes are
    buffered locally (delayed write-back) and pushed home on close — or
    earlier, when the server recalls them because another client wants
    the file. When the server disables caching (concurrent write
    sharing), every operation goes through the wire. *)

type t

(** [attach server ~client_id ~cache_blocks] registers the workstation
    with the server's consistency engine. *)
val attach : Cc_server.t -> client_id:int -> cache_blocks:int -> t

(** [open_ t path mode] opens through the server's consistency engine.
    The returned grant (applied internally) invalidates a stale cached
    copy — the granted version is newer — and records whether the file
    is cacheable at all; a write-open may trigger recalls or cache
    disabling on {e other} clients before it returns. *)
val open_ : t -> string -> Cc_server.open_mode -> unit

(** [read t path ~offset ~bytes] — through the local cache when
    allowed. The file must be open by this client. *)
val read : t -> string -> offset:int -> bytes:int -> Capfs_disk.Data.t

(** [write t path ~offset data] buffers into the local cache (delayed
    write-back) when the file is cacheable; dirty blocks go home on
    {!close_}, on a server recall, or when the local cache is full and
    a whole file is pushed to make room. Uncacheable files write
    through to the server block by block. *)
val write : t -> string -> offset:int -> Capfs_disk.Data.t -> unit

(** Push dirty blocks home and release the descriptor. *)
val close_ : t -> string -> unit

(** {2 Introspection} *)

(** Block reads served from the local cache — the traffic client
    caching exists to eliminate. *)
val local_hits : t -> int

(** Block reads that went over the wire to the server. *)
val remote_reads : t -> int

(** Blocks currently cached locally (clean + dirty). *)
val cached_blocks : t -> int

(** Locally buffered blocks not yet written back to the server. *)
val dirty_blocks : t -> int
