type mode = Read_only | Write_only | Read_write

type op =
  | Open of { path : string; mode : mode }
  | Close of { path : string }
  | Read of { path : string; offset : int; bytes : int }
  | Write of { path : string; offset : int; bytes : int }
  | Stat of { path : string }
  | Delete of { path : string }
  | Truncate of { path : string; size : int }
  | Mkdir of { path : string }
  | Rmdir of { path : string }

type t = { time : float; client : int; op : op }

let no_time = -1.
let has_time t = t.time >= 0.

let path t =
  match t.op with
  | Open { path; _ }
  | Close { path }
  | Read { path; _ }
  | Write { path; _ }
  | Stat { path }
  | Delete { path }
  | Truncate { path; _ }
  | Mkdir { path }
  | Rmdir { path } -> path

let op_name t =
  match t.op with
  | Open _ -> "open"
  | Close _ -> "close"
  | Read _ -> "read"
  | Write _ -> "write"
  | Stat _ -> "stat"
  | Delete _ -> "delete"
  | Truncate _ -> "truncate"
  | Mkdir _ -> "mkdir"
  | Rmdir _ -> "rmdir"

let bytes_moved t =
  match t.op with
  | Read { bytes; _ } | Write { bytes; _ } -> bytes
  | Open _ | Close _ | Stat _ | Delete _ | Truncate _ | Mkdir _ | Rmdir _ -> 0

let pp ppf t =
  let time_str = if has_time t then Printf.sprintf "%.6f" t.time else "?" in
  match t.op with
  | Open { path; mode } ->
    Format.fprintf ppf "%s c%d open %s %s" time_str t.client path
      (match mode with
      | Read_only -> "r"
      | Write_only -> "w"
      | Read_write -> "rw")
  | Close { path } -> Format.fprintf ppf "%s c%d close %s" time_str t.client path
  | Read { path; offset; bytes } ->
    Format.fprintf ppf "%s c%d read %s %d %d" time_str t.client path offset bytes
  | Write { path; offset; bytes } ->
    Format.fprintf ppf "%s c%d write %s %d %d" time_str t.client path offset
      bytes
  | Stat { path } -> Format.fprintf ppf "%s c%d stat %s" time_str t.client path
  | Delete { path } ->
    Format.fprintf ppf "%s c%d delete %s" time_str t.client path
  | Truncate { path; size } ->
    Format.fprintf ppf "%s c%d truncate %s %d" time_str t.client path size
  | Mkdir { path } -> Format.fprintf ppf "%s c%d mkdir %s" time_str t.client path
  | Rmdir { path } -> Format.fprintf ppf "%s c%d rmdir %s" time_str t.client path
