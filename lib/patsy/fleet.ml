(* Domain-pool experiment runner. See fleet.mli for the isolation
   rules; the implementation is a work-stealing-free fixed pool: an
   atomic counter hands out job indices, each worker writes only its
   own result slots, and [Pool.join] publishes them to the caller. *)

module Errno = Capfs_core.Errno

module Pool = struct
  (* Long-lived pinned worker domains. Each worker owns a one-slot job
     channel guarded by a host mutex: [run_on] is rejected while the
     previous job on that worker is still running, so a job never
     migrates and two jobs never share a domain — the invariant both
     the experiment fleet (per-domain GC accounting) and the PFS server
     (one shard scheduler per domain) rely on. *)
  type slot = Idle | Job of (unit -> unit) | Quit

  type worker = {
    mutable slot : slot;
    mutable busy : bool;
    lock : Mutex.t;
    cond : Condition.t;
    mutable domain : unit Domain.t option;
  }

  type t = { workers : worker array }

  let worker_loop w () =
    let rec next () =
      Mutex.lock w.lock;
      let rec wait () =
        match w.slot with
        | Idle ->
          Condition.wait w.cond w.lock;
          wait ()
        | Job f ->
          w.slot <- Idle;
          Mutex.unlock w.lock;
          Some f
        | Quit ->
          Mutex.unlock w.lock;
          None
      in
      match wait () with
      | None -> ()
      | Some f ->
        (* a job that raises poisons nothing: the exception is the
           submitter's problem (captured by the closure), never the
           pool's — mirror run_jobs, where workers classify their own
           failures *)
        (try f ()
         with _ -> ());
        Mutex.lock w.lock;
        w.busy <- false;
        Condition.broadcast w.cond;
        Mutex.unlock w.lock;
        next ()
    in
    next ()

  let create ~size =
    if size < 1 then invalid_arg "Fleet.Pool.create: size < 1";
    let workers =
      Array.init size (fun _ ->
          {
            slot = Idle;
            busy = false;
            lock = Mutex.create ();
            cond = Condition.create ();
            domain = None;
          })
    in
    let t = { workers } in
    Array.iter (fun w -> w.domain <- Some (Domain.spawn (worker_loop w))) workers;
    t

  let size t = Array.length t.workers

  let run_on t i f =
    let w = t.workers.(i) in
    Mutex.lock w.lock;
    let ok = (not w.busy) && w.slot = Idle in
    if ok then begin
      w.busy <- true;
      w.slot <- Job f;
      Condition.broadcast w.cond
    end;
    Mutex.unlock w.lock;
    if not ok then invalid_arg "Fleet.Pool.run_on: worker busy"

  let join_worker w =
    Mutex.lock w.lock;
    while w.busy || w.slot <> Idle do
      Condition.wait w.cond w.lock
    done;
    Mutex.unlock w.lock

  let join t = Array.iter join_worker t.workers

  let shutdown t =
    join t;
    Array.iter
      (fun w ->
        Mutex.lock w.lock;
        w.slot <- Quit;
        Condition.broadcast w.cond;
        Mutex.unlock w.lock)
      t.workers;
    Array.iter
      (fun w ->
        match w.domain with
        | Some d ->
          Domain.join d;
          w.domain <- None
        | None -> ())
      t.workers
end

type job = {
  label : string;
  trace : string;
  config : Experiment.config;
}

type failure = Failed of Errno.t | Crashed of exn

let pp_failure ppf = function
  | Failed e -> Format.fprintf ppf "failed: %a" Errno.pp e
  | Crashed e -> Format.fprintf ppf "crashed: %s" (Printexc.to_string e)

(* the one place a worker classifies what went wrong: typed file-system
   errors stay typed, anything else is a crash *)
let failure_of_exn = function
  | Errno.Error e -> Failed e
  | e -> Crashed e

type job_result = {
  job : job;
  result : (Experiment.outcome, failure) result;
  wall_s : float;
  minor_words : float;
  promoted_words : float;
  major_collections : int;
  worker : int;
}

let default_jobs () = Domain.recommended_domain_count ()

let matrix_label ~trace policy = trace ^ "/" ^ Experiment.policy_name policy

let run_jobs ?(jobs = default_jobs ()) ~gen jl =
  let table = Array.of_list jl in
  let n = Array.length table in
  let jobs = Stdlib.max 1 (Stdlib.min jobs n) in
  let results : job_result option array = Array.make n None in
  let next = Atomic.make 0 in
  let worker w () =
    (* per-worker trace memo: the same trace name may back several
       policies; regenerating it in every worker keeps the generator's
       PRNG private to the domain that uses it *)
    let traces : (string, Capfs_trace.Source.t) Hashtbl.t =
      Hashtbl.create 8
    in
    let trace_of name =
      match Hashtbl.find_opt traces name with
      | Some t -> t
      | None ->
        let t = gen name in
        (* force lazily generated arrays now, so generation is billed
           here (outside the GC window) and not to the first experiment;
           cursor-backed sources stay unmaterialized *)
        ignore (Capfs_trace.Source.as_array t : Capfs_trace.Record.t array option);
        Hashtbl.replace traces name t;
        t
    in
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let job = table.(i) in
        let t0 = Unix.gettimeofday () in
        (* GC counters are per-domain in OCaml 5, and a worker runs one
           job at a time, so quick_stat deltas around the experiment
           (trace generation excluded: it is memoized, so it would bill
           only the first job to use each trace) are exact. *)
        let result, minor_words, promoted_words, major_collections =
          match trace_of job.trace with
          | trace -> (
            let g0 = Gc.quick_stat () in
            match Experiment.run job.config ~trace with
            | o ->
              let g1 = Gc.quick_stat () in
              ( Ok o,
                g1.Gc.minor_words -. g0.Gc.minor_words,
                g1.Gc.promoted_words -. g0.Gc.promoted_words,
                g1.Gc.major_collections - g0.Gc.major_collections )
            | exception e -> (Error (failure_of_exn e), 0., 0., 0))
          | exception e -> (Error (failure_of_exn e), 0., 0., 0)
        in
        let wall_s = Unix.gettimeofday () -. t0 in
        (* each slot is written by exactly one worker; Domain.join
           below publishes the writes to the caller *)
        results.(i) <-
          Some
            {
              job;
              result;
              wall_s;
              minor_words;
              promoted_words;
              major_collections;
              worker = w;
            };
        loop ()
      end
    in
    loop ()
  in
  if jobs = 1 then worker 0 ()
  else begin
    (* the fleet is a one-shot use of the long-lived pool: pin worker w
       of the job loop to pool worker w, then retire the domains *)
    let pool = Pool.create ~size:jobs in
    let failed = Atomic.make None in
    for w = 0 to jobs - 1 do
      Pool.run_on pool w (fun () ->
          try worker w ()
          with e -> Atomic.set failed (Some e))
    done;
    Pool.shutdown pool;
    match Atomic.get failed with Some e -> raise e | None -> ()
  end;
  Array.to_list results
  |> List.mapi (fun i r ->
         match r with
         | Some r -> r
         | None ->
           (* unreachable: every index below [n] is claimed exactly once *)
           failwith
             (Printf.sprintf "Fleet.run_jobs: job %d produced no result" i))

let run_matrix ?jobs ?(config = Experiment.default) ~gen pairs =
  run_jobs ?jobs ~gen
    (List.map
       (fun (trace, policy) ->
         { label = matrix_label ~trace policy; trace; config = config policy })
       pairs)

let outcome_exn r =
  match r.result with
  | Ok o -> o
  | Error (Failed e) -> raise (Errno.Error e)
  | Error (Crashed e) -> raise e

let failures results =
  List.filter_map
    (fun r -> match r.result with Ok _ -> None | Error e -> Some (r.job, e))
    results

let merged_events results =
  let streams =
    List.mapi
      (fun i r ->
        match r.result with
        | Ok o -> List.map (fun ev -> (i, ev)) o.Experiment.events
        | Error _ -> [])
      results
  in
  let all = List.concat streams in
  (* each job's virtual clock starts at 0, so (time, stream, seq) gives a
     deterministic interleaving whatever the worker count was *)
  List.stable_sort
    (fun (ia, a) (ib, b) ->
      let c = Float.compare a.Capfs_obs.Event.time b.Capfs_obs.Event.time in
      if c <> 0 then c
      else
        let c = Int.compare ia ib in
        if c <> 0 then c
        else Int.compare a.Capfs_obs.Event.seq b.Capfs_obs.Event.seq)
    all
