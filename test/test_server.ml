(* The sharded multi-client server: wire codecs, configuration
   grammar, routing, admission control and the merged statistics
   report. Everything here runs under the virtual clock through
   [Server.call]/[Server.drive] — the same execution path the socket
   listener uses under the real clock, exercised deterministically. *)

module Pfs = Capfs_pfs.Pfs
module Server = Capfs_pfs.Server
module Wire = Capfs_pfs.Wire
module Errno = Capfs_core.Errno
module Data = Capfs_disk.Data

let with_temp_base shards f =
  let path = Filename.temp_file "capfs_srv" ".img" in
  let images = List.init shards (fun i -> Printf.sprintf "%s.shard%d" path i) in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        (path :: images))
    (fun () -> f path)

let server_config ?(shards = 2) ?(admission = 0) path =
  Pfs.Config.make ~image:path ~size_mb:8 ~clock:`Virtual ~shards ~admission
    ~workers:0 ()

let with_server ?shards ?admission path f =
  match Server.create (server_config ?shards ?admission path) with
  | Error e -> Alcotest.failf "Server.create: %s" (Errno.to_string e)
  | Ok t -> Fun.protect ~finally:(fun () -> Server.shutdown t) (fun () -> f t)

let check_reply msg expected actual =
  if expected <> actual then
    Alcotest.failf "%s: expected %a, got %a" msg Wire.pp_reply expected
      Wire.pp_reply actual

(* Wire codecs *)

let roundtrip_request req =
  let opcode, payload = Wire.encode_request req in
  match Wire.decode_request ~opcode payload with
  | Ok req' ->
    if req <> req' then Alcotest.failf "request did not survive the wire"
  | Error e -> Alcotest.failf "decode_request: %s" (Errno.to_string e)

let test_wire_request_roundtrip () =
  List.iter roundtrip_request
    [
      Wire.Open { client = 7; path = "/a/b"; mode = Capfs.Client.RO };
      Wire.Open { client = 1; path = "/w"; mode = Capfs.Client.WO };
      Wire.Open { client = 2; path = "/rw"; mode = Capfs.Client.RW };
      Wire.Close { client = 7; path = "/a/b" };
      Wire.Read { client = 3; path = "/f"; offset = 4096; count = 8192 };
      Wire.Write { client = 3; path = "/f"; offset = 0; data = "payload tail" };
      Wire.Write { client = 3; path = "/empty"; offset = 12; data = "" };
      Wire.Mkdir "/dir";
      Wire.Delete "/dir/f";
      Wire.Stat "/dir";
      Wire.Sync;
      Wire.Stats;
      Wire.Shutdown;
      Wire.Open_grant { client = 4; path = "/shared/f"; mode = Capfs.Client.RO };
      Wire.Open_grant { client = 5; path = "/w"; mode = Capfs.Client.RW };
      Wire.Writeback
        {
          client = 4;
          path = "/shared/f";
          size = 8192;
          close = true;
          blocks = [ (0, String.make 4096 'a'); (4096, String.make 4096 'b') ];
        };
      Wire.Writeback
        { client = 4; path = "/shared/f"; size = 0; close = false; blocks = [] };
    ]

let roundtrip_reply ~opcode reply =
  let payload = Wire.encode_reply reply in
  match Wire.decode_reply ~opcode payload with
  | Ok reply' -> check_reply "reply did not survive the wire" reply reply'
  | Error e -> Alcotest.failf "decode_reply: %s" (Errno.to_string e)

let test_wire_reply_roundtrip () =
  let op req = fst (Wire.encode_request req) in
  roundtrip_reply ~opcode:(op Wire.Sync) Wire.Ok_unit;
  roundtrip_reply
    ~opcode:
      (op (Wire.Read { client = 1; path = "/f"; offset = 0; count = 4 }))
    (Wire.Ok_data (Data.of_string "data"));
  roundtrip_reply ~opcode:(op (Wire.Stat "/f"))
    (Wire.Ok_stat { Wire.size = 12345; is_dir = false });
  roundtrip_reply ~opcode:(op (Wire.Stat "/d"))
    (Wire.Ok_stat { Wire.size = 0; is_dir = true });
  roundtrip_reply ~opcode:(op Wire.Stats) (Wire.Ok_stats "{\"shards\":2}");
  roundtrip_reply ~opcode:(op Wire.Sync) (Wire.Err Errno.EAGAIN);
  roundtrip_reply ~opcode:(op (Wire.Mkdir "/d")) (Wire.Err Errno.ENOENT);
  roundtrip_reply
    ~opcode:
      (op (Wire.Open_grant { client = 1; path = "/f"; mode = Capfs.Client.RO }))
    (Wire.Ok_grant
       { Wire.version = 7; cacheable = true; lease_s = 2.5; size = 40960 });
  roundtrip_reply
    ~opcode:
      (op (Wire.Open_grant { client = 1; path = "/f"; mode = Capfs.Client.WO }))
    (Wire.Ok_grant
       { Wire.version = 1; cacheable = false; lease_s = 0.25; size = 0 })

let test_wire_push_roundtrip () =
  let p = Wire.Invalidate { path = "/shared/doc"; version = 42 } in
  let opcode, payload = Wire.encode_push p in
  match Wire.decode_push ~opcode payload with
  | Ok p' ->
    if p <> p' then Alcotest.fail "push did not survive the wire"
  | Error e -> Alcotest.failf "decode_push: %s" (Errno.to_string e)

let test_wire_batch_roundtrip () =
  let entries =
    [
      (1, 3, "first payload");
      (2, 4, "");
      (Wire.push_req_id, 13, String.make 5000 'z');
    ]
  in
  let s = Wire.Batch.encode entries in
  Alcotest.(check int)
    "encoded_bytes" (String.length s)
    (Wire.Batch.encoded_bytes entries);
  (match Wire.Batch.decode s with
  | Ok entries' ->
    if entries <> entries' then Alcotest.fail "batch did not survive the wire"
  | Error e -> Alcotest.failf "Batch.decode: %s" (Errno.to_string e));
  match Wire.Batch.decode "" with
  | Ok [] -> ()
  | Ok _ | Error _ -> Alcotest.fail "empty batch must decode to no entries"

let test_wire_batch_errors () =
  let s = Wire.Batch.encode [ (9, 3, "payload") ] in
  (* truncated entry header *)
  (match Wire.Batch.decode (String.sub s 0 (Wire.Batch.entry_header - 1)) with
  | Error Errno.EINVAL -> ()
  | Ok _ | Error _ -> Alcotest.fail "truncated header must be EINVAL");
  (* declared payload length runs past the container *)
  (match Wire.Batch.decode (String.sub s 0 (String.length s - 2)) with
  | Error Errno.EINVAL -> ()
  | Ok _ | Error _ -> Alcotest.fail "overrunning payload must be EINVAL");
  (* an oversized length field must not be trusted *)
  let b = Bytes.of_string s in
  Bytes.set_int32_le b 6 0x7fffffffl;
  match Wire.Batch.decode (Bytes.to_string b) with
  | Error Errno.EINVAL -> ()
  | Ok _ | Error _ -> Alcotest.fail "oversized length must be EINVAL"

let test_wire_decode_errors () =
  (match Wire.decode_request ~opcode:0xFF "" with
  | Error Errno.EINVAL -> ()
  | Ok _ | Error _ -> Alcotest.fail "unknown opcode must be EINVAL");
  let opcode, payload =
    Wire.encode_request
      (Wire.Open { client = 1; path = "/x"; mode = Capfs.Client.RO })
  in
  (match
     Wire.decode_request ~opcode
       (String.sub payload 0 (String.length payload - 1))
   with
  | Error Errno.EINVAL -> ()
  | Ok _ | Error _ -> Alcotest.fail "truncated payload must be EINVAL");
  match Wire.decode_reply ~opcode:(fst (Wire.encode_request Wire.Sync)) "" with
  | Error Errno.EINVAL -> ()
  | Ok _ | Error _ -> Alcotest.fail "empty reply must be EINVAL"

(* Config grammar *)

let test_config_of_args_roundtrip () =
  let args =
    [
      "size-mb=32";
      "cache-mb=4";
      "trigger=periodic:10:2";
      "scope=single-block";
      "cleaner=greedy";
      "shards=3";
      "admission=16";
      "clock=virtual";
      "coalesce=off";
    ]
  in
  match Pfs.Config.of_args ~base:(Pfs.Config.make ~image:"/tmp/x.img" ()) args
  with
  | Error e -> Alcotest.failf "of_args: %s" (Errno.to_string e)
  | Ok c ->
    Alcotest.(check int) "size" 32 c.Pfs.Config.size_mb;
    Alcotest.(check int) "cache" 4 c.Pfs.Config.cache_mb;
    Alcotest.(check int) "shards" 3 c.Pfs.Config.shards;
    Alcotest.(check int) "admission" 16 c.Pfs.Config.admission;
    Alcotest.(check bool) "coalesce" false c.Pfs.Config.coalesce;
    (match c.Pfs.Config.trigger with
    | Capfs_cache.Cache.Periodic { max_age; scan_interval } ->
      Alcotest.(check (float 1e-9)) "max_age" 10. max_age;
      Alcotest.(check (float 1e-9)) "scan" 2. scan_interval
    | _ -> Alcotest.fail "trigger not periodic");
    Alcotest.(check bool) "scope" true (c.Pfs.Config.scope = `Single_block);
    Alcotest.(check bool) "cleaner" true
      (c.Pfs.Config.cleaner = Capfs_layout.Lfs.Greedy)

let expect_einval what = function
  | Error Errno.EINVAL -> ()
  | Ok _ -> Alcotest.failf "%s: accepted" what
  | Error e -> Alcotest.failf "%s: %s" what (Errno.to_string e)

let test_config_rejects_nonsense () =
  let base = Pfs.Config.make ~image:"/tmp/x.img" () in
  expect_einval "unknown key" (Pfs.Config.of_args ~base [ "bogus-knob=1" ]);
  expect_einval "missing =" (Pfs.Config.of_args ~base [ "shards" ]);
  expect_einval "bad int" (Pfs.Config.of_args ~base [ "shards=many" ]);
  expect_einval "bad trigger" (Pfs.Config.of_args ~base [ "trigger=sometimes" ]);
  expect_einval "bad clock" (Pfs.Config.of_args ~base [ "clock=sundial" ]);
  expect_einval "unknown iosched"
    (Pfs.Config.of_args ~base [ "iosched=quantum" ]);
  expect_einval "zero shards" (Pfs.Config.of_args ~base [ "shards=0" ]);
  expect_einval "empty image"
    (Pfs.Config.validate (Pfs.Config.make ~image:"" ()));
  expect_einval "tiny segments"
    (Pfs.Config.validate (Pfs.Config.make ~image:"/tmp/x.img" ~seg_blocks:2 ()))

(* Routing *)

let test_route_stable_and_spread () =
  with_temp_base 4 (fun path ->
      with_server ~shards:4 path (fun t ->
          Alcotest.(check int) "shards" 4 (Server.shards t);
          (* deterministic: same path, same shard, every time *)
          let r1 = Server.route t "/alpha/file" in
          Alcotest.(check int) "stable" r1 (Server.route t "/alpha/file");
          (* first component only: files in one directory colocate *)
          Alcotest.(check int) "colocated" r1 (Server.route t "/alpha/other");
          (* distinct components spread across more than one shard *)
          let hit = Array.make 4 false in
          for i = 0 to 31 do
            hit.(Server.route t (Printf.sprintf "/c%d/f" i)) <- true
          done;
          let used =
            Array.fold_left (fun n b -> if b then n + 1 else n) 0 hit
          in
          if used < 2 then Alcotest.failf "all paths on one shard"))

(* End-to-end through Server.call *)

let test_server_ops_across_shards () =
  with_temp_base 2 (fun path ->
      with_server path (fun t ->
          let dirs = [ "/alpha"; "/beta"; "/gamma" ] in
          List.iter
            (fun d ->
              check_reply ("mkdir " ^ d) Wire.Ok_unit
                (Server.call t (Wire.Mkdir d)))
            dirs;
          List.iteri
            (fun i d ->
              let path = d ^ "/f" in
              let data = Printf.sprintf "shard payload %d" i in
              check_reply "open w" Wire.Ok_unit
                (Server.call t
                   (Wire.Open { client = 1; path; mode = Capfs.Client.WO }));
              check_reply "write" Wire.Ok_unit
                (Server.call t (Wire.Write { client = 1; path; offset = 0; data }));
              check_reply "close" Wire.Ok_unit
                (Server.call t (Wire.Close { client = 1; path }));
              (match
                 Server.call t
                   (Wire.Read
                      { client = 1; path; offset = 0; count = String.length data })
               with
              | Wire.Ok_data d' ->
                Alcotest.(check string) "read back" data (Data.to_string d')
              | r -> Alcotest.failf "read: %a" Wire.pp_reply r);
              match Server.call t (Wire.Stat path) with
              | Wire.Ok_stat { Wire.size; is_dir } ->
                Alcotest.(check int) "stat size" (String.length data) size;
                Alcotest.(check bool) "stat kind" false is_dir
              | r -> Alcotest.failf "stat: %a" Wire.pp_reply r)
            dirs;
          (* a miss comes back as the same typed errno the API raises *)
          check_reply "absent" (Wire.Err Errno.ENOENT)
            (Server.call t (Wire.Stat "/alpha/absent"));
          (* sync fans out to every shard and reports the worst verdict *)
          check_reply "sync" Wire.Ok_unit (Server.call t Wire.Sync);
          (* in-process shutdown goes through Server.shutdown, not the wire *)
          check_reply "shutdown refused" (Wire.Err Errno.EINVAL)
            (Server.call t Wire.Shutdown)))

let test_server_admission_pushback () =
  with_temp_base 2 (fun path ->
      with_server ~admission:1 path (fun t ->
          (* submit without driving: the first request occupies the
             shard's single admission slot, the second is refused with
             the typed pushback *)
          let sink _ = () in
          let req k =
            Wire.Open
              { client = k; path = "/hot/f"; mode = Capfs.Client.RW }
          in
          (match Server.submit t (req 1) ~complete:sink with
          | Ok () -> ()
          | Error e -> Alcotest.failf "first submit: %s" (Errno.to_string e));
          (match Server.submit t (req 2) ~complete:sink with
          | Error Errno.EAGAIN -> ()
          | Ok () -> Alcotest.fail "second submit must be refused"
          | Error e -> Alcotest.failf "second submit: %s" (Errno.to_string e));
          (* draining the shard frees the slot *)
          Server.drive t;
          match Server.submit t (req 3) ~complete:sink with
          | Ok () -> Server.drive t
          | Error e -> Alcotest.failf "post-drain submit: %s" (Errno.to_string e)))

let test_server_restart_persistence () =
  with_temp_base 2 (fun path ->
      let write_phase () =
        with_server path (fun t ->
            List.iter
              (fun d ->
                check_reply "mkdir" Wire.Ok_unit (Server.call t (Wire.Mkdir d));
                let p = d ^ "/persist" in
                check_reply "open" Wire.Ok_unit
                  (Server.call t
                     (Wire.Open { client = 1; path = p; mode = Capfs.Client.WO }));
                check_reply "write" Wire.Ok_unit
                  (Server.call t
                     (Wire.Write
                        { client = 1; path = p; offset = 0; data = "durable " ^ d }));
                check_reply "close" Wire.Ok_unit
                  (Server.call t (Wire.Close { client = 1; path = p })))
              [ "/one"; "/two"; "/three" ];
            check_reply "sync" Wire.Ok_unit (Server.call t Wire.Sync))
      in
      write_phase ();
      (* a second server over the same shard images mounts, not formats *)
      with_server path (fun t ->
          List.iter
            (fun d ->
              let p = d ^ "/persist" in
              let want = "durable " ^ d in
              match
                Server.call t
                  (Wire.Read
                     { client = 1; path = p; offset = 0; count = 64 })
              with
              | Wire.Ok_data got ->
                Alcotest.(check string) ("reread " ^ p) want (Data.to_string got)
              | r -> Alcotest.failf "reread %s: %a" p Wire.pp_reply r)
            [ "/one"; "/two"; "/three" ]))

let test_server_merged_stats () =
  with_temp_base 2 (fun path ->
      with_server path (fun t ->
          let ops = [ "/a"; "/b"; "/c"; "/d" ] in
          List.iter
            (fun d ->
              check_reply "mkdir" Wire.Ok_unit (Server.call t (Wire.Mkdir d)))
            ops;
          check_reply "sync" Wire.Ok_unit (Server.call t Wire.Sync);
          (* every submission is counted, across all shards *)
          let merged = Server.merged t in
          let count key =
            match Capfs_stats.Snapshot.find merged key with
            | Some e -> e.Capfs_stats.Snapshot.e_count
            | None -> Alcotest.failf "no merged entry for %s" key
          in
          (* 4 mkdirs + one sync fanned out to 2 shards *)
          Alcotest.(check int) "submitted" 6 (count "server.submitted");
          Alcotest.(check int) "completed" 6 (count "server.completed");
          Alcotest.(check int) "rejected" 0 (count "server.rejected");
          (* the wire-level Stats request carries the same report *)
          match Server.call t Wire.Stats with
          | Wire.Ok_stats json ->
            let has s =
              let n = String.length s and m = String.length json in
              let rec go i =
                i + n <= m && (String.sub json i n = s || go (i + 1))
              in
              go 0
            in
            Alcotest.(check bool) "json has shards" true (has "\"shards\": 2");
            Alcotest.(check bool) "json has per_shard" true (has "per_shard");
            Alcotest.(check bool) "json has totals" true (has "totals")
          | r -> Alcotest.failf "stats: %a" Wire.pp_reply r))

let suite =
  [
    Alcotest.test_case "wire request roundtrip" `Quick
      test_wire_request_roundtrip;
    Alcotest.test_case "wire reply roundtrip" `Quick test_wire_reply_roundtrip;
    Alcotest.test_case "wire decode errors" `Quick test_wire_decode_errors;
    Alcotest.test_case "wire push roundtrip" `Quick test_wire_push_roundtrip;
    Alcotest.test_case "wire batch roundtrip" `Quick test_wire_batch_roundtrip;
    Alcotest.test_case "wire batch errors" `Quick test_wire_batch_errors;
    Alcotest.test_case "config of_args roundtrip" `Quick
      test_config_of_args_roundtrip;
    Alcotest.test_case "config rejects nonsense" `Quick
      test_config_rejects_nonsense;
    Alcotest.test_case "routing stable and spread" `Quick
      test_route_stable_and_spread;
    Alcotest.test_case "ops across shards" `Quick test_server_ops_across_shards;
    Alcotest.test_case "admission pushback" `Quick
      test_server_admission_pushback;
    Alcotest.test_case "restart persistence" `Quick
      test_server_restart_persistence;
    Alcotest.test_case "merged stats" `Quick test_server_merged_stats;
  ]
