test/test_disk.ml: Alcotest Bus Capfs_disk Capfs_sched Capfs_stats Data Disk_model Driver Geometry Iorequest Iosched List QCheck QCheck_alcotest Seek Sim_disk Stdlib String
