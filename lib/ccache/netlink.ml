module Sched = Capfs_sched.Sched
module Sync = Capfs_sched.Sync

let header_bytes = 160

type t = {
  sched : Sched.t;
  bandwidth : float;
  latency : float;
  medium : Sync.Mutex.t;
  mutable carried : int;
  c_transfer : Capfs_stats.Counter.t;
  nname : string;
}

let create ?registry ?(name = "net") ~bandwidth_bytes_per_sec ~latency sched =
  if bandwidth_bytes_per_sec <= 0. then invalid_arg "Netlink.create: bandwidth";
  let c_transfer =
    match registry with
    | Some r ->
      Capfs_stats.Registry.register r
        (Capfs_stats.Stat.scalar (name ^ ".transfer"));
      Capfs_stats.Registry.counter r (name ^ ".transfer")
    | None -> Capfs_stats.Counter.null
  in
  {
    sched;
    bandwidth = bandwidth_bytes_per_sec;
    latency;
    medium = Sync.Mutex.create ~name sched;
    carried = 0;
    c_transfer;
    nname = name;
  }

let ethernet_10 ?registry sched =
  create ?registry ~name:"ether10"
    ~bandwidth_bytes_per_sec:(10.0e6 /. 8.)
    ~latency:0.5e-3 sched

let transfer t ~bytes =
  if bytes < 0 then invalid_arg "Netlink.transfer: negative size";
  let wire = bytes + header_bytes in
  Sync.Mutex.with_lock t.medium (fun () ->
      let dt = t.latency +. (float_of_int wire /. t.bandwidth) in
      Sched.sleep t.sched dt;
      t.carried <- t.carried + bytes;
      Capfs_stats.Counter.record t.c_transfer dt)

let bytes_carried t = t.carried
