lib/pfs/pfs.ml: Capfs Capfs_cache Capfs_disk Capfs_layout Capfs_sched File_blockdev Logs Nfs
