lib/core/client.mli: Capfs_disk Capfs_layout Dir File_table Fsys Namespace
