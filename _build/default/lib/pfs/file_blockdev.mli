(** Real disk back end over a Unix file.

    The paper's only real disk-driver "uses a Unix-file (ordinary file,
    or raw-device) as back-end"; this transport is that back end. It
    plugs into the very same {!Capfs_disk.Driver} (queue + C-LOOK
    scheduling) the simulator uses — cut-and-paste: only the transport
    differs between Patsy and PFS. *)

(** [transport sched ~path ~size_bytes ()] opens (creating and extending
    as needed) [path] and serves sector reads/writes with real pread/
    pwrite. [sector_bytes] defaults to 512. The file is extended to
    [size_bytes] on creation. *)
val transport :
  ?sector_bytes:int ->
  Capfs_sched.Sched.t ->
  path:string ->
  size_bytes:int ->
  unit ->
  Capfs_disk.Driver.transport

(** Close the file descriptor behind a transport created here. *)
val close : Capfs_disk.Driver.transport -> unit
