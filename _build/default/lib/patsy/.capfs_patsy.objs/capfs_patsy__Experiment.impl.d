lib/patsy/experiment.ml: Array Capfs Capfs_cache Capfs_disk Capfs_layout Capfs_sched Capfs_stats Multiplex Printf Replay
