(** Stable, serializable counter snapshots.

    A snapshot freezes a {!Registry} into plain data: one entry per
    registered stat, keyed by its full [<instance>.<counter>] name (see
    {!Names}), carrying the observation count, the observation sum and
    the mean. Snapshots are what the two halves of the framework emit at
    equivalent sync points so the differential harness ([lib/diffval])
    can diff them — and what the JSON reports embed, so the exact
    figures a verdict was computed from survive the run. *)

type entry = {
  e_key : string;   (** full stat name, e.g. ["cache.hits"] *)
  e_count : int;    (** number of observations recorded *)
  e_total : float;  (** sum of the observations *)
  e_mean : float;   (** arithmetic mean; [0.] when never recorded *)
}

(** Entries sorted by key (the registry's name order). *)
type t = entry array

(** [capture ?filter registry] freezes every registered stat whose key
    satisfies [filter] (default: all). Capture at a quiescent point —
    after the final {!Capfs.Client.sync} — or in-flight write-backs will
    be missing from the flush counters. *)
val capture : ?filter:(string -> bool) -> Registry.t -> t

(** Keys, in entry order. *)
val keys : t -> string list

val find : t -> string -> entry option

(** The cut-and-paste contract filter: [true] for keys of components
    shared verbatim between Patsy and PFS — the block cache ([cache.*]),
    the disk driver ([driverN.*]) and the storage layouts ([lfsN.*],
    [ffs*], [jfs*], [simlayout*]). Device-model internals ([diskN.*],
    [busN.*]) and everything else are engine-specific and excluded.
    The authoritative table lives in VALIDATION.md. *)
val policy_visible : string -> bool

(** Serialize as a JSON array of
    [{"key":…,"count":…,"total":…,"mean":…}] objects. *)
val to_json : t -> string

(** [add_json b t] appends {!to_json} output to [b] (for embedding in a
    larger report). *)
val add_json : Buffer.t -> t -> unit

val pp : Format.formatter -> t -> unit
