examples/trace_replay.ml: Capfs_patsy Capfs_trace Filename Format List Sys
