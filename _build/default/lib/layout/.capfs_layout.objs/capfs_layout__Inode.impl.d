lib/layout/inode.ml: Array Codec Format List Printf Stdlib
