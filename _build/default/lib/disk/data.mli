(** Data payloads: real bytes or simulated placeholders.

    "The difference between a simulated cache and a real cache is the lack
    of a data pointer in the simulated case." A [Data.t] is either a real
    byte buffer (PFS) or just a length (Patsy). All framework code moves
    [Data.t] values around; only the PFS helper components ever look
    inside. The simulator charges memory-copy time through
    {!copy_seconds}, so moving fake data still costs simulated time. *)

type t =
  | Real of bytes
  | Sim of int  (** length in bytes, no backing store *)

(** [real n] is a zero-filled real buffer of [n] bytes. *)
val real : int -> t

(** [sim n] is a simulated payload of [n] bytes. *)
val sim : int -> t

(** [of_string s] is a real payload holding [s]. *)
val of_string : string -> t

(** Payload length in bytes. *)
val length : t -> int

(** [sub t ~pos ~len] extracts a slice. Simulated slices stay simulated.
    Raises [Invalid_argument] on out-of-range. *)
val sub : t -> pos:int -> len:int -> t

(** [blit ~src ~src_pos ~dst ~dst_pos ~len] copies bytes when both sides
    are real; when either side is simulated it only checks bounds (there
    is nothing to move). Mixed copies into a [Real] destination from a
    [Sim] source zero-fill the range, modelling reading from a fresh
    simulated disk. *)
val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit

(** [concat ts] joins payloads; the result is [Real] iff all inputs are. *)
val concat : t list -> t

(** [to_string t] renders real bytes, or zeros for simulated data. *)
val to_string : t -> string

(** [is_real t]. *)
val is_real : t -> bool

(** [copy_seconds ~rate_bytes_per_sec len] is the simulated cost of a
    [len]-byte memory copy; the simulator sleeps this long wherever a real
    system would move data between buffers. *)
val copy_seconds : rate_bytes_per_sec:float -> int -> float
