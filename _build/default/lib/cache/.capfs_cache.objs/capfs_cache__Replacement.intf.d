lib/cache/replacement.mli: Block
