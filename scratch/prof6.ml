module Sched = Capfs_sched.Sched
module Experiment = Capfs_patsy.Experiment
module Synth = Capfs_trace.Synth
module Record = Capfs_trace.Record
module Client = Capfs.Client
module Data = Capfs_disk.Data
module Errno = Capfs_core.Errno

let op_index (r : Record.t) =
  match r.Record.op with
  | Record.Open _ -> 0 | Record.Close _ -> 1 | Record.Read _ -> 2
  | Record.Write _ -> 3 | Record.Stat _ -> 4 | Record.Delete _ -> 5
  | Record.Truncate _ -> 6 | Record.Mkdir _ -> 7 | Record.Rmdir _ -> 8

let names = [|"open";"close";"read";"write";"stat";"delete";"truncate";"mkdir";"rmdir"|]

let dispatch client (r : Record.t) : (unit, Errno.t) result =
  let c = r.Record.client in
  match r.Record.op with
  | Record.Open { path; mode } ->
    let m = match mode with
      | Record.Read_only -> Client.RO
      | Record.Write_only -> Client.WO
      | Record.Read_write -> Client.RW in
    Client.open_ client ~client:c path m
  | Record.Close { path } -> Client.close_ client ~client:c path
  | Record.Read { path; offset; bytes } -> (
    match Client.read client ~client:c path ~offset ~bytes with
    | Ok _ -> Ok () | Error _ as e -> e)
  | Record.Write { path; offset; bytes } ->
    Client.write client ~client:c path ~offset (Data.sim bytes)
  | Record.Stat { path } -> (
    match Client.stat client path with Ok _ -> Ok () | Error _ as e -> e)
  | Record.Delete { path } -> Client.delete client path
  | Record.Truncate { path; size } -> Client.truncate client path ~size
  | Record.Mkdir { path } -> Client.mkdir client path
  | Record.Rmdir { path } -> Client.rmdir client path

let synthesized_size (r : Record.t) =
  match r.Record.op with
  | Record.Read { offset; bytes; _ } -> Stdlib.max 8192 (offset + bytes)
  | Record.Truncate { size; _ } -> size
  | _ -> 8192

let () =
  let profile = Synth.profile_by_name "sprite-1a" in
  let records = Synth.generate ~seed:1996 ~duration:900. profile in
  let cfg = Experiment.default Experiment.Ups in
  let sched = Sched.create ~seed:42 ~clock:`Virtual () in
  let words = Array.make 9 0. and counts = Array.make 9 0 in
  let synth_words = ref 0. and synth_n = ref 0 in
  ignore
    (Sched.spawn sched (fun () ->
         let client, _ = Experiment.build_instance sched cfg in
         Array.iter
           (fun (r : Record.t) ->
             let i = op_index r in
             (* pace *)
             let target = r.Record.time in
             let now = Sched.now sched in
             if target > now then Sched.sleep sched (target -. now);
             let w0 = Gc.minor_words () in
             (match dispatch client r with
             | Error Errno.ENOENT -> (
               let s0 = Gc.minor_words () in
               (match r.Record.op with
               | Record.Open { path; _ } | Record.Read { path; _ }
               | Record.Stat { path } | Record.Truncate { path; _ } ->
                 (match Client.synthesize_file client path ~size:(synthesized_size r) with
                 | Ok () -> ignore (dispatch client r)
                 | Error _ -> ())
               | Record.Write { path; _ } | Record.Mkdir { path } ->
                 (match Client.ensure_dirs client path with
                 | Ok () -> ignore (dispatch client r)
                 | Error _ -> ())
               | _ -> ());
               incr synth_n;
               synth_words := !synth_words +. (Gc.minor_words () -. s0))
             | _ -> ());
             words.(i) <- words.(i) +. (Gc.minor_words () -. w0);
             counts.(i) <- counts.(i) + 1)
           records));
  Sched.run sched;
  let total_w = Array.fold_left (+.) 0. words in
  let total_n = Array.fold_left (+) 0 counts in
  Printf.printf "%d records, dispatch total %.1f words/op\n" total_n (total_w /. float_of_int total_n);
  Printf.printf "synthesis: %d calls, %.1f words each, %.1f words/op amortized\n\n"
    !synth_n (!synth_words /. float_of_int (Stdlib.max 1 !synth_n))
    (!synth_words /. float_of_int total_n);
  Array.iteri
    (fun i n ->
      if n > 0 then
        Printf.printf "%-9s n=%7d  words/op=%8.1f  share=%5.1f%%\n" names.(i) n
          (words.(i) /. float_of_int n)
          (100. *. words.(i) /. total_w))
    counts
