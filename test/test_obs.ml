(* Tests for the structured event tracer: ring-buffer semantics, fleet
   determinism and the Chrome trace_event JSON export. *)

module Event = Capfs_obs.Event
module Tracer = Capfs_obs.Tracer
module Export = Capfs_obs.Export
module Experiment = Capfs_patsy.Experiment
module Fleet = Capfs_patsy.Fleet
module Synth = Capfs_trace.Synth

let hit i = Event.Cache_hit { cache = "c"; ino = 1; index = i }

(* {1 Ring buffer} *)

let test_ring_keeps_newest () =
  let tr = Tracer.create ~capacity:4 () in
  for i = 1 to 10 do
    Tracer.emit tr ~time:(float_of_int i) (hit i)
  done;
  Alcotest.(check int) "length clamps at capacity" 4 (Tracer.length tr);
  Alcotest.(check int) "dropped = emitted - kept" 6 (Tracer.dropped tr);
  let evs = Tracer.events tr in
  Alcotest.(check (list int))
    "newest 4 events survive, oldest first" [ 7; 8; 9; 10 ]
    (List.map (fun e -> e.Event.seq) evs);
  List.iter
    (fun e ->
      Alcotest.(check (float 0.))
        "time matches seq" (float_of_int e.Event.seq) e.Event.time)
    evs

let test_ring_no_wrap () =
  let tr = Tracer.create ~capacity:8 () in
  for i = 1 to 3 do
    Tracer.emit tr ~time:0. (hit i)
  done;
  Alcotest.(check int) "length" 3 (Tracer.length tr);
  Alcotest.(check int) "nothing dropped" 0 (Tracer.dropped tr);
  Alcotest.(check (list int))
    "seqs in order" [ 1; 2; 3 ]
    (List.map (fun e -> e.Event.seq) (Tracer.events tr))

let test_ring_clear () =
  let tr = Tracer.create ~capacity:4 () in
  for i = 1 to 3 do
    Tracer.emit tr ~time:0. (hit i)
  done;
  Tracer.clear tr;
  Alcotest.(check int) "empty after clear" 0 (Tracer.length tr);
  Tracer.emit tr ~time:0. (hit 99);
  Alcotest.(check (list int))
    "sequence numbers keep counting" [ 4 ]
    (List.map (fun e -> e.Event.seq) (Tracer.events tr))

let test_null_tracer () =
  let tr = Tracer.null in
  Alcotest.(check bool) "null is disabled" false (Tracer.enabled tr);
  Tracer.emit tr ~time:1. (hit 1);
  Alcotest.(check int) "null buffers nothing" 0 (Tracer.length tr);
  Alcotest.(check (list pass)) "null has no events" [] (Tracer.events tr)

(* {1 Fleet determinism} *)

let small_config policy =
  {
    (Experiment.default policy) with
    Experiment.ndisks = 1;
    nbuses = 1;
    cache_mb = 4;
    nvram_mb = 1;
    seed = 7;
    trace_buffer = 4096;
  }

let gen name =
  Capfs_trace.Source.of_array ~name
    (Synth.generate ~seed:3 ~duration:60.
       { (Synth.profile_by_name name) with Synth.clients = 2; files = 20; dirs = 2 })

let pairs =
  [
    ("sprite-1a", Experiment.Ups);
    ("sprite-1a", Experiment.Write_delay);
    ("sprite-1b", Experiment.Ups);
  ]

let run_merged jobs =
  Fleet.merged_events
    (Fleet.run_matrix ~jobs ~config:small_config ~gen pairs)

let check_same_streams a b =
  Alcotest.(check int) "same event count" (List.length a) (List.length b);
  List.iter2
    (fun (sa, (ea : Event.t)) (sb, (eb : Event.t)) ->
      Alcotest.(check int) "stream" sa sb;
      Alcotest.(check int) "seq" ea.Event.seq eb.Event.seq;
      Alcotest.(check (float 0.)) "time" ea.Event.time eb.Event.time;
      Alcotest.(check string)
        "kind" (Event.kind_name ea.Event.kind)
        (Event.kind_name eb.Event.kind);
      Alcotest.(check string)
        "source" (Event.source ea.Event.kind)
        (Event.source eb.Event.kind))
    a b

let test_fleet_merge_deterministic () =
  let seq = run_merged 1 and par = run_merged 4 in
  Alcotest.(check bool) "produced events" true (List.length seq > 0);
  check_same_streams seq par

let test_layers_covered () =
  let stream = run_merged 2 in
  let layers =
    List.sort_uniq compare
      (List.map
         (fun (_, e) -> Event.layer_name (Event.layer_of e.Event.kind))
         stream)
  in
  List.iter
    (fun l ->
      Alcotest.(check bool) ("layer " ^ l ^ " present") true
        (List.mem l layers))
    [ "sched"; "cache"; "disk" ]

(* {1 Chrome trace_event JSON}

   The container has no JSON library, so the round-trip check uses the
   minimal recursive-descent parser below — enough for the subset the
   exporter emits (objects, arrays, strings with escapes, numbers,
   booleans). *)

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let pos = ref 0 in
  let n = String.length s in
  let peek () = if !pos < n then s.[!pos] else raise (Parse_error "eof") in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
      | _ -> ()
  in
  let expect c =
    skip_ws ();
    if peek () <> c then
      raise (Parse_error (Printf.sprintf "expected %c at %d" c !pos));
    advance ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
          pos := !pos + 4;
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_char buf '?'
        | c -> raise (Parse_error (Printf.sprintf "bad escape %c" c)));
        advance ();
        go ()
      | c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    J_num (float_of_string (String.sub s start (!pos - start)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        J_obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((k, v) :: acc)
          | '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | c -> raise (Parse_error (Printf.sprintf "bad object char %c" c))
        in
        J_obj (members [])
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        J_list []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            List.rev (v :: acc)
          | c -> raise (Parse_error (Printf.sprintf "bad array char %c" c))
        in
        J_list (elements [])
      end
    | '"' -> J_str (parse_string ())
    | 't' ->
      pos := !pos + 4;
      J_bool true
    | 'f' ->
      pos := !pos + 5;
      J_bool false
    | 'n' ->
      pos := !pos + 4;
      J_null
    | _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Parse_error "trailing garbage");
  v

let member k = function
  | J_obj fields -> (
    match List.assoc_opt k fields with
    | Some v -> v
    | None -> Alcotest.failf "missing member %S" k)
  | _ -> Alcotest.failf "not an object looking up %S" k

let as_str = function J_str s -> s | _ -> Alcotest.fail "expected string"
let as_num = function J_num f -> f | _ -> Alcotest.fail "expected number"
let as_list = function J_list l -> l | _ -> Alcotest.fail "expected array"

let test_chrome_json_roundtrip () =
  let events =
    [
      Event.{ time = 0.5; seq = 1; kind = Dispatch { tid = 1; thread = "exp" } };
      Event.
        {
          time = 1.0;
          seq = 2;
          kind = Cache_miss { cache = "cache"; ino = 3; index = 9 };
        };
      Event.
        {
          time = 1.25;
          seq = 3;
          kind =
            Disk_service
              { disk = "disk\"0"; lba = 64; sectors = 8; write = true;
                dur = 0.25 };
        };
      Event.
        {
          time = 2.0;
          seq = 4;
          kind = Seg_write { volume = "lfs0"; seg = 2; blocks = 127 };
        };
    ]
  in
  let buf = Buffer.create 512 in
  Export.chrome_json buf (Export.of_events events);
  let doc = parse_json (Buffer.contents buf) in
  Alcotest.(check string)
    "displayTimeUnit" "ms"
    (as_str (member "displayTimeUnit" doc));
  let records = as_list (member "traceEvents" doc) in
  let meta, evs =
    List.partition (fun ev -> as_str (member "ph" ev) = "M") records
  in
  Alcotest.(check int) "one record per event" 4 (List.length evs);
  Alcotest.(check int) "one thread_name per distinct track" 4
    (List.length meta);
  List.iter
    (fun ev ->
      ignore (as_str (member "name" ev));
      ignore (as_str (member "cat" ev));
      ignore (as_str (member "ph" ev));
      ignore (as_num (member "ts" ev));
      ignore (as_num (member "pid" ev));
      ignore (as_num (member "tid" ev)))
    evs;
  (* track labels include the escaped component name *)
  Alcotest.(check bool) "thread_name metadata carries the disk name" true
    (List.exists
       (fun m -> as_str (member "name" (member "args" m)) = "disk\"0")
       meta);
  (* the disk service span: ph "X", ts at span start, dur 0.25 s in µs *)
  let span =
    List.find (fun ev -> as_str (member "ph" ev) = "X") evs
  in
  Alcotest.(check string) "span name" "service" (as_str (member "name" span));
  Alcotest.(check (float 1.)) "span dur µs" 250_000.
    (as_num (member "dur" span));
  Alcotest.(check (float 1.)) "span start µs" 1_000_000.
    (as_num (member "ts" span));
  Alcotest.(check string)
    "escaped disk name survives" "disk\"0"
    (as_str (member "disk" (member "args" span)));
  (* the instant events carry the scope field Perfetto requires *)
  let instant =
    List.find (fun ev -> as_str (member "ph" ev) = "i") evs
  in
  Alcotest.(check string) "instant scope" "t" (as_str (member "s" instant))

let test_pp_text () =
  let events =
    [
      Event.{ time = 0.5; seq = 1; kind = Dispatch { tid = 1; thread = "exp" } };
      Event.
        {
          time = 1.0;
          seq = 2;
          kind = Cache_miss { cache = "cache"; ino = 3; index = 9 };
        };
    ]
  in
  let out =
    Format.asprintf "%a" Export.pp_text (Export.of_events events)
  in
  List.iter
    (fun needle ->
      let contains =
        let nh = String.length out and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub out i nn = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) ("text dump mentions " ^ needle) true contains)
    [ "dispatch"; "miss"; "sched"; "cache"; "exp" ]

let test_to_file_parses () =
  let results =
    Fleet.run_matrix ~jobs:2 ~config:small_config ~gen [ pairs |> List.hd ]
  in
  let stream = Fleet.merged_events results in
  let path = Filename.temp_file "capfs_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Export.to_file path stream;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      let doc = parse_json contents in
      let evs =
        List.filter
          (fun ev -> as_str (member "ph" ev) <> "M")
          (as_list (member "traceEvents" doc))
      in
      Alcotest.(check int)
        "every merged event exported" (List.length stream) (List.length evs))

let suite =
  [
    Alcotest.test_case "ring keeps newest on wrap" `Quick test_ring_keeps_newest;
    Alcotest.test_case "ring below capacity" `Quick test_ring_no_wrap;
    Alcotest.test_case "ring clear" `Quick test_ring_clear;
    Alcotest.test_case "null tracer is inert" `Quick test_null_tracer;
    Alcotest.test_case "fleet merge: -j 1 == -j 4" `Slow
      test_fleet_merge_deterministic;
    Alcotest.test_case "sched/cache/disk layers traced" `Slow
      test_layers_covered;
    Alcotest.test_case "chrome json round-trips" `Quick
      test_chrome_json_roundtrip;
    Alcotest.test_case "text dump" `Quick test_pp_text;
    Alcotest.test_case "to_file output parses" `Quick test_to_file_parses;
  ]
