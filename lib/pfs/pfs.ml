module Sched = Capfs_sched.Sched
module Cache = Capfs_cache.Cache
module Driver = Capfs_disk.Driver
module Iosched = Capfs_disk.Iosched
module Geometry = Capfs_disk.Geometry
module Lfs = Capfs_layout.Lfs
module Codec = Capfs_layout.Codec

let src = Logs.Src.create "capfs.pfs" ~doc:"on-line PFS instantiation"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  cache_mb : int;
  nvram_mb : int;
  trigger : Cache.flush_trigger;
  scope : Cache.flush_scope;
  iosched : string;
  workers : int;
}

let default_config =
  {
    cache_mb = 16;
    nvram_mb = 0;
    trigger = Cache.Periodic { max_age = 30.; scan_interval = 5. };
    scope = `Whole_file;
    iosched = "clook";
    workers = 4;
  }

type t = {
  sched : Sched.t;
  client : Capfs.Client.t;
  nfs : Nfs.t;
  image_path : string;
  registry : Capfs_stats.Registry.t option;
}

let block_bytes = 4096
let max_extent_blocks = 64

let start ?(clock = `Real) ?(config = default_config) ?registry ~image
    ~size_mb () =
  let sched = Sched.create ~clock () in
  let transport =
    File_blockdev.transport sched ~path:image
      ~size_bytes:(size_mb * 1024 * 1024) ()
  in
  let flat_geometry =
    Geometry.v ~cylinders:transport.Driver.total_sectors ~heads:1
      ~sectors_per_track:1 ~sector_bytes:transport.Driver.sector_bytes ()
  in
  (* instance names and coalescing knobs deliberately match Patsy's
     single-disk farm, so the two halves register identical counter keys
     and batch I/O identically (the diffval contract; VALIDATION.md) *)
  let spb = block_bytes / transport.Driver.sector_bytes in
  let driver =
    Driver.create ?registry ~name:(Capfs_stats.Names.driver 0)
      ~policy:(Iosched.by_name flat_geometry config.iosched)
      ~coalesce:true
      ~max_merge_sectors:(max_extent_blocks * spb)
      sched transport
  in
  (* [start] runs outside the scheduler, but mounting needs fibre
     context (driver I/O blocks): do the assembly in a bootstrap fibre. *)
  let assembled = ref None in
  ignore
    (Sched.spawn sched ~name:"pfs.boot" (fun () ->
         let lfs_name = Capfs_stats.Names.lfs 0 in
         let layout =
           try Lfs.mount ?registry ~name:lfs_name sched driver
           with Codec.Corrupt reason ->
             Log.info (fun m ->
                 m "image %s not mountable (%s): formatting" image reason);
             Lfs.format_and_mount ?registry ~name:lfs_name sched driver
               ~block_bytes
         in
         let cache_config =
           {
             Cache.block_bytes;
             capacity_blocks = config.cache_mb * 1024 * 1024 / block_bytes;
             nvram_blocks = config.nvram_mb * 1024 * 1024 / block_bytes;
             trigger = config.trigger;
             scope = config.scope;
             async_flush = true;
             mem_copy_rate = 0.;
             coalesce = true;
             flush_window = 4;
             max_extent_blocks;
           }
         in
         (* PFS payloads are always real bytes: give the cache a slab
            arena sized for every frame plus the flush pipeline's
            in-flight extents (overflow falls back to heap buffers) *)
         let arena =
           Capfs_disk.Arena.create ~cell_bytes:block_bytes
             ~cells:
               (cache_config.Cache.capacity_blocks
               + cache_config.Cache.nvram_blocks
               + (cache_config.Cache.flush_window * max_extent_blocks))
             ()
         in
         let fs =
           Capfs.Fsys.create ?registry ~arena ~cache_config ~layout sched
         in
         let client = Capfs.Client.create fs in
         let nfs = Nfs.serve ~workers:config.workers client in
         assembled := Some (client, nfs)));
  Sched.run sched;
  match !assembled with
  | Some (client, nfs) -> { sched; client; nfs; image_path = image; registry }
  | None -> failwith "Pfs.start: bootstrap did not complete"

let snapshot t =
  Option.map
    (Capfs_stats.Snapshot.capture
       ~filter:Capfs_stats.Snapshot.policy_visible)
    t.registry

let shutdown t =
  ignore
    (Sched.spawn t.sched ~name:"pfs.shutdown" (fun () ->
         Capfs.Client.sync_exn t.client));
  Sched.run t.sched
