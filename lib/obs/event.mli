(** Structured trace events.

    Where the plug-in statistics registry ({!Capfs_stats.Registry})
    reproduces the {e aggregate} half of Patsy's observability —
    "plug-in statistics … activated when the simulator is started" —
    these events record the {e individual} state transitions behind the
    aggregates: every thread dispatch, cache state change, disk-queue
    event and log-segment write, stamped with the scheduler's (virtual
    or real) time. A number in a report can then be traced back to the
    exact sequence of component interactions that produced it.

    Events are plain immutable values; they carry no formatting or I/O.
    {!Tracer} buffers them, {!Export} renders them. *)

(** The framework layer an event originates from. Becomes the Chrome
    [cat] field, so layers can be toggled independently in a viewer. *)
type layer = Sched | Cache | Disk | Layout

type kind =
  (* scheduler *)
  | Dispatch of { tid : int; thread : string }
      (** a fibre was taken off the run queue and given the CPU *)
  | Block of { tid : int; thread : string; on : string }
      (** a fibre suspended; [on] names what it waits for (an event
          name, ["timer"], ["yield"], ["fd"]) *)
  | Wake of { tid : int; thread : string }
      (** a suspended fibre was made runnable again *)
  (* block cache *)
  | Cache_hit of { cache : string; ino : int; index : int }
  | Cache_miss of { cache : string; ino : int; index : int }
  | Cache_evict of { cache : string; ino : int; index : int }
      (** a clean block's frame was reclaimed for another block *)
  | Cache_flush of { cache : string; blocks : int }
      (** one write-back chunk of [blocks] dirty blocks left the cache *)
  (* disk subsystem *)
  | Disk_enqueue of { disk : string; lba : int; sectors : int; write : bool }
      (** a request entered the driver's scheduled queue *)
  | Disk_seek of { disk : string; cylinder : int; dur : float }
      (** arm movement + rotational positioning, [dur] seconds ending
          at the event's time *)
  | Disk_service of {
      disk : string;
      lba : int;
      sectors : int;
      write : bool;
      dur : float;
    }  (** a request finished service; [dur] covers the whole service *)
  (* storage layout *)
  | Seg_write of { volume : string; seg : int; blocks : int }
      (** the LFS sealed segment [seg] and wrote it as one large I/O *)
  (* failure handling *)
  | Disk_fault of {
      disk : string;
      lba : int;
      sectors : int;
      write : bool;
      fault : string;
    }
      (** the injector failed (or stalled) this request; [fault] is
          ["transient"], ["hard"] or ["stall"] *)
  | Disk_retry of { disk : string; attempt : int; delay : float }
      (** the driver is re-submitting a failed request after backing
          off [delay] seconds; [attempt] counts from 1 *)
  | Disk_merge of {
      disk : string;
      lba : int;
      sectors : int;
      write : bool;
      count : int;
    }
      (** the driver coalesced [count] adjacent queued requests into one
          scatter-gather request spanning [sectors] sectors at [lba] *)
  | Recovery of { volume : string; segments : int; inodes : int }
      (** LFS crash recovery rolled [segments] log segments forward and
          re-attached [inodes] inode-map entries *)

type t = {
  time : float;  (** scheduler seconds (virtual in Patsy, elapsed in PFS) *)
  seq : int;     (** per-tracer emission counter, 1-based, never reused *)
  kind : kind;
}

val layer_of : kind -> layer

(** Lowercase layer mnemonic: ["sched"], ["cache"], ["disk"],
    ["layout"]. *)
val layer_name : layer -> string

(** Short event mnemonic: ["dispatch"], ["hit"], ["seek"], … *)
val kind_name : kind -> string

(** Component instance the event belongs to (thread, cache, disk or
    volume name). *)
val source : kind -> string

(** Seconds the event spans, ending at [time]; [0.] for instants. *)
val duration : kind -> float

(** One-line rendering: [time layer name source key=value …]. *)
val pp : Format.formatter -> t -> unit
