(* Integration tests: the abstract client interface over the full stack
   (cache + LFS + driver), exercising namespace semantics, file I/O,
   unlink-while-open, symlinks, multimedia files and remount
   persistence. *)

open Capfs
module Sched = Capfs_sched.Sched
module Data = Capfs_disk.Data
module Driver = Capfs_disk.Driver
module Cache = Capfs_cache.Cache
module Lfs = Capfs_layout.Lfs
module Inode = Capfs_layout.Inode
module Layout = Capfs_layout.Layout
module Errno = Capfs_core.Errno

let lfs_config =
  {
    Lfs.seg_blocks = 16;
    checkpoint_blocks = 16;
    cleaner = Lfs.Cost_benefit;
    min_free_segments = 3;
    target_free_segments = 5;
    first_ino = 1;
    ino_stride = 1;
  }

let cache_config =
  {
    Cache.block_bytes = 4096;
    capacity_blocks = 64;
    nvram_blocks = 0;
    trigger = Cache.Demand;
    scope = `Whole_file;
    async_flush = true;
    mem_copy_rate = 0.;
    coalesce = false;
    flush_window = 4;
    max_extent_blocks = 64;
  }

let make_client ?(sectors = 16384) s =
  let drv =
    Driver.create s (Driver.mem_transport ~sector_bytes:512 ~total_sectors:sectors s ())
  in
  let layout = Lfs.format_and_mount ~config:lfs_config s drv ~block_bytes:4096 in
  let fs = Fsys.create ~cache_config ~layout s in
  (Client.create fs, drv)

let run_fs f =
  let s = Sched.create ~clock:`Virtual () in
  ignore (Sched.spawn s (fun () -> f s));
  Sched.run s

let test_write_read_roundtrip () =
  run_fs (fun s ->
      let c, _ = make_client s in
      Client.mkdir_exn c "/home";
      Client.open_exn c ~client:1 "/home/hello.txt" Client.WO;
      Client.write_exn c ~client:1 "/home/hello.txt" ~offset:0
        (Data.of_string "hello, cut-and-paste world");
      Client.close_exn c ~client:1 "/home/hello.txt";
      Client.open_exn c ~client:2 "/home/hello.txt" Client.RO;
      let d = Client.read_exn c ~client:2 "/home/hello.txt" ~offset:0 ~bytes:100 in
      Alcotest.(check string) "contents" "hello, cut-and-paste world"
        (Data.to_string d);
      Client.close_exn c ~client:2 "/home/hello.txt")

let test_read_beyond_eof_is_short () =
  run_fs (fun s ->
      let c, _ = make_client s in
      Client.open_exn c ~client:1 "/f" Client.WO;
      Client.write_exn c ~client:1 "/f" ~offset:0 (Data.of_string "abc");
      let d = Client.read_exn c ~client:1 "/f" ~offset:1 ~bytes:100 in
      Alcotest.(check string) "short read" "bc" (Data.to_string d);
      let d2 = Client.read_exn c ~client:1 "/f" ~offset:10 ~bytes:5 in
      Alcotest.(check int) "empty beyond eof" 0 (Data.length d2))

let test_partial_block_rmw () =
  run_fs (fun s ->
      let c, _ = make_client s in
      Client.open_exn c ~client:1 "/f" Client.WO;
      Client.write_exn c ~client:1 "/f" ~offset:0
        (Data.of_string (String.make 8192 'a'));
      (* overwrite 100 bytes in the middle of block 0 *)
      Client.write_exn c ~client:1 "/f" ~offset:1000
        (Data.of_string (String.make 100 'b'));
      let d = Client.read_exn c ~client:1 "/f" ~offset:0 ~bytes:8192 in
      let str = Data.to_string d in
      Alcotest.(check char) "before" 'a' str.[999];
      Alcotest.(check char) "inside" 'b' str.[1000];
      Alcotest.(check char) "last inside" 'b' str.[1099];
      Alcotest.(check char) "after" 'a' str.[1100];
      Alcotest.(check int) "size unchanged" 8192 (Client.stat_exn c "/f").Client.st_size)

let test_write_spanning_blocks () =
  run_fs (fun s ->
      let c, _ = make_client s in
      Client.open_exn c ~client:1 "/f" Client.WO;
      (* 3 blocks + offset straddle *)
      let payload = String.init 10000 (fun i -> Char.chr (33 + (i mod 90))) in
      Client.write_exn c ~client:1 "/f" ~offset:2048 (Data.of_string payload);
      let d = Client.read_exn c ~client:1 "/f" ~offset:2048 ~bytes:10000 in
      Alcotest.(check string) "spanning write" payload (Data.to_string d);
      Alcotest.(check int) "size" 12048 (Client.stat_exn c "/f").Client.st_size)

let test_mkdir_nested_and_readdir () =
  run_fs (fun s ->
      let c, _ = make_client s in
      Client.mkdir_exn c "/a";
      Client.mkdir_exn c "/a/b";
      Client.create_file_exn c "/a/b/f1";
      Client.create_file_exn c "/a/b/f2";
      let names =
        Client.readdir_exn c "/a/b" |> List.map (fun e -> e.Dir.name)
      in
      Alcotest.(check (list string)) "entries" [ "f1"; "f2" ] names;
      let top = Client.readdir_exn c "/a" |> List.map (fun e -> e.Dir.name) in
      Alcotest.(check (list string)) "nested" [ "b" ] top)

let test_namespace_errors () =
  run_fs (fun s ->
      let c, _ = make_client s in
      Client.mkdir_exn c "/d";
      Client.create_file_exn c "/d/f";
      (match Client.create_file c "/d/f" with
      | Error Errno.EEXIST -> ()
      | _ -> Alcotest.fail "duplicate create must be EEXIST");
      (match Client.open_ c ~client:1 "/missing" Client.RO with
      | Error Errno.ENOENT -> ()
      | _ -> Alcotest.fail "RO open of missing must be ENOENT");
      (match Client.mkdir c "/d/f/sub" with
      | Error Errno.ENOTDIR -> ()
      | _ -> Alcotest.fail "mkdir under a file must be ENOTDIR");
      (match Client.rmdir c "/d" with
      | Error Errno.ENOTEMPTY -> ()
      | _ -> Alcotest.fail "rmdir of non-empty must be ENOTEMPTY");
      (match Client.delete c "/d" with
      | Error Errno.EISDIR -> ()
      | _ -> Alcotest.fail "delete of a directory must be EISDIR");
      Client.delete_exn c "/d/f";
      Client.rmdir_exn c "/d";
      Alcotest.(check bool) "gone" false (Client.exists c "/d"))

let test_delete_while_open_unix_semantics () =
  run_fs (fun s ->
      let c, _ = make_client s in
      Client.open_exn c ~client:1 "/f" Client.WO;
      Client.write_exn c ~client:1 "/f" ~offset:0 (Data.of_string "still here");
      Client.delete_exn c "/f";
      Alcotest.(check bool) "name gone" false (Client.exists c "/f");
      (* the open descriptor still reads the data *)
      let d = Client.read_exn c ~client:1 "/f" ~offset:0 ~bytes:10 in
      Alcotest.(check string) "data alive" "still here" (Data.to_string d);
      Client.close_exn c ~client:1 "/f";
      (* after last close the inode is reaped *)
      let ft = Client.file_table c in
      ignore ft;
      Alcotest.(check bool) "cannot reopen" false (Client.exists c "/f"))

let test_truncate_shrinks_and_absorbs () =
  run_fs (fun s ->
      let c, _ = make_client s in
      let reg = (Client.fsys c).Fsys.registry in
      Client.open_exn c ~client:1 "/f" Client.WO;
      Client.write_exn c ~client:1 "/f" ~offset:0
        (Data.of_string (String.make 16384 'x'));
      Client.truncate_exn c "/f" ~size:4096;
      Alcotest.(check int) "size" 4096 (Client.stat_exn c "/f").Client.st_size;
      (* the truncated dirty blocks never reached the disk *)
      match Capfs_stats.Registry.find reg "cache.absorbed_writes" with
      | Some st ->
        if Capfs_stats.Stat.count st < 3 then
          Alcotest.fail "expected absorbed writes from truncate"
      | None -> Alcotest.fail "stat missing")

let test_rename_moves_and_replaces () =
  run_fs (fun s ->
      let c, _ = make_client s in
      Client.mkdir_exn c "/a";
      Client.mkdir_exn c "/b";
      Client.open_exn c ~client:1 "/a/f" Client.WO;
      Client.write_exn c ~client:1 "/a/f" ~offset:0 (Data.of_string "payload");
      Client.close_exn c ~client:1 "/a/f";
      Client.rename_exn c ~src:"/a/f" ~dst:"/b/g";
      Alcotest.(check bool) "src gone" false (Client.exists c "/a/f");
      let d = Client.read_exn c ~client:1 "/b/g" ~offset:0 ~bytes:7 in
      Alcotest.(check string) "moved" "payload" (Data.to_string d);
      (* replacing rename *)
      Client.create_file_exn c "/b/h";
      Client.rename_exn c ~src:"/b/g" ~dst:"/b/h";
      let d2 = Client.read_exn c ~client:1 "/b/h" ~offset:0 ~bytes:7 in
      Alcotest.(check string) "replaced" "payload" (Data.to_string d2))

let test_symlink_resolution () =
  run_fs (fun s ->
      let c, _ = make_client s in
      Client.mkdir_exn c "/real";
      Client.create_file_exn c "/real/data";
      Client.open_exn c ~client:1 "/real/data" Client.WO;
      Client.write_exn c ~client:1 "/real/data" ~offset:0 (Data.of_string "via link");
      Client.close_exn c ~client:1 "/real/data";
      Client.symlink_exn c ~target:"/real" "/alias";
      Alcotest.(check string) "readlink" "/real" (Client.readlink_exn c "/alias");
      let d = Client.read_exn c ~client:9 "/alias/data" ~offset:0 ~bytes:8 in
      Alcotest.(check string) "followed" "via link" (Data.to_string d))

let test_symlink_loop_detected () =
  run_fs (fun s ->
      let c, _ = make_client s in
      Client.symlink_exn c ~target:"/l2" "/l1";
      Client.symlink_exn c ~target:"/l1" "/l2";
      match Client.read c ~client:1 "/l1/x" ~offset:0 ~bytes:1 with
      | Error (Errno.ELOOP | Errno.ENOENT) -> ()
      | _ -> Alcotest.fail "loop must be ELOOP")

let test_stat_fields () =
  run_fs (fun s ->
      let c, _ = make_client s in
      Client.mkdir_exn c "/dir";
      let st = Client.stat_exn c "/dir" in
      Alcotest.(check bool) "dir kind" true (st.Client.st_kind = Inode.Directory);
      Client.open_exn c ~client:1 "/f" Client.WO;
      Client.write_exn c ~client:1 "/f" ~offset:0 (Data.of_string "xyz");
      let st2 = Client.stat_exn c "/f" in
      Alcotest.(check int) "size" 3 st2.Client.st_size;
      Alcotest.(check bool) "file kind" true (st2.Client.st_kind = Inode.Regular))

let test_fsync_then_data_on_disk () =
  run_fs (fun s ->
      let c, _ = make_client s in
      let reg = (Client.fsys c).Fsys.registry in
      Client.open_exn c ~client:1 "/f" Client.WO;
      Client.write_exn c ~client:1 "/f" ~offset:0
        (Data.of_string (String.make 8192 'd'));
      Client.fsync_exn c "/f";
      match Capfs_stats.Registry.find reg "cache.flushed_blocks" with
      | Some st ->
        Alcotest.(check int) "two blocks flushed" 2
          (Capfs_stats.Stat.count st)
      | None -> Alcotest.fail "stat missing")

let test_persistence_across_remount () =
  (* PFS path: write through the whole stack, sync, then rebuild every
     component from the disk image alone. *)
  run_fs (fun s ->
      let drv =
        Driver.create s
          (Driver.mem_transport ~sector_bytes:512 ~total_sectors:16384 s ())
      in
      let () =
        let layout =
          Lfs.format_and_mount ~config:lfs_config s drv ~block_bytes:4096
        in
        let fs = Fsys.create ~cache_config ~layout s in
        let c = Client.create fs in
        Client.mkdir_exn c "/persist";
        Client.open_exn c ~client:1 "/persist/f" Client.WO;
        Client.write_exn c ~client:1 "/persist/f" ~offset:0
          (Data.of_string "survives remount");
        Client.close_exn c ~client:1 "/persist/f";
        Client.symlink_exn c ~target:"/persist/f" "/link";
        Client.sync_exn c
      in
      let layout2 = Lfs.mount ~config:lfs_config s drv in
      let fs2 = Fsys.create ~cache_config ~layout:layout2 s in
      let c2 = Client.create fs2 in
      let d = Client.read_exn c2 ~client:1 "/persist/f" ~offset:0 ~bytes:50 in
      Alcotest.(check string) "data" "survives remount" (Data.to_string d);
      Alcotest.(check string) "symlink" "/persist/f"
        (Client.readlink_exn c2 "/link");
      let names = Client.readdir_exn c2 "/" |> List.map (fun e -> e.Dir.name) in
      Alcotest.(check (list string)) "root entries" [ "link"; "persist" ] names)

let test_multimedia_prefetch () =
  run_fs (fun s ->
      let c, _ = make_client s in
      Client.create_file_exn c ~kind:Inode.Multimedia "/movie";
      Client.open_exn c ~client:1 "/movie" Client.RW;
      Client.write_exn c ~client:1 "/movie" ~offset:0
        (Data.of_string (String.make (64 * 1024) 'm'));
      Client.fsync_exn c "/movie";
      (* drop the cache by reading lots of other data *)
      Client.open_exn c ~client:1 "/filler" Client.WO;
      Client.write_exn c ~client:1 "/filler" ~offset:0
        (Data.of_string (String.make (256 * 1024) 'f'));
      (* read the start; the active file's fibre preloads ahead *)
      ignore (Client.read_exn c ~client:1 "/movie" ~offset:0 ~bytes:4096);
      Sched.sleep s 0.2;
      let cache = (Client.fsys c).Fsys.cache in
      let movie_ino = (Client.stat_exn c "/movie").Client.st_ino in
      let cached = List.length (Cache.keys_of_file cache movie_ino) in
      (* the whole 64 KB file fits inside the prefetch window *)
      let expected = Stdlib.min File.mm_window_blocks (64 * 1024 / 4096) in
      if cached < expected then
        Alcotest.failf "prefetch window not resident: %d blocks" cached;
      Client.close_exn c ~client:1 "/movie")

let test_concurrent_clients_isolated_handles () =
  run_fs (fun s ->
      let c, _ = make_client s in
      Client.open_exn c ~client:1 "/shared" Client.WO;
      Client.open_exn c ~client:2 "/shared" Client.RO;
      Alcotest.(check int) "two handles" 2 (Client.open_handles c);
      Client.close_exn c ~client:1 "/shared";
      (* client 2's handle still valid *)
      ignore (Client.read_exn c ~client:2 "/shared" ~offset:0 ~bytes:0);
      Client.close_exn c ~client:2 "/shared";
      Alcotest.(check int) "all closed" 0 (Client.open_handles c);
      match Client.close_ c ~client:2 "/shared" with
      | Error Errno.EBADF -> ()
      | _ -> Alcotest.fail "double close must be EBADF")

let test_close_all () =
  run_fs (fun s ->
      let c, _ = make_client s in
      Client.open_exn c ~client:7 "/a" Client.WO;
      Client.open_exn c ~client:7 "/b" Client.WO;
      Client.open_exn c ~client:8 "/c" Client.WO;
      Client.close_all_exn c ~client:7;
      Alcotest.(check int) "only client 8 remains" 1 (Client.open_handles c))

let test_many_files_under_pressure () =
  (* More dirty data than the cache holds: demand flushing and the LFS
     log keep everything consistent. *)
  run_fs (fun s ->
      let c, _ = make_client ~sectors:65536 s in
      Client.mkdir_exn c "/load";
      for i = 0 to 49 do
        let path = Printf.sprintf "/load/f%d" i in
        Client.open_exn c ~client:1 path Client.WO;
        Client.write_exn c ~client:1 path ~offset:0
          (Data.of_string (String.make 12288 (Char.chr (65 + (i mod 26)))));
        Client.close_exn c ~client:1 path
      done;
      for i = 0 to 49 do
        let path = Printf.sprintf "/load/f%d" i in
        let d = Client.read_exn c ~client:1 path ~offset:0 ~bytes:12288 in
        Alcotest.(check string)
          (Printf.sprintf "file %d" i)
          (String.make 12288 (Char.chr (65 + (i mod 26))))
          (Data.to_string d)
      done)

let prop_random_fs_operations_consistent =
  (* Random mixes of client operations against a reference model. *)
  QCheck.Test.make ~name:"client ops agree with a model" ~count:25
    QCheck.(
      list_of_size Gen.(int_range 1 60)
        (pair (int_range 0 4) (int_range 0 5)))
    (fun ops ->
      let ok = ref true in
      let s = Sched.create ~clock:`Virtual () in
      ignore
        (Sched.spawn s (fun () ->
             let c, _ = make_client ~sectors:65536 s in
             let model : (string, string) Hashtbl.t = Hashtbl.create 16 in
             let path i = Printf.sprintf "/f%d" i in
             List.iteri
               (fun n (file, action) ->
                 let p = path file in
                 match action with
                 | 0 | 1 | 2 ->
                   (* write n-dependent contents *)
                   let contents = Printf.sprintf "v%d-%d" n file in
                   Client.write_exn c ~client:1 p ~offset:0
                     (Data.of_string contents);
                   (* model: overwrite prefix semantics *)
                   let old =
                     Option.value ~default:"" (Hashtbl.find_opt model p)
                   in
                   let merged =
                     if String.length old > String.length contents then
                       contents
                       ^ String.sub old (String.length contents)
                           (String.length old - String.length contents)
                     else contents
                   in
                   Hashtbl.replace model p merged
                 | 3 ->
                   if Hashtbl.mem model p then begin
                     Client.delete_exn c p;
                     Hashtbl.remove model p
                   end
                 | 4 ->
                   if Hashtbl.mem model p then
                     Client.truncate_exn c p ~size:2;
                   (match Hashtbl.find_opt model p with
                   | Some v ->
                     Hashtbl.replace model p
                       (String.sub v 0 (Stdlib.min 2 (String.length v)))
                   | None -> ())
                 | _ -> ())
               ops;
             (* verify every model file reads back exactly *)
             Hashtbl.iter
               (fun p v ->
                 let d =
                   Client.read_exn c ~client:1 p ~offset:0 ~bytes:(String.length v)
                 in
                 if Data.to_string d <> v then ok := false)
               model));
      Sched.run s;
      !ok)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_random_fs_operations_consistent ]

let suite =
  [
    Alcotest.test_case "write/read roundtrip" `Quick test_write_read_roundtrip;
    Alcotest.test_case "short read at eof" `Quick test_read_beyond_eof_is_short;
    Alcotest.test_case "partial block rmw" `Quick test_partial_block_rmw;
    Alcotest.test_case "write spanning blocks" `Quick
      test_write_spanning_blocks;
    Alcotest.test_case "mkdir nested + readdir" `Quick
      test_mkdir_nested_and_readdir;
    Alcotest.test_case "namespace errors" `Quick test_namespace_errors;
    Alcotest.test_case "delete while open" `Quick
      test_delete_while_open_unix_semantics;
    Alcotest.test_case "truncate shrinks + absorbs" `Quick
      test_truncate_shrinks_and_absorbs;
    Alcotest.test_case "rename" `Quick test_rename_moves_and_replaces;
    Alcotest.test_case "symlink resolution" `Quick test_symlink_resolution;
    Alcotest.test_case "symlink loop" `Quick test_symlink_loop_detected;
    Alcotest.test_case "stat fields" `Quick test_stat_fields;
    Alcotest.test_case "fsync writes blocks" `Quick test_fsync_then_data_on_disk;
    Alcotest.test_case "persistence across remount" `Quick
      test_persistence_across_remount;
    Alcotest.test_case "multimedia prefetch" `Quick test_multimedia_prefetch;
    Alcotest.test_case "per-client handles" `Quick
      test_concurrent_clients_isolated_handles;
    Alcotest.test_case "close_all" `Quick test_close_all;
    Alcotest.test_case "many files under pressure" `Quick
      test_many_files_under_pressure;
  ]
  @ qsuite
