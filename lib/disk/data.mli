(** Data payloads: real bytes, simulated placeholders, slab slices, or
    gather lists.

    "The difference between a simulated cache and a real cache is the lack
    of a data pointer in the simulated case." A [Data.t] is either a real
    byte buffer (PFS), just a length (Patsy), an off-heap view into an
    {!Arena} slab, or a scatter-gather list of any of these (a merged I/O
    request carrying several waiters' buffers as one transfer). All
    framework code moves [Data.t] values around; only the PFS helper
    components ever look inside. The simulator charges memory-copy time
    through {!copy_seconds}, so moving fake data still costs simulated
    time. *)

(** An off-heap slab: a char bigarray the GC never scans or moves. *)
type buf =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t =
  | Real of bytes
  | Sim of int  (** length in bytes, no backing store *)
  | Gather of gather
      (** scatter-gather list; always >= 2 segments, at least one real *)
  | Slice of slice
      (** an [off, off+len) window of a slab; arena-backed when [s_cell]
          is set, in which case {!retain}/{!release} govern its life *)

and gather = {
  g_total : int;  (** total length in bytes *)
  g_segs : (int * t) list;
      (** (offset, segment) sorted ascending, abutting, covering
          [0, g_total); segments are [Real], [Sim] or [Slice], never
          nested *)
}

and slice = { s_buf : buf; s_off : int; s_len : int; s_cell : cell option }

and cell = {
  c_slot : int;  (** the owning arena's slot index *)
  mutable c_rc : int;
  c_free : cell -> unit;  (** installed by the arena; runs at rc = 0 *)
}

(** [real n] is a zero-filled real buffer of [n] bytes. *)
val real : int -> t

(** [sim n] is a simulated payload of [n] bytes. *)
val sim : int -> t

(** [of_string s] is a real payload holding [s]. *)
val of_string : string -> t

(** [gather ts] lays the payloads end to end as one scatter-gather value
    without copying — the result {e aliases} the segment buffers, so it
    must be consumed before the sources are mutated. Nested gathers are
    flattened; degenerate inputs normalise to [Sim]/the sole segment, so
    an all-simulated gather costs nothing. *)
val gather : t list -> t

(** Payload length in bytes. *)
val length : t -> int

(** [sub t ~pos ~len] extracts a slice. Simulated slices stay simulated;
    a sub of a [Slice] is a zero-copy {e borrowed} view of the same slab
    cell (no refcount: it is only valid while the parent is retained).
    Raises [Invalid_argument] on out-of-range. *)
val sub : t -> pos:int -> len:int -> t

(** [blit ~src ~src_pos ~dst ~dst_pos ~len] copies bytes when both sides
    are real; when either side is simulated it only checks bounds (there
    is nothing to move). Mixed copies into a real destination from a
    [Sim] source zero-fill the range, modelling reading from a fresh
    simulated disk. Gather sources and destinations are walked segment by
    segment; slab slices copy through the bigarray. *)
val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit

(** [concat ts] joins payloads with a copy; the result is [Real] iff all
    inputs are fully real (use {!gather} to join without copying). *)
val concat : t list -> t

(** [to_string t] renders real bytes, or zeros for simulated data. *)
val to_string : t -> string

(** [is_real t] — for a gather, whether every segment is real. A [Slice]
    is always real. *)
val is_real : t -> bool

(** {2 Slab-cell reference counting}

    No-ops for everything except arena-backed slices (and gathers
    containing them). A component that buffers a payload beyond the call
    that delivered it — the LFS open segment, a flush snapshot in flight
    — must [retain] before stashing and [release] when done; the cache
    releases its blocks' payloads when they leave the table. Retain and
    release of a gather walk its segments, so they pair only with each
    other or with the exact slices gathered. *)

val retain : t -> unit
val release : t -> unit

(** [detach t] deep-copies slab-backed payloads onto the GC heap —
    required before a device store keeps the contents past the request,
    since arena cells recycle. [Real]/[Sim] values pass through. *)
val detach : t -> t

(** [copy_seconds ~rate_bytes_per_sec len] is the simulated cost of a
    [len]-byte memory copy; the simulator sleeps this long wherever a real
    system would move data between buffers. *)
val copy_seconds : rate_bytes_per_sec:float -> int -> float
