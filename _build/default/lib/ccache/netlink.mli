(** Simulated client/server network links.

    PFS speaks NFS over a network; to "simulate client/server interaction
    and client cache performance" (§3) the framework needs the wire too.
    A link charges each message a fixed per-RPC latency plus payload
    serialization time, and models half-duplex contention: concurrent
    senders share the medium (10 Mbit/s Ethernet of the era by
    default). *)

type t

(** [ethernet_10 sched] — 10 Mbit/s, 0.5 ms per-message latency: a
    1990s departmental LAN. *)
val ethernet_10 : ?registry:Capfs_stats.Registry.t -> Capfs_sched.Sched.t -> t

val create :
  ?registry:Capfs_stats.Registry.t ->
  ?name:string ->
  bandwidth_bytes_per_sec:float ->
  latency:float ->
  Capfs_sched.Sched.t ->
  t

(** [transfer t ~bytes] blocks the calling fibre for the message's time
    on the (contended) medium. [bytes] excludes protocol overhead; a
    fixed 160-byte header is added per message. *)
val transfer : t -> bytes:int -> unit

(** Total payload bytes carried so far (both directions). *)
val bytes_carried : t -> int
