type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable len : int;
}

let create ~cmp = { cmp; data = [||]; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.len && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t x =
  if t.len = Array.length t.data then begin
    let grown = Array.make (Stdlib.max 8 (2 * t.len)) x in
    Array.blit t.data 0 grown 0 t.len;
    t.data <- grown
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek t = if t.len = 0 then None else Some t.data.(0)

exception Empty

let top_exn t = if t.len = 0 then raise Empty else t.data.(0)

let delete_at t i =
  t.len <- t.len - 1;
  if i <> t.len then begin
    t.data.(i) <- t.data.(t.len);
    sift_down t i;
    sift_up t i
  end

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    delete_at t 0;
    Some top
  end

let remove t p =
  let rec find i = if i >= t.len then None else
      if p t.data.(i) then Some i else find (i + 1)
  in
  match find 0 with
  | None -> false
  | Some i ->
    delete_at t i;
    true

let to_list t = Array.to_list (Array.sub t.data 0 t.len)
let clear t = t.len <- 0
