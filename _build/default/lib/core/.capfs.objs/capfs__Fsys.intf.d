lib/core/fsys.mli: Capfs_cache Capfs_layout Capfs_sched Capfs_stats
