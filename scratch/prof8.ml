module Sched = Capfs_sched.Sched

let () =
  let sched = Sched.create ~seed:42 ~clock:`Virtual () in
  ignore
    (Sched.spawn sched (fun () ->
         let n = 100000 in
         let w0 = Gc.minor_words () in
         for _ = 1 to n do Sched.sleep sched 1e-6 done;
         Printf.printf "sleep:  %.1f words\n" ((Gc.minor_words () -. w0) /. float_of_int n);
         let w0 = Gc.minor_words () in
         for _ = 1 to n do Sched.yield sched done;
         Printf.printf "yield:  %.1f words\n" ((Gc.minor_words () -. w0) /. float_of_int n)));
  Sched.run sched
