module Sched = Capfs_sched.Sched
module Sync = Capfs_sched.Sync

let header_bytes = 160

type t = {
  sched : Sched.t;
  bandwidth : float;
  latency : float;
  medium : Sync.Mutex.t;
  mutable carried : int;
  registry : Capfs_stats.Registry.t option;
  nname : string;
}

let create ?registry ?(name = "net") ~bandwidth_bytes_per_sec ~latency sched =
  if bandwidth_bytes_per_sec <= 0. then invalid_arg "Netlink.create: bandwidth";
  (match registry with
  | Some r ->
    Capfs_stats.Registry.register r
      (Capfs_stats.Stat.scalar (name ^ ".transfer"))
  | None -> ());
  {
    sched;
    bandwidth = bandwidth_bytes_per_sec;
    latency;
    medium = Sync.Mutex.create ~name sched;
    carried = 0;
    registry;
    nname = name;
  }

let ethernet_10 ?registry sched =
  create ?registry ~name:"ether10"
    ~bandwidth_bytes_per_sec:(10.0e6 /. 8.)
    ~latency:0.5e-3 sched

let transfer t ~bytes =
  if bytes < 0 then invalid_arg "Netlink.transfer: negative size";
  let wire = bytes + header_bytes in
  Sync.Mutex.with_lock t.medium (fun () ->
      let dt = t.latency +. (float_of_int wire /. t.bandwidth) in
      Sched.sleep t.sched dt;
      t.carried <- t.carried + bytes;
      match t.registry with
      | Some r ->
        Capfs_stats.Registry.record r (t.nname ^ ".transfer") dt
      | None -> ())

let bytes_carried t = t.carried
