lib/disk/iorequest.ml: Capfs_sched Data Format
