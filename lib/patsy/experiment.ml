module Sched = Capfs_sched.Sched
module Stats = Capfs_stats
module Disk_model = Capfs_disk.Disk_model
module Bus = Capfs_disk.Bus
module Sim_disk = Capfs_disk.Sim_disk
module Driver = Capfs_disk.Driver
module Iosched = Capfs_disk.Iosched
module Geometry = Capfs_disk.Geometry
module Cache = Capfs_cache.Cache
module Replacement = Capfs_cache.Replacement
module Lfs = Capfs_layout.Lfs
module Multiplex = Capfs_layout.Multiplex
module Fsys = Capfs.Fsys
module Client = Capfs.Client

type policy = Write_delay | Ups | Nvram_whole | Nvram_partial

let policy_name = function
  | Write_delay -> "write-delay-30s"
  | Ups -> "ups"
  | Nvram_whole -> "nvram-whole-file"
  | Nvram_partial -> "nvram-partial"

let all_policies = [ Write_delay; Ups; Nvram_whole; Nvram_partial ]

type config = {
  policy : policy;
  cache_mb : int;
  nvram_mb : int;
  ndisks : int;
  nbuses : int;
  disk_model : Disk_model.t;
  iosched : string;
  replacement : string;
  mem_copy_rate : float;
  seg_blocks : int;
  cleaner : Lfs.cleaner_policy;
  async_flush : bool;
  coalesce : bool;
  flush_window : int;
  max_extent : int;
  request_overhead : float option;
  seed : int;
  trace_buffer : int;
  fault_plan : Capfs_fault.Plan.t option;
}

let default policy =
  {
    policy;
    cache_mb = 128;
    nvram_mb = 4;
    ndisks = 10;
    nbuses = 3;
    disk_model = Disk_model.hp97560;
    iosched = "clook";
    replacement = "lru";
    (* a Sun-4/280-era memcpy: buffer copies are not free *)
    mem_copy_rate = 20.0e6;
    seg_blocks = 128;
    cleaner = Lfs.Cost_benefit;
    async_flush = true;
    coalesce = true;
    flush_window = 4;
    max_extent = 64;
    request_overhead = None;
    seed = 1996;
    trace_buffer = 0;
    fault_plan = None;
  }

type outcome = {
  name : string;
  config : config;
  replay : Replay.result;
  registry : Stats.Registry.t;
  layout_stats : (string * float) list;
  blocks_flushed : int;
  writes_absorbed : int;
  cache_hit_rate : float;
  events : Capfs_obs.Event.t list;
}

let block_bytes = 4096

let cache_config_of cfg =
  let capacity_blocks = cfg.cache_mb * 1024 * 1024 / block_bytes in
  let nvram_blocks = cfg.nvram_mb * 1024 * 1024 / block_bytes in
  let base =
    {
      Cache.block_bytes;
      capacity_blocks;
      nvram_blocks = 0;
      trigger = Cache.Demand;
      scope = `Whole_file;
      async_flush = cfg.async_flush;
      mem_copy_rate = cfg.mem_copy_rate;
      coalesce = cfg.coalesce;
      flush_window = cfg.flush_window;
      max_extent_blocks = cfg.max_extent;
    }
  in
  match cfg.policy with
  | Write_delay ->
    {
      base with
      Cache.trigger = Cache.Periodic { max_age = 30.; scan_interval = 5. };
    }
  | Ups -> base
  | Nvram_whole -> { base with Cache.nvram_blocks }
  | Nvram_partial -> { base with Cache.nvram_blocks; scope = `Single_block }

let lfs_config_of cfg d =
  {
    Lfs.default_config with
    Lfs.seg_blocks = cfg.seg_blocks;
    cleaner = cfg.cleaner;
    first_ino = d + 1;
    ino_stride = cfg.ndisks;
  }

type farm = {
  f_client : Client.t;
  f_registry : Stats.Registry.t;
  f_disks : Sim_disk.t array;
  f_drivers : Driver.t array;
}

let build_farm ?(backing = false) sched cfg =
  if cfg.ndisks < 1 || cfg.nbuses < 1 then
    invalid_arg "Experiment: need at least one disk and one bus";
  let registry = Stats.Registry.create () in
  let disk_model =
    (* per-request fixed cost (command decode etc.) is an experiment
       knob; [None] keeps the model's own figure *)
    match cfg.request_overhead with
    | None -> cfg.disk_model
    | Some o -> { cfg.disk_model with Disk_model.controller_overhead = o }
  in
  let buses =
    Array.init cfg.nbuses (fun b ->
        Bus.scsi2 ~registry ~name:(Stats.Names.bus b) sched)
  in
  let disks =
    Array.init cfg.ndisks (fun d ->
        Sim_disk.create ~registry
          ~name:(Stats.Names.disk d)
          ~backing sched disk_model
          buses.(d mod cfg.nbuses))
  in
  let geometry = disk_model.Disk_model.geometry in
  let spb = block_bytes / geometry.Geometry.sector_bytes in
  let drivers =
    Array.init cfg.ndisks (fun d ->
        Driver.create ~registry
          ~name:(Stats.Names.driver d)
          ~policy:(Iosched.by_name geometry cfg.iosched)
          ~coalesce:cfg.coalesce
          ~max_merge_sectors:(cfg.max_extent * spb)
          sched
          (Driver.sim_transport disks.(d)))
  in
  let volumes =
    Array.init cfg.ndisks (fun d ->
        Lfs.format_and_mount ~registry
          ~name:(Stats.Names.lfs d)
          ~config:(lfs_config_of cfg d) sched drivers.(d) ~block_bytes)
  in
  let layout = Multiplex.layout volumes in
  let replacement =
    Replacement.by_name ~seed:cfg.seed
      ~capacity:(cfg.cache_mb * 1024 * 1024 / block_bytes)
      cfg.replacement
  in
  let fs =
    Fsys.create ~registry ~replacement ~cache_config:(cache_config_of cfg)
      ~layout sched
  in
  { f_client = Client.create fs; f_registry = registry; f_disks = disks;
    f_drivers = drivers }

let build_instance sched cfg =
  let f = build_farm sched cfg in
  (f.f_client, f.f_registry)

let injector_of cfg =
  match cfg.fault_plan with
  | Some plan -> Capfs_fault.Injector.create ~seed:cfg.seed plan
  | None -> Capfs_fault.Injector.null

let stat_count registry name =
  match Stats.Registry.find registry name with
  | Some st -> Stats.Stat.count st
  | None -> 0

let snapshot outcome =
  Stats.Snapshot.capture ~filter:Stats.Snapshot.policy_visible
    outcome.registry

let run cfg ~trace =
  let tracer =
    if cfg.trace_buffer > 0 then
      Capfs_obs.Tracer.create ~capacity:cfg.trace_buffer ()
    else Capfs_obs.Tracer.null
  in
  let sched =
    Sched.create ~seed:cfg.seed ~clock:`Virtual ~tracer
      ~injector:(injector_of cfg) ()
  in
  let out = ref None in
  ignore
    (Sched.spawn sched ~name:"experiment" (fun () ->
         let client, registry = build_instance sched cfg in
         let replay = Replay.run client trace in
         (* drain outstanding writes so flush counters are complete; a
            fault plan can legitimately fail this final sync — the
            replay's own error counters already tell that story *)
         (match Client.sync client with Ok () | Error _ -> ());
         let fs = Client.fsys client in
         let hits = stat_count registry "cache.hits" in
         let misses = stat_count registry "cache.misses" in
         let hit_rate =
           if hits + misses = 0 then 0.
           else float_of_int hits /. float_of_int (hits + misses)
         in
         out :=
           Some
             {
               name = policy_name cfg.policy;
               config = cfg;
               replay;
               registry;
               layout_stats = fs.Fsys.layout.Capfs_layout.Layout.layout_stats ();
               blocks_flushed = stat_count registry "cache.flushed_blocks";
               writes_absorbed = stat_count registry "cache.absorbed_writes";
               cache_hit_rate = hit_rate;
               events = Capfs_obs.Tracer.events tracer;
             }));
  Sched.run sched;
  match !out with
  | Some o -> o
  | None -> failwith "Experiment.run: simulation produced no outcome"
