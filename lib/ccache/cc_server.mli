(** The server half of Sprite-style client caching (§3 future work).

    "By using client caching we hope to reduce the amount of network
    traffic and file latency" — with Sprite's consistency protocol
    (Nelson, Welch & Ousterhout 1988):

    - every write-open bumps the file's {e version}; a client whose
      cached copy carries an older version invalidates it on open
      (sequential write-sharing);
    - when one client has a file open for writing while another opens
      it, caching of that file is {e disabled} on every client and all
      I/O goes through the server (concurrent write-sharing);
    - dirty client blocks are recalled on demand when another client
      opens the file before the writer closed it.

    The server wraps the ordinary abstract client interface, so the same
    PFS/Patsy stack sits underneath unchanged. *)

type t

(** How the client intends to use the file; a [Write] open bumps the
    file's version and can flip other clients into the uncacheable
    regime. *)
type open_mode = Read | Write

(** What the client must do with its cache after an open. *)
type open_grant = {
  g_ino : int;        (** server-side inode number: the cache key and the
                          handle for every subsequent rpc on this file *)
  g_version : int;   (** invalidate the cached copy if yours is older *)
  g_cacheable : bool; (** false: concurrent write sharing, bypass cache *)
  g_size : int;       (** current size in bytes, so the client can run
                          reads and appends against its cache without
                          asking again *)
}

(** [create client link] wraps an abstract-client interface (any
    Patsy/PFS assembly) with the consistency engine; every rpc charges
    [link] for its messages. With [registry], protocol counters are
    registered under ["ccsrv.*"] (opens, recalls, disables, reads,
    writes). *)
val create :
  ?registry:Capfs_stats.Registry.t -> Capfs.Client.t -> Netlink.t -> t

(** The block size of the underlying file system — the unit of
    {!rpc_read_block}/{!rpc_write_block} and of client cache slots. *)
val block_bytes : t -> int

(** The scheduler of the file system behind the server; clients use it
    to timestamp trace events with the shared virtual clock. *)
val sched : t -> Capfs_sched.Sched.t

(** Attach a client: [recall] asks it to write back and drop its dirty
    blocks of the file; [disable] tells it to stop caching the file.
    Returns the client's server-side id (pass to the rpcs). *)
val attach :
  t ->
  client_id:int ->
  recall:(ino:int -> unit) ->
  disable:(ino:int -> unit) ->
  unit

(** {2 RPC entry points} (each charges the network link) *)

(** [rpc_open t ~client_id path mode] runs the Sprite open protocol:
    recalls dirty blocks from a previous writer, decides cacheability,
    and returns the grant. Creates the file on a [Write] open of a
    missing path. *)
val rpc_open : t -> client_id:int -> string -> open_mode -> open_grant

(** [rpc_close t ~client_id ~ino] releases the open; when the last
    writer closes, files under the uncacheable regime become cacheable
    again for later opens. *)
val rpc_close : t -> client_id:int -> ino:int -> unit

(** [rpc_read_block t ~ino idx] — one file block. *)
val rpc_read_block : t -> client_id:int -> ino:int -> int -> Capfs_disk.Data.t

(** [rpc_write_block t ~ino idx data] — one file block, written through
    the server's (shared) cache: a recalled or uncacheable write. *)
val rpc_write_block :
  t -> client_id:int -> ino:int -> int -> Capfs_disk.Data.t -> unit

(** [rpc_set_size] propagates a client-side size change (append). *)
val rpc_set_size : t -> client_id:int -> ino:int -> int -> unit

(** Number of files currently under the concurrent-write-sharing
    (uncacheable) regime. *)
val uncacheable_files : t -> int
