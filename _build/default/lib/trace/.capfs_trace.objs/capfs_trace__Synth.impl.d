lib/trace/synth.ml: Capfs_stats Hashtbl List Printf Record Stdlib String
