lib/layout/lfs.mli: Capfs_disk Capfs_sched Capfs_stats Layout
