(** The write-saving policy experiments (§5.1 of the paper).

    An experiment builds a complete Patsy instance — virtual-time
    scheduler, [ndisks] simulated HP97560 drives spread over [nbuses]
    SCSI-2 buses, one segmented-LFS volume per disk behind a shared
    server cache — configures one of the four flush policies, replays a
    trace, and returns the measured latency distribution.

    Policies:
    - {!Write_delay}: the Unix 30-second-update baseline;
    - {!Ups}: write-saving — dirty data stays in (UPS-protected) RAM
      until block allocation runs out of clean frames;
    - {!Nvram_whole}: dirty data confined to a small NVRAM, whole-file
      drains;
    - {!Nvram_partial}: same NVRAM, single-block drains. *)

type policy = Write_delay | Ups | Nvram_whole | Nvram_partial

val policy_name : policy -> string
val all_policies : policy list

type config = {
  policy : policy;
  cache_mb : int;           (** server cache, MB (paper: 128) *)
  nvram_mb : int;           (** NVRAM pool, MB (paper: 4) *)
  ndisks : int;             (** simulated HP97560 drives *)
  nbuses : int;             (** SCSI-2 buses the disks share *)
  disk_model : Capfs_disk.Disk_model.t;
  iosched : string;         (** disk-queue policy name (paper: clook) *)
  replacement : string;     (** cache replacement policy name *)
  mem_copy_rate : float;    (** simulated memcpy bytes/s (0 = free) *)
  seg_blocks : int;         (** LFS segment size in blocks *)
  cleaner : Capfs_layout.Lfs.cleaner_policy;
  async_flush : bool;       (** §5.2 lesson; false for the ablation *)
  coalesce : bool;
      (** I/O coalescing end to end: the cache clusters flush sets into
          contiguous extents and the driver merges adjacent queued
          requests. [false] restores the pre-clustering behaviour
          bit-for-bit. *)
  flush_window : int;       (** extent write-backs in flight at once *)
  max_extent : int;         (** extent / merge cap, in file blocks *)
  request_overhead : float option;
      (** per-request fixed disk cost (controller command decode),
          seconds; [None] keeps the disk model's own figure *)
  seed : int;
  trace_buffer : int;
      (** event-trace ring capacity; 0 (the default) disables tracing *)
  fault_plan : Capfs_fault.Plan.t option;
      (** disk-fault schedule for this run; [None] (the default) keeps
          every disk perfect. The plan's own seed, when unset, defaults
          to [seed], so a config is fully deterministic. *)
}

(** Paper-shaped defaults for a policy (128 MB cache, 4 MB NVRAM, 10
    disks on 3 buses, C-LOOK, LRU). *)
val default : policy -> config

type outcome = {
  name : string;
  config : config;
  replay : Replay.result;
  registry : Capfs_stats.Registry.t;
  layout_stats : (string * float) list;
  (* headline counters summed over the run *)
  blocks_flushed : int;     (** cache blocks written to the log *)
  writes_absorbed : int;    (** dirty blocks that died in memory *)
  cache_hit_rate : float;
  events : Capfs_obs.Event.t list;
      (** the run's structured event trace, oldest first; empty unless
          [config.trace_buffer] > 0 *)
}

(** The file block size every instantiation uses (4096 bytes). Exposed
    so other front ends (diffval's PFS half, tests) assemble stacks with
    the very same geometry. *)
val block_bytes : int

(** [snapshot outcome] freezes the outcome's registry restricted to the
    policy-visible keys ({!Capfs_stats.Snapshot.policy_visible}) — the
    simulator half of a differential sim-vs-real comparison. The replay
    already drained outstanding writes with a final sync, so the flush
    counters are complete. *)
val snapshot : outcome -> Capfs_stats.Snapshot.t

(** [run config ~trace] executes one experiment in its own virtual-time
    scheduler and returns the measurements. Every run builds a private
    scheduler, disk farm, cache and statistics registry, so concurrent
    runs in different domains share no mutable state; the trace records
    are read, never written. Array-backed sources replay from the array
    (the historical path, bit for bit); cursor-backed sources stream,
    keeping replay memory O(active window) however long the trace is
    (see {!Replay.run_source}). *)
val run : config -> trace:Capfs_trace.Source.t -> outcome

(** [build_instance sched config] assembles the simulator stack (for
    callers that want to drive it themselves, e.g. the bin/patsy CLI and
    the examples): returns the client interface and the registry. *)
val build_instance :
  Capfs_sched.Sched.t -> config -> Capfs.Client.t * Capfs_stats.Registry.t

(** The assembled simulator stack with its internals exposed — what the
    crash-recovery runner needs to snapshot disks and remount volumes. *)
type farm = {
  f_client : Capfs.Client.t;
  f_registry : Capfs_stats.Registry.t;
  f_disks : Capfs_disk.Sim_disk.t array;
  f_drivers : Capfs_disk.Driver.t array;
}

(** [build_farm sched config] is {!build_instance} with the disk farm
    exposed. [backing:true] (default false) gives every simulated disk a
    real in-memory sector store, so its contents survive a simulated
    crash and can seed a recovery mount. *)
val build_farm : ?backing:bool -> Capfs_sched.Sched.t -> config -> farm

(** The injector [run] wires into the scheduler: built from
    [config.fault_plan] (the null injector when [None]). *)
val injector_of : config -> Capfs_fault.Injector.t

(** Per-volume LFS geometry/cleaning config for volume [d] of
    [config.ndisks] (inode space striped across volumes). *)
val lfs_config_of : config -> int -> Capfs_layout.Lfs.config

(** The cache configuration [config.policy] implies. *)
val cache_config_of : config -> Capfs_cache.Cache.config
