(** Cooperative thread scheduler with virtual or real time.

    This is the paper's central trick made concrete: every component in the
    framework blocks and sleeps through this scheduler, and the scheduler is
    instantiated either with a {e virtual} clock — time jumps to the next
    timer when no thread is runnable, giving a discrete-event simulator
    (Patsy) — or with a {e real} clock, where timers expire in wall-clock
    time and external file-descriptor events are dispatched (PFS). The
    file-system code in between is byte-for-byte identical.

    Threads are one-shot effect-handler fibres: [spawn] registers a fibre,
    [run] dispatches fibres until no non-daemon fibre remains. All blocking
    operations ([yield], [sleep], [await], …) must be called from inside a
    fibre; calling them outside [run] raises [Effect.Unhandled].

    As in the paper, the default dispatch policy picks a {e random} runnable
    thread, which shakes out ordering assumptions in policies before they
    reach the real system; a FIFO policy is available for debugging. *)

type t

type clock = [ `Virtual  (** discrete-event time; simulator *)
             | `Real     (** wall-clock time; on-line system *) ]

type policy = [ `Random | `Fifo ]

(** Blocking wake-up channel (the paper's "synchronization primitive based
    on events"). A [signal] with no waiter is remembered and satisfies the
    next [await], so drivers never lose completions. *)
type event

type thread_id = int

(** Raised by [run] when no thread is runnable, no timer is pending, yet
    non-daemon threads are still blocked. Carries their names. *)
exception Deadlock of string list

(** Raised by blocking operations when the scheduler has been stopped. *)
exception Stopped

(** [create ~clock ()] builds a scheduler. [tracer] (default
    {!Capfs_obs.Tracer.null}, i.e. off) receives a structured event for
    every fibre dispatch, block and wake; components built on this
    scheduler (cache, disk driver, layouts) emit their own events
    through the same tracer, so one flight recorder covers the whole
    instantiation. *)
val create :
  ?seed:int ->
  ?policy:policy ->
  ?tracer:Capfs_obs.Tracer.t ->
  ?injector:Capfs_fault.Injector.t ->
  clock:clock ->
  unit ->
  t

val clock : t -> clock

(** The scheduler's event tracer ({!Capfs_obs.Tracer.null} when tracing
    is off). Instrumented components guard emissions with
    [Tracer.enabled (Sched.tracer sched)]. *)
val tracer : t -> Capfs_obs.Tracer.t

(** The scheduler's fault injector ({!Capfs_fault.Injector.null}, i.e.
    off, by default). Carried here for the same reason as the tracer:
    every component of an instantiation sees one fault schedule without
    any of them depending on the injection library's wiring. *)
val injector : t -> Capfs_fault.Injector.t

(** Current time in seconds: virtual-time offset (simulator) or elapsed
    wall-clock since [run] started (real). Starts at [0.]. *)
val now : t -> float

(** [spawn t f] registers a fibre. [daemon] fibres (device service loops,
    background flushers) do not keep [run] alive. Fibres may spawn further
    fibres. Returns the new thread's id. *)
val spawn : ?name:string -> ?daemon:bool -> t -> (unit -> unit) -> thread_id

(** Dispatch until every non-daemon fibre has finished (or [until] virtual/
    elapsed seconds have passed, when given). Re-raises the first uncaught
    fibre exception after the loop winds down. Not reentrant. *)
val run : ?until:float -> t -> unit

(** Ask the run loop to exit after the current fibre suspends. *)
val stop : t -> unit

(** {2 Operations available inside fibres} *)

(** Give other runnable fibres a chance. *)
val yield : t -> unit

(** Block for [dt] seconds of scheduler time. [dt <= 0] is a [yield]. *)
val sleep : t -> float -> unit

val new_event : ?name:string -> t -> event

(** Block until the event is signalled (or consume a pending signal). *)
val await : t -> event -> unit

(** [await_timeout t ev dt] is [true] if signalled within [dt] seconds,
    [false] on timeout. *)
val await_timeout : t -> event -> float -> bool

(** Wake one waiter, or remember the signal if none is waiting. *)
val signal : t -> event -> unit

(** Wake every current waiter; remembers nothing. *)
val broadcast : t -> event -> unit

(** Number of fibres currently waiting on the event. *)
val waiters : t -> event -> int

(** [wait_readable t fd] blocks the fibre until [fd] is readable. Only
    available under the [`Real] clock (the paper: "external events are
    managed by the scheduler when it is configured in a real system");
    raises [Invalid_argument] under [`Virtual]. *)
val wait_readable : t -> Unix.file_descr -> unit

(** {2 Introspection} *)

(** Name of the currently running fibre; ["<main>"] outside [run]. *)
val self_name : t -> string

(** Live (spawned, not finished) fibre count, daemons included. *)
val live_threads : t -> int

(** Names of live fibres; daemons are prefixed with ["*"]. *)
val live_names : t -> string list
