lib/core/dir.ml: Capfs_disk Capfs_layout File List
