module Sched = Capfs_sched.Sched
module Driver = Capfs_disk.Driver
module Iorequest = Capfs_disk.Iorequest
module Data = Capfs_disk.Data

(* transports we created, so [close] can find the fd *)
let fds : (string, Unix.file_descr) Hashtbl.t = Hashtbl.create 4

let transport ?(sector_bytes = 512) sched ~path ~size_bytes () =
  if size_bytes < sector_bytes then
    invalid_arg "File_blockdev.transport: size smaller than one sector";
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let current = (Unix.fstat fd).Unix.st_size in
  if current < size_bytes then begin
    ignore (Unix.lseek fd (size_bytes - 1) Unix.SEEK_SET);
    ignore (Unix.write fd (Bytes.make 1 '\000') 0 1)
  end;
  let total_sectors = size_bytes / sector_bytes in
  let pread ~off ~len =
    let buf = Bytes.make len '\000' in
    ignore (Unix.lseek fd off Unix.SEEK_SET);
    let rec fill pos =
      if pos < len then begin
        let n = Unix.read fd buf pos (len - pos) in
        if n = 0 then () (* sparse tail reads as zeroes *)
        else fill (pos + n)
      end
    in
    fill 0;
    buf
  in
  (* pwritev-style vectored write: one seek, then each segment of the
     payload written in sequence — a merged scatter-gather request never
     flattens into one contiguous heap buffer. Slab slices and simulated
     segments stage through a reused scratch buffer (the only copy on
     the whole write path, at the real device boundary). *)
  let scratch = ref Bytes.empty in
  let scratch_for len =
    if Bytes.length !scratch < len then scratch := Bytes.create len;
    !scratch
  in
  let write_seq b pos len =
    let rec drain pos remaining =
      if remaining > 0 then begin
        let n = Unix.write fd b pos remaining in
        drain (pos + n) (remaining - n)
      end
    in
    drain pos len
  in
  let rec write_segment (d : Data.t) =
    match d with
    | Data.Real b -> write_seq b 0 (Bytes.length b)
    | Data.Slice _ ->
      let len = Data.length d in
      let buf = scratch_for len in
      Data.blit ~src:d ~src_pos:0 ~dst:(Data.Real buf) ~dst_pos:0 ~len;
      write_seq buf 0 len
    | Data.Sim n ->
      (* simulated payloads have no bytes; persist zeroes *)
      let buf = scratch_for n in
      Bytes.fill buf 0 n '\000';
      write_seq buf 0 n
    | Data.Gather g -> List.iter (fun (_, s) -> write_segment s) g.Data.g_segs
  in
  let pwritev ~off d =
    ignore (Unix.lseek fd off Unix.SEEK_SET);
    write_segment d
  in
  let execute ~queue_empty:_ (req : Iorequest.t) =
    if Iorequest.last_lba req > total_sectors then
      invalid_arg "File_blockdev: request beyond device";
    req.Iorequest.started_at <- Sched.now sched;
    let off = req.Iorequest.lba * sector_bytes in
    let len = req.Iorequest.sectors * sector_bytes in
    (match req.Iorequest.op with
    | Iorequest.Read -> req.Iorequest.data <- Some (Data.Real (pread ~off ~len))
    | Iorequest.Write -> (
      match req.Iorequest.data with
      | Some d -> pwritev ~off d
      | None -> ()));
    Iorequest.complete sched req
  in
  let name = "file:" ^ path in
  Hashtbl.replace fds name fd;
  {
    Driver.t_name = name;
    sector_bytes;
    total_sectors;
    execute;
    current_cylinder = (fun () -> 0);
  }

let close (t : Driver.transport) =
  match Hashtbl.find_opt fds t.Driver.t_name with
  | Some fd ->
    Unix.close fd;
    Hashtbl.remove fds t.Driver.t_name
  | None -> ()
