(** The global table of instantiated files.

    "Once the file is in memory, the component stores a reference to it
    in a global file table" — one {!File.t} per in-core inode, shared by
    every client. Files unlinked while open stay alive (Unix semantics)
    until their last close, then their blocks and inode are freed. *)

type t

val create : Fsys.t -> t

(** [get t ino] returns the instantiated file, loading the inode from
    the layout on first touch; [None] if the inode does not exist. *)
val get : t -> int -> File.t option

(** [create_file t ~kind] allocates a fresh inode and instantiates it. *)
val create_file : t -> kind:Capfs_layout.Inode.kind -> File.t

(** Marks the file as unlinked; actual freeing happens when the open
    count drops to zero (or immediately if it already is). *)
val unlink : t -> int -> unit

val is_unlinked : t -> int -> bool

(** To be called after every [File.closed]: reaps unlinked files whose
    open count reached zero. *)
val maybe_reap : t -> int -> unit

(** Number of in-core files (diagnostics). *)
val loaded : t -> int
