test/test_patsy.ml: Alcotest Array Capfs_disk Capfs_layout Capfs_patsy Capfs_sched Capfs_stats Capfs_trace List String
