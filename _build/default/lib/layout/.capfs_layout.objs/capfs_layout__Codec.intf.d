lib/layout/codec.mli:
