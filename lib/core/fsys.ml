module Sched = Capfs_sched.Sched
module Errno = Capfs_core.Errno
module Cache = Capfs_cache.Cache
module Layout = Capfs_layout.Layout
module Inode = Capfs_layout.Inode

type config = { block_bytes : int; track_atime : bool; root_ino : int }

let default_config = { block_bytes = 4096; track_atime = false; root_ino = 1 }

type t = {
  sched : Sched.t;
  registry : Capfs_stats.Registry.t;
  cache : Cache.t;
  layout : Layout.t;
  config : config;
}

let create ?registry ?(config = default_config) ?replacement ?arena
    ~cache_config ~layout sched =
  if layout.Layout.block_bytes <> config.block_bytes then
    invalid_arg "Fsys.create: layout and config disagree on block size";
  if cache_config.Cache.block_bytes <> config.block_bytes then
    invalid_arg "Fsys.create: cache and config disagree on block size";
  let registry =
    match registry with Some r -> r | None -> Capfs_stats.Registry.create ()
  in
  let cache =
    (* the cache's write-back daemons cannot thread a [result] back to a
       caller; layout failures surface as [Errno.Error] and take down the
       flushing fibre (hard faults escalate) *)
    Cache.create ~registry ?replacement ?arena
      ~writeback:(fun ups -> Errno.ok_exn (layout.Layout.write_blocks ups))
      sched cache_config
  in
  let t = { sched; registry; cache; layout; config } in
  (* a fresh layout has no root directory yet *)
  (match Errno.ok_exn (layout.Layout.get_inode config.root_ino) with
  | Some _ -> ()
  | None ->
    let root = Errno.ok_exn (layout.Layout.alloc_inode ~kind:Inode.Directory) in
    if root.Inode.ino <> config.root_ino then
      invalid_arg "Fsys.create: layout did not assign the root inode number";
    root.Inode.nlink <- 2;
    layout.Layout.update_inode root);
  t

let now t = Sched.now t.sched

let root t =
  match Errno.ok_exn (t.layout.Layout.get_inode t.config.root_ino) with
  | Some inode -> inode
  | None -> failwith "Fsys.root: root inode missing"

let sync t =
  Errno.catch (fun () ->
      Cache.sync t.cache;
      Errno.ok_exn (t.layout.Layout.sync ()))
