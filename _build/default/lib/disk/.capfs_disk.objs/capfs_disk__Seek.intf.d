lib/disk/seek.mli:
