(** Rendering merged event streams.

    A merged stream is a [(stream, event) list]: events from one or more
    tracers, tagged with the index of the stream (experiment / worker
    job) they came from and sorted by [(time, seq, stream)]. A single
    tracer's output fits the shape with [stream = 0] (see {!of_events}).

    {b Chrome [trace_event] JSON.} {!chrome_json} emits the "JSON array
    format" understood by [chrome://tracing] and by Perfetto's trace
    viewer ({:https://ui.perfetto.dev}): one object per event with
    [name]/[cat]/[ph]/[ts]/[pid]/[tid]/[args]. Streams become processes
    ([pid]), scheduler fibres become threads ([tid]); events with a
    duration (disk seeks and services) are complete spans ([ph = "X"])
    and everything else is an instant ([ph = "i"]). Timestamps are the
    scheduler's seconds converted to the format's microseconds.

    The schema of every emitted record is documented in
    [EXPERIMENTS.md]. *)

(** [of_events evs] tags a single tracer's stream with stream id 0. *)
val of_events : Event.t list -> (int * Event.t) list

(** One line per event: [stream time layer name source args…]. *)
val pp_text : Format.formatter -> (int * Event.t) list -> unit

(** [chrome_json buf stream] appends the complete JSON document —
    [{"traceEvents": [...], "displayTimeUnit": "ms"}] — to [buf]. *)
val chrome_json : Buffer.t -> (int * Event.t) list -> unit

(** [to_file path stream] writes {!chrome_json} output to [path]
    (truncating). The file loads directly into Perfetto or
    [about:tracing]. *)
val to_file : string -> (int * Event.t) list -> unit
