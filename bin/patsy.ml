(* Patsy: the off-line file-system simulator.

   Replays a trace (synthetic profile or trace file) against a fully
   simulated file server and reports operation latencies, per the
   experiments of §5.1. Several policies (-p ups,nvram-whole or -p all)
   fan out over a fleet of domains (-j N). *)

module Experiment = Capfs_patsy.Experiment
module Fleet = Capfs_patsy.Fleet
module Report = Capfs_patsy.Report

let setup_logs level =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let load_trace ~trace ~format ~seed ~duration =
  match format with
  | "sprite-file" -> Capfs_trace.Sprite_format.load trace
  | "coda-file" -> Capfs_trace.Coda_format.load trace
  | "synth" ->
    let profile = Capfs_trace.Synth.profile_by_name trace in
    Capfs_trace.Synth.generate ~seed ?duration profile
  | f -> invalid_arg ("unknown trace format: " ^ f)

let policy_of_name = function
  | "write-delay" | "write-delay-30s" -> Experiment.Write_delay
  | "ups" -> Experiment.Ups
  | "nvram-whole" -> Experiment.Nvram_whole
  | "nvram-partial" -> Experiment.Nvram_partial
  | p -> invalid_arg ("unknown policy: " ^ p)

let policies_of_arg arg =
  if arg = "all" then Experiment.all_policies
  else String.split_on_char ',' arg |> List.map policy_of_name

let print_one ~trace ~show_cdf ~show_windows ~show_stats outcome =
  Format.printf "%a@." Report.print_outcome_summary outcome;
  if show_windows then
    Format.printf "%a@." Report.print_windows outcome.Experiment.replay;
  if show_stats then begin
    (* "plug-in statistics ... provide standard statistics output with
       or without histograms" *)
    Format.printf "@.# plug-in statistics:@.";
    Capfs_stats.Registry.report ~histograms:true Format.std_formatter
      outcome.Experiment.registry
  end;
  if show_cdf then begin
    let title =
      Printf.sprintf "%s / %s" trace (Experiment.policy_name outcome.Experiment.config.Experiment.policy)
    in
    Report.print_cdf ~title Format.std_formatter outcome.Experiment.replay;
    Format.printf "@."
  end

let run_main trace format policy duration seed parallel_jobs disks buses
    cache_mb nvram_mb iosched replacement cleaner sync_flush trace_out
    trace_buffer show_cdf show_windows show_stats log_level =
  setup_logs log_level;
  let policies = policies_of_arg policy in
  let config policy =
    {
      (Experiment.default policy) with
      Experiment.ndisks = disks;
      nbuses = buses;
      cache_mb;
      nvram_mb;
      iosched;
      replacement;
      cleaner =
        (match cleaner with
        | "greedy" -> Capfs_layout.Lfs.Greedy
        | "cost-benefit" -> Capfs_layout.Lfs.Cost_benefit
        | c -> invalid_arg ("unknown cleaner: " ^ c));
      async_flush = not sync_flush;
      seed;
      trace_buffer = (if trace_out = None then 0 else trace_buffer);
    }
  in
  (* load once here for the record count; the trace array is immutable,
     so the fleet workers can share it *)
  let records = load_trace ~trace ~format ~seed ~duration in
  Format.printf "# patsy: trace=%s policies=%s records=%d jobs=%d@." trace
    (String.concat ","
       (List.map Experiment.policy_name policies))
    (Array.length records) parallel_jobs;
  let results =
    Fleet.run_matrix ~jobs:parallel_jobs ~config
      ~gen:(fun _ -> records)
      (List.map (fun p -> (trace, p)) policies)
  in
  (match Fleet.failures results with
  | [] -> ()
  | (job, e) :: _ ->
    Format.eprintf "patsy: experiment %s failed: %s@." job.Fleet.label
      (Printexc.to_string e);
    raise e);
  List.iter
    (fun r ->
      print_one ~trace ~show_cdf ~show_windows ~show_stats
        (Fleet.outcome_exn r))
    results;
  (match trace_out with
  | None -> ()
  | Some path ->
    let stream = Fleet.merged_events results in
    Capfs_obs.Export.to_file path stream;
    Format.printf "# wrote %d trace events to %s@." (List.length stream) path);
  0

open Cmdliner

let trace =
  Arg.(value & opt string "sprite-1a"
       & info [ "t"; "trace" ] ~docv:"TRACE"
           ~doc:"Synthetic profile name (sprite-1a, sprite-1b, sprite-2a, \
                 sprite-2b, sprite-5) or a trace file path.")

let format =
  Arg.(value & opt string "synth"
       & info [ "f"; "format" ] ~docv:"FMT"
           ~doc:"Trace source: synth, sprite-file or coda-file.")

let policy =
  Arg.(value & opt string "ups"
       & info [ "p"; "policy" ] ~docv:"POLICY"
           ~doc:"Flush policy: write-delay, ups, nvram-whole, nvram-partial; \
                 a comma-separated list, or 'all', replays the trace under \
                 each policy (in parallel with -j).")

let duration =
  Arg.(value & opt (some float) None
       & info [ "d"; "duration" ] ~docv:"SECONDS"
           ~doc:"Override the synthetic trace duration.")

let seed = Arg.(value & opt int 1996 & info [ "seed" ] ~docv:"SEED")

let parallel_jobs =
  let default = Fleet.default_jobs () in
  Arg.(value & opt int default
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for multi-policy runs (default: the \
                 recommended domain count). Each experiment is fully \
                 domain-isolated, so results are identical at any -j.")

let disks = Arg.(value & opt int 10 & info [ "disks" ] ~docv:"N")
let buses = Arg.(value & opt int 3 & info [ "buses" ] ~docv:"N")
let cache_mb = Arg.(value & opt int 128 & info [ "cache-mb" ] ~docv:"MB")
let nvram_mb = Arg.(value & opt int 4 & info [ "nvram-mb" ] ~docv:"MB")

let iosched =
  Arg.(value & opt string "clook"
       & info [ "iosched" ] ~docv:"POLICY"
           ~doc:"Disk queue policy: fcfs, sstf, scan, look, cscan, clook, \
                 scan-edf.")

let replacement =
  Arg.(value & opt string "lru"
       & info [ "replacement" ] ~docv:"POLICY"
           ~doc:"Cache replacement: lru, random, lfu, slru, lru-2.")

let cleaner =
  Arg.(value & opt string "cost-benefit"
       & info [ "cleaner" ] ~doc:"LFS cleaner: greedy or cost-benefit.")

let sync_flush =
  Arg.(value & flag
       & info [ "sync-flush" ]
           ~doc:"Flush synchronously from the allocating thread (the \
                 pre-lesson behaviour of §5.2).")

let trace_out =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the merged structured event trace as Chrome \
                 trace_event JSON to $(docv) (open with Perfetto or \
                 chrome://tracing). Enables event tracing for the run.")

let trace_buffer =
  Arg.(value & opt int 65536
       & info [ "trace-buffer" ] ~docv:"EVENTS"
           ~doc:"Per-experiment event ring capacity; when the run emits \
                 more events, only the newest $(docv) are kept.")

let show_cdf =
  Arg.(value & flag & info [ "cdf" ] ~doc:"Print the latency CDF series.")

let show_windows =
  Arg.(value & flag
       & info [ "windows" ] ~doc:"Print 15-minute window summaries.")

let show_stats =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Activate and print the plug-in statistics (with \
                 histograms of disk queue sizes, rotational delays, \
                 cache behaviour).")

let log_level =
  let env = Cmd.Env.info "PATSY_VERBOSITY" in
  Logs_cli.level ~env ()

let cmd =
  let doc = "trace-driven file-system simulator (Bosch & Mullender, 1996)" in
  Cmd.v
    (Cmd.info "patsy" ~doc)
    Term.(
      const run_main $ trace $ format $ policy $ duration $ seed
      $ parallel_jobs $ disks $ buses $ cache_mb $ nvram_mb $ iosched
      $ replacement $ cleaner $ sync_flush $ trace_out $ trace_buffer
      $ show_cdf $ show_windows $ show_stats $ log_level)

let () = exit (Cmd.eval' cmd)
