(** Cache block descriptors.

    A block is identified by (file, index) — the cache is a file-block
    cache, as in the paper, not a device-block cache: the flush policies
    reason about "the file associated with the oldest dirty block", and
    truncate/delete drop a file's dirty blocks before they ever reach the
    disk (the write-saving effect the experiments measure). *)

module Key : sig
  (** (inode number, block index within the file). *)
  type t = int * int

  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

type state =
  | Clean    (** matches the on-disk contents *)
  | Dirty    (** newer than disk; scheduled to be written eventually *)
  | Flushing (** a write-back holds a snapshot; re-writes re-dirty it *)

type t = {
  key : Key.t;
  mutable data : Capfs_disk.Data.t;
  mutable state : state;
  mutable dirtied_at : float;   (** when it last became dirty *)
  mutable last_access : float;
  mutable access_count : int;   (** for frequency-based replacement *)
  mutable version : int;        (** bumped by every write *)
  mutable in_nvram : bool;
  mutable pinned : int;         (** >0 while an I/O or fill references it *)
  mutable policy_slot : int;    (** private to the replacement policy *)
  mutable zombie : bool;
      (** invalidated while a flush snapshot was in flight; the flusher
          discards it on completion *)
}

val make : key:Key.t -> data:Capfs_disk.Data.t -> now:float -> t
val ino : t -> int
val index : t -> int
val is_dirty : t -> bool
val evictable : t -> bool
val pin : t -> unit
val unpin : t -> unit
val pp : Format.formatter -> t -> unit
