module Sched = Capfs_sched.Sched
module Mailbox = Capfs_sched.Mailbox
module Inode = Capfs_layout.Inode
module Data = Capfs_disk.Data
module Client = Capfs.Client
module File = Capfs.File
module File_table = Capfs.File_table
module Namespace = Capfs.Namespace
module Fsys = Capfs.Fsys

module Errno = Capfs_core.Errno

type fh = int

type error = Noent | Exist | Notdir | Isdir | Notempty | Stale | Loop | Again | Io

type attr = {
  a_kind : Inode.kind;
  a_size : int;
  a_nlink : int;
  a_mtime : float;
}

type request =
  | Getattr of fh
  | Setattr of { file : fh; size : int }
  | Lookup of { dir : fh; name : string }
  | Readlink of fh
  | Read of { file : fh; offset : int; count : int }
  | Write of { file : fh; offset : int; data : Data.t }
  | Create of { dir : fh; name : string }
  | Remove of { dir : fh; name : string }
  | Rename of { sdir : fh; sname : string; ddir : fh; dname : string }
  | Symlink of { dir : fh; name : string; target : string }
  | Mkdir of { dir : fh; name : string }
  | Rmdir of { dir : fh; name : string }
  | Readdir of fh
  | Commit of fh
  | Statfs

type response =
  | Attr of attr
  | Handle of fh * attr
  | Payload of Data.t
  | Link of string
  | Entries of (string * fh) list
  | Fsinfo of { total_blocks : int; free_blocks : int }
  | Done
  | Error of error

type call_box = { request : request; reply : Sched.event; mutable result : response option }

type t = {
  client : Client.t;
  sched : Sched.t;
  inbox : call_box Mailbox.t;
  mutable served : int;
}

let pp_error ppf e =
  Format.pp_print_string ppf
    (match e with
    | Noent -> "NFSERR_NOENT"
    | Exist -> "NFSERR_EXIST"
    | Notdir -> "NFSERR_NOTDIR"
    | Isdir -> "NFSERR_ISDIR"
    | Notempty -> "NFSERR_NOTEMPTY"
    | Stale -> "NFSERR_STALE"
    | Loop -> "NFSERR_LOOP"
    | Again -> "NFSERR_JUKEBOX"
    | Io -> "NFSERR_IO")

(* The wire mapping: every internal failure is a typed {!Errno.t} by the
   time it reaches this layer; this picks the NFS status for it (the
   real protocol would instead encode [Errno.to_unix e]). *)
let error_of_errno (e : Errno.t) : error =
  match e with
  | Errno.ENOENT -> Noent
  | Errno.EEXIST -> Exist
  | Errno.ENOTDIR -> Notdir
  | Errno.EISDIR -> Isdir
  | Errno.ENOTEMPTY -> Notempty
  | Errno.ESTALE | Errno.EBADF -> Stale
  | Errno.ELOOP -> Loop
  (* NFSv3's "try again later" status; v2 servers abused it the same way *)
  | Errno.EAGAIN -> Again
  | Errno.ENOSPC | Errno.EIO | Errno.ETIMEDOUT | Errno.EINVAL -> Io

let attr_of (inode : Inode.t) =
  {
    a_kind = inode.Inode.kind;
    a_size = inode.Inode.size;
    a_nlink = inode.Inode.nlink;
    a_mtime = inode.Inode.mtime;
  }

let file_of t fh =
  match File_table.get (Client.file_table t.client) fh with
  | Some f -> f
  | None -> raise (Errno.Error Errno.ESTALE)

(* Directory-relative mutations reuse the path-based abstract interface
   by reconstructing a two-component path rooted at the handle. Handles
   are inode numbers; names are single components. Failures funnel
   through {!Client.trap} — the one exception-to-errno boundary — and
   then [error_of_errno] picks the protocol status. *)
let handle t (req : request) : response =
  let ns = Client.namespace t.client in
  let body () =
    match req with
    | Getattr fh -> Attr (attr_of (File.inode (file_of t fh)))
    | Setattr { file; size } ->
      let f = file_of t file in
      File.truncate f ~size;
      Attr (attr_of (File.inode f))
    | Lookup { dir; name } -> (
      match Namespace.lookup ns ~dir ~name with
      | Some e ->
        let f = file_of t e.Capfs.Dir.entry_ino in
        Handle (e.Capfs.Dir.entry_ino, attr_of (File.inode f))
      | None -> Error Noent)
    | Readlink fh -> (
      match Namespace.symlink_target ns fh with
      | Some target -> Link target
      | None -> Error Noent)
    | Read { file; offset; count } ->
      Payload (File.read (file_of t file) ~offset ~bytes:count)
    | Write { file; offset; data } ->
      let f = file_of t file in
      File.write f ~offset data;
      Attr (attr_of (File.inode f))
    | Create { dir; name } ->
      let ft = Client.file_table t.client in
      (match Namespace.lookup ns ~dir ~name with
      | Some _ -> Error Exist
      | None ->
        let f = File_table.create_file ft ~kind:Inode.Regular in
        Namespace.add_entry ns ~parent:dir ~name ~ino:(File.ino f)
          ~kind:Inode.Regular;
        Handle (File.ino f, attr_of (File.inode f)))
    | Remove { dir; name } -> (
      match Namespace.lookup ns ~dir ~name with
      | None -> Error Noent
      | Some { Capfs.Dir.kind = Inode.Directory; _ } -> Error Isdir
      | Some { Capfs.Dir.entry_ino; _ } ->
        ignore (Namespace.remove_entry ns ~parent:dir ~name);
        File_table.unlink (Client.file_table t.client) entry_ino;
        Done)
    | Rename { sdir; sname; ddir; dname } -> (
      match Namespace.lookup ns ~dir:sdir ~name:sname with
      | None -> Error Noent
      | Some entry ->
        (match Namespace.lookup ns ~dir:ddir ~name:dname with
        | Some { Capfs.Dir.entry_ino; kind; _ } ->
          ignore (Namespace.remove_entry ns ~parent:ddir ~name:dname);
          if kind <> Inode.Directory then
            File_table.unlink (Client.file_table t.client) entry_ino
        | None -> ());
        ignore (Namespace.remove_entry ns ~parent:sdir ~name:sname);
        Namespace.add_entry ns ~parent:ddir ~name:dname
          ~ino:entry.Capfs.Dir.entry_ino ~kind:entry.Capfs.Dir.kind;
        Done)
    | Symlink { dir; name; target } ->
      let ft = Client.file_table t.client in
      (match Namespace.lookup ns ~dir ~name with
      | Some _ -> Error Exist
      | None ->
        let f = File_table.create_file ft ~kind:Inode.Symlink in
        Namespace.add_entry ns ~parent:dir ~name ~ino:(File.ino f)
          ~kind:Inode.Symlink;
        Namespace.set_symlink_target ns (File.ino f) target;
        Handle (File.ino f, attr_of (File.inode f)))
    | Mkdir { dir; name } ->
      let ft = Client.file_table t.client in
      (match Namespace.lookup ns ~dir ~name with
      | Some _ -> Error Exist
      | None ->
        let f = File_table.create_file ft ~kind:Inode.Directory in
        (File.inode f).Inode.nlink <- 2;
        Namespace.add_entry ns ~parent:dir ~name ~ino:(File.ino f)
          ~kind:Inode.Directory;
        Handle (File.ino f, attr_of (File.inode f)))
    | Rmdir { dir; name } -> (
      match Namespace.lookup ns ~dir ~name with
      | None -> Error Noent
      | Some { Capfs.Dir.kind = Inode.Directory; entry_ino; _ } ->
        if Namespace.entries ns entry_ino <> [] then Error Notempty
        else begin
          ignore (Namespace.remove_entry ns ~parent:dir ~name);
          File_table.unlink (Client.file_table t.client) entry_ino;
          Done
        end
      | Some _ -> Error Notdir)
    | Readdir fh ->
      Entries
        (List.map
           (fun e -> (e.Capfs.Dir.name, e.Capfs.Dir.entry_ino))
           (Namespace.entries ns fh))
    | Commit fh ->
      File.flush (file_of t fh);
      Done
    | Statfs ->
      let fs = Client.fsys t.client in
      Fsinfo
        {
          total_blocks = fs.Fsys.layout.Capfs_layout.Layout.total_blocks;
          free_blocks = fs.Fsys.layout.Capfs_layout.Layout.free_blocks ();
        }
  in
  match Client.trap body with
  | Ok r -> r
  | Error e -> Error (error_of_errno e)

let worker t () =
  while true do
    let box = Mailbox.recv t.inbox in
    box.result <- Some (handle t box.request);
    t.served <- t.served + 1;
    Sched.signal t.sched box.reply
  done

let serve ?(workers = 4) client =
  let fs = Client.fsys client in
  let sched = fs.Fsys.sched in
  let t =
    { client; sched; inbox = Mailbox.create ~name:"nfs.inbox" sched; served = 0 }
  in
  for i = 1 to workers do
    ignore
      (Sched.spawn sched
         ~name:(Printf.sprintf "nfsd-%d" i)
         ~daemon:true (worker t))
  done;
  t

let mount_root t =
  (Client.fsys t.client).Fsys.config.Fsys.root_ino

let call t request =
  let box =
    { request; reply = Sched.new_event ~name:"nfs.reply" t.sched; result = None }
  in
  Mailbox.send t.inbox box;
  Sched.await t.sched box.reply;
  match box.result with
  | Some r -> r
  | None -> failwith "Nfs.call: worker replied without a result"

let served t = t.served
