lib/disk/bus.mli: Capfs_sched Capfs_stats
