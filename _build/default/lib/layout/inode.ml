type kind = Regular | Directory | Symlink | Multimedia

let addr_none = -1
let ndirect = 32

type t = {
  ino : int;
  mutable kind : kind;
  mutable size : int;
  mutable nlink : int;
  mutable uid : int;
  mutable atime : float;
  mutable mtime : float;
  mutable ctime : float;
  mutable blocks : int array;
  mutable nblocks : int;
}

let make ~ino ~kind ~now =
  {
    ino;
    kind;
    size = 0;
    nlink = 1;
    uid = 0;
    atime = now;
    mtime = now;
    ctime = now;
    blocks = [||];
    nblocks = 0;
  }

let get_addr t i =
  if i < 0 then invalid_arg "Inode.get_addr: negative index";
  if i >= t.nblocks then addr_none else t.blocks.(i)

let set_addr t i addr =
  if i < 0 then invalid_arg "Inode.set_addr: negative index";
  if i >= Array.length t.blocks then begin
    let grown = Array.make (Stdlib.max 8 (Stdlib.max (i + 1) (2 * Array.length t.blocks))) addr_none in
    Array.blit t.blocks 0 grown 0 t.nblocks;
    t.blocks <- grown
  end;
  t.blocks.(i) <- addr;
  if i >= t.nblocks then t.nblocks <- i + 1

let truncate_blocks t ~blocks =
  if blocks < 0 then invalid_arg "Inode.truncate_blocks: negative";
  let dropped = ref [] in
  for i = blocks to t.nblocks - 1 do
    if t.blocks.(i) <> addr_none then dropped := t.blocks.(i) :: !dropped;
    t.blocks.(i) <- addr_none
  done;
  if blocks < t.nblocks then t.nblocks <- blocks;
  List.rev !dropped

let mapped t =
  let acc = ref [] in
  for i = t.nblocks - 1 downto 0 do
    if t.blocks.(i) <> addr_none then acc := (i, t.blocks.(i)) :: !acc
  done;
  !acc

let kind_to_int = function
  | Regular -> 0
  | Directory -> 1
  | Symlink -> 2
  | Multimedia -> 3

let kind_of_int = function
  | 0 -> Regular
  | 1 -> Directory
  | 2 -> Symlink
  | 3 -> Multimedia
  | n -> raise (Codec.Corrupt (Printf.sprintf "inode kind %d" n))

(* On-disk inode: header, ndirect inline addresses (with addr_none for
   holes), then the list of indirect-block addresses holding the rest. *)
let serialize t ~indirect =
  let w = Codec.Writer.create () in
  Codec.Writer.u64 w t.ino;
  Codec.Writer.u8 w (kind_to_int t.kind);
  Codec.Writer.u64 w t.size;
  Codec.Writer.u32 w t.nlink;
  Codec.Writer.u32 w t.uid;
  Codec.Writer.f64 w t.atime;
  Codec.Writer.f64 w t.mtime;
  Codec.Writer.f64 w t.ctime;
  Codec.Writer.u32 w t.nblocks;
  let direct = Stdlib.min t.nblocks ndirect in
  for i = 0 to direct - 1 do
    (* addresses are shifted by one so addr_none (-1) encodes as 0 *)
    Codec.Writer.u64 w (t.blocks.(i) + 1)
  done;
  Codec.Writer.u32 w (List.length indirect);
  List.iter (fun a -> Codec.Writer.u64 w a) indirect;
  Codec.Writer.contents w

let deserialize s =
  let r = Codec.Reader.of_string s in
  let ino = Codec.Reader.u64 r in
  let kind = kind_of_int (Codec.Reader.u8 r) in
  let size = Codec.Reader.u64 r in
  let nlink = Codec.Reader.u32 r in
  let uid = Codec.Reader.u32 r in
  let atime = Codec.Reader.f64 r in
  let mtime = Codec.Reader.f64 r in
  let ctime = Codec.Reader.f64 r in
  let nblocks = Codec.Reader.u32 r in
  let t =
    {
      ino;
      kind;
      size;
      nlink;
      uid;
      atime;
      mtime;
      ctime;
      blocks = Array.make (Stdlib.max 8 nblocks) addr_none;
      nblocks;
    }
  in
  let direct = Stdlib.min nblocks ndirect in
  for i = 0 to direct - 1 do
    t.blocks.(i) <- Codec.Reader.u64 r - 1
  done;
  let n_ind = Codec.Reader.u32 r in
  let indirect = List.init n_ind (fun _ -> Codec.Reader.u64 r) in
  (t, indirect)

let addrs_per_indirect ~block_bytes = block_bytes / 8

let pp ppf t =
  Format.fprintf ppf "ino=%d kind=%d size=%d nlink=%d blocks=%d" t.ino
    (kind_to_int t.kind) t.size t.nlink t.nblocks
