examples/write_saving.ml: Capfs_patsy Capfs_trace Format List
