lib/trace/sprite_format.mli: Buffer Record
