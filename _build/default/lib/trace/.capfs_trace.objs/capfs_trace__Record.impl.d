lib/trace/record.ml: Format Printf
