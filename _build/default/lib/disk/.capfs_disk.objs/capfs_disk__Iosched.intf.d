lib/disk/iosched.mli: Geometry Iorequest
