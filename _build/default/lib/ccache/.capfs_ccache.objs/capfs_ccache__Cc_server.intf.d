lib/ccache/cc_server.mli: Capfs Capfs_disk Capfs_stats Netlink
