lib/core/namespace.ml: Capfs_disk Capfs_layout Dir File File_table Fsys Hashtbl List String
