(** An FFS-like update-in-place layout (McKusick et al. 1984), the
    comparison baseline for the log-structured layout.

    The disk is divided into cylinder groups, each holding a block
    bitmap, an inode bitmap, an inode table and data blocks. Inodes are
    spread across groups round-robin; a file's data blocks are allocated
    first-fit inside its inode's group and spill into following groups
    when it fills. Data is written in place, so a cache flush of blocks
    scattered over many files produces the seek-heavy traffic pattern
    log-structuring exists to avoid — exactly the contrast the
    "logging versus clustering" benchmarks measure.

    Metadata (bitmaps, inodes) is held in core, updated lazily and
    persisted by [sync]; [mount] reads it back. *)

type config = {
  group_blocks : int;      (** blocks per cylinder group *)
  inodes_per_group : int;  (** inode-table slots (one block each) *)
}

val default_config : config

(** [format sched driver ~block_bytes] writes a fresh file system:
    superblock, then per-group bitmaps and empty inode tables. Whatever
    the disk held before is gone. *)
val format :
  ?config:config ->
  Capfs_sched.Sched.t ->
  Capfs_disk.Driver.t ->
  block_bytes:int ->
  unit

(** [mount sched driver] reads the superblock and group metadata back
    from a {!format}ted (or previously synced) image and returns the
    layout interface. Requires a transport with a backing store. *)
val mount :
  ?registry:Capfs_stats.Registry.t ->
  ?name:string ->
  Capfs_sched.Sched.t ->
  Capfs_disk.Driver.t ->
  Layout.t

(** Format a fresh image and use it without re-reading metadata — works
    on simulated disks without a backing store. *)
val format_and_mount :
  ?registry:Capfs_stats.Registry.t ->
  ?name:string ->
  ?config:config ->
  Capfs_sched.Sched.t ->
  Capfs_disk.Driver.t ->
  block_bytes:int ->
  Layout.t
