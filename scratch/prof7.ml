module Sched = Capfs_sched.Sched
module Experiment = Capfs_patsy.Experiment
module Synth = Capfs_trace.Synth
module Client = Capfs.Client
module Data = Capfs_disk.Data

let () =
  let cfg = Experiment.default Experiment.Ups in
  let sched = Sched.create ~seed:42 ~clock:`Virtual () in
  ignore
    (Sched.spawn sched (fun () ->
         let client, _ = Experiment.build_instance sched cfg in
         let n = 2000 in
         (* one big file: n blocks of 4096 *)
         (match Client.synthesize_file client "/p/big" ~size:(n * 4096) with
         | Ok () -> () | Error _ -> failwith "synth");
         let bracket name iters f =
           let w0 = Gc.minor_words () in
           for i = 0 to iters - 1 do f i done;
           Printf.printf "%-34s %8.1f words/iter\n" name
             ((Gc.minor_words () -. w0) /. float_of_int iters)
         in
         (* cold reads: every block is a cache miss -> simulated disk *)
         bracket "read miss (disk fill)" n (fun i ->
             ignore (Client.read client ~client:1 "/p/big" ~offset:(i * 4096) ~bytes:4096));
         (* warm reads: all hits *)
         bracket "read hit" n (fun i ->
             ignore (Client.read client ~client:1 "/p/big" ~offset:(i * 4096) ~bytes:4096));
         (* sub-block warm reads *)
         bracket "read hit (1k sub-block)" n (fun i ->
             ignore (Client.read client ~client:1 "/p/big" ~offset:(i * 4096) ~bytes:1024));
         (* whole-block overwrites (hits) *)
         bracket "write whole block (cached)" n (fun i ->
             ignore (Client.write client ~client:1 "/p/big" ~offset:(i * 4096) (Data.sim 4096)));
         (* partial writes (read-modify-write on cached blocks) *)
         bracket "write 1k into cached block" n (fun i ->
             ignore (Client.write client ~client:1 "/p/big" ~offset:(i * 4096) (Data.sim 1024)));
         (* appends: fresh tail blocks *)
         bracket "append whole blocks" n (fun i ->
             ignore (Client.write client ~client:1 "/p/big"
                       ~offset:((n + i) * 4096) (Data.sim 4096)));
         (* stat / open / close on the warm path *)
         bracket "stat" n (fun _ -> ignore (Client.stat client "/p/big"));
         bracket "open+close" n (fun i ->
             let p = if i land 1 = 0 then "/p/big" else "/p/big" in
             ignore (Client.open_ client ~client:2 p Client.RO);
             ignore (Client.close_ client ~client:2 p))));
  Sched.run sched
