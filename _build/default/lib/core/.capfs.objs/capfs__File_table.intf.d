lib/core/file_table.mli: Capfs_layout File Fsys
