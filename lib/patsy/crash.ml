module Sched = Capfs_sched.Sched
module Record = Capfs_trace.Record
module Sim_disk = Capfs_disk.Sim_disk
module Driver = Capfs_disk.Driver
module Iosched = Capfs_disk.Iosched
module Bus = Capfs_disk.Bus
module Disk_model = Capfs_disk.Disk_model
module Lfs = Capfs_layout.Lfs
module Multiplex = Capfs_layout.Multiplex
module Inode = Capfs_layout.Inode
module Fsys = Capfs.Fsys
module Client = Capfs.Client
module Namespace = Capfs.Namespace
module Errno = Capfs_core.Errno
module Stats = Capfs_stats

let src = Logs.Src.create "capfs.crash" ~doc:"crash-recovery experiment"

module Log = (val Logs.src_log src : Logs.LOG)

type violation = { v_path : string; v_expected : string; v_found : string }

type report = {
  crash_time : float;
  applied_ops : int;
  floor_size : int;
  floor_synced : bool;
  recoveries : (string * Lfs.recovery_report) list;
  failed_volumes : (string * Errno.t) list;
  violations : violation list;
  ok : bool;
}

let pp_violation ppf v =
  Format.fprintf ppf "%s: expected %s, found %s" v.v_path v.v_expected v.v_found

(* {2 The shadow model}

   The shadow model is the durable floor: a snapshot of the namespace
   (path, kind, size) taken just before a whole-system sync that
   completes before the crash. Any path mutated at or after the walk
   lands in [touched] (via the replay's observe hook) and is excluded.
   What remains — state the file system acknowledged as stable and then
   never changed — MUST survive the crash verbatim; everything else is
   legitimately undefined, exactly like a real power cut. *)

type floor_entry = { fl_path : string; fl_kind : Inode.kind; fl_size : int }

let touch touched (r : Record.t) =
  let add path = Hashtbl.replace touched (Namespace.normalize path) () in
  match r.Record.op with
  | Record.Write { path; _ }
  | Record.Truncate { path; _ }
  | Record.Delete { path }
  | Record.Mkdir { path }
  | Record.Rmdir { path } -> add path
  | Record.Open { path; mode = Record.Write_only | Record.Read_write } ->
    add path
  | Record.Open _ | Record.Close _ | Record.Read _ | Record.Stat _ -> ()

let walk_namespace client =
  let acc = ref [] in
  let rec go path =
    List.iter
      (fun e ->
        let full =
          (if path = "/" then "" else path) ^ "/" ^ e.Capfs.Dir.name
        in
        let size =
          if e.Capfs.Dir.kind = Inode.Regular then
            (Client.stat_exn client full).Client.st_size
          else 0
        in
        acc :=
          { fl_path = full; fl_kind = e.Capfs.Dir.kind; fl_size = size }
          :: !acc;
        if e.Capfs.Dir.kind = Inode.Directory then go full)
      (Client.readdir_exn client path)
  in
  go "/";
  !acc

let kind_name = function
  | Inode.Regular -> "regular"
  | Inode.Directory -> "directory"
  | Inode.Symlink -> "symlink"
  | Inode.Multimedia -> "multimedia"

(* {2 The experiment} *)

let run ?(config = Experiment.default Experiment.Write_delay) ?sync_at ~trace
    plan =
  let crash_at =
    match plan.Capfs_fault.Plan.crash_at with
    | Some t when t > 0. -> t
    | _ -> invalid_arg "Crash.run: the fault plan must set crash_at > 0"
  in
  let sync_at =
    match sync_at with Some t -> t | None -> crash_at /. 2.
  in
  if sync_at >= crash_at then
    invalid_arg "Crash.run: sync_at must fall before crash_at";
  let cfg = { config with Experiment.fault_plan = Some plan } in
  (* {3 Phase 1: run the workload into the crash} *)
  let sched =
    Sched.create ~seed:cfg.Experiment.seed ~clock:`Virtual
      ~injector:(Experiment.injector_of cfg) ()
  in
  let farm = ref None in
  let touched : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let applied = ref 0 in
  let observe r =
    incr applied;
    touch touched r
  in
  let floor = ref [] and floor_synced = ref false in
  ignore
    (Sched.spawn sched ~name:"crash.workload" (fun () ->
         (* formatting the volumes performs driver I/O, so the farm must
            be assembled inside a fibre *)
         let f = Experiment.build_farm ~backing:true sched cfg in
         farm := Some f;
         (* crash experiments need real payloads: summaries and file
            contents must actually reach the backing stores *)
         ignore
           (Replay.run ~real_data:true ~observe f.Experiment.f_client
              (Capfs_trace.Source.of_array trace))));
  ignore
    (Sched.spawn sched ~name:"crash.floor" (fun () ->
         Sched.sleep sched sync_at;
         let client =
           match !farm with
           | Some f -> f.Experiment.f_client
           | None -> failwith "Crash.run: farm not built by sync_at"
         in
         (* mutations from here on are not part of the floor *)
         Hashtbl.reset touched;
         floor := walk_namespace client;
         match Client.sync client with
         | Ok () -> floor_synced := true
         | Error e ->
           Log.warn (fun m ->
               m "floor sync failed (%a); shadow check is vacuous" Errno.pp e)));
  (* the power cut: stop dispatching at the crash instant and abandon
     the scheduler, fibres, caches — everything volatile *)
  Sched.run ~until:crash_at sched;
  let snapshots =
    match !farm with
    | None -> failwith "Crash.run: the workload never started"
    | Some farm ->
      Array.map
        (fun d ->
          match Sim_disk.store_snapshot d with
          | Some s -> s
          | None -> assert false (* farm was built with ~backing:true *))
        farm.Experiment.f_disks
  in
  Log.info (fun m ->
      m "crashed at t=%g: %d ops applied, %d floor entries (synced: %b)"
        crash_at !applied (List.length !floor) !floor_synced);
  (* {3 Phase 2: recover on a fresh scheduler from the surviving bytes} *)
  let sched2 = Sched.create ~seed:cfg.Experiment.seed ~clock:`Virtual () in
  let registry = Stats.Registry.create () in
  let buses =
    Array.init cfg.Experiment.nbuses (fun b ->
        Bus.scsi2 ~registry ~name:(Stats.Names.bus b) sched2)
  in
  let ndisks = cfg.Experiment.ndisks in
  let disks =
    Array.init ndisks (fun d ->
        let disk =
          Sim_disk.create ~registry
            ~name:(Stats.Names.disk d)
            ~backing:true sched2 cfg.Experiment.disk_model
            buses.(d mod cfg.Experiment.nbuses)
        in
        Sim_disk.store_restore disk snapshots.(d);
        disk)
  in
  let geometry = cfg.Experiment.disk_model.Disk_model.geometry in
  let drivers =
    Array.init ndisks (fun d ->
        Driver.create ~registry
          ~name:(Stats.Names.driver d)
          ~policy:(Iosched.by_name geometry cfg.Experiment.iosched)
          sched2
          (Driver.sim_transport disks.(d)))
  in
  let out = ref None in
  ignore
    (Sched.spawn sched2 ~name:"crash.recover" (fun () ->
         let recoveries = ref [] and failed = ref [] in
         let volumes = ref [] in
         for d = 0 to ndisks - 1 do
           let name = Stats.Names.lfs d in
           match
             Lfs.recover ~registry ~name
               ~config:(Experiment.lfs_config_of cfg d)
               sched2 drivers.(d)
           with
           | Ok (layout, rep) ->
             recoveries := (name, rep) :: !recoveries;
             volumes := layout :: !volumes
           | Error e -> failed := (name, e) :: !failed
         done;
         let recoveries = List.rev !recoveries in
         let failed = List.rev !failed in
         let violations =
           if failed <> [] || not !floor_synced then []
           else begin
             let layout = Multiplex.layout (Array.of_list (List.rev !volumes)) in
             let fs =
               Fsys.create ~registry
                 ~cache_config:(Experiment.cache_config_of cfg)
                 ~layout sched2
             in
             let client2 = Client.create fs in
             List.filter_map
               (fun fl ->
                 if Hashtbl.mem touched fl.fl_path then None
                 else
                   match Client.stat client2 fl.fl_path with
                   | Error e ->
                     Some
                       {
                         v_path = fl.fl_path;
                         v_expected = kind_name fl.fl_kind;
                         v_found = "error " ^ Errno.to_string e;
                       }
                   | Ok st ->
                     if st.Client.st_kind <> fl.fl_kind then
                       Some
                         {
                           v_path = fl.fl_path;
                           v_expected = kind_name fl.fl_kind;
                           v_found = kind_name st.Client.st_kind;
                         }
                     else if
                       fl.fl_kind = Inode.Regular
                       && st.Client.st_size <> fl.fl_size
                     then
                       Some
                         {
                           v_path = fl.fl_path;
                           v_expected = Printf.sprintf "size %d" fl.fl_size;
                           v_found = Printf.sprintf "size %d" st.Client.st_size;
                         }
                     else None)
               !floor
           end
         in
         let checked = List.length !floor in
         let clean_fsck =
           List.for_all
             (fun (_, r) -> r.Lfs.r_fsck_errors = [])
             recoveries
         in
         out :=
           Some
             {
               crash_time = crash_at;
               applied_ops = !applied;
               floor_size = checked;
               floor_synced = !floor_synced;
               recoveries;
               failed_volumes = failed;
               violations;
               ok =
                 !floor_synced && failed = [] && violations = []
                 && clean_fsck;
             }));
  Sched.run sched2;
  match !out with
  | Some r -> r
  | None -> failwith "Crash.run: recovery produced no report"
