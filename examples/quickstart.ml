(* Quickstart: assemble a complete file system from the cut-and-paste
   components and use it through the abstract client interface.

   The same five lines of wiring serve both worlds: swap the mem
   transport for `Driver.sim_transport (Sim_disk.create ...)` to get a
   simulated HP97560 under virtual time, or for
   `Capfs_pfs.File_blockdev.transport` + a `Real clock to get an
   on-line server over an image file.

   Run: dune exec examples/quickstart.exe *)

module Sched = Capfs_sched.Sched
module Driver = Capfs_disk.Driver
module Data = Capfs_disk.Data
module Cache = Capfs_cache.Cache
module Lfs = Capfs_layout.Lfs
module Client = Capfs.Client

let () =
  (* 1. a scheduler: virtual time, so this whole program runs instantly *)
  let sched = Sched.create ~clock:`Virtual () in
  ignore
    (Sched.spawn sched (fun () ->
         (* 2. a block device: an 8 MB RAM disk holding real bytes *)
         let driver =
           Driver.create sched
             (Driver.mem_transport ~sector_bytes:512 ~total_sectors:16384
                sched ())
         in
         (* 3. a storage layout: fresh segmented LFS on that device *)
         let layout =
           Lfs.format_and_mount
             ~config:
               { Lfs.default_config with Lfs.seg_blocks = 32;
                 checkpoint_blocks = 16 }
             sched driver ~block_bytes:4096
         in
         (* 4. cache + file system + client interface *)
         let fs =
           Capfs.Fsys.create
             ~cache_config:(Cache.default_config ~capacity_blocks:256)
             ~layout sched
         in
         let client = Client.create fs in
         (* 5. use it *)
         Client.mkdir_exn client "/home";
         Client.mkdir_exn client "/home/alice";
         Client.open_exn client ~client:1 "/home/alice/notes.txt" Client.WO;
         Client.write_exn client ~client:1 "/home/alice/notes.txt" ~offset:0
           (Data.of_string "cut-and-paste file systems!\n");
         Client.close_exn client ~client:1 "/home/alice/notes.txt";
         Client.symlink_exn client ~target:"/home/alice" "/home/a";
         let via_link =
           Client.read_exn client ~client:1 "/home/a/notes.txt" ~offset:0 ~bytes:64
         in
         Format.printf "read back: %s" (Data.to_string via_link);
         Format.printf "directory of /home:@.";
         List.iter
           (fun e -> Format.printf "  %s@." e.Capfs.Dir.name)
           (Client.readdir_exn client "/home");
         let st = Client.stat_exn client "/home/alice/notes.txt" in
         Format.printf "notes.txt: ino=%d size=%d@." st.Client.st_ino
           st.Client.st_size;
         (* everything to stable storage, then show what the run cost *)
         Client.sync_exn client;
         Format.printf "layout after sync:@.";
         List.iter
           (fun (k, v) -> Format.printf "  %-24s %.0f@." k v)
           (fs.Capfs.Fsys.layout.Capfs_layout.Layout.layout_stats ())));
  Sched.run sched;
  Format.printf "simulated time used: %.6f s@." (Sched.now sched)
