module Errno = Capfs_core.Errno

type stat = { size : int; is_dir : bool }

type request =
  | Open of { client : int; path : string; mode : Capfs.Client.open_mode }
  | Close of { client : int; path : string }
  | Read of { client : int; path : string; offset : int; count : int }
  | Write of { client : int; path : string; offset : int; data : string }
  | Mkdir of string
  | Delete of string
  | Stat of string
  | Sync
  | Stats
  | Shutdown

type reply =
  | Ok_unit
  | Ok_data of string
  | Ok_stat of stat
  | Ok_stats of string
  | Err of Errno.t

let op_open = 1
let op_close = 2
let op_read = 3
let op_write = 4
let op_mkdir = 5
let op_delete = 6
let op_stat = 7
let op_sync = 8
let op_stats = 9
let op_shutdown = 10

let opcode = function
  | Open _ -> op_open
  | Close _ -> op_close
  | Read _ -> op_read
  | Write _ -> op_write
  | Mkdir _ -> op_mkdir
  | Delete _ -> op_delete
  | Stat _ -> op_stat
  | Sync -> op_sync
  | Stats -> op_stats
  | Shutdown -> op_shutdown

let route_path = function
  | Open { path; _ } | Close { path; _ } | Read { path; _ }
  | Write { path; _ } ->
    Some path
  | Mkdir p | Delete p | Stat p -> Some p
  | Sync | Stats | Shutdown -> None

(* {2 Payload codecs}

   Strings are u16-LE length + bytes; integers are u32 LE. A [Write]'s
   data is the unprefixed tail of the payload: the frame header already
   carries the total length, so the data needs no second one. *)

exception Short

let add_u8 b v = Buffer.add_uint8 b (v land 0xff)
let add_u32 b v = Buffer.add_int32_le b (Int32.of_int v)

let add_str b s =
  if String.length s > 0xffff then invalid_arg "Wire: path too long";
  Buffer.add_uint16_le b (String.length s);
  Buffer.add_string b s

type cursor = { buf : string; mutable pos : int }

let get_u8 c =
  if c.pos + 1 > String.length c.buf then raise Short;
  let v = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  if c.pos + 4 > String.length c.buf then raise Short;
  let v = Int32.to_int (String.get_int32_le c.buf c.pos) in
  c.pos <- c.pos + 4;
  v land 0xffffffff

let get_str c =
  if c.pos + 2 > String.length c.buf then raise Short;
  let n = String.get_uint16_le c.buf c.pos in
  if c.pos + 2 + n > String.length c.buf then raise Short;
  let s = String.sub c.buf (c.pos + 2) n in
  c.pos <- c.pos + 2 + n;
  s

let get_rest c =
  let s = String.sub c.buf c.pos (String.length c.buf - c.pos) in
  c.pos <- String.length c.buf;
  s

let mode_byte = function Capfs.Client.RO -> 0 | WO -> 1 | RW -> 2

let mode_of_byte = function
  | 0 -> Capfs.Client.RO
  | 1 -> WO
  | 2 -> RW
  | _ -> raise Short

let encode_request r =
  let b = Buffer.create 64 in
  (match r with
  | Open { client; path; mode } ->
    add_u32 b client;
    add_u8 b (mode_byte mode);
    add_str b path
  | Close { client; path } ->
    add_u32 b client;
    add_str b path
  | Read { client; path; offset; count } ->
    add_u32 b client;
    add_u32 b offset;
    add_u32 b count;
    add_str b path
  | Write { client; path; offset; data } ->
    add_u32 b client;
    add_u32 b offset;
    add_str b path;
    Buffer.add_string b data
  | Mkdir p | Delete p | Stat p -> add_str b p
  | Sync | Stats | Shutdown -> ());
  (opcode r, Buffer.contents b)

let decode_request ~opcode payload =
  let c = { buf = payload; pos = 0 } in
  match
    if opcode = op_open then begin
      let client = get_u32 c in
      let mode = mode_of_byte (get_u8 c) in
      let path = get_str c in
      Open { client; path; mode }
    end
    else if opcode = op_close then begin
      let client = get_u32 c in
      let path = get_str c in
      Close { client; path }
    end
    else if opcode = op_read then begin
      let client = get_u32 c in
      let offset = get_u32 c in
      let count = get_u32 c in
      let path = get_str c in
      Read { client; path; offset; count }
    end
    else if opcode = op_write then begin
      let client = get_u32 c in
      let offset = get_u32 c in
      let path = get_str c in
      let data = get_rest c in
      Write { client; path; offset; data }
    end
    else if opcode = op_mkdir then Mkdir (get_str c)
    else if opcode = op_delete then Delete (get_str c)
    else if opcode = op_stat then Stat (get_str c)
    else if opcode = op_sync then Sync
    else if opcode = op_stats then Stats
    else if opcode = op_shutdown then Shutdown
    else raise Short
  with
  | r -> Ok r
  | exception Short -> Error Errno.EINVAL

(* Reply status byte: 0 for success, [1 + Errno.to_index e] for a typed
   failure — the same closed errno vocabulary on the wire as in the
   API. *)

let encode_reply r =
  let b = Buffer.create 64 in
  (match r with
  | Ok_unit -> add_u8 b 0
  | Ok_data s ->
    add_u8 b 0;
    Buffer.add_string b s
  | Ok_stat { size; is_dir } ->
    add_u8 b 0;
    add_u32 b size;
    add_u8 b (if is_dir then 1 else 0)
  | Ok_stats s ->
    add_u8 b 0;
    Buffer.add_string b s
  | Err e -> add_u8 b (1 + Errno.to_index e));
  Buffer.contents b

let decode_reply ~opcode payload =
  let c = { buf = payload; pos = 0 } in
  match
    let status = get_u8 c in
    if status > 0 then begin
      let i = status - 1 in
      if i >= Array.length Errno.all then raise Short else Err Errno.all.(i)
    end
    else if opcode = op_read || opcode = op_write then
      if opcode = op_read then Ok_data (get_rest c) else Ok_unit
    else if opcode = op_stat then begin
      let size = get_u32 c in
      let is_dir = get_u8 c = 1 in
      Ok_stat { size; is_dir }
    end
    else if opcode = op_stats then Ok_stats (get_rest c)
    else Ok_unit
  with
  | r -> Ok r
  | exception Short -> Error Errno.EINVAL

let pp_reply ppf = function
  | Ok_unit -> Format.pp_print_string ppf "ok"
  | Ok_data s -> Format.fprintf ppf "ok (%d bytes)" (String.length s)
  | Ok_stat { size; is_dir } ->
    Format.fprintf ppf "ok (%s, %d bytes)"
      (if is_dir then "dir" else "file")
      size
  | Ok_stats s -> Format.fprintf ppf "ok (stats, %d bytes)" (String.length s)
  | Err e -> Format.fprintf ppf "error %s" (Errno.to_string e)
