lib/patsy/multiplex.mli: Capfs_layout
