lib/disk/sim_disk.ml: Bus Bytes Capfs_sched Capfs_stats Data Disk_model Float Geometry Hashtbl Iorequest List Printf Seek Stdlib
