(** The simulator's storage layout: educated guesses.

    "A storage-layout module can also be instantiated for a simulator. In
    this case, all information that would have been read or written to
    disk is simulated by making educated guesses. If … a file is accessed
    that is not yet known by the storage-layout module, it picks a random
    location on disk. Once an initial location has been chosen for a
    file, the simulator sticks to those addresses."

    Placement guess: each file gets a random extent origin; its blocks
    map to consecutive addresses from that origin (wrapping), so
    sequential scans look sequential while independent files are
    scattered — the statistical behaviour of an aged update-in-place
    file system. An optional inode address per file charges one metadata
    read the first time a file is loaded. All metadata lives in memory;
    [sync] is a no-op. *)

(** [create ?seed sched driver ~block_bytes] — the guesses draw from a
    PRNG seeded by [seed] (default 1996), so runs are reproducible. *)
val create :
  ?registry:Capfs_stats.Registry.t ->
  ?name:string ->
  ?seed:int ->
  Capfs_sched.Sched.t ->
  Capfs_disk.Driver.t ->
  block_bytes:int ->
  Layout.t
