lib/layout/inode.mli: Format
