(** Simulated disk drive mechanics.

    "A simulated disk component knows about heads, tracks, sectors,
    rotational speed, controller overhead and it may implement disk cache
    policies." This module executes one I/O request at a time with full
    mechanical accounting:

    - seek time from the model's seek curve, overlapped with head
      switches;
    - rotational delay derived from the platter's angular position, which
      is a pure function of simulated time (the platter never stops);
    - media transfer per track chunk, honouring track and cylinder skew;
    - an on-disk segment cache serving sequential re-reads, grown by
      read-ahead when the queue is idle;
    - immediate-reported writes that complete to the host after the bus
      transfer while the mechanical write continues.

    Timing information is recorded in the request and in plug-in
    statistics ([<name>.seek], [<name>.rotation], [<name>.transfer],
    [<name>.service], [<name>.cache_hit]).

    With [backing:true] the disk also stores real sector contents in
    memory, so the same simulated mechanics can sit under a real
    file-system instance ("the system itself does not know it is
    communicating with a fake disk"). *)

type t

(** [create sched model bus] is a drive of the given model attached to
    [bus], head parked at cylinder 0. [backing:true] (default [false])
    keeps real sector contents in memory; a [registry] activates the
    per-drive statistics listed above under ["<name>."]. *)
val create :
  ?registry:Capfs_stats.Registry.t ->
  ?name:string ->
  ?backing:bool ->
  Capfs_sched.Sched.t ->
  Disk_model.t ->
  Bus.t ->
  t

(** The name given at creation (default ["disk"]); prefixes the drive's
    statistics and trace events. *)
val name : t -> string

(** The drive model passed to {!create}. *)
val model : t -> Disk_model.t

(** Number of addressable sectors. *)
val capacity_sectors : t -> int

(** [execute t ~queue_empty req] services [req] to completion, sleeping
    for every mechanical and bus delay. [queue_empty] is consulted after
    a read to decide whether to spend idle time on read-ahead. Calls
    [Iorequest.complete] (possibly before the mechanical work finishes,
    for immediate-reported writes). Intended to be called from a driver's
    service fibre, one request at a time. *)
val execute : t -> queue_empty:(unit -> bool) -> Iorequest.t -> unit

(** Current head cylinder (for queue schedulers). *)
val current_cylinder : t -> int

(** {2 Crash-recovery plumbing}

    A simulated power cut freezes a scheduler mid-run; the surviving
    state of a backed disk is exactly its sector store. [store_snapshot]
    copies it out ([None] for an unbacked disk), sorted by lba so
    snapshots are comparable; [store_restore] seeds a fresh disk from a
    snapshot, replacing any existing contents. Raises [Invalid_argument]
    on a disk created without [backing:true]. *)

val store_snapshot : t -> (int * bytes) array option
val store_restore : t -> (int * bytes) array -> unit
