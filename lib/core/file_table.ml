module Layout = Capfs_layout.Layout
module Cache = Capfs_cache.Cache
module Errno = Capfs_core.Errno

type entry = { file : File.t; mutable unlinked : bool }
type t = { fsys : Fsys.t; table : (int, entry) Hashtbl.t }

let create fsys = { fsys; table = Hashtbl.create 256 }

let get t ino =
  match Hashtbl.find_opt t.table ino with
  | Some e -> Some e.file
  | None -> (
    match Errno.ok_exn (t.fsys.Fsys.layout.Layout.get_inode ino) with
    | Some inode ->
      let file = File.instantiate t.fsys inode in
      Hashtbl.replace t.table ino { file; unlinked = false };
      Some file
    | None -> None)

let create_file t ~kind =
  let inode = Errno.ok_exn (t.fsys.Fsys.layout.Layout.alloc_inode ~kind) in
  let file = File.instantiate t.fsys inode in
  Hashtbl.replace t.table inode.Capfs_layout.Inode.ino
    { file; unlinked = false };
  file

let free t ino =
  (* dirty blocks die in memory: this is the write-saving effect *)
  Cache.remove_file t.fsys.Fsys.cache ino;
  Errno.ok_exn (t.fsys.Fsys.layout.Layout.free_inode ino);
  Hashtbl.remove t.table ino

let unlink t ino =
  match Hashtbl.find_opt t.table ino with
  | Some e ->
    e.unlinked <- true;
    if File.open_count e.file = 0 then free t ino
  | None -> free t ino

let is_unlinked t ino =
  match Hashtbl.find_opt t.table ino with
  | Some e -> e.unlinked
  | None -> false

let maybe_reap t ino =
  match Hashtbl.find_opt t.table ino with
  | Some e when e.unlinked && File.open_count e.file = 0 -> free t ino
  | Some _ | None -> ()

let loaded t = Hashtbl.length t.table
