lib/sched/mailbox.mli: Sched
