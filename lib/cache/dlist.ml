type 'a node = {
  v : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable owner : int; (* id of the list the node is linked on; 0 = unlinked *)
}

type 'a t = {
  id : int;
  mutable first : 'a node option;
  mutable last : 'a node option;
  mutable len : int;
}

(* atomic: lists are created from concurrently running experiment
   domains, and owner checks rely on ids being unique *)
let next_id = Atomic.make 1

let create () =
  { id = Atomic.fetch_and_add next_id 1; first = None; last = None; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let push_front t v =
  let n = { v; prev = None; next = t.first; owner = t.id } in
  (match t.first with
  | Some f -> f.prev <- Some n
  | None -> t.last <- Some n);
  t.first <- Some n;
  t.len <- t.len + 1;
  n

let push_back t v =
  let n = { v; prev = t.last; next = None; owner = t.id } in
  (match t.last with
  | Some l -> l.next <- Some n
  | None -> t.first <- Some n);
  t.last <- Some n;
  t.len <- t.len + 1;
  n

let remove t n =
  if n.owner <> t.id then invalid_arg "Dlist.remove: node not on this list";
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.first <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.last <- n.prev);
  n.prev <- None;
  n.next <- None;
  n.owner <- 0;
  t.len <- t.len - 1

let relink_front t n =
  n.prev <- None;
  n.next <- t.first;
  n.owner <- t.id;
  (match t.first with
  | Some f -> f.prev <- Some n
  | None -> t.last <- Some n);
  t.first <- Some n;
  t.len <- t.len + 1

let relink_back t n =
  n.prev <- t.last;
  n.next <- None;
  n.owner <- t.id;
  (match t.last with
  | Some l -> l.next <- Some n
  | None -> t.first <- Some n);
  t.last <- Some n;
  t.len <- t.len + 1

let move_front t n =
  remove t n;
  relink_front t n

let move_back t n =
  remove t n;
  relink_back t n

let front t = Option.map (fun n -> n.v) t.first
let back t = Option.map (fun n -> n.v) t.last

let pop_front t =
  match t.first with
  | None -> None
  | Some n ->
    remove t n;
    Some n.v

let pop_back t =
  match t.last with
  | None -> None
  | Some n ->
    remove t n;
    Some n.v

let value n = n.v

let fold f acc t =
  let rec go acc = function
    | None -> acc
    | Some n -> go (f acc n.v) n.next
  in
  go acc t.first

let iter f t = fold (fun () v -> f v) () t

let find t p =
  let rec go = function
    | None -> None
    | Some n -> if p n.v then Some n.v else go n.next
  in
  go t.first

let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)

let to_array t =
  match t.first with
  | None -> [||]
  | Some n0 ->
    let arr = Array.make t.len n0.v in
    let rec go i = function
      | None -> ()
      | Some n ->
        arr.(i) <- n.v;
        go (i + 1) n.next
    in
    go 0 t.first;
    arr
