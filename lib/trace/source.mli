(** A trace source: where replay gets its records.

    The replay engine used to take a [Record.t array], which forces the
    whole trace into memory before the first operation dispatches. A
    [Source.t] abstracts that: it is either {e array-backed} (the array
    is available, possibly lazily — replay takes its exact historical
    array path, bit-for-bit) or {e cursor-backed} (records are pulled
    one at a time from a restartable cursor — replay streams, holding
    O(active window) records rather than O(trace)).

    {2 Ownership}

    A cursor hands out fresh records; an array-backed source hands out
    the {e shared} underlying array. Record arrays are immutable by
    convention throughout the tree — producers ({!Synth.generate}, the
    format [load]ers) return arrays the consumer must not mutate, and
    replay copies before patching synthesized times — so one source
    (and one array) can safely feed many experiments, including
    experiments running in parallel domains. *)

type cursor = unit -> Record.t option
(** Pull the next record; [None] is end-of-trace. Cursors are single
    use and not thread-safe — get a fresh one per pass via {!cursor}. *)

type t

val name : t -> string

(** {2 Constructors} *)

val of_array : ?name:string -> Record.t array -> t
(** Array-backed: replay uses the array directly (zero copies, exact
    pre-streaming behaviour). *)

val of_lazy : ?name:string -> Record.t array Lazy.t -> t
(** Array-backed, materialized on first use. The lazy cell is forced by
    whichever domain touches the source first: do not share one
    [of_lazy] source across domains (give each its own). *)

val of_fn : ?name:string -> (unit -> cursor) -> t
(** Cursor-backed: [f ()] must start a fresh pass over the same records
    each time it is called (replay makes two passes). *)

val sprite_file : string -> t
(** Stream a {!Sprite_format} trace file line by line. Each pass
    reopens the file; memory is one line plus one record regardless of
    trace size. Parse errors raise {!Sprite_format.Parse_error} at pull
    time. *)

val coda_file : string -> t
(** Same, for {!Coda_format} files. *)

(** {2 Consumers} *)

val as_array : t -> Record.t array option
(** The underlying array of an array-backed source ([None] for
    cursor-backed ones) — the replay fast path. Forces a lazy source. *)

val cursor : t -> cursor
(** A fresh pass over the records. Works on every source (array-backed
    ones walk the array). *)

val to_array : t -> Record.t array
(** Materialize. Array-backed sources return the shared underlying
    array (do not mutate it); cursor-backed sources drain one fresh
    pass. *)

val length : t -> int
(** Number of records. O(1) for array-backed sources; drains a pass for
    cursor-backed ones. *)
