(** The leased client cache: {!Capfs_ccache.Cc_client}'s
    hit/miss/invalidate machine re-cut onto the PFS wire protocol.

    Where [Cc_client] calls its server through a function, this client
    speaks {!Wire} over a {!transport} — the same state machine
    (version-checked grants, delayed writes for sole holders,
    write-through under concurrent sharing, push-driven invalidation)
    now survives a serialization boundary. A repeated read of a granted
    file touches no wire at all; misses for a multi-block read go out
    as {e one} batched send ({!Wire.Batch}); dirty blocks go home as
    {e one} {!Wire.request.Writeback} frame at close or lease expiry.

    Consistency contract (close-to-open, Sprite's rules):
    - An {!open_} asks for a grant; a version newer than the cached one
      drops every stale block.
    - A pushed [Invalidate] flushes delayed writes, drops the cache for
      that path and turns the handle write-through. Pushes are acted on
      before every operation ({!transport.t_recv} [~block:false] drain)
      and whenever one surfaces while waiting for a reply.
    - An in-flight fetch that races an invalidation is {e served} to
      the caller (the read was issued first) but {e not cached} — the
      per-handle epoch guard.
    - Leases are enforced here, not at the server: when the grant's
      [lease_s] lapses, local service stops until a flush + renewal
      round trip succeeds. A write-through handle renews too — the
      fresh grant is how it learns the sharing writer departed and
      caching may resume.

    The client is single-threaded: one fibre (or the test harness)
    drives it. It runs unchanged over a real socket
    ({!socket_transport}) and an in-process virtual-clock server
    ({!virtual_transport}) — the cut-and-paste claim, applied to the
    client half of the protocol. *)

type t

(** How frames move. [t_send] delivers a burst of frames — transports
    are encouraged to coalesce a multi-frame burst into one
    {!Wire.Batch} container / one [write(2)]. [t_recv ~block:false]
    polls (Ok [None] = nothing now); [~block:true] waits for the next
    frame and treats EOF as [Error EIO]. [t_now] is the clock leases
    are measured against. *)
type transport = {
  t_send : Capfs_ccache.Netlink.Frame.t list -> (unit, Capfs_core.Errno.t) result;
  t_recv :
    block:bool ->
    (Capfs_ccache.Netlink.Frame.t option, Capfs_core.Errno.t) result;
  t_now : unit -> float;
  t_close : unit -> unit;
}

(** [create ~client tr] — a cache speaking as client id [client].
    Distinct clients on one server must use distinct ids. *)
val create : client:int -> transport -> t

(** [open_ t path mode] sends {!Wire.request.Open_grant} and installs
    (or refreshes) the handle from the reply's grant. *)
val open_ :
  t -> string -> Capfs.Client.open_mode -> (unit, Capfs_core.Errno.t) result

(** [read t path ~offset ~count] — cached, short at EOF. Present blocks
    are served locally (zero wire traffic); missing blocks are fetched
    in one batched send. Uncacheable handles pass straight through. *)
val read :
  t -> string -> offset:int -> count:int -> (string, Capfs_core.Errno.t) result

(** [write t path ~offset data] — delayed write into local blocks
    (read-modify-write for partial blocks) on a cacheable handle;
    write-through otherwise. [EBADF] on a read-only handle. *)
val write :
  t -> string -> offset:int -> data:string -> (unit, Capfs_core.Errno.t) result

(** Flush dirty blocks home ({!Wire.request.Writeback} with the close
    flag) and drop the handle. *)
val close_ : t -> string -> (unit, Capfs_core.Errno.t) result

val mkdir : t -> string -> (unit, Capfs_core.Errno.t) result

(** Drops any cached state for [path] before asking the server. *)
val delete : t -> string -> (unit, Capfs_core.Errno.t) result

val stat : t -> string -> (Wire.stat, Capfs_core.Errno.t) result
val sync : t -> (unit, Capfs_core.Errno.t) result

(** Close every handle (flushing), then the transport. Idempotent. *)
val disconnect : t -> unit

(** {2 Counters} *)

val local_hits : t -> int
(** block reads served without touching the wire *)

val remote_misses : t -> int
(** block reads (or uncacheable passthroughs) that went to the server *)

val invalidations : t -> int
(** pushed [Invalidate] frames acted on *)

val msgs_sent : t -> int
(** wire messages issued *)

val wire_sends : t -> int
(** transport sends — [msgs_sent / wire_sends] is the batching factor *)

val cached_blocks : t -> int
val dirty_blocks : t -> int

(** {2 Transports} *)

(** [socket_transport fd] — a connected stream socket to
    {!Server.serve}. The fd stays blocking; the non-blocking poll is a
    zero-timeout [select]. Multi-frame sends coalesce into one
    {!Wire.Batch} container laid out in a reusable gather buffer (one
    [write(2)]); received batches are unwrapped transparently. Closing
    the transport closes [fd]. *)
val socket_transport :
  ?max_payload:int -> Unix.file_descr -> transport

(** [virtual_transport server ~client] — the same client state machine
    against an in-process [`Virtual]-clock {!Server}: sends decode and
    {!Server.submit}; receives {!Server.drive} the shards and drain
    completions; pushes arrive via {!Server.register_pusher}. [now]
    (default: constant 0, leases never lapse) lets a test drive lease
    expiry deterministically. Closing the transport unregisters the
    pusher. *)
val virtual_transport :
  ?now:(unit -> float) -> Server.t -> client:int -> transport
