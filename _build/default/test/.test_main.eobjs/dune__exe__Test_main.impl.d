test/test_main.ml: Alcotest Test_cache Test_ccache Test_core Test_disk Test_integration Test_layout Test_patsy Test_pfs Test_sched Test_stats Test_trace
