lib/layout/ffs.ml: Array Bytes Capfs_disk Capfs_sched Capfs_stats Char Codec Hashtbl Inode Layout List Logs Stdlib String
