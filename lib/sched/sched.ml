let src = Logs.Src.create "capfs.sched" ~doc:"cut-and-paste thread scheduler"

module Log = (val Logs.src_log src : Logs.LOG)
module Tracer = Capfs_obs.Tracer
module Ev = Capfs_obs.Event

type clock = [ `Virtual | `Real ]
type policy = [ `Random | `Fifo ]
type thread_id = int

exception Deadlock of string list
exception Stopped

let () =
  Printexc.register_printer (function
    | Deadlock names ->
      Some
        (Printf.sprintf "Sched.Deadlock: blocked non-daemon fibres: [%s]"
           (String.concat "; " names))
    | _ -> None)

type thread = {
  tid : thread_id;
  name : string;
  daemon : bool;
}

(* Runnables and timers carry suspended fibres directly: the hot
   suspension paths (sleep, await, yield) park the effect continuation
   itself instead of wrapping it in a chain of closures. The [Run]/
   [A_fun]/[W_fun] arms remain for spawn and the general [Suspend]
   effect. Dispatch of every variant follows the exact sequence the
   closure-based code had (Block, then Wake at resume time, then a
   run-queue push), so scheduling order — and with it every PRNG-driven
   simulation outcome — is bit-for-bit unchanged. *)
type runnable =
  | Run of { thread : thread; thunk : unit -> unit }
  | Cont of {
      thread : thread;
      k : (unit, unit) Effect.Deep.continuation;
    }
  | Cont_bool of {
      thread : thread;
      k : (bool, unit) Effect.Deep.continuation;
      v : bool;
    }

let runnable_thread = function
  | Run { thread; _ } | Cont { thread; _ } | Cont_bool { thread; _ } -> thread

type timer_action =
  | A_fun of (unit -> unit)
  | A_cont of { thread : thread; k : (unit, unit) Effect.Deep.continuation }

type timer = { at : float; seq : int; action : timer_action }

type waiter_wake =
  | W_fun of (bool -> unit) (* true = signalled, false = timed out *)
  | W_cont of (bool, unit) Effect.Deep.continuation

type waiter = {
  wthread : thread;
  mutable active : bool;
  wake : waiter_wake;
}

type event = {
  ename : string;
  mutable pending : int;
  queue : waiter Queue.t;
}

type fd_waiter = { fd : Unix.file_descr; fresume : unit -> unit }

type t = {
  clk : clock;
  policy : policy;
  rng : Capfs_stats.Prng.t;
  tracer : Tracer.t;
  injector : Capfs_fault.Injector.t;
  (* a [float ref] rather than a mutable field: this record is mixed,
     so a float field would box on every store — and the virtual clock
     advances on every timer fire and every solo fast-path sleep *)
  vnow : float ref;
  mutable epoch : float; (* wall-clock at run start, `Real only *)
  (* circular buffer: logical slot i lives at (runq_head + i) mod cap *)
  mutable runq : runnable array;
  mutable runq_head : int;
  mutable runq_len : int;
  timers : timer Heap.t;
  mutable timer_seq : int;
  mutable next_tid : int;
  live : (thread_id, thread) Hashtbl.t;
  mutable fd_waiters : fd_waiter list;
  mutable current : thread option;
  mutable running : bool;
  mutable stopping : bool;
  mutable horizon : float; (* active [run ~until] bound, else infinity *)
  mutable failure : exn option;
}

let cmp_timer a b =
  let c = compare a.at b.at in
  if c <> 0 then c else compare a.seq b.seq

let create ?(seed = 42) ?(policy = `Random) ?(tracer = Tracer.null)
    ?(injector = Capfs_fault.Injector.null) ~clock () =
  {
    clk = clock;
    policy;
    rng = Capfs_stats.Prng.create ~seed;
    tracer;
    injector;
    vnow = ref 0.;
    epoch = 0.;
    runq = [||];
    runq_head = 0;
    runq_len = 0;
    timers = Heap.create ~cmp:cmp_timer;
    timer_seq = 0;
    next_tid = 1;
    live = Hashtbl.create 64;
    fd_waiters = [];
    current = None;
    running = false;
    stopping = false;
    horizon = infinity;
    failure = None;
  }

let clock t = t.clk
let tracer t = t.tracer
let injector t = t.injector

let now t =
  match t.clk with
  | `Virtual -> !(t.vnow)
  | `Real -> if t.running then Unix.gettimeofday () -. t.epoch else !(t.vnow)

let push_run t r =
  let cap = Array.length t.runq in
  if t.runq_len = cap then begin
    (* grow, unwrapping so logical slot 0 lands at physical 0 *)
    let grown = Array.make (Stdlib.max 8 (2 * cap)) r in
    for i = 0 to t.runq_len - 1 do
      grown.(i) <- t.runq.((t.runq_head + i) mod cap)
    done;
    t.runq <- grown;
    t.runq_head <- 0
  end;
  let cap = Array.length t.runq in
  t.runq.((t.runq_head + t.runq_len) mod cap) <- r;
  t.runq_len <- t.runq_len + 1

(* Both policies evolve the {e logical} queue exactly as the previous
   flat-array code did — Fifo pops the front (now a head bump instead of
   an O(n) shift), Random swap-removes logical slot [i] with the logical
   last — so the dispatch order, and with it every PRNG-driven
   simulation outcome, is bit-for-bit unchanged. *)
let pop_run t =
  if t.runq_len = 0 then None
  else begin
    let cap = Array.length t.runq in
    let i =
      match t.policy with
      | `Fifo -> 0
      | `Random -> Capfs_stats.Prng.int t.rng t.runq_len
    in
    let phys = (t.runq_head + i) mod cap in
    let r = t.runq.(phys) in
    (match t.policy with
    | `Fifo -> t.runq_head <- (t.runq_head + 1) mod cap
    | `Random ->
      t.runq.(phys) <- t.runq.((t.runq_head + t.runq_len - 1) mod cap));
    t.runq_len <- t.runq_len - 1;
    Some r
  end

let add_timer t ~at action =
  t.timer_seq <- t.timer_seq + 1;
  Heap.push t.timers { at; seq = t.timer_seq; action = A_fun action }

let add_timer_cont t ~at thread k =
  t.timer_seq <- t.timer_seq + 1;
  Heap.push t.timers { at; seq = t.timer_seq; action = A_cont { thread; k } }

(* The general suspension effect: the performer hands the handler a
   registration function that receives the resume callback. Resuming
   pushes the continuation back on the run queue; it never runs inline.
   The label names what the fibre blocks on, for the event tracer.

   The three specialized effects cover the hot suspensions — they carry
   their operands directly so neither the performer nor the handler
   allocates a registration/resume closure pair. *)
type _ Effect.t +=
  | Suspend : string * (('a -> unit) -> unit) -> 'a Effect.t
  | Sleep_until : float -> unit Effect.t
  | Yield : unit Effect.t
  | Wait : event -> bool Effect.t

let suspend ~on register = Effect.perform (Suspend (on, register))

let check_alive t = if t.stopping then raise Stopped

let finish t thread result =
  Hashtbl.remove t.live thread.tid;
  match result with
  | None -> ()
  | Some Stopped -> ()
  | Some e ->
    Log.err (fun m ->
        m "thread %S died: %s" thread.name (Printexc.to_string e));
    if t.failure = None then t.failure <- Some e

let trace_block t thread on =
  if Tracer.enabled t.tracer then
    Tracer.emit t.tracer ~time:(now t)
      (Ev.Block { tid = thread.tid; thread = thread.name; on })

let trace_wake t thread =
  if Tracer.enabled t.tracer then
    Tracer.emit t.tracer ~time:(now t)
      (Ev.Wake { tid = thread.tid; thread = thread.name })

let start t thread f =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> finish t thread None);
      exnc = (fun e -> finish t thread (Some e));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend (on, register) ->
            Some
              (fun (k : (a, _) continuation) ->
                trace_block t thread on;
                register (fun v ->
                    trace_wake t thread;
                    push_run t (Run { thread; thunk = (fun () -> continue k v) })))
          | Sleep_until at ->
            Some
              (fun (k : (a, _) continuation) ->
                trace_block t thread "timer";
                add_timer_cont t ~at thread k)
          | Yield ->
            Some
              (fun (k : (a, _) continuation) ->
                trace_block t thread "yield";
                trace_wake t thread;
                push_run t (Cont { thread; k }))
          | Wait ev ->
            Some
              (fun (k : (a, _) continuation) ->
                trace_block t thread ev.ename;
                Queue.push
                  { wthread = thread; active = true; wake = W_cont k }
                  ev.queue)
          | _ -> None);
    }

let spawn ?name ?(daemon = false) t f =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let name = match name with Some n -> n | None -> Printf.sprintf "t%d" tid in
  let thread = { tid; name; daemon } in
  Hashtbl.replace t.live tid thread;
  push_run t (Run { thread; thunk = (fun () -> start t thread f) });
  tid

(* {2 The solo fast path}

   When a fibre suspends while the run queue is empty, the scheduler's
   next steps are forced: [pop_run] finds nothing, the idle loop fires
   the fibre's own timer (or, for a yield, pops it right back), and the
   fibre resumes — after one PRNG draw over a one-element queue. Both
   yield and a short sleep can therefore complete {e in place}: advance
   the virtual clock, burn the draw [pop_run] would have made, and
   return, skipping the effect suspension entirely (a perform + timer +
   continuation costs ~50 words of minor heap, and replay suspends
   several times per replayed operation — pacing, cache copy delays,
   disk positioning).

   Bit-for-bit equivalence is the contract. The fast path is taken only
   when every observable the slow path touches evolves identically:
   - virtual clock only (a real clock must actually sleep);
   - the run queue is empty (nothing else could have been dispatched);
   - no timer due at or before the wake-up time (an earlier — or
     equal-time, by seq order — timer could ready other fibres first);
   - inside [run ~until], the wake-up lies within the horizon (the
     slow path would park the fibre and stop the clock at the bound);
   - the tracer is off (the slow path emits Block/Wake/Dispatch events).
   The PRNG draw is replicated exactly: [`Random] dispatch consumes one
   [Prng.int] per pop even for a one-element queue, so skipping the
   queue must still burn that draw or every later random decision
   shifts. Timer seq numbers need no compensation — they only break
   ties among timers that actually coexist in the heap, and their
   relative order is unchanged. *)

let burn_solo_pop_draw t =
  match t.policy with
  | `Random -> ignore (Capfs_stats.Prng.int t.rng 1 : int)
  | `Fifo -> ()

let live_nondaemon t =
  Hashtbl.fold (fun _ th n -> if th.daemon then n else n + 1) t.live 0

let solo_wake_at t ~at =
  t.clk = `Virtual && t.running && t.runq_len = 0
  && (not (Tracer.enabled t.tracer))
  && at <= t.horizon
  && (match Heap.top_exn t.timers with
     | tm -> tm.at > at
     | exception Heap.Empty -> true)
  (* A lone daemon (say a periodic flusher whose service loop outlived
     every non-daemon fibre) must take the slow path: parked on its
     timer, [idle] sees no non-daemon work and [run] returns. Waking it
     in place would spin its service loop forever and never hand the
     scheduler back. *)
  && (match t.current with
     | Some th when th.daemon -> live_nondaemon t > 0
     | Some _ | None -> true)

let yield t =
  check_alive t;
  if
    t.clk = `Virtual && t.running && t.runq_len = 0
    && not (Tracer.enabled t.tracer)
  then
    (* the slow path pushes this fibre back and pops it again without
       firing timers or advancing the clock *)
    burn_solo_pop_draw t
  else Effect.perform Yield

let sleep t dt =
  check_alive t;
  if dt <= 0. then yield t
  else begin
    let at = now t +. dt in
    if solo_wake_at t ~at then begin
      if at > !(t.vnow) then t.vnow := at;
      burn_solo_pop_draw t
    end
    else Effect.perform (Sleep_until at)
  end

let new_event ?(name = "event") _t =
  { ename = name; pending = 0; queue = Queue.create () }

let current_thread t =
  match t.current with
  | Some th -> th
  | None -> { tid = 0; name = "<main>"; daemon = false }

let await t ev =
  check_alive t;
  if ev.pending > 0 then ev.pending <- ev.pending - 1
  else ignore (Effect.perform (Wait ev) : bool)

let await_timeout t ev dt =
  check_alive t;
  if ev.pending > 0 then begin
    ev.pending <- ev.pending - 1;
    true
  end
  else begin
    let th = current_thread t in
    let at = now t +. dt in
    suspend ~on:ev.ename (fun resume ->
        let w = { wthread = th; active = true; wake = W_fun resume } in
        Queue.push w ev.queue;
        add_timer t ~at (fun () ->
            if w.active then begin
              w.active <- false;
              match w.wake with
              | W_fun f -> f false
              | W_cont _ -> assert false (* timeouts only pair with W_fun *)
            end))
  end

let wake_waiter t (w : waiter) v =
  match w.wake with
  | W_fun f -> f v
  | W_cont k ->
    trace_wake t w.wthread;
    push_run t (Cont_bool { thread = w.wthread; k; v })

let rec wake_one t ev =
  match Queue.take_opt ev.queue with
  | None -> false
  | Some w ->
    if w.active then begin
      w.active <- false;
      wake_waiter t w true;
      true
    end
    else wake_one t ev

let signal t ev = if not (wake_one t ev) then ev.pending <- ev.pending + 1
let broadcast t ev = while wake_one t ev do () done

let waiters _t ev =
  Queue.fold (fun n w -> if w.active then n + 1 else n) 0 ev.queue

let wait_readable t fd =
  (match t.clk with
  | `Virtual ->
    invalid_arg "Sched.wait_readable: external events need a `Real clock"
  | `Real -> ());
  check_alive t;
  suspend ~on:"fd" (fun resume ->
      t.fd_waiters <- { fd; fresume = resume } :: t.fd_waiters)

let self_name t = (current_thread t).name
let live_threads t = Hashtbl.length t.live

let live_names t =
  Hashtbl.fold
    (fun _ th acc ->
      if th.daemon then ("*" ^ th.name) :: acc else th.name :: acc)
    t.live []
  |> List.sort compare

let stop t = t.stopping <- true

(* Fire every timer due at or before [horizon]. Virtual mode advances the
   clock to each timer's expiry; real mode has already slept past it. *)
let fire_due t horizon =
  let rec go () =
    match Heap.peek t.timers with
    | Some timer when timer.at <= horizon ->
      ignore (Heap.pop t.timers);
      if t.clk = `Virtual && timer.at > !(t.vnow) then t.vnow := timer.at;
      (match timer.action with
      | A_fun f -> f ()
      | A_cont { thread; k } ->
        trace_wake t thread;
        push_run t (Cont { thread; k }));
      go ()
    | Some _ | None -> ()
  in
  go ()

module Fd_set = Set.Make (struct
  type t = Unix.file_descr

  let compare = Stdlib.compare
end)

let select_real t timeout =
  let fds = List.map (fun w -> w.fd) t.fd_waiters in
  match Unix.select fds [] [] timeout with
  | ready, _, _ ->
    (* set membership, not [List.mem] per waiter: n waiters on n ready
       descriptors is O(n log n), not O(n²) *)
    let ready = Fd_set.of_list ready in
    let woken, still =
      List.partition (fun w -> Fd_set.mem w.fd ready) t.fd_waiters
    in
    t.fd_waiters <- still;
    List.iter (fun w -> w.fresume ()) woken
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()

let run ?until t =
  if t.running then invalid_arg "Sched.run: already running";
  t.running <- true;
  t.stopping <- false;
  t.failure <- None;
  t.epoch <- Unix.gettimeofday () -. !(t.vnow);
  t.horizon <- (match until with Some u -> u | None -> infinity);
  let horizon = until in
  let past_horizon at =
    match horizon with Some u -> at > u | None -> false
  in
  let rec loop () =
    if t.stopping then ()
    else
      match pop_run t with
      | Some r ->
        let thread = runnable_thread r in
        if Tracer.enabled t.tracer then
          Tracer.emit t.tracer ~time:(now t)
            (Ev.Dispatch { tid = thread.tid; thread = thread.name });
        t.current <- Some thread;
        (match r with
        | Run { thunk; _ } -> thunk ()
        | Cont { k; _ } -> Effect.Deep.continue k ()
        | Cont_bool { k; v; _ } -> Effect.Deep.continue k v);
        t.current <- None;
        loop ()
      | None -> idle ()
  and idle () =
    if live_nondaemon t = 0 then ()
      (* Only daemons (service loops, periodic flushers) remain: their
         timers and fds must not keep the system alive. *)
    else
      match Heap.peek t.timers with
      | Some timer when not (past_horizon timer.at) ->
        (match t.clk with
        | `Virtual -> ()
        | `Real ->
          let delay = timer.at -. now t in
          if delay > 0. then select_real t delay);
        fire_due t (match t.clk with `Virtual -> timer.at | `Real -> now t);
        loop ()
      | Some timer ->
        (* Next event lies beyond the horizon: stop the simulation there. *)
        ignore (timer : timer);
        (match horizon with
        | Some u when t.clk = `Virtual && u > !(t.vnow) -> t.vnow := u
        | Some _ | None -> ())
      | None ->
        if t.fd_waiters <> [] && t.clk = `Real then begin
          select_real t (-1.);
          loop ()
        end
        else begin
          (* A dead helper fibre (e.g. a crashed flusher daemon) usually
             explains why everyone else is stuck: surface its exception
             rather than the symptom. *)
          match t.failure with
          | Some e -> raise e
          | None -> raise (Deadlock (live_names t))
        end
  in
  let cleanup () =
    t.running <- false;
    t.current <- None;
    t.horizon <- infinity;
    if t.clk = `Real then t.vnow := Unix.gettimeofday () -. t.epoch
  in
  (try loop ()
   with e ->
     cleanup ();
     raise e);
  cleanup ();
  match t.failure with
  | Some e ->
    t.failure <- None;
    raise e
  | None -> ()
