examples/multimedia.mli:
