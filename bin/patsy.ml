(* Patsy: the off-line file-system simulator.

   Replays a trace (synthetic profile or trace file) against a fully
   simulated file server and reports operation latencies, per the
   experiments of §5.1. Several policies (-p ups,nvram-whole or -p all)
   fan out over a fleet of domains (-j N). *)

module Experiment = Capfs_patsy.Experiment
module Fleet = Capfs_patsy.Fleet
module Report = Capfs_patsy.Report
module Crash = Capfs_patsy.Crash
module Diffval = Capfs_diffval.Diffval
module Plan = Capfs_fault.Plan
module Lfs = Capfs_layout.Lfs

let setup_logs level =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

(* [-stream] with a file format replays straight off the file: replay
   memory stays O(active window) however big the trace is. Everything
   else (synth profiles, array mode) materializes as before. *)
let source_of_trace ~trace ~format ~seed ~duration ~stream =
  match (format, stream) with
  | "sprite-file", true -> Capfs_trace.Source.sprite_file trace
  | "coda-file", true -> Capfs_trace.Source.coda_file trace
  | "sprite-file", false ->
    Capfs_trace.Source.of_array ~name:trace (Capfs_trace.Sprite_format.load trace)
  | "coda-file", false ->
    Capfs_trace.Source.of_array ~name:trace (Capfs_trace.Coda_format.load trace)
  | "synth", _ ->
    let profile = Capfs_trace.Synth.profile_by_name trace in
    Capfs_trace.Synth.source ~seed ?duration profile
  | f, _ -> invalid_arg ("unknown trace format: " ^ f)

let policy_of_name = function
  | "write-delay" | "write-delay-30s" -> Experiment.Write_delay
  | "ups" -> Experiment.Ups
  | "nvram-whole" -> Experiment.Nvram_whole
  | "nvram-partial" -> Experiment.Nvram_partial
  | p -> invalid_arg ("unknown policy: " ^ p)

let policies_of_arg arg =
  if arg = "all" then Experiment.all_policies
  else String.split_on_char ',' arg |> List.map policy_of_name

let print_one ~trace ~show_cdf ~show_windows ~show_stats outcome =
  Format.printf "%a@." Report.print_outcome_summary outcome;
  if show_windows then
    Format.printf "%a@." Report.print_windows outcome.Experiment.replay;
  if show_stats then begin
    (* "plug-in statistics ... provide standard statistics output with
       or without histograms" *)
    Format.printf "@.# plug-in statistics:@.";
    Capfs_stats.Registry.report ~histograms:true Format.std_formatter
      outcome.Experiment.registry
  end;
  if show_cdf then begin
    let title =
      Printf.sprintf "%s / %s" trace (Experiment.policy_name outcome.Experiment.config.Experiment.policy)
    in
    Report.print_cdf ~title Format.std_formatter outcome.Experiment.replay;
    Format.printf "@."
  end

(* Crash-recovery mode (--crash-at): one experiment, killed mid-run,
   recovered with Lfs.recover and checked against the shadow model. *)
let run_crash ~config ~records plan =
  let report = Crash.run ~config ~trace:records plan in
  Format.printf "# crash: power cut at t=%g, %d ops applied before the cut@."
    report.Crash.crash_time report.Crash.applied_ops;
  List.iter
    (fun (name, r) ->
      Format.printf
        "  %s: checkpoint seq %d, rolled %d segment(s) forward, %d live \
         inode(s)%s@."
        name r.Lfs.r_checkpoint_seq r.Lfs.r_rolled_segments
        r.Lfs.r_recovered_inodes
        (match r.Lfs.r_fsck_errors with
        | [] -> ""
        | errs -> Printf.sprintf ", %d fsck error(s)" (List.length errs)))
    report.Crash.recoveries;
  List.iter
    (fun (name, e) ->
      Format.printf "  %s: RECOVERY FAILED (%s)@." name
        (Capfs_core.Errno.to_string e))
    report.Crash.failed_volumes;
  Format.printf "# shadow model: %d durable-floor entr(ies)%s, %d violation(s)@."
    report.Crash.floor_size
    (if report.Crash.floor_synced then ""
     else " — floor sync did not complete before the crash")
    (List.length report.Crash.violations);
  List.iter
    (fun v -> Format.printf "  violation: %a@." Crash.pp_violation v)
    report.Crash.violations;
  Format.printf "# verdict: %s@."
    (if report.Crash.ok then "CONSISTENT" else "INCONSISTENT");
  if report.Crash.ok then 0 else 1

(* Differential mode (--differential): the same trace through Patsy
   (virtual time, simulated disk) and PFS (real time, real backing file),
   policy-visible statistics diffed within tolerance. *)
let skew_of_spec spec =
  let int v = int_of_string v in
  match String.index_opt spec '=' with
  | None when spec = "no-coalesce" ->
    fun c -> { c with Experiment.coalesce = false }
  | None -> invalid_arg ("--diff-skew: expected KEY=VALUE, got " ^ spec)
  | Some i -> (
    let key = String.sub spec 0 i in
    let v = String.sub spec (i + 1) (String.length spec - i - 1) in
    match key with
    | "cache-mb" -> fun c -> { c with Experiment.cache_mb = int v }
    | "nvram-mb" -> fun c -> { c with Experiment.nvram_mb = int v }
    | "flush-window" -> fun c -> { c with Experiment.flush_window = int v }
    | "max-extent" -> fun c -> { c with Experiment.max_extent = int v }
    | "seg-blocks" -> fun c -> { c with Experiment.seg_blocks = int v }
    | "replacement" -> fun c -> { c with Experiment.replacement = v }
    | "iosched" -> fun c -> { c with Experiment.iosched = v }
    | k -> invalid_arg ("--diff-skew: unknown key " ^ k))

let run_differential ~trace ~source ~config ~image_mb ~speedup ~report_out
    ~skew_spec =
  let dcfg =
    {
      (Diffval.default ()) with
      Diffval.base =
        {
          config with
          (* PFS runs on one backing file; the comparable farm is the
             single-spindle one, and simulated memcpy time would charge
             real seconds on the on-line half *)
          Experiment.ndisks = 1;
          nbuses = 1;
          mem_copy_rate = 0.;
        };
      image_mb;
      speedup;
    }
  in
  let skew = Option.map skew_of_spec skew_spec in
  match Diffval.run ?skew ~config:dcfg ~trace_name:trace source with
  | Error e ->
    Format.eprintf "patsy --differential: harness failure (%a)@."
      Capfs_core.Errno.pp e;
    2
  | Ok report ->
    Format.printf "%a" Diffval.pp report;
    (match report_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Diffval.to_json report);
      output_char oc '\n';
      close_out oc;
      Format.printf "# wrote JSON report to %s@." path);
    if report.Diffval.r_ok then 0 else 1

let run_main trace format policy duration seed parallel_jobs disks buses
    cache_mb nvram_mb iosched replacement cleaner sync_flush no_coalesce
    flush_window max_extent request_overhead fault_plan crash_at
    differential image_mb diff_speedup diff_report diff_skew stream
    trace_out trace_buffer show_cdf show_windows show_stats log_level =
  setup_logs log_level;
  let policies = policies_of_arg policy in
  let plan =
    match fault_plan with
    | None -> Plan.empty
    | Some spec -> (
      match Plan.of_string spec with
      | Ok p -> p
      | Error msg -> invalid_arg ("--fault-plan: " ^ msg))
  in
  let plan =
    match crash_at with
    | None -> plan
    | Some t -> { plan with Plan.crash_at = Some t }
  in
  let config policy =
    {
      (Experiment.default policy) with
      Experiment.ndisks = disks;
      nbuses = buses;
      cache_mb;
      nvram_mb;
      iosched;
      replacement;
      cleaner =
        (match cleaner with
        | "greedy" -> Capfs_layout.Lfs.Greedy
        | "cost-benefit" -> Capfs_layout.Lfs.Cost_benefit
        | c -> invalid_arg ("unknown cleaner: " ^ c));
      async_flush = not sync_flush;
      coalesce = not no_coalesce;
      flush_window;
      max_extent;
      request_overhead;
      seed;
      trace_buffer = (if trace_out = None then 0 else trace_buffer);
      fault_plan = (if Plan.is_empty plan then None else Some plan);
    }
  in
  (* build once here; sources (and the arrays behind them) are
     immutable, so the fleet workers can share it *)
  let source = source_of_trace ~trace ~format ~seed ~duration ~stream in
  if differential then
    run_differential ~trace ~source
      ~config:(config (List.hd policies))
      ~image_mb ~speedup:diff_speedup ~report_out:diff_report
      ~skew_spec:diff_skew
  else if plan.Plan.crash_at <> None then
    (* crash replay needs the records in hand (it replays prefixes) *)
    run_crash ~config:(config (List.hd policies))
      ~records:(Capfs_trace.Source.to_array source) plan
  else begin
  Format.printf "# patsy: trace=%s policies=%s records=%s jobs=%d@." trace
    (String.concat ","
       (List.map Experiment.policy_name policies))
    (match Capfs_trace.Source.as_array source with
    | Some a -> string_of_int (Array.length a)
    | None -> "streamed")
    parallel_jobs;
  let results =
    Fleet.run_matrix ~jobs:parallel_jobs ~config
      ~gen:(fun _ -> source)
      (List.map (fun p -> (trace, p)) policies)
  in
  match Fleet.failures results with
  | (job, f) :: _ ->
    Format.eprintf "patsy: experiment %s %a@." job.Fleet.label Fleet.pp_failure
      f;
    1
  | [] ->
    List.iter
      (fun r ->
        print_one ~trace ~show_cdf ~show_windows ~show_stats
          (Fleet.outcome_exn r))
      results;
    (match trace_out with
    | None -> ()
    | Some path ->
      let stream = Fleet.merged_events results in
      Capfs_obs.Export.to_file path stream;
      Format.printf "# wrote %d trace events to %s@." (List.length stream) path);
    0
  end

open Cmdliner

let trace =
  Arg.(value & opt string "sprite-1a"
       & info [ "t"; "trace" ] ~docv:"TRACE"
           ~doc:"Synthetic profile name (sprite-1a, sprite-1b, sprite-2a, \
                 sprite-2b, sprite-5) or a trace file path.")

let format =
  Arg.(value & opt string "synth"
       & info [ "f"; "format" ] ~docv:"FMT"
           ~doc:"Trace source: synth, sprite-file or coda-file.")

let policy =
  Arg.(value & opt string "ups"
       & info [ "p"; "policy" ] ~docv:"POLICY"
           ~doc:"Flush policy: write-delay, ups, nvram-whole, nvram-partial; \
                 a comma-separated list, or 'all', replays the trace under \
                 each policy (in parallel with -j).")

let duration =
  Arg.(value & opt (some float) None
       & info [ "d"; "duration" ] ~docv:"SECONDS"
           ~doc:"Override the synthetic trace duration.")

let seed = Arg.(value & opt int 1996 & info [ "seed" ] ~docv:"SEED")

let parallel_jobs =
  let default = Fleet.default_jobs () in
  Arg.(value & opt int default
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for multi-policy runs (default: the \
                 recommended domain count). Each experiment is fully \
                 domain-isolated, so results are identical at any -j.")

let disks = Arg.(value & opt int 10 & info [ "disks" ] ~docv:"N")
let buses = Arg.(value & opt int 3 & info [ "buses" ] ~docv:"N")
let cache_mb = Arg.(value & opt int 128 & info [ "cache-mb" ] ~docv:"MB")
let nvram_mb = Arg.(value & opt int 4 & info [ "nvram-mb" ] ~docv:"MB")

let iosched =
  Arg.(value & opt string "clook"
       & info [ "iosched" ] ~docv:"POLICY"
           ~doc:"Disk queue policy: fcfs, sstf, scan, look, cscan, clook, \
                 scan-edf.")

let replacement =
  Arg.(value & opt string "lru"
       & info [ "replacement" ] ~docv:"POLICY"
           ~doc:"Cache replacement: lru, random, lfu, slru, lru-2.")

let cleaner =
  Arg.(value & opt string "cost-benefit"
       & info [ "cleaner" ] ~doc:"LFS cleaner: greedy or cost-benefit.")

let sync_flush =
  Arg.(value & flag
       & info [ "sync-flush" ]
           ~doc:"Flush synchronously from the allocating thread (the \
                 pre-lesson behaviour of §5.2).")

let no_coalesce =
  Arg.(value & flag
       & info [ "no-coalesce" ]
           ~doc:"Disable I/O coalescing: no flush-set clustering in the \
                 cache and no request merging in the disk driver. \
                 Restores the pre-clustering simulated behaviour \
                 bit-for-bit.")

let flush_window =
  Arg.(value & opt int 4
       & info [ "flush-window" ] ~docv:"N"
           ~doc:"Extent write-backs the cache flusher keeps in flight at \
                 once (write-behind pipelining; coalescing only).")

let max_extent =
  Arg.(value & opt int 64
       & info [ "max-extent" ] ~docv:"BLOCKS"
           ~doc:"Cap on one clustered flush extent, and on one merged \
                 disk request, in file blocks (coalescing only).")

let request_overhead =
  Arg.(value & opt (some float) None
       & info [ "request-overhead" ] ~docv:"SECONDS"
           ~doc:"Per-request fixed disk cost (controller command decode \
                 etc.), charged once per physical request regardless of \
                 size — the term coalescing amortises. Default: the disk \
                 model's own figure (2 ms for the HP97560).")

let fault_plan =
  Arg.(value & opt (some string) None
       & info [ "fault-plan" ] ~docv:"PLAN"
           ~doc:"Deterministic disk-fault schedule, as comma-separated \
                 key=value pairs: read_error=P and write_error=P \
                 (per-request transient failure probabilities), latent=P \
                 (latent-sector-error density), stall_p=P and stall_s=S \
                 (whole-disk stall probability and duration), crash_at=T \
                 (power cut at virtual time T), seed=N (fault PRNG seed; \
                 defaults to --seed). Same plan + same seed = same fault \
                 schedule, at any -j.")

let crash_at =
  Arg.(value & opt (some float) None
       & info [ "crash-at" ] ~docv:"T"
           ~doc:"Kill the replay by power cut at virtual time $(docv), \
                 then recover every volume (checkpoint + roll-forward + \
                 fsck) and verify the namespace against the shadow \
                 model. Shorthand for crash_at=T in --fault-plan; exits \
                 non-zero if recovery or the consistency check fails.")

let differential =
  Arg.(value & flag
       & info [ "differential" ]
           ~doc:"Differential sim-vs-real validation: replay the trace \
                 through Patsy (virtual time, simulated disk) and through \
                 PFS (real time, real backing file), then diff the \
                 policy-visible statistics within declared tolerances \
                 (see VALIDATION.md). Uses the first --policy, forces one \
                 disk/one bus, and honours --fault-plan (crash_at \
                 stripped). Exits 0 when equivalent, 1 on drift.")

let image_mb =
  Arg.(value & opt int 128
       & info [ "image-mb" ] ~docv:"MB"
           ~doc:"Backing-image size for the PFS half of --differential.")

let diff_speedup =
  Arg.(value & opt float 100_000.
       & info [ "diff-speedup" ] ~docv:"X"
           ~doc:"Replay time compression for --differential, applied to \
                 both halves so time-triggered policy behaviour stays \
                 comparable (the PFS half runs under the real clock).")

let diff_report =
  Arg.(value & opt (some string) None
       & info [ "diff-report" ] ~docv:"FILE"
           ~doc:"Write the machine-readable differential report (JSON: \
                 both snapshots, per-counter verdicts, fsck findings) to \
                 $(docv).")

let diff_skew =
  Arg.(value & opt (some string) None
       & info [ "diff-skew" ] ~docv:"KEY=VALUE"
           ~doc:"Deliberately skew one policy parameter on the PFS half \
                 only (cache-mb, nvram-mb, flush-window, max-extent, \
                 seg-blocks, replacement, iosched, or the bare \
                 no-coalesce) — a self-test: the differential run must \
                 then exit non-zero.")

let trace_out =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the merged structured event trace as Chrome \
                 trace_event JSON to $(docv) (open with Perfetto or \
                 chrome://tracing). Enables event tracing for the run.")

let stream =
  Arg.(value & flag
       & info [ "stream" ]
           ~doc:"Stream the trace file instead of loading it: replay \
                 pulls records through a cursor with O(active window) \
                 memory (file formats only; synth profiles always \
                 materialize).")

let trace_buffer =
  Arg.(value & opt int 65536
       & info [ "trace-buffer" ] ~docv:"EVENTS"
           ~doc:"Per-experiment event ring capacity; when the run emits \
                 more events, only the newest $(docv) are kept.")

let show_cdf =
  Arg.(value & flag & info [ "cdf" ] ~doc:"Print the latency CDF series.")

let show_windows =
  Arg.(value & flag
       & info [ "windows" ] ~doc:"Print 15-minute window summaries.")

let show_stats =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Activate and print the plug-in statistics (with \
                 histograms of disk queue sizes, rotational delays, \
                 cache behaviour).")

let log_level =
  let env = Cmd.Env.info "PATSY_VERBOSITY" in
  Logs_cli.level ~env ()

let cmd =
  let doc = "trace-driven file-system simulator (Bosch & Mullender, 1996)" in
  Cmd.v
    (Cmd.info "patsy" ~doc)
    Term.(
      const run_main $ trace $ format $ policy $ duration $ seed
      $ parallel_jobs $ disks $ buses $ cache_mb $ nvram_mb $ iosched
      $ replacement $ cleaner $ sync_flush $ no_coalesce $ flush_window
      $ max_extent $ request_overhead $ fault_plan $ crash_at
      $ differential $ image_mb $ diff_speedup $ diff_report $ diff_skew
      $ stream $ trace_out $ trace_buffer $ show_cdf $ show_windows
      $ show_stats $ log_level)

let () = exit (Cmd.eval' cmd)
