lib/ccache/cc_client.mli: Capfs_disk Cc_server
