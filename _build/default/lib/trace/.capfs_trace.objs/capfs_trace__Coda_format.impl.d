lib/trace/coda_format.ml: Buffer Hashtbl List Printf Record String
