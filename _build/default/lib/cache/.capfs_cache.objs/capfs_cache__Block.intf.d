lib/cache/block.mli: Capfs_disk Format
