(** Seek-time models.

    Ruemmler & Wilkes showed that naive seek models mispredict performance
    by large factors; the HP97560 model here uses their published
    piecewise curve (a square-root region for short, acceleration-bound
    seeks and a linear region for long, coast-bound seeks). The simpler
    models exist so benchmarks can quantify exactly how wrong they are —
    the paper's own motivation for building a detailed simulator. *)

type t

(** [constant s] — every non-zero seek takes [s] seconds. The "simple
    disk model" the paper distrusts. *)
val constant : float -> t

(** [linear ~single ~max ~cylinders] interpolates between a one-cylinder
    seek of [single] seconds and a full-stroke seek of [max] seconds. *)
val linear : single:float -> max:float -> cylinders:int -> t

(** [piecewise ~knee ~a ~b ~c ~d] is
    [a +. b *. sqrt dist] when [dist < knee] and [c +. d *. dist]
    otherwise (times in seconds, distance in cylinders). *)
val piecewise : knee:int -> a:float -> b:float -> c:float -> d:float -> t

(** The HP97560 curve from Ruemmler & Wilkes (1994):
    3.24 + 0.400·√d ms below 383 cylinders, 8.00 + 0.008·d ms above. *)
val hp97560 : t

(** [time t ~distance] is the seek time in seconds for a [distance]-
    cylinder move; [0.] for zero distance. *)
val time : t -> distance:int -> float
