lib/ccache/cc_server.ml: Capfs Capfs_disk Capfs_layout Capfs_stats Hashtbl List Netlink String
