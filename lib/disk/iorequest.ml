module Sched = Capfs_sched.Sched

type op = Read | Write

type t = {
  id : int;
  op : op;
  lba : int;
  sectors : int;
  mutable data : Data.t option;
  deadline : float option;
  submitted_at : float;
  mutable started_at : float;
  mutable completed_at : float;
  done_ev : Sched.event;
  mutable completed : bool;
  mutable error : Capfs_core.Errno.t option;
  mutable fault_retryable : bool;
  mutable constituents : t list;
}

(* atomic: requests are minted from concurrently running experiment
   domains, and queue removal matches on id *)
let next_id = Atomic.make 1

let make sched op ~lba ~sectors ?deadline ?data () =
  if sectors < 1 then invalid_arg "Iorequest.make: sectors < 1";
  if lba < 0 then invalid_arg "Iorequest.make: negative lba";
  let now = Sched.now sched in
  {
    id = Atomic.fetch_and_add next_id 1;
    op;
    lba;
    sectors;
    data;
    deadline;
    submitted_at = now;
    started_at = now;
    completed_at = now;
    done_ev = Sched.new_event ~name:"iorequest.done" sched;
    completed = false;
    error = None;
    fault_retryable = false;
    constituents = [];
  }

(* A merged (scatter-gather) request completes its constituents the
   instant it completes itself — including the early completion of an
   immediate-report write — so merged waiters observe the same latency
   they would from the physical request, and a failed merged request
   delivers the same typed error to every waiter. *)
let rec complete sched t =
  if not t.completed then begin
    t.completed <- true;
    t.completed_at <- Sched.now sched;
    (match t.constituents with
    | [] -> ()
    | cs ->
      let bps =
        match t.data with
        | Some d when t.sectors > 0 -> Data.length d / t.sectors
        | Some _ | None -> 0
      in
      List.iter
        (fun c ->
          c.started_at <- t.started_at;
          c.fault_retryable <- t.fault_retryable;
          (match t.error with Some e -> c.error <- Some e | None -> ());
          (match (t.op, t.data) with
          | Read, Some d when bps > 0 && c.error = None ->
            c.data <-
              Some
                (Data.sub d ~pos:((c.lba - t.lba) * bps)
                   ~len:(c.sectors * bps))
          | _ -> ());
          complete sched c)
        cs);
    Sched.broadcast sched t.done_ev
  end

let fail sched t err =
  if not t.completed then begin
    t.error <- Some err;
    complete sched t
  end

let await sched t = if not t.completed then Sched.await sched t.done_ev

let await_timeout sched t dt =
  if t.completed then true else Sched.await_timeout sched t.done_ev dt

let wait_time t = t.started_at -. t.submitted_at
let service_time t = t.completed_at -. t.started_at
let response_time t = t.completed_at -. t.submitted_at
let last_lba t = t.lba + t.sectors

let pp ppf t =
  Format.fprintf ppf "#%d %s lba=%d n=%d" t.id
    (match t.op with Read -> "R" | Write -> "W")
    t.lba t.sectors
