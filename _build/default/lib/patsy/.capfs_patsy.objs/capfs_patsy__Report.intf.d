lib/patsy/report.mli: Experiment Format Replay
