(** Disk drivers: a scheduled I/O queue in front of a transport.

    "Disk-drivers implement one or more disk queues and send new
    operations to disks whenever they are ready to service new requests."
    The driver is the same component in both instantiations; only the
    {!transport} behind it changes — the paper's "simulated disk-drivers
    have exactly the same interface as a real disk-driver: the
    differences are in the internal implementation".

    A driver owns a queue-scheduling policy (default C-LOOK, as in the
    paper) and a service fibre that executes one request at a time
    through the transport. Statistics: [<name>.queue_len] (sampled at
    every submit), [<name>.wait] (queueing delay), [<name>.response]
    (end-to-end). *)

(** What the driver drives. [execute] services one request to completion,
    blocking the calling fibre for however long that takes, and must call
    [Iorequest.complete] (the driver completes it defensively anyway).
    [current_cylinder] feeds the queue policy. *)
type transport = {
  t_name : string;
  sector_bytes : int;
  total_sectors : int;
  execute : queue_empty:(unit -> bool) -> Iorequest.t -> unit;
  current_cylinder : unit -> int;
}

(** [sim_transport disk] drives a {!Sim_disk}. *)
val sim_transport : Sim_disk.t -> transport

(** [mem_transport ?latency ~sector_bytes ~total_sectors ()] is a RAM
    disk holding real bytes, servicing every request in [latency]
    (default 0) seconds — for unit tests and as a trivially fast device
    baseline. *)
val mem_transport :
  ?latency:float ->
  sector_bytes:int ->
  total_sectors:int ->
  Capfs_sched.Sched.t ->
  unit ->
  transport

type t

(** [create sched transport] starts the service fibre (a daemon).
    [policy] defaults to C-LOOK over a flat geometry derived from the
    transport when the transport has no geometry of its own.

    Coalescing: with [coalesce] (default [false]), the service fibre
    merges queued same-operation requests that abut or overlap the
    elected request into one scatter-gather request of at most
    [max_merge_sectors] sectors (default 1024). All merged waiters
    complete — or fail — together with the physical request; reads are
    sliced back per constituent. Each merge records the constituent
    count under [<name>.merged] and the span under [<name>.merge_span],
    and emits a [Disk_merge] trace event. With [coalesce] off the
    service order and timing are bit-identical to a build without this
    feature.

    Failure handling: the scheduler's fault injector
    ({!Capfs_fault.Injector}) is consulted once per physical (possibly
    merged) request at service time, so every merged waiter observes the
    same typed outcome. Transient errors and timeouts are absorbed by
    retrying up to [max_retries] times (default 3) with exponential
    backoff starting at [retry_backoff] seconds (default 2 ms: 2, 4,
    8 ms …); hard errors — latent sectors, device-reported failures —
    escalate immediately as [Error EIO]. [timeout] (default: wait
    forever) bounds how long one attempt may take before it is abandoned
    with [ETIMEDOUT]; a whole-disk stall longer than [timeout] costs the
    host [timeout] per attempt while the device sits out the stall.
    Statistics: [<name>.retries] and [<name>.io_errors] alongside the
    queue counters. *)
val create :
  ?registry:Capfs_stats.Registry.t ->
  ?name:string ->
  ?policy:Iosched.t ->
  ?coalesce:bool ->
  ?max_merge_sectors:int ->
  ?max_retries:int ->
  ?retry_backoff:float ->
  ?timeout:float ->
  Capfs_sched.Sched.t ->
  transport ->
  t

(** The name given at creation (default ["driver"]); prefixes the
    driver's statistics and trace events. *)
val name : t -> string

(** The transport's sector size in bytes. *)
val sector_bytes : t -> int

(** The transport's capacity in sectors. *)
val total_sectors : t -> int

(** Pending requests (excluding the one in service). *)
val queue_length : t -> int

(** Asynchronous submission; completion is signalled on the request. *)
val submit : t -> Iorequest.t -> unit

(** Blocking read of [sectors] sectors at [lba]. [Error EIO] after an
    unabsorbed device fault, [Error ETIMEDOUT] when every attempt
    exceeded the driver's [timeout]. *)
val read : t -> lba:int -> sectors:int -> (Data.t, Capfs_core.Errno.t) result

(** Blocking write. The payload length must be a multiple of the sector
    size; the sector count is derived from it. Errors as {!read}. *)
val write :
  t -> ?deadline:float -> lba:int -> Data.t -> (unit, Capfs_core.Errno.t) result

(** {!read} raising {!Capfs_core.Errno.Error} — for callers inside an
    {!Capfs_core.Errno.catch} boundary, and for tests. *)
val read_exn : t -> lba:int -> sectors:int -> Data.t

(** {!write} raising {!Capfs_core.Errno.Error}. *)
val write_exn : t -> ?deadline:float -> lba:int -> Data.t -> unit

(** Block until the queue is empty and the device idle. *)
val drain : t -> unit

(** {2 Failure accounting} — cumulative since creation. *)

(** Attempts re-submitted after a transient fault or timeout. *)
val retries : t -> int

(** Attempts abandoned because they exceeded the driver's [timeout]. *)
val timeouts : t -> int

(** Requests that ultimately failed (escalated to the caller). *)
val io_errors : t -> int

(** Scatter-gather merges performed by the service fibre (each merge
    subsumes two or more queued requests). *)
val merges : t -> int
