(** Simulated client/server network links.

    PFS speaks NFS over a network; to "simulate client/server interaction
    and client cache performance" (§3) the framework needs the wire too.
    A link charges each message a fixed per-RPC latency plus payload
    serialization time, and models half-duplex contention: concurrent
    senders share the medium (10 Mbit/s Ethernet of the era by
    default). *)

(** One shared medium. The link is a mutex around a time charge: a
    message holds the medium for [latency + wire_bytes / bandwidth]
    scheduler seconds, so concurrent senders queue — half-duplex
    Ethernet without collisions (the retry behaviour of CSMA/CD is
    folded into the fixed latency). *)
type t

(** [ethernet_10 sched] — 10 Mbit/s, 0.5 ms per-message latency: a
    1990s departmental LAN. *)
val ethernet_10 : ?registry:Capfs_stats.Registry.t -> Capfs_sched.Sched.t -> t

(** [create ~bandwidth_bytes_per_sec ~latency sched] builds a link with
    the given serialization rate and fixed per-message setup cost
    (propagation + protocol processing, charged once per
    {!transfer}). With [registry], per-message medium time is recorded
    under [<name>.transfer] ([name] defaults to ["netlink"]). *)
val create :
  ?registry:Capfs_stats.Registry.t ->
  ?name:string ->
  bandwidth_bytes_per_sec:float ->
  latency:float ->
  Capfs_sched.Sched.t ->
  t

(** [transfer t ~bytes] blocks the calling fibre for the message's time
    on the (contended) medium. Framing: [bytes] is payload only; a
    fixed 160-byte header — Ethernet + IP + UDP + RPC overhead of an
    NFS-era packet — is added per message, so zero-payload RPCs (open,
    close, callbacks) still pay for a real packet. One [transfer] is
    one message: callers model a request/reply exchange as two
    transfers, and large reads/writes as one transfer per block. *)
val transfer : t -> bytes:int -> unit

(** Total payload bytes carried so far (both directions, headers
    excluded). *)
val bytes_carried : t -> int
