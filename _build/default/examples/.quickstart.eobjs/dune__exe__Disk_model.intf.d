examples/disk_model.mli:
