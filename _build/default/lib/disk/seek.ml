type t =
  | Constant of float
  | Linear of { single : float; max : float; cylinders : int }
  | Piecewise of { knee : int; a : float; b : float; c : float; d : float }

let constant s =
  if s < 0. then invalid_arg "Seek.constant: negative";
  Constant s

let linear ~single ~max ~cylinders =
  if single < 0. || max < single || cylinders < 2 then
    invalid_arg "Seek.linear: bad parameters";
  Linear { single; max; cylinders }

let piecewise ~knee ~a ~b ~c ~d = Piecewise { knee; a; b; c; d }

let hp97560 =
  piecewise ~knee:383 ~a:3.24e-3 ~b:0.400e-3 ~c:8.00e-3 ~d:0.008e-3

let time t ~distance =
  if distance < 0 then invalid_arg "Seek.time: negative distance";
  if distance = 0 then 0.
  else
    match t with
    | Constant s -> s
    | Linear { single; max; cylinders } ->
      (* distance ranges over 1 .. cylinders-1 (full stroke). *)
      if cylinders = 2 then max
      else begin
        let frac =
          float_of_int (distance - 1) /. float_of_int (cylinders - 2)
        in
        single +. ((max -. single) *. frac)
      end
    | Piecewise { knee; a; b; c; d } ->
      let dist = float_of_int distance in
      if distance < knee then a +. (b *. sqrt dist) else c +. (d *. dist)
