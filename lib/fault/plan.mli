(** Declarative fault plans.

    A plan is a small immutable record of fault rates and triggers; an
    {!Injector} instantiates it with a PRNG seed into a concrete,
    deterministic fault schedule. The textual form (accepted by Patsy's
    [--fault-plan]) is a comma-separated [key=value] list:

    {v read_error=0.01,write_error=0.005,latent=16,stall_p=0.001,stall_s=0.25,crash_at=30,seed=7 v}

    Unknown keys are rejected; omitted keys keep their {!empty} value,
    so ["latent=4"] alone is a valid plan. *)

type t = {
  read_error : float;   (** per-read probability of a transient error *)
  write_error : float;  (** per-write probability of a transient error *)
  latent : int;         (** latent bad sectors seeded per disk *)
  stall_p : float;      (** per-request probability of a whole-disk stall *)
  stall_s : float;      (** stall duration, scheduler seconds *)
  crash_at : float option;  (** virtual time of the simulated power cut *)
  seed : int option;    (** fault-stream seed; defaults to the experiment's *)
}

(** No faults at all. An {!Injector} built from it stays disabled. *)
val empty : t

(** [true] iff the plan injects no faults and carries no crash trigger. *)
val is_empty : t -> bool

(** Parse the [key=value] list; [Error msg] on unknown keys or
    unparseable values. [of_string ""] is [Ok empty]. *)
val of_string : string -> (t, string) result

(** Round-trips through {!of_string}; omits [empty]-valued keys. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
