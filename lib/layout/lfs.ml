module Sched = Capfs_sched.Sched
module Data = Capfs_disk.Data
module Driver = Capfs_disk.Driver
module Errno = Capfs_core.Errno
module Stats = Capfs_stats
module Counter = Capfs_stats.Counter
module Tracer = Capfs_obs.Tracer
module Ev = Capfs_obs.Event

let src = Logs.Src.create "capfs.lfs" ~doc:"segmented log-structured layout"

module Log = (val Logs.src_log src : Logs.LOG)

type cleaner_policy = Greedy | Cost_benefit

type config = {
  seg_blocks : int;
  checkpoint_blocks : int;
  cleaner : cleaner_policy;
  min_free_segments : int;
  target_free_segments : int;
  first_ino : int;
  ino_stride : int;
      (** mint inos [first_ino, first_ino+stride, …]: several volumes
          behind one server share the inode namespace disjointly *)
}

let default_config =
  {
    seg_blocks = 128; (* 512 KB segments with 4 KB blocks *)
    checkpoint_blocks = 256;
    cleaner = Cost_benefit;
    min_free_segments = 4;
    target_free_segments = 8;
    first_ino = 1;
    ino_stride = 1;
  }

let magic = "CAPLFS01"

(* What a block in the log is, as recorded in the segment summary. *)
type entry =
  | E_data of int * int (* ino, file block *)
  | E_inode of int
  | E_indirect of int

type seg_state = {
  mutable live : int; (* live blocks, excluding the summary *)
  mutable written_seq : int;
  mutable free : bool;
  mutable pending_free : bool;
      (* cleaned, but the durable checkpoint still references it: must
         not be reused until the next checkpoint commits *)
}

type t = {
  sched : Sched.t;
  driver : Driver.t;
  c_segment_sealed : Counter.t;
  c_free_segments : Counter.t;
  c_checkpoint : Counter.t;
  lname : string;
  cfg : config;
  block_bytes : int;
  spb : int; (* sectors per block *)
  total_blocks : int;
  nsegs : int;
  seg0 : int; (* first block of segment 0 *)
  ckpt_a : int;
  ckpt_b : int;
  (* volatile metadata *)
  imap : (int, int) Hashtbl.t; (* ino -> disk addr of inode block *)
  inodes : (int, Inode.t) Hashtbl.t; (* in-core inode table *)
  indirect_of : (int, int list) Hashtbl.t; (* ino -> indirect block addrs *)
  segs : seg_state array;
  mutable next_ino : int;
  mutable seq : int; (* next segment sequence number *)
  mutable ckpt_next_a : bool; (* which region the next checkpoint uses *)
  mutable ckpt_seq : int;
  (* open segment buffer *)
  mutable cur_seg : int;
  mutable cur_pos : int; (* next free offset in the segment, 1-based *)
  mutable cur_entries : entry list; (* reversed *)
  mutable cur_data : Data.t list; (* reversed *)
  pending : (int, Data.t) Hashtbl.t; (* disk addr -> buffered data *)
  dirty_inodes : (int, unit) Hashtbl.t;
  mutable cleaning : bool;
  (* checkpoint capture: while set, seals buffer their payloads in
     [deferred_seals] instead of writing, so capturing the in-core
     metadata never yields to other fibres *)
  mutable capturing : bool;
  mutable deferred_seals : (int * Data.t list * Data.t) list; (* reversed *)
  mutable inflight_seals : int; (* seal writes issued but not yet durable *)
  seal_done : Sched.event;
  (* adoption cursor: segment being filled with synthesized pre-existing
     blocks (simulator aid), -1 when none *)
  mutable adopt_seg : int;
  mutable adopt_pos : int;
  (* counters *)
  mutable sealed_segments : int;
  mutable cleanings : int;
  mutable blocks_cleaned : int;
  mutable log_blocks_written : int;
}

(* {2 Address arithmetic} *)

let seg_of_addr t addr = (addr - t.seg0) / t.cfg.seg_blocks
let seg_base t s = t.seg0 + (s * t.cfg.seg_blocks)

let free_segments t =
  Array.fold_left (fun n s -> if s.free then n + 1 else n) 0 t.segs

(* Free now, or free as soon as the next checkpoint commits. The
   cleaner budgets against this; only [find_free_segment] insists on
   strictly free segments. *)
let reclaimable_segments t =
  Array.fold_left
    (fun n s -> if s.free || s.pending_free then n + 1 else n)
    0 t.segs

(* {2 Raw block I/O} *)

let write_block_raw t ~addr data =
  Driver.write_exn t.driver ~lba:(addr * t.spb) data

let read_block_raw t ~addr =
  Driver.read_exn t.driver ~lba:(addr * t.spb) ~sectors:t.spb

(* Pad a serialized structure to whole blocks. *)
let pad_to_blocks t s =
  let n = ((String.length s + t.block_bytes - 1) / t.block_bytes) * t.block_bytes in
  let b = Bytes.make n '\000' in
  Bytes.blit_string s 0 b 0 (String.length s);
  Data.Real b

(* {2 Segment summaries} *)

let serialize_summary t entries =
  let w = Codec.Writer.create () in
  Codec.Writer.string w "SUMM";
  Codec.Writer.u64 w t.seq;
  Codec.Writer.u32 w (List.length entries);
  List.iter
    (fun e ->
      match e with
      | E_data (ino, blk) ->
        Codec.Writer.u8 w 0;
        Codec.Writer.u64 w ino;
        Codec.Writer.u64 w blk
      | E_inode ino ->
        Codec.Writer.u8 w 1;
        Codec.Writer.u64 w ino;
        Codec.Writer.u64 w 0
      | E_indirect ino ->
        Codec.Writer.u8 w 2;
        Codec.Writer.u64 w ino;
        Codec.Writer.u64 w 0)
    entries;
  let body = Codec.Writer.contents w in
  let w2 = Codec.Writer.create () in
  Codec.Writer.u32 w2 (Codec.crc body);
  body ^ Codec.Writer.contents w2

let deserialize_summary s =
  let r = Codec.Reader.of_string s in
  let m = Codec.Reader.string r in
  if m <> "SUMM" then raise (Codec.Corrupt "segment summary magic");
  let seq = Codec.Reader.u64 r in
  let count = Codec.Reader.u32 r in
  let entries =
    List.init count (fun _ ->
        let tag = Codec.Reader.u8 r in
        let ino = Codec.Reader.u64 r in
        let blk = Codec.Reader.u64 r in
        match tag with
        | 0 -> E_data (ino, blk)
        | 1 -> E_inode ino
        | 2 -> E_indirect ino
        | n -> raise (Codec.Corrupt (Printf.sprintf "summary tag %d" n)))
  in
  (seq, entries)

(* {2 The log} *)

let open_segment t s =
  t.segs.(s).free <- false;
  t.cur_seg <- s;
  t.cur_pos <- 1;
  t.cur_entries <- [];
  t.cur_data <- []

let find_free_segment t =
  let rec go s = if s >= t.nsegs then None
    else if t.segs.(s).free then Some s
    else go (s + 1)
  in
  go 0

let serialize_checkpoint t =
  let w = Codec.Writer.create () in
  Codec.Writer.string w "CKPT";
  Codec.Writer.u64 w t.seq;
  Codec.Writer.u64 w t.next_ino;
  Codec.Writer.f64 w (Sched.now t.sched);
  Codec.Writer.u32 w (Hashtbl.length t.imap);
  Hashtbl.iter
    (fun ino addr ->
      Codec.Writer.u64 w ino;
      Codec.Writer.u64 w addr)
    t.imap;
  Codec.Writer.u32 w t.nsegs;
  Array.iter
    (fun s ->
      Codec.Writer.u32 w s.live;
      Codec.Writer.u64 w s.written_seq;
      (* this checkpoint no longer references pending-free victims, so
         the image may already call them free; the in-core flag only
         flips once the image is durable *)
      Codec.Writer.u8 w (if s.free || s.pending_free then 1 else 0))
    t.segs;
  (* indirect lists, so liveness checks survive a remount *)
  Codec.Writer.u32 w (Hashtbl.length t.indirect_of);
  Hashtbl.iter
    (fun ino addrs ->
      Codec.Writer.u64 w ino;
      Codec.Writer.u32 w (List.length addrs);
      List.iter (fun a -> Codec.Writer.u64 w a) addrs)
    t.indirect_of;
  let body = Codec.Writer.contents w in
  let w2 = Codec.Writer.create () in
  Codec.Writer.u32 w2 (Codec.crc body);
  body ^ Codec.Writer.contents w2

(* Forward declaration for the seal -> clean -> append cycle. *)
let rec seal_segment t =
  if t.cur_pos > 1 then begin
    let seg = t.cur_seg in
    let entries = List.rev t.cur_entries in
    let blocks = List.rev t.cur_data in
    let summary = pad_to_blocks t (serialize_summary t entries) in
    (* a scatter-gather payload: the buffered blocks travel to the
       driver by reference — no flattening copy at seal time *)
    let payload = Data.gather (summary :: blocks) in
    t.segs.(seg).written_seq <- t.seq;
    t.seq <- t.seq + 1;
    t.sealed_segments <- t.sealed_segments + 1;
    t.log_blocks_written <- t.log_blocks_written + List.length blocks + 1;
    Counter.record t.c_segment_sealed (float_of_int (List.length blocks));
    (let tr = Sched.tracer t.sched in
     if Tracer.enabled tr then
       Tracer.emit tr ~time:(Sched.now t.sched)
         (Ev.Seg_write { volume = t.lname; seg; blocks = List.length blocks }));
    (* Open the successor before the write below can yield: an append
       racing the seal I/O must land in a fresh buffer, not in the
       sealed one where it would silently vanish. *)
    let next =
      match find_free_segment t with
      | Some s -> s
      | None -> raise (Errno.Error Errno.ENOSPC)
    in
    open_segment t next;
    if t.capturing then
      (* a checkpoint capture is in flight: stay yield-free and let
         [checkpoint] issue the write once the capture is complete *)
      t.deferred_seals <- (seg, blocks, payload) :: t.deferred_seals
    else begin
      t.inflight_seals <- t.inflight_seals + 1;
      Fun.protect
        ~finally:(fun () ->
          t.inflight_seals <- t.inflight_seals - 1;
          Sched.broadcast t.sched t.seal_done)
        (fun () -> write_block_raw t ~addr:(seg_base t seg) payload);
      (* buffered blocks are now on disk: drop them from the read path
         and release the append buffer's payload references *)
      List.iteri
        (fun i d ->
          Hashtbl.remove t.pending (seg_base t seg + 1 + i);
          Data.release d)
        blocks;
      maybe_clean t
    end
  end

and append_block t entry data =
  (* Re-check after sealing: the seal may have run the cleaner, which
     appends live blocks into the freshly opened segment. *)
  while t.cur_pos >= t.cfg.seg_blocks do
    seal_segment t
  done;
  let addr = seg_base t t.cur_seg + t.cur_pos in
  (* the append buffer holds this payload until its seal is durable:
     co-own it so a slab cell cannot be recycled out from under the
     open segment (released in [seal_segment]/[checkpoint]) *)
  Data.retain data;
  t.cur_entries <- entry :: t.cur_entries;
  t.cur_data <- data :: t.cur_data;
  Hashtbl.replace t.pending addr data;
  t.segs.(t.cur_seg).live <- t.segs.(t.cur_seg).live + 1;
  t.cur_pos <- t.cur_pos + 1;
  addr

and kill_addr t addr =
  if addr >= t.seg0 then begin
    let s = seg_of_addr t addr in
    if s >= 0 && s < t.nsegs then begin
      t.segs.(s).live <- Stdlib.max 0 (t.segs.(s).live - 1);
      Hashtbl.remove t.pending addr
    end
  end

(* Serialize an inode into the log: spilled indirect blocks first, then
   the inode block itself; the inode map is pointed at the new copy. *)
and log_inode t (inode : Inode.t) =
  (match Hashtbl.find_opt t.imap inode.Inode.ino with
  | Some old -> kill_addr t old
  | None -> ());
  (match Hashtbl.find_opt t.indirect_of inode.Inode.ino with
  | Some olds -> List.iter (kill_addr t) olds
  | None -> ());
  let per = Inode.addrs_per_indirect ~block_bytes:t.block_bytes in
  let spill = Stdlib.max 0 (inode.Inode.nblocks - Inode.ndirect) in
  let n_ind = (spill + per - 1) / per in
  let indirect =
    List.init n_ind (fun k ->
        let w = Codec.Writer.create () in
        let base = Inode.ndirect + (k * per) in
        let count = Stdlib.min per (inode.Inode.nblocks - base) in
        Codec.Writer.u32 w count;
        for i = base to base + count - 1 do
          Codec.Writer.u64 w (Inode.get_addr inode i + 1)
        done;
        let data = pad_to_blocks t (Codec.Writer.contents w) in
        append_block t (E_indirect inode.Inode.ino) data)
  in
  let ser = Inode.serialize inode ~indirect in
  if String.length ser > t.block_bytes then
    raise (Codec.Corrupt "inode larger than a block");
  let addr = append_block t (E_inode inode.Inode.ino) (pad_to_blocks t ser) in
  Hashtbl.replace t.imap inode.Inode.ino addr;
  Hashtbl.replace t.indirect_of inode.Inode.ino indirect

and flush_dirty_inodes t =
  let inos = Hashtbl.fold (fun ino () acc -> ino :: acc) t.dirty_inodes [] in
  let inos = List.sort compare inos in
  List.iter
    (fun ino ->
      Hashtbl.remove t.dirty_inodes ino;
      match Hashtbl.find_opt t.inodes ino with
      | Some inode -> log_inode t inode
      | None -> ())
    inos

(* {2 Cleaning} *)

and pick_victim t =
  let now_seq = t.seq in
  let best = ref None in
  let better score s =
    match !best with
    | Some (bs, _) when bs >= score -> ()
    | Some _ | None -> best := Some (score, s)
  in
  Array.iteri
    (fun s st ->
      if (not st.free) && (not st.pending_free) && s <> t.cur_seg then begin
        let cap = float_of_int (t.cfg.seg_blocks - 1) in
        let u = float_of_int st.live /. cap in
        if u < 1.0 then begin
          match t.cfg.cleaner with
          | Greedy -> better (1.0 -. u) s
          | Cost_benefit ->
            let age = float_of_int (now_seq - st.written_seq) in
            better ((1.0 -. u) *. (age +. 1.0) /. (1.0 +. u)) s
        end
      end)
    t.segs;
  Option.map snd !best

and entry_is_live t ~addr = function
  | E_data (ino, blk) -> (
    match Hashtbl.find_opt t.inodes ino with
    | Some inode -> Inode.get_addr inode blk = addr
    | None -> (
      (* not in core: resolve through the on-disk inode *)
      match load_inode t ino with
      | Some inode -> Inode.get_addr inode blk = addr
      | None -> false))
  | E_inode ino -> Hashtbl.find_opt t.imap ino = Some addr
  | E_indirect ino -> (
    match Hashtbl.find_opt t.indirect_of ino with
    | Some addrs -> List.mem addr addrs
    | None -> false)

and clean_segment t victim =
  t.cleanings <- t.cleanings + 1;
  let base = seg_base t victim in
  (* One sequential read of the whole segment. *)
  let seg_data =
    Driver.read_exn t.driver ~lba:(base * t.spb)
      ~sectors:(t.cfg.seg_blocks * t.spb)
  in
  let block_at i =
    Data.sub seg_data ~pos:(i * t.block_bytes) ~len:t.block_bytes
  in
  let summary_str = Data.to_string (block_at 0) in
  let entries =
    try snd (deserialize_summary summary_str) with
    | Codec.Corrupt _ when not (Data.is_real seg_data) ->
      (* Simulated disk without backing store: reconstruct liveness from
         in-core metadata instead of the unreadable summary. *)
      []
  in
  let reappend_inodes = Hashtbl.create 8 in
  List.iteri
    (fun i e ->
      let addr = base + 1 + i in
      if entry_is_live t ~addr e then begin
        t.blocks_cleaned <- t.blocks_cleaned + 1;
        match e with
        | E_data (ino, blk) -> (
          match Hashtbl.find_opt t.inodes ino with
          | Some inode ->
            kill_addr t addr;
            let new_addr =
              append_block t (E_data (ino, blk)) (block_at (1 + i))
            in
            Inode.set_addr inode blk new_addr;
            Hashtbl.replace reappend_inodes ino ()
          | None -> ())
        | E_inode ino | E_indirect ino ->
          Hashtbl.replace reappend_inodes ino ()
      end)
    entries;
  (* Relocating an inode also relocates its indirect blocks, killing any
     still in the victim. *)
  Hashtbl.iter
    (fun ino () ->
      match Hashtbl.find_opt t.inodes ino with
      | Some inode -> log_inode t inode
      | None -> (
        match load_inode t ino with
        | Some inode -> log_inode t inode
        | None -> ()))
    reappend_inodes;
  t.segs.(victim).live <- 0;
  (* The durable checkpoint still points into the victim; reusing it
     before the next checkpoint commits would let a crash resurrect a
     checkpoint whose blocks have been overwritten. Park it until then. *)
  t.segs.(victim).pending_free <- true

and maybe_clean t =
  if
    (not t.cleaning) && (not t.capturing)
    && reclaimable_segments t < t.cfg.min_free_segments
  then begin
    t.cleaning <- true;
    let budget = ref (2 * t.nsegs) in
    (try
       while reclaimable_segments t < t.cfg.target_free_segments && !budget > 0 do
         decr budget;
         match pick_victim t with
         | Some v -> clean_segment t v
         | None -> budget := 0
       done;
       (* cleaned segments only become reusable once a checkpoint that
          no longer references them is durable *)
       if Array.exists (fun s -> s.pending_free) t.segs then checkpoint t
     with e ->
       t.cleaning <- false;
       raise e);
    t.cleaning <- false;
    Counter.record t.c_free_segments (float_of_int (free_segments t))
  end

(* {2 Checkpoints (write path)} *)

and checkpoint t =
  (* Phase 1 — capture. The capture must be atomic with respect to
     other fibres: sealing normally awaits disk I/O, and an inode
     mutated during that await (e.g. a directory mid
     truncate-and-rewrite) would be serialized half-updated into the
     checkpoint image. With [capturing] set, seals buffer their
     payloads instead of writing, so this whole block runs without
     yielding. *)
  t.capturing <- true;
  let seals, ser =
    Fun.protect
      ~finally:(fun () -> t.capturing <- false)
      (fun () ->
        flush_dirty_inodes t;
        seal_segment t;
        let seals = List.rev t.deferred_seals in
        t.deferred_seals <- [];
        (seals, serialize_checkpoint t))
  in
  let max_bytes = t.cfg.checkpoint_blocks * t.block_bytes in
  if String.length ser > max_bytes then
    raise
      (Codec.Corrupt
         "checkpoint exceeds its region; reformat with a larger checkpoint_blocks");
  let region = if t.ckpt_next_a then t.ckpt_a else t.ckpt_b in
  t.ckpt_next_a <- not t.ckpt_next_a;
  let seq = t.seq in
  (* Phase 2 — write. Captured segments go out first, then any seal
     still in flight from another fibre must land (the image points
     into it), and only then the region that makes the image current. *)
  List.iter
    (fun (seg, blocks, payload) ->
      write_block_raw t ~addr:(seg_base t seg) payload;
      List.iteri
        (fun i d ->
          Hashtbl.remove t.pending (seg_base t seg + 1 + i);
          Data.release d)
        blocks)
    seals;
  while t.inflight_seals > 0 do
    Sched.await t.sched t.seal_done
  done;
  write_block_raw t ~addr:region (pad_to_blocks t ser);
  t.ckpt_seq <- seq;
  (* the image calling parked victims free is durable: reuse is safe *)
  Array.iter
    (fun s ->
      if s.pending_free then begin
        s.pending_free <- false;
        s.free <- true
      end)
    t.segs;
  Counter.record t.c_checkpoint 1.

(* {2 Inode loading} *)

and load_inode t ino =
  match Hashtbl.find_opt t.inodes ino with
  | Some inode -> Some inode
  | None -> (
    match Hashtbl.find_opt t.imap ino with
    | None -> None
    | Some addr ->
      let data =
        match Hashtbl.find_opt t.pending addr with
        | Some d -> d
        | None -> read_block_raw t ~addr
      in
      if not (Data.is_real data) then
        raise
          (Codec.Corrupt
             "LFS: cannot load inode from a simulated disk without backing")
      else begin
        let inode, indirect = Inode.deserialize (Data.to_string data) in
        let per = Inode.addrs_per_indirect ~block_bytes:t.block_bytes in
        List.iteri
          (fun k ind_addr ->
            let ind_data =
              match Hashtbl.find_opt t.pending ind_addr with
              | Some d -> d
              | None -> read_block_raw t ~addr:ind_addr
            in
            let r = Codec.Reader.of_string (Data.to_string ind_data) in
            let count = Codec.Reader.u32 r in
            let base = Inode.ndirect + (k * per) in
            for i = 0 to count - 1 do
              Inode.set_addr inode (base + i) (Codec.Reader.u64 r - 1)
            done)
          indirect;
        Hashtbl.replace t.inodes ino inode;
        Hashtbl.replace t.indirect_of ino indirect;
        Some inode
      end)

(* {2 Checkpoints} *)

let parse_checkpoint s =
  let crc_pos = String.length s - 4 in
  if crc_pos <= 0 then raise (Codec.Corrupt "checkpoint too small");
  (* the region is padded with zeroes; find the actual body length by
     parsing, then verify the crc over exactly the body *)
  let r = Codec.Reader.of_string s in
  let m = Codec.Reader.string r in
  if m <> "CKPT" then raise (Codec.Corrupt "checkpoint magic");
  let seq = Codec.Reader.u64 r in
  let next_ino = Codec.Reader.u64 r in
  let _ts = Codec.Reader.f64 r in
  let n_imap = Codec.Reader.u32 r in
  let imap = List.init n_imap (fun _ ->
      let ino = Codec.Reader.u64 r in
      let addr = Codec.Reader.u64 r in
      (ino, addr))
  in
  let nsegs = Codec.Reader.u32 r in
  let segs = List.init nsegs (fun _ ->
      let live = Codec.Reader.u32 r in
      let wseq = Codec.Reader.u64 r in
      let free = Codec.Reader.u8 r = 1 in
      { live; written_seq = wseq; free; pending_free = false })
  in
  let n_ind = Codec.Reader.u32 r in
  let indirects = List.init n_ind (fun _ ->
      let ino = Codec.Reader.u64 r in
      let n = Codec.Reader.u32 r in
      (ino, List.init n (fun _ -> Codec.Reader.u64 r)))
  in
  (* crc sits immediately after the body we just read *)
  let body_len =
    (* Reader consumed exactly the body *)
    String.length s - Codec.Reader.remaining r
  in
  let stored_crc =
    let r2 = Codec.Reader.of_string (String.sub s body_len 4) in
    Codec.Reader.u32 r2
  in
  if Codec.crc (String.sub s 0 body_len) <> stored_crc then
    raise (Codec.Corrupt "checkpoint crc");
  (seq, next_ino, imap, segs, indirects)

(* {2 Superblock} *)

let serialize_superblock ~block_bytes ~total_blocks ~seg_blocks ~nsegs ~seg0
    ~ckpt_a ~ckpt_b ~checkpoint_blocks =
  let w = Codec.Writer.create () in
  Codec.Writer.string w magic;
  Codec.Writer.u32 w block_bytes;
  Codec.Writer.u64 w total_blocks;
  Codec.Writer.u32 w seg_blocks;
  Codec.Writer.u32 w nsegs;
  Codec.Writer.u64 w seg0;
  Codec.Writer.u64 w ckpt_a;
  Codec.Writer.u64 w ckpt_b;
  Codec.Writer.u32 w checkpoint_blocks;
  let body = Codec.Writer.contents w in
  let w2 = Codec.Writer.create () in
  Codec.Writer.u32 w2 (Codec.crc body);
  body ^ Codec.Writer.contents w2

let parse_superblock s =
  let r = Codec.Reader.of_string s in
  let m = Codec.Reader.string r in
  if m <> magic then raise (Codec.Corrupt "superblock magic");
  let block_bytes = Codec.Reader.u32 r in
  let total_blocks = Codec.Reader.u64 r in
  let seg_blocks = Codec.Reader.u32 r in
  let nsegs = Codec.Reader.u32 r in
  let seg0 = Codec.Reader.u64 r in
  let ckpt_a = Codec.Reader.u64 r in
  let ckpt_b = Codec.Reader.u64 r in
  let checkpoint_blocks = Codec.Reader.u32 r in
  (block_bytes, total_blocks, seg_blocks, nsegs, seg0, ckpt_a, ckpt_b,
   checkpoint_blocks)

(* {2 Geometry derivation} *)

let derive_geometry ~cfg ~total_blocks =
  let ckpt_a = 1 in
  let ckpt_b = ckpt_a + cfg.checkpoint_blocks in
  let seg0 = ckpt_b + cfg.checkpoint_blocks in
  let nsegs = (total_blocks - seg0) / cfg.seg_blocks in
  if nsegs < cfg.target_free_segments + 2 then
    invalid_arg "Lfs: disk too small for this configuration";
  (ckpt_a, ckpt_b, seg0, nsegs)

(* {2 Public API} *)

let stat_names = [ "segment_sealed"; "free_segments"; "checkpoint" ]

let make_t ?registry ?(name = "lfs") ~cfg sched driver ~block_bytes
    ~total_blocks ~ckpt_a ~ckpt_b ~seg0 ~nsegs () =
  let c_segment_sealed, c_free_segments, c_checkpoint =
    match registry with
    | Some r ->
      List.iter
        (fun s -> Stats.Registry.register r (Stats.Stat.scalar (name ^ "." ^ s)))
        stat_names;
      let c s = Stats.Registry.counter r (name ^ "." ^ s) in
      (c "segment_sealed", c "free_segments", c "checkpoint")
    | None -> Counter.(null, null, null)
  in
  let spb = block_bytes / Driver.sector_bytes driver in
  if spb < 1 || block_bytes mod Driver.sector_bytes driver <> 0 then
    invalid_arg "Lfs: block size must be a multiple of the sector size";
  {
    sched;
    driver;
    c_segment_sealed;
    c_free_segments;
    c_checkpoint;
    lname = name;
    cfg;
    block_bytes;
    spb;
    total_blocks;
    nsegs;
    seg0;
    ckpt_a;
    ckpt_b;
    imap = Hashtbl.create 1024;
    inodes = Hashtbl.create 1024;
    indirect_of = Hashtbl.create 64;
    segs =
      Array.init nsegs (fun _ ->
          { live = 0; written_seq = 0; free = true; pending_free = false });
    next_ino = cfg.first_ino;
    seq = 1;
    ckpt_next_a = true;
    ckpt_seq = 0;
    cur_seg = 0;
    cur_pos = 1;
    cur_entries = [];
    cur_data = [];
    pending = Hashtbl.create 256;
    dirty_inodes = Hashtbl.create 64;
    cleaning = false;
    capturing = false;
    deferred_seals = [];
    inflight_seals = 0;
    seal_done = Sched.new_event ~name:(name ^ ".seal_done") sched;
    adopt_seg = -1;
    adopt_pos = 1;
    sealed_segments = 0;
    cleanings = 0;
    blocks_cleaned = 0;
    log_blocks_written = 0;
  }

let total_blocks_of driver ~block_bytes =
  Driver.total_sectors driver * Driver.sector_bytes driver / block_bytes

let format ?(config = default_config) sched driver ~block_bytes =
  let total_blocks = total_blocks_of driver ~block_bytes in
  let ckpt_a, ckpt_b, seg0, nsegs =
    derive_geometry ~cfg:config ~total_blocks
  in
  let t =
    make_t ~cfg:config sched driver ~block_bytes ~total_blocks ~ckpt_a ~ckpt_b
      ~seg0 ~nsegs ()
  in
  let sb =
    serialize_superblock ~block_bytes ~total_blocks
      ~seg_blocks:config.seg_blocks ~nsegs ~seg0 ~ckpt_a ~ckpt_b
      ~checkpoint_blocks:config.checkpoint_blocks
  in
  write_block_raw t ~addr:0 (pad_to_blocks t sb);
  open_segment t 0;
  t.segs.(0).free <- false;
  checkpoint t

(* Build the Layout.t interface over an initialised t. *)
let to_layout t =
  let now () = Sched.now t.sched in
  let get_inode ino = load_inode t ino in
  let alloc_inode ~kind =
    let ino = t.next_ino in
    t.next_ino <- ino + t.cfg.ino_stride;
    let inode = Inode.make ~ino ~kind ~now:(now ()) in
    Hashtbl.replace t.inodes ino inode;
    Hashtbl.replace t.dirty_inodes ino ();
    inode
  in
  let update_inode (inode : Inode.t) =
    Hashtbl.replace t.inodes inode.Inode.ino inode;
    Hashtbl.replace t.dirty_inodes inode.Inode.ino ()
  in
  let free_inode ino =
    (match load_inode t ino with
    | Some inode ->
      List.iter (fun (_, addr) -> kill_addr t addr) (Inode.mapped inode)
    | None -> ());
    (match Hashtbl.find_opt t.imap ino with
    | Some addr -> kill_addr t addr
    | None -> ());
    (match Hashtbl.find_opt t.indirect_of ino with
    | Some addrs -> List.iter (kill_addr t) addrs
    | None -> ());
    Hashtbl.remove t.imap ino;
    Hashtbl.remove t.inodes ino;
    Hashtbl.remove t.indirect_of ino;
    Hashtbl.remove t.dirty_inodes ino
  in
  let read_block (inode : Inode.t) blk =
    match Inode.get_addr inode blk with
    | a when a = Inode.addr_none -> Data.sim t.block_bytes (* hole *)
    | addr -> (
      match Hashtbl.find_opt t.pending addr with
      | Some d -> d
      | None -> read_block_raw t ~addr)
  in
  (* Vectored read: blocks written together sit together in the log, so
     a file span usually resolves to one log run and one disk request.
     Blocks still pending in the open segment are served from memory;
     runs break around them. *)
  let read_blocks (inode : Inode.t) ~first ~count =
    let addrs = Array.init count (fun i -> Inode.get_addr inode (first + i)) in
    let parts = ref [] in
    let i = ref 0 in
    while !i < count do
      let a = addrs.(!i) in
      if a = Inode.addr_none then begin
        parts := Data.sim t.block_bytes :: !parts;
        incr i
      end
      else
        match Hashtbl.find_opt t.pending a with
        | Some d ->
          parts := d :: !parts;
          incr i
        | None ->
          let run = ref 1 in
          while
            !i + !run < count
            && addrs.(!i + !run) = a + !run
            && not (Hashtbl.mem t.pending (a + !run))
          do
            incr run
          done;
          parts :=
            Driver.read_exn t.driver ~lba:(a * t.spb) ~sectors:(!run * t.spb)
            :: !parts;
          i := !i + !run
    done;
    Data.concat (List.rev !parts)
  in
  let write_blocks updates =
    (* Append data blocks, then the affected inodes, so a summary-driven
       roll-forward sees inodes after their data. *)
    let touched = Hashtbl.create 8 in
    List.iter
      (fun (ino, blk, data) ->
        match load_inode t ino with
        | None -> Log.warn (fun m -> m "write_blocks: unknown ino %d" ino)
        | Some inode ->
          (match Inode.get_addr inode blk with
          | a when a = Inode.addr_none -> ()
          | old -> kill_addr t old);
          let addr = append_block t (E_data (ino, blk)) data in
          Inode.set_addr inode blk addr;
          Hashtbl.replace touched ino ())
      updates;
    Hashtbl.iter
      (fun ino () ->
        match Hashtbl.find_opt t.inodes ino with
        | Some inode -> log_inode t inode
        | None -> ())
      touched
  in
  let truncate (inode : Inode.t) ~blocks =
    let dropped = Inode.truncate_blocks inode ~blocks in
    List.iter (kill_addr t) dropped;
    Hashtbl.replace t.dirty_inodes inode.Inode.ino ()
  in
  let adopt (inode : Inode.t) ~blocks =
    let next_slot () =
      if t.adopt_seg < 0 || t.adopt_pos >= t.cfg.seg_blocks then begin
        match find_free_segment t with
        | Some s when s <> t.cur_seg ->
          t.segs.(s).free <- false;
          t.segs.(s).written_seq <- 0;
          t.adopt_seg <- s;
          t.adopt_pos <- 1
        | Some _ | None -> raise (Errno.Error Errno.ENOSPC)
      end;
      let addr = seg_base t t.adopt_seg + t.adopt_pos in
      t.adopt_pos <- t.adopt_pos + 1;
      t.segs.(t.adopt_seg).live <- t.segs.(t.adopt_seg).live + 1;
      addr
    in
    for i = 0 to blocks - 1 do
      if Inode.get_addr inode i = Inode.addr_none then
        Inode.set_addr inode i (next_slot ())
    done;
    Hashtbl.replace t.inodes inode.Inode.ino inode;
    Hashtbl.replace t.dirty_inodes inode.Inode.ino ()
  in
  let layout_stats () =
    [
      ("free_segments", float_of_int (free_segments t));
      ("sealed_segments", float_of_int t.sealed_segments);
      ("cleanings", float_of_int t.cleanings);
      ("blocks_cleaned", float_of_int t.blocks_cleaned);
      ("log_blocks_written", float_of_int t.log_blocks_written);
      ("inodes", float_of_int (Hashtbl.length t.inodes));
    ]
  in
  (* exceptions stop here: internals raise [Errno.Error], the public
     record reports typed results *)
  {
    Layout.l_name = t.lname;
    block_bytes = t.block_bytes;
    total_blocks = t.total_blocks;
    alloc_inode = (fun ~kind -> Errno.catch (fun () -> alloc_inode ~kind));
    get_inode = (fun ino -> Errno.catch (fun () -> get_inode ino));
    update_inode;
    free_inode = (fun ino -> Errno.catch (fun () -> free_inode ino));
    read_block =
      (fun inode blk -> Errno.catch (fun () -> read_block inode blk));
    read_blocks =
      (fun inode ~first ~count ->
        Errno.catch (fun () -> read_blocks inode ~first ~count));
    write_blocks = (fun ups -> Errno.catch (fun () -> write_blocks ups));
    truncate =
      (fun inode ~blocks -> Errno.catch (fun () -> truncate inode ~blocks));
    adopt =
      (fun inode ~blocks -> Errno.catch (fun () -> adopt inode ~blocks));
    sync = (fun () -> Errno.catch (fun () -> checkpoint t));
    free_blocks =
      (fun () -> free_segments t * (t.cfg.seg_blocks - 1));
    layout_stats;
  }

let read_region t ~addr ~blocks =
  Driver.read_exn t.driver ~lba:(addr * t.spb) ~sectors:(blocks * t.spb)

let roll_forward t =
  (* Segments whose summaries carry a sequence newer than the checkpoint
     hold updates the checkpoint missed: re-apply their inode-map
     entries in sequence order. *)
  let newer = ref [] in
  for s = 0 to t.nsegs - 1 do
    let base = seg_base t s in
    match
      (try Some (deserialize_summary
                   (Data.to_string (read_block_raw t ~addr:base)))
       with Codec.Corrupt _ -> None)
    with
    | Some (seq, entries) when seq > t.ckpt_seq ->
      newer := (seq, s, entries) :: !newer
    | Some _ | None -> ()
  done;
  let newer = List.sort compare !newer in
  List.iter
    (fun (seq, s, entries) ->
      t.segs.(s).free <- false;
      t.segs.(s).written_seq <- seq;
      if seq >= t.seq then t.seq <- seq + 1;
      List.iteri
        (fun i e ->
          let addr = seg_base t s + 1 + i in
          match e with
          | E_inode ino ->
            Hashtbl.replace t.imap ino addr;
            while t.next_ino <= ino do
              t.next_ino <- t.next_ino + t.cfg.ino_stride
            done
          | E_data _ | E_indirect _ -> ())
        entries)
    newer;
  if newer <> [] then begin
    Log.info (fun m -> m "%s: rolled forward %d segments" t.lname
                 (List.length newer));
    (* usage table is stale: recompute liveness from the inode map *)
    Array.iter (fun s -> if not s.free then s.live <- 0) t.segs;
    Hashtbl.iter
      (fun ino addr ->
        let bump a =
          if a >= t.seg0 then begin
            let s = seg_of_addr t a in
            if s >= 0 && s < t.nsegs then
              t.segs.(s).live <- t.segs.(s).live + 1
          end
        in
        bump addr;
        match load_inode t ino with
        | Some inode ->
          List.iter (fun (_, a) -> bump a) (Inode.mapped inode);
          (match Hashtbl.find_opt t.indirect_of ino with
          | Some addrs -> List.iter bump addrs
          | None -> ())
        | None -> ())
      t.imap
  end;
  List.length newer

let mount_t ?registry ?(name = "lfs") ?(config = default_config) sched driver =
  (* geometry comes from the superblock; config only tunes policies *)
  let sector = Driver.sector_bytes driver in
  let sb_data = Driver.read_exn driver ~lba:0 ~sectors:(4096 / sector) in
  if not (Data.is_real sb_data) then
    raise (Codec.Corrupt "Lfs.mount: simulated disk holds no metadata; use format_and_mount");
  let ( block_bytes, total_blocks, seg_blocks, nsegs, seg0, ckpt_a, ckpt_b,
        checkpoint_blocks ) =
    parse_superblock (Data.to_string sb_data)
  in
  let cfg = { config with seg_blocks; checkpoint_blocks } in
  let t =
    make_t ?registry ~name ~cfg sched driver ~block_bytes ~total_blocks
      ~ckpt_a ~ckpt_b ~seg0 ~nsegs ()
  in
  let try_region addr =
    try
      Some
        (parse_checkpoint
           (Data.to_string
              (read_region t ~addr ~blocks:cfg.checkpoint_blocks)))
    with Codec.Corrupt _ -> None
  in
  let chosen =
    match (try_region ckpt_a, try_region ckpt_b) with
    | Some ((sa, _, _, _, _) as a), Some ((sb, _, _, _, _) as b) ->
      if sa >= sb then Some (a, true) else Some (b, false)
    | Some a, None -> Some (a, true)
    | None, Some b -> Some (b, false)
    | None, None -> None
  in
  (match chosen with
  | None -> raise (Codec.Corrupt "no valid checkpoint")
  | Some ((seq, next_ino, imap, segs, indirects), was_a) ->
    t.seq <- seq;
    t.ckpt_seq <- seq;
    t.next_ino <- next_ino;
    List.iter (fun (ino, addr) -> Hashtbl.replace t.imap ino addr) imap;
    List.iteri
      (fun i s -> if i < t.nsegs then begin
          t.segs.(i).live <- s.live;
          t.segs.(i).written_seq <- s.written_seq;
          t.segs.(i).free <- s.free
        end)
      segs;
    List.iter
      (fun (ino, addrs) -> Hashtbl.replace t.indirect_of ino addrs)
      indirects;
    (* next checkpoint goes to the other region *)
    t.ckpt_next_a <- not was_a);
  let rolled = roll_forward t in
  (match find_free_segment t with
  | Some s -> open_segment t s
  | None -> raise (Errno.Error Errno.ENOSPC));
  (t, rolled)

let mount ?registry ?name ?config sched driver =
  to_layout (fst (mount_t ?registry ?name ?config sched driver))

(* {2 Crash recovery} *)

type recovery_report = {
  r_checkpoint_seq : int;
  r_rolled_segments : int;
  r_recovered_inodes : int;
  r_fsck_errors : string list;
}

(* Structural consistency sweep over the recovered state: every
   inode-map entry must deserialize into an inode whose block addresses
   fall inside the volume. Free-segment membership is deliberately not
   checked: blocks adopted after the last checkpoint legitimately live
   in segments the checkpoint believed free. *)
let fsck t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let check_addr what ino a =
    if a <> Inode.addr_none && (a < 0 || a >= t.total_blocks) then
      err "ino %d: %s address %d outside volume [0,%d)" ino what a
        t.total_blocks
  in
  Hashtbl.iter
    (fun ino addr ->
      check_addr "inode-map" ino addr;
      match load_inode t ino with
      | None -> err "ino %d: in inode map at %d but unloadable" ino addr
      | Some inode ->
        if inode.Inode.ino <> ino then
          err "ino %d: inode block at %d claims ino %d" ino addr
            inode.Inode.ino;
        if inode.Inode.size < 0 then
          err "ino %d: negative size %d" ino inode.Inode.size;
        List.iter (fun (_, a) -> check_addr "block" ino a)
          (Inode.mapped inode)
      | exception Codec.Corrupt m ->
        err "ino %d: corrupt inode block at %d: %s" ino addr m
      | exception Errno.Error e ->
        err "ino %d: I/O error loading inode at %d: %s" ino addr
          (Errno.to_string e))
    t.imap;
  List.rev !errors

let recover ?registry ?name ?config sched driver =
  match mount_t ?registry ?name ?config sched driver with
  | t, rolled ->
    let report =
      {
        r_checkpoint_seq = t.ckpt_seq;
        r_rolled_segments = rolled;
        r_recovered_inodes = Hashtbl.length t.imap;
        r_fsck_errors = fsck t;
      }
    in
    (let tr = Sched.tracer t.sched in
     if Tracer.enabled tr then
       Tracer.emit tr ~time:(Sched.now t.sched)
         (Ev.Recovery
            {
              volume = t.lname;
              segments = rolled;
              inodes = report.r_recovered_inodes;
            }));
    Log.info (fun m ->
        m "%s: recovered at seq %d: %d segments rolled, %d inodes, %d fsck \
           errors"
          t.lname report.r_checkpoint_seq rolled report.r_recovered_inodes
          (List.length report.r_fsck_errors));
    Ok (to_layout t, report)
  | exception Errno.Error e -> Error e
  | exception Codec.Corrupt _ -> Error Errno.EIO

let format_and_mount ?registry ?(name = "lfs") ?(config = default_config)
    sched driver ~block_bytes =
  let total_blocks = total_blocks_of driver ~block_bytes in
  let ckpt_a, ckpt_b, seg0, nsegs =
    derive_geometry ~cfg:config ~total_blocks
  in
  let t =
    make_t ?registry ~name ~cfg:config sched driver ~block_bytes ~total_blocks
      ~ckpt_a ~ckpt_b ~seg0 ~nsegs ()
  in
  let sb =
    serialize_superblock ~block_bytes ~total_blocks
      ~seg_blocks:config.seg_blocks ~nsegs ~seg0 ~ckpt_a ~ckpt_b
      ~checkpoint_blocks:config.checkpoint_blocks
  in
  write_block_raw t ~addr:0 (pad_to_blocks t sb);
  open_segment t 0;
  checkpoint t;
  to_layout t
