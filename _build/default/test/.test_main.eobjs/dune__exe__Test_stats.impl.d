test/test_stats.ml: Alcotest Array Capfs_stats Gen Histogram Interval List Prng QCheck QCheck_alcotest Registry Sample_set Stat Stdlib Welford
