(** Probabilistic workload generator.

    The paper (§4) plans "a component that can be used to hand craft
    work loads using probabilistic means … given some inputs, generate a
    work load and dispatch it to the simulator". This is that component,
    doubling as our stand-in for the recorded Sprite traces (see
    DESIGN.md): it reproduces the published workload {e statistics} —
    session-structured access (open, sequential I/O, close), mostly-small
    lognormal file sizes with a heavy tail, a hot subset of files, a high
    overwrite factor early in file lifetimes, frequent delete/truncate
    shortly after writing — which are the quantities the write-saving
    experiments are sensitive to.

    Like the real Sprite traces, the generator records {e when} files
    are opened and closed but leaves individual read/write times
    unrecorded ([Record.no_time]) unless [record_io_times] is set; the
    replay engine must synthesize them (equidistant placement), exactly
    as Patsy does. *)

type profile = {
  profile_name : string;
  clients : int;
  duration : float;          (** seconds of trace time *)
  mean_think : float;        (** mean think time between sessions/client *)
  files : int;               (** working-set size *)
  dirs : int;
  file_size_mu : float;      (** lognormal location (log bytes) *)
  file_size_sigma : float;
  read_fraction : float;     (** read sessions among read+write *)
  cold_read_fraction : float;
      (** read sessions against files the trace never wrote — files that
          pre-exist on the traced server; the replay engine synthesizes
          them with on-disk blocks, so they cost real disk reads *)
  stat_fraction : float;     (** probability of a stat burst instead *)
  delete_after_write : float;(** P(delete file soon after writing it) *)
  truncate_on_rewrite : float;(** P(rewrite truncates first) *)
  io_unit : int;             (** bytes per read/write record *)
  large_write_fraction : float; (** write sessions using [large_size] *)
  large_size : int;
  hot_fraction : float;      (** share of accesses hitting the hot 10% *)
  record_io_times : bool;
}

(** The five trace profiles standing in for the paper's Sprite traces
    1a, 1b, 2a, 2b and 5 (see DESIGN.md §3 for the calibration
    rationale). *)
val sprite_1a : profile

(** "many large and parallel write operations" — the NVRAM bottleneck. *)
val sprite_1b : profile

val sprite_2a : profile
val sprite_2b : profile

(** "many large writes … while there are also a fair amount of stat and
    read operations" — the cache-cluttering trace. *)
val sprite_5 : profile

val all_profiles : profile list
val profile_by_name : string -> profile

(** [generate ~seed ?duration profile] produces a time-sorted record
    array. Same seed, same trace. [duration] overrides the profile's.
    The array is immutable by convention (no writer mutates it after
    generation), so it can be shared freely — including across domains
    running concurrent experiments. *)
val generate : seed:int -> ?duration:float -> profile -> Record.t array

(** [source ~seed ?duration profile] is {!generate} wrapped as a lazy
    array-backed {!Source.t} named after the profile: nothing is
    generated until the first consumer pulls, and replay takes the exact
    array fast path. (The generator's final global time-sort requires
    materializing the records, so a synthetic source is never
    cursor-backed; to stream a large synthetic trace, [save] it and use
    {!Source.sprite_file}.) Do not share one source value across
    domains — the lazy cell is not thread-safe; give each domain its own
    (as {!Fleet}'s per-worker [gen] memo does). *)
val source : seed:int -> ?duration:float -> profile -> Source.t
