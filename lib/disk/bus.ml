module Sched = Capfs_sched.Sched
module Sync = Capfs_sched.Sync
module Counter = Capfs_stats.Counter

type t = {
  bname : string;
  sched : Sched.t;
  rate : float;
  arbitration : float;
  phase_overhead : float;
  owner : Sync.Mutex.t;
  mutable busy : float;
  c_acquire_wait : Counter.t;
}

let create ?registry ?(name = "bus") ~rate_bytes_per_sec ?(arbitration = 2.4e-6)
    ?(phase_overhead = 1.0e-4) sched =
  if rate_bytes_per_sec <= 0. then invalid_arg "Bus.create: rate <= 0";
  let c_acquire_wait =
    match registry with
    | Some r ->
      Capfs_stats.Registry.register r
        (Capfs_stats.Stat.scalar (name ^ ".acquire_wait"));
      Capfs_stats.Registry.counter r (name ^ ".acquire_wait")
    | None -> Counter.null
  in
  {
    bname = name;
    sched;
    rate = rate_bytes_per_sec;
    arbitration;
    phase_overhead;
    owner = Sync.Mutex.create ~name sched;
    busy = 0.;
    c_acquire_wait;
  }

let scsi2 ?registry ?(name = "scsi2") sched =
  create ?registry ~name ~rate_bytes_per_sec:10.0e6 sched

let name t = t.bname

let transfer t ~bytes =
  if bytes < 0 then invalid_arg "Bus.transfer: negative bytes";
  let wait_start = Sched.now t.sched in
  Sync.Mutex.lock t.owner;
  Counter.record t.c_acquire_wait (Sched.now t.sched -. wait_start);
  let hold =
    t.arbitration +. t.phase_overhead +. (float_of_int bytes /. t.rate)
  in
  Sched.sleep t.sched hold;
  t.busy <- t.busy +. hold;
  Sync.Mutex.unlock t.owner

let busy_seconds t = t.busy

let utilization t ~elapsed =
  if elapsed <= 0. then 0. else Stdlib.min 1. (t.busy /. elapsed)
