lib/pfs/nfs.ml: Capfs Capfs_disk Capfs_layout Capfs_sched Format List Printf
