lib/layout/layout.ml: Capfs_disk Inode List
