module Sched = Capfs_sched.Sched
module Record = Capfs_trace.Record
module Source = Capfs_trace.Source
module Client = Capfs.Client
module Data = Capfs_disk.Data
module Stats = Capfs_stats
module Errno = Capfs_core.Errno

let src = Logs.Src.create "capfs.replay" ~doc:"trace replay engine"

module Log = (val Logs.src_log src : Logs.LOG)

type result = {
  operations : int;
  errors : int;
  skipped_ops : int;
  errors_by_kind : (string * int) list;
  elapsed : float;
  latency : Stats.Sample_set.t;
  latency_by_op : (string * Stats.Welford.t) list;
  windows : Stats.Interval.t;
}

(* {2 Missing-parameter synthesis} *)

let synthesize_times records =
  (* Work on a copy: the input array may be shared across concurrently
     running experiment domains, so it is never mutated. Synthesized
     times are patched straight into the copy — no list round-trips. *)
  let arr = Array.copy records in
  let times = Array.map (fun r -> r.Record.time) arr in
  (* per (client, path): open time and pending untimed I/O indices *)
  let sessions : (int * string, float * int list) Hashtbl.t =
    Hashtbl.create 64
  in
  Array.iteri
    (fun i r ->
      let key = (r.Record.client, Record.path r) in
      match r.Record.op with
      | Record.Open _ when Record.has_time r ->
        Hashtbl.replace sessions key (r.Record.time, [])
      | (Record.Read _ | Record.Write _ | Record.Truncate _)
        when not (Record.has_time r) -> (
        match Hashtbl.find_opt sessions key with
        | Some (t_open, pending) ->
          Hashtbl.replace sessions key (t_open, i :: pending)
        | None -> ())
      | Record.Close _ when Record.has_time r -> (
        match Hashtbl.find_opt sessions key with
        | Some (t_open, pending) ->
          let pending = List.rev pending in
          let n = List.length pending in
          List.iteri
            (fun j idx ->
              times.(idx) <-
                t_open
                +. ((r.Record.time -. t_open) *. float_of_int (j + 1)
                    /. float_of_int (n + 1)))
            pending;
          Hashtbl.remove sessions key
        | None -> ())
      | _ -> ())
    arr;
  (* leftovers inherit the previous record's (possibly synthesized) time *)
  let last = ref 0. in
  Array.iteri
    (fun i _ ->
      if times.(i) < 0. then times.(i) <- !last else last := times.(i))
    arr;
  Array.iteri
    (fun i r ->
      if times.(i) <> r.Record.time then arr.(i) <- { r with Record.time = times.(i) })
    arr;
  arr

(* The streaming equivalent: a cursor over the input records that emits
   them in the same order with the same synthesized times as
   [synthesize_times], holding back only as many records as the time
   synthesis needs (an open session's untimed I/O cannot be timed until
   its close arrives). Memory is O(longest open-session span), not
   O(trace).

   A pulled record parks in [q] until its time is known. [h_pending]
   marks an untimed I/O record attached to an open session — the only
   state that may still be patched by a later Close. Everything else is
   emittable as soon as it reaches the queue front: timed records
   as-is, the rest by the leftover rule (inherit the previous emitted
   record's time), which is exactly what the array algorithm's final
   pass computes for records no Close ever patches. *)
type held = {
  h_rec : Record.t;
  mutable h_time : float;
  mutable h_pending : bool;
}

let synthesizing_cursor (next : Source.cursor) : Source.cursor =
  let q : held Queue.t = Queue.create () in
  let sessions : (int * string, float * held list) Hashtbl.t =
    Hashtbl.create 64
  in
  let eof = ref false in
  let last = ref 0. in
  let abandon cells = List.iter (fun h -> h.h_pending <- false) cells in
  let pull () =
    match next () with
    | None ->
      eof := true;
      (* nothing left can patch a parked record: all become leftovers *)
      Hashtbl.iter (fun _ (_, cells) -> abandon cells) sessions;
      Hashtbl.reset sessions
    | Some r ->
      let h = { h_rec = r; h_time = r.Record.time; h_pending = false } in
      let key = (r.Record.client, Record.path r) in
      (match r.Record.op with
      | Record.Open _ when Record.has_time r ->
        (* a re-open drops the previous session's pending records —
           they are leftovers now, same as the array algorithm *)
        (match Hashtbl.find_opt sessions key with
        | Some (_, cells) -> abandon cells
        | None -> ());
        Hashtbl.replace sessions key (r.Record.time, [])
      | (Record.Read _ | Record.Write _ | Record.Truncate _)
        when not (Record.has_time r) -> (
        match Hashtbl.find_opt sessions key with
        | Some (t_open, cells) ->
          h.h_pending <- true;
          Hashtbl.replace sessions key (t_open, h :: cells)
        | None -> ())
      | Record.Close _ when Record.has_time r -> (
        match Hashtbl.find_opt sessions key with
        | Some (t_open, cells) ->
          let cells = List.rev cells in
          let n = List.length cells in
          List.iteri
            (fun j c ->
              c.h_time <-
                t_open
                +. ((r.Record.time -. t_open) *. float_of_int (j + 1)
                    /. float_of_int (n + 1));
              c.h_pending <- false)
            cells;
          Hashtbl.remove sessions key
        | None -> ())
      | _ -> ());
      Queue.push h q
  in
  let rec emit () =
    match Queue.peek_opt q with
    | Some h when not h.h_pending ->
      ignore (Queue.pop q);
      if h.h_time < 0. then h.h_time <- !last else last := h.h_time;
      let r = h.h_rec in
      Some
        (if h.h_time <> r.Record.time then { r with Record.time = h.h_time }
         else r)
    | Some _ when !eof ->
      (* EOF abandons every pending record *)
      assert false
    | Some _ ->
      pull ();
      emit ()
    | None ->
      if !eof then None
      else begin
        pull ();
        emit ()
      end
  in
  emit

(* {2 Dispatch} *)

let mode_of = function
  | Record.Read_only -> Client.RO
  | Record.Write_only -> Client.WO
  | Record.Read_write -> Client.RW

(* fixed tags for the per-op latency Welfords, so the replay loop
   indexes an array instead of hashing the op name every operation *)
let op_count = 9

let op_index (r : Record.t) =
  match r.Record.op with
  | Record.Open _ -> 0
  | Record.Close _ -> 1
  | Record.Read _ -> 2
  | Record.Write _ -> 3
  | Record.Stat _ -> 4
  | Record.Delete _ -> 5
  | Record.Truncate _ -> 6
  | Record.Mkdir _ -> 7
  | Record.Rmdir _ -> 8

let op_index_names =
  [|
    "open"; "close"; "read"; "write"; "stat"; "delete"; "truncate"; "mkdir";
    "rmdir";
  |]

(* [payload] is [Data.sim] for pure performance simulation and
   [Data.real] for crash experiments, where segment summaries and data
   must actually survive on the backing store. *)
let dispatch client ~payload (r : Record.t) : (unit, Errno.t) Stdlib.result =
  let c = r.Record.client in
  match r.Record.op with
  | Record.Open { path; mode } -> Client.open_ client ~client:c path (mode_of mode)
  | Record.Close { path } -> Client.close_ client ~client:c path
  | Record.Read { path; offset; bytes } -> (
    match Client.read client ~client:c path ~offset ~bytes with
    | Ok _ -> Ok ()
    | Error _ as e -> e)
  | Record.Write { path; offset; bytes } ->
    Client.write client ~client:c path ~offset (payload bytes)
  | Record.Stat { path } -> (
    match Client.stat client path with Ok _ -> Ok () | Error _ as e -> e)
  | Record.Delete { path } -> Client.delete client path
  | Record.Truncate { path; size } -> Client.truncate client path ~size
  | Record.Mkdir { path } -> Client.mkdir client path
  | Record.Rmdir { path } -> Client.rmdir client path

(* {2 The replay proper} *)

(* A reference to a file the trace assumes pre-exists: synthesize it
   (with adopted, "already on disk" blocks) and retry the operation. *)
let synthesized_size (r : Record.t) =
  match r.Record.op with
  | Record.Read { offset; bytes; _ } -> Stdlib.max 8192 (offset + bytes)
  | Record.Truncate { size; _ } -> size
  | _ -> 8192

let dispatch_synthesizing client ~payload (r : Record.t) =
  match dispatch client ~payload r with
  | Error Errno.ENOENT -> (
    match r.Record.op with
    | Record.Open { path; _ }
    | Record.Read { path; _ }
    | Record.Stat { path }
    | Record.Truncate { path; _ } -> (
      match Client.synthesize_file client path ~size:(synthesized_size r) with
      | Ok () -> dispatch client ~payload r
      | Error _ as e -> e)
    | Record.Write { path; _ } | Record.Mkdir { path } -> (
      (* missing parents *)
      match Client.ensure_dirs client path with
      | Ok () -> dispatch client ~payload r
      | Error _ as e -> e)
    | Record.Close _ | Record.Delete _ | Record.Rmdir _ ->
      (* nothing sensible to synthesize *)
      Error Errno.ENOENT)
  | r -> r

(* Everything the replay measures, shared by the array and the
   streaming drivers: per-op latency bookkeeping, the pacing clock, and
   final result assembly. *)
type engine = {
  e_sched : Sched.t;
  e_base : float;
  e_speedup : float;
  e_measure : Record.t -> unit;
  e_finish : unit -> result;
}

let make_engine ?observe ~speedup ~window ~synthesize_missing ~real_data
    client =
  if speedup <= 0. then invalid_arg "Replay.run: speedup <= 0";
  let payload = if real_data then Data.real else Data.sim in
  let dispatch = if synthesize_missing then dispatch_synthesizing else dispatch in
  let sched = (Client.fsys client).Capfs.Fsys.sched in
  let latency = Stats.Sample_set.create ~cap:200_000 () in
  let by_op = Array.init op_count (fun _ -> Stats.Welford.create ()) in
  let windows = Stats.Interval.create ~width:window () in
  let operations = ref 0 and errors = ref 0 and skipped = ref 0 in
  let error_kinds = Array.make (Array.length Errno.all) 0 in
  let t_first = ref infinity and t_last = ref 0. in
  let base = Sched.now sched in
  let fail e =
    incr errors;
    let i = Errno.to_index e in
    error_kinds.(i) <- error_kinds.(i) + 1
  in
  (* A close/delete/rmdir of a path the trace never created is a trace
     artifact — the target predates the trace window, and an op that
     only destroys state has nothing sensible to synthesize. Counted
     apart from real errors. *)
  let is_trace_artifact (r : Record.t) =
    match r.Record.op with
    | Record.Close _ | Record.Delete _ | Record.Rmdir _ -> true
    | _ -> false
  in
  (* [dispatch client r] is called directly rather than through a
     per-op closure: this runs once per trace record. *)
  let measure (r : Record.t) =
    let t0 = Sched.now sched in
    (match dispatch client ~payload r with
    | Ok () -> ( match observe with Some f -> f r | None -> ())
    | Error Errno.ENOENT when synthesize_missing && is_trace_artifact r ->
      incr skipped
    | Error e -> fail e);
    let t1 = Sched.now sched in
    incr operations;
    let dt = t1 -. t0 in
    Stats.Sample_set.add latency dt;
    Stats.Interval.add windows ~time:(t1 -. base) dt;
    t_first := Stdlib.min !t_first t0;
    t_last := Stdlib.max !t_last t1;
    Stats.Welford.add by_op.(op_index r) dt
  in
  let finish () =
    Stats.Interval.flush windows;
    Log.info (fun m ->
        m "replay: %d ops, %d errors, %d skipped, %.1f simulated seconds"
          !operations !errors !skipped (!t_last -. !t_first));
    let errors_by_kind =
      List.filteri (fun _ (_, n) -> n > 0)
        (Array.to_list
           (Array.mapi
              (fun i n -> (Errno.to_string Errno.all.(i), n))
              error_kinds))
    in
    {
      operations = !operations;
      errors = !errors;
      skipped_ops = !skipped;
      errors_by_kind;
      elapsed = (if !operations = 0 then 0. else !t_last -. !t_first);
      latency;
      latency_by_op =
        Array.to_list (Array.mapi (fun i w -> (op_index_names.(i), w)) by_op)
        |> List.filter (fun (_, w) -> Stats.Welford.count w > 0)
        |> List.sort (fun (a, _) (b, _) -> compare a b);
      windows;
    }
  in
  {
    e_sched = sched;
    e_base = base;
    e_speedup = speedup;
    e_measure = measure;
    e_finish = finish;
  }

let pace e (r : Record.t) =
  let target = e.e_base +. (r.Record.time /. e.e_speedup) in
  let now = Sched.now e.e_sched in
  if target > now then Sched.sleep e.e_sched (target -. now)

let run_array ?observe ~speedup ~window ~synthesize_missing ~real_data
    ~serial client records =
  let e =
    make_engine ?observe ~speedup ~window ~synthesize_missing ~real_data client
  in
  let records = synthesize_times records in
  let sched = e.e_sched in
  (* group records per client, preserving order: one index array per
     client, so the fibres walk the shared record array directly *)
  let counts : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun r ->
      let c = r.Record.client in
      Hashtbl.replace counts c
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
    records;
  let slots : (int, int array * int ref) Hashtbl.t =
    Hashtbl.create (Hashtbl.length counts)
  in
  Hashtbl.iter
    (fun c n -> Hashtbl.replace slots c (Array.make n 0, ref 0))
    counts;
  Array.iteri
    (fun i r ->
      let a, fill = Hashtbl.find slots r.Record.client in
      a.(!fill) <- i;
      incr fill)
    records;
  let clients = Hashtbl.fold (fun c (a, _) acc -> (c, a) :: acc) slots [] in
  let remaining = ref (List.length clients) in
  let all_done = Sched.new_event ~name:"replay.done" sched in
  let client_fibre (cid, indices) () =
    Array.iter
      (fun i ->
        let r = records.(i) in
        pace e r;
        e.e_measure r)
      indices;
    (match Client.close_all client ~client:cid with Ok () | Error _ -> ());
    decr remaining;
    if !remaining = 0 then Sched.broadcast sched all_done
  in
  (* Serial mode dispatches every record from one fibre in strict trace
     order: no cross-client interleaving, so two engines replaying the
     same trace make identical logical state transitions. Differential
     validation (lib/diffval) depends on this determinism; concurrent
     mode is the realistic default for performance experiments. *)
  if serial then begin
    remaining := 1;
    ignore
      (Sched.spawn sched ~name:"replay.serial" (fun () ->
           Array.iter
             (fun r ->
               pace e r;
               e.e_measure r)
             records;
           List.iter
             (fun (cid, _) ->
               match Client.close_all client ~client:cid with
               | Ok () | Error _ -> ())
             clients;
           decr remaining;
           Sched.broadcast sched all_done))
  end
  else
    List.iter
      (fun ((cid, _) as work) ->
        ignore
          (Sched.spawn sched
             ~name:(Printf.sprintf "replay.c%d" cid)
             (client_fibre work)))
      clients;
  if !remaining > 0 then Sched.await sched all_done;
  e.e_finish ()

(* {2 Streaming replay} *)

let run_streamed ?observe ~speedup ~window ~synthesize_missing ~real_data
    ~serial client source =
  let e =
    make_engine ?observe ~speedup ~window ~synthesize_missing ~real_data client
  in
  let sched = e.e_sched in
  (* Pass 1: count records per client. The hashtable is built by the
     same [replace] sequence as the array path's, so its fold order —
     and with it the fibre spawn order the deterministic interleaving
     hangs off — is identical. *)
  let counts : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let next = Source.cursor source in
  let rec count_pass () =
    match next () with
    | None -> ()
    | Some r ->
      let c = r.Record.client in
      Hashtbl.replace counts c
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts c));
      count_pass ()
  in
  count_pass ();
  let slots : (int, int) Hashtbl.t = Hashtbl.create (Hashtbl.length counts) in
  Hashtbl.iter (fun c n -> Hashtbl.replace slots c n) counts;
  let clients = Hashtbl.fold (fun c n acc -> (c, n) :: acc) slots [] in
  let remaining = ref (List.length clients) in
  let all_done = Sched.new_event ~name:"replay.done" sched in
  (* Pass 2: one shared synthesizing cursor feeds per-client queues. A
     fibre needing its next record drains the cursor until one of its
     own appears, parking records for the other clients on their
     queues. Fibre steps are cooperative (no yield inside [next_for]),
     so the shared cursor needs no locking. Memory is bounded by the
     inter-client skew of the active window, not the trace length. *)
  let synth = synthesizing_cursor (Source.cursor source) in
  let queues : (int, Record.t Queue.t) Hashtbl.t =
    Hashtbl.create (List.length clients)
  in
  List.iter (fun (c, _) -> Hashtbl.replace queues c (Queue.create ())) clients;
  let next_for cid =
    let q = Hashtbl.find queues cid in
    let rec go () =
      match Queue.take_opt q with
      | Some r -> r
      | None -> (
        match synth () with
        | None ->
          (* pass 1 counted exactly this many records for [cid] *)
          assert false
        | Some r ->
          if r.Record.client = cid then r
          else begin
            Queue.push r (Hashtbl.find queues r.Record.client);
            go ()
          end)
    in
    go ()
  in
  let client_fibre (cid, n) () =
    for _ = 1 to n do
      let r = next_for cid in
      pace e r;
      e.e_measure r
    done;
    (match Client.close_all client ~client:cid with Ok () | Error _ -> ());
    decr remaining;
    if !remaining = 0 then Sched.broadcast sched all_done
  in
  if serial then begin
    remaining := 1;
    ignore
      (Sched.spawn sched ~name:"replay.serial" (fun () ->
           let rec go () =
             match synth () with
             | None -> ()
             | Some r ->
               pace e r;
               e.e_measure r;
               go ()
           in
           go ();
           List.iter
             (fun (cid, _) ->
               match Client.close_all client ~client:cid with
               | Ok () | Error _ -> ())
             clients;
           decr remaining;
           Sched.broadcast sched all_done))
  end
  else
    List.iter
      (fun ((cid, _) as work) ->
        ignore
          (Sched.spawn sched
             ~name:(Printf.sprintf "replay.c%d" cid)
             (client_fibre work)))
      clients;
  if !remaining > 0 then Sched.await sched all_done;
  e.e_finish ()

let run ?(speedup = 1.0) ?(window = 900.) ?(synthesize_missing = true)
    ?(real_data = false) ?(serial = false) ?observe client source =
  match Source.as_array source with
  | Some records ->
    (* array-backed: the exact historical replay path, bit for bit (and
       the lean one — no per-client queues, no synthesizing cursor) *)
    run_array ?observe ~speedup ~window ~synthesize_missing ~real_data
      ~serial client records
  | None ->
    run_streamed ?observe ~speedup ~window ~synthesize_missing ~real_data
      ~serial client source
