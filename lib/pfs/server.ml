module Sched = Capfs_sched.Sched
module Errno = Capfs_core.Errno
module Pool = Capfs_patsy.Fleet.Pool
module Frame = Capfs_ccache.Netlink.Frame
module Counter = Capfs_stats.Counter
module Registry = Capfs_stats.Registry
module Snapshot = Capfs_stats.Snapshot
module Client = Capfs.Client
module Data = Capfs_disk.Data

let src = Logs.Src.create "capfs.server" ~doc:"sharded PFS server"

module Log = (val Logs.src_log src : Logs.LOG)

type job = { req : Wire.request; complete : Wire.reply -> unit }

(* Consistency and data-plane state common to every shard and the
   listener: the lease table (any shard may grant or invalidate), the
   push sinks (client id -> how to reach its connection), the shared
   reply arena (read payloads filled on shard domains, blitted and
   freed on the listener — hence [~shared]), and the wire counters. *)
type shared = {
  lease : Lease.t;
  pushers : (int, Wire.push -> unit) Hashtbl.t;
  pushers_lock : Mutex.t;
  reply_arena : Capfs_disk.Arena.t;
  w_blit : int Atomic.t; (* server-path payload blits *)
  w_copied : int Atomic.t; (* bytes those blits moved *)
  w_frames : int Atomic.t; (* frames put on the wire *)
  w_syscalls : int Atomic.t; (* write(2) calls that carried them *)
  w_batched : int Atomic.t; (* messages that rode a Batch container *)
}

type shard = {
  s_index : int;
  volume : Pfs.t;
  s_shared : shared;
  s_registry : Registry.t;
  inbox : job Queue.t;
  lock : Mutex.t;
  in_flight : int Atomic.t;
  stopping : bool Atomic.t;
  wake : (Unix.file_descr * Unix.file_descr) option;
      (* (read, write) self-pipe, real clock only: submitters poke the
         write end, the shard's pump fibre parks on the read end *)
  c_submitted : Counter.t;
  c_rejected : Counter.t;
  c_completed : Counter.t;
}

type t = {
  config : Pfs.Config.t;
  shards : shard array;
  shared : shared;
  pool : Pool.t option; (* one pinned domain per shard under [`Real] *)
  stopped : bool Atomic.t;
}

let register_pusher t ~client sink =
  Mutex.lock t.shared.pushers_lock;
  Hashtbl.replace t.shared.pushers client sink;
  Mutex.unlock t.shared.pushers_lock

let unregister_pusher t ~client =
  Mutex.lock t.shared.pushers_lock;
  Hashtbl.remove t.shared.pushers client;
  Mutex.unlock t.shared.pushers_lock

(* Fan an [Invalidate] out to the named clients' connections. Runs on a
   shard domain mid-[exec]; real-connection sinks only enqueue on the
   listener's completion queue, so no I/O happens under the lock. *)
let deliver_invalidations sd ~path ~version clients =
  if clients <> [] then begin
    Mutex.lock sd.pushers_lock;
    let sinks = List.filter_map (Hashtbl.find_opt sd.pushers) clients in
    Mutex.unlock sd.pushers_lock;
    List.iter
      (fun sink -> sink (Wire.Invalidate { path; version }))
      sinks
  end

(* {2 Routing} *)

let first_component path =
  let n = String.length path in
  let start = if n > 0 && path.[0] = '/' then 1 else 0 in
  let stop =
    match String.index_from_opt path start '/' with
    | Some i -> i
    | None -> n
  in
  String.sub path start (stop - start)

(* FNV-1a, 32 bit: tiny, stateless, and stable across runs and
   processes — the shard map must outlive any one server (handles keep
   meaning across restarts). *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun ch ->
      h := !h lxor Char.code ch;
      h := !h * 0x01000193 land 0xffffffff)
    s;
  !h

let route t path = fnv1a (first_component path) mod Array.length t.shards

(* {2 Request execution — inside a fibre on the shard's scheduler} *)

(* A mutation through the old, grant-free vocabulary must still keep
   granted caches honest: bump the path's version and invalidate every
   holder (minus the mutator). No-op for never-granted paths. *)
let note_mutation sd ~client ~path =
  match Lease.note_write sd.lease ~client ~path with
  | None -> ()
  | Some (version, holders) ->
    deliver_invalidations sd ~path ~version holders

let exec sh req =
  let c = sh.volume.Pfs.client in
  let sd = sh.s_shared in
  match (req : Wire.request) with
  | Open { client; path; mode } -> (
    match Client.open_ c ~client path mode with
    | Ok () -> Wire.Ok_unit
    | Error e -> Wire.Err e)
  | Close { client; path } -> (
    Lease.close_ sd.lease ~client ~path;
    match Client.close_ c ~client path with
    | Ok () -> Wire.Ok_unit
    | Error e -> Wire.Err e)
  | Read { client; path; offset; count } -> (
    match Client.read c ~client path ~offset ~bytes:count with
    | Ok d ->
      (* one copy, cache slab -> reply arena: the slice then rides to
         the writer fibre's gather buffer with no intermediate string *)
      let len = Data.length d in
      let out = Capfs_disk.Arena.copy_in sd.reply_arena d in
      Atomic.incr sd.w_blit;
      ignore (Atomic.fetch_and_add sd.w_copied len);
      Wire.Ok_data out
    | Error e -> Wire.Err e)
  | Write { client; path; offset; data } -> (
    match Client.write c ~client path ~offset (Data.of_string data) with
    | Ok () ->
      note_mutation sd ~client ~path;
      Wire.Ok_unit
    | Error e -> Wire.Err e)
  | Open_grant { client; path; mode } -> (
    let write = mode <> Client.RO in
    let volume_open =
      match Lease.held sd.lease ~client ~path with
      | Some w when w = write -> Ok () (* pure renewal *)
      | Some _ -> (
        (* mode change without an intervening close: reopen *)
        match Client.close_ c ~client path with
        | Ok () -> Client.open_ c ~client path mode
        | Error _ as e -> e)
      | None -> Client.open_ c ~client path mode
    in
    match volume_open with
    | Error e -> Wire.Err e
    | Ok () -> (
      match Client.stat c path with
      | Error e -> Wire.Err e
      | Ok st ->
        let gi = Lease.open_grant sd.lease ~client ~path ~write in
        deliver_invalidations sd ~path ~version:gi.Lease.gi_version
          gi.Lease.gi_invalidate;
        Wire.Ok_grant
          {
            Wire.version = gi.Lease.gi_version;
            cacheable = gi.Lease.gi_cacheable;
            lease_s = Lease.lease_s sd.lease;
            size = st.Client.st_size;
          }))
  | Writeback { client; path; size; close; blocks } -> (
    let rec apply = function
      | [] -> Ok ()
      | (off, data) :: rest -> (
        match
          Client.write c ~client path ~offset:off (Data.of_string data)
        with
        | Ok () -> apply rest
        | Error _ as e -> e)
    in
    let applied =
      match apply blocks with
      | Error _ as e -> e
      | Ok () -> (
        (* the batch's final size is authoritative: shrink if the
           client truncated under delayed write *)
        match Client.stat c path with
        | Ok st when st.Client.st_size > size ->
          Client.truncate c path ~size
        | Ok _ -> Ok ()
        | Error _ as e -> e)
    in
    match applied with
    | Error e -> Wire.Err e
    | Ok () ->
      if close then begin
        Lease.close_ sd.lease ~client ~path;
        match Client.close_ c ~client path with
        | Ok () -> Wire.Ok_unit
        | Error e -> Wire.Err e
      end
      else Wire.Ok_unit)
  | Mkdir p -> (
    match Client.mkdir c p with
    | Ok () -> Wire.Ok_unit
    | Error e -> Wire.Err e)
  | Delete p -> (
    match Client.delete c p with
    | Ok () ->
      note_mutation sd ~client:(-1) ~path:p;
      Wire.Ok_unit
    | Error e -> Wire.Err e)
  | Stat p -> (
    match Client.stat c p with
    | Ok st ->
      Wire.Ok_stat
        {
          Wire.size = st.Client.st_size;
          is_dir = st.Client.st_kind = Capfs_layout.Inode.Directory;
        }
    | Error e -> Wire.Err e)
  | Sync -> (
    match Client.sync c with
    | Ok () -> Wire.Ok_unit
    | Error e -> Wire.Err e)
  | Stats | Shutdown ->
    (* server-level operations never reach a shard *)
    Wire.Err Errno.EINVAL

let run_job sh job =
  let reply =
    try exec sh job.req with
    | Errno.Error e -> Wire.Err e
    | e ->
      Log.err (fun m ->
          m "shard %d: request crashed: %s" sh.s_index (Printexc.to_string e));
      Wire.Err Errno.EIO
  in
  Atomic.decr sh.in_flight;
  Counter.incr sh.c_completed;
  job.complete reply

(* {2 Admission and submission}

   [submit] runs on the caller's domain (listener or test); everything
   after the inbox hand-off runs on the shard's. The admission check is
   a CAS loop on [in_flight]: a full shard answers a typed [EAGAIN]
   {e before} any queueing happens, so overload costs the client one
   round-trip and the server almost nothing. *)

let poke sh =
  match sh.wake with
  | None -> ()
  | Some (_, w) -> (
    match Unix.write_substring w "!" 0 1 with
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      () (* pipe full: the pump is already overdue to wake *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())

let rec admit sh limit =
  let cur = Atomic.get sh.in_flight in
  if limit > 0 && cur >= limit then false
  else if Atomic.compare_and_set sh.in_flight cur (cur + 1) then true
  else admit sh limit

let submit_to_shard t sh job =
  if Atomic.get sh.stopping then begin
    Counter.incr sh.c_rejected;
    Error Errno.EAGAIN
  end
  else if not (admit sh t.config.Pfs.Config.admission) then begin
    Counter.incr sh.c_rejected;
    Error Errno.EAGAIN
  end
  else begin
    Mutex.lock sh.lock;
    Queue.push job sh.inbox;
    Mutex.unlock sh.lock;
    Counter.incr sh.c_submitted;
    poke sh;
    Ok ()
  end

let submit t req ~complete =
  match Wire.route_path req with
  | Some path -> submit_to_shard t t.shards.(route t path) { req; complete }
  | None -> (
    match (req : Wire.request) with
    | Sync ->
      (* fan out; reply once the slowest shard is stable, carrying the
         worst per-shard verdict *)
      let n = Array.length t.shards in
      let pending = Atomic.make n in
      let worst = Atomic.make None in
      let record_err e =
        (* first error wins; sync errors are rare enough that a racy
           "first" is fine — any error fails the sync *)
        if Atomic.get worst = None then Atomic.set worst (Some e)
      in
      let finish k =
        if Atomic.fetch_and_add pending (-k) = k then
          complete
            (match Atomic.get worst with
            | None -> Wire.Ok_unit
            | Some e -> Wire.Err e)
      in
      let rejected = ref 0 in
      Array.iter
        (fun sh ->
          let sub_complete r =
            (match r with Wire.Err e -> record_err e | _ -> ());
            finish 1
          in
          match
            submit_to_shard t sh { req = Wire.Sync; complete = sub_complete }
          with
          | Ok () -> ()
          | Error e ->
            record_err e;
            incr rejected)
        t.shards;
      if !rejected = n then Error Errno.EAGAIN
      else begin
        if !rejected > 0 then finish !rejected;
        Ok ()
      end
    | _ -> Error Errno.EINVAL)

(* {2 The shard service loop}

   Real clock: the shard lives on a pinned pool worker. A non-daemon
   pump fibre parks on the self-pipe; every wake drains the inbox and
   spawns one fibre per request. When [stopping] is observed the pump
   drains once more and exits — [Sched.run] then winds down the
   remaining request fibres and the worker shuts the volume. *)

let drain sh =
  Mutex.lock sh.lock;
  let jobs = List.rev (Queue.fold (fun acc j -> j :: acc) [] sh.inbox) in
  Queue.clear sh.inbox;
  Mutex.unlock sh.lock;
  jobs

let spawn_jobs sh jobs =
  let sched = sh.volume.Pfs.sched in
  List.iter
    (fun job ->
      ignore
        (Sched.spawn sched ~name:"shard.req" (fun () -> run_job sh job)))
    jobs;
  jobs <> []

let pump sh =
  let sched = sh.volume.Pfs.sched in
  let r = match sh.wake with Some (r, _) -> r | None -> assert false in
  let buf = Bytes.create 256 in
  let rec loop () =
    Sched.wait_readable sched r;
    (match Unix.read r buf 0 256 with
    | _ -> ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ());
    ignore (spawn_jobs sh (drain sh));
    if Atomic.get sh.stopping then ignore (spawn_jobs sh (drain sh))
    else loop ()
  in
  loop ()

let shard_main sh () =
  let sched = sh.volume.Pfs.sched in
  ignore (Sched.spawn sched ~name:"shard.pump" (fun () -> pump sh));
  (try Sched.run sched with
  | e ->
    Log.err (fun m ->
        m "shard %d: scheduler died: %s" sh.s_index (Printexc.to_string e)));
  Pfs.shutdown sh.volume

(* Virtual clock: no domains, no pipes — the caller pumps explicitly.
   [drive] drains every inbox, runs every shard scheduler to
   quiescence, and repeats until nothing moved (a completion may submit
   follow-up work). Identical request path — only the wake-up mechanism
   differs. *)

let drive t =
  (match t.pool with
  | Some _ -> invalid_arg "Server.drive: real-clock server pumps itself"
  | None -> ());
  let progress = ref true in
  while !progress do
    progress := false;
    Array.iter
      (fun sh ->
        if spawn_jobs sh (drain sh) then begin
          progress := true;
          Sched.run sh.volume.Pfs.sched
        end)
      t.shards
  done

(* {2 Construction} *)

let shard_image base i = Printf.sprintf "%s.shard%d" base i

let create ?injector (cfg : Pfs.Config.t) =
  match Pfs.Config.validate cfg with
  | Error _ as e -> e
  | Ok cfg -> (
    let n = cfg.Pfs.Config.shards in
    let real = cfg.Pfs.Config.clock = `Real in
    let shared =
      {
        lease = Lease.create ~lease_s:cfg.Pfs.Config.lease_s ();
        pushers = Hashtbl.create 64;
        pushers_lock = Mutex.create ();
        (* read replies: bounded by in-flight admission; oversized or
           overflow reads fall back to heap buffers gracefully *)
        reply_arena =
          Capfs_disk.Arena.create ~shared:true ~cell_bytes:Pfs.block_bytes
            ~cells:
              (max 64
                 (min 1024
                    (if cfg.Pfs.Config.admission = 0 then 1024
                     else cfg.Pfs.Config.admission * n)))
            ();
        w_blit = Atomic.make 0;
        w_copied = Atomic.make 0;
        w_frames = Atomic.make 0;
        w_syscalls = Atomic.make 0;
        w_batched = Atomic.make 0;
      }
    in
    let built = ref [] in
    let destroy_built () =
      List.iter
        (fun sh ->
          Pfs.shutdown sh.volume;
          match sh.wake with
          | Some (r, w) ->
            Unix.close r;
            Unix.close w
          | None -> ())
        !built
    in
    match
      for i = 0 to n - 1 do
        let s_registry = Registry.create () in
        let counter name =
          Registry.register s_registry (Capfs_stats.Stat.scalar name);
          Registry.counter s_registry name
        in
        let c_submitted = counter "server.submitted" in
        let c_rejected = counter "server.rejected" in
        let c_completed = counter "server.completed" in
        let shard_cfg =
          {
            cfg with
            Pfs.Config.image = shard_image cfg.Pfs.Config.image i;
            shards = 1;
            (* decorrelate the per-shard PRNGs without losing determinism *)
            seed = cfg.Pfs.Config.seed + i;
          }
        in
        match Pfs.create ~registry:s_registry ?injector shard_cfg with
        | Error e -> raise (Errno.Error e)
        | Ok volume ->
          let wake =
            if real then begin
              let r, w = Unix.pipe ~cloexec:true () in
              Unix.set_nonblock r;
              Unix.set_nonblock w;
              Some (r, w)
            end
            else None
          in
          built :=
            {
              s_index = i;
              volume;
              s_shared = shared;
              s_registry;
              inbox = Queue.create ();
              lock = Mutex.create ();
              in_flight = Atomic.make 0;
              stopping = Atomic.make false;
              wake;
              c_submitted;
              c_rejected;
              c_completed;
            }
            :: !built
      done
    with
    | exception Errno.Error e ->
      destroy_built ();
      Error e
    | () ->
      let shards = Array.of_list (List.rev !built) in
      let pool =
        if real then begin
          let pool = Pool.create ~size:n in
          Array.iteri (fun i sh -> Pool.run_on pool i (shard_main sh)) shards;
          Some pool
        end
        else None
      in
      Ok { config = cfg; shards; shared; pool; stopped = Atomic.make false })

let shards t = Array.length t.shards

(* {2 Statistics} *)

let snapshots t =
  Array.map (fun sh -> Snapshot.capture sh.s_registry) t.shards

let merged t =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  Array.iter
    (fun snap ->
      Array.iter
        (fun e ->
          match Hashtbl.find_opt tbl e.Snapshot.e_key with
          | None ->
            Hashtbl.add tbl e.Snapshot.e_key
              (ref (e.Snapshot.e_count, e.Snapshot.e_total));
            order := e.Snapshot.e_key :: !order
          | Some cell ->
            let c, tot = !cell in
            cell := (c + e.Snapshot.e_count, tot +. e.Snapshot.e_total))
        snap)
    (snapshots t);
  List.rev_map
    (fun key ->
      let c, tot = !(Hashtbl.find tbl key) in
      {
        Snapshot.e_key = key;
        e_count = c;
        e_total = tot;
        e_mean = (if c = 0 then 0. else tot /. float_of_int c);
      })
    !order
  |> Array.of_list

let report_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n  \"shards\": ";
  Buffer.add_string b (string_of_int (Array.length t.shards));
  Buffer.add_string b ",\n  \"per_shard\": [";
  Array.iteri
    (fun i snap ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b "{\"index\": ";
      Buffer.add_string b (string_of_int i);
      Buffer.add_string b ", \"stats\": ";
      Snapshot.add_json b snap;
      Buffer.add_char b '}')
    (snapshots t);
  Buffer.add_string b "],\n  \"totals\": ";
  Snapshot.add_json b (merged t);
  Buffer.add_string b ",\n  \"wire\": {";
  let sd = t.shared in
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "\"%s\": %d" (Capfs_stats.Names.wire name)
           (Atomic.get v)))
    [
      ("frames_sent", sd.w_frames);
      ("syscalls", sd.w_syscalls);
      ("batched", sd.w_batched);
      ("blit_count", sd.w_blit);
      ("copied_bytes", sd.w_copied);
    ];
  Buffer.add_string b "}\n}";
  Buffer.contents b

(* {2 Shutdown and the blocking call} *)

let rec shutdown t =
  if Atomic.compare_and_set t.stopped false true then shutdown_once t

and shutdown_once t =
  Array.iter (fun sh -> Atomic.set sh.stopping true) t.shards;
  match t.pool with
  | Some pool ->
    Array.iter poke t.shards;
    Pool.shutdown pool;
    Array.iter
      (fun sh ->
        match sh.wake with
        | Some (r, w) ->
          Unix.close r;
          Unix.close w
        | None -> ())
      t.shards
  | None ->
    (* drain whatever was still queued, then close each volume *)
    Array.iter
      (fun sh ->
        if spawn_jobs sh (drain sh) then Sched.run sh.volume.Pfs.sched)
      t.shards;
    Array.iter (fun sh -> Pfs.shutdown sh.volume) t.shards

let call t req =
  match (req : Wire.request) with
  | Stats -> Wire.Ok_stats (report_json t)
  | Shutdown -> Wire.Err Errno.EINVAL (* in-process callers use {!shutdown} *)
  | _ -> (
    let cell = ref None in
    let m = Mutex.create () in
    let cv = Condition.create () in
    let complete r =
      Mutex.lock m;
      cell := Some r;
      Condition.broadcast cv;
      Mutex.unlock m
    in
    match submit t req ~complete with
    | Error e -> Wire.Err e
    | Ok () -> (
      (match t.pool with
      | None -> drive t
      | Some _ ->
        Mutex.lock m;
        while !cell = None do
          Condition.wait cv m
        done;
        Mutex.unlock m);
      match !cell with
      (* read payloads live in the shared reply arena; the in-process
         boundary hands the caller a private heap copy instead of a
         slice whose cell is about to recycle *)
      | Some r -> Wire.detach_reply r
      | None -> Wire.Err Errno.EIO))

(* {2 The socket listener}

   One [`Real] scheduler on the calling domain multiplexes every
   connection: a reader fibre per connection reassembles frames and
   submits, shard completions cross back over a completion queue plus
   wake pipe, and a per-connection writer fibre serializes replies
   (out-of-order by design — the request id correlates). *)

(* One outbound message: a typed reply still owning its (possibly
   arena-backed) payload, or a pre-encoded frame body (server pushes). *)
type out_msg =
  | Reply of { req_id : int; opcode : int; reply : Wire.reply }
  | Raw of { req_id : int; opcode : int; payload : string }

type conn = {
  fd : Unix.file_descr;
  outbox : out_msg Queue.t;
  out_ev : Sched.event;
  mutable closed : bool;
  mutable batch_ok : bool;
      (* peer has spoken the batch/grant vocabulary: it can decode a
         Batch container, and pushes may be sent to it *)
  mutable gather : Bytes.t; (* reusable writer buffer, grows to fit *)
  mutable pusher_ids : int list; (* client ids registered via Open_grant *)
}

(* How many pending messages one gathered write may carry. *)
let max_gather_msgs = 64

let serve t lfd =
  (match t.pool with
  | Some _ -> ()
  | None -> invalid_arg "Server.serve: needs a real-clock server");
  let sd = t.shared in
  let ls = Sched.create ~clock:`Real () in
  let cq = Queue.create () in
  let cq_lock = Mutex.create () in
  let cq_r, cq_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock cq_r;
  Unix.set_nonblock cq_w;
  let stop = ref false in
  let poke_listener () =
    match Unix.write_substring cq_w "!" 0 1 with
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  (* shard domains land replies (and pushes) here *)
  let enqueue_remote conn msg =
    Mutex.lock cq_lock;
    Queue.push (conn, msg) cq;
    Mutex.unlock cq_lock;
    poke_listener ()
  in
  (* messages produced on the listener domain itself skip the queue *)
  let enqueue_local conn msg =
    if conn.closed then
      (* drop, but never leak a reply's arena cell *)
      match msg with
      | Reply { reply; _ } -> Wire.release_reply reply
      | Raw _ -> ()
    else begin
      Queue.push msg conn.outbox;
      Sched.signal ls conn.out_ev
    end
  in
  let writer conn () =
    let ensure len =
      if Bytes.length conn.gather < len then begin
        let cap = ref (max 4096 (Bytes.length conn.gather)) in
        while !cap < len do
          cap := !cap * 2
        done;
        conn.gather <- Bytes.create !cap
      end
    in
    let flush len =
      match Frame.write_bytes ~sched:ls conn.fd conn.gather ~len with
      | Ok sys ->
        ignore (Atomic.fetch_and_add sd.w_syscalls sys);
        Atomic.incr sd.w_frames
      | Error _ -> conn.closed <- true
    in
    let payload_len = function
      | Reply { reply; _ } -> Wire.reply_bytes reply
      | Raw { payload; _ } -> String.length payload
    in
    (* lay one message at [off]: entry/frame header then payload,
       straight from the arena slice — no intermediate string *)
    let blit_msg ~entry msg off plen =
      (match msg with
      | Reply { req_id; opcode; _ } | Raw { req_id; opcode; _ } ->
        if entry then
          Wire.Batch.blit_entry_header conn.gather off ~req_id ~opcode
            ~payload_len:plen
        else
          Frame.blit_header conn.gather off ~req_id ~opcode
            ~payload_len:plen);
      let body =
        off + if entry then Wire.Batch.entry_header else Frame.header_bytes
      in
      match msg with
      | Reply { reply; _ } ->
        Wire.blit_reply reply conn.gather body;
        Wire.release_reply reply
      | Raw { payload; _ } ->
        Bytes.blit_string payload 0 conn.gather body plen
    in
    let rec loop () =
      if Queue.is_empty conn.outbox then
        if conn.closed then ()
        else begin
          Sched.await ls conn.out_ev;
          loop ()
        end
      else begin
        (* gather whatever is pending — capped by count and by the
           container payload limit — into one write(2) *)
        let limit = if conn.batch_ok then max_gather_msgs else 1 in
        let msgs = ref [] in
        let total = ref 0 in
        let count = ref 0 in
        let stop_gather = ref false in
        while
          (not !stop_gather)
          && !count < limit
          && not (Queue.is_empty conn.outbox)
        do
          let m = Queue.peek conn.outbox in
          let plen = payload_len m in
          if
            !count = 0
            || !total + Wire.Batch.entry_header + plen
               <= Frame.default_max_payload
          then begin
            ignore (Queue.pop conn.outbox);
            msgs := (m, plen) :: !msgs;
            total := !total + Wire.Batch.entry_header + plen;
            incr count
          end
          else stop_gather := true
        done;
        (match List.rev !msgs with
        | [] -> ()
        | [ (m, plen) ] ->
          let len = Frame.header_bytes + plen in
          ensure len;
          blit_msg ~entry:false m 0 plen;
          flush len
        | batch ->
          let len = Frame.header_bytes + !total in
          ensure len;
          Frame.blit_header conn.gather 0 ~req_id:0
            ~opcode:Wire.Batch.opcode ~payload_len:!total;
          let off = ref Frame.header_bytes in
          List.iter
            (fun (m, plen) ->
              blit_msg ~entry:true m !off plen;
              off := !off + Wire.Batch.entry_header + plen)
            batch;
          ignore (Atomic.fetch_and_add sd.w_batched (List.length batch));
          flush len);
        loop ()
      end
    in
    loop ()
  in
  let reader conn () =
    let process req_id opcode payload =
      match Wire.decode_request ~opcode payload with
      | Error e -> enqueue_local conn (Reply { req_id; opcode; reply = Wire.Err e })
      | Ok Wire.Shutdown ->
        (* no reply: the client closes, a clean exit acknowledges *)
        stop := true;
        poke_listener ()
      | Ok Wire.Stats ->
        enqueue_local conn
          (Reply { req_id; opcode; reply = Wire.Ok_stats (report_json t) })
      | Ok req -> (
        (match req with
        | Wire.Open_grant { client; _ } ->
          (* the grant vocabulary implies batch fluency, and names the
             connection as this client's push channel *)
          conn.batch_ok <- true;
          if not (List.mem client conn.pusher_ids) then begin
            conn.pusher_ids <- client :: conn.pusher_ids;
            register_pusher t ~client (fun push ->
                let opcode, payload = Wire.encode_push push in
                enqueue_remote conn
                  (Raw { req_id = Wire.push_req_id; opcode; payload }))
          end
        | _ -> ());
        match
          submit t req ~complete:(fun r ->
              enqueue_remote conn (Reply { req_id; opcode; reply = r }))
        with
        | Ok () -> ()
        | Error e ->
          enqueue_local conn (Reply { req_id; opcode; reply = Wire.Err e }))
    in
    let rec loop () =
      match Frame.read_sched ls conn.fd with
      | Ok (Some { Frame.req_id; opcode; payload })
        when opcode = Wire.Batch.opcode -> (
        conn.batch_ok <- true;
        match Wire.Batch.decode payload with
        | Error e ->
          enqueue_local conn (Reply { req_id; opcode; reply = Wire.Err e });
          loop ()
        | Ok entries ->
          List.iter (fun (rid, op, pl) -> process rid op pl) entries;
          loop ())
      | Ok (Some { Frame.req_id; opcode; payload }) ->
        process req_id opcode payload;
        loop ()
      | Ok None | Error _ ->
        conn.closed <- true;
        (* a dead connection stops caching: drop its push channels and
           every lease its clients held *)
        List.iter
          (fun cid ->
            unregister_pusher t ~client:cid;
            ignore (Lease.drop_client sd.lease ~client:cid))
          conn.pusher_ids;
        conn.pusher_ids <- [];
        Sched.signal ls conn.out_ev
    in
    loop ()
  in
  let conns = ref [] in
  let accept_loop () =
    let rec loop () =
      Sched.wait_readable ls lfd;
      (match Unix.accept ~cloexec:true lfd with
      | fd, _ ->
        Unix.set_nonblock fd;
        let conn =
          {
            fd;
            outbox = Queue.create ();
            out_ev = Sched.new_event ls;
            closed = false;
            batch_ok = false;
            gather = Bytes.create 4096;
            pusher_ids = [];
          }
        in
        conns := conn :: !conns;
        ignore (Sched.spawn ls ~daemon:true ~name:"conn.read" (reader conn));
        ignore (Sched.spawn ls ~daemon:true ~name:"conn.write" (writer conn))
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ());
      loop ()
    in
    loop ()
  in
  let drain_cq () =
    Mutex.lock cq_lock;
    let pending = List.rev (Queue.fold (fun acc x -> x :: acc) [] cq) in
    Queue.clear cq;
    Mutex.unlock cq_lock;
    List.iter (fun (conn, msg) -> enqueue_local conn msg) pending
  in
  let completion_pump () =
    let buf = Bytes.create 256 in
    let rec loop () =
      Sched.wait_readable ls cq_r;
      (match Unix.read cq_r buf 0 256 with
      | _ -> ()
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ());
      drain_cq ();
      let quiescent =
        !stop
        && Array.for_all (fun sh -> Atomic.get sh.in_flight = 0) t.shards
        && Queue.is_empty cq
      in
      if quiescent then
        (* one breath for writer fibres to flush their outboxes *)
        Sched.sleep ls 0.05
      else loop ()
    in
    loop ()
  in
  ignore (Sched.spawn ls ~daemon:true ~name:"accept" accept_loop);
  ignore (Sched.spawn ls ~name:"completion-pump" completion_pump);
  Sched.run ls;
  List.iter
    (fun conn -> try Unix.close conn.fd with Unix.Unix_error _ -> ())
    !conns;
  Unix.close cq_r;
  Unix.close cq_w;
  shutdown t
