lib/sched/mailbox.ml: Queue Sched
