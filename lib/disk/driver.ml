module Sched = Capfs_sched.Sched
module Stats = Capfs_stats
module Counter = Capfs_stats.Counter
module Tracer = Capfs_obs.Tracer
module Ev = Capfs_obs.Event
module Errno = Capfs_core.Errno
module Injector = Capfs_fault.Injector

type transport = {
  t_name : string;
  sector_bytes : int;
  total_sectors : int;
  execute : queue_empty:(unit -> bool) -> Iorequest.t -> unit;
  current_cylinder : unit -> int;
}

let sim_transport disk =
  let model = Sim_disk.model disk in
  {
    t_name = Sim_disk.name disk;
    sector_bytes = model.Disk_model.geometry.Geometry.sector_bytes;
    total_sectors = Sim_disk.capacity_sectors disk;
    execute = (fun ~queue_empty req -> Sim_disk.execute disk ~queue_empty req);
    current_cylinder = (fun () -> Sim_disk.current_cylinder disk);
  }

let mem_transport ?(latency = 0.) ~sector_bytes ~total_sectors sched () =
  if sector_bytes < 1 || total_sectors < 1 then
    invalid_arg "Driver.mem_transport: non-positive size";
  let store = Hashtbl.create 4096 in
  let execute ~queue_empty:_ (req : Iorequest.t) =
    if Iorequest.last_lba req > total_sectors then
      invalid_arg "mem_transport: request beyond capacity";
    req.Iorequest.started_at <- Sched.now sched;
    if latency > 0. then Sched.sleep sched latency;
    (match req.Iorequest.op with
    | Iorequest.Read ->
      let out = Bytes.make (req.Iorequest.sectors * sector_bytes) '\000' in
      for i = 0 to req.Iorequest.sectors - 1 do
        match Hashtbl.find_opt store (req.Iorequest.lba + i) with
        | Some b -> Bytes.blit b 0 out (i * sector_bytes) sector_bytes
        | None -> ()
      done;
      req.Iorequest.data <- Some (Data.Real out)
    | Iorequest.Write -> (
      match req.Iorequest.data with
      | Some d ->
        let nsec = Data.length d / sector_bytes in
        for i = 0 to nsec - 1 do
          (* a sector-sized sub of a block-aligned gather normalises to
             the underlying Real/Sim slice, so only a misaligned gather
             needs flattening *)
          match Data.sub d ~pos:(i * sector_bytes) ~len:sector_bytes with
          | Data.Real b -> Hashtbl.replace store (req.Iorequest.lba + i) b
          | Data.Sim _ -> Hashtbl.remove store (req.Iorequest.lba + i)
          | (Data.Gather _ | Data.Slice _) as g ->
            (* device boundary: the store outlives the request, so a
               slab slice is copied off its (recyclable) arena cell *)
            Hashtbl.replace store
              (req.Iorequest.lba + i)
              (Bytes.of_string (Data.to_string g))
        done
      | None -> ()));
    Iorequest.complete sched req
  in
  {
    t_name = "memdisk";
    sector_bytes;
    total_sectors;
    execute;
    current_cylinder = (fun () -> 0);
  }

type t = {
  drv_name : string;
  sched : Sched.t;
  transport : transport;
  policy : Iosched.t;
  work : Sched.event;
  mutable in_service : bool;
  mutable idle_ev : Sched.event;
  injector : Injector.t; (* cached off the scheduler at create time *)
  coalesce : bool;
  max_merge_sectors : int;
  max_retries : int;
  retry_backoff : float;
  timeout : float option;
  mutable n_retries : int;
  mutable n_timeouts : int;
  mutable n_errors : int;
  mutable n_merges : int;
  c_wait : Counter.t;
  c_response : Counter.t;
  c_queue_len : Counter.t;
  c_retries : Counter.t;
  c_errors : Counter.t;
  c_merged : Counter.t;
  c_merge_span : Counter.t;
  c_blit : Counter.t;
  c_copied : Counter.t;
}

let emit_fault t ~write ~lba ~sectors fault =
  let tr = Sched.tracer t.sched in
  if Tracer.enabled tr then
    Tracer.emit tr ~time:(Sched.now t.sched)
      (Ev.Disk_fault { disk = t.drv_name; lba; sectors; write; fault })

(* Fold [req] and its just-dequeued neighbours into one scatter-gather
   request spanning their union. Writes carry a gather payload (or, when
   spans overlap, a flattened buffer with later submissions winning);
   reads are sliced back per constituent by [Iorequest.complete]. *)
let merge_requests t (req : Iorequest.t) companions =
  let all = req :: companions in
  (* submission order *)
  let lo =
    List.fold_left
      (fun a (c : Iorequest.t) -> Stdlib.min a c.Iorequest.lba)
      req.Iorequest.lba companions
  in
  let hi =
    List.fold_left
      (fun a c -> Stdlib.max a (Iorequest.last_lba c))
      (Iorequest.last_lba req) companions
  in
  let sectors = hi - lo in
  let bps = t.transport.sector_bytes in
  let payload_of (c : Iorequest.t) =
    match c.Iorequest.data with
    | Some d -> d
    | None -> Data.sim (c.Iorequest.sectors * bps)
  in
  let data =
    match req.Iorequest.op with
    | Iorequest.Read -> None
    | Iorequest.Write ->
      let sum =
        List.fold_left (fun a (c : Iorequest.t) -> a + c.Iorequest.sectors) 0 all
      in
      if sum = sectors then
        (* gap-free and non-overlapping: sorted by lba the payloads abut
           exactly, so the gather aliases them without a copy *)
        Some
          (Data.gather
             (List.map payload_of
                (List.stable_sort
                   (fun (a : Iorequest.t) b ->
                     compare a.Iorequest.lba b.Iorequest.lba)
                   all)))
      else if List.exists (fun c -> Data.is_real (payload_of c)) all then begin
        (* overlapping spans: the only copy the merged write path ever
           makes — flatten, later submissions winning *)
        let out = Data.real (sectors * bps) in
        Counter.incr t.c_blit;
        Counter.record t.c_copied (float_of_int (sectors * bps));
        List.iter
          (fun (c : Iorequest.t) ->
            let d = payload_of c in
            Data.blit ~src:d ~src_pos:0 ~dst:out
              ~dst_pos:((c.Iorequest.lba - lo) * bps)
              ~len:(Data.length d))
          all;
        Some out
      end
      else Some (Data.sim (sectors * bps))
  in
  let parent =
    Iorequest.make t.sched req.Iorequest.op ~lba:lo ~sectors ?data ()
  in
  parent.Iorequest.constituents <- all;
  let count = List.length all in
  t.n_merges <- t.n_merges + 1;
  Counter.record t.c_merged (float_of_int count);
  Counter.record t.c_merge_span (float_of_int sectors);
  let tr = Sched.tracer t.sched in
  if Tracer.enabled tr then
    Tracer.emit tr ~time:(Sched.now t.sched)
      (Ev.Disk_merge
         {
           disk = t.drv_name;
           lba = lo;
           sectors;
           write = req.Iorequest.op = Iorequest.Write;
           count;
         });
  parent

let service_loop t () =
  while true do
    match
      Iosched.next t.policy ~current_cyl:(t.transport.current_cylinder ())
    with
    | None ->
      t.in_service <- false;
      Sched.broadcast t.sched t.idle_ev;
      Sched.await t.sched t.work
    | Some req ->
      t.in_service <- true;
      let req =
        if not t.coalesce then req
        else
          match
            Iosched.take_adjacent t.policy req
              ~max_sectors:t.max_merge_sectors
          with
          | [] -> req
          | companions -> merge_requests t req companions
      in
      (* One injector draw per physical request — a merged request is a
         single device transaction, so its waiters share one fate. With
         faults off this is one branch, and no PRNG state advances. *)
      (if Injector.enabled t.injector then
         let write = req.Iorequest.op = Iorequest.Write in
         let lba = req.Iorequest.lba and sectors = req.Iorequest.sectors in
         match
           Injector.decide t.injector ~disk:t.transport.t_name ~write ~lba
             ~sectors
         with
         | Injector.Pass -> ()
         | Injector.Transient_error ->
           emit_fault t ~write ~lba ~sectors "transient";
           req.Iorequest.error <- Some Errno.EIO;
           req.Iorequest.fault_retryable <- true
         | Injector.Hard_error ->
           emit_fault t ~write ~lba ~sectors "hard";
           req.Iorequest.error <- Some Errno.EIO
         | Injector.Stall d ->
           emit_fault t ~write ~lba ~sectors "stall";
           Sched.sleep t.sched d);
      let queue_empty () = Iosched.length t.policy = 0 in
      t.transport.execute ~queue_empty req;
      (* Defensive: transports complete requests themselves, but an early
         immediate-report path must not leave the request dangling. *)
      Iorequest.complete t.sched req;
      (match req.Iorequest.constituents with
      | [] ->
        Counter.record t.c_wait (Iorequest.wait_time req);
        Counter.record t.c_response (Iorequest.response_time req)
      | cs ->
        List.iter
          (fun c ->
            Counter.record t.c_wait (Iorequest.wait_time c);
            Counter.record t.c_response (Iorequest.response_time c))
          cs)
  done

let create ?registry ?(name = "driver") ?policy ?(coalesce = false)
    ?(max_merge_sectors = 1024) ?(max_retries = 3) ?(retry_backoff = 0.002)
    ?timeout sched transport =
  let policy =
    match policy with
    | Some p -> p
    | None ->
      (* Flat 1-sector-per-cylinder geometry: C-LOOK then degrades to
         sorting by sector number, which is the right default for
         transports without real geometry. *)
      Iosched.clook
        (Geometry.v ~cylinders:transport.total_sectors ~heads:1
           ~sectors_per_track:1 ~sector_bytes:transport.sector_bytes ())
  in
  let ( c_wait,
        c_response,
        c_queue_len,
        c_retries,
        c_errors,
        c_merged,
        c_merge_span,
        c_blit,
        c_copied ) =
    match registry with
    | Some r ->
      List.iter
        (fun s -> Stats.Registry.register r (Stats.Stat.scalar (name ^ "." ^ s)))
        [
          "wait"; "response"; "retries"; "io_errors"; "merged"; "merge_span";
          "blit_count"; "copied_bytes";
        ];
      (* the paper's "histograms of disk queue sizes" plug-in *)
      Stats.Registry.register r
        (Stats.Stat.with_histogram (name ^ ".queue_len")
           (Stats.Histogram.linear ~lo:0. ~hi:64. ~buckets:32));
      let c s = Stats.Registry.counter r (name ^ "." ^ s) in
      ( c "wait",
        c "response",
        c "queue_len",
        c "retries",
        c "io_errors",
        c "merged",
        c "merge_span",
        c "blit_count",
        c "copied_bytes" )
    | None -> Counter.(null, null, null, null, null, null, null, null, null)
  in
  let injector = Sched.injector sched in
  if Injector.enabled injector then
    Injector.register_disk injector ~name:transport.t_name
      ~total_sectors:transport.total_sectors;
  let t =
    {
      drv_name = name;
      sched;
      transport;
      policy;
      work = Sched.new_event ~name:(name ^ ".work") sched;
      in_service = false;
      idle_ev = Sched.new_event ~name:(name ^ ".idle") sched;
      injector;
      coalesce;
      max_merge_sectors;
      max_retries;
      retry_backoff;
      timeout;
      n_retries = 0;
      n_timeouts = 0;
      n_errors = 0;
      n_merges = 0;
      c_wait;
      c_response;
      c_queue_len;
      c_retries;
      c_errors;
      c_merged;
      c_merge_span;
      c_blit;
      c_copied;
    }
  in
  ignore (Sched.spawn sched ~name:(name ^ ".service") ~daemon:true (service_loop t));
  t

let name t = t.drv_name
let sector_bytes t = t.transport.sector_bytes
let total_sectors t = t.transport.total_sectors
let queue_length t = Iosched.length t.policy

let submit t req =
  Counter.record t.c_queue_len (float_of_int (Iosched.length t.policy));
  let tr = Sched.tracer t.sched in
  if Tracer.enabled tr then
    Tracer.emit tr ~time:(Sched.now t.sched)
      (Ev.Disk_enqueue
         {
           disk = t.drv_name;
           lba = req.Iorequest.lba;
           sectors = req.Iorequest.sectors;
           write = req.Iorequest.op = Iorequest.Write;
         });
  Iosched.add t.policy req;
  Sched.signal t.sched t.work

(* {2 Blocking I/O with fault absorption}

   The fault decision is drawn in the service loop, once per physical
   (possibly merged) request; each attempt here submits, waits, and
   classifies the outcome left on the request. Transient errors and
   timeouts are absorbed by retrying with exponential backoff; hard
   errors (latent sectors, device-reported failures) escalate at once,
   as do transients that survive [max_retries] attempts. *)

let emit_retry t ~attempt ~delay =
  let tr = Sched.tracer t.sched in
  if Tracer.enabled tr then
    Tracer.emit tr ~time:(Sched.now t.sched)
      (Ev.Disk_retry { disk = t.drv_name; attempt; delay })

(* Outcome of one attempt: the completed request, or an error plus
   whether a retry could plausibly succeed. A device stall longer than
   [timeout] shows up here as the waiter giving up after its patience;
   the stalled request is orphaned and completes (harmlessly) whenever
   the device comes back. *)
let attempt t op ?deadline ?data ~lba ~sectors () =
  let req = Iorequest.make t.sched op ~lba ~sectors ?deadline ?data () in
  submit t req;
  let completed =
    match t.timeout with
    | None ->
      Iorequest.await t.sched req;
      true
    | Some patience -> Iorequest.await_timeout t.sched req patience
  in
  if not completed then begin
    t.n_timeouts <- t.n_timeouts + 1;
    Error (Errno.ETIMEDOUT, `Retryable)
  end
  else
    match req.Iorequest.error with
    | Some e ->
      Error (e, if req.Iorequest.fault_retryable then `Retryable else `Hard)
    | None -> Ok req

let rec with_retries t op ?deadline ?data ~lba ~sectors ~tries () =
  match attempt t op ?deadline ?data ~lba ~sectors () with
  | Ok req -> Ok req
  | Error (_, `Retryable) when tries < t.max_retries ->
    let tries = tries + 1 in
    let delay = t.retry_backoff *. float_of_int (1 lsl (tries - 1)) in
    t.n_retries <- t.n_retries + 1;
    Counter.record t.c_retries 1.;
    emit_retry t ~attempt:tries ~delay;
    if delay > 0. then Sched.sleep t.sched delay;
    with_retries t op ?deadline ?data ~lba ~sectors ~tries ()
  | Error (e, _) ->
    t.n_errors <- t.n_errors + 1;
    Counter.record t.c_errors 1.;
    Error e

let read t ~lba ~sectors =
  match with_retries t Iorequest.Read ~lba ~sectors ~tries:0 () with
  | Error _ as e -> e
  | Ok req -> (
    match req.Iorequest.data with
    | Some d -> Ok d
    | None -> Ok (Data.sim (sectors * t.transport.sector_bytes)))

let write t ?deadline ~lba data =
  let len = Data.length data in
  if len = 0 || len mod t.transport.sector_bytes <> 0 then
    invalid_arg "Driver.write: payload not a whole number of sectors";
  let sectors = len / t.transport.sector_bytes in
  match
    with_retries t Iorequest.Write ?deadline ~data ~lba ~sectors ~tries:0 ()
  with
  | Ok _ -> Ok ()
  | Error _ as e -> e

let read_exn t ~lba ~sectors = Errno.ok_exn (read t ~lba ~sectors)
let write_exn t ?deadline ~lba data = Errno.ok_exn (write t ?deadline ~lba data)
let retries t = t.n_retries
let timeouts t = t.n_timeouts
let io_errors t = t.n_errors
let merges t = t.n_merges

let drain t =
  while Iosched.length t.policy > 0 || t.in_service do
    Sched.await t.sched t.idle_ev
  done
