lib/stats/stat.mli: Format Histogram Sample_set Welford
