module Client = Capfs.Client
module File = Capfs.File
module File_table = Capfs.File_table
module Inode = Capfs_layout.Inode
module Data = Capfs_disk.Data
module Stats = Capfs_stats
module Counter = Capfs_stats.Counter

type open_mode = Read | Write

type open_grant = {
  g_ino : int;
  g_version : int;
  g_cacheable : bool;
  g_size : int;
}

type client_hooks = {
  recall : ino:int -> unit;
  disable : ino:int -> unit;
}

(* Per-file consistency state. *)
type fstate = {
  mutable version : int;
  mutable readers : int list;  (* client ids with the file open read-only *)
  mutable writers : int list;  (* client ids with the file open writing *)
  mutable last_writer : int option;
  mutable cacheable : bool;
}

type t = {
  fs_client : Client.t;
  net : Netlink.t;
  clients : (int, client_hooks) Hashtbl.t;
  files : (int, fstate) Hashtbl.t;
  c_opens : Counter.t;
  c_recalls : Counter.t;
  c_disables : Counter.t;
  c_reads : Counter.t;
  c_writes : Counter.t;
}

let stat_names = [ "opens"; "recalls"; "disables"; "reads"; "writes" ]

let create ?registry fs_client net =
  let c_opens, c_recalls, c_disables, c_reads, c_writes =
    match registry with
    | Some r ->
      List.iter
        (fun s -> Stats.Registry.register r (Stats.Stat.scalar ("ccsrv." ^ s)))
        stat_names;
      let c s = Stats.Registry.counter r ("ccsrv." ^ s) in
      (c "opens", c "recalls", c "disables", c "reads", c "writes")
    | None -> Counter.(null, null, null, null, null)
  in
  {
    fs_client;
    net;
    clients = Hashtbl.create 16;
    files = Hashtbl.create 256;
    c_opens;
    c_recalls;
    c_disables;
    c_reads;
    c_writes;
  }

let block_bytes t =
  (Client.fsys t.fs_client).Capfs.Fsys.config.Capfs.Fsys.block_bytes

let sched t = (Client.fsys t.fs_client).Capfs.Fsys.sched

let attach t ~client_id ~recall ~disable =
  Hashtbl.replace t.clients client_id { recall; disable }

let fstate t ino =
  match Hashtbl.find_opt t.files ino with
  | Some st -> st
  | None ->
    let st =
      { version = 1; readers = []; writers = []; last_writer = None;
        cacheable = true }
    in
    Hashtbl.replace t.files ino st;
    st

let file_of t ino =
  match File_table.get (Client.file_table t.fs_client) ino with
  | Some f -> f
  | None -> raise (Capfs.Namespace.Not_found_path (string_of_int ino))

(* Ask the last writer to push its dirty blocks home before someone else
   reads the file (the "recall" of Sprite's sequential write sharing). *)
let recall_from_last_writer t st ~ino ~except =
  match st.last_writer with
  | Some w when w <> except -> (
    match Hashtbl.find_opt t.clients w with
    | Some hooks ->
      Counter.record t.c_recalls 1.;
      hooks.recall ~ino
    | None -> ())
  | Some _ | None -> ()

let disable_caching t st ~ino =
  if st.cacheable then begin
    st.cacheable <- false;
    Counter.record t.c_disables 1.;
    let holders = st.readers @ st.writers in
    Hashtbl.iter
      (fun cid hooks -> if List.mem cid holders then hooks.disable ~ino)
      t.clients
  end

let rpc_open t ~client_id path mode =
  Netlink.transfer t.net ~bytes:(String.length path);
  Counter.record t.c_opens 1.;
  (match mode with
  | Read -> Client.open_exn t.fs_client ~client:client_id path Client.RO
  | Write -> Client.open_exn t.fs_client ~client:client_id path Client.WO);
  let st_info = Client.stat_exn t.fs_client path in
  let ino = st_info.Client.st_ino in
  let st = fstate t ino in
  (* someone else may hold dirty blocks for what we are about to read *)
  recall_from_last_writer t st ~ino ~except:client_id;
  (match mode with
  | Read -> st.readers <- client_id :: st.readers
  | Write ->
    st.version <- st.version + 1;
    st.writers <- client_id :: st.writers;
    st.last_writer <- Some client_id);
  (* concurrent write sharing: a writer plus any other holder *)
  let holders =
    List.length st.readers + List.length st.writers
  in
  if st.writers <> [] && holders > 1 then disable_caching t st ~ino;
  Netlink.transfer t.net ~bytes:0;
  {
    g_ino = ino;
    g_version = st.version;
    g_cacheable = st.cacheable;
    g_size = (Client.stat_exn t.fs_client path).Client.st_size;
  }

let remove_one x xs =
  let rec go = function
    | [] -> []
    | y :: rest -> if y = x then rest else y :: go rest
  in
  go xs

let rpc_close t ~client_id ~ino =
  Netlink.transfer t.net ~bytes:0;
  (match Hashtbl.find_opt t.files ino with
  | Some st ->
    st.readers <- remove_one client_id st.readers;
    st.writers <- remove_one client_id st.writers;
    (* all sharers gone: caching may resume for future opens *)
    if st.writers = [] && st.readers = [] then st.cacheable <- true
  | None -> ());
  Netlink.transfer t.net ~bytes:0

let rpc_read_block t ~client_id ~ino idx =
  let bb = block_bytes t in
  Netlink.transfer t.net ~bytes:0;
  Counter.record t.c_reads 1.;
  let st = fstate t ino in
  recall_from_last_writer t st ~ino ~except:client_id;
  let data = File.read (file_of t ino) ~offset:(idx * bb) ~bytes:bb in
  Netlink.transfer t.net ~bytes:(Data.length data);
  data

let rpc_write_block t ~client_id ~ino idx data =
  ignore client_id;
  Netlink.transfer t.net ~bytes:(Data.length data);
  Counter.record t.c_writes 1.;
  let bb = block_bytes t in
  File.write (file_of t ino) ~offset:(idx * bb) data;
  Netlink.transfer t.net ~bytes:0

let rpc_set_size t ~client_id ~ino size =
  ignore client_id;
  Netlink.transfer t.net ~bytes:0;
  let file = file_of t ino in
  let inode = File.inode file in
  if size > inode.Inode.size then begin
    inode.Inode.size <- size;
    (Client.fsys t.fs_client).Capfs.Fsys.layout.Capfs_layout.Layout.update_inode
      inode
  end
  else if size < inode.Inode.size then File.truncate file ~size;
  Netlink.transfer t.net ~bytes:0

let uncacheable_files t =
  Hashtbl.fold (fun _ st n -> if st.cacheable then n else n + 1) t.files 0
