type t = Real of bytes | Sim of int | Gather of gather
and gather = { g_total : int; g_segs : (int * t) list }

let real n =
  if n < 0 then invalid_arg "Data.real: negative length";
  Real (Bytes.make n '\000')

let sim n =
  if n < 0 then invalid_arg "Data.sim: negative length";
  Sim n

let of_string s = Real (Bytes.of_string s)

let length = function
  | Real b -> Bytes.length b
  | Sim n -> n
  | Gather g -> g.g_total

let rec is_real = function
  | Real _ -> true
  | Sim _ -> false
  | Gather g -> List.for_all (fun (_, s) -> is_real s) g.g_segs

(* Build a scatter-gather list from payloads laid end to end. Nested
   gathers are flattened, zero-length segments dropped, and degenerate
   results normalised (no segments -> [Sim 0], one segment -> that
   segment, all-simulated -> [Sim total]), so a [Gather] value always
   holds >= 2 segments and at least one real buffer. *)
let gather ts =
  let rec flatten off acc = function
    | [] -> (off, acc)
    | t :: rest -> (
      match t with
      | Gather g ->
        let acc =
          List.fold_left (fun acc (o, s) -> (off + o, s) :: acc) acc g.g_segs
        in
        flatten (off + g.g_total) acc rest
      | (Real _ | Sim _) as s -> flatten (off + length s) ((off, s) :: acc) rest)
  in
  let total, rev = flatten 0 [] ts in
  let segs = List.filter (fun (_, s) -> length s > 0) (List.rev rev) in
  match segs with
  | [] -> Sim total
  | [ (_, s) ] when length s = total -> s
  | segs ->
    if List.for_all (fun (_, s) -> not (is_real s)) segs then Sim total
    else Gather { g_total = total; g_segs = segs }

let check_range what t pos len =
  if pos < 0 || len < 0 || pos + len > length t then
    invalid_arg (Printf.sprintf "Data.%s: range [%d, %d) of %d" what pos
                   (pos + len) (length t))

let rec sub t ~pos ~len =
  check_range "sub" t pos len;
  match t with
  | Real b -> Real (Bytes.sub b pos len)
  (* a full-range sub of simulated data is the value itself — [Sim] is
     immutable, so sharing is safe, and replay's block-aligned I/O hits
     this on nearly every operation *)
  | Sim n -> if len = n then t else Sim len
  | Gather g ->
    let lo = pos and hi = pos + len in
    gather
      (List.filter_map
         (fun (o, s) ->
           let s_lo = Stdlib.max lo o and s_hi = Stdlib.min hi (o + length s) in
           if s_hi <= s_lo then None
           else Some (sub s ~pos:(s_lo - o) ~len:(s_hi - s_lo)))
         g.g_segs)

let rec blit ~src ~src_pos ~dst ~dst_pos ~len =
  check_range "blit(src)" src src_pos len;
  check_range "blit(dst)" dst dst_pos len;
  match (src, dst) with
  | Real s, Real d -> Bytes.blit s src_pos d dst_pos len
  | Sim _, Real d -> Bytes.fill d dst_pos len '\000'
  | Gather g, _ ->
    List.iter
      (fun (o, s) ->
        let lo = Stdlib.max src_pos o
        and hi = Stdlib.min (src_pos + len) (o + length s) in
        if hi > lo then
          blit ~src:s ~src_pos:(lo - o) ~dst ~dst_pos:(dst_pos + lo - src_pos)
            ~len:(hi - lo))
      g.g_segs
  | (Real _ | Sim _), Gather g ->
    List.iter
      (fun (o, s) ->
        let lo = Stdlib.max dst_pos o
        and hi = Stdlib.min (dst_pos + len) (o + length s) in
        if hi > lo then
          blit ~src ~src_pos:(src_pos + lo - dst_pos) ~dst:s ~dst_pos:(lo - o)
            ~len:(hi - lo))
      g.g_segs
  | (Real _ | Sim _), Sim _ -> ()

let concat ts =
  let total = List.fold_left (fun n t -> n + length t) 0 ts in
  if List.for_all is_real ts then begin
    let out = Real (Bytes.create total) in
    let pos = ref 0 in
    List.iter
      (fun t ->
        let len = length t in
        blit ~src:t ~src_pos:0 ~dst:out ~dst_pos:!pos ~len;
        pos := !pos + len)
      ts;
    out
  end
  else Sim total

let to_string t =
  match t with
  | Real b -> Bytes.to_string b
  | Sim n -> String.make n '\000'
  | Gather g ->
    let out = Bytes.make g.g_total '\000' in
    blit ~src:t ~src_pos:0 ~dst:(Real out) ~dst_pos:0 ~len:g.g_total;
    Bytes.unsafe_to_string out

let copy_seconds ~rate_bytes_per_sec len =
  if rate_bytes_per_sec <= 0. then 0.
  else float_of_int len /. rate_bytes_per_sec
