(** The abstract storage-layout interface.

    "The base storage-layout class is only an interface: it does not
    implement an algorithm. Specific layouts are implemented through
    derived classes… for all layout and policy decisions, there exists a
    virtual method." A [Layout.t] is that interface as a record of
    closures; {!Lfs}, {!Ffs} and {!Sim_layout} instantiate it. The
    file-system core is "consulted whenever something needs to be done
    with a raw disk" exclusively through this record. *)

type t = {
  l_name : string;
  block_bytes : int;
  total_blocks : int;
  (* inodes *)
  alloc_inode : kind:Inode.kind -> Inode.t;
      (** mint a fresh in-core inode with a unique number *)
  get_inode : int -> Inode.t option;
      (** fetch (loading from disk if necessary); [None] if free *)
  update_inode : Inode.t -> unit;
      (** schedule the inode's new state for persistence *)
  free_inode : int -> unit;  (** release the number and its blocks *)
  (* file blocks *)
  read_block : Inode.t -> int -> Capfs_disk.Data.t;
      (** blocking read of one file block (holes read as zeroes) *)
  write_blocks : (int * int * Capfs_disk.Data.t) list -> unit;
      (** write-back of [(ino, file_block, data)] from the cache;
          blocking until on stable storage *)
  truncate : Inode.t -> blocks:int -> unit;
      (** release file blocks at index >= [blocks] *)
  adopt : Inode.t -> blocks:int -> unit;
      (** simulator aid: instantly assign on-disk addresses to the
          file's first [blocks] blocks, as if they had been written long
          ago — "if a file is accessed that is not yet known … it picks a
          random location on disk. Once an initial location has been
          chosen, the simulator sticks to those addresses." Costs no
          simulated time; subsequent reads miss the cache and pay real
          disk time. *)
  sync : unit -> unit;  (** persist all metadata (checkpoint) *)
  (* diagnostics *)
  free_blocks : unit -> int;
  layout_stats : unit -> (string * float) list;
}

(** [read_span t inode ~block_bytes ~first ~count] reads [count]
    consecutive file blocks via [read_block] and concatenates them —
    convenience for layouts and tests. *)
val read_span :
  t -> Inode.t -> first:int -> count:int -> Capfs_disk.Data.t
