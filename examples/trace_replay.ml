(* Trace round-trip: generate a synthetic workload, save it in the
   Sprite text format, read it back, replay it in Patsy, and print the
   15-minute interval report plus the latency CDF — the simulator's
   standard outputs.

   Run: dune exec examples/trace_replay.exe *)

module Synth = Capfs_trace.Synth
module Sprite_format = Capfs_trace.Sprite_format
module Experiment = Capfs_patsy.Experiment
module Report = Capfs_patsy.Report

let () =
  let profile =
    { Synth.sprite_2a with Synth.clients = 8; files = 300; dirs = 8 }
  in
  let trace = Synth.generate ~seed:42 ~duration:1800. profile in
  let path = Filename.temp_file "capfs_example" ".trc" in
  Sprite_format.save path trace;
  Format.printf "saved %d records to %s@." (Array.length trace) path;
  (* read it back, as if it were a recorded trace from another system *)
  let loaded = Sprite_format.load path in
  assert (Array.length loaded = Array.length trace);
  Sys.remove path;
  let config =
    {
      (Experiment.default Experiment.Write_delay) with
      Experiment.ndisks = 2;
      nbuses = 1;
      cache_mb = 8;
    }
  in
  let o = Experiment.run config ~trace:(Capfs_trace.Source.of_array loaded) in
  Format.printf "@.measurements every 15 minutes of simulation time:@.";
  Format.printf "%a@." Report.print_windows o.Experiment.replay;
  Format.printf "@.";
  Report.print_cdf ~points:25 ~title:"sprite-2a / write-delay-30s"
    Format.std_formatter o.Experiment.replay;
  Format.printf "@."
