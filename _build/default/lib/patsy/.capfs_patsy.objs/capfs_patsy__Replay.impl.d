lib/patsy/replay.ml: Array Capfs Capfs_disk Capfs_sched Capfs_stats Capfs_trace Hashtbl List Logs Option Printf Stdlib
