lib/cache/cache.ml: Block Capfs_disk Capfs_sched Capfs_stats Dlist Hashtbl List Logs Option Replacement
