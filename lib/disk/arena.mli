(** A slab arena for block payloads.

    One off-heap bigarray slab, cut into fixed-size cells. {!alloc} hands
    out refcounted {!Data.Slice} views (initial count 1); the cell
    returns to the free list when {!Data.release} drops the count to
    zero — for cache-owned payloads, on eviction or invalidation. The
    slab never moves and the GC never scans it, so payload bytes cause no
    minor-heap traffic and no copying until a real device boundary.

    The arena never blocks: an empty free list (or a request larger than
    a cell) falls back to a plain GC-heap [Data.real] buffer, on which
    retain/release are no-ops. Allocation and free are O(1).

    Ownership rule: the component that called {!alloc}/{!copy_in} owns
    the initial reference. Anything that buffers the payload beyond the
    delivering call retains/releases its own reference; {!Data.sub}
    views are borrows and carry no count. *)

type t

(** [create ~cell_bytes ~cells ()] maps one slab of [cell_bytes * cells]
    bytes. [poison] fills freed cells with [0xDE] — cheap use-after-free
    detection for tests. [shared] guards the free list with a mutex so
    cells may be allocated on one domain and released on another (e.g. a
    read reply filled on a shard domain and freed by the listener's
    writer fibre); refcount handoff must still be published through a
    lock or queue of the caller's own. *)
val create :
  ?poison:bool -> ?shared:bool -> cell_bytes:int -> cells:int -> unit -> t

(** A fresh cell as a [Data.Slice] of [len] (default [cell_bytes])
    bytes, zeroed at arena creation but {e not} re-zeroed on recycle;
    falls back to [Data.real] when the arena is full or [len] exceeds
    [cell_bytes]. *)
val alloc : ?len:int -> t -> Data.t

(** [copy_in t data] is [alloc] + blit: adopt a payload's bytes into an
    arena cell the caller now owns. *)
val copy_in : t -> Data.t -> Data.t

val cell_bytes : t -> int
val capacity : t -> int

(** Cells currently allocated. *)
val live : t -> int

(** Allocations served from the GC heap because the arena was full. *)
val fallbacks : t -> int

(** Cells freed back to the arena over its lifetime. *)
val recycled : t -> int
