(* The disk substrate on its own: the detailed HP97560 model against the
   "simple disk model" the paper warns about (Ruemmler & Wilkes reported
   errors of up to 112% from such models), plus a disk-queue scheduling
   policy comparison.

   Run: dune exec examples/disk_model.exe *)

module Sched = Capfs_sched.Sched
module Bus = Capfs_disk.Bus
module Sim_disk = Capfs_disk.Sim_disk
module Driver = Capfs_disk.Driver
module Disk_model = Capfs_disk.Disk_model
module Iosched = Capfs_disk.Iosched
module Seek = Capfs_disk.Seek
module Prng = Capfs_stats.Prng

(* Requests arrive over time (25 ms apart): the queue stays short but
   never empty, so the scheduling policies actually get to reorder. *)
let run_workload ~model ~iosched ~sequential n =
  let sched = Sched.create ~clock:`Virtual () in
  let mean = ref 0. in
  ignore
    (Sched.spawn sched (fun () ->
         let bus = Bus.scsi2 sched in
         let disk = Sim_disk.create sched model bus in
         let geometry = model.Disk_model.geometry in
         let driver =
           Driver.create sched
             ~policy:(Iosched.by_name geometry iosched)
             (Driver.sim_transport disk)
         in
         let prng = Prng.create ~seed:7 in
         let total = ref 0. in
         let pending = ref 0 in
         let done_ev = Sched.new_event sched in
         for i = 0 to n - 1 do
           incr pending;
           let lba =
             if sequential then 100_000 + (i * 8) else Prng.int prng 2_000_000
           in
           ignore
             (Sched.spawn sched (fun () ->
                  let t0 = Sched.now sched in
                  ignore (Driver.read_exn driver ~lba ~sectors:8);
                  total := !total +. (Sched.now sched -. t0);
                  decr pending;
                  if !pending = 0 then Sched.signal sched done_ev));
           Sched.sleep sched 0.025
         done;
         Sched.await sched done_ev;
         mean := !total /. float_of_int n));
  Sched.run sched;
  !mean

let () =
  Format.printf "HP97560 seek curve (Ruemmler & Wilkes):@.";
  List.iter
    (fun d ->
      Format.printf "  %5d cylinders -> %6.2f ms@." d
        (1000. *. Seek.time Seek.hp97560 ~distance:d))
    [ 1; 10; 100; 383; 1000; 1961 ];
  Format.printf "@.mean 4 KB read latency, 64 requests in flight:@.";
  Format.printf "  %-24s %-12s %s@." "model" "pattern" "mean";
  List.iter
    (fun (name, model) ->
      List.iter
        (fun sequential ->
          let mean = run_workload ~model ~iosched:"clook" ~sequential 64 in
          Format.printf "  %-24s %-12s %6.2f ms@." name
            (if sequential then "sequential" else "random")
            (1000. *. mean))
        [ true; false ])
    [ ("hp97560 (detailed)", Disk_model.hp97560);
      ("naive (constant seek)", Disk_model.naive) ];
  Format.printf
    "@.the naive model misses the sequential/random contrast entirely — \
     the reason Patsy models the disk in full detail.@.";
  Format.printf "@.queue policies, 64 random 4 KB reads:@.";
  List.iter
    (fun p ->
      let mean =
        run_workload ~model:Disk_model.hp97560 ~iosched:p ~sequential:false 64
      in
      Format.printf "  %-10s %6.2f ms mean@." p (1000. *. mean))
    [ "fcfs"; "sstf"; "scan"; "clook" ]
