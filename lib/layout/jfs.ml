module Sched = Capfs_sched.Sched
module Data = Capfs_disk.Data
module Driver = Capfs_disk.Driver
module Errno = Capfs_core.Errno

type config = { journal_blocks : int }

let default_config = { journal_blocks = 64 }

let magic = "CAPJFS01"

type t = {
  sched : Sched.t;
  driver : Driver.t;
  c_commits : Capfs_stats.Counter.t;
  lname : string;
  cfg : config;
  block_bytes : int;
  spb : int;
  total_blocks : int;
  data0 : int; (* first data block *)
  (* volatile metadata *)
  inodes : (int, Inode.t) Hashtbl.t;
  bitmap : Bytes.t; (* bit per data-region block *)
  mutable next_ino : int;
  mutable seq : int; (* commit sequence *)
  mutable journal_head : int; (* next journal block to write *)
  dirty_inodes : (int, unit) Hashtbl.t;
  mutable deleted : int list; (* inos deleted since last commit *)
  mutable rotor : int;
  mutable commits : int;
  mutable compactions : int;
  mutable data_writes : int;
}

let ignore_sched t = ignore t.sched

(* {2 Bitmap over the data region} *)

let data_blocks t = t.total_blocks - t.data0
let bit_get b i = Char.code (Bytes.get b (i / 8)) land (1 lsl (i mod 8)) <> 0

let bit_set b i v =
  let cur = Char.code (Bytes.get b (i / 8)) in
  let m = 1 lsl (i mod 8) in
  Bytes.set b (i / 8) (Char.chr (if v then cur lor m else cur land lnot m))

let alloc_block t =
  let n = data_blocks t in
  let rec probe i =
    if i >= n then raise (Errno.Error Errno.ENOSPC)
    else begin
      let j = (t.rotor + i) mod n in
      if not (bit_get t.bitmap j) then begin
        bit_set t.bitmap j true;
        t.rotor <- (j + 1) mod n;
        t.data0 + j
      end
      else probe (i + 1)
    end
  in
  probe 0

let free_block t addr =
  let j = addr - t.data0 in
  if j >= 0 && j < data_blocks t then bit_set t.bitmap j false

(* {2 Raw I/O} *)

let write_block_raw t ~addr data =
  Driver.write_exn t.driver ~lba:(addr * t.spb) data
let read_block_raw t ~addr =
  Driver.read_exn t.driver ~lba:(addr * t.spb) ~sectors:t.spb

let pad_to_blocks t s =
  let n = ((String.length s + t.block_bytes - 1) / t.block_bytes) * t.block_bytes in
  let b = Bytes.make (Stdlib.max t.block_bytes n) '\000' in
  Bytes.blit_string s 0 b 0 (String.length s);
  Data.Real b

(* {2 Journal records}

   A record is [magic; seq; kind; body; crc], padded to whole blocks.
   kind 0 = incremental commit (dirty inodes + deletions + next_ino),
   kind 1 = checkpoint (every live inode + next_ino). Inodes carry
   their complete block maps inline: journal records are variable
   length, so no indirect blocks are needed. *)

let put_inode w (i : Inode.t) =
  Codec.Writer.u64 w i.Inode.ino;
  Codec.Writer.u8 w (Inode.kind_to_int i.Inode.kind);
  Codec.Writer.u64 w i.Inode.size;
  Codec.Writer.u32 w i.Inode.nlink;
  Codec.Writer.f64 w i.Inode.mtime;
  Codec.Writer.u32 w i.Inode.nblocks;
  for k = 0 to i.Inode.nblocks - 1 do
    Codec.Writer.u64 w (Inode.get_addr i k + 1)
  done

let get_inode r =
  let ino = Codec.Reader.u64 r in
  let kind = Inode.kind_of_int (Codec.Reader.u8 r) in
  let size = Codec.Reader.u64 r in
  let nlink = Codec.Reader.u32 r in
  let mtime = Codec.Reader.f64 r in
  let nblocks = Codec.Reader.u32 r in
  let i = Inode.make ~ino ~kind ~now:mtime in
  i.Inode.size <- size;
  i.Inode.nlink <- nlink;
  i.Inode.mtime <- mtime;
  for k = 0 to nblocks - 1 do
    Inode.set_addr i k (Codec.Reader.u64 r - 1)
  done;
  i

let serialize_record t ~kind ~inodes ~deleted =
  let w = Codec.Writer.create () in
  Codec.Writer.string w "JREC";
  Codec.Writer.u64 w t.seq;
  Codec.Writer.u8 w kind;
  Codec.Writer.u64 w t.next_ino;
  Codec.Writer.u32 w (List.length inodes);
  List.iter (put_inode w) inodes;
  Codec.Writer.u32 w (List.length deleted);
  List.iter (fun ino -> Codec.Writer.u64 w ino) deleted;
  let body = Codec.Writer.contents w in
  let w2 = Codec.Writer.create () in
  Codec.Writer.u32 w2 (Codec.crc body);
  body ^ Codec.Writer.contents w2

let parse_record s =
  let r = Codec.Reader.of_string s in
  let m = Codec.Reader.string r in
  if m <> "JREC" then raise (Codec.Corrupt "journal record magic");
  let seq = Codec.Reader.u64 r in
  let kind = Codec.Reader.u8 r in
  let next_ino = Codec.Reader.u64 r in
  let n = Codec.Reader.u32 r in
  let inodes = List.init n (fun _ -> get_inode r) in
  let nd = Codec.Reader.u32 r in
  let deleted = List.init nd (fun _ -> Codec.Reader.u64 r) in
  let body_len = String.length s - Codec.Reader.remaining r in
  let crc_stored =
    Codec.Reader.u32 (Codec.Reader.of_string (String.sub s body_len 4))
  in
  if Codec.crc (String.sub s 0 body_len) <> crc_stored then
    raise (Codec.Corrupt "journal record crc");
  (body_len + 4, seq, kind, next_ino, inodes, deleted)

(* {2 Committing} *)

let rec commit t =
  let incr_inodes =
    Hashtbl.fold
      (fun ino () acc ->
        match Hashtbl.find_opt t.inodes ino with
        | Some i -> i :: acc
        | None -> acc)
      t.dirty_inodes []
  in
  let deleted = t.deleted in
  if incr_inodes <> [] || deleted <> [] || t.commits = 0 then begin
    let record = serialize_record t ~kind:0 ~inodes:incr_inodes ~deleted in
    let blocks_needed =
      (String.length record + t.block_bytes - 1) / t.block_bytes
    in
    if t.journal_head + blocks_needed > 1 + t.cfg.journal_blocks then begin
      compact t;
      (* after compaction the increment is already covered *)
      ()
    end
    else begin
      write_block_raw t ~addr:t.journal_head (pad_to_blocks t record);
      t.journal_head <- t.journal_head + blocks_needed;
      t.seq <- t.seq + 1;
      t.commits <- t.commits + 1;
      Hashtbl.reset t.dirty_inodes;
      t.deleted <- []
    end
  end

(* Restart the journal with one checkpoint record holding everything. *)
and compact t =
  let all = Hashtbl.fold (fun _ i acc -> i :: acc) t.inodes [] in
  let record = serialize_record t ~kind:1 ~inodes:all ~deleted:[] in
  let blocks_needed =
    (String.length record + t.block_bytes - 1) / t.block_bytes
  in
  if blocks_needed > t.cfg.journal_blocks then
    raise (Codec.Corrupt "journal too small for a checkpoint; reformat");
  write_block_raw t ~addr:1 (pad_to_blocks t record);
  t.journal_head <- 1 + blocks_needed;
  t.seq <- t.seq + 1;
  t.compactions <- t.compactions + 1;
  Hashtbl.reset t.dirty_inodes;
  t.deleted <- []

(* {2 Superblock} *)

let serialize_superblock ~block_bytes ~total_blocks ~journal_blocks =
  let w = Codec.Writer.create () in
  Codec.Writer.string w magic;
  Codec.Writer.u32 w block_bytes;
  Codec.Writer.u64 w total_blocks;
  Codec.Writer.u32 w journal_blocks;
  let body = Codec.Writer.contents w in
  let w2 = Codec.Writer.create () in
  Codec.Writer.u32 w2 (Codec.crc body);
  body ^ Codec.Writer.contents w2

let parse_superblock s =
  let r = Codec.Reader.of_string s in
  let m = Codec.Reader.string r in
  if m <> magic then raise (Codec.Corrupt "jfs superblock magic");
  let block_bytes = Codec.Reader.u32 r in
  let total_blocks = Codec.Reader.u64 r in
  let journal_blocks = Codec.Reader.u32 r in
  let body_len = String.length s - Codec.Reader.remaining r in
  let crc_stored =
    Codec.Reader.u32 (Codec.Reader.of_string (String.sub s body_len 4))
  in
  if Codec.crc (String.sub s 0 body_len) <> crc_stored then
    raise (Codec.Corrupt "jfs superblock crc");
  (block_bytes, total_blocks, journal_blocks)

(* {2 Construction} *)

let make_t ?registry ?(name = "jfs") ~cfg sched driver ~block_bytes
    ~total_blocks () =
  let spb = block_bytes / Driver.sector_bytes driver in
  if spb < 1 || block_bytes mod Driver.sector_bytes driver <> 0 then
    invalid_arg "Jfs: block size must be a multiple of the sector size";
  let data0 = 1 + cfg.journal_blocks in
  if total_blocks - data0 < 8 then invalid_arg "Jfs: disk too small";
  let c_commits =
    match registry with
    | Some r ->
      Capfs_stats.Registry.register r
        (Capfs_stats.Stat.scalar (name ^ ".commits"));
      Capfs_stats.Registry.counter r (name ^ ".commits")
    | None -> Capfs_stats.Counter.null
  in
  {
    sched;
    driver;
    c_commits;
    lname = name;
    cfg;
    block_bytes;
    spb;
    total_blocks;
    data0;
    inodes = Hashtbl.create 256;
    bitmap = Bytes.make (((total_blocks - data0) + 7) / 8) '\000';
    next_ino = 1;
    seq = 1;
    journal_head = 1;
    dirty_inodes = Hashtbl.create 64;
    deleted = [];
    rotor = 0;
    commits = 0;
    compactions = 0;
    data_writes = 0;
  }

let total_blocks_of driver ~block_bytes =
  Driver.total_sectors driver * Driver.sector_bytes driver / block_bytes

(* {2 The Layout.t interface} *)

let to_layout t =
  ignore_sched t;
  let alloc_inode ~kind =
    let ino = t.next_ino in
    t.next_ino <- ino + 1;
    let i = Inode.make ~ino ~kind ~now:(Sched.now t.sched) in
    Hashtbl.replace t.inodes ino i;
    Hashtbl.replace t.dirty_inodes ino ();
    i
  in
  let get_inode ino = Hashtbl.find_opt t.inodes ino in
  let update_inode (i : Inode.t) =
    Hashtbl.replace t.inodes i.Inode.ino i;
    Hashtbl.replace t.dirty_inodes i.Inode.ino ()
  in
  let free_inode ino =
    (match Hashtbl.find_opt t.inodes ino with
    | Some i -> List.iter (fun (_, a) -> free_block t a) (Inode.mapped i)
    | None -> ());
    Hashtbl.remove t.inodes ino;
    Hashtbl.remove t.dirty_inodes ino;
    t.deleted <- ino :: t.deleted
  in
  let read_block (i : Inode.t) blk =
    match Inode.get_addr i blk with
    | a when a = Inode.addr_none -> Data.sim t.block_bytes
    | addr -> read_block_raw t ~addr
  in
  (* Vectored read: physically consecutive runs travel as one request
     (same clustering as Ffs; holes stay in-core). *)
  let read_blocks (i : Inode.t) ~first ~count =
    let addrs = Array.init count (fun k -> Inode.get_addr i (first + k)) in
    let parts = ref [] in
    let k = ref 0 in
    while !k < count do
      if addrs.(!k) = Inode.addr_none then begin
        parts := Data.sim t.block_bytes :: !parts;
        incr k
      end
      else begin
        let run = ref 1 in
        while !k + !run < count && addrs.(!k + !run) = addrs.(!k) + !run do
          incr run
        done;
        parts :=
          Driver.read_exn t.driver
            ~lba:(addrs.(!k) * t.spb)
            ~sectors:(!run * t.spb)
          :: !parts;
        k := !k + !run
      end
    done;
    Data.concat (List.rev !parts)
  in
  (* Vectored write-back: resolve/allocate every address, then write
     each physically consecutive run as one gather request. *)
  let write_blocks updates =
    let resolved =
      List.filter_map
        (fun (ino, blk, data) ->
          match Hashtbl.find_opt t.inodes ino with
          | None -> None
          | Some i ->
            let addr =
              match Inode.get_addr i blk with
              | a when a = Inode.addr_none ->
                let a = alloc_block t in
                Inode.set_addr i blk a;
                Hashtbl.replace t.dirty_inodes ino ();
                a
              | a -> a
            in
            t.data_writes <- t.data_writes + 1;
            Some (addr, data))
        updates
    in
    let run_addr = ref (-1) and run_len = ref 0 and run_data = ref [] in
    let flush_run () =
      if !run_len > 0 then
        Driver.write_exn t.driver
          ~lba:(!run_addr * t.spb)
          (Data.gather (List.rev !run_data))
    in
    List.iter
      (fun (addr, data) ->
        if !run_len > 0 && addr = !run_addr + !run_len then begin
          run_data := data :: !run_data;
          incr run_len
        end
        else begin
          flush_run ();
          run_addr := addr;
          run_len := 1;
          run_data := [ data ]
        end)
      resolved;
    flush_run ()
  in
  let truncate (i : Inode.t) ~blocks =
    List.iter (free_block t) (Inode.truncate_blocks i ~blocks);
    Hashtbl.replace t.dirty_inodes i.Inode.ino ()
  in
  let adopt (i : Inode.t) ~blocks =
    for k = 0 to blocks - 1 do
      if Inode.get_addr i k = Inode.addr_none then
        Inode.set_addr i k (alloc_block t)
    done;
    Hashtbl.replace t.inodes i.Inode.ino i;
    Hashtbl.replace t.dirty_inodes i.Inode.ino ()
  in
  let sync () =
    commit t;
    Capfs_stats.Counter.record t.c_commits 1.
  in
  let free_blocks () =
    let n = ref 0 in
    for j = 0 to data_blocks t - 1 do
      if not (bit_get t.bitmap j) then incr n
    done;
    !n
  in
  {
    Layout.l_name = t.lname;
    block_bytes = t.block_bytes;
    total_blocks = t.total_blocks;
    alloc_inode = (fun ~kind -> Errno.catch (fun () -> alloc_inode ~kind));
    get_inode = (fun ino -> Errno.catch (fun () -> get_inode ino));
    update_inode;
    free_inode = (fun ino -> Errno.catch (fun () -> free_inode ino));
    read_block =
      (fun inode blk -> Errno.catch (fun () -> read_block inode blk));
    read_blocks =
      (fun inode ~first ~count ->
        Errno.catch (fun () -> read_blocks inode ~first ~count));
    write_blocks = (fun ups -> Errno.catch (fun () -> write_blocks ups));
    truncate =
      (fun inode ~blocks -> Errno.catch (fun () -> truncate inode ~blocks));
    adopt =
      (fun inode ~blocks -> Errno.catch (fun () -> adopt inode ~blocks));
    sync = (fun () -> Errno.catch (fun () -> sync ()));
    free_blocks;
    layout_stats =
      (fun () ->
        [
          ("commits", float_of_int t.commits);
          ("compactions", float_of_int t.compactions);
          ("data_writes", float_of_int t.data_writes);
          ("journal_head", float_of_int t.journal_head);
          ("inodes", float_of_int (Hashtbl.length t.inodes));
        ]);
  }

let format ?(config = default_config) sched driver ~block_bytes =
  let total_blocks = total_blocks_of driver ~block_bytes in
  let t = make_t ~cfg:config sched driver ~block_bytes ~total_blocks () in
  write_block_raw t ~addr:0
    (pad_to_blocks t
       (serialize_superblock ~block_bytes ~total_blocks
          ~journal_blocks:config.journal_blocks));
  compact t

let format_and_mount ?registry ?(name = "jfs") ?(config = default_config)
    sched driver ~block_bytes =
  let total_blocks = total_blocks_of driver ~block_bytes in
  let t =
    make_t ?registry ~name ~cfg:config sched driver ~block_bytes ~total_blocks
      ()
  in
  write_block_raw t ~addr:0
    (pad_to_blocks t
       (serialize_superblock ~block_bytes ~total_blocks
          ~journal_blocks:config.journal_blocks));
  compact t;
  to_layout t

(* Replay: scan the journal block by block. A record may span several
   blocks; read enough to parse or fail its crc. The newest checkpoint
   resets state; later increments apply on top; a torn record ends the
   scan. *)
let mount ?registry ?(name = "jfs") sched driver =
  let sector = Driver.sector_bytes driver in
  let sb = Driver.read_exn driver ~lba:0 ~sectors:(4096 / sector) in
  if not (Data.is_real sb) then
    raise (Codec.Corrupt "Jfs.mount: simulated disk holds no metadata");
  let block_bytes, total_blocks, journal_blocks =
    parse_superblock (Data.to_string sb)
  in
  let cfg = { journal_blocks } in
  let t =
    make_t ?registry ~name ~cfg sched driver ~block_bytes ~total_blocks ()
  in
  (* read the whole journal region once *)
  let region =
    Data.to_string
      (Driver.read_exn driver ~lba:(1 * t.spb)
         ~sectors:(journal_blocks * t.spb))
  in
  let apply (kind, next_ino, inodes, deleted) =
    if kind = 1 then Hashtbl.reset t.inodes;
    List.iter (fun (i : Inode.t) -> Hashtbl.replace t.inodes i.Inode.ino i)
      inodes;
    List.iter (fun ino -> Hashtbl.remove t.inodes ino) deleted;
    t.next_ino <- Stdlib.max t.next_ino next_ino
  in
  let rec scan blk =
    if blk >= journal_blocks then ()
    else begin
      let offset = blk * block_bytes in
      match
        parse_record
          (String.sub region offset (String.length region - offset))
      with
      | consumed, seq, kind, next_ino, inodes, deleted ->
        apply (kind, next_ino, inodes, deleted);
        t.seq <- Stdlib.max t.seq (seq + 1);
        let blocks = (consumed + block_bytes - 1) / block_bytes in
        t.journal_head <- 1 + blk + blocks;
        scan (blk + blocks)
      | exception (Codec.Corrupt _ | Invalid_argument _) ->
        () (* torn tail: stop *)
    end
  in
  scan 0;
  (* rebuild the allocation bitmap from the live inodes *)
  Hashtbl.iter
    (fun _ i ->
      List.iter
        (fun (_, addr) ->
          let j = addr - t.data0 in
          if j >= 0 && j < data_blocks t then bit_set t.bitmap j true)
        (Inode.mapped i))
    t.inodes;
  to_layout t
