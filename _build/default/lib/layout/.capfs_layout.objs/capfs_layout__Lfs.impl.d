lib/layout/lfs.ml: Array Bytes Capfs_disk Capfs_sched Capfs_stats Codec Hashtbl Inode Layout List Logs Option Printf Stdlib String
