type 'a t = {
  sched : Sched.t;
  capacity : int option;
  items : 'a Queue.t;
  nonempty : Sched.event;
  nonfull : Sched.event;
}

let create ?(name = "mailbox") ?capacity sched =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Mailbox.create: capacity < 1"
  | _ -> ());
  {
    sched;
    capacity;
    items = Queue.create ();
    nonempty = Sched.new_event ~name:(name ^ ".nonempty") sched;
    nonfull = Sched.new_event ~name:(name ^ ".nonfull") sched;
  }

let full t =
  match t.capacity with
  | None -> false
  | Some c -> Queue.length t.items >= c

let rec send t v =
  if full t then begin
    Sched.await t.sched t.nonfull;
    send t v
  end
  else begin
    Queue.push v t.items;
    Sched.signal t.sched t.nonempty
  end

let try_send t v =
  if full t then false
  else begin
    Queue.push v t.items;
    Sched.signal t.sched t.nonempty;
    true
  end

let rec recv t =
  match Queue.take_opt t.items with
  | Some v ->
    Sched.signal t.sched t.nonfull;
    v
  | None ->
    Sched.await t.sched t.nonempty;
    recv t

let recv_timeout t dt =
  match Queue.take_opt t.items with
  | Some v ->
    Sched.signal t.sched t.nonfull;
    Some v
  | None ->
    if Sched.await_timeout t.sched t.nonempty dt then
      (* A signal arrived, but a competing receiver may have raced us. *)
      match Queue.take_opt t.items with
      | Some v ->
        Sched.signal t.sched t.nonfull;
        Some v
      | None -> None
    else None

let try_recv t =
  match Queue.take_opt t.items with
  | Some v ->
    Sched.signal t.sched t.nonfull;
    Some v
  | None -> None

let length t = Queue.length t.items
let is_empty t = Queue.is_empty t.items
