lib/stats/welford.mli: Format
