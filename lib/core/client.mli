(** The abstract client interface.

    "The abstract client interface provides the basic file-system
    interface. There are functions to open, close, read, write or delete
    a file and there are functions to manipulate an hierarchical
    name-space." Both front ends dispatch onto this module: the NFS
    class in PFS and the trace-replay classes in Patsy.

    Operations identify files by path; [open_]/[close_] maintain a
    per-(client, path) descriptor so traces replay naturally. Reads and
    writes against a path that is not open perform an implicit transient
    open — real traces occasionally miss the open record.

    {b Errors.} Every operation returns [('a, Capfs_core.Errno.t) result].
    Path-walking failures map onto the usual codes ([ENOENT], [EEXIST],
    [ENOTDIR], [EISDIR], [ENOTEMPTY], [ELOOP]); closing a handle that
    was never opened is [EBADF]; layout and disk failures pass through
    as [ENOSPC]/[EIO]/[ETIMEDOUT]. Each operation also has an [_exn]
    twin that raises {!Capfs_core.Errno.Error} instead — convenient in
    tests and setup code where failure is fatal anyway. *)

type t

type stat = {
  st_ino : int;
  st_kind : Capfs_layout.Inode.kind;
  st_size : int;
  st_nlink : int;
  st_mtime : float;
  st_atime : float;
}

type open_mode = RO | WO | RW

val create : Fsys.t -> t
val fsys : t -> Fsys.t

(** Underlying components, for front ends that need them. *)
val file_table : t -> File_table.t

val namespace : t -> Namespace.t

(** [trap f] runs [f] and converts the errors this module's operations
    can raise — the {!Namespace} exceptions and
    {!Capfs_core.Errno.Error} — into an [Error] result. Front ends that
    drive {!Namespace}/{!File} directly (e.g. the NFS server) use it to
    share the one exception-to-errno mapping. Unrecognised exceptions
    propagate. *)
val trap : (unit -> 'a) -> ('a, Capfs_core.Errno.t) result

(** {2 Namespace operations} *)

val mkdir : t -> string -> (unit, Capfs_core.Errno.t) result
val rmdir : t -> string -> (unit, Capfs_core.Errno.t) result

(** [create_file t ?kind path] creates an empty file (exclusive). *)
val create_file :
  t -> ?kind:Capfs_layout.Inode.kind -> string ->
  (unit, Capfs_core.Errno.t) result

val symlink : t -> target:string -> string -> (unit, Capfs_core.Errno.t) result

(** [EINVAL] if [path] names something that is not a symlink. *)
val readlink : t -> string -> (string, Capfs_core.Errno.t) result

val rename :
  t -> src:string -> dst:string -> (unit, Capfs_core.Errno.t) result

(** Unlink. Open files live on until their last close. *)
val delete : t -> string -> (unit, Capfs_core.Errno.t) result

val readdir : t -> string -> (Dir.entry list, Capfs_core.Errno.t) result
val stat : t -> string -> (stat, Capfs_core.Errno.t) result
val exists : t -> string -> bool

(** [ensure_dirs t path] creates every missing directory on the way to
    [path]'s parent (mkdir -p for the dirname). *)
val ensure_dirs : t -> string -> (unit, Capfs_core.Errno.t) result

(** Simulator aid ("we synthesize those parameters that are missing,
    e.g. … the initial layout of the file-system"): make sure [path]
    exists with at least [size] bytes whose blocks are already "on
    disk" — adopted by the layout at no simulated cost, so subsequent
    reads pay real disk time. Creates missing parents. *)
val synthesize_file :
  t -> ?kind:Capfs_layout.Inode.kind -> string -> size:int ->
  (unit, Capfs_core.Errno.t) result

(** {2 File I/O} *)

(** [open_ t ~client path mode] opens (creating on [WO]/[RW] if
    absent). *)
val open_ :
  t -> client:int -> string -> open_mode -> (unit, Capfs_core.Errno.t) result

(** [EBADF] if the client holds no descriptor for [path]. *)
val close_ : t -> client:int -> string -> (unit, Capfs_core.Errno.t) result

(** [read t ~client path ~offset ~bytes] returns the data read (short
    at EOF). *)
val read :
  t -> client:int -> string -> offset:int -> bytes:int ->
  (Capfs_disk.Data.t, Capfs_core.Errno.t) result

val write :
  t -> client:int -> string -> offset:int -> Capfs_disk.Data.t ->
  (unit, Capfs_core.Errno.t) result

val truncate : t -> string -> size:int -> (unit, Capfs_core.Errno.t) result

(** fsync: the file's dirty blocks reach stable storage. *)
val fsync : t -> string -> (unit, Capfs_core.Errno.t) result

(** Whole-system sync: cache write-back plus layout checkpoint. *)
val sync : t -> (unit, Capfs_core.Errno.t) result

(** Close every descriptor a client still holds (end-of-trace tidy-up). *)
val close_all : t -> client:int -> (unit, Capfs_core.Errno.t) result

(** Open-descriptor count (diagnostics). *)
val open_handles : t -> int

(** {2 Raising conveniences}

    Each mirrors its result-typed namesake but raises
    {!Capfs_core.Errno.Error} on failure. *)

val mkdir_exn : t -> string -> unit
val rmdir_exn : t -> string -> unit
val create_file_exn : t -> ?kind:Capfs_layout.Inode.kind -> string -> unit
val symlink_exn : t -> target:string -> string -> unit
val readlink_exn : t -> string -> string
val rename_exn : t -> src:string -> dst:string -> unit
val delete_exn : t -> string -> unit
val readdir_exn : t -> string -> Dir.entry list
val stat_exn : t -> string -> stat
val ensure_dirs_exn : t -> string -> unit

val synthesize_file_exn :
  t -> ?kind:Capfs_layout.Inode.kind -> string -> size:int -> unit

val open_exn : t -> client:int -> string -> open_mode -> unit
val close_exn : t -> client:int -> string -> unit

val read_exn :
  t -> client:int -> string -> offset:int -> bytes:int -> Capfs_disk.Data.t

val write_exn :
  t -> client:int -> string -> offset:int -> Capfs_disk.Data.t -> unit

val truncate_exn : t -> string -> size:int -> unit
val fsync_exn : t -> string -> unit
val sync_exn : t -> unit
val close_all_exn : t -> client:int -> unit
