module Prng = Capfs_stats.Prng

type profile = {
  profile_name : string;
  clients : int;
  duration : float;
  mean_think : float;
  files : int;
  dirs : int;
  file_size_mu : float;
  file_size_sigma : float;
  read_fraction : float;
  cold_read_fraction : float;
  stat_fraction : float;
  delete_after_write : float;
  truncate_on_rewrite : float;
  io_unit : int;
  large_write_fraction : float;
  large_size : int;
  hot_fraction : float;
  record_io_times : bool;
}

(* Baseline: an engineering-workstation day à la Baker et al. '91 —
   mostly reads, small files (median ~4-8 KB), a hot working set. *)
let sprite_1a =
  {
    profile_name = "sprite-1a";
    clients = 20;
    duration = 7200.;
    mean_think = 4.0;
    files = 2000;
    dirs = 40;
    file_size_mu = log 8192.;
    file_size_sigma = 1.2;
    read_fraction = 0.65;
    cold_read_fraction = 0.35;
    stat_fraction = 0.15;
    delete_after_write = 0.35;
    truncate_on_rewrite = 0.5;
    io_unit = 4096;
    large_write_fraction = 0.02;
    large_size = 1 lsl 20;
    hot_fraction = 0.7;
    record_io_times = false;
  }

let sprite_1b =
  {
    sprite_1a with
    profile_name = "sprite-1b";
    read_fraction = 0.45;
    large_write_fraction = 0.22;
    large_size = 2 lsl 20;
    mean_think = 3.0;
    delete_after_write = 0.25;
  }

let sprite_2a =
  {
    sprite_1a with
    profile_name = "sprite-2a";
    clients = 14;
    read_fraction = 0.7;
    stat_fraction = 0.2;
    mean_think = 5.0;
  }

let sprite_2b =
  {
    sprite_1a with
    profile_name = "sprite-2b";
    clients = 26;
    read_fraction = 0.55;
    delete_after_write = 0.45;
    mean_think = 3.5;
  }

let sprite_5 =
  {
    sprite_1a with
    profile_name = "sprite-5";
    read_fraction = 0.40;
    stat_fraction = 0.25;
    large_write_fraction = 0.30;
    large_size = 3 lsl 20;
    delete_after_write = 0.10;
    mean_think = 3.0;
  }

let all_profiles = [ sprite_1a; sprite_1b; sprite_2a; sprite_2b; sprite_5 ]

let profile_by_name name =
  match
    List.find_opt (fun p -> p.profile_name = name) all_profiles
  with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "Synth.profile_by_name: unknown profile %S (know: %s)"
         name
         (String.concat ", " (List.map (fun p -> p.profile_name) all_profiles)))

(* Generator state: which files exist and how big they are, per the
   operations generated so far. *)
type state = {
  sizes : (int, int) Hashtbl.t; (* file id -> bytes *)
  mutable existing : int list;
}

let file_path p fid = Printf.sprintf "/d%d/f%d" (fid mod p.dirs) fid

let pick_file p rng =
  (* hot 10% of the id space receives [hot_fraction] of accesses *)
  let hot = Prng.bool rng p.hot_fraction in
  let span = Stdlib.max 1 (p.files / 10) in
  if hot then Prng.int rng span else span + Prng.int rng (Stdlib.max 1 (p.files - span))

let pick_existing rng st =
  match st.existing with
  | [] -> None
  | files ->
    let n = List.length files in
    Some (List.nth files (Prng.int rng n))

let io_records p ~client ~path ~write ~bytes ~t_open ~t_close =
  let unit_ = p.io_unit in
  let n = Stdlib.max 1 ((bytes + unit_ - 1) / unit_) in
  List.init n (fun i ->
      let offset = i * unit_ in
      let len = Stdlib.min unit_ (bytes - offset) in
      let len = Stdlib.max 1 len in
      let time =
        if p.record_io_times then
          (* equidistant, which is also what the replay synthesizes *)
          t_open +. ((t_close -. t_open) *. float_of_int (i + 1)
                     /. float_of_int (n + 1))
        else Record.no_time
      in
      if write then
        { Record.time; client; op = Record.Write { path; offset; bytes = len } }
      else { Record.time; client; op = Record.Read { path; offset; bytes = len } })

let generate ~seed ?duration p =
  let duration = match duration with Some d -> d | None -> p.duration in
  let rng = Prng.create ~seed in
  let st = { sizes = Hashtbl.create 1024; existing = [] } in
  let out = ref [] in
  let emit r = out := r :: !out in
  (* directories first *)
  for d = 0 to p.dirs - 1 do
    emit
      {
        Record.time = 0.;
        client = 0;
        op = Record.Mkdir { path = Printf.sprintf "/d%d" d };
      }
  done;
  (* Each client walks its own timeline; records merge afterwards. The
     per-client PRNGs split off the master so adding a client does not
     perturb the others' streams. *)
  for client = 1 to p.clients do
    let crng = Prng.split rng in
    let t = ref (Prng.exponential crng ~mean:p.mean_think) in
    while !t < duration do
      let t0 = !t in
      if Prng.bool crng p.stat_fraction then begin
        (* stat burst: getattrs against a few files *)
        let n = 1 + Prng.int crng 4 in
        for i = 0 to n - 1 do
          let fid = pick_file p crng in
          emit
            {
              Record.time = t0 +. (0.01 *. float_of_int i);
              client;
              op = Record.Stat { path = file_path p fid };
            }
        done;
        t := t0 +. 0.05 +. Prng.exponential crng ~mean:p.mean_think
      end
      else begin
        let want_read = Prng.bool crng p.read_fraction in
        let read_target =
          if not want_read then None
          else if Prng.bool crng p.cold_read_fraction then
            (* a pre-existing file the trace never wrote *)
            Some (pick_file p crng)
          else pick_existing crng st
        in
        match (want_read, read_target) with
        | true, Some fid ->
          let path = file_path p fid in
          let bytes =
            match Hashtbl.find_opt st.sizes fid with
            | Some b -> Stdlib.max 1 b
            | None ->
              (* size of the pre-existing file: same distribution *)
              let b =
                int_of_float
                  (Prng.lognormal crng ~mu:p.file_size_mu
                     ~sigma:p.file_size_sigma)
              in
              Stdlib.max 256 (Stdlib.min b (1 lsl 20))
          in
          let io_time = float_of_int bytes /. 2.0e6 in
          let t_close = t0 +. 0.02 +. io_time in
          emit
            {
              Record.time = t0;
              client;
              op = Record.Open { path; mode = Record.Read_only };
            };
          List.iter emit
            (io_records p ~client ~path ~write:false ~bytes ~t_open:t0
               ~t_close);
          emit { Record.time = t_close; client; op = Record.Close { path } };
          t := t_close +. Prng.exponential crng ~mean:p.mean_think
        | true, None | false, _ ->
          (* write session *)
          let fid = pick_file p crng in
          let path = file_path p fid in
          let bytes =
            if Prng.bool crng p.large_write_fraction then
              p.large_size / 2 + Prng.int crng (Stdlib.max 1 (p.large_size / 2))
            else
              let b =
                int_of_float
                  (Prng.lognormal crng ~mu:p.file_size_mu
                     ~sigma:p.file_size_sigma)
              in
              Stdlib.max 256 (Stdlib.min b (1 lsl 22))
          in
          let existed = Hashtbl.mem st.sizes fid in
          let truncate_first =
            existed && Prng.bool crng p.truncate_on_rewrite
          in
          let io_time = float_of_int bytes /. 1.5e6 in
          let t_close = t0 +. 0.03 +. io_time in
          emit
            {
              Record.time = t0;
              client;
              op = Record.Open { path; mode = Record.Write_only };
            };
          if truncate_first then
            emit
              {
                Record.time = Record.no_time;
                client;
                op = Record.Truncate { path; size = 0 };
              };
          List.iter emit
            (io_records p ~client ~path ~write:true ~bytes ~t_open:t0 ~t_close);
          emit { Record.time = t_close; client; op = Record.Close { path } };
          Hashtbl.replace st.sizes fid bytes;
          if not existed then st.existing <- fid :: st.existing;
          (* short-lived data: delete soon after writing *)
          if Prng.bool crng p.delete_after_write then begin
            let t_del = t_close +. Prng.exponential crng ~mean:10.0 in
            if t_del < duration then begin
              emit
                { Record.time = t_del; client; op = Record.Delete { path } };
              Hashtbl.remove st.sizes fid;
              st.existing <- List.filter (fun f -> f <> fid) st.existing
            end
          end;
          t := t_close +. Prng.exponential crng ~mean:p.mean_think
      end
    done
  done;
  (* Sort by time; records without a time sort with their session via a
     stable sort keyed only on recorded times being monotone per client,
     so keep them adjacent: assign each untimed record the time of the
     preceding timed record from the same emission order. *)
  let records = Array.of_list (List.rev !out) in
  let n = Array.length records in
  let keys = Array.make n 0. in
  let last = ref 0. in
  for i = 0 to n - 1 do
    if Record.has_time records.(i) then last := records.(i).Record.time;
    keys.(i) <- !last
  done;
  let order = Array.init n (fun i -> i) in
  (* emission order breaks key ties, which makes the sort stable *)
  Array.sort
    (fun a b ->
      let c = compare keys.(a) keys.(b) in
      if c <> 0 then c else compare a b)
    order;
  Array.map (fun i -> records.(i)) order

let source ~seed ?duration p =
  (* generation materializes the whole array anyway (the final global
     sort needs it), so the source is array-backed — replay takes its
     exact array path — but lazy: a fleet worker that never runs this
     trace never pays for it. For O(1)-memory replay of a big synthetic
     trace, save it to a file and stream with [Source.sprite_file]. *)
  Source.of_lazy ~name:p.profile_name (lazy (generate ~seed ?duration p))
