(* pfs: serve a file-system image and drive it with a small shell.

   Commands (one per line on stdin, or via --command):
     mkdir PATH | ls PATH | write PATH TEXT | cat PATH | rm PATH |
     rmdir PATH | mv SRC DST | ln TARGET LINK | stat PATH | statfs |
     sync | help | quit *)

module Sched = Capfs_sched.Sched
module Data = Capfs_disk.Data
module Client = Capfs.Client
module Pfs = Capfs_pfs.Pfs

let help_text =
  "commands: mkdir P | ls P | write P TEXT | cat P | rm P | rmdir P | \
   mv A B | ln TARGET LINK | stat P | statfs | sync | help | quit"

let exec_command t line =
  let client = t.Pfs.client in
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> ()
  | [ "help" ] -> print_endline help_text
  | [ "mkdir"; p ] -> Client.mkdir_exn client p
  | [ "ls"; p ] ->
    List.iter
      (fun e ->
        Printf.printf "%c %s\n"
          (match e.Capfs.Dir.kind with
          | Capfs_layout.Inode.Directory -> 'd'
          | Capfs_layout.Inode.Symlink -> 'l'
          | Capfs_layout.Inode.Multimedia -> 'm'
          | Capfs_layout.Inode.Regular -> '-')
          e.Capfs.Dir.name)
      (Client.readdir_exn client p)
  | "write" :: p :: rest ->
    let text = String.concat " " rest in
    Client.write_exn client ~client:0 p ~offset:0 (Data.of_string text);
    Client.truncate_exn client p ~size:(String.length text)
  | [ "cat"; p ] ->
    let st = Client.stat_exn client p in
    let d = Client.read_exn client ~client:0 p ~offset:0 ~bytes:st.Client.st_size in
    print_endline (Data.to_string d)
  | [ "rm"; p ] -> Client.delete_exn client p
  | [ "rmdir"; p ] -> Client.rmdir_exn client p
  | [ "mv"; a; b ] -> Client.rename_exn client ~src:a ~dst:b
  | [ "ln"; target; link ] -> Client.symlink_exn client ~target link
  | [ "stat"; p ] ->
    let st = Client.stat_exn client p in
    Printf.printf "ino=%d size=%d nlink=%d mtime=%.3f\n" st.Client.st_ino
      st.Client.st_size st.Client.st_nlink st.Client.st_mtime
  | [ "statfs" ] ->
    let fs = Client.fsys client in
    let layout = fs.Capfs.Fsys.layout in
    Printf.printf "%s: %d blocks, %d free\n"
      layout.Capfs_layout.Layout.l_name
      layout.Capfs_layout.Layout.total_blocks
      (layout.Capfs_layout.Layout.free_blocks ())
  | [ "sync" ] -> Client.sync_exn client
  | cmd :: _ -> Printf.printf "unknown command %S (try help)\n" cmd

let run_line t line =
  ignore
    (Sched.spawn t.Pfs.sched (fun () ->
         (* every failure mode is one typed errno now *)
         try exec_command t line
         with Capfs_core.Errno.Error e ->
           Printf.printf "error: %s\n" (Capfs_core.Errno.to_string e)));
  Sched.run t.Pfs.sched

let main image size_mb commands =
  let t = Pfs.start ~image ~size_mb () in
  Printf.printf "pfs: serving %s (%d MB)\n%!" image size_mb;
  (match commands with
  | [] ->
    (try
       let quit = ref false in
       while not !quit do
         print_string "pfs> ";
         flush stdout;
         let line = input_line stdin in
         if String.trim line = "quit" then quit := true else run_line t line
       done
     with End_of_file -> ())
  | cmds -> List.iter (fun c -> run_line t c) cmds);
  Pfs.shutdown t;
  Printf.printf "pfs: image synced\n";
  0

open Cmdliner

let image = Arg.(required & pos 0 (some string) None & info [] ~docv:"IMAGE")
let size_mb = Arg.(value & opt int 64 & info [ "size-mb" ])

let commands =
  Arg.(value & opt_all string []
       & info [ "c"; "command" ] ~doc:"Run a command and exit (repeatable).")

let cmd =
  Cmd.v
    (Cmd.info "pfs" ~doc:"the on-line cut-and-paste file system")
    Term.(const main $ image $ size_mb $ commands)

let () = exit (Cmd.eval' cmd)
