(** PFS: the on-line instantiation of the cut-and-paste framework.

    Assembles the same components Patsy uses — driver with C-LOOK
    queueing, block cache with a pluggable flush policy, segmented LFS,
    abstract client interface — over a {e real} clock and a {e real}
    Unix-file block device, and puts the NFS front end on top. "We did
    not have to change anything in the code except for some small
    additions when data was actually moved." *)

type config = {
  cache_mb : int;
  nvram_mb : int;
  trigger : Capfs_cache.Cache.flush_trigger;
  scope : Capfs_cache.Cache.flush_scope;
  iosched : string;
  workers : int;  (** NFS worker fibres *)
}

(** 30-second-update, whole-file flushes, C-LOOK — a classic Unix
    server. 16 MB cache by default (a PFS image is usually small). *)
val default_config : config

type t = {
  sched : Capfs_sched.Sched.t;  (** the server's scheduler (real clock
                                    in production, virtual in tests) *)
  client : Capfs.Client.t;      (** the abstract client interface *)
  nfs : Nfs.t;                  (** the NFS front end *)
  image_path : string;          (** backing image the server runs on *)
  registry : Capfs_stats.Registry.t option;
      (** the registry passed to {!start}, if any — the handle
          {!snapshot} freezes *)
}

(** [start ~image ~size_mb ()] opens (formatting when fresh or invalid)
    the file-system image at [image] and starts the server. [clock]
    defaults to [`Real]; tests pass [`Virtual] to run PFS under
    simulated time — the very point of the shared framework. *)
val start :
  ?clock:Capfs_sched.Sched.clock ->
  ?config:config ->
  ?registry:Capfs_stats.Registry.t ->
  image:string ->
  size_mb:int ->
  unit ->
  t

(** Flush everything and checkpoint (call before exiting). *)
val shutdown : t -> unit

(** [snapshot t] freezes the server's statistics registry restricted to
    the policy-visible keys ({!Capfs_stats.Snapshot.policy_visible}) —
    the on-line half of a differential sim-vs-real comparison. [None]
    when {!start} was given no registry. Capture after a sync (e.g.
    {!shutdown}) for complete flush counters. *)
val snapshot : t -> Capfs_stats.Snapshot.t option
