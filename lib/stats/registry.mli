(** Registry of plug-in statistics.

    Components register the statistics they maintain under a dotted name
    (["disk.0.queue_len"], ["cache.hit_rate"], …). A registry is created
    per system instantiation, so independent simulations never share
    counters. Statistics can be activated selectively, mirroring Patsy's
    "plug-in statistics can be activated when the simulator is started". *)

type t

val create : unit -> t

(** [register t stat] adds [stat]; raises [Invalid_argument] on a
    duplicate name. *)
val register : t -> Stat.t -> unit

(** [find t name] is the registered stat, or [None]. *)
val find : t -> string -> Stat.t option

(** [counter t name] is a pre-resolved handle on the named stat:
    recording through it skips the name hash and table probe that
    {!record} pays per call, so it is the sanctioned way to record from
    per-operation paths. The handle observes later {!set_enabled}
    toggles. Raises [Invalid_argument] if [name] was never registered —
    resolve handles right after registering, in component constructors. *)
val counter : t -> string -> Counter.t

(** [record t name x] records into the named stat if it exists and is
    enabled; silently drops otherwise (cheap no-op for deactivated
    statistics). *)
val record : t -> string -> float -> unit

(** [set_enabled t ~prefix on] toggles every stat whose name starts with
    [prefix]. All stats start enabled. *)
val set_enabled : t -> prefix:string -> bool -> unit

val enabled : t -> string -> bool

(** All registered stats, sorted by name. *)
val all : t -> Stat.t list

(** [iter t f] applies [f] to every registered stat in name order
    without materialising the intermediate list of {!all}. *)
val iter : t -> (Stat.t -> unit) -> unit

val reset : t -> unit

(** [report ?histograms ?all ppf t] reports every enabled stat.

    A stat that was registered but never recorded into is {e skipped} by
    default — idle components (a disk that served no requests, a cleaner
    that never ran) would otherwise clutter the report with empty lines.
    Pass [~all:true] to include them; a zero-observation stat is then
    printed as ["<name>: (no observations)"]. *)
val report : ?histograms:bool -> ?all:bool -> Format.formatter -> t -> unit
