module Sched = Capfs_sched.Sched
module Experiment = Capfs_patsy.Experiment
module Synth = Capfs_trace.Synth
module Record = Capfs_trace.Record
module Client = Capfs.Client
module Data = Capfs_disk.Data

let () =
  let profile = Synth.profile_by_name "sprite-1a" in
  let records = Synth.generate ~seed:1996 ~duration:900. profile in
  let n = float_of_int (Array.length records) in
  let cfg = Experiment.default Experiment.Ups in
  let sched = Sched.create ~seed:42 ~clock:`Virtual () in
  let w_loop = ref 0. in
  let w0 = Gc.minor_words () in
  ignore
    (Sched.spawn sched (fun () ->
         let client, _ = Experiment.build_instance sched cfg in
         let a = Gc.minor_words () in
         Array.iter
           (fun (r : Record.t) ->
             match r.Record.op with
             | Record.Open { path; mode } ->
               let m = match mode with
                 | Record.Read_only -> Client.RO
                 | Record.Write_only -> Client.WO
                 | Record.Read_write -> Client.RW in
               ignore (Client.open_ client ~client:r.Record.client path m)
             | Record.Close { path } ->
               ignore (Client.close_ client ~client:r.Record.client path)
             | Record.Read { path; offset; bytes } ->
               ignore (Client.read client ~client:r.Record.client path ~offset ~bytes)
             | Record.Write { path; offset; bytes } ->
               ignore (Client.write client ~client:r.Record.client path ~offset (Data.sim bytes))
             | Record.Stat { path } -> ignore (Client.stat client path)
             | Record.Delete { path } -> ignore (Client.delete client path)
             | Record.Truncate { path; size } -> ignore (Client.truncate client path ~size)
             | Record.Mkdir { path } -> ignore (Client.mkdir client path)
             | Record.Rmdir { path } -> ignore (Client.rmdir client path))
           records;
         w_loop := Gc.minor_words () -. a));
  Sched.run sched;
  let w1 = Gc.minor_words () in
  Printf.printf "dispatch loop:   %.1f words/op\n" (!w_loop /. n);
  Printf.printf "whole run:       %.1f words/op\n" ((w1 -. w0) /. n);
  Printf.printf "drain remainder: %.1f words/op\n" ((w1 -. w0 -. !w_loop) /. n)
