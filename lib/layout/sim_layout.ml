module Sched = Capfs_sched.Sched
module Data = Capfs_disk.Data
module Driver = Capfs_disk.Driver
module Errno = Capfs_core.Errno

let create ?registry ?(name = "simlayout") ?(seed = 1996) sched driver
    ~block_bytes =
  let c_guesses =
    match registry with
    | Some r ->
      Capfs_stats.Registry.register r
        (Capfs_stats.Stat.scalar (name ^ ".guesses"));
      Capfs_stats.Registry.counter r (name ^ ".guesses")
    | None -> Capfs_stats.Counter.null
  in
  let prng = Capfs_stats.Prng.create ~seed in
  let spb = block_bytes / Driver.sector_bytes driver in
  if spb < 1 || block_bytes mod Driver.sector_bytes driver <> 0 then
    invalid_arg "Sim_layout: block size must be a multiple of the sector size";
  let total_blocks =
    Driver.total_sectors driver * Driver.sector_bytes driver / block_bytes
  in
  let origins : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let inodes : (int, Inode.t) Hashtbl.t = Hashtbl.create 1024 in
  let loaded : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let next_ino = ref 1 in
  let guesses = ref 0 in
  let origin_of ino =
    match Hashtbl.find_opt origins ino with
    | Some o -> o
    | None ->
      incr guesses;
      Capfs_stats.Counter.record c_guesses 1.;
      let o = Capfs_stats.Prng.int prng total_blocks in
      Hashtbl.replace origins ino o;
      o
  in
  let addr_of ino blk = (origin_of ino + blk) mod total_blocks in
  let charge_inode_load ino =
    (* first touch of an unknown file costs one inode read *)
    if not (Hashtbl.mem loaded ino) then begin
      Hashtbl.replace loaded ino ();
      let addr = (origin_of ino + total_blocks - 1) mod total_blocks in
      ignore (Driver.read_exn driver ~lba:(addr * spb) ~sectors:spb)
    end
  in
  let alloc_inode ~kind =
    let ino = !next_ino in
    incr next_ino;
    let inode = Inode.make ~ino ~kind ~now:(Sched.now sched) in
    Hashtbl.replace inodes ino inode;
    Hashtbl.replace loaded ino ();
    inode
  in
  let get_inode ino =
    match Hashtbl.find_opt inodes ino with
    | Some i ->
      charge_inode_load ino;
      Some i
    | None -> None
  in
  let update_inode (inode : Inode.t) =
    Hashtbl.replace inodes inode.Inode.ino inode
  in
  let free_inode ino =
    Hashtbl.remove inodes ino;
    Hashtbl.remove origins ino;
    Hashtbl.remove loaded ino
  in
  let read_block (inode : Inode.t) blk =
    charge_inode_load inode.Inode.ino;
    Driver.read_exn driver ~lba:(addr_of inode.Inode.ino blk * spb)
      ~sectors:spb
  in
  (* Files are laid out contiguously from their origin, so a span of
     file blocks is a span of disk blocks — one request per run, split
     only where the address space wraps. *)
  let read_blocks (inode : Inode.t) ~first ~count =
    charge_inode_load inode.Inode.ino;
    let ino = inode.Inode.ino in
    let parts = ref [] in
    let i = ref 0 in
    while !i < count do
      let addr = addr_of ino (first + !i) in
      let run = Stdlib.min (count - !i) (total_blocks - addr) in
      parts :=
        Driver.read_exn driver ~lba:(addr * spb) ~sectors:(run * spb)
        :: !parts;
      i := !i + run
    done;
    Data.concat (List.rev !parts)
  in
  (* Vectored write-back: physically consecutive updates coalesce into
     one gather request (all-simulated payloads gather for free). *)
  let write_blocks updates =
    let run_addr = ref (-1) and run_len = ref 0 and run_data = ref [] in
    let flush_run () =
      if !run_len > 0 then
        Driver.write_exn driver ~lba:(!run_addr * spb)
          (Data.gather (List.rev !run_data))
    in
    List.iter
      (fun (ino, blk, data) ->
        let data =
          if Data.length data = block_bytes then data else Data.sim block_bytes
        in
        let addr = addr_of ino blk in
        if !run_len > 0 && addr = !run_addr + !run_len then begin
          run_data := data :: !run_data;
          incr run_len
        end
        else begin
          flush_run ();
          run_addr := addr;
          run_len := 1;
          run_data := [ data ]
        end)
      updates;
    flush_run ()
  in
  let truncate (inode : Inode.t) ~blocks =
    ignore (Inode.truncate_blocks inode ~blocks)
  in
  let adopt (inode : Inode.t) ~blocks =
    (* addresses are implicit (origin + index); just fix the origin *)
    ignore (origin_of inode.Inode.ino);
    if blocks > 0 then
      Inode.set_addr inode (blocks - 1) (addr_of inode.Inode.ino (blocks - 1))
  in
  {
    Layout.l_name = name;
    block_bytes;
    total_blocks;
    alloc_inode = (fun ~kind -> Errno.catch (fun () -> alloc_inode ~kind));
    get_inode = (fun ino -> Errno.catch (fun () -> get_inode ino));
    update_inode;
    free_inode = (fun ino -> Errno.catch (fun () -> free_inode ino));
    read_block =
      (fun inode blk -> Errno.catch (fun () -> read_block inode blk));
    read_blocks =
      (fun inode ~first ~count ->
        Errno.catch (fun () -> read_blocks inode ~first ~count));
    write_blocks = (fun ups -> Errno.catch (fun () -> write_blocks ups));
    truncate =
      (fun inode ~blocks -> Errno.catch (fun () -> truncate inode ~blocks));
    adopt =
      (fun inode ~blocks -> Errno.catch (fun () -> adopt inode ~blocks));
    sync = (fun () -> Ok ());
    free_blocks = (fun () -> total_blocks);
    layout_stats =
      (fun () ->
        [
          ("files_placed", float_of_int (Hashtbl.length origins));
          ("guesses", float_of_int !guesses);
        ]);
  }
