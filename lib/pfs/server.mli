(** Scale-out PFS: one server, many volumes, many clients.

    The namespace is sharded by hashing a path's first component onto
    [shards] independent PFS volumes ({!Pfs.create} each, so every
    shard has its own scheduler, cache, LFS and backing image —
    [<image>.shard<i>]). Under the [`Real] clock each shard lives on a
    pinned OCaml 5 domain from {!Capfs_patsy.Fleet.Pool} and pumps its
    own ingress queue; under [`Virtual] the caller pumps with {!drive}.
    The request execution path — admission, routing, the abstract
    client interface, the multiplexed volume layer, the driver — is the
    same code under both clocks; only the wake-up mechanism differs.

    {b Admission.} Each shard bounds its in-flight requests at
    [Config.admission]; a full (or stopping) shard refuses at {!submit}
    time with a typed [EAGAIN] — the client-visible pushback that maps
    to [NFSERR_JUKEBOX] on the NFS side. Counted per shard under
    [server.submitted] / [server.rejected] / [server.completed]. *)

type t

(** [create cfg] builds [cfg.shards] volumes (validating first) and,
    under the [`Real] clock, starts their pinned service domains. A
    failure tears down the volumes already built. [injector] is
    threaded into every shard's scheduler. *)
val create :
  ?injector:Capfs_fault.Injector.t ->
  Pfs.Config.t ->
  (t, Capfs_core.Errno.t) result

val shards : t -> int

(** [route t path] — the shard index [path] lives on: FNV-1a of the
    first path component, mod [shards]. Stable across runs, restarts
    and processes. *)
val route : t -> string -> int

(** [submit t req ~complete] — admission check, then hand [req] to its
    shard; [complete] fires {e on the shard's domain} once (out of
    order with other submissions). [Error EAGAIN] when the target shard
    is full or stopping. A [Sync] fans out to every shard and completes
    once with the worst per-shard verdict; [Stats]/[Shutdown] are
    server-level and answer [Error EINVAL] here. *)
val submit :
  t ->
  Wire.request ->
  complete:(Wire.reply -> unit) ->
  (unit, Capfs_core.Errno.t) result

(** Pump a [`Virtual]-clock server until quiescent: drain every shard's
    inbox, run its scheduler, repeat while anything moved. Raises
    [Invalid_argument] on a real-clock server (its shards pump
    themselves). *)
val drive : t -> unit

(** [register_pusher t ~client sink] names [sink] as client [client]'s
    push channel: every {!Wire.push} the server owes that client (cache
    invalidations) is handed to it. May fire on a shard's domain
    mid-request — a sink must only enqueue. The socket listener
    registers connections automatically at their first [Open_grant];
    this entry point exists for in-process transports (the virtual-clock
    {!Cached_client}). *)
val register_pusher : t -> client:int -> (Wire.push -> unit) -> unit

val unregister_pusher : t -> client:int -> unit

(** [call t req] — submit and wait for the reply (driving the shards
    first under [`Virtual]); admission pushback comes back as
    [Err EAGAIN]. [Stats] answers immediately with {!report_json};
    [Shutdown] is refused ([Err EINVAL]) — in-process callers use
    {!shutdown}. *)
val call : t -> Wire.request -> Wire.reply

(** Per-shard statistics snapshots, index order. *)
val snapshots : t -> Capfs_stats.Snapshot.t array

(** Every shard's snapshot merged into one: counts and totals summed by
    key, means recomputed. *)
val merged : t -> Capfs_stats.Snapshot.t

(** JSON report: shard count, per-shard snapshots, merged totals. *)
val report_json : t -> string

(** Stop accepting ([EAGAIN]), drain in-flight requests, sync and close
    every volume, retire the domains. Idempotent. *)
val shutdown : t -> unit

(** [serve t lfd] — the multi-client front door: accept connections
    from the listening socket [lfd] (already bound and listening; Unix
    or TCP), speak {!Capfs_ccache.Netlink.Frame} framing with
    {!Wire} payloads, and pipeline out-of-order replies per connection.
    Blocks until a client sends [Shutdown] (which gets no reply), then
    drains, shuts the server down and returns — the caller's clean exit
    is the acknowledgement. Requires a [`Real]-clock server. *)
val serve : t -> Unix.file_descr -> unit
