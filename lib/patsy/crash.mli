(** Crash-recovery experiments: kill a replay mid-run, recover, verify.

    The experiment plays a trace against a disk farm built with real
    in-memory backing stores, under a {!Capfs_fault.Plan} whose
    [crash_at] names the instant of the power cut. At [sync_at]
    (default [crash_at / 2]) a shadow model is captured: the namespace
    is walked into a {e durable floor} of (path, kind, size) triples and
    a whole-system sync is issued; every path the replay mutates from
    the walk onward is struck from the floor. At [crash_at] the
    scheduler simply stops dispatching — fibres, caches and all other
    volatile state are abandoned, exactly like a power cut — and only
    the disks' sector stores survive.

    Recovery then builds a fresh scheduler and disk farm seeded from the
    surviving sector snapshots, runs {!Capfs_layout.Lfs.recover} on
    every volume (checkpoint restore + log roll-forward + fsck), mounts
    the recovered volumes behind a fresh client, and checks the floor:
    every path that was stable and untouched at the crash must still
    exist with the same kind and (for regular files) the same size.
    Touched paths are legitimately undefined — the experiment asserts
    durability of acknowledged state, not of in-flight work. *)

type violation = {
  v_path : string;
  v_expected : string;
  v_found : string;
}

val pp_violation : Format.formatter -> violation -> unit

type report = {
  crash_time : float;          (** virtual time of the power cut *)
  applied_ops : int;           (** trace ops applied before the crash *)
  floor_size : int;            (** durable-floor entries captured *)
  floor_synced : bool;
      (** the floor sync completed before the crash; when false the
          shadow check is vacuous and [ok] is false *)
  recoveries : (string * Capfs_layout.Lfs.recovery_report) list;
      (** per-volume recovery outcomes, in volume order *)
  failed_volumes : (string * Capfs_core.Errno.t) list;
      (** volumes {!Capfs_layout.Lfs.recover} could not bring back *)
  violations : violation list; (** floor entries that did not survive *)
  ok : bool;
      (** all volumes recovered with clean fsck, the floor was synced,
          and no violations *)
}

(** [run ~trace plan] executes one crash-recovery experiment. The plan
    must set [crash_at > 0] (raises [Invalid_argument] otherwise);
    transient/latent/stall rates in the plan apply while the workload
    runs. [config] shapes the farm exactly as in {!Experiment.run}
    (default: the [Write_delay] defaults); [sync_at] places the floor
    capture (default [crash_at / 2], must be before [crash_at]). *)
val run :
  ?config:Experiment.config ->
  ?sync_at:float ->
  trace:Capfs_trace.Record.t array ->
  Capfs_fault.Plan.t ->
  report
