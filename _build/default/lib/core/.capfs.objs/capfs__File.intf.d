lib/core/file.mli: Capfs_disk Capfs_layout Fsys
