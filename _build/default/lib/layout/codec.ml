exception Corrupt of string

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 256
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xff))

  let u32 t v =
    for i = 0 to 3 do
      u8 t ((v lsr (8 * i)) land 0xff)
    done

  let u64 t v =
    for i = 0 to 7 do
      u8 t ((v lsr (8 * i)) land 0xff)
    done

  let f64 t v =
    let bits = Int64.bits_of_float v in
    for i = 0 to 7 do
      u8 t
        (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)
    done

  let string t s =
    u32 t (String.length s);
    Buffer.add_string t s

  let bytes_raw t b = Buffer.add_bytes t b
  let contents t = Buffer.contents t
  let length t = Buffer.length t
end

module Reader = struct
  type t = { src : string; mutable pos : int }

  let of_string src = { src; pos = 0 }

  let need t n =
    if t.pos + n > String.length t.src then
      raise (Corrupt (Printf.sprintf "truncated at %d (+%d)" t.pos n))

  let u8 t =
    need t 1;
    let v = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u32 t =
    let v = ref 0 in
    for i = 0 to 3 do
      v := !v lor (u8 t lsl (8 * i))
    done;
    !v

  let u64 t =
    let v = ref 0 in
    for i = 0 to 7 do
      v := !v lor (u8 t lsl (8 * i))
    done;
    !v

  let f64 t =
    let bits = ref 0L in
    for i = 0 to 7 do
      bits :=
        Int64.logor !bits (Int64.shift_left (Int64.of_int (u8 t)) (8 * i))
    done;
    Int64.float_of_bits !bits

  let string t =
    let n = u32 t in
    need t n;
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s

  let bytes_raw t n =
    need t n;
    let b = Bytes.of_string (String.sub t.src t.pos n) in
    t.pos <- t.pos + n;
    b

  let remaining t = String.length t.src - t.pos
end

(* Adler-32. Good enough to catch torn checkpoints; not cryptographic. *)
let crc s =
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod 65521;
      b := (!b + !a) mod 65521)
    s;
  (!b lsl 16) lor !a
