lib/disk/seek.ml:
