(* mkfs: format a PFS image file with a segmented-LFS (or FFS) layout. *)

open Cmdliner
module Sched = Capfs_sched.Sched
module Driver = Capfs_disk.Driver

let format_image image size_mb layout seg_blocks =
  let sched = Sched.create ~clock:`Real () in
  let transport =
    Capfs_pfs.File_blockdev.transport sched ~path:image
      ~size_bytes:(size_mb * 1024 * 1024) ()
  in
  let driver = Driver.create sched transport in
  ignore
    (Sched.spawn sched (fun () ->
         match layout with
         | "lfs" ->
           let config =
             { Capfs_layout.Lfs.default_config with
               Capfs_layout.Lfs.seg_blocks }
           in
           Capfs_layout.Lfs.format ~config sched driver ~block_bytes:4096;
           Printf.printf "%s: %d MB segmented LFS (%d-block segments)\n"
             image size_mb seg_blocks
         | "ffs" ->
           Capfs_layout.Ffs.format sched driver ~block_bytes:4096;
           Printf.printf "%s: %d MB FFS-like layout\n" image size_mb
         | l -> invalid_arg ("unknown layout: " ^ l)));
  Sched.run sched;
  Capfs_pfs.File_blockdev.close transport;
  0

let image =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"IMAGE")

let size_mb = Arg.(value & opt int 64 & info [ "size-mb" ] ~docv:"MB")

let layout =
  Arg.(value & opt string "lfs" & info [ "layout" ] ~doc:"lfs or ffs")

let seg_blocks = Arg.(value & opt int 128 & info [ "seg-blocks" ])

let cmd =
  Cmd.v
    (Cmd.info "mkfs.capfs" ~doc:"format a cut-and-paste file-system image")
    Term.(const format_image $ image $ size_mb $ layout $ seg_blocks)

let () = exit (Cmd.eval' cmd)
