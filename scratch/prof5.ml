module Sched = Capfs_sched.Sched
module Experiment = Capfs_patsy.Experiment
module Replay = Capfs_patsy.Replay
module Synth = Capfs_trace.Synth

let run name ~synthesize_missing ~serial =
  let profile = Synth.profile_by_name "sprite-1a" in
  let records = Synth.generate ~seed:1996 ~duration:900. profile in
  let n = float_of_int (Array.length records) in
  let cfg = Experiment.default Experiment.Ups in
  let sched = Sched.create ~seed:42 ~clock:`Virtual () in
  let out = ref None in
  let w0 = Gc.minor_words () in
  ignore
    (Sched.spawn sched (fun () ->
         let client, _ = Experiment.build_instance sched cfg in
         out := Some (Replay.run ~serial ~synthesize_missing client (Capfs_trace.Source.of_array records))));
  Sched.run sched;
  let w1 = Gc.minor_words () in
  let o = Option.get !out in
  Printf.printf "%-36s %.1f words/op (%d ops, %d errors, %d skipped)\n" name
    ((w1 -. w0) /. n) o.Replay.operations o.Replay.errors o.Replay.skipped_ops

let () =
  run "serial, synthesize" ~synthesize_missing:true ~serial:true;
  run "serial, no synthesize" ~synthesize_missing:false ~serial:true;
  run "concurrent, synthesize" ~synthesize_missing:true ~serial:false
