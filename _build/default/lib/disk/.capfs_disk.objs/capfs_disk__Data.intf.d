lib/disk/data.mli:
