type t = {
  read_error : float;
  write_error : float;
  latent : int;
  stall_p : float;
  stall_s : float;
  crash_at : float option;
  seed : int option;
}

let empty =
  {
    read_error = 0.;
    write_error = 0.;
    latent = 0;
    stall_p = 0.;
    stall_s = 0.;
    crash_at = None;
    seed = None;
  }

let is_empty t =
  t.read_error = 0. && t.write_error = 0. && t.latent = 0 && t.stall_p = 0.
  && t.crash_at = None

let of_string s =
  let parse_float k v =
    match float_of_string_opt v with
    | Some f when f >= 0. -> Ok f
    | _ -> Error (Printf.sprintf "fault plan: %s wants a non-negative number, got %S" k v)
  in
  let parse_int k v =
    match int_of_string_opt v with
    | Some i when i >= 0 -> Ok i
    | _ -> Error (Printf.sprintf "fault plan: %s wants a non-negative integer, got %S" k v)
  in
  let ( let* ) = Result.bind in
  let fields =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun f -> f <> "")
  in
  List.fold_left
    (fun acc field ->
      let* t = acc in
      match String.index_opt field '=' with
      | None -> Error (Printf.sprintf "fault plan: expected key=value, got %S" field)
      | Some i -> (
        let k = String.sub field 0 i in
        let v = String.sub field (i + 1) (String.length field - i - 1) in
        match k with
        | "read_error" ->
          let* f = parse_float k v in
          Ok { t with read_error = f }
        | "write_error" ->
          let* f = parse_float k v in
          Ok { t with write_error = f }
        | "latent" ->
          let* n = parse_int k v in
          Ok { t with latent = n }
        | "stall_p" ->
          let* f = parse_float k v in
          Ok { t with stall_p = f }
        | "stall_s" ->
          let* f = parse_float k v in
          Ok { t with stall_s = f }
        | "crash_at" ->
          let* f = parse_float k v in
          Ok { t with crash_at = Some f }
        | "seed" ->
          let* n = parse_int k v in
          Ok { t with seed = Some n }
        | _ -> Error (Printf.sprintf "fault plan: unknown key %S" k)))
    (Ok empty) fields

let to_string t =
  let parts = ref [] in
  let add k v = parts := Printf.sprintf "%s=%s" k v :: !parts in
  if t.read_error > 0. then add "read_error" (Printf.sprintf "%g" t.read_error);
  if t.write_error > 0. then add "write_error" (Printf.sprintf "%g" t.write_error);
  if t.latent > 0 then add "latent" (string_of_int t.latent);
  if t.stall_p > 0. then add "stall_p" (Printf.sprintf "%g" t.stall_p);
  if t.stall_s > 0. then add "stall_s" (Printf.sprintf "%g" t.stall_s);
  (match t.crash_at with
  | Some c -> add "crash_at" (Printf.sprintf "%g" c)
  | None -> ());
  (match t.seed with Some s -> add "seed" (string_of_int s) | None -> ());
  String.concat "," (List.rev !parts)

let pp ppf t = Format.pp_print_string ppf (to_string t)
