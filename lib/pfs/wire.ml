module Errno = Capfs_core.Errno
module Data = Capfs_disk.Data

type stat = { size : int; is_dir : bool }
type grant = { version : int; cacheable : bool; lease_s : float; size : int }

type request =
  | Open of { client : int; path : string; mode : Capfs.Client.open_mode }
  | Close of { client : int; path : string }
  | Read of { client : int; path : string; offset : int; count : int }
  | Write of { client : int; path : string; offset : int; data : string }
  | Mkdir of string
  | Delete of string
  | Stat of string
  | Sync
  | Stats
  | Shutdown
  | Open_grant of {
      client : int;
      path : string;
      mode : Capfs.Client.open_mode;
    }
  | Writeback of {
      client : int;
      path : string;
      size : int;
      close : bool;
      blocks : (int * string) list;
    }

type reply =
  | Ok_unit
  | Ok_data of Data.t
  | Ok_stat of stat
  | Ok_stats of string
  | Ok_grant of grant
  | Err of Errno.t

type push = Invalidate of { path : string; version : int }

let op_open = 1
let op_close = 2
let op_read = 3
let op_write = 4
let op_mkdir = 5
let op_delete = 6
let op_stat = 7
let op_sync = 8
let op_stats = 9
let op_shutdown = 10
let op_open_grant = 11
let op_writeback = 12
let op_invalidate = 13
let op_batch = 14

(* Server-pushed frames ride the reply path with a req_id no client ever
   issues; clients demultiplex on it before consulting their in-flight
   table. *)
let push_req_id = 0xfffffff0

let opcode = function
  | Open _ -> op_open
  | Close _ -> op_close
  | Read _ -> op_read
  | Write _ -> op_write
  | Mkdir _ -> op_mkdir
  | Delete _ -> op_delete
  | Stat _ -> op_stat
  | Sync -> op_sync
  | Stats -> op_stats
  | Shutdown -> op_shutdown
  | Open_grant _ -> op_open_grant
  | Writeback _ -> op_writeback

let route_path = function
  | Open { path; _ } | Close { path; _ } | Read { path; _ }
  | Write { path; _ }
  | Open_grant { path; _ }
  | Writeback { path; _ } ->
    Some path
  | Mkdir p | Delete p | Stat p -> Some p
  | Sync | Stats | Shutdown -> None

(* {2 Payload codecs}

   Strings are u16-LE length + bytes; integers are u32 LE. A [Write]'s
   data is the unprefixed tail of the payload: the frame header already
   carries the total length, so the data needs no second one. *)

exception Short

let add_u8 b v = Buffer.add_uint8 b (v land 0xff)
let add_u32 b v = Buffer.add_int32_le b (Int32.of_int v)

let add_str b s =
  if String.length s > 0xffff then invalid_arg "Wire: path too long";
  Buffer.add_uint16_le b (String.length s);
  Buffer.add_string b s

type cursor = { buf : string; mutable pos : int }

let get_u8 c =
  if c.pos + 1 > String.length c.buf then raise Short;
  let v = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  if c.pos + 4 > String.length c.buf then raise Short;
  let v = Int32.to_int (String.get_int32_le c.buf c.pos) in
  c.pos <- c.pos + 4;
  v land 0xffffffff

let get_str c =
  if c.pos + 2 > String.length c.buf then raise Short;
  let n = String.get_uint16_le c.buf c.pos in
  if c.pos + 2 + n > String.length c.buf then raise Short;
  let s = String.sub c.buf (c.pos + 2) n in
  c.pos <- c.pos + 2 + n;
  s

let get_rest c =
  let s = String.sub c.buf c.pos (String.length c.buf - c.pos) in
  c.pos <- String.length c.buf;
  s

let mode_byte = function Capfs.Client.RO -> 0 | WO -> 1 | RW -> 2

let mode_of_byte = function
  | 0 -> Capfs.Client.RO
  | 1 -> WO
  | 2 -> RW
  | _ -> raise Short

let encode_request r =
  let b = Buffer.create 64 in
  (match r with
  | Open { client; path; mode } ->
    add_u32 b client;
    add_u8 b (mode_byte mode);
    add_str b path
  | Close { client; path } ->
    add_u32 b client;
    add_str b path
  | Read { client; path; offset; count } ->
    add_u32 b client;
    add_u32 b offset;
    add_u32 b count;
    add_str b path
  | Write { client; path; offset; data } ->
    add_u32 b client;
    add_u32 b offset;
    add_str b path;
    Buffer.add_string b data
  | Mkdir p | Delete p | Stat p -> add_str b p
  | Sync | Stats | Shutdown -> ()
  | Open_grant { client; path; mode } ->
    add_u32 b client;
    add_u8 b (mode_byte mode);
    add_str b path
  | Writeback { client; path; size; close; blocks } ->
    add_u32 b client;
    add_u32 b size;
    add_u8 b (if close then 1 else 0);
    add_str b path;
    add_u32 b (List.length blocks);
    List.iter
      (fun (off, data) ->
        add_u32 b off;
        add_u32 b (String.length data);
        Buffer.add_string b data)
      blocks);
  (opcode r, Buffer.contents b)

let decode_request ~opcode payload =
  let c = { buf = payload; pos = 0 } in
  match
    if opcode = op_open then begin
      let client = get_u32 c in
      let mode = mode_of_byte (get_u8 c) in
      let path = get_str c in
      Open { client; path; mode }
    end
    else if opcode = op_close then begin
      let client = get_u32 c in
      let path = get_str c in
      Close { client; path }
    end
    else if opcode = op_read then begin
      let client = get_u32 c in
      let offset = get_u32 c in
      let count = get_u32 c in
      let path = get_str c in
      Read { client; path; offset; count }
    end
    else if opcode = op_write then begin
      let client = get_u32 c in
      let offset = get_u32 c in
      let path = get_str c in
      let data = get_rest c in
      Write { client; path; offset; data }
    end
    else if opcode = op_mkdir then Mkdir (get_str c)
    else if opcode = op_delete then Delete (get_str c)
    else if opcode = op_stat then Stat (get_str c)
    else if opcode = op_sync then Sync
    else if opcode = op_stats then Stats
    else if opcode = op_shutdown then Shutdown
    else if opcode = op_open_grant then begin
      let client = get_u32 c in
      let mode = mode_of_byte (get_u8 c) in
      let path = get_str c in
      Open_grant { client; path; mode }
    end
    else if opcode = op_writeback then begin
      let client = get_u32 c in
      let size = get_u32 c in
      let close = get_u8 c = 1 in
      let path = get_str c in
      let n = get_u32 c in
      (* each block needs >= 8 header bytes: a hostile count can't force
         a huge list allocation past the payload it actually shipped *)
      if n * 8 > String.length c.buf - c.pos then raise Short;
      let blocks =
        List.init n (fun _ ->
            let off = get_u32 c in
            let len = get_u32 c in
            if c.pos + len > String.length c.buf then raise Short;
            let data = String.sub c.buf c.pos len in
            c.pos <- c.pos + len;
            (off, data))
      in
      Writeback { client; path; size; close; blocks }
    end
    else raise Short
  with
  | r -> Ok r
  | exception Short -> Error Errno.EINVAL

(* Reply status byte: 0 for success, [1 + Errno.to_index e] for a typed
   failure — the same closed errno vocabulary on the wire as in the
   API. The reply codec is blit-based: the writer fibre lays replies
   straight into its gather buffer ([blit_reply]), so an [Ok_data]
   payload moves arena slab -> socket buffer with no intermediate
   string. [encode_reply] is the same codec run against a fresh
   buffer. *)

let reply_bytes = function
  | Ok_unit | Err _ -> 1
  | Ok_data d -> 1 + Data.length d
  | Ok_stat _ -> 1 + 5
  | Ok_stats s -> 1 + String.length s
  | Ok_grant _ -> 1 + 13

let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let blit_reply r b off =
  match r with
  | Ok_unit -> Bytes.set_uint8 b off 0
  | Err e -> Bytes.set_uint8 b off (1 + Errno.to_index e)
  | Ok_data d ->
    Bytes.set_uint8 b off 0;
    Data.blit ~src:d ~src_pos:0 ~dst:(Data.Real b) ~dst_pos:(off + 1)
      ~len:(Data.length d)
  | Ok_stat { size; is_dir } ->
    Bytes.set_uint8 b off 0;
    set_u32 b (off + 1) size;
    Bytes.set_uint8 b (off + 5) (if is_dir then 1 else 0)
  | Ok_stats s ->
    Bytes.set_uint8 b off 0;
    Bytes.blit_string s 0 b (off + 1) (String.length s)
  | Ok_grant { version; cacheable; lease_s; size } ->
    Bytes.set_uint8 b off 0;
    set_u32 b (off + 1) version;
    Bytes.set_uint8 b (off + 5) (if cacheable then 1 else 0);
    (* lease travels as u32 milliseconds *)
    set_u32 b (off + 6) (int_of_float (lease_s *. 1000.));
    set_u32 b (off + 10) size

let encode_reply r =
  let n = reply_bytes r in
  let b = Bytes.create n in
  blit_reply r b 0;
  Bytes.unsafe_to_string b

let release_reply = function Ok_data d -> Data.release d | _ -> ()

let detach_reply = function
  | Ok_data d ->
    let d' = Data.detach d in
    Data.release d;
    Ok_data d'
  | r -> r

let decode_reply ~opcode payload =
  let c = { buf = payload; pos = 0 } in
  match
    let status = get_u8 c in
    if status > 0 then begin
      let i = status - 1 in
      if i >= Array.length Errno.all then raise Short else Err Errno.all.(i)
    end
    else if opcode = op_read || opcode = op_write then
      if opcode = op_read then Ok_data (Data.of_string (get_rest c))
      else Ok_unit
    else if opcode = op_stat then begin
      let size = get_u32 c in
      let is_dir = get_u8 c = 1 in
      Ok_stat { size; is_dir }
    end
    else if opcode = op_stats then Ok_stats (get_rest c)
    else if opcode = op_open_grant then begin
      let version = get_u32 c in
      let cacheable = get_u8 c = 1 in
      let lease_s = float_of_int (get_u32 c) /. 1000. in
      let size = get_u32 c in
      Ok_grant { version; cacheable; lease_s; size }
    end
    else Ok_unit
  with
  | r -> Ok r
  | exception Short -> Error Errno.EINVAL

(* {2 Server pushes}

   An [Invalidate] is a server-initiated frame: same header, the
   reserved {!push_req_id}, its own opcode. *)

let encode_push (Invalidate { path; version }) =
  let b = Buffer.create 32 in
  add_u32 b version;
  add_str b path;
  (op_invalidate, Buffer.contents b)

let decode_push ~opcode payload =
  if opcode <> op_invalidate then Error Errno.EINVAL
  else
    let c = { buf = payload; pos = 0 } in
    match
      let version = get_u32 c in
      let path = get_str c in
      Invalidate { path; version }
    with
    | p -> Ok p
    | exception Short -> Error Errno.EINVAL

(* {2 Batch container}

   One frame carrying N (req_id, opcode, payload) entries so a pipelined
   sender — a client with several requests queued, the writer fibre with
   several replies pending — pays one syscall, not N. Entry layout:
   u32 req_id | u16 opcode | u32 payload_len | payload. *)

module Batch = struct
  let opcode = op_batch
  let entry_header = 10

  let encoded_bytes entries =
    List.fold_left
      (fun acc (_, _, p) -> acc + entry_header + String.length p)
      0 entries

  let blit_entry_header b off ~req_id ~opcode ~payload_len =
    set_u32 b off req_id;
    Bytes.set_uint16_le b (off + 4) (opcode land 0xffff);
    set_u32 b (off + 6) payload_len

  let encode entries =
    let b = Bytes.create (encoded_bytes entries) in
    let off = ref 0 in
    List.iter
      (fun (req_id, opcode, payload) ->
        blit_entry_header b !off ~req_id ~opcode
          ~payload_len:(String.length payload);
        Bytes.blit_string payload 0 b (!off + entry_header)
          (String.length payload);
        off := !off + entry_header + String.length payload)
      entries;
    Bytes.unsafe_to_string b

  let decode payload =
    let n = String.length payload in
    let rec go acc pos =
      if pos = n then Ok (List.rev acc)
      else if pos + entry_header > n then Error Errno.EINVAL
      else
        let req_id =
          Int32.to_int (String.get_int32_le payload pos) land 0xffffffff
        in
        let opcode = String.get_uint16_le payload (pos + 4) in
        let len =
          Int32.to_int (String.get_int32_le payload (pos + 6))
          land 0xffffffff
        in
        if pos + entry_header + len > n then Error Errno.EINVAL
        else
          let body = String.sub payload (pos + entry_header) len in
          go ((req_id, opcode, body) :: acc) (pos + entry_header + len)
    in
    go [] 0
end

let pp_reply ppf = function
  | Ok_unit -> Format.pp_print_string ppf "ok"
  | Ok_data d -> Format.fprintf ppf "ok (%d bytes)" (Data.length d)
  | Ok_stat { size; is_dir } ->
    Format.fprintf ppf "ok (%s, %d bytes)"
      (if is_dir then "dir" else "file")
      size
  | Ok_stats s -> Format.fprintf ppf "ok (stats, %d bytes)" (String.length s)
  | Ok_grant { version; cacheable; lease_s; size } ->
    Format.fprintf ppf "ok (grant v%d %s lease %.1fs, %d bytes)" version
      (if cacheable then "cacheable" else "uncacheable")
      lease_s size
  | Err e -> Format.fprintf ppf "error %s" (Errno.to_string e)
