lib/sched/sync.ml: Sched
