lib/stats/welford.ml: Format Stdlib
