lib/core/file.ml: Bytes Capfs_cache Capfs_disk Capfs_layout Capfs_sched Fsys List Printf Stdlib
