(* Tests for the Patsy instantiation: time synthesis, replay, the
   multiplexed volumes and the write-policy experiment harness. *)

module Sched = Capfs_sched.Sched
module Record = Capfs_trace.Record
module Synth = Capfs_trace.Synth
module Replay = Capfs_patsy.Replay
module Experiment = Capfs_patsy.Experiment
module Report = Capfs_patsy.Report
module Multiplex = Capfs_layout.Multiplex
module Layout = Capfs_layout.Layout
module Inode = Capfs_layout.Inode
module Lfs = Capfs_layout.Lfs
module Driver = Capfs_disk.Driver
module Data = Capfs_disk.Data

(* The Layout record is result-typed now; tests treat failure as fatal. *)
let ok = Capfs_core.Errno.ok_exn
let alloc_inode l ~kind = ok (l.Layout.alloc_inode ~kind)
let get_inode l ino = ok (l.Layout.get_inode ino)
let write_blocks l ups = ok (l.Layout.write_blocks ups)
let read_block l f i = ok (l.Layout.read_block f i)
let truncate_l l f ~blocks = ok (l.Layout.truncate f ~blocks)
let adopt_l l f ~blocks = ok (l.Layout.adopt f ~blocks)
let free_inode l ino = ok (l.Layout.free_inode ino)
let sync_l l = ok (l.Layout.sync ())

(* a fast config for tests: tiny cache, 2 disks, 1 bus *)
let test_config policy =
  {
    (Experiment.default policy) with
    Experiment.ndisks = 2;
    nbuses = 1;
    cache_mb = 4;
    nvram_mb = 1;
    seed = 7;
  }

let small_trace ?(seed = 3) ?(duration = 120.) () =
  Synth.generate ~seed ~duration
    { Synth.sprite_1a with Synth.clients = 4; files = 60; dirs = 4 }

(* Time synthesis *)

let test_synthesize_times_equidistant () =
  let mk time op = { Record.time; client = 1; op } in
  let path = "/f" in
  let records =
    [|
      mk 10. (Record.Open { path; mode = Record.Write_only });
      mk Record.no_time (Record.Write { path; offset = 0; bytes = 100 });
      mk Record.no_time (Record.Write { path; offset = 100; bytes = 100 });
      mk Record.no_time (Record.Write { path; offset = 200; bytes = 100 });
      mk 14. (Record.Close { path });
    |]
  in
  (match Replay.synthesize_times records with
  | [| _; w1; w2; w3; _ |] ->
    Alcotest.(check (float 1e-9)) "w1" 11. w1.Record.time;
    Alcotest.(check (float 1e-9)) "w2" 12. w2.Record.time;
    Alcotest.(check (float 1e-9)) "w3" 13. w3.Record.time
  | _ -> Alcotest.fail "record count changed");
  (* the input array — possibly shared across domains — is untouched *)
  Alcotest.(check bool) "input not mutated" false (Record.has_time records.(1))

let test_synthesize_times_leftovers_inherit () =
  let mk time op = { Record.time; client = 1; op } in
  let records =
    [|
      mk 5. (Record.Stat { path = "/x" });
      mk Record.no_time (Record.Truncate { path = "/y"; size = 0 });
      mk 9. (Record.Stat { path = "/z" });
    |]
  in
  match Replay.synthesize_times records with
  | [| _; t; _ |] -> Alcotest.(check (float 1e-9)) "inherits prev" 5. t.Record.time
  | _ -> Alcotest.fail "record count changed"

let test_synthesize_preserves_order_and_count () =
  let records = small_trace () in
  let out = Replay.synthesize_times records in
  Alcotest.(check int) "count" (Array.length records) (Array.length out);
  Array.iter
    (fun r ->
      if not (Record.has_time r) then
        Alcotest.failf "record still untimed: %a" Record.pp r)
    out

(* Replay over a full simulated instance *)

let run_replay ?(config = test_config Experiment.Ups) trace =
  Experiment.run config ~trace:(Capfs_trace.Source.of_array trace)

let test_replay_executes_all_operations () =
  let trace = small_trace () in
  let o = run_replay trace in
  Alcotest.(check int) "every record dispatched" (Array.length trace)
    o.Experiment.replay.Replay.operations;
  if o.Experiment.replay.Replay.errors * 10 > Array.length trace then
    Alcotest.failf "too many errors: %d of %d"
      o.Experiment.replay.Replay.errors (Array.length trace)

let test_replay_takes_trace_time () =
  let trace = small_trace ~duration:120. () in
  let o = run_replay trace in
  let elapsed = o.Experiment.replay.Replay.elapsed in
  if elapsed < 30. || elapsed > 600. then
    Alcotest.failf "simulated span %.1f implausible for a 120 s trace" elapsed

let test_replay_deterministic () =
  let trace = small_trace () in
  let o1 = run_replay trace and o2 = run_replay trace in
  Alcotest.(check int) "ops" o1.Experiment.replay.Replay.operations
    o2.Experiment.replay.Replay.operations;
  Alcotest.(check (float 1e-12)) "identical mean latency"
    (Capfs_stats.Sample_set.mean o1.Experiment.replay.Replay.latency)
    (Capfs_stats.Sample_set.mean o2.Experiment.replay.Replay.latency);
  Alcotest.(check int) "identical flush traffic" o1.Experiment.blocks_flushed
    o2.Experiment.blocks_flushed

let test_replay_windows_cover_run () =
  let trace = small_trace ~duration:120. () in
  let o =
    Experiment.run (test_config Experiment.Ups)
      ~trace:(Capfs_trace.Source.of_array trace)
  in
  let windows =
    Capfs_stats.Interval.windows o.Experiment.replay.Replay.windows
  in
  (* 120 s at a 900 s window: one window *)
  Alcotest.(check int) "one window" 1 (List.length windows);
  let total =
    List.fold_left
      (fun n w -> n + Capfs_stats.Welford.count w.Capfs_stats.Interval.summary)
      0 windows
  in
  Alcotest.(check int) "all ops in windows"
    o.Experiment.replay.Replay.operations total

(* Policy behaviour on the shared trace *)

let test_ups_writes_less_than_write_delay () =
  let trace = small_trace ~duration:240. () in
  let src = Capfs_trace.Source.of_array trace in
  let wd = Experiment.run (test_config Experiment.Write_delay) ~trace:src in
  let ups = Experiment.run (test_config Experiment.Ups) ~trace:src in
  if ups.Experiment.blocks_flushed >= wd.Experiment.blocks_flushed then
    Alcotest.failf "write saving failed: ups flushed %d, write-delay %d"
      ups.Experiment.blocks_flushed wd.Experiment.blocks_flushed;
  if ups.Experiment.writes_absorbed <= wd.Experiment.writes_absorbed then
    Alcotest.failf "ups should absorb more (%d vs %d)"
      ups.Experiment.writes_absorbed wd.Experiment.writes_absorbed

let test_nvram_bounds_dirty_data () =
  let trace = small_trace ~duration:240. () in
  let o =
    Experiment.run (test_config Experiment.Nvram_whole)
      ~trace:(Capfs_trace.Source.of_array trace)
  in
  (* 1 MB NVRAM = 256 blocks: the nvram_used stat must never exceed it *)
  match Capfs_stats.Registry.find o.Experiment.registry "cache.nvram_used" with
  | Some st ->
    if Capfs_stats.Welford.max (Capfs_stats.Stat.welford st) > 256. then
      Alcotest.fail "NVRAM budget exceeded"
  | None -> Alcotest.fail "nvram_used stat missing"

let test_all_policies_complete () =
  let trace = small_trace ~duration:60. () in
  List.iter
    (fun policy ->
      let o =
        Experiment.run (test_config policy)
          ~trace:(Capfs_trace.Source.of_array trace)
      in
      Alcotest.(check int)
        (Experiment.policy_name policy ^ " completes")
        (Array.length trace)
        o.Experiment.replay.Replay.operations)
    Experiment.all_policies

(* Multiplex *)

let test_multiplex_routes_by_ino () =
  let s = Sched.create ~clock:`Virtual () in
  ignore
    (Sched.spawn s (fun () ->
         let vol v =
           let drv =
             Driver.create s
               (Driver.mem_transport ~sector_bytes:512 ~total_sectors:8192 s ())
           in
           Lfs.format_and_mount
             ~config:
               {
                 Lfs.default_config with
                 Lfs.seg_blocks = 16;
                 checkpoint_blocks = 8;
                 first_ino = v + 1;
                 ino_stride = 2;
               }
             s drv ~block_bytes:4096
         in
         let volumes = [| vol 0; vol 1 |] in
         let m = Multiplex.layout volumes in
         let a = alloc_inode m ~kind:Inode.Regular in
         let b = alloc_inode m ~kind:Inode.Regular in
         (* round-robin: volume 0 mints odd inos (1,3,..), volume 1 even *)
         Alcotest.(check int) "first ino" 1 a.Inode.ino;
         Alcotest.(check int) "second ino" 2 b.Inode.ino;
         write_blocks m
           [ (a.Inode.ino, 0, Data.of_string (String.make 4096 'a'));
             (b.Inode.ino, 0, Data.of_string (String.make 4096 'b')) ];
         Alcotest.(check string) "a data" (String.make 4096 'a')
           (Data.to_string (read_block m a 0));
         Alcotest.(check string) "b data" (String.make 4096 'b')
           (Data.to_string (read_block m b 0));
         (* each volume holds exactly its own file *)
         Alcotest.(check bool) "a on vol0" true
           (get_inode volumes.(0) 1 <> None);
         Alcotest.(check bool) "a not on vol1" true
           (get_inode volumes.(1) 1 = None)));
  Sched.run s

(* Report plumbing *)

let test_report_cdf_is_monotone () =
  let trace = small_trace () in
  let o = run_replay trace in
  let series = Report.cdf_series o.Experiment.replay in
  let rec check = function
    | (v1, q1) :: ((v2, q2) :: _ as rest) ->
      if v2 < v1 -. 1e-12 || q2 < q1 -. 1e-12 then
        Alcotest.fail "CDF must be monotone";
      check rest
    | _ -> ()
  in
  check series;
  (match List.rev series with
  | (_, q_last) :: _ -> Alcotest.(check (float 1e-9)) "ends at 1" 1. q_last
  | [] -> Alcotest.fail "empty series");
  let cache_frac, rot_frac = Report.boundary_fractions o.Experiment.replay in
  if cache_frac > rot_frac +. 1e-12 then
    Alcotest.fail "2ms fraction cannot exceed 17ms fraction"

let test_adopted_files_cost_disk_reads () =
  (* a trace that only reads a pre-existing file: the first read must
     pay disk time (synthesized blocks are on disk, not in cache) *)
  let mk time op = { Record.time; client = 1; op } in
  let trace =
    [|
      mk 0.1 (Record.Open { path = "/d0/old"; mode = Record.Read_only });
      mk Record.no_time (Record.Read { path = "/d0/old"; offset = 0; bytes = 8192 });
      mk 0.5 (Record.Close { path = "/d0/old" });
    |]
  in
  let o = run_replay trace in
  Alcotest.(check int) "no errors" 0 o.Experiment.replay.Replay.errors;
  let misses =
    match Capfs_stats.Registry.find o.Experiment.registry "cache.misses" with
    | Some st -> Capfs_stats.Stat.count st
    | None -> 0
  in
  if misses = 0 then Alcotest.fail "pre-existing file should miss the cache"

let test_clean_trace_replays_without_errors () =
  (* a well-formed trace — every path created before use — must replay
     with zero errors and an empty per-kind breakdown *)
  let mk time op = { Record.time; client = 1; op } in
  let path = "/d0/fresh" in
  let trace =
    [|
      mk 0.1 (Record.Open { path; mode = Record.Write_only });
      mk Record.no_time (Record.Write { path; offset = 0; bytes = 4096 });
      mk Record.no_time (Record.Write { path; offset = 4096; bytes = 4096 });
      mk 0.5 (Record.Close { path });
      mk 0.6 (Record.Open { path; mode = Record.Read_only });
      mk Record.no_time (Record.Read { path; offset = 0; bytes = 8192 });
      mk 0.9 (Record.Close { path });
      mk 1.0 (Record.Stat { path });
      mk 1.1 (Record.Delete { path });
    |]
  in
  let o = run_replay trace in
  Alcotest.(check int) "zero errors" 0 o.Experiment.replay.Replay.errors;
  Alcotest.(check (list (pair string int))) "no error kinds" []
    o.Experiment.replay.Replay.errors_by_kind

let test_errors_by_kind_sums_to_errors () =
  let o = run_replay (small_trace ()) in
  let total =
    List.fold_left
      (fun n (_, c) -> n + c)
      0 o.Experiment.replay.Replay.errors_by_kind
  in
  Alcotest.(check int) "kinds account for every error"
    o.Experiment.replay.Replay.errors total;
  List.iter
    (fun (kind, c) ->
      if c <= 0 then Alcotest.failf "kind %s reported with count %d" kind c)
    o.Experiment.replay.Replay.errors_by_kind

(* Fleet: the parallel experiment runner *)

module Fleet = Capfs_patsy.Fleet

let fleet_pairs =
  [
    ("sprite-1a", Experiment.Ups);
    ("sprite-1a", Experiment.Write_delay);
    ("sprite-1b", Experiment.Ups);
    ("sprite-1b", Experiment.Nvram_whole);
  ]

let fleet_gen name =
  Capfs_trace.Source.of_array ~name
    (Synth.generate ~seed:3 ~duration:90.
       { (Synth.profile_by_name name) with Synth.clients = 3; files = 40; dirs = 4 })

let test_fleet_parallel_matches_sequential () =
  (* same seeds => byte-identical figures regardless of the domain count *)
  let run jobs =
    Fleet.run_matrix ~jobs ~config:test_config ~gen:fleet_gen fleet_pairs
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check int) "result count" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Fleet.job_result) (b : Fleet.job_result) ->
      Alcotest.(check string) "deterministic ordering" a.Fleet.job.Fleet.label
        b.Fleet.job.Fleet.label;
      let oa = Fleet.outcome_exn a and ob = Fleet.outcome_exn b in
      Alcotest.(check int)
        (a.Fleet.job.Fleet.label ^ " ops")
        oa.Experiment.replay.Replay.operations
        ob.Experiment.replay.Replay.operations;
      Alcotest.(check (float 0.))
        (a.Fleet.job.Fleet.label ^ " mean latency")
        (Capfs_stats.Sample_set.mean oa.Experiment.replay.Replay.latency)
        (Capfs_stats.Sample_set.mean ob.Experiment.replay.Replay.latency);
      Alcotest.(check int)
        (a.Fleet.job.Fleet.label ^ " flushed")
        oa.Experiment.blocks_flushed ob.Experiment.blocks_flushed;
      Alcotest.(check int)
        (a.Fleet.job.Fleet.label ^ " absorbed")
        oa.Experiment.writes_absorbed ob.Experiment.writes_absorbed)
    seq par

let test_fleet_crash_does_not_wedge_pool () =
  (* one poisoned job (ndisks = 0 -> invalid_arg inside the worker):
     the pool must complete every other job and report the failure *)
  let good policy = test_config policy in
  let bad = { (test_config Experiment.Ups) with Experiment.ndisks = 0 } in
  let jobs_list =
    [
      { Fleet.label = "ok-1"; trace = "sprite-1a"; config = good Experiment.Ups };
      { Fleet.label = "boom"; trace = "sprite-1a"; config = bad };
      { Fleet.label = "ok-2"; trace = "sprite-1a";
        config = good Experiment.Write_delay };
    ]
  in
  let results = Fleet.run_jobs ~jobs:2 ~gen:fleet_gen jobs_list in
  Alcotest.(check int) "all jobs reported" 3 (List.length results);
  (match Fleet.failures results with
  | [ (job, Fleet.Crashed (Invalid_argument _)) ] ->
    Alcotest.(check string) "failed job" "boom" job.Fleet.label
  | fs -> Alcotest.failf "expected 1 crashed failure, got %d" (List.length fs));
  List.iter
    (fun (r : Fleet.job_result) ->
      if r.Fleet.job.Fleet.label <> "boom" then
        match r.Fleet.result with
        | Ok o ->
          if o.Experiment.replay.Replay.operations = 0 then
            Alcotest.failf "%s replayed nothing" r.Fleet.job.Fleet.label
        | Error e ->
          Alcotest.failf "%s should have succeeded: %s" r.Fleet.job.Fleet.label
            (Format.asprintf "%a" Fleet.pp_failure e))
    results

let test_fleet_gen_failure_is_an_error () =
  let gen name =
    if name = "no-such-trace" then failwith "cannot generate" else fleet_gen name
  in
  let results =
    Fleet.run_jobs ~jobs:2 ~gen
      [
        { Fleet.label = "missing"; trace = "no-such-trace";
          config = test_config Experiment.Ups };
        { Fleet.label = "fine"; trace = "sprite-1a";
          config = test_config Experiment.Ups };
      ]
  in
  (match (List.nth results 0).Fleet.result with
  | Error (Fleet.Crashed (Failure _)) -> ()
  | Ok _ | Error _ -> Alcotest.fail "gen failure must surface as Error");
  match (List.nth results 1).Fleet.result with
  | Ok _ -> ()
  | Error e ->
    Alcotest.failf "good job failed: %s"
      (Format.asprintf "%a" Fleet.pp_failure e)

(* {2 Streamed replay: byte-identical to the array path}

   [Replay.run] over a cursor-backed source must produce the
   same result as the array path on the same records — same synthesized
   times, same fibre spawn order, same interleaving, same stats. The
   synthetic profiles leave I/O times unrecorded, so these traces
   exercise the streaming holdback time synthesis, not just pass-through. *)

module Source = Capfs_trace.Source

(* wrap an array as a cursor-backed source: forces the streaming path *)
let streamed_of records =
  Source.of_fn ~name:"streamed" (fun () ->
      let i = ref 0 in
      fun () ->
        if !i >= Array.length records then None
        else begin
          let r = records.(!i) in
          incr i;
          Some r
        end)

let outcome_fingerprint (o : Experiment.outcome) =
  Printf.sprintf "ops=%d errs=%d skip=%d elapsed=%.9f lat_n=%d lat_mean=%.12g flushed=%d absorbed=%d hit=%.12g"
    o.Experiment.replay.Replay.operations
    o.Experiment.replay.Replay.errors
    o.Experiment.replay.Replay.skipped_ops
    o.Experiment.replay.Replay.elapsed
    (Capfs_stats.Sample_set.count o.Experiment.replay.Replay.latency)
    (Capfs_stats.Sample_set.mean o.Experiment.replay.Replay.latency)
    o.Experiment.blocks_flushed
    o.Experiment.writes_absorbed
    o.Experiment.cache_hit_rate

let test_streamed_replay_equals_array () =
  let records = small_trace ~duration:180. () in
  let arr = Experiment.run (test_config Experiment.Ups)
      ~trace:(Source.of_array records) in
  let strm = Experiment.run (test_config Experiment.Ups)
      ~trace:(streamed_of records) in
  Alcotest.(check string) "identical outcome"
    (outcome_fingerprint arr) (outcome_fingerprint strm)

let test_streamed_serial_replay_equals_array () =
  (* serial mode is what diffval runs: strict trace order either way *)
  let records = small_trace ~duration:120. () in
  let run trace =
    let sched = Sched.create ~seed:5 ~clock:`Virtual () in
    let out = ref None in
    ignore
      (Sched.spawn sched (fun () ->
           let client, _ =
             Experiment.build_instance sched (test_config Experiment.Ups)
           in
           out := Some (Replay.run ~serial:true client trace)));
    Sched.run sched;
    Option.get !out
  in
  let a = run (Source.of_array records) in
  let b = run (streamed_of records) in
  Alcotest.(check int) "ops" a.Replay.operations b.Replay.operations;
  Alcotest.(check int) "errors" a.Replay.errors b.Replay.errors;
  Alcotest.(check (float 0.)) "elapsed" a.Replay.elapsed b.Replay.elapsed;
  Alcotest.(check (float 0.)) "mean latency"
    (Capfs_stats.Sample_set.mean a.Replay.latency)
    (Capfs_stats.Sample_set.mean b.Replay.latency)

(* File-streaming round trips: save a trace, then replay it three ways —
   materialized load, line-streamed — and demand identical outcomes. *)

let with_temp_trace save records f =
  let path = Filename.temp_file "capfs_stream_test" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      save path records;
      f path)

let test_sprite_file_stream_equals_load () =
  let records = small_trace ~duration:120. () in
  with_temp_trace Capfs_trace.Sprite_format.save records (fun path ->
      let loaded = Capfs_trace.Sprite_format.load path in
      let arr = Experiment.run (test_config Experiment.Write_delay)
          ~trace:(Source.of_array loaded) in
      let strm = Experiment.run (test_config Experiment.Write_delay)
          ~trace:(Source.sprite_file path) in
      Alcotest.(check string) "identical outcome"
        (outcome_fingerprint arr) (outcome_fingerprint strm))

let test_coda_file_stream_equals_load () =
  let records = small_trace ~duration:120. () in
  with_temp_trace Capfs_trace.Coda_format.save records (fun path ->
      let loaded = Capfs_trace.Coda_format.load path in
      let arr = Experiment.run (test_config Experiment.Ups)
          ~trace:(Source.of_array loaded) in
      let strm = Experiment.run (test_config Experiment.Ups)
          ~trace:(Source.coda_file path) in
      Alcotest.(check string) "identical outcome"
        (outcome_fingerprint arr) (outcome_fingerprint strm))

let test_source_helpers () =
  let records = small_trace ~duration:60. () in
  let s = streamed_of records in
  Alcotest.(check int) "length drains a pass" (Array.length records)
    (Source.length s);
  Alcotest.(check bool) "cursor-backed has no array" true
    (Source.as_array s = None);
  let drained = Source.to_array s in
  Alcotest.(check int) "to_array drains all" (Array.length records)
    (Array.length drained);
  Array.iteri
    (fun i r -> if r != records.(i) then Alcotest.fail "record identity") 
    drained;
  let lazy_forced = ref false in
  let ls =
    Source.of_lazy (lazy (lazy_forced := true; records))
  in
  Alcotest.(check bool) "lazy not forced yet" false !lazy_forced;
  ignore (Source.as_array ls);
  Alcotest.(check bool) "as_array forces" true !lazy_forced

let suite =
  [
    Alcotest.test_case "synthesize equidistant" `Quick
      test_synthesize_times_equidistant;
    Alcotest.test_case "synthesize leftovers" `Quick
      test_synthesize_times_leftovers_inherit;
    Alcotest.test_case "synthesize preserves order" `Quick
      test_synthesize_preserves_order_and_count;
    Alcotest.test_case "replay executes all" `Quick
      test_replay_executes_all_operations;
    Alcotest.test_case "replay takes trace time" `Quick
      test_replay_takes_trace_time;
    Alcotest.test_case "replay deterministic" `Quick test_replay_deterministic;
    Alcotest.test_case "streamed replay equals array" `Quick
      test_streamed_replay_equals_array;
    Alcotest.test_case "streamed serial equals array" `Quick
      test_streamed_serial_replay_equals_array;
    Alcotest.test_case "sprite file stream equals load" `Quick
      test_sprite_file_stream_equals_load;
    Alcotest.test_case "coda file stream equals load" `Quick
      test_coda_file_stream_equals_load;
    Alcotest.test_case "source helpers" `Quick test_source_helpers;
    Alcotest.test_case "replay windows" `Quick test_replay_windows_cover_run;
    Alcotest.test_case "ups writes less" `Quick
      test_ups_writes_less_than_write_delay;
    Alcotest.test_case "nvram bounded" `Quick test_nvram_bounds_dirty_data;
    Alcotest.test_case "all policies complete" `Quick
      test_all_policies_complete;
    Alcotest.test_case "multiplex routes by ino" `Quick
      test_multiplex_routes_by_ino;
    Alcotest.test_case "report cdf monotone" `Quick test_report_cdf_is_monotone;
    Alcotest.test_case "clean trace zero errors" `Quick
      test_clean_trace_replays_without_errors;
    Alcotest.test_case "errors_by_kind sums" `Quick
      test_errors_by_kind_sums_to_errors;
    Alcotest.test_case "adopted files cost reads" `Quick
      test_adopted_files_cost_disk_reads;
    Alcotest.test_case "fleet parallel == sequential" `Quick
      test_fleet_parallel_matches_sequential;
    Alcotest.test_case "fleet crash does not wedge" `Quick
      test_fleet_crash_does_not_wedge_pool;
    Alcotest.test_case "fleet gen failure is Error" `Quick
      test_fleet_gen_failure_is_an_error;
  ]
