(** Hierarchical namespace: path resolution and directory mutation.

    Keeps the authoritative in-core directory mirror and writes every
    change through {!Dir} so the on-disk image stays parseable (PFS) and
    the I/O is charged (Patsy). Symbolic links are followed during
    resolution, up to a fixed depth. *)

exception Not_found_path of string
exception Already_exists of string
exception Not_a_directory of string
exception Is_a_directory of string
exception Not_empty of string
exception Symlink_loop of string

type t

val create : Fsys.t -> File_table.t -> t

(** [resolve t path] walks the path (following symlinks) to the inode
    number. Raises {!Not_found_path} / {!Not_a_directory} /
    {!Symlink_loop}. *)
val resolve : t -> string -> int

val resolve_opt : t -> string -> int option

(** [entries t dir_ino] lists a directory (readdir). *)
val entries : t -> int -> Dir.entry list

(** [lookup t ~dir ~name] finds one entry without walking a path. *)
val lookup : t -> dir:int -> name:string -> Dir.entry option

(** [add_entry t ~parent ~name ~ino ~kind] inserts a dirent (persisting
    the directory). Raises {!Already_exists}. *)
val add_entry :
  t -> parent:int -> name:string -> ino:int -> kind:Capfs_layout.Inode.kind ->
  unit

(** [remove_entry t ~parent ~name] removes and returns the dirent. *)
val remove_entry : t -> parent:int -> name:string -> Dir.entry

(** [split_parent t path] resolves the dirname to its directory inode
    and returns it with the basename. *)
val split_parent : t -> string -> int * string

(** Register / read a symlink target. Targets live in the in-core
    table (authoritative) and in the link's file data (persistence). *)
val set_symlink_target : t -> int -> string -> unit

val symlink_target : t -> int -> string option

(** Normalize a path: leading slash, no trailing slash, no empties. *)
val normalize : string -> string
