module Sched = Capfs_sched.Sched
module Stats = Capfs_stats
module Counter = Capfs_stats.Counter
module Tracer = Capfs_obs.Tracer
module Ev = Capfs_obs.Event

type t = {
  dname : string;
  sched : Sched.t;
  model : Disk_model.t;
  bus : Bus.t;
  c_seek : Counter.t;
  c_transfer : Counter.t;
  c_service : Counter.t;
  c_cache_hit : Counter.t;
  c_rotation : Counter.t;
  (* mechanical state *)
  mutable head_cyl : int;
  mutable head : int;
  (* read cache window: LBA-contiguous [cache_start, cache_start+cache_len) *)
  mutable cache_start : int;
  mutable cache_len : int;
  (* optional real sector store: lba -> sector bytes *)
  store : (int, bytes) Hashtbl.t option;
}

let create ?registry ?(name = "disk") ?(backing = false) sched model bus =
  let c_seek, c_transfer, c_service, c_cache_hit, c_rotation =
    match registry with
    | Some r ->
      List.iter
        (fun s -> Stats.Registry.register r (Stats.Stat.scalar (name ^ "." ^ s)))
        [ "seek"; "transfer"; "service"; "cache_hit" ];
      (* the paper's "disk rotational delay statistics" plug-in: a
         histogram over one revolution *)
      Stats.Registry.register r
        (Stats.Stat.with_histogram (name ^ ".rotation")
           (Stats.Histogram.linear ~lo:0. ~hi:(60. /. model.Disk_model.rpm)
              ~buckets:30));
      let c s = Stats.Registry.counter r (name ^ "." ^ s) in
      (c "seek", c "transfer", c "service", c "cache_hit", c "rotation")
    | None ->
      Counter.(null, null, null, null, null)
  in
  {
    dname = name;
    sched;
    model;
    bus;
    c_seek;
    c_transfer;
    c_service;
    c_cache_hit;
    c_rotation;
    head_cyl = 0;
    head = 0;
    cache_start = 0;
    cache_len = 0;
    store = (if backing then Some (Hashtbl.create 4096) else None);
  }

let name t = t.dname
let model t = t.model
let capacity_sectors t = Geometry.capacity_sectors t.model.Disk_model.geometry
let current_cylinder t = t.head_cyl

let geometry t = t.model.Disk_model.geometry
let sector_bytes t = (geometry t).Geometry.sector_bytes
let spt t = (geometry t).Geometry.sectors_per_track
let sector_time t = Disk_model.sector_time t.model

(* Angular position of the platter in sector units, as a pure function of
   simulated time: the platter never stops spinning. *)
let angle_now t =
  let rot = Disk_model.rotation_time t.model in
  let phase = Float.rem (Sched.now t.sched) rot in
  phase /. sector_time t

(* Seconds until the start of sector slot [target] passes under the head. *)
let rotational_delay t ~target =
  let a = angle_now t in
  let d = Float.rem (float_of_int target -. a +. float_of_int (spt t))
            (float_of_int (spt t)) in
  d *. sector_time t

let in_cache t ~lba ~sectors =
  t.cache_len > 0 && lba >= t.cache_start
  && lba + sectors <= t.cache_start + t.cache_len

let cache_capacity_sectors t =
  t.model.Disk_model.cache.Disk_model.cache_bytes / sector_bytes t

let set_cache_window t ~start ~len =
  let cap = cache_capacity_sectors t in
  if cap <= 0 then begin
    t.cache_start <- 0;
    t.cache_len <- 0
  end
  else if len <= cap then begin
    t.cache_start <- start;
    t.cache_len <- len
  end
  else begin
    (* keep the tail: the most recently transferred sectors *)
    t.cache_start <- start + len - cap;
    t.cache_len <- cap
  end

let invalidate_cache_overlap t ~lba ~sectors =
  if t.cache_len > 0 then begin
    let cs = t.cache_start and ce = t.cache_start + t.cache_len in
    let rs = lba and re_ = lba + sectors in
    if rs < ce && re_ > cs then begin
      t.cache_start <- 0;
      t.cache_len <- 0
    end
  end

(* Move the arm/heads to [pos] and wait for its sector slot; records
   the component times into the seek/rotation stats. Seek and head
   switch overlap
   (the arm moves while the head multiplexer settles). *)
let position t (pos : Geometry.pos) =
  let seek_t =
    if pos.Geometry.cylinder = t.head_cyl then 0.
    else
      Seek.time t.model.Disk_model.seek
        ~distance:(abs (pos.Geometry.cylinder - t.head_cyl))
  in
  let switch_t =
    if pos.Geometry.head = t.head then 0. else t.model.Disk_model.head_switch
  in
  let positioning = Stdlib.max seek_t switch_t in
  if positioning > 0. then Sched.sleep t.sched positioning;
  t.head_cyl <- pos.Geometry.cylinder;
  t.head <- pos.Geometry.head;
  Counter.record t.c_seek positioning;
  let rot = rotational_delay t ~target:pos.Geometry.angle in
  if rot > 0. then Sched.sleep t.sched rot;
  Counter.record t.c_rotation rot;
  let dur = positioning +. rot in
  if dur > 0. then begin
    let tr = Sched.tracer t.sched in
    if Tracer.enabled tr then
      Tracer.emit tr ~time:(Sched.now t.sched)
        (Ev.Disk_seek
           { disk = t.dname; cylinder = pos.Geometry.cylinder; dur })
  end

(* Media transfer of a whole request, chunked per track. *)
let mechanical t ~lba ~sectors =
  let g = geometry t in
  let spt = g.Geometry.sectors_per_track in
  let xfer_total = ref 0. in
  let rec go lba remaining =
    if remaining > 0 then begin
      let offset_in_track = lba mod spt in
      let chunk = Stdlib.min remaining (spt - offset_in_track) in
      position t (Geometry.pos_of_lba g lba);
      let xfer = float_of_int chunk *. sector_time t in
      Sched.sleep t.sched xfer;
      xfer_total := !xfer_total +. xfer;
      go (lba + chunk) (remaining - chunk)
    end
  in
  go lba sectors;
  Counter.record t.c_transfer !xfer_total

(* Real-content plumbing for backed disks. *)

let store_write t ~lba (data : Data.t) =
  match t.store with
  | None -> ()
  | Some store ->
    let sb = sector_bytes t in
    let nsec = Data.length data / sb in
    for i = 0 to nsec - 1 do
      (* sector-sized subs of a block-aligned gather normalise to the
         underlying Real/Sim slice; a misaligned gather is flattened *)
      match Data.sub data ~pos:(i * sb) ~len:sb with
      | Data.Real b -> Hashtbl.replace store (lba + i) b
      | Data.Sim _ -> Hashtbl.remove store (lba + i)
      | (Data.Gather _ | Data.Slice _) as g ->
        (* device boundary: the store outlives the request, so slab
           slices must be copied off the (recyclable) arena cell *)
        Hashtbl.replace store (lba + i) (Bytes.of_string (Data.to_string g))
    done

let store_read t ~lba ~sectors =
  match t.store with
  | None -> Data.sim (sectors * sector_bytes t)
  | Some store ->
    let sb = sector_bytes t in
    let out = Bytes.make (sectors * sb) '\000' in
    for i = 0 to sectors - 1 do
      match Hashtbl.find_opt store (lba + i) with
      | Some b -> Bytes.blit b 0 out (i * sb) sb
      | None -> ()
    done;
    Data.Real out

let store_snapshot t =
  match t.store with
  | None -> None
  | Some store ->
    let out = Array.make (Hashtbl.length store) (0, Bytes.empty) in
    let i = ref 0 in
    Hashtbl.iter
      (fun lba b ->
        out.(!i) <- (lba, Bytes.copy b);
        incr i)
      store;
    (* stable order, so a snapshot is comparable across runs *)
    Array.sort (fun (a, _) (b, _) -> compare a b) out;
    Some out

let store_restore t sectors =
  match t.store with
  | None -> invalid_arg "Sim_disk.store_restore: disk has no backing store"
  | Some store ->
    Hashtbl.reset store;
    Array.iter (fun (lba, b) -> Hashtbl.replace store lba (Bytes.copy b)) sectors

let read_ahead t ~lba ~sectors ~queue_empty =
  let ra = t.model.Disk_model.cache.Disk_model.read_ahead_bytes in
  if ra > 0 && queue_empty () then begin
    let extra =
      Stdlib.min (ra / sector_bytes t) (capacity_sectors t - (lba + sectors))
    in
    if extra > 0 then begin
      (* The platter keeps turning under the head; the extra sectors cost
         media time but no new positioning. *)
      Sched.sleep t.sched (float_of_int extra *. sector_time t);
      set_cache_window t ~start:lba ~len:(sectors + extra)
    end
    else set_cache_window t ~start:lba ~len:sectors
  end
  else set_cache_window t ~start:lba ~len:sectors

let check_bounds t (req : Iorequest.t) =
  if Iorequest.last_lba req > capacity_sectors t then
    invalid_arg
      (Printf.sprintf "%s: request [%d, %d) beyond capacity %d" t.dname
         req.Iorequest.lba (Iorequest.last_lba req) (capacity_sectors t))

let execute t ~queue_empty (req : Iorequest.t) =
  check_bounds t req;
  let start = Sched.now t.sched in
  req.Iorequest.started_at <- start;
  Sched.sleep t.sched t.model.Disk_model.controller_overhead;
  let bytes = req.Iorequest.sectors * sector_bytes t in
  (match req.Iorequest.op with
  | Iorequest.Read ->
    let hit = in_cache t ~lba:req.Iorequest.lba ~sectors:req.Iorequest.sectors in
    Counter.record t.c_cache_hit (if hit then 1. else 0.);
    if hit then begin
      (* the drive keeps prefetching while serving from its buffer, so a
         sequential stream of hits slides the window forward; the media
         time is hidden in the idle gaps between host requests *)
      if queue_empty () && t.cache_len > 0 then begin
        let window_end = t.cache_start + t.cache_len in
        let ra = t.model.Disk_model.cache.Disk_model.read_ahead_bytes in
        let extra =
          Stdlib.min (ra / sector_bytes t) (capacity_sectors t - window_end)
        in
        if extra > 0 then
          set_cache_window t ~start:t.cache_start ~len:(t.cache_len + extra)
      end
    end
    else begin
      mechanical t ~lba:req.Iorequest.lba ~sectors:req.Iorequest.sectors;
      read_ahead t ~lba:req.Iorequest.lba ~sectors:req.Iorequest.sectors
        ~queue_empty
    end;
    req.Iorequest.data <-
      Some (store_read t ~lba:req.Iorequest.lba ~sectors:req.Iorequest.sectors);
    Bus.transfer t.bus ~bytes;
    Iorequest.complete t.sched req
  | Iorequest.Write ->
    Bus.transfer t.bus ~bytes;
    invalidate_cache_overlap t ~lba:req.Iorequest.lba
      ~sectors:req.Iorequest.sectors;
    (match req.Iorequest.data with
    | Some d -> store_write t ~lba:req.Iorequest.lba d
    | None -> ());
    let immediate =
      t.model.Disk_model.cache.Disk_model.immediate_report
      && bytes <= t.model.Disk_model.cache.Disk_model.cache_bytes
    in
    if immediate then Iorequest.complete t.sched req;
    mechanical t ~lba:req.Iorequest.lba ~sectors:req.Iorequest.sectors;
    if not immediate then Iorequest.complete t.sched req);
  Counter.record t.c_service (Sched.now t.sched -. start);
  let tr = Sched.tracer t.sched in
  if Tracer.enabled tr then
    Tracer.emit tr ~time:(Sched.now t.sched)
      (Ev.Disk_service
         {
           disk = t.dname;
           lba = req.Iorequest.lba;
           sectors = req.Iorequest.sectors;
           write = req.Iorequest.op = Iorequest.Write;
           dur = Sched.now t.sched -. start;
         })
