examples/quickstart.mli:
