(* Tests for Sprite-style client caching (the paper's §3 future work):
   local hits, network savings, sequential and concurrent write sharing,
   recalls and cache bounds. *)

module Sched = Capfs_sched.Sched
module Data = Capfs_disk.Data
module Driver = Capfs_disk.Driver
module Cache = Capfs_cache.Cache
module Lfs = Capfs_layout.Lfs
module Netlink = Capfs_ccache.Netlink
module Cc_server = Capfs_ccache.Cc_server
module Cc_client = Capfs_ccache.Cc_client

let run_fs f =
  let s = Sched.create ~clock:`Virtual () in
  ignore (Sched.spawn s (fun () -> f s));
  Sched.run s

let make_server s =
  let drv =
    Driver.create s
      (Driver.mem_transport ~sector_bytes:512 ~total_sectors:32768 s ())
  in
  let layout =
    Lfs.format_and_mount
      ~config:{ Lfs.default_config with Lfs.seg_blocks = 32;
                checkpoint_blocks = 16 }
      s drv ~block_bytes:4096
  in
  let fs =
    Capfs.Fsys.create
      ~cache_config:
        { (Cache.default_config ~capacity_blocks:256) with
          Cache.trigger = Cache.Demand }
      ~layout s
  in
  let client = Capfs.Client.create fs in
  let net = Netlink.ethernet_10 s in
  (Cc_server.create client net, net, client)

let prime server path contents =
  (* create the file server-side *)
  let c = ref (Cc_client.attach server ~client_id:99 ~cache_blocks:64) in
  Cc_client.open_ !c path Cc_server.Write;
  Cc_client.write !c path ~offset:0 (Data.of_string contents);
  Cc_client.close_ !c path

let test_local_cache_hits () =
  run_fs (fun s ->
      let server, _, _ = make_server s in
      prime server "/shared" (String.make 8192 's');
      let a = Cc_client.attach server ~client_id:1 ~cache_blocks:64 in
      Cc_client.open_ a "/shared" Cc_server.Read;
      ignore (Cc_client.read a "/shared" ~offset:0 ~bytes:8192);
      let remote_first = Cc_client.remote_reads a in
      ignore (Cc_client.read a "/shared" ~offset:0 ~bytes:8192);
      ignore (Cc_client.read a "/shared" ~offset:0 ~bytes:8192);
      Alcotest.(check int) "no more remote reads" remote_first
        (Cc_client.remote_reads a);
      Alcotest.(check int) "four local hits" 4 (Cc_client.local_hits a);
      Cc_client.close_ a "/shared")

let test_caching_reduces_network_traffic () =
  run_fs (fun s ->
      let server, net, _ = make_server s in
      prime server "/bigfile" (String.make 65536 'n');
      let a = Cc_client.attach server ~client_id:1 ~cache_blocks:64 in
      Cc_client.open_ a "/bigfile" Cc_server.Read;
      ignore (Cc_client.read a "/bigfile" ~offset:0 ~bytes:65536);
      let after_first = Netlink.bytes_carried net in
      for _ = 1 to 5 do
        ignore (Cc_client.read a "/bigfile" ~offset:0 ~bytes:65536)
      done;
      let after_rereads = Netlink.bytes_carried net in
      Alcotest.(check int) "re-reads move no bytes" after_first after_rereads;
      Cc_client.close_ a "/bigfile")

let test_sequential_write_sharing () =
  run_fs (fun s ->
      let server, _, _ = make_server s in
      prime server "/doc" "version one ";
      let a = Cc_client.attach server ~client_id:1 ~cache_blocks:64 in
      let b = Cc_client.attach server ~client_id:2 ~cache_blocks:64 in
      (* B reads and caches v1 *)
      Cc_client.open_ b "/doc" Cc_server.Read;
      let v1 = Cc_client.read b "/doc" ~offset:0 ~bytes:12 in
      Alcotest.(check string) "v1" "version one " (Data.to_string v1);
      Cc_client.close_ b "/doc";
      (* A rewrites the file (bumps the version) *)
      Cc_client.open_ a "/doc" Cc_server.Write;
      Cc_client.write a "/doc" ~offset:0 (Data.of_string "version two!");
      Cc_client.close_ a "/doc";
      (* B re-opens: its stale copy must be invalidated *)
      Cc_client.open_ b "/doc" Cc_server.Read;
      let v2 = Cc_client.read b "/doc" ~offset:0 ~bytes:12 in
      Alcotest.(check string) "fresh contents" "version two!"
        (Data.to_string v2);
      Cc_client.close_ b "/doc")

let test_concurrent_write_sharing_disables_caching () =
  run_fs (fun s ->
      let server, _, _ = make_server s in
      prime server "/log" (String.make 4096 '0');
      let writer = Cc_client.attach server ~client_id:1 ~cache_blocks:64 in
      let reader = Cc_client.attach server ~client_id:2 ~cache_blocks:64 in
      Cc_client.open_ writer "/log" Cc_server.Write;
      (* second open while a writer holds it: caching off *)
      Cc_client.open_ reader "/log" Cc_server.Read;
      Alcotest.(check int) "file marked uncacheable" 1
        (Cc_server.uncacheable_files server);
      (* the writer's writes go through; the reader sees them at once *)
      Cc_client.write writer "/log" ~offset:0 (Data.of_string "LIVE");
      let seen = Cc_client.read reader "/log" ~offset:0 ~bytes:4 in
      Alcotest.(check string) "read-through sees the write" "LIVE"
        (Data.to_string seen);
      (* and again: no stale cache in between *)
      Cc_client.write writer "/log" ~offset:0 (Data.of_string "MORE");
      let seen2 = Cc_client.read reader "/log" ~offset:0 ~bytes:4 in
      Alcotest.(check string) "still read-through" "MORE"
        (Data.to_string seen2);
      Cc_client.close_ writer "/log";
      Cc_client.close_ reader "/log")

let test_caching_resumes_after_sharing_ends () =
  run_fs (fun s ->
      let server, _, _ = make_server s in
      prime server "/f" (String.make 4096 'x');
      let a = Cc_client.attach server ~client_id:1 ~cache_blocks:64 in
      let b = Cc_client.attach server ~client_id:2 ~cache_blocks:64 in
      Cc_client.open_ a "/f" Cc_server.Write;
      Cc_client.open_ b "/f" Cc_server.Read;
      Cc_client.close_ a "/f";
      Cc_client.close_ b "/f";
      Alcotest.(check int) "sharing over" 0
        (Cc_server.uncacheable_files server);
      (* new open caches again *)
      Cc_client.open_ b "/f" Cc_server.Read;
      ignore (Cc_client.read b "/f" ~offset:0 ~bytes:4096);
      ignore (Cc_client.read b "/f" ~offset:0 ~bytes:4096);
      Alcotest.(check bool) "hits again" true (Cc_client.local_hits b > 0);
      Cc_client.close_ b "/f")

let test_delayed_writes_flush_on_close () =
  run_fs (fun s ->
      let server, _, fs_client = make_server s in
      let a = Cc_client.attach server ~client_id:1 ~cache_blocks:64 in
      Cc_client.open_ a "/delayed" Cc_server.Write;
      Cc_client.write a "/delayed" ~offset:0 (Data.of_string "buffered!");
      Alcotest.(check bool) "dirty locally" true (Cc_client.dirty_blocks a > 0);
      Cc_client.close_ a "/delayed";
      Alcotest.(check int) "clean after close" 0 (Cc_client.dirty_blocks a);
      (* visible server-side *)
      let d =
        Capfs.Client.read_exn fs_client ~client:50 "/delayed" ~offset:0 ~bytes:9
      in
      Alcotest.(check string) "at the server" "buffered!" (Data.to_string d))

let test_client_cache_bounded () =
  run_fs (fun s ->
      let server, _, _ = make_server s in
      prime server "/big" (String.make (64 * 4096) 'b');
      let a = Cc_client.attach server ~client_id:1 ~cache_blocks:8 in
      Cc_client.open_ a "/big" Cc_server.Read;
      ignore (Cc_client.read a "/big" ~offset:0 ~bytes:(64 * 4096));
      if Cc_client.cached_blocks a > 8 then
        Alcotest.failf "cache exceeded bound: %d" (Cc_client.cached_blocks a);
      Cc_client.close_ a "/big")

let test_network_time_is_charged () =
  run_fs (fun s ->
      let server, _, _ = make_server s in
      prime server "/timed" (String.make 8192 't');
      let a = Cc_client.attach server ~client_id:1 ~cache_blocks:64 in
      Cc_client.open_ a "/timed" Cc_server.Read;
      let t0 = Sched.now s in
      ignore (Cc_client.read a "/timed" ~offset:0 ~bytes:8192);
      let cold = Sched.now s -. t0 in
      let t1 = Sched.now s in
      ignore (Cc_client.read a "/timed" ~offset:0 ~bytes:8192);
      let warm = Sched.now s -. t1 in
      (* 8 KB at ~1.2 MB/s plus two RPC latencies: the cold read costs
         simulated milliseconds; the warm one is free *)
      if cold < 0.005 then Alcotest.failf "cold read too cheap: %.6f" cold;
      Alcotest.(check (float 1e-9)) "warm read free" 0. warm;
      Cc_client.close_ a "/timed")

(* Netlink.Frame: the real wire framing under the multi-client PFS
   server. The edge cases a socket actually produces: short reads
   mid-header and mid-payload, oversized length fields, torn frames,
   clean EOF, and interleaved out-of-order replies on one connection. *)

module Frame = Netlink.Frame

let errno = Alcotest.testable Capfs_core.Errno.pp ( = )

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

(* The exact bytes [Frame.write] puts on the wire, for byte-level
   corruption and dribbling. *)
let frame_bytes f =
  with_socketpair (fun a b ->
      (match Frame.write a f with
      | Ok () -> ()
      | Error e -> Alcotest.failf "frame_bytes: %s" (Capfs_core.Errno.to_string e));
      Unix.close a;
      let buf = Buffer.create 64 in
      let chunk = Bytes.create 4096 in
      let rec go () =
        let n = Unix.read b chunk 0 4096 in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        end
      in
      go ();
      Buffer.contents buf)

let check_frame msg (want : Frame.t) = function
  | Ok (Some (got : Frame.t)) ->
    Alcotest.(check int) (msg ^ ": req_id") want.Frame.req_id got.Frame.req_id;
    Alcotest.(check int) (msg ^ ": opcode") want.Frame.opcode got.Frame.opcode;
    Alcotest.(check string) (msg ^ ": payload") want.Frame.payload
      got.Frame.payload
  | Ok None -> Alcotest.failf "%s: unexpected EOF" msg
  | Error e -> Alcotest.failf "%s: %s" msg (Capfs_core.Errno.to_string e)

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      let f1 = { Frame.req_id = 7; opcode = 3; payload = "hello frame" } in
      let f2 = { Frame.req_id = 8; opcode = 5; payload = "" } in
      (match Frame.write a f1 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %s" (Capfs_core.Errno.to_string e));
      (match Frame.write a f2 with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %s" (Capfs_core.Errno.to_string e));
      Unix.close a;
      check_frame "first" f1 (Frame.read b);
      check_frame "second (empty payload)" f2 (Frame.read b);
      (* and after the last whole frame: a clean EOF, not an error *)
      match Frame.read b with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "expected EOF"
      | Error e -> Alcotest.failf "eof: %s" (Capfs_core.Errno.to_string e))

let test_frame_short_reads () =
  (* a dribbling writer: the frame arrives a few bytes at a time, with
     cuts inside the header and inside the payload. [read_sched] must
     reassemble it exactly (real clock: it parks on wait_readable). *)
  let f =
    { Frame.req_id = 42; opcode = 9; payload = String.init 100 Char.chr }
  in
  let bytes = frame_bytes f in
  with_socketpair (fun a b ->
      Unix.set_nonblock b;
      let s = Sched.create ~clock:`Real () in
      let got = ref None in
      ignore
        (Sched.spawn s ~name:"dribbler" (fun () ->
             let n = String.length bytes in
             let step = 3 in
             let off = ref 0 in
             while !off < n do
               let k = min step (n - !off) in
               ignore (Unix.write_substring a bytes !off k);
               off := !off + k;
               Sched.sleep s 0.002
             done));
      ignore
        (Sched.spawn s ~name:"reader" (fun () ->
             got := Some (Frame.read_sched s b)));
      Sched.run s;
      match !got with
      | Some r -> check_frame "dribbled" f r
      | None -> Alcotest.fail "reader did not finish")

let test_frame_oversized_payload () =
  with_socketpair (fun a b ->
      let f = { Frame.req_id = 1; opcode = 1; payload = String.make 200 'x' } in
      (match Frame.write a f with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write: %s" (Capfs_core.Errno.to_string e));
      (* the reader's cap is authoritative: a length field beyond it is
         refused before any allocation *)
      match Frame.read ~max_payload:64 b with
      | Error e ->
        Alcotest.check errno "oversized refused" Capfs_core.Errno.EINVAL e
      | Ok _ -> Alcotest.fail "oversized payload accepted")

let test_frame_bad_magic () =
  let f = { Frame.req_id = 3; opcode = 2; payload = "p" } in
  let bytes = Bytes.of_string (frame_bytes f) in
  Bytes.set bytes 0 '\xde';
  Bytes.set bytes 1 '\xad';
  with_socketpair (fun a b ->
      ignore (Unix.write a bytes 0 (Bytes.length bytes));
      Unix.close a;
      match Frame.read b with
      | Error e ->
        Alcotest.check errno "bad magic refused" Capfs_core.Errno.EINVAL e
      | Ok _ -> Alcotest.fail "bad magic accepted")

let test_frame_torn () =
  let f = { Frame.req_id = 5; opcode = 4; payload = "torn payload bytes" } in
  let bytes = frame_bytes f in
  let torn_at cut =
    with_socketpair (fun a b ->
        ignore (Unix.write_substring a bytes 0 cut);
        Unix.close a;
        match Frame.read b with
        | Error e ->
          Alcotest.check errno
            (Printf.sprintf "EOF after %d bytes is a torn frame" cut)
            Capfs_core.Errno.EIO e
        | Ok (Some _) -> Alcotest.failf "parsed a frame cut at %d" cut
        | Ok None -> Alcotest.failf "cut at %d read as clean EOF" cut)
  in
  (* mid-header and mid-payload *)
  torn_at 7;
  torn_at (Frame.header_bytes + 4)

let test_frame_interleaved_replies () =
  (* one connection, replies out of order: the req_id is the
     correlation key, exactly what the load generator pipelines on *)
  with_socketpair (fun a b ->
      let replies =
        [
          { Frame.req_id = 11; opcode = 2; payload = "second request's reply" };
          { Frame.req_id = 10; opcode = 1; payload = "first request's reply" };
          { Frame.req_id = 12; opcode = 3; payload = "third" };
        ]
      in
      List.iter
        (fun f ->
          match Frame.write a f with
          | Ok () -> ()
          | Error e -> Alcotest.failf "write: %s" (Capfs_core.Errno.to_string e))
        replies;
      Unix.close a;
      let by_id = Hashtbl.create 4 in
      let rec collect () =
        match Frame.read b with
        | Ok (Some f) ->
          Hashtbl.replace by_id f.Frame.req_id f;
          collect ()
        | Ok None -> ()
        | Error e -> Alcotest.failf "collect: %s" (Capfs_core.Errno.to_string e)
      in
      collect ();
      Alcotest.(check int) "all demuxed" 3 (Hashtbl.length by_id);
      List.iter
        (fun (want : Frame.t) ->
          match Hashtbl.find_opt by_id want.Frame.req_id with
          | Some got ->
            Alcotest.(check string) "payload by req_id" want.Frame.payload
              got.Frame.payload
          | None -> Alcotest.failf "req %d lost" want.Frame.req_id)
        replies)

let suite =
  [
    Alcotest.test_case "local cache hits" `Quick test_local_cache_hits;
    Alcotest.test_case "network traffic saved" `Quick
      test_caching_reduces_network_traffic;
    Alcotest.test_case "sequential write sharing" `Quick
      test_sequential_write_sharing;
    Alcotest.test_case "concurrent write sharing" `Quick
      test_concurrent_write_sharing_disables_caching;
    Alcotest.test_case "caching resumes" `Quick
      test_caching_resumes_after_sharing_ends;
    Alcotest.test_case "delayed writes flush on close" `Quick
      test_delayed_writes_flush_on_close;
    Alcotest.test_case "client cache bounded" `Quick test_client_cache_bounded;
    Alcotest.test_case "network time charged" `Quick
      test_network_time_is_charged;
    Alcotest.test_case "frame roundtrip + eof" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame short reads" `Quick test_frame_short_reads;
    Alcotest.test_case "frame oversized payload" `Quick
      test_frame_oversized_payload;
    Alcotest.test_case "frame bad magic" `Quick test_frame_bad_magic;
    Alcotest.test_case "frame torn" `Quick test_frame_torn;
    Alcotest.test_case "frame interleaved replies" `Quick
      test_frame_interleaved_replies;
  ]
