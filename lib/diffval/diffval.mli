(** Differential sim-vs-real validation: one workload, two engines,
    checked equivalence.

    The paper's central claim is that policy code tuned inside the Patsy
    simulator runs {e unchanged} in the on-line PFS half. This harness
    makes that a checked property: it replays the {e same} trace

    - through {b Patsy} — virtual time, simulated HP97560 behind the
      paper's driver/cache/LFS stack, with real backing stores so the
      volume can be remounted; and
    - through {b PFS} — real time, the very same driver/cache/LFS code
      over a real Unix backing file ({!Capfs_pfs.File_blockdev});

    then captures a {!Capfs_stats.Snapshot.t} of the policy-visible
    statistics from each half at the equivalent sync point (after the
    final whole-system sync), remounts both volumes cold to check they
    fsck clean, and diffs the two snapshots counter by counter within
    declared tolerances. See VALIDATION.md for the cut-and-paste
    contract this enforces, and EXPERIMENTS.md for a worked example. *)

(** How far apart one counter may be between the halves. *)
type tolerance =
  | Exact              (** identical observation counts required *)
  | Within of { rel : float; abs : float }
      (** pass iff [|a - b| <= max abs (rel * max |a| |b|)] *)
  | Informational
      (** reported in the diff but never gated — timing counters
          (waits, stalls, queue depths) measure the engine, not the
          policy, and virtual vs. wall-clock seconds are
          incommensurable *)

(** Built-in per-counter defaults, keyed by counter suffix
    (["hits"], ["flushed_blocks"], …). The authoritative, human-readable
    form of this table lives in VALIDATION.md; CI lints the two against
    each other. *)
val default_tolerances : (string * tolerance) list

(** [tolerance_for overrides key] resolves [key]'s tolerance: [overrides]
    first, then {!default_tolerances}, then a loose gating fallback. *)
val tolerance_for : (string * tolerance) list -> string -> tolerance

(** One compared counter. *)
type verdict = {
  v_key : string;       (** full stat key, e.g. ["cache.flushed_blocks"] *)
  v_patsy : int;        (** observation count in the simulator half *)
  v_pfs : int;          (** observation count in the on-line half *)
  v_tolerance : tolerance;
  v_ok : bool;          (** within tolerance (always true when
                            informational) *)
}

(** One engine's summary: replay totals, fsck state, snapshot. *)
type side = {
  s_clock : string;             (** ["virtual"] or ["real"] *)
  s_operations : int;
  s_errors : int;
  s_skipped : int;
  s_elapsed : float;            (** engine seconds, first to last op *)
  s_fsck_errors : string list;  (** empty iff the cold remount fsck'd clean *)
  s_recovered_inodes : int;
  s_snapshot : Capfs_stats.Snapshot.t;
}

type report = {
  r_trace : string;
  r_policy : string;
  r_plan : string;          (** fault plan in {!Capfs_fault.Plan.to_string}
                                form; [""] when empty *)
  r_speedup : float;
  r_skewed : bool;          (** a deliberate skew was applied to PFS *)
  r_patsy : side;
  r_pfs : side;
  r_only_patsy : string list;  (** policy-visible keys PFS never registered *)
  r_only_pfs : string list;    (** …and vice versa: both must be empty *)
  r_verdicts : verdict list;
  r_ok : bool;
      (** all gated verdicts in tolerance, no key drift, both halves
          fsck-clean *)
}

type config = {
  base : Capfs_patsy.Experiment.config;
      (** shared engine configuration (policy, cache/NVRAM sizes, seed,
          coalescing, fault plan). [ndisks]/[nbuses] should stay 1 — PFS
          runs on a single backing file. Any [crash_at] in the fault
          plan is stripped: diffval compares two complete runs. *)
  image_mb : int;           (** PFS backing image size *)
  speedup : float;
      (** replay time compression, applied to {e both} halves so
          time-triggered policy behaviour matches *)
  pfs_clock : Capfs_sched.Sched.clock;
      (** [`Real] (the point of the exercise) by default; tests may pin
          [`Virtual] for determinism *)
  tolerances : (string * tolerance) list;
      (** per-suffix overrides, consulted before
          {!default_tolerances} *)
}

(** Defaults: the given policy ({!Capfs_patsy.Experiment.Nvram_partial}
    if omitted) on one disk and one bus, free memcpy, 128 MB image,
    100 000x speedup, real clock for PFS, built-in tolerances. *)
val default : ?policy:Capfs_patsy.Experiment.policy -> unit -> config

(** [diff_snapshots ~patsy ~pfs ()] is the pure core: per-counter
    verdicts for every key present in both snapshots, plus the keys
    present in only one half (stat-name drift — a contract violation
    regardless of values). *)
val diff_snapshots :
  ?tolerances:(string * tolerance) list ->
  patsy:Capfs_stats.Snapshot.t ->
  pfs:Capfs_stats.Snapshot.t ->
  unit ->
  verdict list * string list * string list

val verdicts_ok : verdict list -> bool

(** The PFS half's snapshot, with the "no data is not equivalence"
    guard: a volume that yields no statistics snapshot (built without a
    registry) is a harness error — [Error EINVAL], which the patsy CLI
    turns into exit 2 — never a silently-empty comparison. *)
val volume_snapshot :
  Capfs_pfs.Pfs.t -> (Capfs_stats.Snapshot.t, Capfs_core.Errno.t) result

(** [run ~trace_name source] executes both halves and diffs them. Both
    halves replay the same {!Capfs_trace.Source.t} serially (each makes
    its own passes over it; cursor-backed sources stream). [skew], when
    given, rewrites the PFS half's configuration only — deliberately
    desynchronizing the halves to prove the harness detects it (the
    resulting report must have [r_ok = false]).

    [Error e] is a harness failure (no outcome produced, unusable
    backing file); an out-of-tolerance comparison is {e not} an error —
    it is [Ok report] with [r_ok = false], carrying the per-counter
    verdicts. *)
val run :
  ?config:config ->
  ?skew:(Capfs_patsy.Experiment.config -> Capfs_patsy.Experiment.config) ->
  trace_name:string ->
  Capfs_trace.Source.t ->
  (report, Capfs_core.Errno.t) result

(** Machine-readable report: one JSON object with both sides' replay
    totals, fsck findings, full snapshots and per-counter verdicts. *)
val to_json : report -> string

(** Human-readable per-counter report (what [patsy --differential]
    prints). *)
val pp : Format.formatter -> report -> unit
