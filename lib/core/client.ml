module Inode = Capfs_layout.Inode
module Data = Capfs_disk.Data
module Errno = Capfs_core.Errno

type stat = {
  st_ino : int;
  st_kind : Inode.kind;
  st_size : int;
  st_nlink : int;
  st_mtime : float;
  st_atime : float;
}

type open_mode = RO | WO | RW

type t = {
  fs : Fsys.t;
  ftable : File_table.t;
  ns : Namespace.t;
  (* client -> (path -> ino of the open descriptor). Two levels rather
     than a [(int * string)]-keyed table: handle lookups run once per
     replayed I/O, and a tuple key costs a fresh allocation (plus a
     polymorphic hash of the pair) on every probe. *)
  handles : (int, (string, int) Hashtbl.t) Hashtbl.t;
}

let create fs =
  let ftable = File_table.create fs in
  let ns = Namespace.create fs ftable in
  { fs; ftable; ns; handles = Hashtbl.create 16 }

let client_handles t client =
  match Hashtbl.find t.handles client with
  | h -> h
  | exception Not_found ->
    let h = Hashtbl.create 16 in
    Hashtbl.replace t.handles client h;
    h

let fsys t = t.fs
let file_table t = t.ftable
let namespace t = t.ns

let file_of_ino t ino =
  match File_table.get t.ftable ino with
  | Some f -> f
  | None -> raise (Namespace.Not_found_path (Printf.sprintf "ino %d" ino))

let file_of_path t path = file_of_ino t (Namespace.resolve t.ns path)

(* {2 The exception-to-errno boundary}

   Bodies below raise ([Namespace] exceptions from path walking,
   [Errno.Error] escalated from layouts and drivers); [trap] is where
   every public operation converts that into a typed result. Anything
   it does not recognise is a programming error and propagates. *)

(* [trap f] wraps the cold operations; the replay-hot ones below use a
   bare [try]/[with] handing the exception to [errno_or_reraise], so no
   thunk closure is allocated per call. *)
let errno_or_reraise : exn -> ('a, Errno.t) result = function
  | Namespace.Not_found_path _ -> Error Errno.ENOENT
  | Namespace.Already_exists _ -> Error Errno.EEXIST
  | Namespace.Not_a_directory _ -> Error Errno.ENOTDIR
  | Namespace.Is_a_directory _ -> Error Errno.EISDIR
  | Namespace.Not_empty _ -> Error Errno.ENOTEMPTY
  | Namespace.Symlink_loop _ -> Error Errno.ELOOP
  | Errno.Error e -> Error e
  | e -> raise e

let trap f = try Ok (f ()) with e -> errno_or_reraise e

(* {2 Namespace operations} *)

let mkdir_x t path =
  let path = Namespace.normalize path in
  let parent, name = Namespace.split_parent t.ns path in
  let dir = File_table.create_file t.ftable ~kind:Inode.Directory in
  let inode = File.inode dir in
  inode.Inode.nlink <- 2;
  t.fs.Fsys.layout.Capfs_layout.Layout.update_inode inode;
  Namespace.add_entry t.ns ~parent ~name ~ino:(File.ino dir)
    ~kind:Inode.Directory

let create_file_x t ?(kind = Inode.Regular) path =
  let path = Namespace.normalize path in
  let parent, name = Namespace.split_parent t.ns path in
  let file = File_table.create_file t.ftable ~kind in
  Namespace.add_entry t.ns ~parent ~name ~ino:(File.ino file) ~kind

let symlink_x t ~target path =
  let path = Namespace.normalize path in
  let parent, name = Namespace.split_parent t.ns path in
  let link = File_table.create_file t.ftable ~kind:Inode.Symlink in
  Namespace.add_entry t.ns ~parent ~name ~ino:(File.ino link)
    ~kind:Inode.Symlink;
  Namespace.set_symlink_target t.ns (File.ino link) target

let readlink_x t path =
  let path = Namespace.normalize path in
  let parent, name = Namespace.split_parent t.ns path in
  match Namespace.lookup t.ns ~dir:parent ~name with
  | Some { Dir.kind = Inode.Symlink; entry_ino; _ } -> (
    match Namespace.symlink_target t.ns entry_ino with
    | Some target -> target
    | None -> raise (Namespace.Not_found_path path))
  | Some _ -> raise (Errno.Error Errno.EINVAL) (* not a symlink *)
  | None -> raise (Namespace.Not_found_path path)

let rmdir_x t path =
  let path = Namespace.normalize path in
  let parent, name = Namespace.split_parent t.ns path in
  match Namespace.lookup t.ns ~dir:parent ~name with
  | Some { Dir.kind = Inode.Directory; entry_ino; _ } ->
    if Namespace.entries t.ns entry_ino <> [] then
      raise (Namespace.Not_empty path);
    ignore (Namespace.remove_entry t.ns ~parent ~name);
    File_table.unlink t.ftable entry_ino
  | Some _ -> raise (Namespace.Not_a_directory path)
  | None -> raise (Namespace.Not_found_path path)

let delete_x t path =
  let path = Namespace.normalize path in
  let parent, name = Namespace.split_parent t.ns path in
  match Namespace.lookup t.ns ~dir:parent ~name with
  | Some { Dir.kind = Inode.Directory; _ } ->
    raise (Namespace.Is_a_directory path)
  | Some { Dir.entry_ino; _ } ->
    ignore (Namespace.remove_entry t.ns ~parent ~name);
    let inode_alive =
      match File_table.get t.ftable entry_ino with
      | Some f ->
        let inode = File.inode f in
        inode.Inode.nlink <- inode.Inode.nlink - 1;
        inode.Inode.nlink > 0
      | None -> false
    in
    if not inode_alive then File_table.unlink t.ftable entry_ino
  | None -> raise (Namespace.Not_found_path path)

let rename_x t ~src ~dst =
  let src = Namespace.normalize src and dst = Namespace.normalize dst in
  let sparent, sname = Namespace.split_parent t.ns src in
  let dparent, dname = Namespace.split_parent t.ns dst in
  let entry = Namespace.remove_entry t.ns ~parent:sparent ~name:sname in
  (* replace an existing destination, as rename(2) does *)
  (match Namespace.lookup t.ns ~dir:dparent ~name:dname with
  | Some { Dir.entry_ino; kind; _ } ->
    ignore (Namespace.remove_entry t.ns ~parent:dparent ~name:dname);
    if kind <> Inode.Directory then File_table.unlink t.ftable entry_ino
  | None -> ());
  Namespace.add_entry t.ns ~parent:dparent ~name:dname
    ~ino:entry.Dir.entry_ino ~kind:entry.Dir.kind

let readdir_x t path =
  let path = Namespace.normalize path in
  let ino = Namespace.resolve t.ns path in
  Namespace.entries t.ns ino

let stat_x t path =
  let path = Namespace.normalize path in
  let file = file_of_path t path in
  let inode = File.inode file in
  {
    st_ino = inode.Inode.ino;
    st_kind = inode.Inode.kind;
    st_size = inode.Inode.size;
    st_nlink = inode.Inode.nlink;
    st_mtime = inode.Inode.mtime;
    st_atime = inode.Inode.atime;
  }

let exists t path = Namespace.resolve_opt t.ns (Namespace.normalize path) <> None

let ensure_dirs_x t path =
  let path = Namespace.normalize path in
  let comps = String.split_on_char '/' path |> List.filter (fun c -> c <> "") in
  match List.rev comps with
  | [] -> ()
  | _leaf :: rev_dirs ->
    let dirs = List.rev rev_dirs in
    ignore
      (List.fold_left
         (fun prefix d ->
           let dir_path = prefix ^ "/" ^ d in
           if not (exists t dir_path) then mkdir_x t dir_path;
           dir_path)
         "" dirs)

let synthesize_file_x t ?(kind = Inode.Regular) path ~size =
  let path = Namespace.normalize path in
  ensure_dirs_x t path;
  if not (exists t path) then create_file_x t ~kind path;
  let file = file_of_path t path in
  let inode = File.inode file in
  if inode.Inode.size < size then begin
    let bb = t.fs.Fsys.config.Fsys.block_bytes in
    let blocks = (size + bb - 1) / bb in
    Errno.ok_exn (t.fs.Fsys.layout.Capfs_layout.Layout.adopt inode ~blocks);
    inode.Inode.size <- size;
    t.fs.Fsys.layout.Capfs_layout.Layout.update_inode inode
  end

(* {2 File I/O} *)

let open_x t ~client path mode =
  let path = Namespace.normalize path in
  let ino =
    match Namespace.resolve_opt t.ns path with
    | Some ino -> ino
    | None -> (
      match mode with
      | RO -> raise (Namespace.Not_found_path path)
      | WO | RW ->
        create_file_x t path;
        Namespace.resolve t.ns path)
  in
  let file = file_of_ino t ino in
  if File.kind file = Inode.Directory then
    raise (Namespace.Is_a_directory path);
  let h = client_handles t client in
  if Hashtbl.mem h path then
    (* idempotent re-open: traces occasionally re-open without a close *)
    ()
  else begin
    Hashtbl.replace h path ino;
    File.opened file
  end

let close_x t ~client path =
  let path = Namespace.normalize path in
  let h = client_handles t client in
  match Hashtbl.find h path with
  | exception Not_found -> raise (Errno.Error Errno.EBADF)
  | ino ->
    Hashtbl.remove h path;
    (match File_table.get t.ftable ino with
    | Some file ->
      File.closed file;
      File_table.maybe_reap t.ftable ino
    | None -> ())

(* An I/O against a path the client never opened falls back to a
   transient open (real traces miss open records now and then).
   Direct style rather than a [with_file f] combinator: [read] and
   [write] sit on the replay hot path, and a callback would allocate a
   closure capturing the I/O parameters on every call. *)
let lookup_file t ~client path ~create_if_missing =
  let h = client_handles t client in
  match Hashtbl.find h path with
  | ino -> file_of_ino t ino
  | exception Not_found -> (
    match Namespace.resolve_opt t.ns path with
    | Some ino -> file_of_ino t ino
    | None ->
      if create_if_missing then begin
        create_file_x t path;
        file_of_path t path
      end
      else raise (Namespace.Not_found_path path))

let read_x t ~client path ~offset ~bytes =
  let path = Namespace.normalize path in
  let file = lookup_file t ~client path ~create_if_missing:false in
  File.read file ~offset ~bytes

let write_x t ~client path ~offset data =
  let path = Namespace.normalize path in
  let file = lookup_file t ~client path ~create_if_missing:true in
  File.write file ~offset data

let truncate_x t path ~size =
  let path = Namespace.normalize path in
  File.truncate (file_of_path t path) ~size

let fsync_x t path =
  let path = Namespace.normalize path in
  File.flush (file_of_path t path)

let close_all_x t ~client =
  match Hashtbl.find_opt t.handles client with
  | None -> ()
  | Some h ->
    let paths = Hashtbl.fold (fun path _ acc -> path :: acc) h [] in
    List.iter (fun path -> close_x t ~client path) paths

let open_handles t =
  Hashtbl.fold (fun _ h acc -> acc + Hashtbl.length h) t.handles 0

(* {2 Public result API + [_exn] conveniences} *)

let mkdir t path = trap (fun () -> mkdir_x t path)
let rmdir t path = trap (fun () -> rmdir_x t path)
let create_file t ?kind path = trap (fun () -> create_file_x t ?kind path)
let symlink t ~target path = trap (fun () -> symlink_x t ~target path)
let readlink t path = trap (fun () -> readlink_x t path)
let rename t ~src ~dst = trap (fun () -> rename_x t ~src ~dst)
let delete t path = try Ok (delete_x t path) with e -> errno_or_reraise e
let readdir t path = trap (fun () -> readdir_x t path)
let stat t path = try Ok (stat_x t path) with e -> errno_or_reraise e
let ensure_dirs t path = trap (fun () -> ensure_dirs_x t path)

let synthesize_file t ?kind path ~size =
  trap (fun () -> synthesize_file_x t ?kind path ~size)

let open_ t ~client path mode =
  try Ok (open_x t ~client path mode) with e -> errno_or_reraise e

let close_ t ~client path =
  try Ok (close_x t ~client path) with e -> errno_or_reraise e

let read t ~client path ~offset ~bytes =
  try Ok (read_x t ~client path ~offset ~bytes) with e -> errno_or_reraise e

let write t ~client path ~offset data =
  try Ok (write_x t ~client path ~offset data) with e -> errno_or_reraise e

let truncate t path ~size =
  try Ok (truncate_x t path ~size) with e -> errno_or_reraise e

let fsync t path = try Ok (fsync_x t path) with e -> errno_or_reraise e
let sync t = Fsys.sync t.fs
let close_all t ~client = trap (fun () -> close_all_x t ~client)

let mkdir_exn t path = Errno.ok_exn (mkdir t path)
let rmdir_exn t path = Errno.ok_exn (rmdir t path)
let create_file_exn t ?kind path = Errno.ok_exn (create_file t ?kind path)
let symlink_exn t ~target path = Errno.ok_exn (symlink t ~target path)
let readlink_exn t path = Errno.ok_exn (readlink t path)
let rename_exn t ~src ~dst = Errno.ok_exn (rename t ~src ~dst)
let delete_exn t path = Errno.ok_exn (delete t path)
let readdir_exn t path = Errno.ok_exn (readdir t path)
let stat_exn t path = Errno.ok_exn (stat t path)
let ensure_dirs_exn t path = Errno.ok_exn (ensure_dirs t path)

let synthesize_file_exn t ?kind path ~size =
  Errno.ok_exn (synthesize_file t ?kind path ~size)

let open_exn t ~client path mode = Errno.ok_exn (open_ t ~client path mode)
let close_exn t ~client path = Errno.ok_exn (close_ t ~client path)

let read_exn t ~client path ~offset ~bytes =
  Errno.ok_exn (read t ~client path ~offset ~bytes)

let write_exn t ~client path ~offset data =
  Errno.ok_exn (write t ~client path ~offset data)

let truncate_exn t path ~size = Errno.ok_exn (truncate t path ~size)
let fsync_exn t path = Errno.ok_exn (fsync t path)
let sync_exn t = Errno.ok_exn (sync t)
let close_all_exn t ~client = Errno.ok_exn (close_all t ~client)
