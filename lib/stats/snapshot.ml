type entry = { e_key : string; e_count : int; e_total : float; e_mean : float }
type t = entry array

let capture ?(filter = fun _ -> true) registry =
  let acc = ref [] in
  Registry.iter registry (fun stat ->
      let key = Stat.name stat in
      if filter key then begin
        let w = Stat.welford stat in
        acc :=
          {
            e_key = key;
            e_count = Welford.count w;
            e_total = Welford.total w;
            e_mean = Welford.mean w;
          }
          :: !acc
      end);
  (* Registry.iter runs in name order; restore it *)
  Array.of_list (List.rev !acc)

let keys t = Array.to_list (Array.map (fun e -> e.e_key) t)

let find t key =
  let n = Array.length t in
  let rec go i = if i >= n then None
    else if t.(i).e_key = key then Some t.(i)
    else go (i + 1)
  in
  go 0

(* The instance-name prefixes of the components shared verbatim between
   Patsy and PFS (see VALIDATION.md). Device models (diskN, busN) and
   the client-caching server are engine- or experiment-specific. *)
let policy_prefixes = [ "cache."; "driver"; "lfs"; "ffs"; "jfs"; "simlayout" ]

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let policy_visible key =
  List.exists (fun prefix -> starts_with ~prefix key) policy_prefixes

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else Printf.sprintf "%.12g" x

let add_json b t =
  Buffer.add_char b '[';
  Array.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"key\":\"%s\",\"count\":%d,\"total\":%s,\"mean\":%s}"
           (json_escape e.e_key) e.e_count (json_float e.e_total)
           (json_float e.e_mean)))
    t;
  Buffer.add_char b ']'

let to_json t =
  let b = Buffer.create 1024 in
  add_json b t;
  Buffer.contents b

let pp ppf t =
  Array.iter
    (fun e ->
      Format.fprintf ppf "%s: n=%d total=%g mean=%g@." e.e_key e.e_count
        e.e_total e.e_mean)
    t
