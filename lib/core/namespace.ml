module Inode = Capfs_layout.Inode
module Data = Capfs_disk.Data

exception Not_found_path of string
exception Already_exists of string
exception Not_a_directory of string
exception Is_a_directory of string
exception Not_empty of string
exception Symlink_loop of string


type t = {
  fsys : Fsys.t;
  ftable : File_table.t;
  (* in-core mirror: dir ino -> (name -> entry); loaded lazily *)
  dirs : (int, (string, Dir.entry) Hashtbl.t) Hashtbl.t;
  symlinks : (int, string) Hashtbl.t;
  (* path -> ino memo for [resolve]: only successful resolutions are
     cached, so adding an entry can never stale it (a name that now
     resolves simply was not cached); any removal or symlink retarget
     resets it wholesale. Bounded by the number of distinct live paths. *)
  resolved : (string, int) Hashtbl.t;
}

let create fsys ftable =
  {
    fsys;
    ftable;
    dirs = Hashtbl.create 256;
    symlinks = Hashtbl.create 16;
    resolved = Hashtbl.create 256;
  }

(* Replay calls [normalize] on every operation, and trace paths are
   almost always already in normal form: detect that with a char scan
   and return the argument itself, so the split/concat (a list of
   component strings plus a fresh result string, per op) only runs on
   the odd denormal path. A "." component is a lone dot bounded by
   slashes (or the ends); ".." is an ordinary component either way. *)
let already_normal path =
  let n = String.length path in
  n > 0
  && path.[0] = '/'
  && (n = 1 || path.[n - 1] <> '/')
  &&
  let ok = ref true in
  for i = 1 to n - 1 do
    match String.unsafe_get path i with
    | '/' -> if path.[i - 1] = '/' then ok := false
    | '.' ->
      if path.[i - 1] = '/' && (i = n - 1 || path.[i + 1] = '/') then
        ok := false
    | _ -> ()
  done;
  !ok

let normalize path =
  if already_normal path then path
  else
    let parts = String.split_on_char '/' path in
    let parts = List.filter (fun p -> p <> "" && p <> ".") parts in
    "/" ^ String.concat "/" parts

let components path =
  String.split_on_char '/' path |> List.filter (fun p -> p <> "" && p <> ".")

let dir_file t ino =
  match File_table.get t.ftable ino with
  | Some f when File.kind f = Inode.Directory -> f
  | Some _ -> raise (Not_a_directory (string_of_int ino))
  | None -> raise (Not_found_path (string_of_int ino))

(* Load the in-core mirror for a directory, parsing from disk when the
   payload is real (PFS / remount), empty otherwise. *)
let mirror t ino =
  match Hashtbl.find_opt t.dirs ino with
  | Some m -> m
  | None ->
    let m = Hashtbl.create 8 in
    (match Dir.load (dir_file t ino) with
    | Some entries ->
      List.iter (fun e -> Hashtbl.replace m e.Dir.name e) entries
    | None -> ());
    Hashtbl.replace t.dirs ino m;
    m

let persist t ino =
  let m = mirror t ino in
  let entries = Hashtbl.fold (fun _ e acc -> e :: acc) m [] in
  let entries = List.sort (fun a b -> compare a.Dir.name b.Dir.name) entries in
  Dir.store (dir_file t ino) entries

let entries t ino =
  let m = mirror t ino in
  Hashtbl.fold (fun _ e acc -> e :: acc) m []
  |> List.sort (fun a b -> compare a.Dir.name b.Dir.name)

let lookup t ~dir ~name = Hashtbl.find_opt (mirror t dir) name

let set_symlink_target t ino target =
  Hashtbl.reset t.resolved;
  Hashtbl.replace t.symlinks ino target;
  match File_table.get t.ftable ino with
  | Some f -> File.write f ~offset:0 (Data.of_string target)
  | None -> ()

let symlink_target t ino =
  match Hashtbl.find_opt t.symlinks ino with
  | Some target -> Some target
  | None -> (
    (* remounted image: the target lives in the link's data *)
    match File_table.get t.ftable ino with
    | Some f when File.kind f = Inode.Symlink ->
      let data = File.read f ~offset:0 ~bytes:(File.size f) in
      if Data.is_real data then begin
        let target = Data.to_string data in
        Hashtbl.replace t.symlinks ino target;
        Some target
      end
      else None
    | Some _ | None -> None)

let max_symlink_depth = 8

let resolve_uncached t path =
  let root = t.fsys.Fsys.config.Fsys.root_ino in
  let rec walk dir_ino comps depth ~orig =
    match comps with
    | [] -> dir_ino
    | name :: rest -> (
      match lookup t ~dir:dir_ino ~name with
      | None -> raise (Not_found_path orig)
      | Some e -> (
        match e.Dir.kind with
        | Inode.Symlink -> (
          if depth >= max_symlink_depth then raise (Symlink_loop orig);
          match symlink_target t e.Dir.entry_ino with
          | None -> raise (Not_found_path orig)
          | Some target ->
            let target_comps = components target in
            let base = if String.length target > 0 && target.[0] = '/' then root else dir_ino in
            let via = walk base target_comps (depth + 1) ~orig in
            walk via rest depth ~orig)
        | Inode.Directory -> walk e.Dir.entry_ino rest depth ~orig
        | Inode.Regular | Inode.Multimedia ->
          if rest = [] then e.Dir.entry_ino else raise (Not_a_directory orig)))
  in
  let comps = components path in
  walk root comps 0 ~orig:path

(* Replay resolves the same handful of paths over and over; the memo
   turns the per-op component split + directory walk into one string
   probe. Failures are never cached (they carry no entry to go stale,
   and a later create must be visible immediately). *)
let resolve t path =
  match Hashtbl.find t.resolved path with
  | ino -> ino
  | exception Not_found ->
    let ino = resolve_uncached t path in
    Hashtbl.replace t.resolved path ino;
    ino

let resolve_opt t path =
  match resolve t path with
  | ino -> Some ino
  | exception (Not_found_path _ | Not_a_directory _ | Symlink_loop _) -> None

let split_parent t path =
  let comps = components path in
  match List.rev comps with
  | [] -> invalid_arg "Namespace.split_parent: root has no parent"
  | leaf :: rev_parents ->
    let parent_path = "/" ^ String.concat "/" (List.rev rev_parents) in
    let parent = resolve t parent_path in
    (* the parent must actually be a directory *)
    ignore (dir_file t parent);
    (parent, leaf)

let add_entry t ~parent ~name ~ino ~kind =
  let m = mirror t parent in
  if Hashtbl.mem m name then raise (Already_exists name);
  Hashtbl.replace m name { Dir.name; entry_ino = ino; kind };
  persist t parent

let remove_entry t ~parent ~name =
  let m = mirror t parent in
  match Hashtbl.find_opt m name with
  | None -> raise (Not_found_path name)
  | Some e ->
    Hashtbl.reset t.resolved;
    Hashtbl.remove m name;
    persist t parent;
    e
