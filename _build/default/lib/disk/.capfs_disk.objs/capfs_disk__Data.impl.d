lib/disk/data.ml: Bytes List Printf String
