lib/core/file_table.ml: Capfs_cache Capfs_layout File Fsys Hashtbl
