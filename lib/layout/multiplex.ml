let layout volumes =
  let k = Array.length volumes in
  if k = 0 then invalid_arg "Multiplex.layout: no volumes";
  if k = 1 then volumes.(0)
  else begin
    let block_bytes = volumes.(0).Layout.block_bytes in
    Array.iter
      (fun v ->
        if v.Layout.block_bytes <> block_bytes then
          invalid_arg "Multiplex.layout: volumes disagree on block size")
      volumes;
    let vol_of_ino ino = volumes.((ino - 1) mod k) in
    let next_vol = ref 0 in
    let alloc_inode ~kind =
      let v = !next_vol in
      next_vol := (v + 1) mod k;
      volumes.(v).Layout.alloc_inode ~kind
    in
    let write_blocks updates =
      (* split the batch per volume, preserving order within each *)
      let per_vol = Array.make k [] in
      List.iter
        (fun ((ino, _, _) as u) ->
          let v = (ino - 1) mod k in
          per_vol.(v) <- u :: per_vol.(v))
        updates;
      let rec go v =
        if v >= k then Ok ()
        else
          match per_vol.(v) with
          | [] -> go (v + 1)
          | batch -> (
            match volumes.(v).Layout.write_blocks (List.rev batch) with
            | Ok () -> go (v + 1)
            | Error _ as e -> e)
      in
      go 0
    in
    {
      Layout.l_name = Printf.sprintf "multiplex(%d)" k;
      block_bytes;
      total_blocks =
        Array.fold_left (fun n v -> n + v.Layout.total_blocks) 0 volumes;
      alloc_inode;
      get_inode = (fun ino -> (vol_of_ino ino).Layout.get_inode ino);
      update_inode =
        (fun inode -> (vol_of_ino inode.Inode.ino).Layout.update_inode inode);
      free_inode = (fun ino -> (vol_of_ino ino).Layout.free_inode ino);
      read_block =
        (fun inode blk ->
          (vol_of_ino inode.Inode.ino).Layout.read_block inode blk);
      read_blocks =
        (fun inode ~first ~count ->
          (vol_of_ino inode.Inode.ino).Layout.read_blocks inode ~first ~count);
      write_blocks;
      truncate =
        (fun inode ~blocks ->
          (vol_of_ino inode.Inode.ino).Layout.truncate inode ~blocks);
      adopt =
        (fun inode ~blocks ->
          (vol_of_ino inode.Inode.ino).Layout.adopt inode ~blocks);
      sync =
        (fun () ->
          Array.fold_left
            (fun acc v ->
              match acc with Ok () -> v.Layout.sync () | Error _ -> acc)
            (Ok ()) volumes);
      free_blocks =
        (fun () ->
          Array.fold_left (fun n v -> n + v.Layout.free_blocks ()) 0 volumes);
      layout_stats =
        (fun () ->
          Array.to_list volumes
          |> List.concat_map (fun v ->
                 List.map
                   (fun (key, value) -> (v.Layout.l_name ^ "." ^ key, value))
                   (v.Layout.layout_stats ())));
    }
  end
