(* The benchmark harness: regenerates every figure of the paper's
   evaluation (§5.1, Figures 2-5), the §5.2 lesson ablations, the design-
   choice ablations called out in DESIGN.md, and a set of Bechamel
   micro-benchmarks of the framework's hot paths.

   Usage: dune exec bench/main.exe
            [-- [quick|full|figures|ablations|micro|perfsmoke] [-j N]]

   The default preset replays 900 simulated seconds per (trace, policy)
   pair; `quick` cuts that to 300 s, `full` raises it to 3600 s. Figure
   CDFs and the Figure-5 table come from one shared set of runs.

   Independent experiments fan out over a Fleet of OCaml 5 domains
   (-j N, default Domain.recommended_domain_count); every experiment
   builds its own virtual-time scheduler, disks, cache and statistics
   registry, so the figures are identical at any -j. A machine-readable
   BENCH_results.json (per-experiment wall-clock, replayed ops/s, mean
   latency, cache hit rate, and GC counters: minor/promoted words per
   replayed operation) is written next to the working directory so the
   perf trajectory of successive PRs can be tracked. The `perfsmoke`
   preset replays just sprite-1a — a fast CI guard against gross
   (5x-style) throughput regressions. *)

module Experiment = Capfs_patsy.Experiment
module Fleet = Capfs_patsy.Fleet
module Replay = Capfs_patsy.Replay
module Report = Capfs_patsy.Report
module Synth = Capfs_trace.Synth
module Stats = Capfs_stats
module Lfs = Capfs_layout.Lfs

let section title = Format.printf "@.=== %s@.@." title

(* {1 Experiment configuration} *)

(* Scaled-down Sprite server (see DESIGN.md §3 and EXPERIMENTS.md): the
   synthetic traces carry roughly 1/5 the client population of the
   original, so the server shrinks with them — 2 of the hot disks on one
   SCSI string and a cache sized to keep the miss rate in the regime the
   paper reports. *)
(* Set by -trace-out: per-experiment event ring capacity (0 = off). *)
let trace_buffer = ref 0

(* Cleared by -no-coalesce: run the unbatched pre-clustering flush path
   (the configuration the paper-comparison tables in EXPERIMENTS.md are
   pinned to). *)
let coalesce = ref true

let experiment_config ?(policy = Experiment.Ups) () =
  {
    (Experiment.default policy) with
    Experiment.ndisks = 2;
    nbuses = 1;
    cache_mb = 24;
    nvram_mb = 4;
    trace_buffer = !trace_buffer;
    coalesce = !coalesce;
  }

(* Restricted by -traces T1,T2 — the CI smoke gate runs two traces. *)
let trace_names =
  ref [ "sprite-1a"; "sprite-1b"; "sprite-2a"; "sprite-2b"; "sprite-5" ]

(* Traces are generated inside the worker domain that replays them (the
   Fleet [gen] callback) — no cross-domain PRNG or cache sharing. *)
let gen_trace ~duration name =
  Synth.source ~seed:1996 ~duration (Synth.profile_by_name name)

(* Every Fleet result is also logged here for BENCH_results.json. *)
let results_log : Fleet.job_result list ref = ref []

let run_fleet ~jobs ~duration job_list =
  let results = Fleet.run_jobs ~jobs ~gen:(gen_trace ~duration) job_list in
  results_log := !results_log @ results;
  results

(* {1 Figures}

   One run per (trace, policy), shared by Figures 2-5. The runs fan out
   over the Fleet; the per-run result map replaces the global mutable
   caches the sequential harness used, so the harness itself is safe
   under -j. *)

type matrix = {
  lookup : string -> Experiment.policy -> Experiment.outcome;
  wall_sum : float;   (** summed per-experiment wall-clock *)
  wall_real : float;  (** elapsed wall-clock for the whole matrix *)
}

let run_matrix ~jobs ~duration =
  let pairs =
    List.concat_map
      (fun trace -> List.map (fun p -> (trace, p)) Experiment.all_policies)
      !trace_names
  in
  let t0 = Unix.gettimeofday () in
  let results =
    Fleet.run_matrix ~jobs
      ~config:(fun policy -> experiment_config ~policy ())
      ~gen:(gen_trace ~duration) pairs
  in
  let wall_real = Unix.gettimeofday () -. t0 in
  results_log := !results_log @ results;
  let table = Hashtbl.create 32 in
  List.iter
    (fun (r : Fleet.job_result) ->
      Hashtbl.replace table (r.Fleet.job.Fleet.trace, r.Fleet.job.Fleet.config.Experiment.policy)
        (Fleet.outcome_exn r))
    results;
  let lookup trace policy =
    match Hashtbl.find_opt table (trace, policy) with
    | Some o -> o
    | None -> failwith ("matrix: no outcome for " ^ Fleet.matrix_label ~trace policy)
  in
  let wall_sum =
    List.fold_left (fun acc (r : Fleet.job_result) -> acc +. r.Fleet.wall_s) 0. results
  in
  Format.printf
    "matrix: %d experiments in %.1f s wall (%.1f s of experiment time, \
     %.2fx parallel speedup at -j %d)@."
    (List.length results) wall_real wall_sum
    (if wall_real > 0. then wall_sum /. wall_real else 1.)
    jobs;
  { lookup; wall_sum; wall_real }

let figure_cdf ~matrix ~figure trace_name =
  section
    (Printf.sprintf
       "Figure %d: cumulative latency distribution, trace %s (paper: fig. %d)"
       figure trace_name figure);
  List.iter
    (fun policy ->
      let o = matrix.lookup trace_name policy in
      Report.print_cdf ~points:40
        ~title:(Printf.sprintf "%s / %s" trace_name (Experiment.policy_name policy))
        Format.std_formatter o.Experiment.replay;
      Format.printf "@.")
    Experiment.all_policies

let figure5 ~matrix =
  section "Figure 5: mean file-system latency, all traces x all policies";
  let rows =
    List.map
      (fun trace_name ->
        ( trace_name,
          List.map
            (fun policy ->
              let o = matrix.lookup trace_name policy in
              ( Experiment.policy_name policy,
                Stats.Sample_set.mean o.Experiment.replay.Replay.latency ))
            Experiment.all_policies ))
      !trace_names
  in
  Report.print_mean_table Format.std_formatter ~rows;
  Format.printf "@.@.write traffic (cache blocks flushed to the log):@.";
  let rows =
    List.map
      (fun trace_name ->
        ( trace_name,
          List.map
            (fun policy ->
              let o = matrix.lookup trace_name policy in
              ( Experiment.policy_name policy,
                float_of_int o.Experiment.blocks_flushed ))
            Experiment.all_policies ))
      !trace_names
  in
  Report.print_mean_table ~scale:1e-3 ~unit:"k" Format.std_formatter ~rows;
  Format.printf "@.@.cache hit rates and absorbed writes:@.";
  List.iter
    (fun trace_name ->
      Format.printf "%-12s" trace_name;
      List.iter
        (fun policy ->
          let o = matrix.lookup trace_name policy in
          Format.printf " %s=%.1f%%/%dk"
            (Experiment.policy_name policy)
            (100. *. o.Experiment.cache_hit_rate)
            (o.Experiment.writes_absorbed / 1000))
        Experiment.all_policies;
      Format.printf "@.")
    !trace_names

(* {1 Ablations}

   Each ablation is a small independent job list; the Experiment-backed
   ones ride the same Fleet. *)

let mean_of o = Stats.Sample_set.mean o.Experiment.replay.Replay.latency

(* run a named set of configs against one trace, in parallel *)
let ablate ~jobs ~duration ~trace variants =
  let job_list =
    List.map
      (fun (name, config) ->
        { Fleet.label = Printf.sprintf "ablation:%s:%s" trace name;
          trace; config })
      variants
  in
  let results = run_fleet ~jobs ~duration job_list in
  List.map2
    (fun (name, _) r -> (name, Fleet.outcome_exn r))
    variants results

let ablation_sync_flush ~duration =
  ignore duration;
  section
    "Ablation (5.2 lesson): synchronous vs asynchronous cache flushing";
  (* The paper: "the thread that needed a cache block was also the one
     that initiated a cache flush and waited for the flush to complete.
     As more esoteric flush policies were used, the delay for this
     thread increased" — here the policy is whole-file flushing of
     64-block files (2 ms of disk time per block). The synchronous
     allocator sits through the entire file's write-back; the
     asynchronous flusher releases frames chunk by chunk and the
     allocator continues as soon as one is free. *)
  List.iter
    (fun async ->
      let sched = Capfs_sched.Sched.create ~clock:`Virtual () in
      let lat = Stats.Welford.create () in
      let worst = ref 0. in
      ignore
        (Capfs_sched.Sched.spawn sched (fun () ->
             let writeback batch =
               Capfs_sched.Sched.sleep sched
                 (0.002 *. float_of_int (List.length batch))
             in
             let cache =
               Capfs_cache.Cache.create ~writeback sched
                 { Capfs_cache.Cache.block_bytes = 4096;
                   capacity_blocks = 80; nvram_blocks = 0;
                   trigger = Capfs_cache.Cache.Demand; scope = `Whole_file;
                   async_flush = async; mem_copy_rate = 0.;
                   coalesce = false; flush_window = 4;
                   max_extent_blocks = 64 }
             in
             for round = 0 to 19 do
               (* a 64-block file fills most of the cache with dirty data *)
               for blk = 0 to 63 do
                 Capfs_cache.Cache.write cache
                   (Capfs_cache.Block.Key.v round blk)
                   (Capfs_disk.Data.sim 16)
               done;
               (* now a small client needs frames *)
               for i = 0 to 19 do
                 let t0 = Capfs_sched.Sched.now sched in
                 Capfs_cache.Cache.write cache
                   (Capfs_cache.Block.Key.v (1000 + round) i)
                   (Capfs_disk.Data.sim 16);
                 let dt = Capfs_sched.Sched.now sched -. t0 in
                 Stats.Welford.add lat dt;
                 if dt > !worst then worst := dt
               done
             done));
      Capfs_sched.Sched.run sched;
      Format.printf "  %-12s small-client mean=%8.3fms worst=%8.3fms@."
        (if async then "async" else "sync")
        (1000. *. Stats.Welford.mean lat)
        (1000. *. !worst))
    [ false; true ]

let ablation_cleaner ~jobs ~duration =
  section "Ablation: LFS cleaner policy (greedy vs cost-benefit)";
  (* shrink the disks (~160 MB each) so the log wraps and cleaning runs *)
  let small_disk =
    { Capfs_disk.Disk_model.hp97560 with
      Capfs_disk.Disk_model.model_name = "hp97560/8";
      geometry =
        Capfs_disk.Geometry.v ~cylinders:245 ~heads:19 ~sectors_per_track:72
          ~sector_bytes:512 ~track_skew:8 ~cylinder_skew:18 () }
  in
  let variants =
    List.map
      (fun (name, cleaner) ->
        ( name,
          { (experiment_config ()) with
            Experiment.cleaner; cache_mb = 8; disk_model = small_disk } ))
      [ ("greedy", Lfs.Greedy); ("cost-benefit", Lfs.Cost_benefit) ]
  in
  List.iter
    (fun (name, o) ->
      let cleanings =
        List.filter (fun (k, _) -> Filename.check_suffix k "cleanings")
          o.Experiment.layout_stats
        |> List.fold_left (fun acc (_, v) -> acc +. v) 0.
      in
      Format.printf "  %-14s mean=%8.3fms cleanings=%.0f@." name
        (1000. *. mean_of o) cleanings)
    (ablate ~jobs ~duration ~trace:"sprite-1b" variants)

let ablation_iosched ~jobs ~duration =
  section "Ablation: disk-queue scheduling policy";
  let variants =
    List.map
      (fun iosched -> (iosched, { (experiment_config ()) with Experiment.iosched }))
      [ "fcfs"; "sstf"; "clook"; "scan-edf" ]
  in
  List.iter
    (fun (name, o) ->
      Format.printf "  %-10s mean=%8.3fms p99=%8.3fms@." name
        (1000. *. mean_of o)
        (1000.
         *. Stats.Sample_set.quantile o.Experiment.replay.Replay.latency 0.99))
    (ablate ~jobs ~duration ~trace:"sprite-5" variants)

let ablation_replacement ~jobs ~duration =
  section "Ablation: cache replacement policy";
  let variants =
    List.map
      (fun replacement ->
        (replacement, { (experiment_config ()) with Experiment.replacement; cache_mb = 8 }))
      [ "lru"; "random"; "lfu"; "slru"; "lru-2" ]
  in
  List.iter
    (fun (name, o) ->
      Format.printf "  %-8s mean=%8.3fms hit=%5.1f%%@." name
        (1000. *. mean_of o)
        (100. *. o.Experiment.cache_hit_rate))
    (ablate ~jobs ~duration ~trace:"sprite-1a" variants)

let ablation_disk_features ~jobs ~duration =
  section "Ablation: disk model features (read-ahead, immediate report)";
  let base = Capfs_disk.Disk_model.hp97560 in
  let variants =
    List.map
      (fun (name, cache) ->
        ( name,
          { (experiment_config ()) with
            Experiment.disk_model = { base with Capfs_disk.Disk_model.cache } } ))
      [
        ("full HP97560 cache", base.Capfs_disk.Disk_model.cache);
        ( "no read-ahead",
          { base.Capfs_disk.Disk_model.cache with
            Capfs_disk.Disk_model.read_ahead_bytes = 0 } );
        ( "no immediate report",
          { base.Capfs_disk.Disk_model.cache with
            Capfs_disk.Disk_model.immediate_report = false } );
        ( "no disk cache at all",
          { Capfs_disk.Disk_model.cache_bytes = 0; read_ahead_bytes = 0;
            immediate_report = false } );
      ]
  in
  List.iter
    (fun (name, o) ->
      Format.printf "  %-28s mean=%8.3fms@." name (1000. *. mean_of o))
    (ablate ~jobs ~duration ~trace:"sprite-1a" variants)

let ablation_cache_size ~jobs ~duration =
  section "Ablation: server cache size sweep (UPS policy)";
  let variants =
    List.map
      (fun cache_mb ->
        (Printf.sprintf "%d" cache_mb, { (experiment_config ()) with Experiment.cache_mb }))
      [ 4; 8; 16; 32; 64 ]
  in
  List.iter
    (fun (name, o) ->
      Format.printf "  %3s MB  mean=%8.3fms hit=%5.1f%%@." name
        (1000. *. mean_of o)
        (100. *. o.Experiment.cache_hit_rate))
    (ablate ~jobs ~duration ~trace:"sprite-1a" variants)

let ablation_nvram_size ~jobs ~duration =
  section "Ablation: NVRAM size sweep (whole-file drains, sprite-1b)";
  let variants =
    List.map
      (fun nvram_mb ->
        ( Printf.sprintf "%d" nvram_mb,
          { (experiment_config ~policy:Experiment.Nvram_whole ()) with
            Experiment.nvram_mb } ))
      [ 1; 2; 4; 8; 16 ]
  in
  List.iter
    (fun (name, o) ->
      Format.printf "  %3s MB  mean=%8.3fms flushed=%dk@." name
        (1000. *. mean_of o)
        (o.Experiment.blocks_flushed / 1000))
    (ablate ~jobs ~duration ~trace:"sprite-1b" variants)

let ablation_client_caching () =
  section
    "Extension (3): client caching with Sprite consistency — network \
     traffic and latency";
  let run ~cache_blocks =
    let s = Capfs_sched.Sched.create ~clock:`Virtual () in
    let out = ref (0, 0.) in
    ignore
      (Capfs_sched.Sched.spawn s (fun () ->
           let drv =
             Capfs_disk.Driver.create s
               (Capfs_disk.Driver.mem_transport ~sector_bytes:512
                  ~total_sectors:65536 s ())
           in
           let layout =
             Capfs_layout.Lfs.format_and_mount s drv ~block_bytes:4096
           in
           let fs =
             Capfs.Fsys.create
               ~cache_config:
                 (Capfs_cache.Cache.default_config ~capacity_blocks:512)
               ~layout s
           in
           let net = Capfs_ccache.Netlink.ethernet_10 s in
           let server =
             Capfs_ccache.Cc_server.create (Capfs.Client.create fs) net
           in
           let pub =
             Capfs_ccache.Cc_client.attach server ~client_id:0
               ~cache_blocks:64
           in
           for f = 0 to 7 do
             let p = Printf.sprintf "/hot%d" f in
             Capfs_ccache.Cc_client.open_ pub p Capfs_ccache.Cc_server.Write;
             Capfs_ccache.Cc_client.write pub p ~offset:0
               (Capfs_disk.Data.sim 65536);
             Capfs_ccache.Cc_client.close_ pub p
           done;
           let base = Capfs_ccache.Netlink.bytes_carried net in
           let t0 = Capfs_sched.Sched.now s in
           let remaining = ref 4 in
           let all_done = Capfs_sched.Sched.new_event s in
           for w = 1 to 4 do
             ignore
               (Capfs_sched.Sched.spawn s (fun () ->
                    let c =
                      Capfs_ccache.Cc_client.attach server ~client_id:w
                        ~cache_blocks
                    in
                    for _ = 1 to 5 do
                      for f = 0 to 7 do
                        let p = Printf.sprintf "/hot%d" f in
                        Capfs_ccache.Cc_client.open_ c p
                          Capfs_ccache.Cc_server.Read;
                        ignore
                          (Capfs_ccache.Cc_client.read c p ~offset:0
                             ~bytes:65536);
                        Capfs_ccache.Cc_client.close_ c p
                      done
                    done;
                    decr remaining;
                    if !remaining = 0 then
                      Capfs_sched.Sched.broadcast s all_done))
           done;
           Capfs_sched.Sched.await s all_done;
           out :=
             ( Capfs_ccache.Netlink.bytes_carried net - base,
               Capfs_sched.Sched.now s -. t0 )));
    Capfs_sched.Sched.run s;
    !out
  in
  List.iter
    (fun (name, cache_blocks) ->
      let bytes, time = run ~cache_blocks in
      Format.printf "  %-18s %7.1f MB on the wire, %6.2f s@." name
        (float_of_int bytes /. 1048576.)
        time)
    [ ("no client cache", 1); ("with client cache", 256) ]

(* {1 Bechamel micro-benchmarks}

   The paper found its simulator bottleneck in cache-list maintenance
   (§5.2); these keep the framework's hot paths honest. *)

let micro () =
  section "Microbenchmarks (Bechamel; monotonic clock)";
  let open Bechamel in
  let sched_bench =
    Test.make ~name:"sched: spawn+dispatch fibre"
      (Staged.stage (fun () ->
           let s = Capfs_sched.Sched.create ~clock:`Virtual () in
           ignore (Capfs_sched.Sched.spawn s (fun () -> ()));
           Capfs_sched.Sched.run s))
  in
  let cache_hit_bench =
    let s = Capfs_sched.Sched.create ~clock:`Virtual () in
    let cache = ref None in
    ignore
      (Capfs_sched.Sched.spawn s (fun () ->
           let c =
             Capfs_cache.Cache.create
               ~writeback:(fun _ -> ())
               s
               { (Capfs_cache.Cache.default_config ~capacity_blocks:1024) with
                 Capfs_cache.Cache.trigger = Capfs_cache.Cache.Demand }
           in
           for i = 0 to 511 do
             Capfs_cache.Cache.write c (Capfs_cache.Block.Key.v 1 i)
               (Capfs_disk.Data.sim 16)
           done;
           cache := Some c));
    Capfs_sched.Sched.run s;
    let c = Option.get !cache in
    let i = ref 0 in
    Test.make ~name:"cache: hit lookup + LRU touch"
      (Staged.stage (fun () ->
           let s2 = Capfs_sched.Sched.create ~clock:`Virtual () in
           ignore
             (Capfs_sched.Sched.spawn s2 (fun () ->
                  incr i;
                  ignore
                    (Capfs_cache.Cache.read c
                       (Capfs_cache.Block.Key.v 1 (!i mod 512))
                       ~fill:(fun _ -> Capfs_disk.Data.sim 16))));
           Capfs_sched.Sched.run s2))
  in
  let lru_bench =
    let p = Capfs_cache.Replacement.lru () in
    let blocks =
      Array.init 1024 (fun i ->
          Capfs_cache.Block.make ~key:(Capfs_cache.Block.Key.v 1 i)
            ~data:(Capfs_disk.Data.sim 16) ~now:0.)
    in
    Array.iter (Capfs_cache.Replacement.insert p) blocks;
    let i = ref 0 in
    Test.make ~name:"replacement: lru access (move-to-front)"
      (Staged.stage (fun () ->
           incr i;
           Capfs_cache.Replacement.access p blocks.(!i mod 1024)))
  in
  let heap_bench =
    Test.make ~name:"heap: push+pop 64 timers"
      (Staged.stage (fun () ->
           let h = Capfs_sched.Heap.create ~cmp:compare in
           for i = 0 to 63 do
             Capfs_sched.Heap.push h ((i * 37) mod 64)
           done;
           while Capfs_sched.Heap.pop h <> None do
             ()
           done))
  in
  let geometry_bench =
    let g = Capfs_disk.Disk_model.hp97560.Capfs_disk.Disk_model.geometry in
    let i = ref 0 in
    Test.make ~name:"geometry: lba->chs with skew"
      (Staged.stage (fun () ->
           incr i;
           ignore (Capfs_disk.Geometry.pos_of_lba g (!i * 7919 mod 2000000))))
  in
  let seek_bench =
    let i = ref 0 in
    Test.make ~name:"seek: hp97560 curve"
      (Staged.stage (fun () ->
           incr i;
           ignore (Capfs_disk.Seek.time Capfs_disk.Seek.hp97560
                     ~distance:(!i mod 1961 + 1))))
  in
  let inode_bench =
    let inode =
      Capfs_layout.Inode.make ~ino:42 ~kind:Capfs_layout.Inode.Regular ~now:0.
    in
    for i = 0 to 31 do
      Capfs_layout.Inode.set_addr inode i (i * 100)
    done;
    Test.make ~name:"codec: inode serialize+parse"
      (Staged.stage (fun () ->
           ignore
             (Capfs_layout.Inode.deserialize
                (Capfs_layout.Inode.serialize inode ~indirect:[]))))
  in
  let key_bench =
    let i = ref 0 in
    Test.make ~name:"block-key: pack+hash"
      (Staged.stage (fun () ->
           incr i;
           ignore
             (Capfs_cache.Block.Key.hash
                (Capfs_cache.Block.Key.v (!i land 0xffff) (!i land 0xff)))))
  in
  let prng_bench =
    let p = Stats.Prng.create ~seed:1 in
    Test.make ~name:"prng: splitmix64 draw"
      (Staged.stage (fun () -> ignore (Stats.Prng.float p)))
  in
  let tests =
    [ sched_bench; cache_hit_bench; lru_bench; heap_bench; geometry_bench;
      seek_bench; inode_bench; key_bench; prng_bench ]
  in
  let clock = Toolkit.Instance.monotonic_clock in
  let benchmark test =
    let quota = Time.second 0.25 in
    Benchmark.all (Benchmark.cfg ~quota ~kde:None ()) [ clock ] test
  in
  let ols results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      clock results
  in
  List.iter
    (fun test ->
      let results = ols (benchmark test) in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Format.printf "  %-40s %12.1f ns/run@." name est
          | Some _ | None -> Format.printf "  %-40s (no estimate)@." name)
        results)
    tests

(* {1 BENCH_results.json}

   Schema (one object): { "preset", "jobs", "duration_s",
   "results": [ { "label", "trace", "policy", "worker", "ok",
   "wall_s", "operations", "replayed_ops_per_s", "mean_latency_ms",
   "p95_latency_ms", "cache_hit_rate", "blocks_flushed",
   "writes_absorbed", "errors", "skipped_ops", "errors_by_kind",
   "sim_elapsed_s",
   "minor_words_per_op", "promoted_words_per_op",
   "major_collections" } ] } — the GC fields are per-domain
   Gc.quick_stat deltas taken around the experiment (see Fleet);
   failed jobs carry "ok": false and "error" instead of the figures. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  (* JSON has no inf/nan; clamp to null *)
  if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let result_json (r : Fleet.job_result) =
  let j = r.Fleet.job in
  let common =
    [
      ("label", Printf.sprintf "%S" (json_escape j.Fleet.label));
      ("trace", Printf.sprintf "%S" (json_escape j.Fleet.trace));
      ( "policy",
        Printf.sprintf "%S"
          (json_escape (Experiment.policy_name j.Fleet.config.Experiment.policy)) );
      ("worker", string_of_int r.Fleet.worker);
      ("wall_s", json_float r.Fleet.wall_s);
    ]
  in
  let fields =
    match r.Fleet.result with
    | Error e ->
      common
      @ [
          ("ok", "false");
          ( "error",
            Printf.sprintf "%S"
              (json_escape (Format.asprintf "%a" Fleet.pp_failure e)) );
        ]
    | Ok o ->
      let ops = o.Experiment.replay.Replay.operations in
      common
      @ [
          ("ok", "true");
          ("operations", string_of_int ops);
          ( "replayed_ops_per_s",
            json_float
              (if r.Fleet.wall_s > 0. then float_of_int ops /. r.Fleet.wall_s
               else 0.) );
          ( "mean_latency_ms",
            json_float
              (1000. *. Stats.Sample_set.mean o.Experiment.replay.Replay.latency) );
          ( "p95_latency_ms",
            json_float
              (1000.
               *. (try
                     Stats.Sample_set.quantile o.Experiment.replay.Replay.latency
                       0.95
                   with Invalid_argument _ -> 0.)) );
          ("cache_hit_rate", json_float o.Experiment.cache_hit_rate);
          ("blocks_flushed", string_of_int o.Experiment.blocks_flushed);
          ("writes_absorbed", string_of_int o.Experiment.writes_absorbed);
          ("errors", string_of_int o.Experiment.replay.Replay.errors);
          ("skipped_ops", string_of_int o.Experiment.replay.Replay.skipped_ops);
          ( "errors_by_kind",
            "{"
            ^ String.concat ", "
                (List.map
                   (fun (kind, n) ->
                     Printf.sprintf "%S: %d" (json_escape kind) n)
                   o.Experiment.replay.Replay.errors_by_kind)
            ^ "}" );
          ("sim_elapsed_s", json_float o.Experiment.replay.Replay.elapsed);
          ( "minor_words_per_op",
            json_float
              (if ops > 0 then r.Fleet.minor_words /. float_of_int ops
               else 0.) );
          ( "promoted_words_per_op",
            json_float
              (if ops > 0 then r.Fleet.promoted_words /. float_of_int ops
               else 0.) );
          ("major_collections", string_of_int r.Fleet.major_collections);
        ]
  in
  "    {"
  ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" k v) fields)
  ^ "}"

let write_results_json ~path ~preset ~jobs ~duration results =
  let oc = open_out path in
  output_string oc "{\n";
  output_string oc (Printf.sprintf "  \"preset\": %S,\n" (json_escape preset));
  output_string oc (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  output_string oc
    (Printf.sprintf "  \"duration_s\": %s,\n" (json_float duration));
  output_string oc "  \"results\": [\n";
  output_string oc (String.concat ",\n" (List.map result_json results));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  Format.printf "@.wrote %s (%d experiments)@." path (List.length results)

(* {1 perfsmoke}

   The CI guard: replay one small trace (sprite-1a) across the four
   policies and print the aggregate replayed ops/s so a workflow step
   can compare it against a committed floor. The floor should be set
   generously (an order of magnitude below typical) — it exists to
   catch 5x-style regressions, not scheduling noise. *)

let perfsmoke ~jobs ~duration =
  section "perf smoke: sprite-1a, all policies";
  let pairs =
    List.map (fun p -> ("sprite-1a", p)) Experiment.all_policies
  in
  let results =
    Fleet.run_matrix ~jobs
      ~config:(fun policy -> experiment_config ~policy ())
      ~gen:(gen_trace ~duration) pairs
  in
  results_log := !results_log @ results;
  let total_ops, total_wall =
    List.fold_left
      (fun (ops, wall) (r : Fleet.job_result) ->
        match r.Fleet.result with
        | Ok o ->
          ( ops + o.Experiment.replay.Replay.operations,
            wall +. r.Fleet.wall_s )
        | Error _ -> (ops, wall))
      (0, 0.) results
  in
  List.iter
    (fun (r : Fleet.job_result) ->
      match r.Fleet.result with
      | Ok o ->
        let ops = o.Experiment.replay.Replay.operations in
        Format.printf "  %-28s %9.0f ops/s  %10.1f minor words/op@."
          r.Fleet.job.Fleet.label
          (if r.Fleet.wall_s > 0. then float_of_int ops /. r.Fleet.wall_s
           else 0.)
          (if ops > 0 then r.Fleet.minor_words /. float_of_int ops else 0.)
      | Error e ->
        Format.printf "  %-28s FAILED: %a@." r.Fleet.job.Fleet.label
          Fleet.pp_failure e)
    results;
  (* the line CI parses: *)
  Format.printf "perfsmoke_total_ops_per_s %.0f@."
    (if total_wall > 0. then float_of_int total_ops /. total_wall else 0.)

(* {1 Baseline gate (-baseline FILE)}

   Compares the run just performed against a committed
   BENCH_results.json, per experiment label. Two checks:

   - [minor_words_per_op] is deterministic on a given machine, so any
     per-label growth beyond 10 % means a real allocation slipped into
     the replay path — fail. (The zero-copy data plane roughly halved
     the figure; the gate is tight so it stays down.)
   - throughput is wall-clock and therefore noisy per cell (the light
     cells finish in ~0.2 s), so [replayed_ops_per_s] is gated in
     aggregate: total replayed operations over total wall seconds across
     the matched labels must not drop more than 25 %.

   Exits 1 on violation, 2 if nothing overlaps (a vacuous gate is a
   misconfigured gate). The CI smoke job runs
   [figures -j 1 -traces sprite-1a,sprite-1b -baseline BENCH_results.json]. *)

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let i = ref from and found = ref (-1) in
  while !found < 0 && !i + m <= n do
    if String.sub s !i m = sub then found := !i else incr i
  done;
  if !found < 0 then None else Some !found

(* Pull ["name": <scalar>] out of one result line of our own JSON
   writer. Good enough for the schema we emit; not a JSON parser. *)
let json_number line name =
  match find_sub line (Printf.sprintf "\"%s\": " name) 0 with
  | None -> None
  | Some i ->
    let start = i + String.length name + 4 in
    let stop = ref start in
    let n = String.length line in
    while
      !stop < n && (match line.[!stop] with ',' | '}' | '\n' -> false | _ -> true)
    do
      incr stop
    done;
    float_of_string_opt (String.trim (String.sub line start (!stop - start)))

let json_string line name =
  match find_sub line (Printf.sprintf "\"%s\": \"" name) 0 with
  | None -> None
  | Some i ->
    let start = i + String.length name + 5 in
    Option.map
      (fun stop -> String.sub line start (stop - start))
      (String.index_from_opt line start '"')

type baseline_row = { b_ops : float; b_wall : float; b_minor : float }

let read_baseline path =
  let ic = open_in path in
  let rows = Hashtbl.create 32 in
  (try
     while true do
       let line = input_line ic in
       match json_string line "label" with
       | None -> ()
       | Some label -> (
         match
           ( json_number line "operations",
             json_number line "wall_s",
             json_number line "minor_words_per_op" )
         with
         | Some b_ops, Some b_wall, Some b_minor ->
           Hashtbl.replace rows label { b_ops; b_wall; b_minor }
         | _ -> ())
     done
   with End_of_file -> ());
  close_in ic;
  rows

let baseline_gate ~path results =
  section (Printf.sprintf "baseline gate: vs %s" path);
  let base = read_baseline path in
  let fresh =
    List.filter_map
      (fun (r : Fleet.job_result) ->
        match r.Fleet.result with
        | Error _ -> None
        | Ok o ->
          let ops = float_of_int o.Experiment.replay.Replay.operations in
          let minor =
            if ops > 0. then r.Fleet.minor_words /. ops else 0.
          in
          Some (r.Fleet.job.Fleet.label, ops, r.Fleet.wall_s, minor))
      results
  in
  let failures = ref 0 in
  let ops_new = ref 0. and wall_new = ref 0. in
  let ops_base = ref 0. and wall_base = ref 0. in
  let matched = ref 0 in
  List.iter
    (fun (label, ops, wall, minor) ->
      match Hashtbl.find_opt base label with
      | None -> Format.printf "  %-36s (not in baseline, skipped)@." label
      | Some b ->
        incr matched;
        ops_new := !ops_new +. ops;
        wall_new := !wall_new +. wall;
        ops_base := !ops_base +. b.b_ops;
        wall_base := !wall_base +. b.b_wall;
        let growth =
          if b.b_minor > 0. then (minor -. b.b_minor) /. b.b_minor else 0.
        in
        let bad = growth > 0.10 in
        if bad then incr failures;
        Format.printf "  %-36s minor_words/op %8.1f -> %8.1f (%+5.1f%%)%s@."
          label b.b_minor minor (100. *. growth)
          (if bad then "  FAIL (> +10%)" else ""))
    fresh;
  if !matched = 0 then begin
    Format.printf "  no overlapping experiments with the baseline — refusing \
                   to pass vacuously@.";
    exit 2
  end;
  let tput_new = if !wall_new > 0. then !ops_new /. !wall_new else 0. in
  let tput_base = if !wall_base > 0. then !ops_base /. !wall_base else 0. in
  let drop =
    if tput_base > 0. then (tput_base -. tput_new) /. tput_base else 0.
  in
  let tput_bad = drop > 0.25 in
  if tput_bad then incr failures;
  Format.printf
    "  aggregate replayed_ops_per_s %10.0f -> %10.0f (%+5.1f%%)%s@." tput_base
    tput_new
    (-100. *. drop)
    (if tput_bad then "  FAIL (> -25%)" else "");
  if !failures > 0 then begin
    Format.printf "baseline gate: %d failure(s)@." !failures;
    exit 1
  end
  else Format.printf "baseline gate: ok (%d experiment(s) compared)@." !matched


(* {1 gentrace / streamsmoke: the large-trace streaming smoke}

   Two subcommands, two separate processes by design: [gentrace]
   materializes a ~N-record synthetic trace and saves it in sprite text
   form (generation inherently builds the array — the generator ends
   with a global time sort), then [streamsmoke] replays that file
   through the cursor-backed source in a fresh process, so the peak RSS
   it reports reflects streamed replay alone, not generation. *)

let gentrace ~out ~records ~seed =
  section (Printf.sprintf "gentrace: ~%d records -> %s" records out);
  let profile = Synth.profile_by_name (List.hd !trace_names) in
  (* record volume scales ~linearly with duration: calibrate on a short
     sample, then generate the real thing *)
  let sample_dur = 120. in
  let sample = Synth.generate ~seed ~duration:sample_dur profile in
  let per_s = float_of_int (Array.length sample) /. sample_dur in
  let duration = float_of_int records /. per_s in
  let trace = Synth.generate ~seed ~duration profile in
  Capfs_trace.Sprite_format.save out trace;
  Format.printf "gentrace_records %d@." (Array.length trace);
  Format.printf "gentrace_simulated_s %.0f@." duration

(* peak resident set of this process, from /proc (Linux only) *)
let vm_hwm_mb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    let rec go acc =
      match input_line ic with
      | exception End_of_file -> acc
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          go
            (int_of_string_opt
               (String.trim
                  (String.map
                     (function '0' .. '9' as c -> c | _ -> ' ')
                     (String.sub line 6 (String.length line - 6))
                   |> String.trim |> String.split_on_char ' ' |> List.hd)))
        else go acc
    in
    let r = go None in
    close_in ic;
    Option.map (fun kb -> float_of_int kb /. 1024.) r

let streamsmoke ~file ~rss_mb =
  section (Printf.sprintf "stream smoke: %s" file);
  let source = Capfs_trace.Source.sprite_file file in
  let config = experiment_config ~policy:Experiment.Ups () in
  let t0 = Unix.gettimeofday () in
  let o = Experiment.run config ~trace:source in
  let wall = Unix.gettimeofday () -. t0 in
  let ops = o.Experiment.replay.Replay.operations in
  Format.printf "streamsmoke_ops %d@." ops;
  Format.printf "streamsmoke_errors %d@." o.Experiment.replay.Replay.errors;
  Format.printf "streamsmoke_ops_per_s %.0f@."
    (if wall > 0. then float_of_int ops /. wall else 0.);
  (match vm_hwm_mb () with
  | None -> Format.printf "streamsmoke_vm_hwm_mb unavailable@."
  | Some hwm ->
    Format.printf "streamsmoke_vm_hwm_mb %.1f@." hwm;
    match rss_mb with
    | Some ceiling when hwm > float_of_int ceiling ->
      Format.printf
        "streamsmoke: FAIL peak RSS %.1f MB exceeds the %d MB ceiling — \
         streamed replay is materializing the trace@."
        hwm ceiling;
      exit 1
    | Some ceiling ->
      Format.printf "streamsmoke: ok (peak RSS %.1f MB <= %d MB)@." hwm
        ceiling
    | None -> ())

(* {1 Main} *)

let usage =
  "usage: main.exe [quick|full|figures|ablations|micro|perfsmoke\
   |gentrace|streamsmoke] [-j N] [-trace-out FILE] [-no-coalesce] \
   [-traces T1,T2] [-baseline FILE] [-o FILE] [-records N] [-file FILE] \
   [-rss-mb MB]"

let parse_args () =
  let preset = ref "default" in
  let jobs = ref (Fleet.default_jobs ()) in
  let trace_out = ref None in
  let baseline = ref None in
  let out = ref "stream.trace" in
  let records = ref 1_000_000 in
  let file = ref None in
  let rss_mb = ref None in
  let rec go i =
    if i < Array.length Sys.argv then
      match Sys.argv.(i) with
      | "-j" | "--jobs" ->
        if i + 1 >= Array.length Sys.argv then failwith usage;
        jobs := int_of_string Sys.argv.(i + 1);
        go (i + 2)
      | s when String.length s > 2 && String.sub s 0 2 = "-j" ->
        jobs := int_of_string (String.sub s 2 (String.length s - 2));
        go (i + 1)
      | "-trace-out" | "--trace-out" ->
        if i + 1 >= Array.length Sys.argv then failwith usage;
        trace_out := Some Sys.argv.(i + 1);
        go (i + 2)
      | "-no-coalesce" | "--no-coalesce" ->
        coalesce := false;
        go (i + 1)
      | "-traces" | "--traces" ->
        if i + 1 >= Array.length Sys.argv then failwith usage;
        trace_names := String.split_on_char ',' Sys.argv.(i + 1);
        go (i + 2)
      | "-baseline" | "--baseline" ->
        if i + 1 >= Array.length Sys.argv then failwith usage;
        baseline := Some Sys.argv.(i + 1);
        go (i + 2)
      | "-o" | "--out" ->
        if i + 1 >= Array.length Sys.argv then failwith usage;
        out := Sys.argv.(i + 1);
        go (i + 2)
      | "-records" | "--records" ->
        if i + 1 >= Array.length Sys.argv then failwith usage;
        records := int_of_string Sys.argv.(i + 1);
        go (i + 2)
      | "-file" | "--file" ->
        if i + 1 >= Array.length Sys.argv then failwith usage;
        file := Some Sys.argv.(i + 1);
        go (i + 2)
      | "-rss-mb" | "--rss-mb" ->
        if i + 1 >= Array.length Sys.argv then failwith usage;
        rss_mb := Some (int_of_string Sys.argv.(i + 1));
        go (i + 2)
      | s ->
        preset := s;
        go (i + 1)
  in
  go 1;
  (!preset, Stdlib.max 1 !jobs, !trace_out, !baseline, !out, !records, !file,
   !rss_mb)

let () =
  let preset, jobs, trace_out, baseline, out, records, file, rss_mb =
    parse_args ()
  in
  if trace_out <> None then trace_buffer := 65536;
  (* standalone subcommands: no matrix, no BENCH_results.json rewrite *)
  (match preset with
  | "gentrace" ->
    gentrace ~out ~records ~seed:1996;
    exit 0
  | "streamsmoke" ->
    (match file with
    | Some f -> streamsmoke ~file:f ~rss_mb
    | None -> failwith usage);
    exit 0
  | _ -> ());
  let duration, do_figures, do_ablations, do_micro, do_perfsmoke =
    match preset with
    | "quick" -> (300., true, true, true, false)
    | "full" -> (3600., true, true, true, false)
    | "figures" -> (900., true, false, false, false)
    | "ablations" -> (900., false, true, false, false)
    | "micro" -> (0., false, false, true, false)
    | "perfsmoke" -> (900., false, false, false, true)
    | _ -> (900., true, true, true, false)
  in
  Format.printf
    "cut-and-paste file-systems benchmark harness (preset: %s, %.0f \
     simulated seconds per run, -j %d)@."
    preset duration jobs;
  if do_figures then begin
    let matrix = run_matrix ~jobs ~duration in
    List.iter
      (fun (figure, trace) ->
        if List.mem trace !trace_names then figure_cdf ~matrix ~figure trace)
      [ (2, "sprite-1a"); (3, "sprite-1b"); (4, "sprite-5") ];
    figure5 ~matrix
  end;
  if do_ablations then begin
    ablation_sync_flush ~duration;
    ablation_cleaner ~jobs ~duration;
    ablation_iosched ~jobs ~duration;
    ablation_replacement ~jobs ~duration;
    ablation_disk_features ~jobs ~duration;
    ablation_cache_size ~jobs ~duration;
    ablation_nvram_size ~jobs ~duration;
    ablation_client_caching ()
  end;
  if do_micro then micro ();
  if do_perfsmoke then perfsmoke ~jobs ~duration;
  if !results_log <> [] then
    write_results_json ~path:"BENCH_results.json" ~preset ~jobs ~duration
      !results_log;
  (match trace_out with
  | None -> ()
  | Some path ->
    let stream = Fleet.merged_events !results_log in
    Capfs_obs.Export.to_file path stream;
    Format.printf "@.wrote %d trace events to %s@." (List.length stream) path);
  (match baseline with
  | None -> ()
  | Some path -> baseline_gate ~path !results_log);
  Format.printf "@.done.@."
