(** Pre-resolved statistics handles.

    [Registry.record r ("cache" ^ "." ^ "hits")] costs a string
    allocation, a string hash and a table probe on every call — on the
    replay hot path that is most of the work. A [Counter.t] resolves the
    name once, at component construction time: it pins the underlying
    {!Stat.t} together with its enabled flag, so recording is a single
    mutable-field check plus the raw {!Stat.record}.

    Handles stay live across {!Registry.set_enabled}: the registry
    stores these same handles, so toggling a prefix flips the
    [enabled] field the handle already reads. *)

type t

(** [make stat] — a fresh enabled handle. Normally obtained via
    {!Registry.counter} instead, so toggling by name works. *)
val make : Stat.t -> t

(** A permanently disabled handle: [record] is a no-op. Components
    constructed without a registry use this so the hot path carries no
    option check. *)
val null : t

(** [record t x] records [x] iff the handle is enabled. *)
val record : t -> float -> unit

(** [incr t] is [record t 1.0]. *)
val incr : t -> unit

val stat : t -> Stat.t
val is_enabled : t -> bool

(** [set_enabled t on] flips the handle directly. Prefer
    {!Registry.set_enabled} (by prefix) in application code. *)
val set_enabled : t -> bool -> unit

val name : t -> string
