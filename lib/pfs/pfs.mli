(** PFS: the on-line instantiation of the cut-and-paste framework.

    Assembles the same components Patsy uses — driver with C-LOOK
    queueing, block cache with a pluggable flush policy, segmented LFS,
    abstract client interface — over a {e real} clock and a {e real}
    Unix-file block device, and puts the NFS front end on top. "We did
    not have to change anything in the code except for some small
    additions when data was actually moved."

    Construction is two steps: build a validated {!Config.t}, then
    {!create} a volume from it. Every front end — the pfs shell, the
    sharded multi-client server ({!Server}), the load generator, the
    differential validator — goes through the same pair, so a
    configuration knob exists in exactly one place. *)

(** The fixed PFS block size (4096 bytes) — the unit the cache, the
    layouts, the reply arena and the cached client all agree on. *)
val block_bytes : int

(** A full description of one PFS volume: backing image, cache policy
    knobs, layout geometry, scheduler clock. The record is deliberately
    flat and immutable — build one with {!Config.make}, adjust with
    functional update, and let {!Config.validate} (called again by
    {!create}) reject nonsense with a typed [EINVAL] instead of a crash
    deep in construction. *)
module Config : sig
  type t = {
    image : string;  (** backing image path (created when missing) *)
    size_mb : int;  (** image size when creating, MB *)
    cache_mb : int;  (** block-cache capacity, MB *)
    nvram_mb : int;  (** NVRAM staging area, MB (0 = none) *)
    trigger : Capfs_cache.Cache.flush_trigger;
    scope : Capfs_cache.Cache.flush_scope;
    iosched : string;  (** disk-scheduling policy name *)
    replacement : string;  (** cache-replacement policy name *)
    seg_blocks : int;  (** LFS segment size, blocks *)
    cleaner : Capfs_layout.Lfs.cleaner_policy;
    async_flush : bool;
    mem_copy_rate : float;  (** simulated copy cost, s/byte (0 = free) *)
    coalesce : bool;  (** merge adjacent I/O in cache and driver *)
    flush_window : int;  (** concurrent flush extents *)
    max_extent : int;  (** largest coalesced extent, blocks *)
    workers : int;  (** NFS worker fibres (0 = direct calls only) *)
    shards : int;  (** server namespace shards (see {!Server}) *)
    admission : int;
        (** per-shard admission limit: in-flight requests beyond this
            are refused with a typed [EAGAIN] (0 = unlimited) *)
    lease_s : float;
        (** client-cache lease duration stamped into {!Wire.grant}s:
            how long a {!Cached_client} may serve local hits before
            renewing (must be positive) *)
    clock : Capfs_sched.Sched.clock;
    seed : int;  (** PRNG seed (scheduler and replacement policy) *)
  }

  (** [make ~image ()] — a classic Unix server: 64 MB image, 16 MB
      cache, 30-second-update whole-file flushes, C-LOOK, LRU, real
      clock, one shard. Every field has a keyword to override. *)
  val make :
    ?size_mb:int ->
    ?cache_mb:int ->
    ?nvram_mb:int ->
    ?trigger:Capfs_cache.Cache.flush_trigger ->
    ?scope:Capfs_cache.Cache.flush_scope ->
    ?iosched:string ->
    ?replacement:string ->
    ?seg_blocks:int ->
    ?cleaner:Capfs_layout.Lfs.cleaner_policy ->
    ?async_flush:bool ->
    ?mem_copy_rate:float ->
    ?coalesce:bool ->
    ?flush_window:int ->
    ?max_extent:int ->
    ?workers:int ->
    ?shards:int ->
    ?admission:int ->
    ?lease_s:float ->
    ?clock:Capfs_sched.Sched.clock ->
    ?seed:int ->
    image:string ->
    unit ->
    t

  (** [validate t] checks every field against its domain (positive
      sizes, known policy names from
      {!Capfs_disk.Iosched.known_policies} and
      {!Capfs_cache.Replacement.known_policies}, non-empty image path)
      and returns the config unchanged or [Error EINVAL], logging each
      violation. {!create} validates again, so callers building configs
      in OCaml may skip this; front ends parsing user input should not.
  *)
  val validate : t -> (t, Capfs_core.Errno.t) result

  (** The [KEY=VALUE] strings {!of_args} accepts — one per
      configuration knob. *)
  val keys : string list

  (** Manpage-style description of the [KEY=VALUE] grammar, for CLI
      [--set] documentation. *)
  val arg_doc : string

  (** [of_args args] folds [KEY=VALUE] settings over [base] (default:
      [make ~image:"" ()] — supply [base] or a [size-mb]/[image]-less
      override set and set the image on the result) and validates.
      Unknown keys, malformed values and out-of-domain results are all
      [Error EINVAL]. This is the {e single} argument grammar shared by
      the pfs CLI, the load generator and test fixtures. *)
  val of_args : ?base:t -> string list -> (t, Capfs_core.Errno.t) result
end

type t = {
  sched : Capfs_sched.Sched.t;
      (** the volume's scheduler (real clock in production, virtual in
          tests) *)
  client : Capfs.Client.t;  (** the abstract client interface *)
  nfs : Nfs.t;  (** the NFS front end *)
  image_path : string;  (** backing image the volume runs on *)
  registry : Capfs_stats.Registry.t option;
      (** the registry passed to {!create}, if any — the handle
          {!snapshot} freezes *)
  config : Config.t;  (** the validated config the volume was built from *)
  transport : Capfs_disk.Driver.transport;
      (** the Unix-file block device under the driver *)
}

(** [create cfg] opens (formatting when fresh or invalid) the
    file-system image at [cfg.image] and assembles one volume: driver,
    cache, LFS behind a single-way {!Capfs_layout.Multiplex.layout},
    NFS front end. Validation failures and typed construction errors
    come back as [Error]; [injector] threads a fault plan into the
    scheduler (the differential validator's hook). *)
val create :
  ?registry:Capfs_stats.Registry.t ->
  ?injector:Capfs_fault.Injector.t ->
  Config.t ->
  (t, Capfs_core.Errno.t) result

(** Flush everything, checkpoint, and close the backing image (call
    before exiting). *)
val shutdown : t -> unit

(** [snapshot t] freezes the volume's statistics registry restricted to
    the policy-visible keys ({!Capfs_stats.Snapshot.policy_visible}) —
    the on-line half of a differential sim-vs-real comparison. [None]
    when {!create} was given no registry. Capture after a sync (e.g.
    {!shutdown}) for complete flush counters. *)
val snapshot : t -> Capfs_stats.Snapshot.t option

(** {2 Deprecated one-call interface}

    The pre-{!Config} API, kept for one release. [config]'s six fields
    are a strict subset of {!Config.t}; [start] raises on failure where
    {!create} returns a typed error. *)

type config = {
  cache_mb : int;
  nvram_mb : int;
  trigger : Capfs_cache.Cache.flush_trigger;
  scope : Capfs_cache.Cache.flush_scope;
  iosched : string;
  workers : int;  (** NFS worker fibres *)
}

val default_config : config
[@@ocaml.deprecated "Use Pfs.Config.make instead."]

val start :
  ?clock:Capfs_sched.Sched.clock ->
  ?config:config ->
  ?registry:Capfs_stats.Registry.t ->
  image:string ->
  size_mb:int ->
  unit ->
  t
[@@ocaml.deprecated "Use Pfs.Config.make + Pfs.create instead."]
