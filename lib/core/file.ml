module Sched = Capfs_sched.Sched
module Cache = Capfs_cache.Cache
module Key = Capfs_cache.Block.Key
module Layout = Capfs_layout.Layout
module Inode = Capfs_layout.Inode
module Data = Capfs_disk.Data
module Errno = Capfs_core.Errno

type t = {
  fsys : Fsys.t;
  inode : Inode.t;
  fill : Key.t -> Data.t; (* one layout-read closure per file, not per read *)
  mutable opens : int;
  mutable mm_high_water : int; (* furthest block read, for prefetch *)
  mutable mm_running : bool;
}

let mm_window_blocks = 32

let instantiate fsys inode =
  let fill key =
    Errno.ok_exn (fsys.Fsys.layout.Layout.read_block inode (Key.index key))
  in
  { fsys; inode; fill; opens = 0; mm_high_water = 0; mm_running = false }

let inode t = t.inode
let ino t = t.inode.Inode.ino
let kind t = t.inode.Inode.kind
let size t = t.inode.Inode.size

let block_bytes t = t.fsys.Fsys.config.Fsys.block_bytes

let read_cached_block t idx =
  Cache.read t.fsys.Fsys.cache (Key.v (ino t) idx) ~fill:t.fill

(* {2 Multimedia prefetch fibre} *)

let mm_prefetch_loop t () =
  let bb = block_bytes t in
  while t.mm_running && t.opens > 0 do
    let last_block = (Stdlib.max 0 (size t - 1)) / bb in
    let target = Stdlib.min last_block (t.mm_high_water + mm_window_blocks) in
    let rec preload idx =
      if idx <= target && t.mm_running then begin
        ignore (read_cached_block t idx);
        preload (idx + 1)
      end
    in
    preload t.mm_high_water;
    (* wake up often enough to stay ahead of a real-time reader *)
    Sched.sleep t.fsys.Fsys.sched 0.005
  done;
  t.mm_running <- false

let maybe_start_mm t =
  if kind t = Inode.Multimedia && not t.mm_running then begin
    t.mm_running <- true;
    ignore
      (Sched.spawn t.fsys.Fsys.sched
         ~name:(Printf.sprintf "mm-%d" (ino t))
         ~daemon:true (mm_prefetch_loop t))
  end

let opened t =
  t.opens <- t.opens + 1;
  maybe_start_mm t

let closed t =
  if t.opens <= 0 then invalid_arg "File.closed: not open";
  t.opens <- t.opens - 1;
  if t.opens = 0 then t.mm_running <- false

let open_count t = t.opens

(* {2 Reads} *)

let read t ~offset ~bytes =
  if offset < 0 || bytes < 0 then invalid_arg "File.read: negative range";
  let bb = block_bytes t in
  let available = Stdlib.max 0 (size t - offset) in
  let len = Stdlib.min bytes available in
  if len = 0 then Data.sim 0
  else begin
    let first = offset / bb and last = (offset + len - 1) / bb in
    if kind t = Inode.Multimedia then
      t.mm_high_water <- Stdlib.max t.mm_high_water last;
    let result =
      if first = last then
        (* common case: the range lives in one block — no part list,
           no concat *)
        let block = read_cached_block t first in
        Data.sub block ~pos:(offset - (first * bb)) ~len
      else
        let parts =
          List.init (last - first + 1) (fun k ->
              let idx = first + k in
              let block = read_cached_block t idx in
              let lo = Stdlib.max offset (idx * bb) in
              let hi = Stdlib.min (offset + len) ((idx + 1) * bb) in
              Data.sub block ~pos:(lo - (idx * bb)) ~len:(hi - lo))
        in
        Data.concat parts
    in
    if t.fsys.Fsys.config.Fsys.track_atime then begin
      t.inode.Inode.atime <- Fsys.now t.fsys;
      t.fsys.Fsys.layout.Layout.update_inode t.inode
    end;
    result
  end

(* {2 Writes} *)

(* Merge [src] into [old] at [at]: real+real blits bytes; anything
   simulated stays simulated (there are no bytes to preserve). *)
let merge_block ~block_bytes ~old ~at src =
  match old with
  | Data.Real _ | Data.Gather _ | Data.Slice _ ->
    let merged = Bytes.make block_bytes '\000' in
    Bytes.blit_string (Data.to_string old) 0 merged 0
      (Stdlib.min block_bytes (Data.length old));
    let out = Data.Real merged in
    Data.blit ~src ~src_pos:0 ~dst:out ~dst_pos:at ~len:(Data.length src);
    out
  | Data.Sim _ ->
    (* a hole (or simulated contents, which hold no bytes anyway):
       merge real data into zeroes *)
    if Data.is_real src then begin
      let out = Data.real block_bytes in
      Data.blit ~src ~src_pos:0 ~dst:out ~dst_pos:at ~len:(Data.length src);
      out
    end
    else Data.sim block_bytes

let write t ~offset data =
  if offset < 0 then invalid_arg "File.write: negative offset";
  let bb = block_bytes t in
  let len = Data.length data in
  if len > 0 then begin
    let first = offset / bb and last = (offset + len - 1) / bb in
    for idx = first to last do
      let lo = Stdlib.max offset (idx * bb) in
      let hi = Stdlib.min (offset + len) ((idx + 1) * bb) in
      let slice = Data.sub data ~pos:(lo - offset) ~len:(hi - lo) in
      let at = lo - (idx * bb) in
      let whole_block = at = 0 && hi - lo = bb in
      let covers_tail =
        (* a partial block that starts at 0 and reaches EOF needs no
           read-modify-write: there is nothing beyond to preserve *)
        at = 0 && lo + (hi - lo) >= size t
      in
      let block_data =
        if whole_block then
          (* [slice] is exactly one block long: real slices are fresh
             copies, simulated ones are immutable — use it as-is *)
          slice
        else if covers_tail
                && not (Cache.contains t.fsys.Fsys.cache (Key.v (ino t) idx))
                && Inode.get_addr t.inode idx = Inode.addr_none then
          (* fresh tail block: pad to a block *)
          if Data.is_real slice then begin
            let out = Data.real bb in
            Data.blit ~src:slice ~src_pos:0 ~dst:out ~dst_pos:0
              ~len:(Data.length slice);
            out
          end
          else Data.sim bb
        else begin
          let old = read_cached_block t idx in
          merge_block ~block_bytes:bb ~old ~at slice
        end
      in
      Cache.write t.fsys.Fsys.cache (Key.v (ino t) idx) block_data
    done;
    let new_size = Stdlib.max (size t) (offset + len) in
    t.inode.Inode.size <- new_size;
    t.inode.Inode.mtime <- Fsys.now t.fsys;
    t.fsys.Fsys.layout.Layout.update_inode t.inode
  end

let truncate t ~size:new_size =
  if new_size < 0 then invalid_arg "File.truncate: negative size";
  let bb = block_bytes t in
  let old_size = size t in
  if new_size < old_size then begin
    let keep_blocks = (new_size + bb - 1) / bb in
    Cache.truncate t.fsys.Fsys.cache (ino t) ~from:keep_blocks;
    Errno.ok_exn
      (t.fsys.Fsys.layout.Layout.truncate t.inode ~blocks:keep_blocks)
  end;
  t.inode.Inode.size <- new_size;
  t.inode.Inode.mtime <- Fsys.now t.fsys;
  t.fsys.Fsys.layout.Layout.update_inode t.inode

let drop_cached t = Cache.remove_file t.fsys.Fsys.cache (ino t)

let flush t = Cache.flush_file t.fsys.Fsys.cache (ino t)
