lib/ccache/netlink.ml: Capfs_sched Capfs_stats
