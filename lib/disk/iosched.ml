type state = {
  pname : string;
  geometry : Geometry.t;
  mutable queue : Iorequest.t list; (* submission order *)
  mutable direction_up : bool;
  elect : state -> current_cyl:int -> Iorequest.t option;
}

type t = state

let name t = t.pname
let add t r = t.queue <- t.queue @ [ r ]
let length t = List.length t.queue
let pending t = t.queue

let remove t r =
  t.queue <- List.filter (fun q -> q.Iorequest.id <> r.Iorequest.id) t.queue

let next t ~current_cyl =
  match t.elect t ~current_cyl with
  | None -> None
  | Some r ->
    remove t r;
    Some r

let cyl t r = Geometry.cylinder_of_lba t.geometry r.Iorequest.lba

(* Coalescing support: pull every queued request that extends [r] into
   one contiguous same-op span. A candidate must abut or overlap the
   current span (so the union stays gap-free — a merged write must cover
   every sector it claims) and keep the span within [max_sectors].
   Requests carrying deadlines are left alone so scan-EDF ordering stays
   meaningful. Scanning repeats until a fixed point because accepting one
   candidate can bring another into range. *)
let take_adjacent t (r : Iorequest.t) ~max_sectors =
  if r.Iorequest.deadline <> None || max_sectors <= r.Iorequest.sectors then []
  else begin
    let lo = ref r.Iorequest.lba and hi = ref (Iorequest.last_lba r) in
    let taken = ref [] in
    let progress = ref true in
    while !progress do
      progress := false;
      let candidate =
        List.find_opt
          (fun c ->
            c.Iorequest.op = r.Iorequest.op
            && c.Iorequest.deadline = None
            && c.Iorequest.lba <= !hi
            && Iorequest.last_lba c >= !lo
            && Stdlib.max !hi (Iorequest.last_lba c)
               - Stdlib.min !lo c.Iorequest.lba
               <= max_sectors)
          t.queue
      in
      match candidate with
      | Some c ->
        remove t c;
        taken := c :: !taken;
        lo := Stdlib.min !lo c.Iorequest.lba;
        hi := Stdlib.max !hi (Iorequest.last_lba c);
        progress := true
      | None -> ()
    done;
    List.rev !taken
  end

(* Pick the minimum of [candidates] under [key]; submission order (list
   order) breaks ties because [List.fold_left] keeps the earlier one on
   equal keys. *)
let min_by key = function
  | [] -> None
  | first :: rest ->
    let best =
      List.fold_left
        (fun best r -> if key r < key best then r else best)
        first rest
    in
    Some best

let elect_fcfs t ~current_cyl:_ =
  match t.queue with [] -> None | r :: _ -> Some r

let elect_sstf t ~current_cyl =
  min_by (fun r -> abs (cyl t r - current_cyl)) t.queue

(* LOOK/SCAN: nearest request in the travel direction; reverse when the
   direction is exhausted. *)
let elect_look t ~current_cyl =
  if t.queue = [] then None
  else begin
    let ahead_up = List.filter (fun r -> cyl t r >= current_cyl) t.queue in
    let ahead_down = List.filter (fun r -> cyl t r <= current_cyl) t.queue in
    let pick_up () = min_by (fun r -> cyl t r - current_cyl) ahead_up in
    let pick_down () = min_by (fun r -> current_cyl - cyl t r) ahead_down in
    if t.direction_up then
      match pick_up () with
      | Some r -> Some r
      | None ->
        t.direction_up <- false;
        pick_down ()
    else
      match pick_down () with
      | Some r -> Some r
      | None ->
        t.direction_up <- true;
        pick_up ()
  end

(* C-LOOK/C-SCAN: upward only; wrap to the lowest pending request. *)
let elect_clook t ~current_cyl =
  if t.queue = [] then None
  else begin
    let ahead = List.filter (fun r -> cyl t r >= current_cyl) t.queue in
    match min_by (fun r -> cyl t r - current_cyl) ahead with
    | Some r -> Some r
    | None -> min_by (fun r -> cyl t r) t.queue
  end

(* scan-EDF: earliest deadline wins; equal deadlines (and the no-deadline
   class) are served in C-LOOK order. *)
let elect_scan_edf t ~current_cyl =
  if t.queue = [] then None
  else begin
    let deadline r =
      match r.Iorequest.deadline with Some d -> d | None -> infinity
    in
    let earliest =
      List.fold_left (fun acc r -> Stdlib.min acc (deadline r)) infinity
        t.queue
    in
    let batch = List.filter (fun r -> deadline r = earliest) t.queue in
    let ahead = List.filter (fun r -> cyl t r >= current_cyl) batch in
    match min_by (fun r -> cyl t r - current_cyl) ahead with
    | Some r -> Some r
    | None -> min_by (fun r -> cyl t r) batch
  end

let make pname geometry elect =
  { pname; geometry; queue = []; direction_up = true; elect }

let fcfs g = make "fcfs" g elect_fcfs
let sstf g = make "sstf" g elect_sstf
let look g = make "look" g elect_look
let scan g = make "scan" g elect_look
let clook g = make "clook" g elect_clook
let cscan g = make "cscan" g elect_clook
let scan_edf g = make "scan-edf" g elect_scan_edf

let known_policies =
  [ "fcfs"; "sstf"; "scan"; "look"; "cscan"; "clook"; "scan-edf" ]

let by_name g = function
  | "fcfs" -> fcfs g
  | "sstf" -> sstf g
  | "scan" -> scan g
  | "look" -> look g
  | "cscan" -> cscan g
  | "clook" -> clook g
  | "scan-edf" -> scan_edf g
  | s -> invalid_arg ("Iosched.by_name: unknown policy " ^ s)
