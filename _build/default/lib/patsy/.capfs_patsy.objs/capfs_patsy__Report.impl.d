lib/patsy/report.ml: Capfs_stats Experiment Format List Replay
