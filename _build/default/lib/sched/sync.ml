module Mutex = struct
  type t = {
    sched : Sched.t;
    ev : Sched.event;
    mutable held : bool;
  }

  let create ?(name = "mutex") sched =
    { sched; ev = Sched.new_event ~name sched; held = false }

  let rec lock t =
    if not t.held then t.held <- true
    else begin
      Sched.await t.sched t.ev;
      (* Another fibre may have slipped in between wake-up and resume. *)
      lock t
    end

  let try_lock t =
    if t.held then false
    else begin
      t.held <- true;
      true
    end

  let unlock t =
    if not t.held then invalid_arg "Mutex.unlock: not locked";
    t.held <- false;
    Sched.signal t.sched t.ev

  let locked t = t.held

  let with_lock t f =
    lock t;
    match f () with
    | v ->
      unlock t;
      v
    | exception e ->
      unlock t;
      raise e
end

module Semaphore = struct
  type t = {
    sched : Sched.t;
    ev : Sched.event;
    mutable permits : int;
  }

  let create ?(name = "semaphore") sched ~capacity =
    if capacity < 0 then invalid_arg "Semaphore.create: capacity < 0";
    { sched; ev = Sched.new_event ~name sched; permits = capacity }

  let rec acquire t =
    if t.permits > 0 then t.permits <- t.permits - 1
    else begin
      Sched.await t.sched t.ev;
      acquire t
    end

  let try_acquire t =
    if t.permits > 0 then begin
      t.permits <- t.permits - 1;
      true
    end
    else false

  let release t =
    t.permits <- t.permits + 1;
    Sched.signal t.sched t.ev

  let available t = t.permits

  let with_permit t f =
    acquire t;
    match f () with
    | v ->
      release t;
      v
    | exception e ->
      release t;
      raise e
end

module Condition = struct
  type t = { sched : Sched.t; ev : Sched.event }

  let create ?(name = "condition") sched =
    { sched; ev = Sched.new_event ~name sched }

  let wait t m =
    Mutex.unlock m;
    Sched.await t.sched t.ev;
    Mutex.lock m

  let signal t = Sched.signal t.sched t.ev
  let broadcast t = Sched.broadcast t.sched t.ev
end
