(** Little-endian binary encoding helpers for on-disk structures.

    Every persistent structure (superblock, checkpoint, inode, segment
    summary) round-trips through these, so a PFS image written by one
    process mounts in another. A writer appends into a growing buffer; a
    reader walks a string with bounds checking and raises {!Corrupt} on
    malformed input rather than crashing. *)

exception Corrupt of string

module Writer : sig
  type t

  (** A fresh, empty buffer. *)
  val create : unit -> t

  (** One byte; raises [Invalid_argument] outside [0, 255]. *)
  val u8 : t -> int -> unit

  (** Four bytes, little-endian; raises [Invalid_argument] outside
      the unsigned 32-bit range. *)
  val u32 : t -> int -> unit

  (** 63-bit OCaml ints, stored as 8 bytes. *)
  val u64 : t -> int -> unit

  (** IEEE-754 double, 8 bytes. *)
  val f64 : t -> float -> unit

  (** Length-prefixed string. *)
  val string : t -> string -> unit

  (** Raw bytes, {e without} a length prefix — the reader must know the
      length (fixed-size fields, block payloads). *)
  val bytes_raw : t -> bytes -> unit

  (** Everything written so far. *)
  val contents : t -> string

  (** Bytes written so far. *)
  val length : t -> int
end

module Reader : sig
  type t

  (** [of_string s] starts reading at offset 0. *)
  val of_string : string -> t

  (** Each reader consumes the field its {!Writer} counterpart wrote and
      advances; all raise {!Corrupt} when the input is exhausted
      mid-field. [bytes_raw t n] reads exactly [n] bytes. *)

  val u8 : t -> int
  val u32 : t -> int
  val u64 : t -> int
  val f64 : t -> float
  val string : t -> string
  val bytes_raw : t -> int -> bytes

  (** Bytes left to read. *)
  val remaining : t -> int
end

(** [crc s] — a simple 32-bit checksum (Adler-32 flavour) used to verify
    checkpoints and the superblock. *)
val crc : string -> int
