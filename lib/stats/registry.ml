type entry = { stat : Stat.t; mutable enabled : bool }
type t = { table : (string, entry) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let register t stat =
  let name = Stat.name stat in
  if Hashtbl.mem t.table name then
    invalid_arg ("Registry.register: duplicate stat " ^ name);
  Hashtbl.add t.table name { stat; enabled = true }

let find t name =
  match Hashtbl.find_opt t.table name with
  | Some e -> Some e.stat
  | None -> None

let record t name x =
  match Hashtbl.find_opt t.table name with
  | Some e when e.enabled -> Stat.record e.stat x
  | Some _ | None -> ()

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let set_enabled t ~prefix on =
  Hashtbl.iter
    (fun name e -> if starts_with ~prefix name then e.enabled <- on)
    t.table

let enabled t name =
  match Hashtbl.find_opt t.table name with
  | Some e -> e.enabled
  | None -> false

let all t =
  Hashtbl.fold (fun _ e acc -> e.stat :: acc) t.table []
  |> List.sort (fun a b -> compare (Stat.name a) (Stat.name b))

let reset t = Hashtbl.iter (fun _ e -> Stat.reset e.stat) t.table

(* alias: [report]'s [all] parameter shadows the function above *)
let all_stats = all

let report ?histograms ?(all = false) ppf t =
  List.iter
    (fun stat ->
      if enabled t (Stat.name stat) && (all || Stat.count stat > 0) then
        if Stat.count stat = 0 then
          Format.fprintf ppf "%s: (no observations)@." (Stat.name stat)
        else Format.fprintf ppf "%a@." (Stat.report ?histograms) stat)
    (all_stats t)
