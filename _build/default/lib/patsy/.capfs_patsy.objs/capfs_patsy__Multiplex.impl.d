lib/patsy/multiplex.ml: Array Capfs_layout List Printf
