lib/ccache/cc_client.ml: Capfs_disk Cc_server Hashtbl List Queue Stdlib
