(** I/O request descriptors.

    "Simulation disk drivers package disk operations in I/O-request data
    structures [containing] all the relevant information for the disk
    simulator … and timing information to measure the performance of the
    I/O operation." The same structure carries real payloads in PFS. *)

type op = Read | Write

type t = {
  id : int;                      (** unique per process, monotonically increasing *)
  op : op;
  lba : int;                     (** first sector *)
  sectors : int;
  mutable data : Data.t option;  (** write payload in; read result out *)
  deadline : float option;       (** absolute time, for scan-EDF *)
  submitted_at : float;
  mutable started_at : float;    (** when the disk began servicing it *)
  mutable completed_at : float;  (** when completion was reported to the host *)
  done_ev : Capfs_sched.Sched.event;
  mutable completed : bool;
  mutable error : Capfs_core.Errno.t option;
      (** set before [completed] when the device reported a failure *)
  mutable fault_retryable : bool;
      (** with [error]: the failure was a transient (injected) one, worth
          retrying; [false] means a hard error *)
  mutable constituents : t list;
      (** for a merged scatter-gather request: the original queued
          requests it subsumes. {!complete} (and {!fail}) propagate the
          outcome — timing, error, retryability, and per-range read data
          slices — to every constituent before waking the parent's own
          waiters. *)
}

(** [make sched op ~lba ~sectors] stamps the submission time from the
    scheduler clock. Raises [Invalid_argument] on a non-positive sector
    count or negative lba. *)
val make :
  Capfs_sched.Sched.t ->
  op ->
  lba:int ->
  sectors:int ->
  ?deadline:float ->
  ?data:Data.t ->
  unit ->
  t

(** Report completion to the host: stamps [completed_at], sets
    [completed], completes any [constituents], wakes every waiter.
    Idempotent. *)
val complete : Capfs_sched.Sched.t -> t -> unit

(** Report failure: records [error], then {!complete}s. Idempotent (a
    request that already completed keeps its first outcome). *)
val fail : Capfs_sched.Sched.t -> t -> Capfs_core.Errno.t -> unit

(** Block until {!complete} has been called (returns at once if already). *)
val await : Capfs_sched.Sched.t -> t -> unit

(** [await_timeout sched t dt] is [true] if the request completed within
    [dt] seconds (or already had), [false] on timeout. *)
val await_timeout : Capfs_sched.Sched.t -> t -> float -> bool

(** Queueing delay: [started_at - submitted_at]. *)
val wait_time : t -> float

(** Service delay: [completed_at - started_at]. *)
val service_time : t -> float

(** End-to-end: [completed_at - submitted_at]. *)
val response_time : t -> float

(** Sector one past the end. *)
val last_lba : t -> int

(** One-line rendering (id, op, sector range) for logs and debugging. *)
val pp : Format.formatter -> t -> unit
