(* Unit and property tests for capfs_stats. *)

open Capfs_stats

let feq ?(eps = 1e-9) a b = abs_float (a -. b) <= eps

let check_float ?(eps = 1e-9) what expected got =
  if not (feq ~eps expected got) then
    Alcotest.failf "%s: expected %.12g, got %.12g" what expected got

(* Welford *)

let test_welford_basic () =
  let w = Welford.create () in
  List.iter (Welford.add w) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Welford.count w);
  check_float "mean" 5. (Welford.mean w);
  (* unbiased sample variance of that classic data set is 32/7 *)
  check_float ~eps:1e-9 "variance" (32. /. 7.) (Welford.variance w);
  check_float "min" 2. (Welford.min w);
  check_float "max" 9. (Welford.max w);
  check_float "total" 40. (Welford.total w)

let test_welford_empty () =
  let w = Welford.create () in
  Alcotest.(check int) "count" 0 (Welford.count w);
  check_float "mean" 0. (Welford.mean w);
  check_float "variance" 0. (Welford.variance w)

let test_welford_reset () =
  let w = Welford.create () in
  Welford.add w 10.;
  Welford.reset w;
  Alcotest.(check int) "count" 0 (Welford.count w);
  Welford.add w 3.;
  check_float "mean" 3. (Welford.mean w)

let test_welford_merge () =
  let a = Welford.create () and b = Welford.create () in
  List.iter (Welford.add a) [ 1.; 2.; 3. ];
  List.iter (Welford.add b) [ 10.; 20. ];
  let m = Welford.merge a b in
  let all = Welford.create () in
  List.iter (Welford.add all) [ 1.; 2.; 3.; 10.; 20. ];
  Alcotest.(check int) "count" (Welford.count all) (Welford.count m);
  check_float ~eps:1e-9 "mean" (Welford.mean all) (Welford.mean m);
  check_float ~eps:1e-9 "variance" (Welford.variance all) (Welford.variance m)

let prop_welford_matches_naive =
  QCheck.Test.make ~name:"welford matches naive mean/variance" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let w = Welford.create () in
      List.iter (Welford.add w) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0. xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
        /. (n -. 1.)
      in
      feq ~eps:1e-6 mean (Welford.mean w)
      && (var < 1e-12 || abs_float (var -. Welford.variance w) /. var < 1e-6))

(* Histogram *)

let test_histogram_linear () =
  let h = Histogram.linear ~lo:0. ~hi:10. ~buckets:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.7; 9.9; -1.; 10.; 100. ];
  Alcotest.(check int) "bucket0" 1 (Histogram.count h 0);
  Alcotest.(check int) "bucket1" 2 (Histogram.count h 1);
  Alcotest.(check int) "bucket9" 1 (Histogram.count h 9);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  Alcotest.(check int) "total" 7 (Histogram.total h)

let test_histogram_log () =
  let h = Histogram.log ~lo:1e-4 ~hi:10. ~per_decade:5 in
  Alcotest.(check int) "buckets" 25 (Histogram.buckets h);
  Histogram.add h 1e-4;
  Histogram.add h 0.99;
  Histogram.add h 0.;
  Alcotest.(check int) "underflow counts nonpositive" 1 (Histogram.underflow h);
  Alcotest.(check int) "total" 3 (Histogram.total h);
  let lo, hi = Histogram.bounds h 0 in
  check_float ~eps:1e-12 "first lo" 1e-4 lo;
  if not (hi > lo) then Alcotest.fail "bucket bounds ordered"

let test_histogram_weights_and_cdf () =
  let h = Histogram.linear ~lo:0. ~hi:4. ~buckets:4 in
  Histogram.add ~weight:3 h 0.5;
  Histogram.add ~weight:1 h 3.5;
  let cdf = Histogram.cdf h in
  Alcotest.(check int) "cdf points" 4 (List.length cdf);
  let _, f0 = List.nth cdf 0 in
  check_float "cdf after bucket0" 0.75 f0;
  let _, f3 = List.nth cdf 3 in
  check_float "cdf after bucket3" 1.0 f3

let test_histogram_quantile () =
  let h = Histogram.linear ~lo:0. ~hi:100. ~buckets:100 in
  for i = 0 to 99 do
    Histogram.add h (float_of_int i +. 0.5)
  done;
  let q50 = Histogram.quantile h 0.5 in
  if q50 < 45. || q50 > 55. then
    Alcotest.failf "median %g out of expected band" q50

let prop_histogram_mass_conserved =
  QCheck.Test.make ~name:"histogram conserves observation mass" ~count:200
    QCheck.(list (float_range (-10.) 110.))
    (fun xs ->
      let h = Histogram.linear ~lo:0. ~hi:100. ~buckets:13 in
      List.iter (Histogram.add h) xs;
      let in_buckets = ref 0 in
      for i = 0 to Histogram.buckets h - 1 do
        in_buckets := !in_buckets + Histogram.count h i
      done;
      Histogram.total h = List.length xs
      && !in_buckets + Histogram.underflow h + Histogram.overflow h
         = Histogram.total h)

let prop_histogram_cdf_monotone =
  QCheck.Test.make ~name:"histogram cdf is monotone and ends at <= 1" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 100) (float_range 0. 99.))
    (fun xs ->
      let h = Histogram.linear ~lo:0. ~hi:100. ~buckets:10 in
      List.iter (Histogram.add h) xs;
      let cdf = Histogram.cdf h in
      let rec monotone = function
        | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-12 && monotone rest
        | [ (_, last) ] -> last <= 1. +. 1e-12
        | [] -> true
      in
      monotone cdf)

(* Sample_set *)

let test_sample_set_quantiles () =
  let s = Sample_set.create () in
  for i = 1 to 100 do
    Sample_set.add s (float_of_int i)
  done;
  check_float "q0" 1. (Sample_set.quantile s 0.);
  check_float "q1" 100. (Sample_set.quantile s 1.);
  check_float ~eps:1e-9 "median" 50.5 (Sample_set.quantile s 0.5);
  check_float "mean" 50.5 (Sample_set.mean s);
  check_float "fraction_le 50" 0.5 (Sample_set.fraction_le s 50.);
  check_float "fraction_le 0" 0. (Sample_set.fraction_le s 0.);
  check_float "fraction_le 1000" 1. (Sample_set.fraction_le s 1000.)

let test_sample_set_reservoir () =
  let s = Sample_set.create ~cap:100 () in
  for i = 1 to 10_000 do
    Sample_set.add s (float_of_int i)
  done;
  Alcotest.(check int) "seen" 10_000 (Sample_set.count s);
  (* The reservoir median should be near the true median 5000.5. *)
  let med = Sample_set.quantile s 0.5 in
  if med < 3000. || med > 7000. then
    Alcotest.failf "reservoir median %g too far from 5000" med

let test_sample_set_cdf_points () =
  let s = Sample_set.create () in
  List.iter (Sample_set.add s) [ 1.; 2.; 3.; 4. ];
  let pts = Sample_set.cdf_points s ~points:5 in
  Alcotest.(check int) "points" 5 (List.length pts);
  let v, q = List.nth pts 4 in
  check_float "last value" 4. v;
  check_float "last q" 1. q

let prop_sample_quantile_monotone =
  QCheck.Test.make ~name:"sample quantiles are monotone in q" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 60) (float_range (-50.) 50.))
        (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun (xs, (q1, q2)) ->
      let s = Sample_set.create () in
      List.iter (Sample_set.add s) xs;
      let lo = Stdlib.min q1 q2 and hi = Stdlib.max q1 q2 in
      Sample_set.quantile s lo <= Sample_set.quantile s hi +. 1e-9)

(* Stat / Registry *)

let test_stat_records_everywhere () =
  let h = Histogram.linear ~lo:0. ~hi:10. ~buckets:10 in
  let st = Stat.with_histogram "x" h in
  Stat.record st 5.;
  Stat.record st 6.;
  Alcotest.(check int) "count" 2 (Stat.count st);
  Alcotest.(check int) "hist total" 2 (Histogram.total h);
  check_float "mean" 5.5 (Stat.mean st)

let test_registry () =
  let r = Registry.create () in
  Registry.register r (Stat.scalar "disk.queue");
  Registry.register r (Stat.scalar "cache.hits");
  (try
     Registry.register r (Stat.scalar "disk.queue");
     Alcotest.fail "duplicate registration should raise"
   with Invalid_argument _ -> ());
  Registry.record r "disk.queue" 4.;
  Registry.record r "missing.stat" 1.;
  (* dropped silently *)
  Registry.set_enabled r ~prefix:"disk." false;
  Registry.record r "disk.queue" 100.;
  (match Registry.find r "disk.queue" with
  | Some st -> Alcotest.(check int) "disabled drops" 1 (Stat.count st)
  | None -> Alcotest.fail "stat must exist");
  Alcotest.(check bool) "enabled query" true (Registry.enabled r "cache.hits");
  Alcotest.(check int) "all" 2 (List.length (Registry.all r))

let test_registry_report_zero_observation () =
  let r = Registry.create () in
  Registry.register r (Stat.scalar "disk.idle");
  Registry.register r (Stat.scalar "cache.hits");
  Registry.record r "cache.hits" 1.;
  let render ?all () =
    let buf = Buffer.create 128 in
    let ppf = Format.formatter_of_buffer buf in
    Registry.report ?all ppf r;
    Format.pp_print_flush ppf ();
    Buffer.contents buf
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let default = render () in
  Alcotest.(check bool)
    "zero-observation stat skipped by default" false
    (contains default "disk.idle");
  let full = render ~all:true () in
  Alcotest.(check bool)
    "~all:true includes the idle stat" true
    (contains full "disk.idle: (no observations)")

let test_counter_handles () =
  let r = Registry.create () in
  Registry.register r (Stat.scalar "disk.seek");
  Registry.register r (Stat.scalar "cache.hits");
  let seek = Registry.counter r "disk.seek" in
  let hits = Registry.counter r "cache.hits" in
  Counter.record seek 4.;
  Counter.incr hits;
  Alcotest.(check int) "handle records" 1 (Stat.count (Counter.stat seek));
  (* set_enabled by prefix must reach already-resolved handles *)
  Registry.set_enabled r ~prefix:"disk." false;
  Counter.record seek 100.;
  Alcotest.(check int) "disabled handle drops" 1
    (Stat.count (Counter.stat seek));
  Counter.incr hits;
  Alcotest.(check int) "other prefix unaffected" 2
    (Stat.count (Counter.stat hits));
  Registry.set_enabled r ~prefix:"disk." true;
  Counter.record seek 5.;
  Alcotest.(check int) "re-enabled handle records" 2
    (Stat.count (Counter.stat seek));
  (* the null counter never records and never fails *)
  Counter.record Counter.null 1.;
  Counter.incr Counter.null;
  Alcotest.(check bool) "null disabled" false (Counter.is_enabled Counter.null);
  try
    ignore (Registry.counter r "no.such.stat");
    Alcotest.fail "unknown counter name must raise"
  with Invalid_argument _ -> ()

let test_registry_iter () =
  let r = Registry.create () in
  Registry.register r (Stat.scalar "b");
  Registry.register r (Stat.scalar "a");
  let names = ref [] in
  Registry.iter r (fun st -> names := Stat.name st :: !names);
  Alcotest.(check (list string)) "iter in sorted order" [ "a"; "b" ]
    (List.rev !names)

(* Interval *)

let test_interval_windows () =
  let iv = Interval.create ~width:900. () in
  Interval.add iv ~time:10. 1.;
  Interval.add iv ~time:899. 2.;
  Interval.add iv ~time:900. 3.;
  Interval.add iv ~time:2000. 4.;
  Interval.flush iv;
  let ws = Interval.windows iv in
  Alcotest.(check int) "windows" 3 (List.length ws);
  (match ws with
  | w1 :: w2 :: _ ->
    check_float "w1 start" 0. w1.Interval.start;
    Alcotest.(check int) "w1 count" 2 (Welford.count w1.Interval.summary);
    check_float "w2 start" 900. w2.Interval.start
  | _ -> Alcotest.fail "expected windows");
  Alcotest.(check int) "overall" 4 (Welford.count (Interval.overall iv))

let test_interval_late_observation () =
  let iv = Interval.create ~width:100. () in
  Interval.add iv ~time:50. 1.;
  Interval.add iv ~time:150. 2.;
  (* late arrival for an already-closed window: overall only *)
  Interval.add iv ~time:60. 3.;
  Interval.flush iv;
  Alcotest.(check int) "overall sees all" 3
    (Welford.count (Interval.overall iv));
  let ws = Interval.windows iv in
  let in_windows =
    List.fold_left (fun n w -> n + Welford.count w.Interval.summary) 0 ws
  in
  Alcotest.(check int) "windows saw 2" 2 in_windows

(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  for _ = 1 to 100 do
    if Prng.bits64 a <> Prng.bits64 b then Alcotest.fail "streams diverge"
  done

let test_prng_split_independent () =
  let a = Prng.create ~seed:7 in
  let c = Prng.split a in
  if Prng.bits64 a = Prng.bits64 c then
    Alcotest.fail "split stream should differ from parent"

let prop_prng_int_in_range =
  QCheck.Test.make ~name:"prng int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Prng.create ~seed in
      let x = Prng.int r bound in
      x >= 0 && x < bound)

let prop_prng_float_unit_interval =
  QCheck.Test.make ~name:"prng float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let r = Prng.create ~seed in
      let x = Prng.float r in
      x >= 0. && x < 1.)

let test_prng_choose_weights () =
  let r = Prng.create ~seed:3 in
  let counts = Array.make 3 0 in
  for _ = 1 to 3000 do
    let i = Prng.choose r [| 1.; 0.; 9. |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight never chosen" 0 counts.(1);
  if counts.(2) < counts.(0) then
    Alcotest.fail "weight 9 should dominate weight 1"

let qsuite = List.map QCheck_alcotest.to_alcotest
    [
      prop_welford_matches_naive;
      prop_histogram_mass_conserved;
      prop_histogram_cdf_monotone;
      prop_sample_quantile_monotone;
      prop_prng_int_in_range;
      prop_prng_float_unit_interval;
    ]

let suite =
  [
    Alcotest.test_case "welford basic" `Quick test_welford_basic;
    Alcotest.test_case "welford empty" `Quick test_welford_empty;
    Alcotest.test_case "welford reset" `Quick test_welford_reset;
    Alcotest.test_case "welford merge" `Quick test_welford_merge;
    Alcotest.test_case "histogram linear" `Quick test_histogram_linear;
    Alcotest.test_case "histogram log" `Quick test_histogram_log;
    Alcotest.test_case "histogram weights+cdf" `Quick
      test_histogram_weights_and_cdf;
    Alcotest.test_case "histogram quantile" `Quick test_histogram_quantile;
    Alcotest.test_case "sample set quantiles" `Quick test_sample_set_quantiles;
    Alcotest.test_case "sample set reservoir" `Quick test_sample_set_reservoir;
    Alcotest.test_case "sample set cdf points" `Quick test_sample_set_cdf_points;
    Alcotest.test_case "stat records everywhere" `Quick
      test_stat_records_everywhere;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "registry report zero-observation" `Quick
      test_registry_report_zero_observation;
    Alcotest.test_case "counter handles" `Quick test_counter_handles;
    Alcotest.test_case "registry iter sorted" `Quick test_registry_iter;
    Alcotest.test_case "interval windows" `Quick test_interval_windows;
    Alcotest.test_case "interval late observation" `Quick
      test_interval_late_observation;
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng split" `Quick test_prng_split_independent;
    Alcotest.test_case "prng choose weights" `Quick test_prng_choose_weights;
  ]
  @ qsuite
