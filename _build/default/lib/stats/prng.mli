(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic decision in the framework — random thread dispatch,
    the simulator layout's "educated guesses", synthetic workload
    generation, reservoir sampling — draws from an explicit [Prng.t]
    rather than [Stdlib.Random], so a simulation run is a pure function of
    its seed. This is what lets "a work load repeatedly be replayed on the
    same off-line simulator" bit-for-bit. *)

type t

val create : seed:int -> t

(** An independent stream split off from [t] (advances [t]). *)
val split : t -> t

(** Uniform over the full 64-bit range. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)
val int : t -> int -> int

(** Uniform in [[0, 1)]. *)
val float : t -> float

(** [uniform t ~lo ~hi] is uniform in [[lo, hi)]. *)
val uniform : t -> lo:float -> hi:float -> float

(** Exponentially distributed with the given [mean]. *)
val exponential : t -> mean:float -> float

(** [pareto t ~shape ~scale] is Pareto-distributed: heavy-tailed sizes as
    observed in file-size distributions. [shape > 0], [scale > 0]. *)
val pareto : t -> shape:float -> scale:float -> float

(** [lognormal t ~mu ~sigma] — log-normal via Box–Muller. *)
val lognormal : t -> mu:float -> sigma:float -> float

(** [bool t p] is true with probability [p]. *)
val bool : t -> float -> bool

(** [choose t weights] picks index [i] with probability proportional to
    [weights.(i)]. Raises [Invalid_argument] on empty or all-zero
    weights. *)
val choose : t -> float array -> int
