exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error (line, m))) fmt

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let parse_client line w =
  if String.length w < 2 || w.[0] <> 'c' then fail line "bad client field %S" w
  else
    match int_of_string_opt (String.sub w 1 (String.length w - 1)) with
    | Some c -> c
    | None -> fail line "bad client field %S" w

let parse_int line w =
  match int_of_string_opt w with
  | Some v -> v
  | None -> fail line "bad integer %S" w

let parse_line ~line s =
  let s = String.trim s in
  if s = "" || s.[0] = '#' then None
  else begin
    let time, rest =
      match split_ws s with
      | tw :: rest ->
        let time =
          if tw = "?" then Record.no_time
          else
            match float_of_string_opt tw with
            | Some v -> v
            | None -> fail line "bad time %S" tw
        in
        (time, rest)
      | [] -> fail line "empty record"
    in
    let client, rest =
      match rest with
      | cw :: rest -> (parse_client line cw, rest)
      | [] -> fail line "missing client"
    in
    let op =
      match rest with
      | [ "open"; path; mode ] ->
        let mode =
          match mode with
          | "r" -> Record.Read_only
          | "w" -> Record.Write_only
          | "rw" -> Record.Read_write
          | m -> fail line "bad open mode %S" m
        in
        Record.Open { path; mode }
      | [ "close"; path ] -> Record.Close { path }
      | [ "read"; path; off; len ] ->
        Record.Read { path; offset = parse_int line off; bytes = parse_int line len }
      | [ "write"; path; off; len ] ->
        Record.Write
          { path; offset = parse_int line off; bytes = parse_int line len }
      | [ "stat"; path ] -> Record.Stat { path }
      | [ "delete"; path ] -> Record.Delete { path }
      | [ "truncate"; path; size ] ->
        Record.Truncate { path; size = parse_int line size }
      | [ "mkdir"; path ] -> Record.Mkdir { path }
      | [ "rmdir"; path ] -> Record.Rmdir { path }
      | op :: _ -> fail line "unknown or malformed op %S" op
      | [] -> fail line "missing op"
    in
    Some { Record.time; client; op }
  end

let print_record buf r =
  Buffer.add_string buf (Format.asprintf "%a" Record.pp r);
  Buffer.add_char buf '\n'

let of_string s =
  String.split_on_char '\n' s
  |> List.mapi (fun i l -> (i + 1, l))
  |> List.filter_map (fun (i, l) -> parse_line ~line:i l)
  |> Array.of_list

let to_string records =
  let buf = Buffer.create 4096 in
  Array.iter (print_record buf) records;
  Buffer.contents buf

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s

let save path records =
  let oc = open_out path in
  output_string oc (to_string records);
  close_out oc
