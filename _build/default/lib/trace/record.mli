(** File-system trace records.

    "File-system traces are collections of records that describe all the
    activity of a real file-system at some time. These records specify
    when the operation took place (usually down to the microsecond), and
    which file-system operation was executed." A record time of
    {!no_time} marks a parameter the trace did not capture; the replay
    engine synthesizes it (reads/writes are placed equidistantly between
    their open and close — §4). *)

type mode = Read_only | Write_only | Read_write

type op =
  | Open of { path : string; mode : mode }
  | Close of { path : string }
  | Read of { path : string; offset : int; bytes : int }
  | Write of { path : string; offset : int; bytes : int }
  | Stat of { path : string }
  | Delete of { path : string }
  | Truncate of { path : string; size : int }
  | Mkdir of { path : string }
  | Rmdir of { path : string }

type t = {
  time : float;  (** seconds since trace start; {!no_time} if unrecorded *)
  client : int;  (** workstation / process issuing the operation *)
  op : op;
}

(** Sentinel for "the trace did not record when this happened". *)
val no_time : float

val has_time : t -> bool

(** Path named by the operation. *)
val path : t -> string

(** Operation mnemonic ("open", "read", …). *)
val op_name : t -> string

val pp : Format.formatter -> t -> unit

(** Total bytes moved by the record (reads + writes; 0 otherwise). *)
val bytes_moved : t -> int
