(** Retained-sample distribution, for exact CDFs.

    The paper's Figures 2–4 are cumulative latency distributions; those are
    produced from a [Sample_set] that keeps every observation. For very long
    runs, [create ~cap] switches to reservoir sampling with capacity [cap]
    so that memory stays bounded while the empirical distribution remains
    unbiased. *)

type t

(** [create ?cap ()] retains all samples, or a uniform reservoir of at most
    [cap] samples when [cap] is given. The reservoir uses its own
    deterministic PRNG seeded by [seed] (default 0x9e3779b9) so simulation
    runs stay reproducible. *)
val create : ?cap:int -> ?seed:int -> unit -> t

val add : t -> float -> unit

(** Number of observations offered (not the retained count). *)
val count : t -> int

val mean : t -> float

(** [quantile t q] is the [q]-quantile of the retained samples.
    Raises [Invalid_argument] when empty or [q] outside [0,1]. *)
val quantile : t -> float -> float

(** [fraction_le t x] is the empirical P(X ≤ x); [0.] when empty. *)
val fraction_le : t -> float -> float

(** [cdf_points t ~points] is an evenly-spaced-in-probability list of
    [(value, cumulative_fraction)] pairs suitable for plotting. *)
val cdf_points : t -> points:int -> (float * float) list

val reset : t -> unit
