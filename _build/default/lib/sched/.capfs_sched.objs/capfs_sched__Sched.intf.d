lib/sched/sched.mli: Unix
