(** Deterministic fault injection.

    An injector turns a {!Plan} plus a seed into a concrete fault
    schedule. It is carried on [Sched.t] exactly like the event tracer:
    components that can fail (today the disk driver) fetch it with
    [Sched.injector] and consult {!decide} on each request. {!null} is
    permanently disabled and {!enabled} is a single field load, so the
    no-faults hot path costs one branch — the same discipline as
    [Tracer.enabled].

    All randomness comes from one splitmix64 stream seeded at
    {!create}, plus one independent per-disk stream for latent-sector
    placement (seeded from the base seed and the disk name), so a given
    (plan, seed) pair yields the same fault schedule on every run and
    under any fleet parallelism. *)

type t

(** Fate of one I/O request. *)
type decision =
  | Pass            (** no fault *)
  | Transient_error (** fails once; a retry may succeed *)
  | Hard_error      (** latent sector: fails every time until rewritten *)
  | Stall of float  (** whole-disk stall: service delayed this many seconds *)

(** The disabled injector: {!enabled} is [false], {!decide} always
    {!Pass}. The default carried by a scheduler. *)
val null : t

(** [create ~seed plan] — [plan.seed] overrides [seed] when set. An
    injector built from {!Plan.empty} (without a crash trigger) is
    disabled. *)
val create : seed:int -> Plan.t -> t

val enabled : t -> bool
val plan : t -> Plan.t

(** Virtual time of the planned power cut, if any. The crash itself is
    enacted by the experiment harness (it stops the scheduler at that
    horizon); the injector only carries the trigger. *)
val crash_at : t -> float option

(** [register_disk t ~name ~total_sectors] materializes the plan's
    latent bad sectors for one disk. Idempotent per name; deterministic
    in (seed, name, total_sectors) regardless of registration order. *)
val register_disk : t -> name:string -> total_sectors:int -> unit

(** [decide t ~disk ~write ~lba ~sectors] draws the fate of one request.
    Reads overlapping a latent bad sector are {!Hard_error}; writes
    overlapping one repair it (sector remap) and proceed to the
    probabilistic draw. Exactly one PRNG draw happens per call, so the
    schedule is a pure function of the call sequence. *)
val decide : t -> disk:string -> write:bool -> lba:int -> sectors:int -> decision

(** {2 Counters} — cumulative, for tests and reports. *)

val transients : t -> int
val hards : t -> int
val stalls : t -> int
