lib/cache/cache.mli: Block Capfs_disk Capfs_sched Capfs_stats Replacement
