examples/multimedia.ml: Capfs Capfs_cache Capfs_disk Capfs_layout Capfs_sched Capfs_stats Format List
