type layer = Sched | Cache | Disk | Layout

type kind =
  | Dispatch of { tid : int; thread : string }
  | Block of { tid : int; thread : string; on : string }
  | Wake of { tid : int; thread : string }
  | Cache_hit of { cache : string; ino : int; index : int }
  | Cache_miss of { cache : string; ino : int; index : int }
  | Cache_evict of { cache : string; ino : int; index : int }
  | Cache_flush of { cache : string; blocks : int }
  | Disk_enqueue of { disk : string; lba : int; sectors : int; write : bool }
  | Disk_seek of { disk : string; cylinder : int; dur : float }
  | Disk_service of {
      disk : string;
      lba : int;
      sectors : int;
      write : bool;
      dur : float;
    }
  | Seg_write of { volume : string; seg : int; blocks : int }
  | Disk_fault of {
      disk : string;
      lba : int;
      sectors : int;
      write : bool;
      fault : string;
    }
  | Disk_retry of { disk : string; attempt : int; delay : float }
  | Disk_merge of { disk : string; lba : int; sectors : int; write : bool; count : int }
  | Recovery of { volume : string; segments : int; inodes : int }

type t = { time : float; seq : int; kind : kind }

let layer_of = function
  | Dispatch _ | Block _ | Wake _ -> Sched
  | Cache_hit _ | Cache_miss _ | Cache_evict _ | Cache_flush _ -> Cache
  | Disk_enqueue _ | Disk_seek _ | Disk_service _ | Disk_fault _
  | Disk_retry _ | Disk_merge _ ->
    Disk
  | Seg_write _ | Recovery _ -> Layout

let layer_name = function
  | Sched -> "sched"
  | Cache -> "cache"
  | Disk -> "disk"
  | Layout -> "layout"

let kind_name = function
  | Dispatch _ -> "dispatch"
  | Block _ -> "block"
  | Wake _ -> "wake"
  | Cache_hit _ -> "hit"
  | Cache_miss _ -> "miss"
  | Cache_evict _ -> "evict"
  | Cache_flush _ -> "flush"
  | Disk_enqueue _ -> "enqueue"
  | Disk_seek _ -> "seek"
  | Disk_service _ -> "service"
  | Seg_write _ -> "segment"
  | Disk_fault _ -> "fault"
  | Disk_retry _ -> "retry"
  | Disk_merge _ -> "merge"
  | Recovery _ -> "recovery"

let source = function
  | Dispatch { thread; _ } | Block { thread; _ } | Wake { thread; _ } -> thread
  | Cache_hit { cache; _ }
  | Cache_miss { cache; _ }
  | Cache_evict { cache; _ }
  | Cache_flush { cache; _ } ->
    cache
  | Disk_enqueue { disk; _ }
  | Disk_seek { disk; _ }
  | Disk_service { disk; _ }
  | Disk_fault { disk; _ }
  | Disk_retry { disk; _ }
  | Disk_merge { disk; _ } ->
    disk
  | Seg_write { volume; _ } | Recovery { volume; _ } -> volume

let duration = function
  | Disk_seek { dur; _ } | Disk_service { dur; _ } -> dur
  | Dispatch _ | Block _ | Wake _ | Cache_hit _ | Cache_miss _ | Cache_evict _
  | Cache_flush _ | Disk_enqueue _ | Seg_write _ | Disk_fault _ | Disk_retry _
  | Disk_merge _ | Recovery _ ->
    0.

let pp_args ppf = function
  | Dispatch { tid; _ } | Wake { tid; _ } -> Format.fprintf ppf "tid=%d" tid
  | Block { tid; on; _ } -> Format.fprintf ppf "tid=%d on=%s" tid on
  | Cache_hit { ino; index; _ }
  | Cache_miss { ino; index; _ }
  | Cache_evict { ino; index; _ } ->
    Format.fprintf ppf "ino=%d idx=%d" ino index
  | Cache_flush { blocks; _ } -> Format.fprintf ppf "blocks=%d" blocks
  | Disk_enqueue { lba; sectors; write; _ } ->
    Format.fprintf ppf "%s lba=%d sectors=%d"
      (if write then "write" else "read")
      lba sectors
  | Disk_seek { cylinder; dur; _ } ->
    Format.fprintf ppf "cyl=%d dur=%.6f" cylinder dur
  | Disk_service { lba; sectors; write; dur; _ } ->
    Format.fprintf ppf "%s lba=%d sectors=%d dur=%.6f"
      (if write then "write" else "read")
      lba sectors dur
  | Seg_write { seg; blocks; _ } ->
    Format.fprintf ppf "seg=%d blocks=%d" seg blocks
  | Disk_fault { lba; sectors; write; fault; _ } ->
    Format.fprintf ppf "%s lba=%d sectors=%d fault=%s"
      (if write then "write" else "read")
      lba sectors fault
  | Disk_retry { attempt; delay; _ } ->
    Format.fprintf ppf "attempt=%d delay=%.6f" attempt delay
  | Disk_merge { lba; sectors; write; count; _ } ->
    Format.fprintf ppf "%s lba=%d sectors=%d count=%d"
      (if write then "write" else "read")
      lba sectors count
  | Recovery { segments; inodes; _ } ->
    Format.fprintf ppf "segments=%d inodes=%d" segments inodes

let pp ppf t =
  Format.fprintf ppf "%12.6f %-6s %-8s %-16s %a" t.time
    (layer_name (layer_of t.kind))
    (kind_name t.kind) (source t.kind) pp_args t.kind
