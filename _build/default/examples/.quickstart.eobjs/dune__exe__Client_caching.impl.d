examples/client_caching.ml: Capfs Capfs_cache Capfs_ccache Capfs_disk Capfs_layout Capfs_sched Format Printf String
